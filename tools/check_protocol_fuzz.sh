#!/usr/bin/env bash
# Protocol fuzz regression (capped): feeds the checked-in seed corpus of
# malformed / truncated / type-confused / oversized request lines — plus
# mid-request disconnects and truncated-prefix mutations of every seed — to
# a live llhscd over both the Unix socket and TCP, in both the in-process
# and the forked-worker deployment, and asserts the daemon neither crashes
# nor hangs: every full line gets a well-formed JSON reply (or an explicit
# connection close), the daemon still answers ping afterwards, and SIGTERM
# still drains cleanly. Seeds live in tests/server/fuzz_seeds/.
# Usage: check_protocol_fuzz.sh <llhscd> <seed-dir>
set -eu

LLHSCD="$1"
SEEDS="$2"
TMP="$(mktemp -d)"

DAEMON_PID=""
cleanup() {
    [ -n "${DAEMON_PID:-}" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

[ -d "$SEEDS" ] || { echo "no seed dir $SEEDS" >&2; exit 1; }
SEED_COUNT="$(ls "$SEEDS"/*.txt | wc -l)"
[ "$SEED_COUNT" -ge 10 ] \
    || { echo "seed corpus too small: $SEED_COUNT files" >&2; exit 1; }

run_leg() {
    local leg="$1" workers="$2"
    local sock="$TMP/$leg.sock" log="$TMP/$leg.log"
    # A small --max-line-bytes so the oversized-line path is cheap to hit.
    "$LLHSCD" --socket "$sock" --listen 127.0.0.1:0 --jobs 2 \
        --workers "$workers" --max-line-bytes 65536 --log-file "$log" &
    DAEMON_PID=$!
    for _ in $(seq 1 200); do
        [ -S "$sock" ] && grep -q "listening on" "$log" 2>/dev/null && break
        sleep 0.05
    done
    [ -S "$sock" ] || { echo "[$leg] daemon never bound $sock" >&2; exit 1; }
    local port
    port="$(grep -o 'tcp port [0-9]*' "$log" | head -n 1 | grep -o '[0-9]*$')"

    python3 - "$sock" "$port" "$SEEDS" "$leg" <<'PYEOF'
import glob, json, os, socket, sys, time

sock_path, port, seed_dir, leg = sys.argv[1], int(sys.argv[2]), sys.argv[3], sys.argv[4]

def connect(transport):
    if transport == "unix":
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        s.connect(sock_path)
    else:
        s = socket.create_connection(("127.0.0.1", port))
    s.settimeout(10.0)
    return s

buffers = {}

def recv_line(s):
    """One response line (buffered per socket), or None on clean close /
    "TIMEOUT" on a hang."""
    data = buffers.get(s, b"")
    try:
        while b"\n" not in data:
            chunk = s.recv(65536)
            if not chunk:
                buffers[s] = data
                return None
            data += chunk
    except socket.timeout:
        buffers[s] = data
        return "TIMEOUT"
    line, rest = data.split(b"\n", 1)
    buffers[s] = rest
    return line

def assert_ping(transport):
    s = connect(transport)
    s.sendall(b'{"id": 424242, "method": "ping"}\n')
    line = recv_line(s)
    s.close()
    assert line not in (None, "TIMEOUT"), f"[{leg}/{transport}] ping lost"
    reply = json.loads(line)
    assert reply["ok"] is True and reply["id"] == 424242, reply

failures = []
seeds = sorted(glob.glob(os.path.join(seed_dir, "*.txt")))
for transport in ("unix", "tcp"):
    for path in seeds:
        raw = open(path, "rb").read()
        if not raw.endswith(b"\n"):
            raw += b"\n"
        # 1. The full seed, followed by a ping probe: the first reply must
        #    be well-formed JSON (the seed's error, or the probe's pong when
        #    the seed is skippable, e.g. an empty line) or the daemon may
        #    close the connection explicitly — never a hang, never death.
        s = connect(transport)
        s.sendall(raw + b'{"id": 31337, "method": "ping"}\n')
        line = recv_line(s)
        if line == "TIMEOUT":
            failures.append(f"{transport}:{os.path.basename(path)} hung")
        elif line is not None:
            try:
                reply = json.loads(line)
                if "ok" not in reply:
                    failures.append(
                        f"{transport}:{os.path.basename(path)} malformed reply")
            except ValueError:
                failures.append(
                    f"{transport}:{os.path.basename(path)} non-JSON reply")
        s.close()
        # 2. Mid-request disconnect: half the seed, no newline, then close.
        s = connect(transport)
        s.sendall(raw[: max(1, len(raw) // 2)].rstrip(b"\n"))
        s.close()
    # 3. Oversized line (over the leg's 64 KiB cap) must be rejected as
    #    too_large and the connection must resync at the newline.
    s = connect(transport)
    s.sendall(b"x" * 200000 + b"\n" + b'{"id": 5, "method": "ping"}\n')
    line = recv_line(s)
    assert line not in (None, "TIMEOUT"), f"[{leg}/{transport}] too_large lost"
    reply = json.loads(line)
    assert reply["ok"] is False and reply["error"]["code"] == "too_large", reply
    line = recv_line(s)
    assert line not in (None, "TIMEOUT"), f"[{leg}/{transport}] resync lost"
    assert json.loads(line)["ok"] is True
    s.close()
    # 4. Slow-loris: a request dribbled byte by byte still completes.
    s = connect(transport)
    for b in b'{"id": 6, "method": "ping"}\n':
        s.sendall(bytes([b]))
    line = recv_line(s)
    assert line not in (None, "TIMEOUT"), f"[{leg}/{transport}] loris lost"
    assert json.loads(line)["ok"] is True
    s.close()
    # After the barrage the daemon must still serve.
    assert_ping(transport)

if failures:
    print("\n".join(failures))
    sys.exit(1)
print(f"[{leg}] {len(seeds)} seeds x unix+tcp survived")
PYEOF

    # Clean drain after the barrage.
    local status=0
    kill -TERM "$DAEMON_PID"
    wait "$DAEMON_PID" || status=$?
    DAEMON_PID=""
    [ "$status" -eq 0 ] \
        || { echo "[$leg] daemon exited $status on SIGTERM" >&2; exit 1; }
    grep -q "drained" "$log" \
        || { echo "[$leg] no drain handshake after fuzzing" >&2; exit 1; }
}

run_leg inproc 0
run_leg workers 2

echo "protocol fuzz pass survived ($SEED_COUNT seeds, 2 deployments, 2 transports)"

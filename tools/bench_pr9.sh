#!/usr/bin/env bash
# Benchmark smoke for lifted family-based checking (PR9): runs bench_lift's
# lifted-vs-enumeration rows on the synthetic SPL and composes
# BENCH_pr9.json. Fails unless the lifted check of the 2^12-product family
# is >=5x faster than enumerating and checking every product, the one-shot
# differential confirmed the verdicts identical over all 4096 products, and
# the 2^20 family completed without enumeration (patterns stay linear in n).
# Usage: bench_pr9.sh <build-dir> [out.json]
set -eu

BUILD="$1"
OUT="${2:-BENCH_pr9.json}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BUILD/bench/bench_lift" \
    --benchmark_filter='BM_(Lifted|Enumerated)Family' \
    --benchmark_format=json > "$TMP/lift.json"

python3 - "$TMP/lift.json" "$OUT" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)

TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}

rows = []
for b in report.get("benchmarks", []):
    rows.append({
        "name": b["name"],
        "label": b.get("label", ""),
        "real_time_ms": b["real_time"] * TO_MS[b.get("time_unit", "ns")],
        "ok": int(b.get("ok", -1)),
        "findings": int(b.get("findings", -1)),
        "components": int(b.get("components", -1)),
        "patterns": int(b.get("patterns", -1)),
        "differential_equal": int(b.get("differential_equal", -1)),
        "differential_products": int(b.get("differential_products", -1)),
        "products": int(b.get("products", -1)),
    })

by_label = {r["label"]: r for r in rows}
lifted = by_label.get("lifted-2^12", {})
enum_ = by_label.get("enumerated-2^12", {})
large = by_label.get("lifted-2^20", {})
speedup = (enum_.get("real_time_ms", 0) / lifted["real_time_ms"]
           if lifted.get("real_time_ms") else 0.0)

result = {
    "pr": 9,
    "workload": "synthetic SPL (n independent optional features, one "
                "device delta each, dev1 overlapping dev0): lifted "
                "family check vs full product enumeration",
    "context": report.get("context", {}),
    "rows": rows,
    "summary": {
        "lifted_2p12_ms": lifted.get("real_time_ms"),
        "enumerated_2p12_ms": enum_.get("real_time_ms"),
        "lifted_speedup": round(speedup, 1),
        "lifted_speedup_at_least_5x": speedup >= 5.0,
        "differential_equal_over_4096_products":
            lifted.get("differential_equal") == 1,
        "lifted_2p20_ms": large.get("real_time_ms"),
        "lifted_2p20_patterns": large.get("patterns"),
    },
}
with open(sys.argv[2], "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

if speedup < 5.0:
    sys.exit(f"lifted family check is only {speedup:.1f}x faster than "
             "enumeration, expected >=5x")
if lifted.get("differential_equal") != 1:
    sys.exit("lifted verdicts did not match per-product enumeration over "
             "the 2^12 family")
if lifted.get("differential_products") != 4096:
    sys.exit("differential covered "
             f"{lifted.get('differential_products')} products, expected "
             "all 4096")
if large.get("ok") != 1:
    sys.exit("2^20 family analysis did not complete ok")
if not 0 < large.get("patterns", 0) <= 64:
    sys.exit(f"2^20 family needed {large.get('patterns')} activation "
             "patterns — expected linear in n (<=64), not enumeration")
for r in rows:
    if r["ok"] == 0:
        sys.exit(f"{r['name']} reported a refused (not-ok) analysis")
EOF

echo "wrote $OUT"

// llsat — standalone DIMACS front-end for the llhsc SAT substrate. Follows
// the SAT-competition output convention:
//
//   $ ./llsat instance.cnf
//   s SATISFIABLE
//   v 1 -2 3 0
//
// Options: --count (projected model count over all variables, capped),
//          --quiet (suppress the v line).
#include <fstream>
#include <iostream>
#include <sstream>

#include "sat/dimacs.hpp"

int main(int argc, char** argv) {
  using namespace llhsc;
  std::string path;
  bool count = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--count") {
      count = true;
    } else if (a == "--quiet") {
      quiet = true;
    } else {
      path = a;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: llsat [--count] [--quiet] <instance.cnf>\n";
    return 2;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  support::DiagnosticEngine diags;
  auto instance = sat::parse_dimacs(buf.str(), diags);
  std::cerr << diags.render();
  if (!instance) return 2;

  sat::Solver solver;
  bool consistent = sat::load_into(*instance, solver);

  if (count) {
    std::vector<sat::Var> projection;
    for (int v = 0; v < instance->num_vars; ++v) {
      projection.push_back(static_cast<sat::Var>(v));
    }
    constexpr uint64_t kCap = 1u << 20;
    uint64_t models = consistent ? solver.count_models(projection, kCap) : 0;
    std::cout << "c model count" << (models >= kCap ? " (capped)" : "")
              << "\n" << models << "\n";
    return 0;
  }

  if (!consistent || solver.solve() != sat::SolveResult::kSat) {
    std::cout << "s UNSATISFIABLE\n";
    return 20;  // SAT-competition exit code
  }
  std::cout << "s SATISFIABLE\n";
  if (!quiet) {
    std::cout << "v " << sat::model_line(solver, instance->num_vars) << "\n";
  }
  return 10;
}

#!/usr/bin/env bash
# Asserts the pipeline's determinism guarantee at the CLI level: a --jobs 4
# demo run writes byte-identical artifacts and findings output to a --jobs 1
# run, and --trace-json produces a complete trace.
# Usage: check_demo_determinism.sh <llhsc-binary>
set -eu

LLHSC="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
mkdir "$TMP/serial" "$TMP/parallel"

"$LLHSC" demo --out "$TMP/serial" --jobs 1 > "$TMP/serial.out"
"$LLHSC" demo --out "$TMP/parallel" --jobs 4 \
    --trace-json "$TMP/trace.json" --verbose > "$TMP/parallel.out" \
    2> "$TMP/parallel.err"

diff -r "$TMP/serial" "$TMP/parallel"
# The summary line names the output directory; normalise it before diffing.
sed "s|$TMP/serial|OUT|" "$TMP/serial.out" > "$TMP/serial.norm"
sed "s|$TMP/parallel|OUT|" "$TMP/parallel.out" > "$TMP/parallel.norm"
diff "$TMP/serial.norm" "$TMP/parallel.norm"

grep -q '"jobs": 4' "$TMP/trace.json"
grep -q '"complete": true' "$TMP/trace.json"
grep -q '"stage": "semantic"' "$TMP/trace.json"
# --verbose printed the summary table on stderr.
grep -q 'solver checks' "$TMP/parallel.err"

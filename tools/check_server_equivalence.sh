#!/usr/bin/env bash
# The daemon's headline guarantee, enforced end-to-end: for every DTS in the
# example corpus and every output format, `llhsc check --socket <sock>` must
# produce byte-identical stdout, byte-identical stderr and the same exit
# code as the one-shot `llhsc check` — the daemon is a cache, never a
# different checker. Also asserts that --profile (on both client and daemon)
# produces parseable Chrome-trace JSON without disturbing the equivalence.
# Finishes by SIGTERMing the daemon and requiring a clean drain: exit 0,
# socket unlinked, the drain handshake in the log.
# Usage: check_server_equivalence.sh <llhsc> <llhscd> <examples-data-dir> [log]
set -eu

LLHSC="$1"
LLHSCD="$2"
DATA="$3"
TMP="$(mktemp -d)"
LOG="${4:-$TMP/llhscd.log}"
SOCK="$TMP/d.sock"

cleanup() {
    [ -n "${DAEMON_PID:-}" ] && kill "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

"$LLHSCD" --socket "$SOCK" --jobs 2 --log-file "$LOG" \
    --profile "$TMP/daemon-profile.json" &
DAEMON_PID=$!

# Wait for the socket to come up (the daemon binds before serving).
for _ in $(seq 1 200); do
    [ -S "$SOCK" ] && break
    sleep 0.05
done
[ -S "$SOCK" ] || { echo "daemon never bound $SOCK" >&2; exit 1; }

compare() {
    local dts="$1"; shift
    local name; name="$(basename "$dts")"
    local direct_status=0 served_status=0
    "$LLHSC" check "$dts" "$@" \
        > "$TMP/direct.out" 2> "$TMP/direct.err" || direct_status=$?
    "$LLHSC" check "$dts" "$@" --socket "$SOCK" \
        > "$TMP/served.out" 2> "$TMP/served.err" || served_status=$?
    if [ "$direct_status" -ne "$served_status" ]; then
        echo "exit mismatch on $name $*: direct=$direct_status" \
             "served=$served_status" >&2
        exit 1
    fi
    diff "$TMP/direct.out" "$TMP/served.out" \
        || { echo "stdout diverged on $name $*" >&2; exit 1; }
    diff "$TMP/direct.err" "$TMP/served.err" \
        || { echo "stderr diverged on $name $*" >&2; exit 1; }
}

CHECKED=0
for dts in "$DATA"/*.dts; do
    for fmt in text json sarif; do
        compare "$dts" --format "$fmt"
    done
    # --stats exercises the planner-counter line (trace replay on the warm
    # path must reproduce it byte-for-byte, cache-hit or not).
    compare "$dts" --stats
    CHECKED=$((CHECKED + 1))
done
[ "$CHECKED" -ge 2 ] || { echo "corpus too small: $CHECKED files" >&2; exit 1; }

# A warm repeat stays byte-identical even though it is served from cache.
first="$(ls "$DATA"/*.dts | head -n 1)"
compare "$first" --stats

# --profile must not disturb the equivalence, and both the client-side and
# the (deferred, daemon-side) profiles must be valid JSON.
compare "$first" --stats --profile "$TMP/client-profile.json"
python3 -m json.tool "$TMP/client-profile.json" > /dev/null \
    || { echo "client --profile is not valid JSON" >&2; exit 1; }
grep -q '"traceEvents"' "$TMP/client-profile.json" \
    || { echo "client profile has no traceEvents" >&2; exit 1; }

# Clean drain: SIGTERM, exit 0, socket gone, handshake logged.
kill -TERM "$DAEMON_PID"
DRAIN_STATUS=0
wait "$DAEMON_PID" || DRAIN_STATUS=$?
DAEMON_PID=""
if [ "$DRAIN_STATUS" -ne 0 ]; then
    echo "daemon exited $DRAIN_STATUS on SIGTERM, expected 0" >&2
    exit 1
fi
if [ -e "$SOCK" ]; then
    echo "daemon left $SOCK behind after drain" >&2
    exit 1
fi
grep -q "drained" "$LOG" || { echo "no drain handshake in log" >&2; exit 1; }

# The daemon writes its profile at drain: per-request spans plus the stage/
# solver events of every check it ran.
[ -f "$TMP/daemon-profile.json" ] \
    || { echo "daemon never wrote its --profile" >&2; exit 1; }
python3 -m json.tool "$TMP/daemon-profile.json" > /dev/null \
    || { echo "daemon --profile is not valid JSON" >&2; exit 1; }
grep -q '"request.service"' "$TMP/daemon-profile.json" \
    || { echo "daemon profile has no request.service spans" >&2; exit 1; }

echo "equivalence held on $CHECKED inputs x 4 option sets"

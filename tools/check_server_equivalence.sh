#!/usr/bin/env bash
# The daemon's headline guarantee, enforced end-to-end: for every DTS in the
# example corpus and every output format, a served `llhsc check` must
# produce byte-identical stdout, byte-identical stderr and the same exit
# code as the one-shot `llhsc check` — the daemon is a cache, never a
# different checker. The guarantee is checked over the full deployment
# matrix: the in-process default, then {Unix socket, TCP} x {1, 4 worker
# processes}. The default leg also asserts that --profile (on both client
# and daemon) produces parseable Chrome-trace JSON without disturbing the
# equivalence. Every leg finishes by SIGTERMing the daemon and requiring a
# clean drain: exit 0, socket unlinked, the drain handshake in the log.
#
# LLHSC_EQUIV_MATRIX=0 skips the worker/TCP legs (the TSan CI leg runs only
# the in-process default: TSan cannot follow a fork that starts threads).
# Usage: check_server_equivalence.sh <llhsc> <llhscd> <examples-data-dir> [log]
set -eu

LLHSC="$1"
LLHSCD="$2"
DATA="$3"
TMP="$(mktemp -d)"
LOG="${4:-$TMP/llhscd.log}"
MATRIX="${LLHSC_EQUIV_MATRIX:-1}"

DAEMON_PID=""
cleanup() {
    [ -n "${DAEMON_PID:-}" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

SOCK=""
TCP_PORT=""
LEG_LOG=""

# start_daemon <leg-name> <workers> [extra llhscd args...]
start_daemon() {
    local leg="$1" workers="$2"
    shift 2
    SOCK="$TMP/$leg.sock"
    LEG_LOG="$TMP/$leg.log"
    "$LLHSCD" --socket "$SOCK" --listen 127.0.0.1:0 --jobs 2 \
        --workers "$workers" --log-file "$LEG_LOG" "$@" &
    DAEMON_PID=$!
    for _ in $(seq 1 200); do
        [ -S "$SOCK" ] && grep -q "listening on" "$LEG_LOG" 2>/dev/null && break
        sleep 0.05
    done
    [ -S "$SOCK" ] || { echo "[$leg] daemon never bound $SOCK" >&2; exit 1; }
    TCP_PORT="$(grep -o 'tcp port [0-9]*' "$LEG_LOG" | head -n 1 \
        | grep -o '[0-9]*$')"
    [ -n "$TCP_PORT" ] || { echo "[$leg] no TCP port in log" >&2; exit 1; }
}

# stop_daemon <leg-name>: SIGTERM, clean drain asserted.
stop_daemon() {
    local leg="$1" status=0
    kill -TERM "$DAEMON_PID"
    wait "$DAEMON_PID" || status=$?
    DAEMON_PID=""
    if [ "$status" -ne 0 ]; then
        echo "[$leg] daemon exited $status on SIGTERM, expected 0" >&2
        exit 1
    fi
    if [ -e "$SOCK" ]; then
        echo "[$leg] daemon left $SOCK behind after drain" >&2
        exit 1
    fi
    grep -q "drained" "$LEG_LOG" \
        || { echo "[$leg] no drain handshake in log" >&2; exit 1; }
}

# compare <leg> <transport> <dts> [check args...]: served vs one-shot bytes.
compare() {
    local leg="$1" transport="$2" dts="$3"
    shift 3
    local name; name="$(basename "$dts")"
    local direct_status=0 served_status=0
    local -a serve_flag
    if [ "$transport" = tcp ]; then
        serve_flag=(--tcp "127.0.0.1:$TCP_PORT")
    else
        serve_flag=(--socket "$SOCK")
    fi
    "$LLHSC" check "$dts" "$@" \
        > "$TMP/direct.out" 2> "$TMP/direct.err" || direct_status=$?
    "$LLHSC" check "$dts" "$@" "${serve_flag[@]}" \
        > "$TMP/served.out" 2> "$TMP/served.err" || served_status=$?
    if [ "$direct_status" -ne "$served_status" ]; then
        echo "[$leg/$transport] exit mismatch on $name $*:" \
             "direct=$direct_status served=$served_status" >&2
        exit 1
    fi
    diff "$TMP/direct.out" "$TMP/served.out" \
        || { echo "[$leg/$transport] stdout diverged on $name $*" >&2; exit 1; }
    diff "$TMP/direct.err" "$TMP/served.err" \
        || { echo "[$leg/$transport] stderr diverged on $name $*" >&2; exit 1; }
}

# sweep <leg> <transport>: the full corpus x option matrix, plus one warm
# repeat (served from cache, still byte-identical).
sweep() {
    local leg="$1" transport="$2"
    local checked=0
    for dts in "$DATA"/*.dts; do
        for fmt in text json sarif; do
            compare "$leg" "$transport" "$dts" --format "$fmt"
        done
        compare "$leg" "$transport" "$dts" --stats
        checked=$((checked + 1))
    done
    [ "$checked" -ge 2 ] \
        || { echo "[$leg] corpus too small: $checked files" >&2; exit 1; }
    local first; first="$(ls "$DATA"/*.dts | head -n 1)"
    compare "$leg" "$transport" "$first" --stats
    echo "[$leg/$transport] equivalence held on $checked inputs x 4 option sets"
}

# --- Default leg: in-process daemon, Unix socket, with profiling. ---------
SOCK="$TMP/d.sock"
LEG_LOG="$LOG"
"$LLHSCD" --socket "$SOCK" --jobs 2 --log-file "$LOG" \
    --profile "$TMP/daemon-profile.json" &
DAEMON_PID=$!
for _ in $(seq 1 200); do
    [ -S "$SOCK" ] && break
    sleep 0.05
done
[ -S "$SOCK" ] || { echo "daemon never bound $SOCK" >&2; exit 1; }

sweep default unix

# --profile must not disturb the equivalence, and both the client-side and
# the (deferred, daemon-side) profiles must be valid JSON.
first="$(ls "$DATA"/*.dts | head -n 1)"
compare default unix "$first" --stats --profile "$TMP/client-profile.json"
python3 -m json.tool "$TMP/client-profile.json" > /dev/null \
    || { echo "client --profile is not valid JSON" >&2; exit 1; }
grep -q '"traceEvents"' "$TMP/client-profile.json" \
    || { echo "client profile has no traceEvents" >&2; exit 1; }

stop_daemon default

# The daemon writes its profile at drain: per-request spans plus the stage/
# solver events of every check it ran.
[ -f "$TMP/daemon-profile.json" ] \
    || { echo "daemon never wrote its --profile" >&2; exit 1; }
python3 -m json.tool "$TMP/daemon-profile.json" > /dev/null \
    || { echo "daemon --profile is not valid JSON" >&2; exit 1; }
grep -q '"request.service"' "$TMP/daemon-profile.json" \
    || { echo "daemon profile has no request.service spans" >&2; exit 1; }

# --- Matrix legs: {unix, tcp} x {1, 4 workers}. ---------------------------
if [ "$MATRIX" = 1 ]; then
    for workers in 1 4; do
        start_daemon "w$workers" "$workers"
        sweep "w$workers" unix
        sweep "w$workers" tcp
        stop_daemon "w$workers"
    done
else
    echo "matrix legs skipped (LLHSC_EQUIV_MATRIX=$MATRIX)"
fi

echo "server equivalence matrix held"

#!/usr/bin/env bash
# Benchmark smoke for the check daemon's session store (PR4): runs the
# cold/warm/one-delta-edit rows of bench_server on the eight-VM workload and
# composes BENCH_pr4.json with the headline numbers. Fails unless the warm
# re-check is >=5x faster than the cold session and the one-delta edit
# rebuilt exactly one composed tree (derives==1) while everything else hit
# the artifact cache (hits>0).
# Usage: bench_pr4.sh <build-dir> [out.json]
set -eu

BUILD="$1"
OUT="${2:-BENCH_pr4.json}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BUILD/bench/bench_server" \
    --benchmark_filter='BM_Session' \
    --benchmark_format=json > "$TMP/server.json"

# Compose the google-benchmark report into one artifact. Portable (python3
# is available wherever the rest of CI tooling runs) but dependency free.
python3 - "$TMP/server.json" "$OUT" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)

rows = []
for b in report.get("benchmarks", []):
    rows.append({
        "name": b["name"],
        "label": b.get("label", ""),
        "real_time_us": b["real_time"] / 1e3,
        "exit_code": int(b.get("exit_code", -1)),
        "derives": int(b.get("derives", -1)),
        "unit_checks": int(b.get("unit_checks", -1)),
        "hits": int(b.get("hits", -1)),
    })

by_label = {r["label"]: r for r in rows}
cold = by_label.get("cold", {})
warm = by_label.get("warm", {})
edit = by_label.get("one-delta-edit", {})
speedup = (cold.get("real_time_us", 0) / warm["real_time_us"]
           if warm.get("real_time_us") else 0.0)

result = {
    "pr": 4,
    "workload": "eight-VM session (alternating Fig. 1b / Fig. 1c) through "
                "the llhscd artifact store",
    "context": report.get("context", {}),
    "rows": rows,
    "summary": {
        "cold_us": cold.get("real_time_us"),
        "warm_us": warm.get("real_time_us"),
        "warm_speedup": round(speedup, 1),
        "warm_speedup_at_least_5x": speedup >= 5.0,
        "one_delta_edit_derives": edit.get("derives"),
        "one_delta_edit_unit_checks": edit.get("unit_checks"),
        "one_delta_edit_hits": edit.get("hits"),
    },
}
with open(sys.argv[2], "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

if speedup < 5.0:
    sys.exit(f"warm session is only {speedup:.1f}x faster than cold, "
             "expected >=5x")
if edit.get("derives") != 1:
    sys.exit("one-delta edit rebuilt "
             f"{edit.get('derives')} composed trees, expected exactly 1")
if edit.get("hits", 0) <= 0:
    sys.exit("one-delta edit recorded no artifact-cache hits")
for r in rows:
    if r["exit_code"] != 0:
        sys.exit(f"{r['name']} exited {r['exit_code']}, expected 0")
EOF

echo "wrote $OUT"

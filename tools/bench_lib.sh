#!/usr/bin/env bash
# Shared benchmark-gate plumbing for tools/bench_pr*.sh and bench_corpus.sh.
#
# Every gate in this repo uses the same estimator: run the benchmark binary
# in several *interleaved* rounds (A B, A B, A B — not A A A then B B B),
# pool every iteration sample per benchmark, and compare pooled *minima*.
# Scheduler/load noise on shared CI runners is strictly additive and
# bursty, so a burst would have to cover every round of every contender to
# bias a pooled minimum — medians of a single run flap at the few-percent
# scale these gates operate at.
#
# Source this file; do not execute it.

# bench_interleaved_rounds <outdir> <name> <rounds> <binary> [args...]
#
# Runs <binary> <args...> --benchmark_repetitions=3 --benchmark_format=json
# <rounds> times, writing <outdir>/<name>-<round>.json for each round.
# Callers interleave contenders by putting them in one --benchmark_filter.
bench_interleaved_rounds() {
    local outdir="$1" name="$2" rounds="$3" binary="$4"
    shift 4
    local round
    for round in $(seq 1 "$rounds"); do
        "$binary" "$@" \
            --benchmark_repetitions=3 \
            --benchmark_format=json > "$outdir/$name-$round.json"
    done
}

# bench_collect_samples <round.json>...
#
# Pools iteration samples from google-benchmark JSON reports and emits a
# single JSON object on stdout:
#   {"context": {...}, "samples": {"<run_name base>": [us, us, ...]}}
# run_type != "iteration" rows (aggregates) are skipped; run names are
# keyed on the part before the first "/" so arg sweeps pool per benchmark.
# Times are converted ns -> us.
bench_collect_samples() {
    python3 - "$@" <<'EOF'
import json, sys

samples = {}
context = {}
for path in sys.argv[1:]:
    with open(path) as f:
        report = json.load(f)
    context = report.get("context", context)
    for b in report.get("benchmarks", []):
        if b.get("run_type") != "iteration":
            continue
        base = b["run_name"].split("/")[0]
        samples.setdefault(base, []).append(b["real_time"] / 1e3)  # ns -> us
json.dump({"context": context, "samples": samples}, sys.stdout)
EOF
}

# bench_time_ms <repeat> <cmd> [args...]
#
# Wall-clock gate helper for whole-process workloads (the llhsc CLI over
# the example corpus): runs the command <repeat> times and prints the
# minimum wall time in milliseconds. The command's stdout/stderr are
# discarded; a non-zero exit up to 1 is tolerated (llhsc exits 1 when a
# check finds real errors, which the corpus intentionally contains).
bench_time_ms() {
    local repeat="$1"
    shift
    python3 - "$repeat" "$@" <<'EOF'
import subprocess, sys, time

repeat = int(sys.argv[1])
cmd = sys.argv[2:]
best = None
for _ in range(repeat):
    t0 = time.monotonic()
    proc = subprocess.run(cmd, stdout=subprocess.DEVNULL,
                          stderr=subprocess.DEVNULL)
    elapsed = (time.monotonic() - t0) * 1e3
    if proc.returncode > 1:
        sys.exit(f"{cmd} exited {proc.returncode}")
    if best is None or elapsed < best:
        best = elapsed
print(f"{best:.3f}")
EOF
}

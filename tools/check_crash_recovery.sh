#!/usr/bin/env bash
# Crash recovery end-to-end: a 2-worker llhscd serves a sustained burst of
# cached checks while one worker is kill -9'd mid-load. Every request must
# still be answered — byte-identical to the one-shot CLI, or a clean
# worker_failed error after the one retry — the supervisor must respawn the
# worker (healthz alive==2, restarts>=1, death + respawn in the log), the
# dead worker's flock on the shared qc1 store must be released by the
# kernel (probed with a non-blocking flock), the store itself must still
# serve byte-identical warm results, and SIGTERM must still drain cleanly.
# Usage: check_crash_recovery.sh <llhsc> <llhscd> <examples-data-dir>
set -eu

LLHSC="$1"
LLHSCD="$2"
DATA="$3"
TMP="$(mktemp -d)"
SOCK="$TMP/d.sock"
LOG="$TMP/llhscd.log"
CACHE="$TMP/cache"
# d3-truncation.dts is the corpus file whose checks reach the SMT solver,
# so serving it with --cache-dir exercises the shared on-disk qc1 store
# (and its flock) from both workers.
DTS="$DATA/d3-truncation.dts"

DAEMON_PID=""
cleanup() {
    [ -n "${DAEMON_PID:-}" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

[ -f "$DTS" ] || { echo "missing corpus file $DTS" >&2; exit 1; }

# Reference bytes from the one-shot CLI (its own cache dir: the daemon's
# shared store must not be able to change the answer, only its latency).
REF_STATUS=0
"$LLHSC" check "$DTS" --format json --cache-dir "$TMP/refcache" \
    > "$TMP/ref.out" 2> "$TMP/ref.err" || REF_STATUS=$?

"$LLHSCD" --socket "$SOCK" --jobs 2 --workers 2 --log-file "$LOG" &
DAEMON_PID=$!
for _ in $(seq 1 200); do
    [ -S "$SOCK" ] && grep -q "listening on" "$LOG" 2>/dev/null && break
    sleep 0.05
done
[ -S "$SOCK" ] || { echo "daemon never bound $SOCK" >&2; exit 1; }

# healthz <sock> <field...>: prints the requested workers.* fields.
healthz() {
    python3 - "$@" <<'PYEOF'
import json, socket, sys
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
s.settimeout(10.0)
s.sendall(b'{"id": 1, "method": "healthz"}\n')
buf = b""
while b"\n" not in buf:
    chunk = s.recv(65536)
    assert chunk, "daemon closed the healthz connection"
    buf += chunk
reply = json.loads(buf.split(b"\n", 1)[0])
assert reply["ok"] is True, reply
workers = reply["result"]["workers"]
for field in sys.argv[2:]:
    value = workers[field]
    if isinstance(value, list):
        print(" ".join(str(v) for v in value))
    else:
        print(value)
PYEOF
}

# Sustained load: 6 clients x 12 served checks against the shared cache.
client() {
    local i="$1" j st
    for j in $(seq 1 12); do
        st=0
        "$LLHSC" check "$DTS" --format json --socket "$SOCK" \
            --cache-dir "$CACHE" \
            > "$TMP/c$i.$j.out" 2> "$TMP/c$i.$j.err" || st=$?
        echo "$st" > "$TMP/c$i.$j.st"
    done
}
CLIENT_PIDS=()
for i in $(seq 1 6); do
    client "$i" &
    CLIENT_PIDS+=("$!")
done

# Mid-burst, kill -9 one worker (pid taken from healthz, so this also pins
# the workers.pids surface).
sleep 0.3
VICTIM="$(healthz "$SOCK" pids | awk '{print $1}')"
[ -n "$VICTIM" ] || { echo "healthz reported no worker pids" >&2; exit 1; }
kill -9 "$VICTIM"

for pid in "${CLIENT_PIDS[@]}"; do
    wait "$pid" || { echo "a client driver itself failed" >&2; exit 1; }
done

# Every one of the 72 requests is accounted for: identical bytes, or a
# clean worker_failed error. Nothing lost, nothing corrupted.
served=0
failed_over=0
for stf in "$TMP"/c*.st; do
    base="${stf%.st}"
    st="$(cat "$stf")"
    if [ "$st" = "$REF_STATUS" ] && cmp -s "$base.out" "$TMP/ref.out"; then
        served=$((served + 1))
    elif [ "$st" = 2 ] && grep -q "worker_failed" "$base.err"; then
        failed_over=$((failed_over + 1))
    else
        echo "request $base unaccounted for: exit $st" \
             "(expected $REF_STATUS + identical bytes, or worker_failed)" >&2
        sed -n '1,5p' "$base.err" >&2
        exit 1
    fi
done
[ "$served" -ge 1 ] || { echo "no request was ever served" >&2; exit 1; }
echo "burst: $served identical, $failed_over clean worker_failed"

# The supervisor noticed the death and respawned: healthz converges back to
# 2 live workers with at least one restart on record.
recovered=0
for _ in $(seq 1 200); do
    read -r ALIVE RESTARTS <<EOF
$(healthz "$SOCK" alive restarts | tr '\n' ' ')
EOF
    if [ "$ALIVE" = 2 ] && [ "$RESTARTS" -ge 1 ]; then
        recovered=1
        break
    fi
    sleep 0.05
done
[ "$recovered" = 1 ] \
    || { echo "healthz never showed alive=2 restarts>=1" >&2; exit 1; }
grep -q "died (status" "$LOG" \
    || { echo "no worker death recorded in the log" >&2; exit 1; }
[ "$(grep -c "worker w[0-9]* pid" "$LOG")" -ge 3 ] \
    || { echo "no respawn recorded in the log" >&2; exit 1; }

# The killed worker's flock must have been released by the kernel: a
# non-blocking exclusive flock on every writer lock must succeed.
python3 - "$CACHE" <<'PYEOF'
import fcntl, glob, sys
locks = glob.glob(sys.argv[1] + "/qc*/.writer.lock")
assert locks, "the burst never created a writer lock in the shared cache"
for path in locks:
    with open(path, "r+") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
        fcntl.flock(handle, fcntl.LOCK_UN)
print(f"{len(locks)} writer lock(s) free after kill -9")
PYEOF

# The shared store survived the crash: a warm served check still matches
# the one-shot CLI byte for byte.
WARM_STATUS=0
"$LLHSC" check "$DTS" --format json --socket "$SOCK" --cache-dir "$CACHE" \
    > "$TMP/warm.out" 2> "$TMP/warm.err" || WARM_STATUS=$?
[ "$WARM_STATUS" = "$REF_STATUS" ] \
    || { echo "warm post-crash exit $WARM_STATUS != $REF_STATUS" >&2; exit 1; }
cmp -s "$TMP/warm.out" "$TMP/ref.out" \
    || { echo "warm post-crash stdout diverged" >&2; exit 1; }

# And SIGTERM still drains cleanly.
status=0
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || status=$?
DAEMON_PID=""
[ "$status" -eq 0 ] \
    || { echo "daemon exited $status on SIGTERM, expected 0" >&2; exit 1; }
grep -q "drained" "$LOG" \
    || { echo "no drain handshake after recovery" >&2; exit 1; }

echo "crash recovery held: kill -9 survived, flock released, store intact"

#!/usr/bin/env bash
# Horizontal-scaling gate for the PR10 worker-pool daemon: drives a
# 1-worker and a 4-worker llhscd with the bench_scale client load (8
# concurrent clients, solver-backed, cache-defeating check requests) in
# interleaved rounds, pools the per-leg best throughput (the pooled-min
# wall-clock estimator of tools/bench_lib.sh), and composes
# BENCH_pr10.json. On a >=4-CPU host the multi-worker leg must be >=2x the
# 1-worker leg; on smaller hosts (CI containers are often 1-CPU) the
# numbers are still recorded but the ratio gate is not enforced —
# forked workers cannot beat one worker without cores to run on.
# Every request of every round must be served with zero failures
# regardless of host size; that part always gates.
# Usage: bench_scale.sh <build-dir> [out.json]
set -eu

BUILD="$1"
OUT="${2:-BENCH_pr10.json}"
TMP="$(mktemp -d)"
ROUNDS=3
CLIENTS=8
REQUESTS=6
MULTI_WORKERS=4

# shellcheck source=bench_lib.sh
. "$(dirname "$0")/bench_lib.sh"

PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill -TERM "$pid" 2>/dev/null || true; done
    for pid in "${PIDS[@]:-}"; do wait "$pid" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT

# Both daemons stay up for the whole run so the interleaved rounds hit
# warm, directly comparable processes.
start_daemon() {
    local leg="$1" workers="$2"
    "$BUILD/tools/llhscd" --socket "$TMP/$leg.sock" --workers "$workers" \
        --jobs 1 --log-file "$TMP/$leg.log" &
    PIDS+=("$!")
    for _ in $(seq 1 200); do
        [ -S "$TMP/$leg.sock" ] && return 0
        sleep 0.05
    done
    echo "[$leg] daemon never bound its socket" >&2
    exit 1
}
start_daemon w1 1
start_daemon "w$MULTI_WORKERS" "$MULTI_WORKERS"

# Interleaved rounds: w1, wN, w1, wN ... Each round gets a distinct --tag
# so no request body ever repeats and no cache layer can serve a verdict.
tag=0
for round in $(seq 1 "$ROUNDS"); do
    for leg in w1 "w$MULTI_WORKERS"; do
        tag=$((tag + 1))
        "$BUILD/bench/bench_scale" --socket "$TMP/$leg.sock" \
            --clients "$CLIENTS" --requests "$REQUESTS" --tag "$tag" \
            > "$TMP/$leg-$round.json" \
            || { echo "[$leg round $round] load driver reported failures" >&2
                 cat "$TMP/$leg-$round.json" >&2
                 exit 1; }
    done
done

python3 - "$TMP" "$OUT" "$ROUNDS" "$CLIENTS" "$REQUESTS" \
    "$MULTI_WORKERS" <<'EOF'
import json, os, sys

tmp, out = sys.argv[1], sys.argv[2]
rounds, clients, requests = int(sys.argv[3]), int(sys.argv[4]), int(sys.argv[5])
multi = int(sys.argv[6])
cpus = os.cpu_count() or 1
expected = clients * requests

rows = []
best = {}
for leg in ("w1", f"w{multi}"):
    for rnd in range(1, rounds + 1):
        with open(os.path.join(tmp, f"{leg}-{rnd}.json")) as f:
            row = json.load(f)
        row["leg"], row["round"] = leg, rnd
        if row["failures"] != 0 or row["served"] != expected:
            sys.exit(f"[{leg} round {rnd}] {row['served']}/{expected} "
                     f"served, {row['failures']} failures")
        rows.append(row)
        # Pooled minimum wall time == pooled maximum throughput: additive
        # scheduler noise cannot bias it unless it hits every round.
        if leg not in best or row["wall_ms"] < best[leg]["wall_ms"]:
            best[leg] = row

speedup = best[f"w{multi}"]["rps"] / best["w1"]["rps"]
gate_enforced = cpus >= 4
result = {
    "pr": 10,
    "workload": f"{clients} concurrent clients x {requests} cache-defeating "
                "solver-backed check requests over the Unix socket, "
                f"1-worker vs {multi}-worker llhscd (--jobs 1 each), "
                f"{rounds} interleaved rounds, pooled-best throughput",
    "context": {"num_cpus": cpus},
    "rows": rows,
    "summary": {
        "w1_best_rps": round(best["w1"]["rps"], 3),
        f"w{multi}_best_rps": round(best[f"w{multi}"]["rps"], 3),
        "multi_worker_speedup": round(speedup, 2),
        "gate_enforced": gate_enforced,
        "gate_threshold": 2.0,
    },
}
with open(out, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

print(f"w1 {best['w1']['rps']:.1f} rps, w{multi} "
      f"{best[f'w{multi}']['rps']:.1f} rps, speedup {speedup:.2f}x "
      f"({cpus} cpus, gate {'ON' if gate_enforced else 'off'})")
if gate_enforced and speedup < 2.0:
    sys.exit(f"multi-worker speedup {speedup:.2f}x < 2.0x on a "
             f"{cpus}-cpu host")
EOF

echo "wrote $OUT"

#!/usr/bin/env bash
# Local clang-tidy runner over the production sources (src/, tools/,
# bench/ — tests are exercised functionally, not linted). Uses the
# repo-root .clang-tidy; new warnings fail (WarningsAsErrors covers every
# enabled family).
#
# Usage: run_clang_tidy.sh [build-dir] [-- <extra clang-tidy args>]
#   build-dir: a CMake build tree configured with
#              -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (default: build)
#
# Gates gracefully: exits 0 with a notice when clang-tidy is not installed
# (the sandbox image does not ship it; CI installs it), and exits 2 when
# the build tree has no compile_commands.json to drive it with.
set -eu

BUILD_DIR="${1:-build}"
shift || true
[ "${1:-}" = "--" ] && shift

if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "run_clang_tidy: clang-tidy not found on PATH; skipping (install" \
         "clang-tidy to run the static-analysis gate locally)" >&2
    exit 0
fi

DB="$BUILD_DIR/compile_commands.json"
if [ ! -f "$DB" ]; then
    echo "run_clang_tidy: $DB not found — configure with" \
         "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first" >&2
    exit 2
fi

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

# Every production translation unit the compile database knows about.
FILES="$(python3 - "$DB" <<'EOF'
import json, sys
for entry in json.load(open(sys.argv[1])):
    f = entry["file"]
    for prefix in ("src/", "tools/", "bench/"):
        i = f.find("/" + prefix)
        if i != -1 and f.endswith(".cpp"):
            print(f)
            break
EOF
)"
if [ -z "$FILES" ]; then
    echo "run_clang_tidy: no production sources in $DB" >&2
    exit 2
fi

JOBS="$(nproc 2> /dev/null || echo 4)"
echo "$FILES" | tr ' ' '\n' | sort -u |
    xargs -P "$JOBS" -n 1 clang-tidy -p "$BUILD_DIR" --quiet "$@"
echo "run_clang_tidy: clean"

#!/usr/bin/env bash
# Benchmark smoke for the query planner (PR3): runs the planner ablations of
# bench_semantic_overlap and bench_pipeline (the eight-VM workload) and
# composes BENCH_pr3.json with the headline numbers — semantic solver checks
# and queries issued/pruned/cache hits per mode, plus wall times — so CI can
# archive the evidence for the >=10x check reduction and the zero-query warm
# run.
# Usage: bench_pr3.sh <build-dir> [out.json]
set -eu

BUILD="$1"
OUT="${2:-BENCH_pr3.json}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BUILD/bench/bench_pipeline" \
    --benchmark_filter='BM_PipelineEightVmPlanner' \
    --benchmark_format=json > "$TMP/pipeline.json"
"$BUILD/bench/bench_semantic_overlap" \
    --benchmark_filter='BM_OverlapCheckPlanner/32/0' \
    --benchmark_format=json > "$TMP/overlap.json"

# Stitch the two google-benchmark reports into one artifact. Portable
# (python3 is available wherever the rest of CI tooling runs) but dependency
# free: the composition is plain json.
python3 - "$TMP/pipeline.json" "$TMP/overlap.json" "$OUT" <<'EOF'
import json, sys

def load(path):
    with open(path) as f:
        return json.load(f)

pipeline, overlap = load(sys.argv[1]), load(sys.argv[2])

def rows(report):
    out = []
    for b in report.get("benchmarks", []):
        out.append({
            "name": b["name"],
            "label": b.get("label", ""),
            "real_time_ms": b["real_time"] / 1e6,
            "solver_checks": b.get("semantic_solver_checks",
                                   b.get("solver_checks", 0)),
            "queries_issued": b.get("queries_issued", 0),
            "queries_pruned": b.get("queries_pruned", 0),
            "cache_hits": b.get("cache_hits", 0),
        })
    return out

pipeline_rows = rows(pipeline)
by_label = {r["label"]: r for r in pipeline_rows}
exhaustive = by_label.get("exhaustive", {}).get("solver_checks", 0)
planned = by_label.get("planned", {}).get("solver_checks", 0)
warm_issued = by_label.get("warm-cache", {}).get("queries_issued", -1)

result = {
    "pr": 3,
    "workload": "eight-VM pipeline + 32-region overlap sweep",
    "context": pipeline.get("context", {}),
    "eight_vm_pipeline": pipeline_rows,
    "overlap_32_regions": rows(overlap),
    "summary": {
        "exhaustive_semantic_solver_checks": exhaustive,
        "planned_semantic_solver_checks": planned,
        "check_reduction_at_least_10x": planned * 10 <= exhaustive,
        "warm_cache_queries_issued": warm_issued,
    },
}
with open(sys.argv[3], "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

if planned * 10 > exhaustive:
    sys.exit("planner failed the 10x reduction bar: "
             f"planned={planned} exhaustive={exhaustive}")
if warm_issued != 0:
    sys.exit(f"warm-cache run issued {warm_issued} queries, expected 0")
EOF

echo "wrote $OUT"

#!/usr/bin/env bash
# Cold-path trajectory gate (PR8): benches the cold check path at two
# levels and composes BENCH_pr8.json.
#
#   1. Eight-VM planned pipeline, cold (BM_PipelineEightVmPlanner/1 — no
#      query cache, every semantic query really runs). When a baseline
#      build directory is given, the two binaries run in three interleaved
#      rounds and the gate fails unless the current pooled-min time beats
#      the baseline pooled min by >= 10% — the PR8 acceptance bar, and the
#      regression bar every later PR inherits (a later PR that slows the
#      cold path below the recorded baseline ratio fails CI here).
#   2. The example corpus through the real CLI: every .dts under
#      examples/data checked cold (fresh --cache-dir) and warm (second run
#      against the populated cache). The warm pass must report
#      "queries issued: 0" for every file — the PR3 warm-run guarantee,
#      re-asserted here because retention and the arena front end both
#      touch the machinery under it.
#
# Pooled minima over interleaved rounds via tools/bench_lib.sh (see there
# for why that estimator, not medians, holds up on noisy shared runners).
#
# Usage: bench_corpus.sh <build-dir> [out.json] [baseline-build-dir]
#   baseline-build-dir: a build of the pre-PR8 tree (CI builds it from the
#   pinned baseline commit in a git worktree). Without it the cross-build
#   gate is skipped and the corpus rows are informational.
set -eu

BUILD="$1"
OUT="${2:-BENCH_pr8.json}"
BASELINE="${3:-}"
DATA="$(dirname "$0")/../examples/data"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

. "$(dirname "$0")/bench_lib.sh"

# -- eight-VM cold pipeline, current vs (optional) baseline, interleaved --
run_eight_vm() {
    "$1/bench/bench_pipeline" \
        --benchmark_filter='BM_PipelineEightVmPlanner/1$' \
        --benchmark_repetitions=3 \
        --benchmark_format=json
}
for round in 1 2 3; do
    run_eight_vm "$BUILD" > "$TMP/current-$round.json"
    if [ -n "$BASELINE" ]; then
        run_eight_vm "$BASELINE" > "$TMP/baseline-$round.json"
    fi
done

bench_collect_samples "$TMP"/current-{1,2,3}.json > "$TMP/current.json"
if [ -n "$BASELINE" ]; then
    bench_collect_samples "$TMP"/baseline-{1,2,3}.json > "$TMP/baseline.json"
else
    echo '{"context": {}, "samples": {}}' > "$TMP/baseline.json"
fi

# -- example corpus through the CLI, cold and warm --
corpus_cmd() {
    # $1: llhsc binary  $2: cache dir ("fresh" allocates a new one per run)
    printf 'cd=%q\nif [ "$cd" = fresh ]; then cd=$(mktemp -d); fi\n' "$2"
    printf 'for f in %q/*.dts; do\n' "$DATA"
    printf '  %q check "$f" --cache-dir "$cd" >/dev/null 2>&1; s=$?\n' "$1"
    printf '  [ "$s" -le 1 ] || exit "$s"\ndone\n'
}
corpus_cmd "$BUILD/tools/llhsc" fresh > "$TMP/cold.sh"
CORPUS_COLD_MS="$(bench_time_ms 5 bash "$TMP/cold.sh")"

WARM_DIR="$TMP/qc-warm"
corpus_cmd "$BUILD/tools/llhsc" "$WARM_DIR" > "$TMP/warm.sh"
bash "$TMP/warm.sh"   # populate the cache once, untimed
CORPUS_WARM_MS="$(bench_time_ms 5 bash "$TMP/warm.sh")"

CORPUS_BASELINE_COLD_MS=""
if [ -n "$BASELINE" ]; then
    corpus_cmd "$BASELINE/tools/llhsc" fresh > "$TMP/base-cold.sh"
    CORPUS_BASELINE_COLD_MS="$(bench_time_ms 5 bash "$TMP/base-cold.sh")"
fi

# Warm-run guarantee: with the cache populated, no file issues a query.
for f in "$DATA"/*.dts; do
    status=0
    "$BUILD/tools/llhsc" check "$f" --cache-dir "$WARM_DIR" --stats \
        > /dev/null 2> "$TMP/stats.err" || status=$?
    [ "$status" -le 1 ]
    if ! grep -q 'queries issued: 0,' "$TMP/stats.err"; then
        echo "warm check of $f still issued solver queries:" >&2
        cat "$TMP/stats.err" >&2
        exit 1
    fi
done

python3 - "$TMP/current.json" "$TMP/baseline.json" "$OUT" \
    "$CORPUS_COLD_MS" "$CORPUS_WARM_MS" "$CORPUS_BASELINE_COLD_MS" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    current = json.load(f)
with open(sys.argv[2]) as f:
    baseline = json.load(f)

cur_all = current["samples"].get("BM_PipelineEightVmPlanner")
if not cur_all:
    sys.exit(f"missing benchmark rows, got {sorted(current['samples'])}")
cur = min(cur_all)

base_all = baseline["samples"].get("BM_PipelineEightVmPlanner")
base = min(base_all) if base_all else None
improvement = (1.0 - cur / base) if base else None

corpus_cold_ms = float(sys.argv[4])
corpus_warm_ms = float(sys.argv[5])
corpus_base_cold_ms = float(sys.argv[6]) if sys.argv[6] else None

result = {
    "pr": 8,
    "workload": "cold eight-VM planned pipeline (alternating Fig. 1b / "
                "Fig. 1c, no query cache) vs pre-PR8 baseline build, plus "
                "the examples/data corpus through the CLI cold and warm",
    "context": current["context"],
    "eight_vm_cold": {
        "current_min_us": cur,
        "current_samples_us": [round(t, 1) for t in cur_all],
        "baseline_min_us": base,
        "baseline_samples_us": (
            [round(t, 1) for t in base_all] if base_all else None),
        "improvement_pct": (
            round(improvement * 100.0, 2) if improvement is not None
            else None),
        "improved_at_least_10pct": (
            improvement >= 0.10 if improvement is not None else None),
    },
    "corpus_cli": {
        "files": "examples/data/*.dts",
        "cold_min_ms": corpus_cold_ms,
        "warm_min_ms": corpus_warm_ms,
        "baseline_cold_min_ms": corpus_base_cold_ms,
        "cold_improvement_pct": (
            round((1.0 - corpus_cold_ms / corpus_base_cold_ms) * 100.0, 2)
            if corpus_base_cold_ms else None),
        "warm_zero_queries": True,
    },
}
with open(sys.argv[3], "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

if improvement is None:
    print("no baseline build given; cross-build gate skipped",
          file=sys.stderr)
elif improvement < 0.10:
    sys.exit(f"cold eight-VM check is only {improvement * 100.0:.2f}% "
             "faster than the baseline build, the bar is 10%")
EOF

echo "wrote $OUT"

#!/usr/bin/env bash
# Device-graph overhead gate (PR6): runs the planned eight-VM pipeline with
# the graph stage on (BM_PipelineEightVmPlanner/1 — graph is on by default)
# and off (BM_PipelineEightVmNoGraph) and composes BENCH_pr6.json. Fails if
# the minimum graph-on time exceeds the minimum graph-off time by more than
# 5% — the IR build, the four per-unit rules, and the cross-unit analysis
# together must stay cheap enough to run on every check. Minima pooled over
# three interleaved binary runs via tools/bench_lib.sh (additive bursty CI
# noise cannot bias a pooled minimum without covering every round).
# Usage: bench_pr6.sh <build-dir> [out.json]
set -eu

BUILD="$1"
OUT="${2:-BENCH_pr6.json}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

. "$(dirname "$0")/bench_lib.sh"

bench_interleaved_rounds "$TMP" pipeline 3 "$BUILD/bench/bench_pipeline" \
    --benchmark_filter='BM_PipelineEightVmPlanner/1$|BM_PipelineEightVmNoGraph'

bench_collect_samples "$TMP"/pipeline-{1,2,3}.json > "$TMP/samples.json"

python3 - "$TMP/samples.json" "$OUT" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    pooled = json.load(f)
samples = pooled["samples"]

graphed_all = samples.get("BM_PipelineEightVmPlanner")
ungraphed_all = samples.get("BM_PipelineEightVmNoGraph")
if not graphed_all or not ungraphed_all:
    sys.exit(f"missing benchmark rows, got {sorted(samples)}")

graphed = min(graphed_all)
ungraphed = min(ungraphed_all)
overhead = graphed / ungraphed - 1.0

result = {
    "pr": 6,
    "workload": "planned eight-VM pipeline (alternating Fig. 1b / Fig. 1c), "
                "device-graph stage on vs check_graph=false",
    "context": pooled["context"],
    "summary": {
        "graph_on_min_us": graphed,
        "graph_off_min_us": ungraphed,
        "graph_on_samples_us": [round(t, 1) for t in graphed_all],
        "graph_off_samples_us": [round(t, 1) for t in ungraphed_all],
        "graph_overhead_pct": round(overhead * 100.0, 2),
        "graph_overhead_at_most_5pct": overhead <= 0.05,
    },
}
with open(sys.argv[2], "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

if overhead > 0.05:
    sys.exit(f"device-graph stage costs {overhead * 100.0:.2f}% on the "
             "planned eight-VM pipeline, budget is 5%")
EOF

echo "wrote $OUT"

// llhsc — the command-line tool. Thin driver over the library:
//
//   llhsc check <file.dts> [--schemas <file.yaml>] [--backend builtin|z3]
//               [--format text|json|sarif] [--no-lint] [--no-crossref]
//               [--no-syntax] [--no-semantics] [--disable-rule id,...]
//               [--rule-severity id=error|warning,...] [--no-plan]
//               [--cache-dir <dir>] [--stats]
//       Run the checkers on one DTS; exit 1 on errors. The cross-reference
//       rule catalog is in docs/rules.md; --cache-dir persists semantic
//       solver verdicts across runs (docs/performance.md), --no-plan
//       disables the query planner, --stats prints the planner counters
//       on stderr.
//
//   llhsc generate --core <core.dts> --deltas <file.deltas>
//                  --features f1,f2,... [--out <dir>] [--name <vm>]
//       Derive one product from a DTS product line, check it, and write
//       <name>.dts / <name>.dtb.
//
//   llhsc demo [--out <dir>] [--jobs N] [--solver-timeout-ms N]
//              [--trace-json <file>] [--verbose] [--no-plan]
//              [--cache-dir <dir>]
//       Run the paper's running example end to end and write every artifact
//       (VM DTSs, platform DTS, DTBs, platform.c, config.c). --jobs checks
//       the VMs in parallel (output is byte-identical to --jobs 1);
//       --trace-json / --verbose expose the per-stage trace.
//
// Exit codes (all commands): 0 success (warnings allowed), 1 findings or
// input rejected by a checker/parser, 2 usage or I/O error.
//
//   llhsc products
//       Enumerate the valid products of the running-example feature model.
#include <fstream>
#include <map>
#include <iostream>
#include <sstream>

#include "checkers/crossref/rules.hpp"
#include "checkers/lint.hpp"
#include "checkers/report.hpp"
#include "checkers/semantic.hpp"
#include "checkers/syntactic.hpp"
#include "core/pipeline.hpp"
#include "core/running_example.hpp"
#include "dts/overlay.hpp"
#include "dts/parser.hpp"
#include "dts/printer.hpp"
#include "fdt/fdt.hpp"
#include "feature/analysis.hpp"
#include "feature/multivm.hpp"
#include "feature/configurator.hpp"
#include "feature/text_format.hpp"
#include "schema/builtin_schemas.hpp"
#include "schema/yaml_lite.hpp"
#include "support/strings.hpp"

namespace {

using namespace llhsc;

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;  // --key value / --key
  [[nodiscard]] bool has(const std::string& key) const {
    return options.count(key) > 0;
  }
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      std::string key = a.substr(2);
      // Flags take a value unless they are known booleans.
      bool boolean = key.rfind("no-", 0) == 0 || key == "quiet" ||
                     key == "count-only" || key == "verbose" ||
                     key == "stats";
      if (!boolean && i + 1 < argc) {
        args.options[key] = argv[++i];
      } else {
        args.options[key] = "1";
      }
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool write_file(const std::string& path, std::string_view data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  return out.good();
}

bool write_file(const std::string& path, const std::vector<uint8_t>& data) {
  return write_file(path, std::string_view(
                              reinterpret_cast<const char*>(data.data()),
                              data.size()));
}

/// Parses an unsigned integer option. Exits 2 (usage error) on junk so a
/// typo never silently becomes a default.
uint64_t uint_option_or_die(const Args& args, const std::string& key,
                            uint64_t fallback) {
  if (!args.has(key)) return fallback;
  auto v = support::parse_integer(args.get(key));
  if (!v) {
    std::cerr << "bad --" << key << " value '" << args.get(key)
              << "' (want an unsigned integer)\n";
    std::exit(2);
  }
  return *v;
}

smt::Backend backend_from(const Args& args) {
  std::string name = args.get("backend", "builtin");
  if (name == "z3") return smt::Backend::kZ3;
  if (name != "builtin") {
    std::cerr << "warning: unknown backend '" << name << "', using builtin\n";
  }
  return smt::Backend::kBuiltin;
}

schema::SchemaSet schemas_from(const Args& args) {
  if (args.has("schemas")) {
    auto text = read_file(args.get("schemas"));
    if (!text) {
      std::cerr << "cannot open schemas file " << args.get("schemas") << "\n";
      std::exit(2);
    }
    support::DiagnosticEngine diags;
    schema::SchemaSet set;
    schema::load_schema_stream(*text, set, diags);
    if (diags.has_errors()) {
      std::cerr << diags.render();
      std::exit(2);
    }
    return set;
  }
  return schema::builtin_schemas();
}

std::unique_ptr<dts::Tree> parse_file_or_die(const std::string& path) {
  auto source = read_file(path);
  if (!source) {
    std::cerr << "cannot open " << path << "\n";
    std::exit(2);
  }
  dts::SourceManager sm;
  size_t slash = path.find_last_of('/');
  sm.set_base_directory(slash == std::string::npos ? "."
                                                   : path.substr(0, slash));
  support::DiagnosticEngine diags;
  auto tree = dts::parse_dts(*source, path, sm, diags);
  if (tree == nullptr || diags.has_errors()) {
    std::cerr << diags.render();
    std::exit(1);
  }
  return tree;
}

/// Maps --disable-rule / --rule-severity onto CrossRefOptions. Unknown rule
/// ids are reported and rejected so typos don't silently disable nothing.
std::optional<checkers::crossref::CrossRefOptions> crossref_options_from(
    const Args& args) {
  checkers::crossref::CrossRefOptions opts;
  bool ok = true;
  for (const std::string& id : support::split(args.get("disable-rule"), ',')) {
    auto t = support::trim(id);
    if (t.empty()) continue;
    if (checkers::crossref::find_rule(t) == nullptr) {
      std::cerr << "unknown rule id '" << std::string(t)
                << "' in --disable-rule\n";
      ok = false;
      continue;
    }
    opts.disabled.insert(std::string(t));
  }
  for (const std::string& ov : support::split(args.get("rule-severity"), ',')) {
    auto t = support::trim(ov);
    if (t.empty()) continue;
    size_t eq = t.find('=');
    std::string id(support::trim(t.substr(0, eq == std::string_view::npos
                                                 ? t.size()
                                                 : eq)));
    std::string sev = eq == std::string_view::npos
                          ? std::string()
                          : std::string(support::trim(t.substr(eq + 1)));
    if (checkers::crossref::find_rule(id) == nullptr ||
        (sev != "error" && sev != "warning")) {
      std::cerr << "bad --rule-severity entry '" << std::string(t)
                << "' (want <rule-id>=error|warning)\n";
      ok = false;
      continue;
    }
    opts.severity_overrides[id] = sev == "error"
                                      ? checkers::FindingSeverity::kError
                                      : checkers::FindingSeverity::kWarning;
  }
  if (!ok) return std::nullopt;
  return opts;
}

int cmd_check(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: llhsc check <file.dts> [--schemas f.yaml] "
                 "[--backend builtin|z3] [--format text|json|sarif] "
                 "[--no-lint] [--no-syntax] [--no-semantics] "
                 "[--no-crossref] [--disable-rule id,...] "
                 "[--rule-severity id=error|warning,...] "
                 "[--no-plan] [--cache-dir dir] [--stats]\n";
    return 2;
  }
  const std::string format = args.get("format", "text");
  if (format != "text" && format != "json" && format != "sarif") {
    std::cerr << "unknown --format '" << format
              << "' (want text|json|sarif)\n";
    return 2;
  }
  auto xopts = crossref_options_from(args);
  if (!xopts) return 2;
  auto tree = parse_file_or_die(args.positional[0]);
  smt::Backend backend = backend_from(args);
  checkers::Findings all;

  if (!args.has("no-lint")) {
    checkers::Findings f = checkers::LintChecker().check(*tree);
    all.insert(all.end(), f.begin(), f.end());
  }
  if (!args.has("no-crossref")) {
    checkers::crossref::CrossRefChecker checker(*xopts);
    checkers::Findings f = checker.check(*tree);
    all.insert(all.end(), f.begin(), f.end());
  }
  if (!args.has("no-syntax")) {
    schema::SchemaSet schemas = schemas_from(args);
    checkers::SyntacticChecker checker(schemas, backend);
    checkers::Findings f = checker.check(*tree);
    all.insert(all.end(), f.begin(), f.end());
  }
  if (!args.has("no-semantics")) {
    checkers::SemanticOptions sem_options;
    sem_options.solver_timeout_ms =
        uint_option_or_die(args, "solver-timeout-ms", 0);
    sem_options.plan = !args.has("no-plan");
    sem_options.cache_dir = args.get("cache-dir");
    checkers::SemanticChecker checker(backend, sem_options);
    checkers::Findings f = checker.check(*tree);
    all.insert(all.end(), f.begin(), f.end());
    // Planner counters on stderr so the report formats stay untouched.
    if (args.has("stats")) {
      const smt::QueryPlanStats& ps = checker.plan_stats();
      std::cerr << "semantic solver checks: " << checker.solver_checks()
                << ", queries issued: " << ps.queries_issued
                << ", queries pruned: " << ps.queries_pruned
                << ", cache hits: " << ps.cache_hits << "\n";
    }
  }

  size_t errors = checkers::error_count(all);
  if (format == "json") {
    std::cout << checkers::report_json(all) << "\n";
  } else if (format == "sarif") {
    std::cout << checkers::to_sarif(all, args.positional[0]);
  } else {
    if (!args.has("quiet")) std::cout << checkers::render(all);
    std::cout << args.positional[0] << ": " << errors << " error(s), "
              << (all.size() - errors) << " warning(s)\n";
  }
  return errors == 0 ? 0 : 1;
}

int cmd_generate(const Args& args) {
  if (!args.has("core") || !args.has("deltas") || !args.has("features")) {
    std::cerr << "usage: llhsc generate --core <core.dts> --deltas <f.deltas> "
                 "--features f1,f2,... [--out dir] [--name vm]\n";
    return 2;
  }
  auto core_text = read_file(args.get("core"));
  auto delta_text = read_file(args.get("deltas"));
  if (!core_text || !delta_text) {
    std::cerr << "cannot open core or deltas file\n";
    return 2;
  }
  support::DiagnosticEngine diags;
  dts::SourceManager sm;
  std::string core_path = args.get("core");
  size_t slash = core_path.find_last_of('/');
  sm.set_base_directory(slash == std::string::npos ? "."
                                                   : core_path.substr(0, slash));
  auto core = dts::parse_dts(*core_text, core_path, sm, diags);
  auto deltas = delta::parse_deltas(*delta_text, args.get("deltas"), diags);
  if (core == nullptr || diags.has_errors()) {
    std::cerr << diags.render();
    return 1;
  }
  delta::ProductLine pl(std::move(core), std::move(deltas));

  std::set<std::string> features;
  for (const std::string& f : support::split(args.get("features"), ',')) {
    auto t = support::trim(f);
    if (!t.empty()) features.insert(std::string(t));
  }
  auto tree = pl.derive(features, diags);
  if (tree == nullptr) {
    std::cerr << diags.render();
    return 1;
  }

  smt::Backend backend = backend_from(args);
  schema::SchemaSet schemas = schemas_from(args);
  checkers::SyntacticChecker syn(schemas, backend);
  checkers::SemanticChecker sem(backend);
  checkers::Findings findings = syn.check(*tree);
  checkers::Findings sem_f = sem.check(*tree);
  findings.insert(findings.end(), sem_f.begin(), sem_f.end());
  std::cout << checkers::render(findings);
  if (checkers::error_count(findings) > 0) {
    std::cerr << "product rejected by the checkers\n";
    return 1;
  }

  std::string out_dir = args.get("out", ".");
  std::string name = args.get("name", "product");
  std::string dts_path = out_dir + "/" + name + ".dts";
  if (!write_file(dts_path, dts::print_dts(*tree))) {
    std::cerr << "cannot write " << dts_path << "\n";
    return 2;
  }
  auto blob = fdt::emit(*tree, diags);
  if (blob) write_file(out_dir + "/" + name + ".dtb", *blob);
  std::cout << "wrote " << dts_path << " and " << name << ".dtb\n";
  return 0;
}

int cmd_demo(const Args& args) {
  std::string out_dir = args.get("out", ".");
  feature::FeatureModel model = feature::running_example_model();
  schema::SchemaSet schemas = schema::builtin_schemas();
  support::DiagnosticEngine diags;
  auto pl = core::running_example_product_line(diags);
  if (pl == nullptr) {
    std::cerr << diags.render();
    return 2;
  }
  core::PipelineOptions opts;
  opts.backend = backend_from(args);
  opts.jobs = static_cast<unsigned>(uint_option_or_die(args, "jobs", 1));
  opts.solver_timeout_ms = uint_option_or_die(args, "solver-timeout-ms", 0);
  opts.plan_queries = !args.has("no-plan");
  opts.cache_dir = args.get("cache-dir");
  core::Pipeline pipeline(model, core::exclusive_cpus(model), *pl, schemas,
                          opts);
  core::PipelineResult result = pipeline.run(
      {{"vm1", core::fig1b_features()}, {"vm2", core::fig1c_features()}});
  // Trace goes out before the success check: a failed run still leaves its
  // partial timing/finding data behind for inspection.
  if (args.has("trace-json")) {
    if (!write_file(args.get("trace-json"), result.trace.to_json())) {
      std::cerr << "cannot write " << args.get("trace-json") << "\n";
      return 2;
    }
  }
  if (args.has("verbose")) std::cerr << result.trace.render_table();
  std::cout << checkers::render(result.findings);
  if (!result.ok) {
    std::cerr << result.diagnostics.render() << "pipeline failed\n";
    return 1;
  }
  for (const core::GeneratedVm& vm : result.vms) {
    write_file(out_dir + "/" + vm.name + ".dts", vm.dts_text);
    write_file(out_dir + "/" + vm.name + ".dtb", vm.dtb);
  }
  write_file(out_dir + "/platform.dts", result.platform_dts_text);
  write_file(out_dir + "/platform.dtb", result.platform_dtb);
  write_file(out_dir + "/platform.c", result.platform_config_c);
  write_file(out_dir + "/config.c", result.vm_config_c);
  std::cout << "wrote vm1/vm2/platform .dts+.dtb, platform.c, config.c to "
            << out_dir << "\n";
  return 0;
}

feature::FeatureModel model_from(const Args& args) {
  if (args.has("model")) {
    auto text = read_file(args.get("model"));
    if (!text) {
      std::cerr << "cannot open model file " << args.get("model") << "\n";
      std::exit(2);
    }
    support::DiagnosticEngine diags;
    auto model = feature::parse_model(*text, args.get("model"), diags);
    if (!model) {
      std::cerr << diags.render();
      std::exit(1);
    }
    return std::move(*model);
  }
  return feature::running_example_model();
}

int cmd_products(const Args& args) {
  feature::FeatureModel model = model_from(args);
  smt::Solver solver(backend_from(args));
  if (args.has("count-only")) {
    std::cout << feature::count_products(model, solver) << "\n";
    return 0;
  }
  uint64_t n = 0;
  feature::enumerate_products(model, solver, [&](const feature::Selection& sel) {
    std::cout << "product " << ++n << ":";
    for (uint32_t i = 0; i < model.size(); ++i) {
      const feature::Feature& f = model.feature(feature::FeatureId{i});
      if (sel[i] && !f.abstract_feature && f.children.empty()) {
        std::cout << ' ' << f.name;
      }
    }
    std::cout << "\n";
    return true;
  });
  std::cout << n << " valid products\n";
  return 0;
}

int cmd_allocate(const Args& args) {
  feature::FeatureModel model = model_from(args);
  std::vector<feature::FeatureId> exclusive;
  for (const std::string& name : support::split(args.get("exclusive"), ',')) {
    auto t = support::trim(name);
    if (t.empty()) continue;
    auto id = model.find(t);
    if (!id) {
      std::cerr << "unknown exclusive feature '" << std::string(t) << "'\n";
      return 2;
    }
    exclusive.push_back(*id);
  }
  smt::Backend backend = backend_from(args);
  int limit = 16;
  if (args.has("vms")) {
    auto v = support::parse_integer(args.get("vms"));
    if (v) limit = static_cast<int>(*v);
  }
  for (int m = 1; m <= limit; ++m) {
    bool ok = feature::allocation_feasible(model, backend, m, exclusive);
    std::cout << m << " VM" << (m > 1 ? "s" : " ") << ": "
              << (ok ? "feasible" : "infeasible") << "\n";
    if (!ok) break;
  }
  std::cout << "max VMs: "
            << feature::max_feasible_vms(model, backend, exclusive, limit)
            << "\n";
  return 0;
}

int cmd_analyze(const Args& args) {
  feature::FeatureModel model = model_from(args);
  smt::Solver solver(backend_from(args));
  std::cout << "features:        " << model.size() << "\n";
  std::cout << "void:            "
            << (feature::is_void(model, solver) ? "yes" : "no") << "\n";
  std::cout << "products:        "
            << feature::count_products(model, solver, 1u << 20) << "\n";
  auto name_list = [&](const std::vector<feature::FeatureId>& ids) {
    std::string out;
    for (feature::FeatureId id : ids) {
      if (!out.empty()) out += ", ";
      out += model.feature(id).name;
    }
    return out.empty() ? std::string("(none)") : out;
  };
  std::cout << "dead features:   " << name_list(feature::dead_features(model, solver))
            << "\n";
  std::cout << "core features:   " << name_list(feature::core_features(model, solver))
            << "\n";
  std::cout << "false optional:  "
            << name_list(feature::false_optional_features(model, solver))
            << "\n";
  return 0;
}

int cmd_configure(const Args& args) {
  feature::FeatureModel model = model_from(args);
  feature::Configurator cfg(model, backend_from(args));
  // Scripted decisions: --decide "veth0=on,uart@30000000=off,veth0=retract"
  for (const std::string& d : support::split(args.get("decide"), ',')) {
    auto t = support::trim(d);
    if (t.empty()) continue;
    size_t eq = t.find('=');
    if (eq == std::string_view::npos) {
      std::cerr << "bad decision '" << std::string(t)
                << "' (want name=on|off|retract)\n";
      return 2;
    }
    std::string name(support::trim(t.substr(0, eq)));
    std::string verb(support::trim(t.substr(eq + 1)));
    auto id = model.find(name);
    if (!id) {
      std::cerr << "unknown feature '" << name << "'\n";
      return 2;
    }
    bool ok = verb == "on"        ? cfg.select(*id)
              : verb == "off"     ? cfg.deselect(*id)
              : verb == "retract" ? cfg.retract(*id)
                                  : false;
    std::cout << name << "=" << verb << " -> "
              << (ok ? "accepted" : "REJECTED") << "\n";
  }
  std::cout << "\nstate:\n";
  for (uint32_t i = 0; i < model.size(); ++i) {
    feature::FeatureId f{i};
    std::cout << "  " << std::string(feature::to_string(cfg.state(f)))
              << "\t" << model.feature(f).name << "\n";
  }
  std::cout << "complete: " << (cfg.complete() ? "yes" : "no")
            << ", remaining products: " << cfg.remaining_products() << "\n";
  return 0;
}

int cmd_overlay(const Args& args) {
  if (!args.has("base") || !args.has("overlay")) {
    std::cerr << "usage: llhsc overlay --base <base.dts> --overlay <o.dtso> "
                 "[--out <file.dts>]\n";
    return 2;
  }
  auto base = parse_file_or_die(args.get("base"));
  auto overlay_text = read_file(args.get("overlay"));
  if (!overlay_text) {
    std::cerr << "cannot open " << args.get("overlay") << "\n";
    return 2;
  }
  support::DiagnosticEngine diags;
  dts::SourceManager sm;
  auto overlay =
      dts::parse_overlay(*overlay_text, args.get("overlay"), sm, diags);
  if (!overlay) {
    std::cerr << diags.render();
    return 1;
  }
  if (!dts::apply_overlay(*base, *overlay, diags)) {
    std::cerr << diags.render();
    return 1;
  }
  std::string out = dts::print_dts(*base);
  if (args.has("out")) {
    if (!write_file(args.get("out"), out)) {
      std::cerr << "cannot write " << args.get("out") << "\n";
      return 2;
    }
    std::cout << "wrote " << args.get("out") << "\n";
  } else {
    std::cout << out;
  }
  return 0;
}

int usage() {
  std::cerr << "llhsc — DeviceTree syntax and semantic checker\n"
               "commands:\n"
               "  check <file.dts>   run lint + cross-reference + syntactic\n"
               "                     + semantic checks (--format text|json|\n"
               "                     sarif, --no-crossref, --disable-rule,\n"
               "                     --rule-severity; see docs/rules.md)\n"
               "  generate           derive a product from a DTS product line\n"
               "  demo               run the paper's running example (--jobs N,\n"
               "                     --solver-timeout-ms N, --trace-json <file>,\n"
               "                     --verbose, --no-plan, --cache-dir <dir>)\n"
               "  products           enumerate products (--model <f.fm>)\n"
               "  analyze            feature-model analyses (--model <f.fm>)\n"
               "  allocate           VM allocation feasibility (--model, \n"
               "                     --exclusive f1,f2, --vms N)\n"
               "  overlay            apply a /plugin/ overlay (--base, \n"
               "                     --overlay, [--out])\n"
               "  configure          scripted decision propagation (--model,\n"
               "                     --decide f=on,g=off,...)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string cmd = argv[1];
  Args args = parse_args(argc, argv);
  if (cmd == "check") return cmd_check(args);
  if (cmd == "generate") return cmd_generate(args);
  if (cmd == "demo") return cmd_demo(args);
  if (cmd == "products") return cmd_products(args);
  if (cmd == "analyze") return cmd_analyze(args);
  if (cmd == "allocate") return cmd_allocate(args);
  if (cmd == "overlay") return cmd_overlay(args);
  if (cmd == "configure") return cmd_configure(args);
  return usage();
}

// llhsc — the command-line tool. Thin driver over the public api::
// facade (src/api/llhsc.hpp):
//
//   llhsc check <file.dts> [--schemas <file.yaml>] [--backend builtin|z3|portfolio]
//               [--format text|json|sarif] [--no-lint] [--no-crossref]
//               [--no-graph] [--no-syntax] [--no-semantics]
//               [--disable-rule id,...]
//               [--rule-severity id=error|warning,...] [--baseline <file>]
//               [--no-plan] [--cache-dir <dir>] [--stats] [--socket <sock>]
//               [--tcp host:port] [--tenant <name>] [--profile <file>]
//       Run the checkers on one DTS; exit 1 on errors. The rule catalog
//       (cross-reference + device-graph) is in docs/rules.md; --no-graph
//       skips the device-graph dataflow rules, --baseline suppresses the
//       findings recorded in a baseline JSON file (docs/rules.md),
//       --cache-dir persists semantic solver verdicts across runs
//       (docs/performance.md), --no-plan disables the query planner,
//       --stats prints the planner counters on stderr, --socket / --tcp
//       ship the request to a running llhscd over its Unix or TCP listener
//       (--tenant names the admission-quota tenant), --profile writes a
//       Chrome-trace JSON profile of the run (docs/observability.md).
//
//   llhsc generate --core <core.dts> --deltas <file.deltas>
//                  --features f1,f2,... [--out <dir>] [--name <vm>]
//       Derive one product from a DTS product line, check it, and write
//       <name>.dts / <name>.dtb.
//
//   llhsc demo [--out <dir>] [--jobs N] [--solver-timeout-ms N]
//              [--trace-json <file>] [--verbose] [--no-plan]
//              [--cache-dir <dir>] [--profile <file>]
//       Run the paper's running example end to end and write every artifact
//       (VM DTSs, platform DTS, DTBs, platform.c, config.c). --jobs checks
//       the VMs in parallel (output is byte-identical to --jobs 1);
//       --trace-json / --verbose expose the per-stage trace, --profile the
//       raw span/counter stream it was reduced from.
//
// Exit codes (all commands): 0 success (warnings allowed), 1 findings or
// input rejected by a checker/parser, 2 usage or I/O error.
//
//   llhsc products
//       Enumerate the valid products of the running-example feature model.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "api/llhsc.hpp"
#include "checkers/crossref/rules.hpp"
#include "checkers/lint.hpp"
#include "checkers/report.hpp"
#include "checkers/semantic.hpp"
#include "checkers/syntactic.hpp"
#include "core/pipeline.hpp"
#include "core/running_example.hpp"
#include "dts/overlay.hpp"
#include "dts/parser.hpp"
#include "dts/printer.hpp"
#include "fdt/fdt.hpp"
#include "feature/analysis.hpp"
#include "feature/configurator.hpp"
#include "feature/multivm.hpp"
#include "feature/text_format.hpp"
#include "lift/differential.hpp"
#include "lift/lift.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/obs.hpp"
#include "schema/builtin_schemas.hpp"
#include "schema/yaml_lite.hpp"
#include "support/flags.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace {

using namespace llhsc;
using support::FlagKind;
using support::FlagSpec;
using support::ParsedFlags;

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool write_file(const std::string& path, std::string_view data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  return out.good();
}

bool write_file(const std::string& path, const std::vector<uint8_t>& data) {
  return write_file(path, std::string_view(
                              reinterpret_cast<const char*>(data.data()),
                              data.size()));
}

/// Parses one command's flags. Deprecation warnings always print; a parse
/// error prints and returns nullopt (the caller prints usage and exits 2).
std::optional<ParsedFlags> parse_or_report(const std::vector<FlagSpec>& specs,
                                           int argc, char** argv) {
  ParsedFlags args = support::parse_flags(specs, argc, argv, 2);
  for (const std::string& w : args.warnings) std::cerr << w << "\n";
  if (!args.ok) {
    std::cerr << args.error << "\n";
    return std::nullopt;
  }
  return args;
}

smt::Backend backend_from(const ParsedFlags& args) {
  std::string name = args.value("backend", "builtin");
  if (name == "z3") return smt::Backend::kZ3;
  if (name == "portfolio") return smt::Backend::kPortfolio;
  if (name != "builtin") {
    std::cerr << "warning: unknown backend '" << name << "', using builtin\n";
  }
  return smt::Backend::kBuiltin;
}

schema::SchemaSet schemas_from(const ParsedFlags& args) {
  if (args.has("schemas")) {
    auto text = read_file(args.value("schemas"));
    if (!text) {
      std::cerr << "cannot open schemas file " << args.value("schemas")
                << "\n";
      std::exit(2);
    }
    support::DiagnosticEngine diags;
    schema::SchemaSet set;
    schema::load_schema_stream(*text, set, diags);
    if (diags.has_errors()) {
      std::cerr << diags.render();
      std::exit(2);
    }
    return set;
  }
  return schema::builtin_schemas();
}

std::unique_ptr<dts::Tree> parse_file_or_die(const std::string& path) {
  auto source = read_file(path);
  if (!source) {
    std::cerr << "cannot open " << path << "\n";
    std::exit(2);
  }
  dts::SourceManager sm;
  size_t slash = path.find_last_of('/');
  sm.set_base_directory(slash == std::string::npos ? "."
                                                   : path.substr(0, slash));
  support::DiagnosticEngine diags;
  auto tree = dts::parse_dts(*source, path, sm, diags);
  if (tree == nullptr || diags.has_errors()) {
    std::cerr << diags.render();
    std::exit(1);
  }
  return tree;
}

/// Maps --disable-rule / --rule-severity onto CrossRefOptions through the
/// one shared parser (checkers/crossref/rules.cpp) — unknown rule ids are
/// rejected with the full catalog listed, and the CLI, the daemon, and
/// run_check agree on the diagnostic byte-for-byte.
std::optional<checkers::crossref::CrossRefOptions> crossref_options_from(
    const ParsedFlags& args) {
  std::string error;
  auto opts = checkers::crossref::parse_rule_options(
      args.value("disable-rule"), args.value("rule-severity"), error);
  std::cerr << error;
  return opts;
}

/// Connects to a daemon: `tcp_spec` ("host:port" / ":port" / "port",
/// numeric IPv4 or "localhost") wins over `socket_path`. Returns -1 with a
/// message on stderr on failure.
int connect_daemon(const std::string& socket_path,
                   const std::string& tcp_spec) {
  if (!tcp_spec.empty()) {
    std::string host = "127.0.0.1";
    std::string port_text = tcp_spec;
    const size_t colon = tcp_spec.rfind(':');
    if (colon != std::string::npos) {
      if (colon > 0) host = tcp_spec.substr(0, colon);
      port_text = tcp_spec.substr(colon + 1);
    }
    if (host == "localhost" || host.empty() || host == "0.0.0.0") {
      host = "127.0.0.1";
    }
    const int port = std::atoi(port_text.c_str());
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (port <= 0 || port > 65535 ||
        ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      std::cerr << "bad --tcp endpoint '" << tcp_spec << "'\n";
      return -1;
    }
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      std::cerr << "cannot create socket: " << std::strerror(errno) << "\n";
      return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      std::cerr << "cannot connect to " << tcp_spec << ": "
                << std::strerror(errno) << "\n";
      ::close(fd);
      return -1;
    }
    return fd;
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::cerr << "cannot create socket: " << std::strerror(errno) << "\n";
    return -1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "socket path too long: " << socket_path << "\n";
    ::close(fd);
    return -1;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::cerr << "cannot connect to " << socket_path << ": "
              << std::strerror(errno) << "\n";
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Ships a check request to a running llhscd (Unix socket or TCP) and
/// replays the response's stdout/stderr/exit code locally. The daemon runs
/// the same check implementation the local path does, so the bytes match.
int serve_check(const std::string& socket_path, const std::string& tcp_spec,
                const std::string& tenant, api::CheckRequest request) {
  namespace fs = std::filesystem;
  using support::Json;
  // The daemon's cwd is not ours: any path it must touch goes absolute.
  std::error_code ec;
  if (!request.base_directory.empty()) {
    fs::path abs = fs::absolute(request.base_directory, ec);
    if (!ec) request.base_directory = abs.string();
  }
  if (!request.cache_dir.empty()) {
    fs::path abs = fs::absolute(request.cache_dir, ec);
    if (!ec) request.cache_dir = abs.string();
  }

  Json params = Json::object();
  params.set("path", Json::string(request.path));
  params.set("source", Json::string(request.source));
  params.set("base_directory", Json::string(request.base_directory));
  params.set("format", Json::string(request.format));
  params.set("lint", Json::boolean(request.lint));
  params.set("crossref", Json::boolean(request.crossref));
  params.set("graph", Json::boolean(request.graph));
  params.set("syntax", Json::boolean(request.syntax));
  params.set("semantics", Json::boolean(request.semantics));
  params.set("quiet", Json::boolean(request.quiet));
  params.set("stats", Json::boolean(request.stats));
  params.set("backend", Json::string(request.backend));
  params.set("schemas_text", Json::string(request.schemas_text));
  params.set("schemas_path", Json::string(request.schemas_path));
  params.set("disable_rule", Json::string(request.disable_rule));
  params.set("rule_severity", Json::string(request.rule_severity));
  params.set("solver_timeout_ms",
             Json::unsigned_integer(request.solver_timeout_ms));
  params.set("plan", Json::boolean(request.plan));
  params.set("cache_dir", Json::string(request.cache_dir));
  params.set("baseline", Json::string(request.baseline_text));
  Json req = Json::object();
  req.set("id", Json::integer(1));
  req.set("method", Json::string("check"));
  req.set("params", std::move(params));
  if (!tenant.empty()) req.set("tenant", Json::string(tenant));

  const std::string where = tcp_spec.empty() ? socket_path : tcp_spec;
  int fd = connect_daemon(socket_path, tcp_spec);
  if (fd < 0) return 2;
  std::string line = req.dump();
  line += '\n';
  size_t off = 0;
  while (off < line.size()) {
    ssize_t n = ::send(fd, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      std::cerr << "cannot send request to " << where << "\n";
      ::close(fd);
      return 2;
    }
    off += static_cast<size_t>(n);
  }
  std::string reply;
  char chunk[4096];
  while (reply.find('\n') == std::string::npos) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    reply.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t newline = reply.find('\n');
  if (newline == std::string::npos) {
    std::cerr << "no response from " << where << "\n";
    return 2;
  }
  auto response = Json::parse(reply.substr(0, newline));
  if (!response || !response->is_object()) {
    std::cerr << "malformed response from " << where << "\n";
    return 2;
  }
  if (!response->at("ok").as_bool(false)) {
    const Json& error = response->at("error");
    std::cerr << "daemon error (" << error.at("code").as_string()
              << "): " << error.at("message").as_string() << "\n";
    return api::exit_code_of(
        api::error_code_from_wire(error.at("code").as_string()));
  }
  const Json& result = response->at("result");
  std::cout << result.at("stdout").as_string();
  std::cerr << result.at("stderr").as_string();
  return static_cast<int>(result.at("exit_code").as_int(2));
}

int usage_check() {
  std::cerr << "usage: llhsc check <file.dts> [--schemas f.yaml] "
               "[--backend builtin|z3|portfolio] [--format text|json|sarif] "
               "[--no-lint] [--no-syntax] [--no-semantics] "
               "[--no-crossref] [--no-graph] [--disable-rule id,...] "
               "[--rule-severity id=error|warning,...] "
               "[--baseline file] [--no-plan] [--cache-dir dir] [--stats] "
               "[--socket sock] [--tcp host:port] [--tenant name] "
               "[--profile file]\n"
               "       llhsc check <core.dts> --lifted --deltas <f.deltas> "
               "--model <f.fm> [--backend b] [--exclusive f1,f2,...] "
               "[--max-configs N] [--differential N] [--stats]\n";
  return 2;
}

/// `llhsc check --lifted`: family-based checking of core+deltas+model in one
/// solver conversation (docs/lifting.md). Exit 1 on findings with error
/// severity or a refused/incomplete family, 0 otherwise.
int run_lifted_check(const ParsedFlags& args) {
  if (!args.has("deltas") || !args.has("model")) {
    std::cerr << "--lifted needs --deltas and --model\n";
    return 2;
  }
  const std::string core_path = args.positional[0];
  auto core_text = read_file(core_path);
  auto delta_text = read_file(args.value("deltas"));
  auto model_text = read_file(args.value("model"));
  if (!core_text || !delta_text || !model_text) {
    std::cerr << "cannot open core, deltas, or model file\n";
    return 2;
  }
  support::DiagnosticEngine diags;
  dts::SourceManager sm;
  size_t slash = core_path.find_last_of('/');
  sm.set_base_directory(slash == std::string::npos
                            ? "."
                            : core_path.substr(0, slash));
  auto core = dts::parse_dts(*core_text, core_path, sm, diags);
  auto deltas = delta::parse_deltas(*delta_text, args.value("deltas"), diags);
  auto model =
      feature::parse_model(*model_text, args.value("model"), diags);
  if (core == nullptr || !model || diags.has_errors()) {
    std::cerr << diags.render();
    return 1;
  }
  delta::ProductLine line(std::move(core), std::move(deltas));

  lift::LiftOptions opts;
  opts.backend = backend_from(args);
  opts.max_configs = args.uint_value("max-configs", 8);
  for (const std::string& f : support::split(args.value("exclusive"), ',')) {
    auto t = support::trim(f);
    if (!t.empty()) opts.exclusive_features.emplace_back(t);
  }
  lift::LiftedResult result = lift::check_family(line, *model, opts, diags);
  std::cerr << diags.render();
  checkers::Findings flat = lift::flatten(result);
  std::cout << checkers::render(flat);
  if (args.has("stats")) {
    std::cerr << "family: " << result.components << " components, "
              << result.patterns << " patterns, " << result.slices
              << " slices, " << result.obligations << " obligations, "
              << result.solver_checks << " solver checks\n";
  }
  if (args.has("differential")) {
    lift::DifferentialOptions dopts;
    dopts.max_products = args.uint_value("differential", 4096);
    lift::DifferentialReport report = lift::compare_with_enumeration(
        line, *model, result, opts, dopts);
    for (const checkers::Finding& note : report.notes) {
      std::cerr << "note: " << note.message << "\n";
    }
    std::cerr << "differential: " << report.products << " products, "
              << (report.equal ? "equal" : "MISMATCH") << "\n";
    for (const std::string& m : report.mismatches) {
      std::cerr << "  " << m << "\n";
    }
    if (!report.equal) return 1;
  }
  if (!result.ok) return 1;
  return checkers::error_count(flat) > 0 ? 1 : 0;
}

int cmd_check(int argc, char** argv) {
  static const std::vector<FlagSpec> kFlags = {
      {"schemas"},
      {"backend"},
      {"format"},
      {"no-lint", FlagKind::kBool},
      {"no-crossref", FlagKind::kBool},
      {"no-graph", FlagKind::kBool},
      {"no-syntax", FlagKind::kBool},
      {"no-semantics", FlagKind::kBool},
      {"quiet", FlagKind::kBool},
      {"stats", FlagKind::kBool},
      {"disable-rule"},
      {"rule-severity"},
      {"baseline"},
      {"solver-timeout-ms", FlagKind::kUint},
      {"no-plan", FlagKind::kBool},
      {"cache-dir"},
      {"socket", FlagKind::kString, "serve"},
      {"tcp"},
      {"tenant"},
      {"profile"},
      {"lifted", FlagKind::kBool},
      {"deltas"},
      {"model"},
      {"exclusive"},
      {"max-configs", FlagKind::kUint},
      {"differential", FlagKind::kUint},
  };
  auto parsed = parse_or_report(kFlags, argc, argv);
  if (!parsed) return usage_check();
  const ParsedFlags& args = *parsed;
  if (args.positional.empty()) return usage_check();
  if (args.has("lifted")) return run_lifted_check(args);
  // Fast-fail validation in the CLI's historical order (format, then rule
  // lists, then I/O); run_check re-validates, but by then these are clean.
  const std::string format = args.value("format", "text");
  if (format != "text" && format != "json" && format != "sarif") {
    std::cerr << "unknown --format '" << format
              << "' (want text|json|sarif)\n";
    return 2;
  }
  if (!crossref_options_from(args)) return 2;

  api::CheckRequest request;
  request.path = args.positional[0];
  {
    auto source = read_file(request.path);
    if (!source) {
      std::cerr << "cannot open " << request.path << "\n";
      return 2;
    }
    request.source = std::move(*source);
  }
  size_t slash = request.path.find_last_of('/');
  request.base_directory =
      slash == std::string::npos ? "." : request.path.substr(0, slash);
  request.format = format;
  request.lint = !args.has("no-lint");
  request.crossref = !args.has("no-crossref");
  request.graph = !args.has("no-graph");
  request.syntax = !args.has("no-syntax");
  request.semantics = !args.has("no-semantics");
  request.quiet = args.has("quiet");
  request.stats = args.has("stats");
  request.backend = args.value("backend", "builtin");
  if (request.syntax && args.has("schemas")) {
    auto text = read_file(args.value("schemas"));
    if (!text) {
      std::cerr << "cannot open schemas file " << args.value("schemas")
                << "\n";
      return 2;
    }
    request.schemas_text = std::move(*text);
    request.schemas_path = args.value("schemas");
  }
  request.disable_rule = args.value("disable-rule");
  request.rule_severity = args.value("rule-severity");
  if (args.has("baseline")) {
    auto text = read_file(args.value("baseline"));
    if (!text) {
      std::cerr << "cannot open baseline file " << args.value("baseline")
                << "\n";
      return 2;
    }
    request.baseline_text = std::move(*text);
  }
  request.solver_timeout_ms = args.uint_value("solver-timeout-ms", 0);
  request.plan = !args.has("no-plan");
  request.cache_dir = args.value("cache-dir");

  // With --profile, the run's event stream (stage spans, per-query solver
  // spans, cache counters — or one client.request span when the work
  // happens in a daemon) is exported as Chrome-trace JSON afterwards.
  const std::string profile_path = args.value("profile");
  obs::TraceSink profile_sink;
  int code;
  {
    std::optional<obs::ScopedSink> sink_guard;
    if (!profile_path.empty()) sink_guard.emplace(&profile_sink);
    if (args.has("socket") || args.has("tcp")) {
      obs::Span span("client.request", "client");
      if (span.active()) {
        span.arg("socket", args.has("tcp") ? args.value("tcp")
                                           : args.value("socket"));
      }
      code = serve_check(args.value("socket"), args.value("tcp"),
                         args.value("tenant"), std::move(request));
    } else {
      api::CheckResult outcome = api::run_check(request);
      std::cout << outcome.output;
      std::cerr << outcome.error_text;
      code = outcome.exit_code;
    }
  }
  if (!profile_path.empty() &&
      !obs::write_chrome_trace(profile_path, profile_sink.take())) {
    std::cerr << "cannot write " << profile_path << "\n";
    return 2;
  }
  return code;
}

int cmd_generate(int argc, char** argv) {
  static const std::vector<FlagSpec> kFlags = {
      {"core"},   {"deltas"}, {"features"}, {"out"},
      {"name"},   {"backend"}, {"schemas"},
  };
  auto parsed = parse_or_report(kFlags, argc, argv);
  const bool ok = parsed && parsed->has("core") && parsed->has("deltas") &&
                  parsed->has("features");
  if (!ok) {
    std::cerr << "usage: llhsc generate --core <core.dts> --deltas <f.deltas> "
                 "--features f1,f2,... [--out dir] [--name vm]\n";
    return 2;
  }
  const ParsedFlags& args = *parsed;
  auto core_text = read_file(args.value("core"));
  auto delta_text = read_file(args.value("deltas"));
  if (!core_text || !delta_text) {
    std::cerr << "cannot open core or deltas file\n";
    return 2;
  }
  support::DiagnosticEngine diags;
  dts::SourceManager sm;
  std::string core_path = args.value("core");
  size_t slash = core_path.find_last_of('/');
  sm.set_base_directory(slash == std::string::npos ? "."
                                                   : core_path.substr(0, slash));
  auto core = dts::parse_dts(*core_text, core_path, sm, diags);
  auto deltas = delta::parse_deltas(*delta_text, args.value("deltas"), diags);
  if (core == nullptr || diags.has_errors()) {
    std::cerr << diags.render();
    return 1;
  }
  delta::ProductLine pl(std::move(core), std::move(deltas));

  std::set<std::string> features;
  for (const std::string& f : support::split(args.value("features"), ',')) {
    auto t = support::trim(f);
    if (!t.empty()) features.insert(std::string(t));
  }
  auto tree = pl.derive(features, diags);
  if (tree == nullptr) {
    std::cerr << diags.render();
    return 1;
  }

  smt::Backend backend = backend_from(args);
  schema::SchemaSet schemas = schemas_from(args);
  checkers::SyntacticChecker syn(schemas, backend);
  checkers::SemanticChecker sem(backend);
  checkers::Findings findings = syn.check(*tree);
  checkers::Findings sem_f = sem.check(*tree);
  findings.insert(findings.end(), sem_f.begin(), sem_f.end());
  std::cout << checkers::render(findings);
  if (checkers::error_count(findings) > 0) {
    std::cerr << "product rejected by the checkers\n";
    return 1;
  }

  std::string out_dir = args.value("out", ".");
  std::string name = args.value("name", "product");
  std::string dts_path = out_dir + "/" + name + ".dts";
  if (!write_file(dts_path, dts::print_dts(*tree))) {
    std::cerr << "cannot write " << dts_path << "\n";
    return 2;
  }
  auto blob = fdt::emit(*tree, diags);
  if (blob) write_file(out_dir + "/" + name + ".dtb", *blob);
  std::cout << "wrote " << dts_path << " and " << name << ".dtb\n";
  return 0;
}

int cmd_demo(int argc, char** argv) {
  static const std::vector<FlagSpec> kFlags = {
      {"out"},
      {"jobs", FlagKind::kUint},
      {"solver-timeout-ms", FlagKind::kUint},
      {"trace-json"},
      {"verbose", FlagKind::kBool},
      {"no-plan", FlagKind::kBool},
      {"cache-dir"},
      {"backend"},
      {"profile"},
  };
  auto parsed = parse_or_report(kFlags, argc, argv);
  if (!parsed) {
    std::cerr << "usage: llhsc demo [--out dir] [--jobs N] "
                 "[--solver-timeout-ms N] [--trace-json file] [--verbose] "
                 "[--no-plan] [--cache-dir dir] [--profile file]\n";
    return 2;
  }
  const ParsedFlags& args = *parsed;
  std::string out_dir = args.value("out", ".");
  feature::FeatureModel model = feature::running_example_model();
  schema::SchemaSet schemas = schema::builtin_schemas();
  support::DiagnosticEngine diags;
  auto pl = core::running_example_product_line(diags);
  if (pl == nullptr) {
    std::cerr << diags.render();
    return 2;
  }
  core::PipelineOptions opts;
  opts.backend = backend_from(args);
  opts.jobs = static_cast<unsigned>(args.uint_value("jobs", 1));
  opts.solver_timeout_ms = args.uint_value("solver-timeout-ms", 0);
  opts.plan_queries = !args.has("no-plan");
  opts.cache_dir = args.value("cache-dir");
  core::Pipeline pipeline(model, core::exclusive_cpus(model), *pl, schemas,
                          opts);
  core::PipelineResult result = pipeline.run(
      {{"vm1", core::fig1b_features()}, {"vm2", core::fig1c_features()}});
  // Trace and profile go out before the success check: a failed run still
  // leaves its partial timing/finding data behind for inspection.
  if (args.has("trace-json")) {
    if (!write_file(args.value("trace-json"), result.trace.to_json())) {
      std::cerr << "cannot write " << args.value("trace-json") << "\n";
      return 2;
    }
  }
  if (args.has("profile")) {
    if (!obs::write_chrome_trace(args.value("profile"), result.events)) {
      std::cerr << "cannot write " << args.value("profile") << "\n";
      return 2;
    }
  }
  if (args.has("verbose")) std::cerr << result.trace.render_table();
  std::cout << checkers::render(result.findings);
  if (!result.ok) {
    std::cerr << result.diagnostics.render() << "pipeline failed\n";
    return 1;
  }
  for (const core::GeneratedVm& vm : result.vms) {
    write_file(out_dir + "/" + vm.name + ".dts", vm.dts_text);
    write_file(out_dir + "/" + vm.name + ".dtb", vm.dtb);
  }
  write_file(out_dir + "/platform.dts", result.platform_dts_text);
  write_file(out_dir + "/platform.dtb", result.platform_dtb);
  write_file(out_dir + "/platform.c", result.platform_config_c);
  write_file(out_dir + "/config.c", result.vm_config_c);
  std::cout << "wrote vm1/vm2/platform .dts+.dtb, platform.c, config.c to "
            << out_dir << "\n";
  return 0;
}

feature::FeatureModel model_from(const ParsedFlags& args) {
  if (args.has("model")) {
    auto text = read_file(args.value("model"));
    if (!text) {
      std::cerr << "cannot open model file " << args.value("model") << "\n";
      std::exit(2);
    }
    support::DiagnosticEngine diags;
    auto model = feature::parse_model(*text, args.value("model"), diags);
    if (!model) {
      std::cerr << diags.render();
      std::exit(1);
    }
    return std::move(*model);
  }
  return feature::running_example_model();
}

int cmd_products(int argc, char** argv) {
  static const std::vector<FlagSpec> kFlags = {
      {"model"},
      {"count-only", FlagKind::kBool},
      {"backend"},
      {"max-products", FlagKind::kUint},
  };
  auto parsed = parse_or_report(kFlags, argc, argv);
  if (!parsed) return 2;
  const ParsedFlags& args = *parsed;
  feature::FeatureModel model = model_from(args);
  smt::Solver solver(backend_from(args));
  if (args.has("count-only")) {
    std::cout << feature::count_products(model, solver) << "\n";
    return 0;
  }
  // Products stream through the callback — a 2^20 family never materialises
  // more than one Selection. The cap turns "enumerate everything" into a
  // bounded sample with an explicit truncation warning.
  uint64_t n = 0;
  bool capped = false;
  feature::enumerate_products(
      model, solver,
      [&](const feature::Selection& sel) {
        std::cout << "product " << ++n << ":";
        for (uint32_t i = 0; i < model.size(); ++i) {
          const feature::Feature& f = model.feature(feature::FeatureId{i});
          if (sel[i] && !f.abstract_feature && f.children.empty()) {
            std::cout << ' ' << f.name;
          }
        }
        std::cout << "\n";
        return true;
      },
      args.uint_value("max-products", UINT64_MAX), &capped);
  std::cout << n << " valid products\n";
  if (capped) {
    std::cerr << "warning: enumeration-capped: stopped at --max-products="
              << n << " with more valid products remaining\n";
  }
  return 0;
}

int cmd_allocate(int argc, char** argv) {
  static const std::vector<FlagSpec> kFlags = {
      {"model"}, {"exclusive"}, {"vms", FlagKind::kUint}, {"backend"},
  };
  auto parsed = parse_or_report(kFlags, argc, argv);
  if (!parsed) return 2;
  const ParsedFlags& args = *parsed;
  feature::FeatureModel model = model_from(args);
  std::vector<feature::FeatureId> exclusive;
  for (const std::string& name : support::split(args.value("exclusive"), ',')) {
    auto t = support::trim(name);
    if (t.empty()) continue;
    auto id = model.find(t);
    if (!id) {
      std::cerr << "unknown exclusive feature '" << std::string(t) << "'\n";
      return 2;
    }
    exclusive.push_back(*id);
  }
  smt::Backend backend = backend_from(args);
  int limit = static_cast<int>(args.uint_value("vms", 16));
  for (int m = 1; m <= limit; ++m) {
    bool ok = feature::allocation_feasible(model, backend, m, exclusive);
    std::cout << m << " VM" << (m > 1 ? "s" : " ") << ": "
              << (ok ? "feasible" : "infeasible") << "\n";
    if (!ok) break;
  }
  std::cout << "max VMs: "
            << feature::max_feasible_vms(model, backend, exclusive, limit)
            << "\n";
  return 0;
}

int cmd_analyze(int argc, char** argv) {
  static const std::vector<FlagSpec> kFlags = {{"model"}, {"backend"}};
  auto parsed = parse_or_report(kFlags, argc, argv);
  if (!parsed) return 2;
  const ParsedFlags& args = *parsed;
  feature::FeatureModel model = model_from(args);
  smt::Solver solver(backend_from(args));
  std::cout << "features:        " << model.size() << "\n";
  std::cout << "void:            "
            << (feature::is_void(model, solver) ? "yes" : "no") << "\n";
  std::cout << "products:        "
            << feature::count_products(model, solver, 1u << 20) << "\n";
  auto name_list = [&](const std::vector<feature::FeatureId>& ids) {
    std::string out;
    for (feature::FeatureId id : ids) {
      if (!out.empty()) out += ", ";
      out += model.feature(id).name;
    }
    return out.empty() ? std::string("(none)") : out;
  };
  std::cout << "dead features:   " << name_list(feature::dead_features(model, solver))
            << "\n";
  std::cout << "core features:   " << name_list(feature::core_features(model, solver))
            << "\n";
  std::cout << "false optional:  "
            << name_list(feature::false_optional_features(model, solver))
            << "\n";
  return 0;
}

int cmd_configure(int argc, char** argv) {
  static const std::vector<FlagSpec> kFlags = {
      {"model"}, {"decide"}, {"backend"},
  };
  auto parsed = parse_or_report(kFlags, argc, argv);
  if (!parsed) return 2;
  const ParsedFlags& args = *parsed;
  feature::FeatureModel model = model_from(args);
  feature::Configurator cfg(model, backend_from(args));
  // Scripted decisions: --decide "veth0=on,uart@30000000=off,veth0=retract"
  for (const std::string& d : support::split(args.value("decide"), ',')) {
    auto t = support::trim(d);
    if (t.empty()) continue;
    size_t eq = t.find('=');
    if (eq == std::string_view::npos) {
      std::cerr << "bad decision '" << std::string(t)
                << "' (want name=on|off|retract)\n";
      return 2;
    }
    std::string name(support::trim(t.substr(0, eq)));
    std::string verb(support::trim(t.substr(eq + 1)));
    auto id = model.find(name);
    if (!id) {
      std::cerr << "unknown feature '" << name << "'\n";
      return 2;
    }
    bool ok = verb == "on"        ? cfg.select(*id)
              : verb == "off"     ? cfg.deselect(*id)
              : verb == "retract" ? cfg.retract(*id)
                                  : false;
    std::cout << name << "=" << verb << " -> "
              << (ok ? "accepted" : "REJECTED") << "\n";
  }
  std::cout << "\nstate:\n";
  for (uint32_t i = 0; i < model.size(); ++i) {
    feature::FeatureId f{i};
    std::cout << "  " << std::string(feature::to_string(cfg.state(f)))
              << "\t" << model.feature(f).name << "\n";
  }
  std::cout << "complete: " << (cfg.complete() ? "yes" : "no")
            << ", remaining products: " << cfg.remaining_products() << "\n";
  return 0;
}

int cmd_overlay(int argc, char** argv) {
  static const std::vector<FlagSpec> kFlags = {
      {"base"}, {"overlay"}, {"out"},
  };
  auto parsed = parse_or_report(kFlags, argc, argv);
  const bool ok = parsed && parsed->has("base") && parsed->has("overlay");
  if (!ok) {
    std::cerr << "usage: llhsc overlay --base <base.dts> --overlay <o.dtso> "
                 "[--out <file.dts>]\n";
    return 2;
  }
  const ParsedFlags& args = *parsed;
  auto base = parse_file_or_die(args.value("base"));
  auto overlay_text = read_file(args.value("overlay"));
  if (!overlay_text) {
    std::cerr << "cannot open " << args.value("overlay") << "\n";
    return 2;
  }
  support::DiagnosticEngine diags;
  dts::SourceManager sm;
  auto overlay =
      dts::parse_overlay(*overlay_text, args.value("overlay"), sm, diags);
  if (!overlay) {
    std::cerr << diags.render();
    return 1;
  }
  if (!dts::apply_overlay(*base, *overlay, diags)) {
    std::cerr << diags.render();
    return 1;
  }
  std::string out = dts::print_dts(*base);
  if (args.has("out")) {
    if (!write_file(args.value("out"), out)) {
      std::cerr << "cannot write " << args.value("out") << "\n";
      return 2;
    }
    std::cout << "wrote " << args.value("out") << "\n";
  } else {
    std::cout << out;
  }
  return 0;
}

int usage() {
  std::cerr << "llhsc — DeviceTree syntax and semantic checker\n"
               "commands:\n"
               "  check <file.dts>   run lint + cross-reference + device-graph\n"
               "                     + syntactic + semantic checks (--format\n"
               "                     text|json|sarif, --no-crossref, --no-graph,\n"
               "                     --disable-rule, --rule-severity,\n"
               "                     --baseline <file>, --socket <sock>,\n"
               "                     --profile <file>; see docs/rules.md);\n"
               "                     --lifted checks a whole product line\n"
               "                     (--deltas, --model; docs/lifting.md)\n"
               "  generate           derive a product from a DTS product line\n"
               "  demo               run the paper's running example (--jobs N,\n"
               "                     --solver-timeout-ms N, --trace-json <file>,\n"
               "                     --verbose, --no-plan, --cache-dir <dir>,\n"
               "                     --profile <file>)\n"
               "  products           enumerate products (--model <f.fm>,\n"
               "                     --max-products N)\n"
               "  analyze            feature-model analyses (--model <f.fm>)\n"
               "  allocate           VM allocation feasibility (--model, \n"
               "                     --exclusive f1,f2, --vms N)\n"
               "  overlay            apply a /plugin/ overlay (--base, \n"
               "                     --overlay, [--out])\n"
               "  configure          scripted decision propagation (--model,\n"
               "                     --decide f=on,g=off,...)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string cmd = argv[1];
  if (cmd == "check") return cmd_check(argc, argv);
  if (cmd == "generate") return cmd_generate(argc, argv);
  if (cmd == "demo") return cmd_demo(argc, argv);
  if (cmd == "products") return cmd_products(argc, argv);
  if (cmd == "analyze") return cmd_analyze(argc, argv);
  if (cmd == "allocate") return cmd_allocate(argc, argv);
  if (cmd == "overlay") return cmd_overlay(argc, argv);
  if (cmd == "configure") return cmd_configure(argc, argv);
  return usage();
}

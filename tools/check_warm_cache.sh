#!/usr/bin/env bash
# Asserts the persistent query cache's warm-run guarantee at the CLI level:
# a second run against the same --cache-dir issues zero solver queries and
# produces byte-identical output — findings, witnesses and artifacts.
#
# Two scenarios:
#   1. `demo` twice into the same cache: the warm trace reports zero issued
#      queries and the artifact directories diff clean.
#   2. `check` on the d3-truncation regression input (finding-rich, so real
#      queries are issued and cached cold): the warm --stats line shows
#      zero issued / nonzero cache hits, and the reports diff clean.
# Usage: check_warm_cache.sh <llhsc-binary> <examples-data-dir>
set -eu

LLHSC="$1"
DATA="$2"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
mkdir "$TMP/cold" "$TMP/warm"

# -- scenario 1: demo rerun --
"$LLHSC" demo --out "$TMP/cold" --cache-dir "$TMP/qc-demo" \
    --trace-json "$TMP/cold-trace.json" > "$TMP/cold.out"
"$LLHSC" demo --out "$TMP/warm" --cache-dir "$TMP/qc-demo" \
    --trace-json "$TMP/warm-trace.json" > "$TMP/warm.out"

diff -r "$TMP/cold" "$TMP/warm"
sed "s|$TMP/cold|OUT|" "$TMP/cold.out" > "$TMP/cold.norm"
sed "s|$TMP/warm|OUT|" "$TMP/warm.out" > "$TMP/warm.norm"
diff "$TMP/cold.norm" "$TMP/warm.norm"
# No stage of the warm run issued a solver query.
if grep -E '"queries_issued": [1-9]' "$TMP/warm-trace.json"; then
    echo "warm demo rerun still issued solver queries" >&2
    exit 1
fi

# -- scenario 2: faulty input, so the cache actually carries verdicts --
run_check() {
    local out="$1" err="$2" status=0
    "$LLHSC" check "$DATA/d3-truncation.dts" --cache-dir "$TMP/qc-check" \
        --stats > "$out" 2> "$err" || status=$?
    # Error findings are expected: the exit contract says 1.
    [ "$status" -eq 1 ]
}
run_check "$TMP/check-cold.out" "$TMP/check-cold.err"
run_check "$TMP/check-warm.out" "$TMP/check-warm.err"

# Byte-identical findings (witness addresses included).
diff "$TMP/check-cold.out" "$TMP/check-warm.out"
# The cold run consulted the solver; the warm run was pure cache replay.
grep -q 'queries issued: 0,' "$TMP/check-warm.err"
! grep -q 'queries issued: 0,' "$TMP/check-cold.err"
grep -qE 'cache hits: [1-9]' "$TMP/check-warm.err"

#!/usr/bin/env bash
# The public API must be self-owned: a translation unit that includes only
# <api/llhsc.hpp> must compile on its own and must not drag in any header
# from src/server/ (or the other internal layers) through the include
# graph. This is the structural guarantee behind the API stability policy
# in docs/api.md — internal refactors cannot leak into the public surface.
# Usage: check_api_includes.sh <src-dir> [c++ compiler]
set -eu

SRC="$1"
CXX="${2:-${CXX:-c++}}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cat > "$TMP/surface.cpp" <<'EOF'
#include "api/llhsc.hpp"

static_assert(LLHSC_API_VERSION == 200,
              "public API version drifted without a headline bump");

int main() {
  llhsc::api::CheckRequest request;
  request.path = "/dev/null";
  return llhsc::api::exit_code_of(llhsc::api::ErrorCode::kOk);
}
EOF

# 1. Standalone compile: the header needs nothing but the standard library.
"$CXX" -std=c++20 -I "$SRC" -fsyntax-only -Wall -Werror "$TMP/surface.cpp" \
    || { echo "api/llhsc.hpp does not compile standalone" >&2; exit 1; }

# 2. Include graph: no internal layer may be reachable from the public
#    header. -MM lists every non-system header the TU pulls in.
"$CXX" -std=c++20 -I "$SRC" -MM "$TMP/surface.cpp" > "$TMP/deps.mk"
for layer in server/ smt/ checks/ core/ support/ obs/; do
    if grep -q "$layer" "$TMP/deps.mk"; then
        echo "public header reaches internal layer '$layer':" >&2
        tr ' ' '\n' < "$TMP/deps.mk" | grep "$layer" >&2
        exit 1
    fi
done

# 3. And the header itself carries no llhsc-internal includes in source
#    form either (belt and braces against -MM resolution surprises).
if grep -En '#include *"(server|smt|checks|core|support|obs)/' \
    "$SRC/api/llhsc.hpp"; then
    echo "api/llhsc.hpp textually includes an internal header" >&2
    exit 1
fi

echo "public API include graph is clean (std-only)"

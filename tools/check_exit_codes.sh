#!/usr/bin/env bash
# Asserts the llhsc CLI exit-code contract (see README):
#   0 - success, warnings allowed
#   1 - error findings, or input rejected by a parser/checker
#   2 - usage or I/O errors
# Usage: check_exit_codes.sh <llhsc-binary> <examples-data-dir>
set -u

LLHSC="$1"
DATA="$2"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
fail=0

expect() {
  local want="$1"
  shift
  "$@" >/dev/null 2>&1
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: exit $got, want $want: $*"
    fail=1
  fi
}

# A clean run produces checker-approved artifacts to reuse below.
expect 0 "$LLHSC" demo --out "$TMP"

# Success (the generated product is clean modulo warnings) -> 0.
expect 0 "$LLHSC" check "$TMP/vm1.dts"

# Error findings -> 1 (the d3 truncation regression input).
expect 1 "$LLHSC" check "$DATA/d3-truncation.dts"

# Unparseable input -> 1.
printf 'not a device tree' > "$TMP/junk.dts"
expect 1 "$LLHSC" check "$TMP/junk.dts"

# Missing file -> 2.
expect 2 "$LLHSC" check "$TMP/does-not-exist.dts"

# Missing required argument -> 2.
expect 2 "$LLHSC" check

# Unknown --format -> 2.
expect 2 "$LLHSC" check "$TMP/vm1.dts" --format yaml

# Unknown command -> 2.
expect 2 "$LLHSC" frobnicate

# Malformed numeric option -> 2.
expect 2 "$LLHSC" demo --jobs banana --out "$TMP"
expect 2 "$LLHSC" check "$TMP/vm1.dts" --solver-timeout-ms banana

exit $fail

#!/usr/bin/env bash
# Tracing-overhead gate for the observability layer (PR5): runs the planned
# eight-VM pipeline with span capture on (BM_PipelineEightVmPlanner/1) and
# off (BM_PipelineEightVmNoTrace, obs::set_enabled(false)) and composes
# BENCH_pr5.json. Fails if the *minimum* tracing-on time exceeds the
# minimum tracing-off time by more than 2% — instrumentation must stay free
# enough to leave on by default. Minima pooled over three interleaved
# binary runs via tools/bench_lib.sh (see there for why pooled minima, not
# medians, are the estimator that does not flap at the 2% scale).
# Usage: bench_pr5.sh <build-dir> [out.json]
set -eu

BUILD="$1"
OUT="${2:-BENCH_pr5.json}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

. "$(dirname "$0")/bench_lib.sh"

bench_interleaved_rounds "$TMP" pipeline 3 "$BUILD/bench/bench_pipeline" \
    --benchmark_filter='BM_PipelineEightVmPlanner/1$|BM_PipelineEightVmNoTrace'

bench_collect_samples "$TMP"/pipeline-{1,2,3}.json > "$TMP/samples.json"

python3 - "$TMP/samples.json" "$OUT" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    pooled = json.load(f)
samples = pooled["samples"]

traced_all = samples.get("BM_PipelineEightVmPlanner")
untraced_all = samples.get("BM_PipelineEightVmNoTrace")
if not traced_all or not untraced_all:
    sys.exit(f"missing benchmark rows, got {sorted(samples)}")

traced = min(traced_all)
untraced = min(untraced_all)
overhead = traced / untraced - 1.0

result = {
    "pr": 5,
    "workload": "planned eight-VM pipeline (alternating Fig. 1b / Fig. 1c), "
                "span capture on vs obs::set_enabled(false)",
    "context": pooled["context"],
    "summary": {
        "traced_min_us": traced,
        "untraced_min_us": untraced,
        "traced_samples_us": [round(t, 1) for t in traced_all],
        "untraced_samples_us": [round(t, 1) for t in untraced_all],
        "tracing_overhead_pct": round(overhead * 100.0, 2),
        "tracing_overhead_at_most_2pct": overhead <= 0.02,
    },
}
with open(sys.argv[2], "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

if overhead > 0.02:
    sys.exit(f"span capture costs {overhead * 100.0:.2f}% on the planned "
             "eight-VM pipeline, budget is 2%")
EOF

echo "wrote $OUT"

#!/usr/bin/env bash
# Suppression end-to-end at the CLI level: inline
# `// llhsc-disable-next-line <rule-id>` comments and --baseline files must
# silence exactly the named findings, and the --stats line must account for
# them in its `suppressed:` counter.
#
# Scenarios over the seeded graph-arity example (one graph-cells-arity
# finding, checked with every other stage off so the counts are exact):
#   1. untouched input: the finding reports, suppressed: 0
#   2. a disable-next-line comment naming the rule: clean exit, suppressed: 1
#   3. a disable-next-line comment naming a different rule: still reports
#   4. a bare disable-next-line comment (no ids): suppresses any rule
#   5. a --baseline recording the finding: clean exit, suppressed: 1
#   6. a malformed --baseline: exit 2 with a usage diagnostic
# Usage: check_suppression.sh <llhsc-binary> <examples-data-dir>
set -eu

LLHSC="$1"
DATA="$2"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

FLAGS="--no-lint --no-crossref --no-syntax --no-semantics --stats"

run() {
    local input="$1"; shift
    local status=0
    # shellcheck disable=SC2086
    "$LLHSC" check "$input" $FLAGS "$@" > "$TMP/out" 2> "$TMP/err" || status=$?
    echo "$status"
}

# -- 1: the baseline finding fires --
[ "$(run "$DATA/graph-arity.dts")" -eq 1 ]
grep -q 'graph-cells-arity' "$TMP/out"
grep -q 'suppressed: 0' "$TMP/err"

# -- 2: inline suppression of the named rule --
awk '/clocks = /{print "        // llhsc-disable-next-line graph-cells-arity"}1' \
    "$DATA/graph-arity.dts" > "$TMP/suppressed.dts"
[ "$(run "$TMP/suppressed.dts")" -eq 0 ]
! grep -q 'graph-cells-arity' "$TMP/out"
grep -q 'suppressed: 1' "$TMP/err"

# -- 3: a comment naming some other rule does not suppress --
awk '/clocks = /{print "        // llhsc-disable-next-line graph-provider-cycle"}1' \
    "$DATA/graph-arity.dts" > "$TMP/other-rule.dts"
[ "$(run "$TMP/other-rule.dts")" -eq 1 ]
grep -q 'graph-cells-arity' "$TMP/out"

# -- 4: a bare comment suppresses whatever fires on the next line --
awk '/clocks = /{print "        // llhsc-disable-next-line"}1' \
    "$DATA/graph-arity.dts" > "$TMP/bare.dts"
[ "$(run "$TMP/bare.dts")" -eq 0 ]
grep -q 'suppressed: 1' "$TMP/err"

# -- 5: a baseline keyed by rule + structural path suppresses --
cat > "$TMP/baseline.json" <<EOF
{
  "version": 1,
  "findings": [
    {"rule": "graph-cells-arity", "subject": "/uart@2000"}
  ]
}
EOF
[ "$(run "$DATA/graph-arity.dts" --baseline "$TMP/baseline.json")" -eq 0 ]
! grep -q 'graph-cells-arity' "$TMP/out"
grep -q 'suppressed: 1' "$TMP/err"

# -- 6: a malformed baseline is a usage error, before any checking --
echo '{"version": 1, "findings": [{}]}' > "$TMP/bad-baseline.json"
[ "$(run "$DATA/graph-arity.dts" --baseline "$TMP/bad-baseline.json")" -eq 2 ]
grep -q 'bad --baseline file' "$TMP/err"

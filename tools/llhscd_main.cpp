// llhscd — the persistent llhsc check daemon (docs/server.md). Serves
// line-delimited JSON check/session/stats requests over a Unix-domain
// socket; `llhsc check --serve <sock>` is the matching client.
//
//   llhscd --socket <path> [--jobs N] [--queue-limit N]
//          [--store-capacity N] [--default-deadline-ms N] [--log <file>]
//
// Exit codes: 0 clean drain (signal or `shutdown` request), 2 usage or
// setup failure.
#include <fstream>
#include <iostream>
#include <string>

#include "server/server.hpp"
#include "support/strings.hpp"

namespace {

int usage() {
  std::cerr << "usage: llhscd --socket <path> [--jobs N] [--queue-limit N] "
               "[--store-capacity N] [--default-deadline-ms N] "
               "[--log <file>]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  llhsc::server::ServerOptions options;
  std::string log_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto uint_value = [&](const std::string& flag) -> uint64_t {
      const char* v = value();
      auto parsed =
          v != nullptr ? llhsc::support::parse_integer(v) : std::nullopt;
      if (!parsed) {
        std::cerr << "bad " << flag << " value (want an unsigned integer)\n";
        std::exit(2);
      }
      return *parsed;
    };
    if (arg == "--socket") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.socket_path = v;
    } else if (arg == "--jobs") {
      options.jobs = static_cast<unsigned>(uint_value("--jobs"));
    } else if (arg == "--queue-limit") {
      options.queue_limit = static_cast<size_t>(uint_value("--queue-limit"));
    } else if (arg == "--store-capacity") {
      options.store_capacity =
          static_cast<size_t>(uint_value("--store-capacity"));
    } else if (arg == "--default-deadline-ms") {
      options.default_deadline_ms = uint_value("--default-deadline-ms");
    } else if (arg == "--log") {
      const char* v = value();
      if (v == nullptr) return usage();
      log_path = v;
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      return usage();
    }
  }
  if (options.socket_path.empty()) return usage();

  std::ofstream log_file;
  if (!log_path.empty()) {
    log_file.open(log_path, std::ios::app);
    if (!log_file) {
      std::cerr << "cannot open log file " << log_path << "\n";
      return 2;
    }
    options.log = &log_file;
  }

  llhsc::server::Server server(std::move(options));
  return server.run();
}

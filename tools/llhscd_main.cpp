// llhscd — the persistent llhsc check daemon (docs/server.md). Serves
// line-delimited JSON check/session/stats requests over a Unix-domain
// socket; `llhsc check --socket <sock>` is the matching client.
//
//   llhscd --socket <path> [--jobs N] [--queue-limit N]
//          [--store-capacity N] [--deadline-ms N] [--log-file <file>]
//          [--profile <file>]
//
// --profile records per-request spans (admission wait / service time) plus
// the stage/solver events of every check, and writes one Chrome-trace JSON
// document at shutdown (docs/observability.md).
//
// Exit codes: 0 clean drain (signal or `shutdown` request), 2 usage or
// setup failure.
#include <fstream>
#include <iostream>
#include <string>

#include "api/llhsc.hpp"
#include "support/flags.hpp"

namespace {

int usage() {
  std::cerr << "usage: llhscd --socket <path> [--jobs N] [--queue-limit N] "
               "[--store-capacity N] [--deadline-ms N] [--log-file <file>] "
               "[--profile <file>]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using llhsc::support::FlagKind;
  using llhsc::support::FlagSpec;
  static const std::vector<FlagSpec> kFlags = {
      {"socket"},
      {"jobs", FlagKind::kUint},
      {"queue-limit", FlagKind::kUint},
      {"store-capacity", FlagKind::kUint},
      {"deadline-ms", FlagKind::kUint, "default-deadline-ms"},
      {"log-file", FlagKind::kString, "log"},
      {"profile"},
  };
  const llhsc::support::ParsedFlags args =
      llhsc::support::parse_flags(kFlags, argc, argv, 1);
  for (const std::string& w : args.warnings) std::cerr << w << "\n";
  if (!args.ok) {
    std::cerr << args.error << "\n";
    return usage();
  }
  if (!args.positional.empty()) {
    std::cerr << "unexpected argument '" << args.positional.front() << "'\n";
    return usage();
  }

  llhsc::api::ServerOptions options;
  options.socket_path = args.value("socket");
  options.jobs = static_cast<unsigned>(args.uint_value("jobs", 0));
  options.queue_limit =
      static_cast<size_t>(args.uint_value("queue-limit", options.queue_limit));
  options.store_capacity = static_cast<size_t>(
      args.uint_value("store-capacity", options.store_capacity));
  options.default_deadline_ms = args.uint_value("deadline-ms", 0);
  options.profile_path = args.value("profile");
  if (options.socket_path.empty()) return usage();

  std::ofstream log_file;
  const std::string log_path = args.value("log-file");
  if (!log_path.empty()) {
    log_file.open(log_path, std::ios::app);
    if (!log_file) {
      std::cerr << "cannot open log file " << log_path << "\n";
      return 2;
    }
    options.log = &log_file;
  }

  return llhsc::api::run_server(options);
}

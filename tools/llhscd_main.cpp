// llhscd — the persistent llhsc check daemon (docs/server.md). Serves
// line-delimited JSON check/session/stats requests over a Unix-domain
// socket and/or TCP; `llhsc check --socket <sock>` / `--tcp host:port` are
// the matching clients.
//
//   llhscd [--socket <path>] [--listen host:port] [--workers N] [--jobs N]
//          [--queue-limit N] [--tenant-quota N] [--store-capacity N]
//          [--deadline-ms N] [--max-line-bytes N] [--log-file <file>]
//          [--profile <file>]
//
// At least one of --socket / --listen is required. --workers N forks N
// sharded worker processes behind the event-loop front end (0, the
// default, runs checks in-process); --tenant-quota caps admitted requests
// per tenant; --profile records per-request spans plus the stage/solver
// events of every check and writes one Chrome-trace JSON document at
// shutdown (in-process mode only; docs/observability.md).
//
// Exit codes: 0 clean drain (signal or `shutdown` request), 2 usage or
// setup failure.
#include <fstream>
#include <iostream>
#include <string>

#include "api/llhsc.hpp"
#include "support/flags.hpp"

namespace {

int usage() {
  std::cerr << "usage: llhscd [--socket <path>] [--listen host:port] "
               "[--workers N] [--jobs N] [--queue-limit N] "
               "[--tenant-quota N] [--store-capacity N] [--deadline-ms N] "
               "[--max-line-bytes N] [--log-file <file>] [--profile <file>]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using llhsc::support::FlagKind;
  using llhsc::support::FlagSpec;
  static const std::vector<FlagSpec> kFlags = {
      {"socket"},
      {"listen"},
      {"workers", FlagKind::kUint},
      {"jobs", FlagKind::kUint},
      {"queue-limit", FlagKind::kUint},
      {"tenant-quota", FlagKind::kUint},
      {"store-capacity", FlagKind::kUint},
      {"deadline-ms", FlagKind::kUint, "default-deadline-ms"},
      {"max-line-bytes", FlagKind::kUint},
      {"log-file", FlagKind::kString, "log"},
      {"profile"},
  };
  const llhsc::support::ParsedFlags args =
      llhsc::support::parse_flags(kFlags, argc, argv, 1);
  for (const std::string& w : args.warnings) std::cerr << w << "\n";
  if (!args.ok) {
    std::cerr << args.error << "\n";
    return usage();
  }
  if (!args.positional.empty()) {
    std::cerr << "unexpected argument '" << args.positional.front() << "'\n";
    return usage();
  }

  llhsc::api::ServerOptions options;
  options.socket_path = args.value("socket");
  options.tcp_listen = args.value("listen");
  options.workers = static_cast<unsigned>(args.uint_value("workers", 0));
  options.jobs = static_cast<unsigned>(args.uint_value("jobs", 0));
  options.queue_limit =
      static_cast<size_t>(args.uint_value("queue-limit", options.queue_limit));
  options.tenant_quota = static_cast<size_t>(
      args.uint_value("tenant-quota", options.tenant_quota));
  options.store_capacity = static_cast<size_t>(
      args.uint_value("store-capacity", options.store_capacity));
  options.default_deadline_ms = args.uint_value("deadline-ms", 0);
  options.max_line_bytes = static_cast<size_t>(
      args.uint_value("max-line-bytes", options.max_line_bytes));
  options.profile_path = args.value("profile");
  if (options.socket_path.empty() && options.tcp_listen.empty()) {
    return usage();
  }

  std::ofstream log_file;
  const std::string log_path = args.value("log-file");
  if (!log_path.empty()) {
    log_file.open(log_path, std::ios::app);
    if (!log_file) {
      std::cerr << "cannot open log file " << log_path << "\n";
      return 2;
    }
    options.log = &log_file;
  }

  return llhsc::api::run_server(options);
}

// The two contracts docs/observability.md promises: (1) the aggregated
// summary is exactly a reduction of the raw event stream (so every numeric
// surface — --stats, --trace-json, the daemon stats reply — agrees with the
// profile by construction), and (2) the Chrome-trace export has the stable
// shape Perfetto expects.
#include "obs/obs.hpp"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/chrome_trace.hpp"
#include "obs/summary.hpp"
#include "server/check_service.hpp"
#include "support/json.hpp"

namespace llhsc::obs {
namespace {

using support::Json;

/// A deterministic-shape stream: two stage spans in two units, counters
/// attributed to each, plus an unscoped counter and a zero-information
/// no-op. Timing values vary run to run; names/attribution do not.
std::vector<Event> synthetic_stream() {
  TraceSink sink;
  {
    ScopedSink guard(&sink);
    {
      ScopedUnit unit("vm1");
      ScopedScope scope("semantic");
      Span span("stage.semantic", "stage");
      count("solver.checks", "solver", 3);
      count("planner.queries_issued", "planner", 2);
      count("planner.queries_pruned", "planner", 5);
      count("stage.findings", "stage", 1);
    }
    {
      ScopedUnit unit("vm2");
      ScopedScope scope("semantic");
      Span span("stage.semantic", "stage");
      count("solver.checks", "solver", 4);
      count("planner.cache_hits", "planner", 2);
      count("stage.findings", "stage", 0);  // zero delta: must be dropped
    }
    count("qcache.hit", "qcache", 7);  // ambient (no unit/scope)
  }
  return sink.take();
}

TEST(Summary, EqualsManualReductionOfRawStream) {
  const std::vector<Event> events = synthetic_stream();
  ASSERT_FALSE(events.empty());
  const Summary summary = reduce(events);

  // Re-derive every total straight from the raw events.
  std::map<std::string, int64_t> totals;
  std::map<std::string, int64_t> scoped;
  for (const Event& e : events) {
    if (e.kind != Event::Kind::kCounter) continue;
    totals[e.name] += e.delta;
    scoped[Summary::key(e.unit, e.scope, e.name)] += e.delta;
  }
  for (const auto& [name, total] : totals) {
    EXPECT_EQ(summary.counter(name), total) << name;
  }
  EXPECT_EQ(summary.counters.size(), totals.size());
  for (const auto& [key, total] : scoped) {
    auto it = summary.scoped_counters.find(key);
    ASSERT_NE(it, summary.scoped_counters.end());
    EXPECT_EQ(it->second, total);
  }
  EXPECT_EQ(summary.scoped_counters.size(), scoped.size());

  // scoped() sums across units within a scope.
  EXPECT_EQ(summary.scoped("semantic", "solver.checks"), 7);
  EXPECT_EQ(summary.scoped("semantic", "planner.queries_issued"), 2);
  EXPECT_EQ(summary.scoped("semantic", "planner.queries_pruned"), 5);
  EXPECT_EQ(summary.scoped("semantic", "planner.cache_hits"), 2);
  EXPECT_EQ(summary.counter("qcache.hit"), 7);
  // The zero delta carried no information and was never recorded.
  EXPECT_EQ(summary.scoped("semantic", "stage.findings"), 1);

  // Stage rows: one per (unit, stage) span, in stream order, with the
  // scope's counters attributed to the row.
  ASSERT_EQ(summary.stages.size(), 2u);
  EXPECT_EQ(summary.stages[0].unit, "vm1");
  EXPECT_EQ(summary.stages[0].stage, "semantic");
  EXPECT_EQ(summary.stages[0].solver_checks, 3u);
  EXPECT_EQ(summary.stages[0].queries_issued, 2u);
  EXPECT_EQ(summary.stages[0].queries_pruned, 5u);
  EXPECT_EQ(summary.stages[0].findings, 1u);
  EXPECT_EQ(summary.stages[1].unit, "vm2");
  EXPECT_EQ(summary.stages[1].solver_checks, 4u);
  EXPECT_EQ(summary.stages[1].cache_hits, 2u);
  EXPECT_EQ(summary.stages[1].findings, 0u);
}

TEST(Summary, CounterEventsIgnoreTheSpanKillSwitch) {
  TraceSink sink;
  set_enabled(false);
  {
    ScopedSink guard(&sink);
    Span span("stage.lint", "stage");
    EXPECT_FALSE(span.active());
    count("stage.findings", "stage", 2);
  }
  set_enabled(true);
  const std::vector<Event> events = sink.take();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, Event::Kind::kCounter);
  EXPECT_EQ(reduce(events).counter("stage.findings"), 2);
}

TEST(Summary, EventsMergeSortedByTimeThenSequence) {
  TraceSink sink;
  {
    ScopedSink guard(&sink);
    for (int i = 0; i < 5; ++i) count("qcache.miss", "qcache", 1);
  }
  const std::vector<Event> events = sink.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_TRUE(events[i - 1].ts_us < events[i].ts_us ||
                (events[i - 1].ts_us == events[i].ts_us &&
                 events[i - 1].seq < events[i].seq));
  }
}

TEST(ChromeTrace, ExportHasThePerfettoShape) {
  const std::vector<Event> events = synthetic_stream();
  const std::string text = chrome_trace_json(events);
  const auto doc = Json::parse(text);
  ASSERT_TRUE(doc.has_value()) << text;
  EXPECT_EQ(doc->at("schema_version").as_int(), 1);
  EXPECT_EQ(doc->at("displayTimeUnit").as_string(), "ms");

  const Json& trace_events = doc->at("traceEvents");
  ASSERT_EQ(trace_events.items().size(), events.size());
  uint64_t prev_ts = 0;
  size_t spans = 0, counters = 0;
  for (const Json& e : trace_events.items()) {
    // The stable key set Perfetto keys on.
    EXPECT_FALSE(e.at("name").as_string().empty());
    EXPECT_FALSE(e.at("cat").as_string().empty());
    EXPECT_EQ(e.at("pid").as_int(), 1);
    EXPECT_GE(e.at("tid").as_int(), 0);
    const uint64_t ts = e.at("ts").as_uint();
    EXPECT_GE(ts, prev_ts);  // sorted stream -> monotone ts
    prev_ts = ts;
    const std::string ph = e.at("ph").as_string();
    if (ph == "X") {
      ++spans;
      EXPECT_GE(e.at("dur").as_uint(), 0u);
    } else if (ph == "C") {
      ++counters;
      // "C" events carry the value keyed by the counter name.
      EXPECT_NE(e.at("args").dump().find(e.at("name").as_string()),
                std::string::npos);
    } else {
      ADD_FAILURE() << "unexpected phase " << ph;
    }
  }
  EXPECT_EQ(spans, 2u);
  EXPECT_EQ(counters, events.size() - 2u);
}

TEST(ChromeTrace, GoldenEventNamesFromARealCheck) {
  server::CheckRequest request;
  request.path = "golden.dts";
  // Two overlapping regions: the pair survives the planner's structural
  // prefilter, so the solver genuinely runs and the stream carries
  // solver.check spans (a disjoint layout would prune everything).
  request.source = R"(/dts-v1/;
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    memory@40000000 { device_type = "memory"; reg = <0x40000000 0x1000000>; };
    mmio@40800000 { reg = <0x40800000 0x1000000>; };
};
)";
  TraceSink sink;
  server::CheckOutcome outcome;
  {
    ScopedSink guard(&sink);
    outcome = server::run_check(request, nullptr);
  }
  ASSERT_EQ(outcome.exit_code, 1) << outcome.error_text;  // the overlap
  const std::vector<Event> events = sink.take();

  // The stage spans of an all-stages check, in pipeline order.
  std::vector<std::string> stage_spans;
  for (const Event& e : events) {
    if (e.kind == Event::Kind::kSpan && e.category == "stage") {
      stage_spans.push_back(e.name);
    }
  }
  const std::vector<std::string> expected = {
      "stage.lint", "stage.crossref", "stage.graph", "stage.syntactic",
      "stage.semantic"};
  EXPECT_EQ(stage_spans, expected);

  // The single source of truth: the outcome's trace counters ARE the
  // reduction of this very stream — asserted, not documented.
  const Summary summary = reduce(events);
  EXPECT_EQ(outcome.trace.solver_checks,
            static_cast<uint64_t>(summary.scoped("semantic", "solver.checks")));
  EXPECT_EQ(outcome.trace.queries_issued,
            static_cast<uint64_t>(
                summary.scoped("semantic", "planner.queries_issued")));
  EXPECT_EQ(outcome.trace.queries_pruned,
            static_cast<uint64_t>(
                summary.scoped("semantic", "planner.queries_pruned")));
  EXPECT_EQ(outcome.trace.cache_hits,
            static_cast<uint64_t>(
                summary.scoped("semantic", "planner.cache_hits")));
  EXPECT_GT(outcome.trace.solver_checks, 0u);

  // And the export of that stream is loadable JSON with the span present.
  const auto doc = Json::parse(chrome_trace_json(events));
  ASSERT_TRUE(doc.has_value());
  bool saw_semantic = false;
  for (const Json& e : doc->at("traceEvents").items()) {
    if (e.at("name").as_string() == "stage.semantic") saw_semantic = true;
  }
  EXPECT_TRUE(saw_semantic);
}

}  // namespace
}  // namespace llhsc::obs

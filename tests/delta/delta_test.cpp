// Delta engine tests: the when/after semantics, application operations,
// provenance stamping, and the paper's Listing 4 ordering (E7).
#include "delta/delta.hpp"

#include <gtest/gtest.h>

#include "core/running_example.hpp"
#include "dts/printer.hpp"
#include "feature/analysis.hpp"
#include "dts/parser.hpp"

namespace llhsc::delta {
namespace {

TEST(WhenExpr, Evaluation) {
  auto e = WhenExpr::disj(WhenExpr::feature("a"),
                          WhenExpr::conj(WhenExpr::feature("b"),
                                         WhenExpr::negate(WhenExpr::feature("c"))));
  EXPECT_TRUE(e.evaluate({"a"}));
  EXPECT_TRUE(e.evaluate({"b"}));
  EXPECT_FALSE(e.evaluate({"b", "c"}));
  EXPECT_FALSE(e.evaluate({}));
  EXPECT_TRUE(WhenExpr::always().evaluate({}));
  std::set<std::string> feats;
  e.collect_features(feats);
  EXPECT_EQ(feats, (std::set<std::string>{"a", "b", "c"}));
}

TEST(DeltaParser, Listing4Structure) {
  support::DiagnosticEngine de;
  auto deltas = parse_deltas(R"(
delta d1 after d3 when veth0 {
    adds binding vEthernet {
        veth0@80000000 {
            compatible = "veth";
            reg = <0x80000000 0x10000000>;
            id = <0>;
        };
    }
}

delta d3 when (veth0 || veth1) {
    modifies / {
        #address-cells = <1>;
        #size-cells = <1>;
        vEthernet { };
    }
}

delta d4 after d3 when memory {
    modifies memory@40000000 {
        reg = <0x40000000 0x20000000 0x60000000 0x20000000>;
    }
}
)",
                             "deltas", de);
  ASSERT_FALSE(de.has_errors()) << de.render();
  ASSERT_EQ(deltas.size(), 3u);
  EXPECT_EQ(deltas[0].name, "d1");
  EXPECT_EQ(deltas[0].after, (std::vector<std::string>{"d3"}));
  EXPECT_TRUE(deltas[0].when.evaluate({"veth0"}));
  EXPECT_FALSE(deltas[0].when.evaluate({"veth1"}));
  ASSERT_EQ(deltas[0].operations.size(), 1u);
  EXPECT_EQ(deltas[0].operations[0].kind, OpKind::kAdds);
  EXPECT_EQ(deltas[0].operations[0].target, "vEthernet");
  ASSERT_NE(deltas[0].operations[0].body, nullptr);
  EXPECT_EQ(deltas[0].operations[0].body->children().size(), 1u);

  EXPECT_TRUE(deltas[1].when.evaluate({"veth1"}));
  EXPECT_EQ(deltas[1].operations[0].kind, OpKind::kModifies);
  EXPECT_EQ(deltas[1].operations[0].target, "/");

  EXPECT_EQ(deltas[2].operations[0].target, "memory@40000000");
}

TEST(DeltaParser, RemovesOperations) {
  support::DiagnosticEngine de;
  auto deltas = parse_deltas(R"(
delta strip when !small {
    removes cpu@1;
    removes property uart@20000000 status;
}
)",
                             "deltas", de);
  ASSERT_FALSE(de.has_errors()) << de.render();
  ASSERT_EQ(deltas.size(), 1u);
  ASSERT_EQ(deltas[0].operations.size(), 2u);
  EXPECT_EQ(deltas[0].operations[0].kind, OpKind::kRemovesNode);
  EXPECT_EQ(deltas[0].operations[0].target, "cpu@1");
  EXPECT_EQ(deltas[0].operations[1].kind, OpKind::kRemovesProperty);
  EXPECT_EQ(deltas[0].operations[1].property_name, "status");
  EXPECT_FALSE(deltas[0].when.evaluate({"small"}));
  EXPECT_TRUE(deltas[0].when.evaluate({}));
}

TEST(DeltaParser, ErrorRecoverySkipsBadModule) {
  support::DiagnosticEngine de;
  auto deltas = parse_deltas(R"(
delta good1 { modifies / { x = <1>; } }
delta broken { frobnicates / { } }
delta good2 { modifies / { y = <2>; } }
)",
                             "deltas", de);
  EXPECT_TRUE(de.has_errors());
  // good1 parses; broken is reported; good2 recovers.
  ASSERT_GE(deltas.size(), 2u);
  EXPECT_EQ(deltas.front().name, "good1");
  EXPECT_EQ(deltas.back().name, "good2");
}

std::unique_ptr<dts::Tree> simple_core() {
  support::DiagnosticEngine de;
  auto t = dts::parse_dts(R"(
/ {
    a { v = <1>; };
    b { w = <2>; kid { }; };
};
)",
                          "core.dts", de);
  EXPECT_FALSE(de.has_errors());
  return t;
}

DeltaModule make_delta(std::string name, Operation op,
                       WhenExpr when = WhenExpr::always(),
                       std::vector<std::string> after = {}) {
  DeltaModule d;
  d.name = std::move(name);
  d.when = std::move(when);
  d.after = std::move(after);
  d.operations.push_back(std::move(op));
  return d;
}

Operation modifies(std::string target, std::unique_ptr<dts::Node> body) {
  Operation op;
  op.kind = OpKind::kModifies;
  op.target = std::move(target);
  op.body = std::move(body);
  return op;
}

TEST(Apply, ModifiesOverridesAndStampsProvenance) {
  auto tree = simple_core();
  auto body = std::make_unique<dts::Node>("a");
  body->set_property(dts::Property::cells("v", {42}));
  body->set_property(dts::Property::cells("fresh", {7}));
  DeltaModule d = make_delta("dmod", modifies("a", std::move(body)));
  support::DiagnosticEngine de;
  ASSERT_TRUE(apply_delta(*tree, d, de)) << de.render();
  const dts::Node* a = tree->find("/a");
  EXPECT_EQ(a->find_property("v")->as_u32(), 42u);
  EXPECT_EQ(a->find_property("v")->provenance, "dmod");
  EXPECT_EQ(a->find_property("fresh")->as_u32(), 7u);
  EXPECT_EQ(a->provenance(), "dmod");
}

TEST(Apply, AddsRejectsExistingChild) {
  auto tree = simple_core();
  auto body = std::make_unique<dts::Node>("b");
  body->add_child(std::make_unique<dts::Node>("kid"));
  Operation op;
  op.kind = OpKind::kAdds;
  op.target = "b";
  op.body = std::move(body);
  DeltaModule d = make_delta("dadd", std::move(op));
  support::DiagnosticEngine de;
  EXPECT_FALSE(apply_delta(*tree, d, de));
  EXPECT_TRUE(de.contains_code("delta-apply"));
}

TEST(Apply, AddsNewChildAndProperty) {
  auto tree = simple_core();
  auto body = std::make_unique<dts::Node>("b");
  body->set_property(dts::Property::cells("z", {9}));
  body->add_child(std::make_unique<dts::Node>("kid2"));
  Operation op;
  op.kind = OpKind::kAdds;
  op.target = "b";
  op.body = std::move(body);
  DeltaModule d = make_delta("dadd", std::move(op));
  support::DiagnosticEngine de;
  ASSERT_TRUE(apply_delta(*tree, d, de)) << de.render();
  EXPECT_NE(tree->find("/b/kid2"), nullptr);
  EXPECT_EQ(tree->find("/b/kid2")->provenance(), "dadd");
  EXPECT_EQ(tree->find("/b")->find_property("z")->as_u32(), 9u);
}

TEST(Apply, RemovesNodeAndProperty) {
  auto tree = simple_core();
  Operation rm_node;
  rm_node.kind = OpKind::kRemovesNode;
  rm_node.target = "kid";
  Operation rm_prop;
  rm_prop.kind = OpKind::kRemovesProperty;
  rm_prop.target = "a";
  rm_prop.property_name = "v";
  DeltaModule d;
  d.name = "strip";
  d.operations.push_back(std::move(rm_node));
  d.operations.push_back(std::move(rm_prop));
  support::DiagnosticEngine de;
  ASSERT_TRUE(apply_delta(*tree, d, de)) << de.render();
  EXPECT_EQ(tree->find("/b/kid"), nullptr);
  EXPECT_EQ(tree->find("/a")->find_property("v"), nullptr);
}

TEST(Apply, AbsolutePathTargets) {
  auto tree = simple_core();
  auto body = std::make_unique<dts::Node>("kid");
  body->set_property(dts::Property::cells("deep", {5}));
  DeltaModule d = make_delta("dpath", modifies("/b/kid", std::move(body)));
  support::DiagnosticEngine de;
  ASSERT_TRUE(apply_delta(*tree, d, de)) << de.render();
  EXPECT_EQ(tree->find("/b/kid")->find_property("deep")->as_u32(), 5u);
}

TEST(DeltaParser, PathTargets) {
  support::DiagnosticEngine de;
  auto deltas = parse_deltas(R"(
delta d { modifies /soc/uart@1000 { status = "okay"; } }
)",
                             "deltas", de);
  ASSERT_FALSE(de.has_errors()) << de.render();
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].operations[0].target, "/soc/uart@1000");
}

TEST(Apply, UnknownTargetIsError) {
  auto tree = simple_core();
  DeltaModule d = make_delta(
      "dbad", modifies("nothere", std::make_unique<dts::Node>("nothere")));
  support::DiagnosticEngine de;
  EXPECT_FALSE(apply_delta(*tree, d, de));
  EXPECT_TRUE(de.contains_code("delta-apply"));
}

// ---- ProductLine: activation + ordering (E7) ----

TEST(ProductLine, ActivationFollowsWhen) {
  support::DiagnosticEngine de;
  auto pl = core::running_example_product_line(de);
  ASSERT_NE(pl, nullptr) << de.render();
  auto active = pl->active_deltas(core::fig1b_features());
  std::vector<std::string> names;
  for (const DeltaModule* d : active) names.push_back(d->name);
  // veth0 product: d3 (veth0||veth1), d4 (memory), d1 (veth0), d5, d6
  // (uarts), rm_cpu1 (!cpu@1).
  EXPECT_EQ(names, (std::vector<std::string>{"d3", "d4", "d1", "d5", "d6",
                                             "rm_cpu1"}));
}

// E7 — paper §III-B: "The induced strict partial order between deltas for
// the [veth0 VM] is d3 < d4 < d1 while the [veth1 VM] is d3 < d4 < d2."
// (The paper prints the two orders swapped relative to its own Fig. 1b/1c
// feature assignments; the partial-order content is identical.)
TEST(ProductLine, PaperApplicationOrder) {
  support::DiagnosticEngine de;
  auto pl = core::running_example_product_line(de);
  ASSERT_NE(pl, nullptr);

  auto order1 = pl->application_order(core::fig1b_features(), de);
  ASSERT_TRUE(order1.has_value()) << de.render();
  auto pos = [&](const std::vector<const DeltaModule*>& order,
                 std::string_view name) {
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i]->name == name) return i;
    }
    return order.size();
  };
  EXPECT_LT(pos(*order1, "d3"), pos(*order1, "d4"));
  EXPECT_LT(pos(*order1, "d4"), pos(*order1, "d1"));

  auto order2 = pl->application_order(core::fig1c_features(), de);
  ASSERT_TRUE(order2.has_value());
  EXPECT_LT(pos(*order2, "d3"), pos(*order2, "d4"));
  EXPECT_LT(pos(*order2, "d4"), pos(*order2, "d2"));
}

TEST(ProductLine, CycleDetection) {
  support::DiagnosticEngine de;
  auto core_tree = simple_core();
  DeltaModule a = make_delta("a", modifies("a", std::make_unique<dts::Node>("a")),
                             WhenExpr::always(), {"b"});
  DeltaModule b = make_delta("b", modifies("b", std::make_unique<dts::Node>("b")),
                             WhenExpr::always(), {"a"});
  std::vector<DeltaModule> ds;
  ds.push_back(std::move(a));
  ds.push_back(std::move(b));
  ProductLine pl(std::move(core_tree), std::move(ds));
  EXPECT_FALSE(pl.application_order({}, de).has_value());
  EXPECT_TRUE(de.contains_code("delta-order"));
}

TEST(ProductLine, AfterUnknownDeltaIsError) {
  support::DiagnosticEngine de;
  auto core_tree = simple_core();
  DeltaModule a = make_delta("a", modifies("a", std::make_unique<dts::Node>("a")),
                             WhenExpr::always(), {"ghost"});
  std::vector<DeltaModule> ds;
  ds.push_back(std::move(a));
  ProductLine pl(std::move(core_tree), std::move(ds));
  EXPECT_FALSE(pl.application_order({}, de).has_value());
}

TEST(ProductLine, AfterInactiveDeltaImposesNoConstraint) {
  support::DiagnosticEngine de;
  auto core_tree = simple_core();
  // b after a, but a is inactive: b still applies.
  DeltaModule a = make_delta("a", modifies("a", std::make_unique<dts::Node>("a")),
                             WhenExpr::feature("never"));
  auto body = std::make_unique<dts::Node>("b");
  body->set_property(dts::Property::cells("applied", {1}));
  DeltaModule b = make_delta("b", modifies("b", std::move(body)),
                             WhenExpr::always(), {"a"});
  std::vector<DeltaModule> ds;
  ds.push_back(std::move(a));
  ds.push_back(std::move(b));
  ProductLine pl(std::move(core_tree), std::move(ds));
  auto tree = pl.derive({}, de);
  ASSERT_NE(tree, nullptr) << de.render();
  EXPECT_NE(tree->find("/b")->find_property("applied"), nullptr);
}

TEST(ProductLine, DeriveFig1bProducesExpectedTree) {
  support::DiagnosticEngine de;
  auto pl = core::running_example_product_line(de);
  ASSERT_NE(pl, nullptr);
  auto tree = pl->derive(core::fig1b_features(), de);
  ASSERT_NE(tree, nullptr) << de.render();
  // d3: 32-bit addressing + vEthernet node.
  EXPECT_EQ(tree->root().address_cells_or_default(), 1u);
  EXPECT_EQ(tree->root().size_cells_or_default(), 1u);
  // d1: veth0 with provenance.
  const dts::Node* veth0 = tree->find("/vEthernet/veth0@80000000");
  ASSERT_NE(veth0, nullptr);
  EXPECT_EQ(veth0->provenance(), "d1");
  // d4: memory rewritten to two 32-bit banks.
  auto reg = tree->find("/memory@40000000")->find_property("reg");
  ASSERT_NE(reg, nullptr);
  EXPECT_EQ(reg->provenance, "d4");
  EXPECT_EQ(reg->as_cells()->size(), 4u);
  // rm_cpu1: cpu@1 removed, cpu@0 kept.
  EXPECT_EQ(tree->find("/cpus/cpu@1"), nullptr);
  EXPECT_NE(tree->find("/cpus/cpu@0"), nullptr);
  // No veth1 (d2 inactive).
  EXPECT_EQ(tree->find("/vEthernet/veth1@70000000"), nullptr);
}

TEST(ProductLine, DeriveWithoutVethKeepsCore64Bit) {
  support::DiagnosticEngine de;
  auto pl = core::running_example_product_line(de);
  ASSERT_NE(pl, nullptr);
  std::set<std::string> features{"CustomSBC", "memory", "cpus", "cpu@0",
                                 "uarts",     "uart@20000000"};
  auto tree = pl->derive(features, de);
  ASSERT_NE(tree, nullptr) << de.render();
  EXPECT_EQ(tree->root().address_cells_or_default(), 2u);
  EXPECT_EQ(tree->find("/vEthernet"), nullptr);
  EXPECT_EQ(tree->find("/memory@40000000")->find_property("reg")
                ->as_cells()->size(),
            8u)
      << "without d3/d4 the 64-bit banks stay";
  EXPECT_EQ(tree->find("/uart@30000000"), nullptr) << "rm_uart1 active";
}

// ---- property tests over the engine ----

TEST(ProductLineProperties, DerivationIsDeterministic) {
  support::DiagnosticEngine de;
  auto pl = core::running_example_product_line(de);
  ASSERT_NE(pl, nullptr);
  auto t1 = pl->derive(core::fig1b_features(), de);
  auto t2 = pl->derive(core::fig1b_features(), de);
  ASSERT_NE(t1, nullptr);
  ASSERT_NE(t2, nullptr);
  EXPECT_EQ(dts::print_dts(*t1), dts::print_dts(*t2));
}

TEST(ProductLineProperties, DerivationDoesNotMutateCore) {
  support::DiagnosticEngine de;
  auto pl = core::running_example_product_line(de);
  ASSERT_NE(pl, nullptr);
  std::string before = dts::print_dts(pl->core());
  (void)pl->derive(core::fig1b_features(), de);
  (void)pl->derive(core::fig1c_features(), de);
  EXPECT_EQ(dts::print_dts(pl->core()), before);
}

TEST(ProductLineProperties, ModifiesIsIdempotent) {
  // Applying the same `modifies` delta twice equals applying it once.
  auto tree1 = simple_core();
  auto tree2 = simple_core();
  auto body = [] {
    auto b = std::make_unique<dts::Node>("a");
    b->set_property(dts::Property::cells("v", {42}));
    return b;
  };
  DeltaModule d = make_delta("dmod", modifies("a", body()));
  support::DiagnosticEngine de;
  ASSERT_TRUE(apply_delta(*tree1, d, de));
  ASSERT_TRUE(apply_delta(*tree2, d, de));
  ASSERT_TRUE(apply_delta(*tree2, d, de));
  EXPECT_EQ(dts::print_dts(*tree1), dts::print_dts(*tree2));
}

TEST(ProductLineProperties, IndependentModifiesCommute) {
  // Deltas touching disjoint nodes produce the same tree in either order.
  auto make = [](bool swap) {
    support::DiagnosticEngine de;
    auto tree = simple_core();
    auto body_a = std::make_unique<dts::Node>("a");
    body_a->set_property(dts::Property::cells("v", {10}));
    auto body_b = std::make_unique<dts::Node>("b");
    body_b->set_property(dts::Property::cells("w", {20}));
    DeltaModule da = make_delta("da", modifies("a", std::move(body_a)));
    DeltaModule db = make_delta("db", modifies("b", std::move(body_b)));
    if (swap) {
      apply_delta(*tree, db, de);
      apply_delta(*tree, da, de);
    } else {
      apply_delta(*tree, da, de);
      apply_delta(*tree, db, de);
    }
    return dts::print_dts(*tree);
  };
  EXPECT_EQ(make(false), make(true));
}

TEST(ProductLineProperties, OrderRespectsEveryAfterEdge) {
  // For every product of the running example, the application order must
  // satisfy all after-edges among active deltas.
  support::DiagnosticEngine de;
  auto pl = core::running_example_product_line(de);
  ASSERT_NE(pl, nullptr);
  feature::FeatureModel model = feature::running_example_model();
  smt::Solver solver;
  feature::enumerate_products(model, solver, [&](const feature::Selection& sel) {
    std::set<std::string> features;
    for (uint32_t i = 0; i < model.size(); ++i) {
      if (sel[i]) features.insert(model.feature(feature::FeatureId{i}).name);
    }
    support::DiagnosticEngine d;
    auto order = pl->application_order(features, d);
    EXPECT_TRUE(order.has_value()) << d.render();
    if (!order) return true;
    auto pos = [&](std::string_view name) {
      for (size_t i = 0; i < order->size(); ++i) {
        if ((*order)[i]->name == name) return static_cast<int>(i);
      }
      return -1;
    };
    for (const DeltaModule* dm : *order) {
      for (const std::string& dep : dm->after) {
        int dep_pos = pos(dep);
        if (dep_pos >= 0) {
          EXPECT_LT(dep_pos, pos(dm->name))
              << dm->name << " must come after " << dep;
        }
      }
    }
    return true;
  });
}

}  // namespace
}  // namespace llhsc::delta

// Order-sensitivity diagnostics (delta/interference.cpp): two deltas whose
// footprints conflict but that carry no `after` edge get a deterministic
// "delta-order" warning — in one-shot derivation AND in the lifted engine.
#include <memory>
#include <set>
#include <string>

#include "delta/delta.hpp"
#include "dts/parser.hpp"
#include "feature/model.hpp"
#include "gtest/gtest.h"
#include "lift/lift.hpp"

namespace llhsc {
namespace {

std::unique_ptr<delta::ProductLine> make_line(const std::string& deltas_src) {
  support::DiagnosticEngine diags;
  auto core = dts::parse_dts(
      "/dts-v1/;\n"
      "/ { #address-cells = <1>; #size-cells = <1>;\n"
      "  dev@1000 { reg = <0x1000 0x100>; };\n"
      "};\n",
      "core.dts", diags);
  EXPECT_NE(core, nullptr);
  auto deltas = delta::parse_deltas(deltas_src, "line.deltas", diags);
  EXPECT_FALSE(diags.has_errors());
  return std::make_unique<delta::ProductLine>(std::move(core),
                                              std::move(deltas));
}

size_t order_warnings(const support::DiagnosticEngine& diags) {
  size_t n = 0;
  for (const support::Diagnostic& d : diags.diagnostics()) {
    if (d.code == "delta-order" &&
        d.severity == support::Severity::kWarning) {
      ++n;
    }
  }
  return n;
}

constexpr const char* kConflicting =
    "delta first {\n"
    "  modifies /dev@1000 { status = \"okay\"; }\n"
    "}\n"
    "delta second {\n"
    "  modifies /dev@1000 { status = \"disabled\"; }\n"
    "}\n";

TEST(DeltaInterference, UnorderedWriteWriteConflictWarns) {
  auto line = make_line(kConflicting);
  support::DiagnosticEngine diags;
  auto tree = line->derive({}, diags);
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(order_warnings(diags), 1u);
}

TEST(DeltaInterference, AfterEdgeSilencesTheWarning) {
  auto line = make_line(
      "delta first {\n"
      "  modifies /dev@1000 { status = \"okay\"; }\n"
      "}\n"
      "delta second after first {\n"
      "  modifies /dev@1000 { status = \"disabled\"; }\n"
      "}\n");
  support::DiagnosticEngine diags;
  auto tree = line->derive({}, diags);
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(order_warnings(diags), 0u);
}

TEST(DeltaInterference, DisjointWritesDoNotWarn) {
  auto line = make_line(
      "delta first {\n"
      "  modifies /dev@1000 { status = \"okay\"; }\n"
      "}\n"
      "delta second {\n"
      "  modifies / { model = \"board\"; }\n"
      "}\n");
  support::DiagnosticEngine diags;
  auto tree = line->derive({}, diags);
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(order_warnings(diags), 0u);
}

TEST(DeltaInterference, RemovalVersusModifyWarns) {
  auto line = make_line(
      "delta tune {\n"
      "  modifies /dev@1000 { status = \"okay\"; }\n"
      "}\n"
      "delta drop {\n"
      "  removes /dev@1000;\n"
      "}\n");
  support::DiagnosticEngine diags;
  // Declaration order applies tune before drop, so derivation succeeds and
  // the order sensitivity (flipping them would fail) must be reported.
  auto tree = line->derive({}, diags);
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(order_warnings(diags), 1u);
}

TEST(DeltaInterferenceLifted, LiftedModeEmitsSameWarningOncePerPair) {
  auto line = make_line(kConflicting);
  feature::FeatureModel model;
  model.add_root("root");
  support::DiagnosticEngine diags;
  lift::LiftedResult r = lift::check_family(*line, model, {}, diags);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(order_warnings(diags), 1u);
}

}  // namespace
}  // namespace llhsc

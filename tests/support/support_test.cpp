#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <unordered_set>
#include <vector>

#include "support/arena.hpp"
#include "support/diagnostics.hpp"
#include "support/intern.hpp"
#include "support/strings.hpp"

namespace llhsc::support {
namespace {

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t\na b\t"), "a b");
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a", ','), (std::vector<std::string>{"a"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
}

TEST(Strings, SplitWs) {
  EXPECT_EQ(split_ws("  a  b\tc\n"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, ParseInteger) {
  EXPECT_EQ(parse_integer("42"), 42u);
  EXPECT_EQ(parse_integer("0x2A"), 42u);
  EXPECT_EQ(parse_integer("0x40000000"), 0x40000000u);
  EXPECT_EQ(parse_integer("052"), 42u);  // octal, dtc keeps C semantics
  EXPECT_EQ(parse_integer("0"), 0u);
  EXPECT_EQ(parse_integer(" 7 "), 7u);
  EXPECT_EQ(parse_integer("0xffffffffffffffff"), UINT64_MAX);
  EXPECT_FALSE(parse_integer("").has_value());
  EXPECT_FALSE(parse_integer("abc").has_value());
  EXPECT_FALSE(parse_integer("0x").has_value());
  EXPECT_FALSE(parse_integer("12x").has_value());
  EXPECT_FALSE(parse_integer("099").has_value());  // 9 is not octal
  EXPECT_FALSE(parse_integer("0x1ffffffffffffffff").has_value());  // overflow
}

TEST(Strings, HexFormatting) {
  EXPECT_EQ(hex(0x40000000), "0x40000000");
  EXPECT_EQ(hex(0), "0x0");
  EXPECT_EQ(hex_width(0x1f, 8), "0x0000001f");
  EXPECT_EQ(hex_width(0x123456789, 4), "0x123456789");  // no truncation
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"one"}, ","), "one");
}

TEST(Strings, NodeNameValidation) {
  EXPECT_TRUE(is_valid_node_name("memory@40000000"));
  EXPECT_TRUE(is_valid_node_name("cpus"));
  EXPECT_TRUE(is_valid_node_name("cpu@0"));
  EXPECT_TRUE(is_valid_node_name("veth0@80000000"));
  EXPECT_TRUE(is_valid_node_name("arm,cortex-a53"));
  EXPECT_FALSE(is_valid_node_name(""));
  EXPECT_FALSE(is_valid_node_name("@123"));
  EXPECT_FALSE(is_valid_node_name("node@"));
  EXPECT_FALSE(is_valid_node_name("bad name"));
  // Base name over 31 chars is invalid per spec.
  EXPECT_FALSE(is_valid_node_name(std::string(32, 'a')));
  EXPECT_TRUE(is_valid_node_name(std::string(31, 'a')));
}

TEST(Strings, PropertyNameValidation) {
  EXPECT_TRUE(is_valid_property_name("reg"));
  EXPECT_TRUE(is_valid_property_name("#address-cells"));
  EXPECT_TRUE(is_valid_property_name("device_type"));
  EXPECT_TRUE(is_valid_property_name("enable-method"));
  EXPECT_FALSE(is_valid_property_name(""));
  EXPECT_FALSE(is_valid_property_name("white space"));
}

TEST(Strings, GlobMatch) {
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("cpu@*", "cpu@0"));
  EXPECT_TRUE(glob_match("memory@*", "memory@40000000"));
  EXPECT_FALSE(glob_match("cpu@*", "uart@0"));
  EXPECT_TRUE(glob_match("a?c", "abc"));
  EXPECT_FALSE(glob_match("a?c", "ac"));
  EXPECT_TRUE(glob_match("*-bus", "main-bus"));
  EXPECT_TRUE(glob_match("", ""));
  EXPECT_FALSE(glob_match("", "x"));
}

TEST(Diagnostics, SeverityCounting) {
  DiagnosticEngine de;
  de.note("n1", "a note");
  de.warning("w1", "a warning");
  de.error("e1", "an error");
  de.error("e2", "another error");
  EXPECT_EQ(de.error_count(), 2u);
  EXPECT_EQ(de.warning_count(), 1u);
  EXPECT_TRUE(de.has_errors());
  EXPECT_EQ(de.diagnostics().size(), 4u);
  EXPECT_TRUE(de.contains_code("w1"));
  EXPECT_FALSE(de.contains_code("nope"));
}

TEST(Diagnostics, RenderFormat) {
  DiagnosticEngine de;
  de.error("dts-parse", "unexpected token",
           SourceLocation{"board.dts", 12, 5});
  std::string rendered = de.render();
  EXPECT_NE(rendered.find("board.dts:12:5"), std::string::npos);
  EXPECT_NE(rendered.find("error"), std::string::npos);
  EXPECT_NE(rendered.find("[dts-parse]"), std::string::npos);
  EXPECT_NE(rendered.find("unexpected token"), std::string::npos);
}

TEST(Diagnostics, LocationHandling) {
  SourceLocation unknown;
  EXPECT_FALSE(unknown.valid());
  EXPECT_EQ(unknown.to_string(), "<unknown>");
  SourceLocation loc{"f.dts", 3, 0};
  EXPECT_TRUE(loc.valid());
  EXPECT_EQ(loc.to_string(), "f.dts:3");
}

TEST(Diagnostics, Clear) {
  DiagnosticEngine de;
  de.error("x", "y");
  de.clear();
  EXPECT_FALSE(de.has_errors());
  EXPECT_TRUE(de.diagnostics().empty());
}

// ---- Arena ----

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  void* a = arena.allocate(3, 1);
  void* b = arena.allocate(8, 8);
  void* c = arena.allocate(1, 64);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 64, 0u);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
}

TEST(Arena, CopyStringIsStableAcrossSlabGrowth) {
  Arena arena;
  std::string_view first = arena.copy_string("the first string");
  // Force several slab growths; `first` must not move.
  std::vector<std::string_view> views;
  for (int i = 0; i < 4000; ++i) {
    views.push_back(arena.copy_string("padding-" + std::to_string(i)));
  }
  EXPECT_EQ(first, "the first string");
  EXPECT_EQ(views[123], "padding-123");
  EXPECT_EQ(views[3999], "padding-3999");
  EXPECT_GT(arena.stats().slabs, 1u) << "test must actually grow the arena";
  // The copy is NUL-terminated one past the view, for C APIs.
  EXPECT_EQ(first.data()[first.size()], '\0');
}

TEST(Arena, OversizedAllocationGetsItsOwnSlab) {
  Arena arena;
  const Arena::Stats before = arena.stats();
  void* big = arena.allocate(Arena::kMaxSlabBytes + 1024, 16);
  ASSERT_NE(big, nullptr);
  EXPECT_GT(arena.stats().slabs, before.slabs);
  // Bump allocation continues to work after the dedicated slab.
  std::string_view s = arena.copy_string("after the big one");
  EXPECT_EQ(s, "after the big one");
}

TEST(Arena, ResetReleasesEverything) {
  Arena arena;
  (void)arena.copy_string("soon gone");
  EXPECT_GT(arena.stats().bytes_allocated, 0u);
  arena.reset();
  EXPECT_EQ(arena.stats().slabs, 0u);
  EXPECT_EQ(arena.stats().bytes_allocated, 0u);
  EXPECT_EQ(arena.copy_string("fresh"), "fresh");
}

// ---- Interning / Atom ----

TEST(Intern, EqualStringsShareStorage) {
  // Build the spellings at runtime so the compiler cannot pool the literals.
  std::string a = std::string("node") + "-name";
  std::string b = std::string("node-") + "name";
  std::string_view ia = intern(a);
  std::string_view ib = intern(b);
  EXPECT_EQ(ia, ib);
  EXPECT_EQ(ia.data(), ib.data()) << "equal content must intern to one copy";
  std::string_view other = intern("different");
  EXPECT_NE(ia.data(), other.data());
}

TEST(Intern, EmptyStringIsTheDetachedAtom) {
  Atom empty("");
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty, Atom());
  EXPECT_EQ(empty, Atom(std::string()));
}

TEST(Intern, AtomIdentityEqualityMatchesContent) {
  Atom a(std::string("compatible"));
  Atom b(std::string("compat") + "ible");
  Atom c("status");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, std::string_view("compatible"));
  EXPECT_EQ(a, std::string("compatible"));
  EXPECT_EQ(a, "compatible");
  EXPECT_EQ(std::hash<Atom>{}(a), std::hash<Atom>{}(b));
  EXPECT_LT(a, c);  // lexicographic via <=>
}

TEST(Intern, AtomSurvivesSourceStringDestruction) {
  Atom a;
  {
    std::string temp = "short-lived-" + std::to_string(12345);
    a = Atom(temp);
  }
  EXPECT_EQ(a, "short-lived-12345");
  EXPECT_EQ(a.str(), "short-lived-12345");
}

TEST(Intern, ConcatenationAndForwardingSurface) {
  Atom name("uart@20000000");
  EXPECT_EQ("node " + name, "node uart@20000000");
  EXPECT_EQ(name + "!", "uart@20000000!");
  EXPECT_EQ(name.find('@'), 4u);
  EXPECT_EQ(name.substr(0, 4), "uart");
  EXPECT_TRUE(name.starts_with("uart"));
  EXPECT_TRUE(name.ends_with("0000"));
  EXPECT_EQ(name.front(), 'u');
  EXPECT_EQ(name.back(), '0');
}

TEST(Intern, ConcurrentInterningConverges) {
  // Hammer the sharded table from several threads with an overlapping
  // vocabulary; every thread must observe identical canonical pointers.
  constexpr int kThreads = 4;
  constexpr int kWords = 200;
  std::vector<std::vector<const char*>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &seen] {
      seen[t].reserve(kWords);
      for (int i = 0; i < kWords; ++i) {
        Atom a("concurrent-word-" + std::to_string(i));
        seen[t].push_back(a.data());
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[0], seen[t]) << "thread " << t << " saw different storage";
  }
  InternStats stats = intern_stats();
  EXPECT_GE(stats.strings, static_cast<size_t>(kWords));
  EXPECT_GT(stats.bytes, 0u);
}

}  // namespace
}  // namespace llhsc::support

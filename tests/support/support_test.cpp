#include <gtest/gtest.h>

#include "support/diagnostics.hpp"
#include "support/strings.hpp"

namespace llhsc::support {
namespace {

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t\na b\t"), "a b");
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a", ','), (std::vector<std::string>{"a"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
}

TEST(Strings, SplitWs) {
  EXPECT_EQ(split_ws("  a  b\tc\n"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, ParseInteger) {
  EXPECT_EQ(parse_integer("42"), 42u);
  EXPECT_EQ(parse_integer("0x2A"), 42u);
  EXPECT_EQ(parse_integer("0x40000000"), 0x40000000u);
  EXPECT_EQ(parse_integer("052"), 42u);  // octal, dtc keeps C semantics
  EXPECT_EQ(parse_integer("0"), 0u);
  EXPECT_EQ(parse_integer(" 7 "), 7u);
  EXPECT_EQ(parse_integer("0xffffffffffffffff"), UINT64_MAX);
  EXPECT_FALSE(parse_integer("").has_value());
  EXPECT_FALSE(parse_integer("abc").has_value());
  EXPECT_FALSE(parse_integer("0x").has_value());
  EXPECT_FALSE(parse_integer("12x").has_value());
  EXPECT_FALSE(parse_integer("099").has_value());  // 9 is not octal
  EXPECT_FALSE(parse_integer("0x1ffffffffffffffff").has_value());  // overflow
}

TEST(Strings, HexFormatting) {
  EXPECT_EQ(hex(0x40000000), "0x40000000");
  EXPECT_EQ(hex(0), "0x0");
  EXPECT_EQ(hex_width(0x1f, 8), "0x0000001f");
  EXPECT_EQ(hex_width(0x123456789, 4), "0x123456789");  // no truncation
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"one"}, ","), "one");
}

TEST(Strings, NodeNameValidation) {
  EXPECT_TRUE(is_valid_node_name("memory@40000000"));
  EXPECT_TRUE(is_valid_node_name("cpus"));
  EXPECT_TRUE(is_valid_node_name("cpu@0"));
  EXPECT_TRUE(is_valid_node_name("veth0@80000000"));
  EXPECT_TRUE(is_valid_node_name("arm,cortex-a53"));
  EXPECT_FALSE(is_valid_node_name(""));
  EXPECT_FALSE(is_valid_node_name("@123"));
  EXPECT_FALSE(is_valid_node_name("node@"));
  EXPECT_FALSE(is_valid_node_name("bad name"));
  // Base name over 31 chars is invalid per spec.
  EXPECT_FALSE(is_valid_node_name(std::string(32, 'a')));
  EXPECT_TRUE(is_valid_node_name(std::string(31, 'a')));
}

TEST(Strings, PropertyNameValidation) {
  EXPECT_TRUE(is_valid_property_name("reg"));
  EXPECT_TRUE(is_valid_property_name("#address-cells"));
  EXPECT_TRUE(is_valid_property_name("device_type"));
  EXPECT_TRUE(is_valid_property_name("enable-method"));
  EXPECT_FALSE(is_valid_property_name(""));
  EXPECT_FALSE(is_valid_property_name("white space"));
}

TEST(Strings, GlobMatch) {
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("cpu@*", "cpu@0"));
  EXPECT_TRUE(glob_match("memory@*", "memory@40000000"));
  EXPECT_FALSE(glob_match("cpu@*", "uart@0"));
  EXPECT_TRUE(glob_match("a?c", "abc"));
  EXPECT_FALSE(glob_match("a?c", "ac"));
  EXPECT_TRUE(glob_match("*-bus", "main-bus"));
  EXPECT_TRUE(glob_match("", ""));
  EXPECT_FALSE(glob_match("", "x"));
}

TEST(Diagnostics, SeverityCounting) {
  DiagnosticEngine de;
  de.note("n1", "a note");
  de.warning("w1", "a warning");
  de.error("e1", "an error");
  de.error("e2", "another error");
  EXPECT_EQ(de.error_count(), 2u);
  EXPECT_EQ(de.warning_count(), 1u);
  EXPECT_TRUE(de.has_errors());
  EXPECT_EQ(de.diagnostics().size(), 4u);
  EXPECT_TRUE(de.contains_code("w1"));
  EXPECT_FALSE(de.contains_code("nope"));
}

TEST(Diagnostics, RenderFormat) {
  DiagnosticEngine de;
  de.error("dts-parse", "unexpected token",
           SourceLocation{"board.dts", 12, 5});
  std::string rendered = de.render();
  EXPECT_NE(rendered.find("board.dts:12:5"), std::string::npos);
  EXPECT_NE(rendered.find("error"), std::string::npos);
  EXPECT_NE(rendered.find("[dts-parse]"), std::string::npos);
  EXPECT_NE(rendered.find("unexpected token"), std::string::npos);
}

TEST(Diagnostics, LocationHandling) {
  SourceLocation unknown;
  EXPECT_FALSE(unknown.valid());
  EXPECT_EQ(unknown.to_string(), "<unknown>");
  SourceLocation loc{"f.dts", 3, 0};
  EXPECT_TRUE(loc.valid());
  EXPECT_EQ(loc.to_string(), "f.dts:3");
}

TEST(Diagnostics, Clear) {
  DiagnosticEngine de;
  de.error("x", "y");
  de.clear();
  EXPECT_FALSE(de.has_errors());
  EXPECT_TRUE(de.diagnostics().empty());
}

}  // namespace
}  // namespace llhsc::support

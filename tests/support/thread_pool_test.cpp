// Thread pool + parallel_for tests, including the exception contract the
// pipeline relies on (first failure rethrown, every index still attempted)
// and the Deadline arithmetic the solver deadline path builds on.
#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/deadline.hpp"

namespace llhsc::support {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(done.load(), (round + 1) * 10);
  }
}

TEST(ThreadPool, TasksMaySubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.submit([&] {
    for (int i = 0; i < 5; ++i) {
      pool.submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 5);
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency) {
  EXPECT_GE(ThreadPool::resolve_jobs(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_jobs(3), 3u);
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, hits.size(), [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, RethrowsTheFirstException) {
  ThreadPool pool(4);
  std::atomic<int> attempted{0};
  EXPECT_THROW(
      parallel_for(pool, 16,
                   [&](size_t i) {
                     attempted.fetch_add(1, std::memory_order_relaxed);
                     if (i == 3) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // Remaining indices still ran; the pool stays usable.
  EXPECT_EQ(attempted.load(), 16);
  std::atomic<int> done{0};
  parallel_for(pool, 4, [&](size_t) {
    done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), 4);
}

TEST(ParallelFor, SingleIndexRunsOnTheCaller) {
  ThreadPool pool(4);
  std::thread::id runner;
  parallel_for(pool, 1, [&](size_t) { runner = std::this_thread::get_id(); });
  EXPECT_EQ(runner, std::this_thread::get_id());
}

TEST(Deadline, DefaultNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_ms(), UINT64_MAX);
}

TEST(Deadline, ZeroBudgetIsAlreadyExpired) {
  Deadline d = Deadline::after_ms(0);
  EXPECT_FALSE(d.unlimited());
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_ms(), 0u);
}

TEST(Deadline, FutureBudgetHasTimeRemaining) {
  Deadline d = Deadline::after_ms(60000);
  EXPECT_FALSE(d.expired());
  uint64_t left = d.remaining_ms();
  EXPECT_GT(left, 0u);
  EXPECT_LE(left, 60000u);
}

}  // namespace
}  // namespace llhsc::support

// End-to-end pipeline tests — the Fig. 2 workflow (E10) plus the two
// fault-injection scenarios run through the whole stack (E4, E5).
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "checkers/report.hpp"
#include "core/running_example.hpp"
#include "obs/obs.hpp"
#include "fdt/fdt.hpp"
#include "schema/builtin_schemas.hpp"

namespace llhsc::core {
namespace {

class PipelineTest : public ::testing::TestWithParam<smt::Backend> {
 protected:
  void SetUp() override {
    model = feature::running_example_model();
    schemas = schema::builtin_schemas();
    pl = running_example_product_line(diags);
    ASSERT_NE(pl, nullptr) << diags.render();
  }

  Pipeline make_pipeline(const delta::ProductLine& line,
                         PipelineOptions opts = {}) {
    opts.backend = GetParam();
    return Pipeline(model, exclusive_cpus(model), line, schemas, opts);
  }

  std::vector<VmSpec> paper_vms() {
    return {{"vm1", fig1b_features()}, {"vm2", fig1c_features()}};
  }

  feature::FeatureModel model;
  schema::SchemaSet schemas;
  support::DiagnosticEngine diags;
  std::unique_ptr<delta::ProductLine> pl;
};

// E10 — the paper's two-VM configuration goes through cleanly and produces
// every artifact the cloud service shows: two VM DTSs, the platform DTS,
// Listing 3 and Listing 6 C files, plus bootable-format DTBs.
TEST_P(PipelineTest, PaperConfigurationSucceeds) {
  Pipeline pipeline = make_pipeline(*pl);
  PipelineResult result = pipeline.run(paper_vms());
  EXPECT_TRUE(result.ok) << checkers::render(result.findings)
                         << result.diagnostics.render();
  ASSERT_EQ(result.vms.size(), 2u);
  EXPECT_FALSE(result.vms[0].dts_text.empty());
  EXPECT_FALSE(result.vms[1].dts_text.empty());
  ASSERT_NE(result.platform_tree, nullptr);

  // VM1 has veth0 but not veth1; VM2 vice versa; the platform has both.
  EXPECT_NE(result.vms[0].tree->find("/vEthernet/veth0@80000000"), nullptr);
  EXPECT_EQ(result.vms[0].tree->find("/vEthernet/veth1@70000000"), nullptr);
  EXPECT_NE(result.vms[1].tree->find("/vEthernet/veth1@70000000"), nullptr);
  EXPECT_NE(result.platform_tree->find("/vEthernet/veth0@80000000"), nullptr);
  EXPECT_NE(result.platform_tree->find("/vEthernet/veth1@70000000"), nullptr);

  // Listing 3 content.
  EXPECT_NE(result.platform_config_c.find(".cpu_num = 2"), std::string::npos);
  EXPECT_EQ(result.platform_config.regions.size(), 2u);
  // Listing 6 content: two VMs in the vmlist.
  EXPECT_NE(result.vm_config_c.find(".vmlist_size = 2"), std::string::npos);
  EXPECT_NE(result.vm_config_c.find("VM_IMAGE(vm1"), std::string::npos);

  // DTBs verify.
  support::DiagnosticEngine de;
  EXPECT_TRUE(fdt::verify(result.vms[0].dtb, de)) << de.render();
  EXPECT_TRUE(fdt::verify(result.platform_dtb, de)) << de.render();

  // QEMU commands (§V) reference each VM's own artifacts.
  EXPECT_NE(result.vms[0].qemu_command.find("-dtb vm1.dtb"),
            std::string::npos);
  EXPECT_NE(result.vms[0].qemu_command.find("-smp 1"), std::string::npos);

  // Per-VM configs: one CPU each, disjoint affinities.
  EXPECT_EQ(result.vms[0].config.cpu_num, 1u);
  EXPECT_EQ(result.vms[1].config.cpu_num, 1u);
  EXPECT_EQ(result.vms[0].config.cpu_affinity &
                result.vms[1].config.cpu_affinity,
            0u);
  EXPECT_EQ(result.vms[0].config.cpu_affinity |
                result.vms[1].config.cpu_affinity,
            0b11u);
}

// E4 end-to-end — the §I-A UART/memory clash: syntactic checks stay silent,
// the semantic checker reports the overlap.
TEST_P(PipelineTest, UartClashCaughtSemanticallyOnly) {
  support::DiagnosticEngine de;
  auto bad_pl = running_example_product_line(de, /*with_uart_clash=*/true);
  ASSERT_NE(bad_pl, nullptr) << de.render();
  Pipeline pipeline = make_pipeline(*bad_pl);
  // Configure without virtualization so the core layout is used as-is.
  std::vector<VmSpec> vms{{"vm", {"CustomSBC", "memory", "cpus", "cpu@0",
                                  "uarts", "uart@20000000", "uart@60000000"}}};
  // uart@60000000 is not a feature of the model; use the standard names and
  // rely on the clash being in the core DTS instead.
  vms[0].features = {"CustomSBC", "memory",        "cpus",
                     "cpu@0",     "uarts",         "uart@20000000",
                     "uart@30000000"};
  PipelineResult result = pipeline.run(vms);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(checkers::contains(result.findings,
                                 checkers::FindingKind::kAddressOverlap))
      << checkers::render(result.findings);
  // No syntactic finding fires for this purely semantic bug.
  for (const checkers::Finding& f : result.findings) {
    EXPECT_TRUE(f.kind == checkers::FindingKind::kAddressOverlap ||
                f.severity == checkers::FindingSeverity::kWarning)
        << f.render();
  }
}

// E5 end-to-end — omitting d4 (the 64->32-bit rewrite) produces four
// truncated banks and a collision at 0x0, traced back to delta d3.
TEST_P(PipelineTest, OmittedD4CaughtWithDeltaBlame) {
  support::DiagnosticEngine de;
  auto broken_pl = running_example_product_line_without_d4(de);
  ASSERT_NE(broken_pl, nullptr) << de.render();
  Pipeline pipeline = make_pipeline(*broken_pl);
  PipelineResult result = pipeline.run(paper_vms());
  EXPECT_FALSE(result.ok);
  ASSERT_TRUE(checkers::contains(result.findings,
                                 checkers::FindingKind::kAddressOverlap))
      << checkers::render(result.findings);
  bool blamed = false;
  for (const checkers::Finding& f : result.findings) {
    // Bank-vs-bank collisions of the truncated memory node.
    if (f.kind == checkers::FindingKind::kAddressOverlap &&
        f.subject.rfind("/memory", 0) == 0 &&
        f.other_subject.rfind("/memory", 0) == 0) {
      blamed = true;
      EXPECT_EQ(f.delta, "d3")
          << "the cell-width change that re-interpreted the banks is d3's";
    }
  }
  EXPECT_TRUE(blamed) << checkers::render(result.findings);
}

TEST_P(PipelineTest, InvalidAllocationStopsBeforeGeneration) {
  Pipeline pipeline = make_pipeline(*pl, [] {
    PipelineOptions o;
    o.fail_fast = true;
    return o;
  }());
  // Same CPU for both VMs.
  PipelineResult result =
      pipeline.run({{"vm1", fig1b_features()}, {"vm2", fig1b_features()}});
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(checkers::contains(result.findings,
                                 checkers::FindingKind::kExclusivityViolation));
  EXPECT_TRUE(result.vms.empty()) << "fail-fast must stop before deriving";
}

TEST_P(PipelineTest, SingleVmWithoutVirtualDevices) {
  Pipeline pipeline = make_pipeline(*pl);
  PipelineResult result = pipeline.run(
      {{"solo",
        {"CustomSBC", "memory", "cpus", "cpu@0", "uarts", "uart@20000000"}}});
  EXPECT_TRUE(result.ok) << checkers::render(result.findings)
                         << result.diagnostics.render();
  ASSERT_EQ(result.vms.size(), 1u);
  // 64-bit layout retained (d3 never fired).
  EXPECT_EQ(result.vms[0].tree->root().address_cells_or_default(), 2u);
  EXPECT_EQ(result.vms[0].tree->find("/vEthernet"), nullptr);
  EXPECT_EQ(result.vms[0].config.cpu_affinity, 0b01u);
}

TEST_P(PipelineTest, ChecksCanBeDisabled) {
  support::DiagnosticEngine de;
  auto bad_pl = running_example_product_line(de, /*with_uart_clash=*/true);
  PipelineOptions opts;
  opts.check_semantics = false;
  Pipeline pipeline = make_pipeline(*bad_pl, opts);
  PipelineResult result = pipeline.run(
      {{"vm",
        {"CustomSBC", "memory", "cpus", "cpu@0", "uarts", "uart@20000000",
         "uart@30000000"}}});
  EXPECT_TRUE(result.ok)
      << "with the semantic stage off, the clash goes unnoticed: "
      << checkers::render(result.findings);
}

TEST_P(PipelineTest, GeneratedDtsRoundTripsThroughParser) {
  Pipeline pipeline = make_pipeline(*pl);
  PipelineResult result = pipeline.run(paper_vms());
  ASSERT_TRUE(result.ok);
  for (const GeneratedVm& vm : result.vms) {
    support::DiagnosticEngine de;
    auto reparsed = dts::parse_dts(vm.dts_text, vm.name + ".dts", de);
    EXPECT_NE(reparsed, nullptr);
    EXPECT_FALSE(de.has_errors()) << de.render();
    EXPECT_EQ(reparsed->node_count(), vm.tree->node_count());
  }
}

// The tentpole determinism guarantee: a parallel run is byte-identical to a
// serial one in every user-visible output — findings in all three formats,
// diagnostics, DTS text, DTB blobs and generated C. Uses the broken product
// line so the comparison covers a finding-rich report, not just empty ones.
TEST_P(PipelineTest, ParallelRunIsByteIdenticalToSerial) {
  support::DiagnosticEngine de;
  auto broken_pl = running_example_product_line_without_d4(de);
  ASSERT_NE(broken_pl, nullptr) << de.render();
  auto run_with = [&](unsigned jobs) {
    PipelineOptions opts;
    opts.jobs = jobs;
    Pipeline pipeline = make_pipeline(*broken_pl, opts);
    return pipeline.run(paper_vms());
  };
  PipelineResult serial = run_with(1);
  PipelineResult parallel = run_with(4);

  EXPECT_EQ(serial.ok, parallel.ok);
  EXPECT_EQ(checkers::render(serial.findings),
            checkers::render(parallel.findings));
  EXPECT_EQ(checkers::report_json(serial.findings),
            checkers::report_json(parallel.findings));
  EXPECT_EQ(checkers::to_sarif(serial.findings, "pipeline"),
            checkers::to_sarif(parallel.findings, "pipeline"));
  EXPECT_EQ(serial.diagnostics.render(), parallel.diagnostics.render());

  ASSERT_EQ(serial.vms.size(), parallel.vms.size());
  for (size_t i = 0; i < serial.vms.size(); ++i) {
    EXPECT_EQ(serial.vms[i].name, parallel.vms[i].name);
    EXPECT_EQ(serial.vms[i].dts_text, parallel.vms[i].dts_text);
    EXPECT_EQ(serial.vms[i].dtb, parallel.vms[i].dtb);
    EXPECT_EQ(serial.vms[i].qemu_command, parallel.vms[i].qemu_command);
  }
  EXPECT_EQ(serial.platform_dts_text, parallel.platform_dts_text);
  EXPECT_EQ(serial.platform_dtb, parallel.platform_dtb);
  EXPECT_EQ(serial.platform_config_c, parallel.platform_config_c);
  EXPECT_EQ(serial.vm_config_c, parallel.vm_config_c);

  // The trace's structure (unit/stage sequence and finding counts) is also
  // deterministic; only the timings differ.
  ASSERT_EQ(serial.trace.stages.size(), parallel.trace.stages.size());
  for (size_t i = 0; i < serial.trace.stages.size(); ++i) {
    EXPECT_EQ(serial.trace.stages[i].unit, parallel.trace.stages[i].unit);
    EXPECT_EQ(serial.trace.stages[i].stage, parallel.trace.stages[i].stage);
    EXPECT_EQ(serial.trace.stages[i].findings,
              parallel.trace.stages[i].findings);
  }
  EXPECT_EQ(parallel.trace.jobs, 4u);
}

TEST_P(PipelineTest, CleanParallelRunMatchesSerial) {
  auto run_with = [&](unsigned jobs) {
    PipelineOptions opts;
    opts.jobs = jobs;
    Pipeline pipeline = make_pipeline(*pl, opts);
    return pipeline.run(paper_vms());
  };
  PipelineResult serial = run_with(1);
  PipelineResult parallel = run_with(4);
  EXPECT_TRUE(parallel.ok) << checkers::render(parallel.findings);
  EXPECT_EQ(checkers::render(serial.findings),
            checkers::render(parallel.findings));
  EXPECT_EQ(serial.vm_config_c, parallel.vm_config_c);
  EXPECT_EQ(serial.platform_dts_text, parallel.platform_dts_text);
}

TEST_P(PipelineTest, TraceRecordsEveryStage) {
  Pipeline pipeline = make_pipeline(*pl);
  PipelineResult result = pipeline.run(paper_vms());
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.trace.complete);
  EXPECT_GT(result.trace.total_ms, 0.0);
  auto has = [&](const std::string& unit, const std::string& stage) {
    for (const StageTrace& s : result.trace.stages) {
      if (s.unit == unit && s.stage == stage) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("*", "allocation"));
  for (const char* unit : {"vm1", "vm2", "platform"}) {
    for (const char* stage :
         {"derive", "lint", "syntactic", "semantic", "emit"}) {
      EXPECT_TRUE(has(unit, stage)) << unit << "/" << stage;
    }
  }
  // The solver-backed stages did real work. The syntactic checker issues
  // solver checks directly; the semantic stage routes through the query
  // planner, which on this clean example prunes every candidate — so its
  // evidence of work is the issued+pruned total, not solver_checks.
  for (const StageTrace& s : result.trace.stages) {
    if (s.stage == "syntactic") {
      EXPECT_GT(s.solver_checks, 0u) << s.unit << "/" << s.stage;
    }
    if (s.stage == "semantic") {
      EXPECT_GT(s.queries_issued + s.queries_pruned, 0u)
          << s.unit << "/" << s.stage;
    }
  }
  // Both renderings carry the structure.
  std::string json = result.trace.to_json();
  EXPECT_NE(json.find("\"jobs\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"complete\": true"), std::string::npos);
  EXPECT_NE(json.find("\"stage\": \"semantic\""), std::string::npos);
  std::string table = result.trace.render_table();
  EXPECT_NE(table.find("semantic"), std::string::npos);
  EXPECT_NE(table.find("platform"), std::string::npos);
}

// Satellite of the fail-fast fix: a later-stage failure must not suppress
// the findings already collected, and the partial trace survives. jobs=1
// makes the abort point deterministic (vm1 fails, vm2/platform are skipped).
TEST_P(PipelineTest, FailFastKeepsPartialFindingsAndTrace) {
  support::DiagnosticEngine de;
  auto broken_pl = running_example_product_line_without_d4(de);
  ASSERT_NE(broken_pl, nullptr) << de.render();
  PipelineOptions opts;
  opts.fail_fast = true;
  opts.jobs = 1;
  Pipeline pipeline = make_pipeline(*broken_pl, opts);
  PipelineResult result = pipeline.run(paper_vms());
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.trace.complete);
  // vm1's semantic findings (the truncated-bank overlaps) are retained.
  EXPECT_TRUE(checkers::contains(result.findings,
                                 checkers::FindingKind::kAddressOverlap))
      << checkers::render(result.findings);
  bool vm1_semantic = false, vm2_any = false;
  for (const StageTrace& s : result.trace.stages) {
    vm1_semantic = vm1_semantic || (s.unit == "vm1" && s.stage == "semantic");
    vm2_any = vm2_any || s.unit == "vm2";
  }
  EXPECT_TRUE(vm1_semantic) << "the failing stage itself is traced";
  EXPECT_FALSE(vm2_any) << "serial fail-fast stops before vm2";
  EXPECT_NE(result.trace.to_json().find("\"complete\": false"),
            std::string::npos);
}

// The planner's headline guarantee: routing the semantic stage through
// sweep-line pruning and batched guarded queries changes no user-visible
// byte. Uses the finding-rich broken product line so witnesses, delta
// blame and provenance are all exercised.
TEST_P(PipelineTest, PlannedFindingsByteIdenticalToExhaustive) {
  support::DiagnosticEngine de;
  auto broken_pl = running_example_product_line_without_d4(de);
  ASSERT_NE(broken_pl, nullptr) << de.render();
  auto run_with = [&](bool plan) {
    PipelineOptions opts;
    opts.plan_queries = plan;
    Pipeline pipeline = make_pipeline(*broken_pl, opts);
    return pipeline.run(paper_vms());
  };
  PipelineResult planned = run_with(true);
  PipelineResult exhaustive = run_with(false);

  EXPECT_EQ(planned.ok, exhaustive.ok);
  EXPECT_EQ(checkers::render(planned.findings),
            checkers::render(exhaustive.findings));
  EXPECT_EQ(checkers::report_json(planned.findings),
            checkers::report_json(exhaustive.findings));
  EXPECT_EQ(checkers::to_sarif(planned.findings, "pipeline"),
            checkers::to_sarif(exhaustive.findings, "pipeline"));
  ASSERT_EQ(planned.findings.size(), exhaustive.findings.size());
  for (size_t i = 0; i < planned.findings.size(); ++i) {
    const checkers::Finding& a = planned.findings[i];
    const checkers::Finding& b = exhaustive.findings[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.subject, b.subject);
    EXPECT_EQ(a.other_subject, b.other_subject);
    EXPECT_EQ(a.delta, b.delta) << "delta blame must survive planning";
    EXPECT_EQ(a.base_a, b.base_a);
    EXPECT_EQ(a.witness, b.witness) << "witness addresses must match";
    EXPECT_EQ(a.message, b.message);
  }
  EXPECT_LT(planned.trace.total_solver_checks(),
            exhaustive.trace.total_solver_checks())
      << "planning must reduce solver work on this workload";
  EXPECT_GT(planned.trace.total_queries_pruned(), 0u);
}

// Acceptance criterion: on the eight-VM workload the planner cuts solver
// check() calls by at least 10x relative to the exhaustive path, with a
// byte-identical report. Mirrors bench_pipeline's BM_PipelineParallel
// workload (allocation off: the eight VMs intentionally reuse CPUs).
TEST_P(PipelineTest, EightVmWorkloadCutsSolverChecksTenfold) {
  std::vector<VmSpec> vms;
  for (int i = 0; i < 8; ++i) {
    vms.push_back({"vm" + std::to_string(i),
                   i % 2 == 0 ? fig1b_features() : fig1c_features()});
  }
  auto run_with = [&](bool plan) {
    PipelineOptions opts;
    opts.check_allocation = false;
    opts.plan_queries = plan;
    Pipeline pipeline = make_pipeline(*pl, opts);
    return pipeline.run(vms);
  };
  PipelineResult planned = run_with(true);
  PipelineResult exhaustive = run_with(false);
  EXPECT_EQ(checkers::render(planned.findings),
            checkers::render(exhaustive.findings));
  // Only the semantic stage routes through the planner; the syntactic
  // stage's solver calls are unaffected and excluded from the ratio.
  auto semantic_checks = [](const PipelineResult& r) {
    uint64_t n = 0;
    for (const StageTrace& s : r.trace.stages) {
      if (s.stage == "semantic") n += s.solver_checks;
    }
    return n;
  };
  const uint64_t planned_checks = semantic_checks(planned);
  const uint64_t exhaustive_checks = semantic_checks(exhaustive);
  EXPECT_GT(exhaustive_checks, 0u);
  EXPECT_LE(planned_checks * 10, exhaustive_checks)
      << "planned=" << planned_checks << " exhaustive=" << exhaustive_checks;
}

// Acceptance criterion: a second run against the same --cache-dir replays
// every verdict from the persistent cache — zero queries reach the solver —
// and the report is byte-identical, witnesses included.
TEST_P(PipelineTest, WarmCacheSecondRunIssuesZeroQueries) {
  support::DiagnosticEngine de;
  auto broken_pl = running_example_product_line_without_d4(de);
  ASSERT_NE(broken_pl, nullptr) << de.render();
  const std::string cache_dir = ::testing::TempDir() +
                                "/llhsc-pipeline-warm-cache-" +
                                std::string(smt::to_string(GetParam()));
  std::filesystem::remove_all(cache_dir);
  auto run_once = [&] {
    PipelineOptions opts;
    opts.cache_dir = cache_dir;
    Pipeline pipeline = make_pipeline(*broken_pl, opts);
    return pipeline.run(paper_vms());
  };
  PipelineResult cold = run_once();
  PipelineResult warm = run_once();

  EXPECT_GT(cold.trace.total_queries_issued(), 0u)
      << "cold run must actually consult the solver";
  EXPECT_EQ(warm.trace.total_queries_issued(), 0u)
      << "warm run must be served entirely from the cache";
  for (const StageTrace& s : warm.trace.stages) {
    if (s.stage == "semantic") {
      EXPECT_EQ(s.solver_checks, 0u)
          << s.unit << ": warm semantic stages never touch the solver";
    }
  }
  EXPECT_GT(warm.trace.total_cache_hits(), 0u);
  EXPECT_EQ(checkers::render(cold.findings), checkers::render(warm.findings));
  EXPECT_EQ(checkers::report_json(cold.findings),
            checkers::report_json(warm.findings));
}

// Learned-clause retention acceptance: on the eight-VM workload the report
// must be byte-identical with retention on (default), with retention
// disabled (the pre-retention solver, via LLHSC_NO_CLAUSE_RETENTION), and
// under the portfolio backend — while retention never *increases* the CDCL
// conflict work the builtin solver reports per check.
TEST(PipelineRetentionTest, EightVmReportStableAndConflictsDoNotGrow) {
  feature::FeatureModel model = feature::running_example_model();
  schema::SchemaSet schemas = schema::builtin_schemas();
  support::DiagnosticEngine diags;
  auto pl = running_example_product_line(diags);
  ASSERT_NE(pl, nullptr) << diags.render();
  std::vector<VmSpec> vms;
  for (int i = 0; i < 8; ++i) {
    vms.push_back({"vm" + std::to_string(i),
                   i % 2 == 0 ? fig1b_features() : fig1c_features()});
  }
  auto run_with = [&](smt::Backend backend) {
    PipelineOptions opts;
    opts.backend = backend;
    opts.check_allocation = false;
    Pipeline pipeline(model, exclusive_cpus(model), *pl, schemas, opts);
    return pipeline.run(vms);
  };
  auto conflicts_of = [](const PipelineResult& r) {
    int64_t n = 0;
    for (const obs::Event& e : r.events) {
      if (e.kind == obs::Event::Kind::kCounter &&
          e.name == "solver.conflicts") {
        n += e.delta;
      }
    }
    return n;
  };

  PipelineResult retained = run_with(smt::Backend::kBuiltin);
  ASSERT_EQ(::setenv("LLHSC_NO_CLAUSE_RETENTION", "1", 1), 0);
  PipelineResult dropped = run_with(smt::Backend::kBuiltin);
  ::unsetenv("LLHSC_NO_CLAUSE_RETENTION");
  PipelineResult portfolio = run_with(smt::Backend::kPortfolio);

  // Verdict transparency: retention and racing are pure optimisations.
  EXPECT_EQ(checkers::render(retained.findings),
            checkers::render(dropped.findings));
  EXPECT_EQ(checkers::report_json(retained.findings),
            checkers::report_json(dropped.findings));
  EXPECT_EQ(checkers::render(retained.findings),
            checkers::render(portfolio.findings));
  EXPECT_EQ(retained.ok, dropped.ok);
  EXPECT_EQ(retained.ok, portfolio.ok);

  // Keeping guard-independent learned clauses can only prune later queries
  // on the shared per-unit solver instance, never add work.
  EXPECT_LE(conflicts_of(retained), conflicts_of(dropped));
}

INSTANTIATE_TEST_SUITE_P(Backends, PipelineTest,
                         ::testing::ValuesIn(smt::all_backends()),
                         [](const ::testing::TestParamInfo<smt::Backend>& info) {
                           return std::string(smt::to_string(info.param));
                         });

}  // namespace
}  // namespace llhsc::core

// The RV64 virt-class platform — the §V generality claim ("compatible with
// SBCs that use aarch64 or RV64 architecture") exercised on a materially
// different hardware shape: 4 harts, PLIC/CLINT, virtio-mmio, flash.
#include "core/riscv_example.hpp"

#include <gtest/gtest.h>

#include "checkers/lint.hpp"
#include "core/pipeline.hpp"
#include "fdt/fdt.hpp"

namespace llhsc::core {
namespace {

TEST(RiscvExample, CoreDtsParses) {
  support::DiagnosticEngine diags;
  dts::SourceManager sm = riscv_sources();
  auto tree = dts::parse_dts(riscv_core_dts(), "rv64.dts", sm, diags);
  ASSERT_NE(tree, nullptr);
  ASSERT_FALSE(diags.has_errors()) << diags.render();
  EXPECT_NE(tree->find("/cpus/cpu@3"), nullptr);
  EXPECT_NE(tree->find("/soc/plic@c000000"), nullptr);
  EXPECT_NE(tree->find("/soc/clint@2000000"), nullptr);
  EXPECT_NE(tree->find("/soc/virtio@10009000"), nullptr);
  // interrupt-parent refs resolved to the plic's phandle.
  auto plic_phandle =
      tree->find("/soc/plic@c000000")->find_property("phandle");
  ASSERT_NE(plic_phandle, nullptr);
  auto uart_parent = tree->find("/soc/uart@10000000")
                         ->find_property("interrupt-parent")->as_u32();
  EXPECT_EQ(uart_parent, plic_phandle->as_u32());
}

TEST(RiscvExample, ModelHas360Products) {
  feature::FeatureModel m = riscv_feature_model();
  smt::Solver solver;
  // harts OR (15) x flash (2) x uarts OR (3) x virtio (1 + 3) = 360.
  EXPECT_EQ(feature::count_products(m, solver), 360u);
}

TEST(RiscvExample, ProductCountMatchesBruteForce) {
  feature::FeatureModel m = riscv_feature_model();
  uint64_t brute = 0;
  for (uint32_t mask = 0; mask < (1u << m.size()); ++mask) {
    feature::Selection sel(m.size());
    for (uint32_t i = 0; i < m.size(); ++i) sel[i] = (mask >> i) & 1;
    if (m.is_consistent_selection(sel)) ++brute;
  }
  EXPECT_EQ(brute, 360u);
}

TEST(RiscvExample, MaxVmsIsFour) {
  feature::FeatureModel m = riscv_feature_model();
  auto harts = riscv_exclusive_harts(m);
  ASSERT_EQ(harts.size(), 4u);
  EXPECT_EQ(feature::max_feasible_vms(m, smt::Backend::kBuiltin, harts), 4);
}

TEST(RiscvExample, HealthyCorePassesAllCheckers) {
  support::DiagnosticEngine diags;
  dts::SourceManager sm = riscv_sources();
  auto tree = dts::parse_dts(riscv_core_dts(), "rv64.dts", sm, diags);
  ASSERT_NE(tree, nullptr);

  schema::SchemaSet schemas = riscv_schemas();
  checkers::SyntacticChecker syn(schemas);
  checkers::Findings f = syn.check(*tree);
  EXPECT_EQ(checkers::error_count(f), 0u) << checkers::render(f);

  checkers::SemanticChecker sem;
  checkers::Findings sf = sem.check(*tree);
  EXPECT_EQ(checkers::error_count(sf), 0u) << checkers::render(sf);

  checkers::Findings lf = checkers::LintChecker().check(*tree);
  EXPECT_TRUE(lf.empty()) << checkers::render(lf);
}

TEST(RiscvExample, SchemaViolationsDetected) {
  support::DiagnosticEngine diags;
  dts::SourceManager sm = riscv_sources();
  auto tree = dts::parse_dts(riscv_core_dts(), "rv64.dts", sm, diags);
  ASSERT_NE(tree, nullptr);
  // Corrupt the plic: wrong #interrupt-cells (const 1) and out-of-range ndev.
  dts::Node* plic = tree->find("/soc/plic@c000000");
  plic->set_property(dts::Property::cells("#interrupt-cells", {2}));
  plic->set_property(dts::Property::cells("riscv,ndev", {5000}));
  schema::SchemaSet schemas = riscv_schemas();
  checkers::SyntacticChecker syn(schemas);
  checkers::Findings f = syn.check(*tree);
  EXPECT_TRUE(checkers::contains(f, checkers::FindingKind::kConstMismatch))
      << checkers::render(f);
  EXPECT_TRUE(checkers::contains(f, checkers::FindingKind::kEnumViolation))
      << checkers::render(f);
}

TEST(RiscvExample, InterruptCollisionDetected) {
  support::DiagnosticEngine diags;
  dts::SourceManager sm = riscv_sources();
  auto tree = dts::parse_dts(riscv_core_dts(), "rv64.dts", sm, diags);
  ASSERT_NE(tree, nullptr);
  // Point virtio1 at uart0's interrupt line.
  tree->find("/soc/virtio@10009000")
      ->set_property(dts::Property::cells("interrupts", {10}));
  checkers::SemanticChecker sem;
  checkers::Findings f = sem.check(*tree);
  EXPECT_TRUE(
      checkers::contains(f, checkers::FindingKind::kInterruptCollision))
      << checkers::render(f);
}

TEST(RiscvExample, PipelineTwoVmPartitioning) {
  feature::FeatureModel model = riscv_feature_model();
  schema::SchemaSet schemas = riscv_schemas();
  support::DiagnosticEngine diags;
  auto pl = riscv_product_line(diags);
  ASSERT_NE(pl, nullptr) << diags.render();

  Pipeline pipeline(model, riscv_exclusive_harts(model), *pl, schemas);
  PipelineResult result = pipeline.run(
      {{"vma", riscv_vm_a_features()}, {"vmb", riscv_vm_b_features()}});
  EXPECT_TRUE(result.ok) << checkers::render(result.findings)
                         << result.diagnostics.render();
  ASSERT_EQ(result.vms.size(), 2u);

  // VM A: harts 0+1, uart0, virtio0, no flash.
  const dts::Tree& a = *result.vms[0].tree;
  EXPECT_NE(a.find("/cpus/cpu@0"), nullptr);
  EXPECT_NE(a.find("/cpus/cpu@1"), nullptr);
  EXPECT_EQ(a.find("/cpus/cpu@2"), nullptr);
  EXPECT_NE(a.find("/soc/uart@10000000"), nullptr);
  EXPECT_EQ(a.find("/soc/uart@10001000"), nullptr);
  EXPECT_NE(a.find("/soc/virtio@10008000"), nullptr);
  EXPECT_EQ(a.find("/soc/flash@20000000"), nullptr);
  EXPECT_NE(a.find("/chosen"), nullptr) << "guest_header delta applied";

  // VM B: harts 2+3, uart1, virtio1, flash.
  const dts::Tree& b = *result.vms[1].tree;
  EXPECT_EQ(b.find("/cpus/cpu@0"), nullptr);
  EXPECT_NE(b.find("/cpus/cpu@3"), nullptr);
  EXPECT_NE(b.find("/soc/flash@20000000"), nullptr);

  // Bao configs: affinities 0b0011 and 0b1100.
  EXPECT_EQ(result.vms[0].config.cpu_affinity, 0b0011u);
  EXPECT_EQ(result.vms[1].config.cpu_affinity, 0b1100u);
  EXPECT_EQ(result.vms[0].config.cpu_num, 2u);
  EXPECT_EQ(result.platform_config.cpu_num, 4u);

  // DTBs verify.
  support::DiagnosticEngine de;
  EXPECT_TRUE(fdt::verify(result.vms[0].dtb, de)) << de.render();
  EXPECT_TRUE(fdt::verify(result.vms[1].dtb, de)) << de.render();
}

TEST(RiscvExample, SameHartTwiceIsRejected) {
  feature::FeatureModel model = riscv_feature_model();
  schema::SchemaSet schemas = riscv_schemas();
  support::DiagnosticEngine diags;
  auto pl = riscv_product_line(diags);
  ASSERT_NE(pl, nullptr);
  Pipeline pipeline(model, riscv_exclusive_harts(model), *pl, schemas);
  auto overlapping = riscv_vm_a_features();
  overlapping.insert("hart2");  // steals a hart VM B owns
  PipelineResult result =
      pipeline.run({{"vma", overlapping}, {"vmb", riscv_vm_b_features()}});
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(checkers::contains(result.findings,
                                 checkers::FindingKind::kExclusivityViolation))
      << checkers::render(result.findings);
}

TEST(RiscvExample, FiveVmsInfeasible) {
  feature::FeatureModel model = riscv_feature_model();
  EXPECT_FALSE(feature::allocation_feasible(model, smt::Backend::kBuiltin, 5,
                                            riscv_exclusive_harts(model)));
}

}  // namespace
}  // namespace llhsc::core

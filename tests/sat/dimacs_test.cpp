#include "sat/dimacs.hpp"

#include <gtest/gtest.h>

namespace llhsc::sat {
namespace {

std::optional<DimacsInstance> parse_ok(std::string_view text) {
  support::DiagnosticEngine de;
  auto instance = parse_dimacs(text, de);
  EXPECT_FALSE(de.has_errors()) << de.render();
  return instance;
}

TEST(Dimacs, ParseSimpleInstance) {
  auto inst = parse_ok(
      "c a comment\n"
      "p cnf 3 2\n"
      "1 -2 0\n"
      "2 3 0\n");
  ASSERT_TRUE(inst.has_value());
  EXPECT_EQ(inst->num_vars, 3);
  ASSERT_EQ(inst->clauses.size(), 2u);
  EXPECT_EQ(inst->clauses[0],
            (std::vector<Lit>{Lit(0, false), Lit(1, true)}));
  EXPECT_EQ(inst->clauses[1],
            (std::vector<Lit>{Lit(1, false), Lit(2, false)}));
}

TEST(Dimacs, MultiLineClause) {
  auto inst = parse_ok("p cnf 4 1\n1 2\n3 4 0\n");
  ASSERT_TRUE(inst.has_value());
  ASSERT_EQ(inst->clauses.size(), 1u);
  EXPECT_EQ(inst->clauses[0].size(), 4u);
}

TEST(Dimacs, MissingHeaderIsError) {
  support::DiagnosticEngine de;
  EXPECT_FALSE(parse_dimacs("1 2 0\n", de).has_value());
  EXPECT_TRUE(de.contains_code("dimacs"));
}

TEST(Dimacs, LiteralOutOfRangeIsError) {
  support::DiagnosticEngine de;
  EXPECT_FALSE(parse_dimacs("p cnf 2 1\n5 0\n", de).has_value());
}

TEST(Dimacs, ClauseCountMismatchWarns) {
  support::DiagnosticEngine de;
  auto inst = parse_dimacs("p cnf 2 5\n1 0\n", de);
  ASSERT_TRUE(inst.has_value());
  EXPECT_EQ(de.warning_count(), 1u);
  EXPECT_EQ(de.error_count(), 0u);
}

TEST(Dimacs, UnterminatedFinalClauseAccepted) {
  support::DiagnosticEngine de;
  auto inst = parse_dimacs("p cnf 2 1\n1 2\n", de);
  ASSERT_TRUE(inst.has_value());
  EXPECT_EQ(inst->clauses.size(), 1u);
  EXPECT_GE(de.warning_count(), 1u);
}

TEST(Dimacs, LoadAndSolveSat) {
  auto inst = parse_ok("p cnf 2 2\n1 2 0\n-1 0\n");
  Solver solver;
  ASSERT_TRUE(load_into(*inst, solver));
  ASSERT_EQ(solver.solve(), SolveResult::kSat);
  EXPECT_EQ(solver.model_value(0), Value::kFalse);
  EXPECT_EQ(solver.model_value(1), Value::kTrue);
  EXPECT_EQ(model_line(solver, 2), "-1 2 0");
}

TEST(Dimacs, LoadAndSolveUnsat) {
  auto inst = parse_ok("p cnf 1 2\n1 0\n-1 0\n");
  Solver solver;
  EXPECT_FALSE(load_into(*inst, solver));
  EXPECT_EQ(solver.solve(), SolveResult::kUnsat);
}

TEST(Dimacs, WriteRoundTrip) {
  auto inst = parse_ok("p cnf 3 2\n1 -2 0\n-3 2 1 0\n");
  std::string text = write_dimacs(*inst);
  auto back = parse_ok(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->num_vars, inst->num_vars);
  EXPECT_EQ(back->clauses, inst->clauses);
}

TEST(Dimacs, EmptyClauseMakesUnsat) {
  auto inst = parse_ok("p cnf 1 1\n0\n");
  Solver solver;
  EXPECT_FALSE(load_into(*inst, solver));
}

}  // namespace
}  // namespace llhsc::sat

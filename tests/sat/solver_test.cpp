// Unit and property tests for the CDCL SAT solver. The property suites
// cross-check the solver against a brute-force evaluator on random small
// instances — any divergence is a solver bug.
#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <thread>

namespace llhsc::sat {
namespace {

TEST(SatSolver, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(SatSolver, SingleUnitClause) {
  Solver s;
  Var x = s.new_var();
  ASSERT_TRUE(s.add_clause(Lit::positive(x)));
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_EQ(s.model_value(x), Value::kTrue);
}

TEST(SatSolver, ContradictoryUnitsAreUnsat) {
  Solver s;
  Var x = s.new_var();
  EXPECT_TRUE(s.add_clause(Lit::positive(x)));
  EXPECT_FALSE(s.add_clause(Lit::negative(x)));
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(SatSolver, EmptyClauseIsUnsat) {
  Solver s;
  EXPECT_FALSE(s.add_clause(std::vector<Lit>{}));
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(SatSolver, TautologicalClauseIsDropped) {
  Solver s;
  Var x = s.new_var();
  EXPECT_TRUE(s.add_clause(Lit::positive(x), Lit::negative(x)));
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(SatSolver, SimpleImplicationChain) {
  // x1 & (x1 -> x2) & (x2 -> x3) forces x3.
  Solver s;
  Var x1 = s.new_var(), x2 = s.new_var(), x3 = s.new_var();
  s.add_clause(Lit::positive(x1));
  s.add_clause(Lit::negative(x1), Lit::positive(x2));
  s.add_clause(Lit::negative(x2), Lit::positive(x3));
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(s.model_bool(x3));
}

TEST(SatSolver, PigeonHole3Into2IsUnsat) {
  // 3 pigeons, 2 holes: classic small unsat instance exercising learning.
  Solver s;
  Var p[3][2];
  for (auto& row : p) {
    for (Var& v : row) v = s.new_var();
  }
  for (int i = 0; i < 3; ++i) {
    s.add_clause(Lit::positive(p[i][0]), Lit::positive(p[i][1]));
  }
  for (int h = 0; h < 2; ++h) {
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) {
        s.add_clause(Lit::negative(p[i][h]), Lit::negative(p[j][h]));
      }
    }
  }
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(SatSolver, PigeonHole5Into4IsUnsat) {
  Solver s;
  constexpr int P = 5, H = 4;
  std::vector<std::vector<Var>> p(P, std::vector<Var>(H));
  for (auto& row : p) {
    for (Var& v : row) v = s.new_var();
  }
  for (int i = 0; i < P; ++i) {
    std::vector<Lit> clause;
    for (int h = 0; h < H; ++h) clause.push_back(Lit::positive(p[i][h]));
    s.add_clause(std::move(clause));
  }
  for (int h = 0; h < H; ++h) {
    for (int i = 0; i < P; ++i) {
      for (int j = i + 1; j < P; ++j) {
        s.add_clause(Lit::negative(p[i][h]), Lit::negative(p[j][h]));
      }
    }
  }
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(SatSolver, AssumptionsSatAndUnsat) {
  Solver s;
  Var x = s.new_var(), y = s.new_var();
  s.add_clause(Lit::negative(x), Lit::positive(y));  // x -> y
  EXPECT_EQ(s.solve({Lit::positive(x)}), SolveResult::kSat);
  EXPECT_TRUE(s.model_bool(y));
  // Assume x and ~y: contradicts x -> y.
  EXPECT_EQ(s.solve({Lit::positive(x), Lit::negative(y)}), SolveResult::kUnsat);
  // Solver is reusable afterwards.
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(SatSolver, UnsatCoreContainsOnlyAssumptions) {
  Solver s;
  Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  s.add_clause(Lit::negative(a), Lit::negative(b));  // ~(a & b)
  ASSERT_EQ(s.solve({Lit::positive(a), Lit::positive(b), Lit::positive(c)}),
            SolveResult::kUnsat);
  const auto& core = s.unsat_core();
  ASSERT_FALSE(core.empty());
  for (Lit l : core) {
    bool is_assumption = l == Lit::positive(a) || l == Lit::positive(b) ||
                         l == Lit::positive(c);
    EXPECT_TRUE(is_assumption) << "core literal is not an assumption";
  }
  // c is irrelevant: a correct (even non-minimal) core from this conflict
  // should contain a or b.
  bool has_ab = std::any_of(core.begin(), core.end(), [&](Lit l) {
    return l == Lit::positive(a) || l == Lit::positive(b);
  });
  EXPECT_TRUE(has_ab);
}

TEST(SatSolver, ModelEnumerationCountsProjectedModels) {
  // x | y has 3 models over {x, y}.
  Solver s;
  Var x = s.new_var(), y = s.new_var();
  s.add_clause(Lit::positive(x), Lit::positive(y));
  EXPECT_EQ(s.count_models({x, y}), 3u);
  // Enumeration must leave the solver usable.
  EXPECT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_EQ(s.count_models({x, y}), 3u) << "enumeration must be repeatable";
}

TEST(SatSolver, ModelEnumerationWithProjection) {
  // (x | y) & (z | ~z): project onto {x} -> 2 models (x true, x false w/ y).
  Solver s;
  Var x = s.new_var(), y = s.new_var();
  Var z = s.new_var();
  s.add_clause(Lit::positive(x), Lit::positive(y));
  s.add_clause(Lit::positive(z), Lit::negative(z));
  EXPECT_EQ(s.count_models({x}), 2u);
}

TEST(SatSolver, ModelEnumerationEarlyStop) {
  Solver s;
  std::vector<Var> vars;
  for (int i = 0; i < 4; ++i) vars.push_back(s.new_var());
  // No constraints: 16 models; stop after 5.
  uint64_t n = s.enumerate_models(
      vars, [](const std::vector<bool>&) { return true; }, 5);
  EXPECT_EQ(n, 5u);
}

TEST(SatSolver, EnumerationCallbackCanAbort) {
  Solver s;
  std::vector<Var> vars;
  for (int i = 0; i < 4; ++i) vars.push_back(s.new_var());
  int seen = 0;
  uint64_t n = s.enumerate_models(vars, [&](const std::vector<bool>&) {
    return ++seen < 3;
  });
  EXPECT_EQ(n, 3u);
}

// ---- Property tests: random 3-SAT vs brute force ----

struct RandomCnfCase {
  int num_vars;
  int num_clauses;
  uint32_t seed;
};

class RandomCnfTest : public ::testing::TestWithParam<RandomCnfCase> {};

TEST_P(RandomCnfTest, AgreesWithBruteForce) {
  const auto& param = GetParam();
  std::mt19937 rng(param.seed);
  std::uniform_int_distribution<int> var_dist(0, param.num_vars - 1);
  std::uniform_int_distribution<int> sign_dist(0, 1);

  std::vector<std::vector<std::pair<int, bool>>> clauses;
  for (int i = 0; i < param.num_clauses; ++i) {
    std::vector<std::pair<int, bool>> clause;
    for (int j = 0; j < 3; ++j) {
      clause.emplace_back(var_dist(rng), sign_dist(rng) == 1);
    }
    clauses.push_back(std::move(clause));
  }

  // Brute force.
  bool brute_sat = false;
  for (uint32_t m = 0; m < (1u << param.num_vars) && !brute_sat; ++m) {
    bool all = true;
    for (const auto& clause : clauses) {
      bool any = false;
      for (auto [v, neg] : clause) {
        bool val = (m >> v) & 1;
        if (neg ? !val : val) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    brute_sat = all;
  }

  Solver s;
  std::vector<Var> vars;
  for (int i = 0; i < param.num_vars; ++i) vars.push_back(s.new_var());
  bool ok = true;
  for (const auto& clause : clauses) {
    std::vector<Lit> lits;
    for (auto [v, neg] : clause) lits.push_back(Lit(vars[v], neg));
    ok = s.add_clause(std::move(lits)) && ok;
  }
  SolveResult r = ok ? s.solve() : SolveResult::kUnsat;
  EXPECT_EQ(r == SolveResult::kSat, brute_sat);

  if (r == SolveResult::kSat) {
    // Verify the model actually satisfies every clause.
    for (const auto& clause : clauses) {
      bool any = false;
      for (auto [v, neg] : clause) {
        bool val = s.model_bool(vars[v]);
        if (neg ? !val : val) {
          any = true;
          break;
        }
      }
      EXPECT_TRUE(any) << "model does not satisfy a clause";
    }
  }
}

std::vector<RandomCnfCase> make_random_cases() {
  std::vector<RandomCnfCase> cases;
  // Sweep the clause/variable ratio through the 3-SAT phase transition
  // (~4.27) so both sat and unsat instances appear.
  for (uint32_t seed = 1; seed <= 12; ++seed) {
    cases.push_back({8, 20, seed});        // under-constrained
    cases.push_back({8, 34, seed + 100});  // near transition
    cases.push_back({8, 60, seed + 200});  // over-constrained
    cases.push_back({12, 51, seed + 300});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Random3Sat, RandomCnfTest,
                         ::testing::ValuesIn(make_random_cases()));

// Model counting vs brute force on random instances.
class RandomCountTest : public ::testing::TestWithParam<RandomCnfCase> {};

TEST_P(RandomCountTest, CountAgreesWithBruteForce) {
  const auto& param = GetParam();
  std::mt19937 rng(param.seed);
  std::uniform_int_distribution<int> var_dist(0, param.num_vars - 1);
  std::uniform_int_distribution<int> sign_dist(0, 1);

  std::vector<std::vector<std::pair<int, bool>>> clauses;
  for (int i = 0; i < param.num_clauses; ++i) {
    std::vector<std::pair<int, bool>> clause;
    for (int j = 0; j < 3; ++j) {
      clause.emplace_back(var_dist(rng), sign_dist(rng) == 1);
    }
    clauses.push_back(std::move(clause));
  }

  uint64_t brute_count = 0;
  for (uint32_t m = 0; m < (1u << param.num_vars); ++m) {
    bool all = true;
    for (const auto& clause : clauses) {
      bool any = false;
      for (auto [v, neg] : clause) {
        bool val = (m >> v) & 1;
        if (neg ? !val : val) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) ++brute_count;
  }

  Solver s;
  std::vector<Var> vars;
  for (int i = 0; i < param.num_vars; ++i) vars.push_back(s.new_var());
  bool ok = true;
  for (const auto& clause : clauses) {
    std::vector<Lit> lits;
    for (auto [v, neg] : clause) lits.push_back(Lit(vars[v], neg));
    ok = s.add_clause(std::move(lits)) && ok;
  }
  uint64_t count = ok ? s.count_models(vars) : 0;
  EXPECT_EQ(count, brute_count);
}

std::vector<RandomCnfCase> make_count_cases() {
  std::vector<RandomCnfCase> cases;
  for (uint32_t seed = 1; seed <= 8; ++seed) {
    cases.push_back({6, 10, seed});
    cases.push_back({7, 20, seed + 50});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomCounting, RandomCountTest,
                         ::testing::ValuesIn(make_count_cases()));

TEST(SatSolver, LargeChainPropagationIsFast) {
  // 10k-variable implication chain: exercises watched-literal propagation.
  Solver s;
  constexpr int N = 10000;
  std::vector<Var> vars;
  for (int i = 0; i < N; ++i) vars.push_back(s.new_var());
  for (int i = 0; i + 1 < N; ++i) {
    s.add_clause(Lit::negative(vars[i]), Lit::positive(vars[i + 1]));
  }
  s.add_clause(Lit::positive(vars[0]));
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(s.model_bool(vars[N - 1]));
}

TEST(SatSolver, UnsatVerdictIsStableAcrossRepeatedSolves) {
  // Regression: a conflict reached at decision level 0 *during search*
  // (i.e. after learned units, not at add_clause time) must latch ok_.
  // Before the fix, the first solve consumed the level-0 trail, returned
  // kUnsat, and a second solve produced a bogus model.
  Solver s;
  Var v[6];
  for (auto& x : v) x = s.new_var();
  auto L = [&](int i) { return Lit::positive(v[i]); };
  // Unsat over binary clauses only, so nothing is decided at add time.
  s.add_clause(L(0), L(5));
  s.add_clause(L(5), L(4));
  s.add_clause(L(3), L(2));
  s.add_clause(L(4), L(2));
  s.add_clause(L(1), ~L(4));
  s.add_clause(L(2), ~L(5));
  s.add_clause(~L(1), L(3));
  s.add_clause(~L(3), ~L(4));
  s.add_clause(L(4), ~L(5));
  s.add_clause(L(2), ~L(3));
  s.add_clause(~L(2), L(5));
  ASSERT_EQ(s.solve(), SolveResult::kUnsat);
  EXPECT_FALSE(s.okay());
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(SatSolver, ExpiredDeadlineReturnsUnknown) {
  Solver s;
  Var x = s.new_var(), y = s.new_var();
  s.add_clause(Lit::positive(x), Lit::positive(y));
  s.set_deadline(support::Deadline::after_ms(0));
  EXPECT_EQ(s.solve(), SolveResult::kUnknown);
  // Clearing the deadline restores normal operation.
  s.set_deadline(support::Deadline());
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(SatSolver, UnlimitedDeadlineNeverReturnsUnknown) {
  Solver s;
  Var x = s.new_var();
  s.add_clause(Lit::positive(x));
  s.set_deadline(support::Deadline::after_ms(60000));
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

// ---- Learned-clause retention across guard retirement ----

// A hard-but-satisfiable random 3-SAT instance near the phase transition:
// enough conflicts to populate the learned-clause database.
void add_hard_sat_instance(Solver& s, std::vector<Var>& vars) {
  std::mt19937 rng(7);
  constexpr int kVars = 24;
  constexpr int kClauses = 96;
  std::uniform_int_distribution<int> var_dist(0, kVars - 1);
  std::uniform_int_distribution<int> sign_dist(0, 1);
  for (int i = 0; i < kVars; ++i) vars.push_back(s.new_var());
  int added = 0;
  while (added < kClauses) {
    int a = var_dist(rng), b = var_dist(rng), c = var_dist(rng);
    if (a == b || b == c || a == c) continue;
    if (s.add_clause(Lit(vars[a], sign_dist(rng) == 1),
                     Lit(vars[b], sign_dist(rng) == 1),
                     Lit(vars[c], sign_dist(rng) == 1))) {
      ++added;
    }
  }
}

TEST(SatSolverRetention, SimplifyKeepsGuardIndependentLearnedClauses) {
  Solver s;
  std::vector<Var> vars;
  add_hard_sat_instance(s, vars);
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  ASSERT_GT(s.stats().conflicts, 0u) << "instance too easy to learn anything";

  // Guarded clauses, as the query planner issues them: (~g | c). None of the
  // learned clauses above mention g — they were derived before g existed.
  Var g = s.new_var();
  s.add_clause(Lit::negative(g), Lit::positive(vars[0]));
  s.add_clause(Lit::negative(g), Lit::positive(vars[1]), Lit::positive(vars[2]));

  // Retire the guard and sweep: the two guarded clauses are satisfied by ~g
  // at level 0 and go; the guard-independent learned clauses stay.
  ASSERT_TRUE(s.add_clause(Lit::negative(g)));
  s.simplify();
  EXPECT_EQ(s.stats().simplifies, 1u);
  EXPECT_GE(s.stats().simplify_removed, 2u);
  EXPECT_GT(s.stats().retained_learned, 0u)
      << "guard-independent learned clauses must survive retirement";
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(SatSolverRetention, SimplifySweepsGuardDependentLearnedClauses) {
  // Every original clause is guarded, so every learned clause is a
  // consequence of g and must carry ~g: retiring g sweeps the whole
  // database, retained_learned == 0.
  Solver s;
  Var g = s.new_var();
  constexpr int P = 5, H = 4;
  std::vector<std::vector<Var>> p(P, std::vector<Var>(H));
  for (auto& row : p) {
    for (Var& v : row) v = s.new_var();
  }
  for (int i = 0; i < P; ++i) {
    std::vector<Lit> clause{Lit::negative(g)};
    for (int h = 0; h < H; ++h) clause.push_back(Lit::positive(p[i][h]));
    s.add_clause(std::move(clause));
  }
  for (int h = 0; h < H; ++h) {
    for (int i = 0; i < P; ++i) {
      for (int j = i + 1; j < P; ++j) {
        s.add_clause(Lit::negative(g), Lit::negative(p[i][h]),
                     Lit::negative(p[j][h]));
      }
    }
  }
  ASSERT_EQ(s.solve({Lit::positive(g)}), SolveResult::kUnsat);
  ASSERT_GT(s.stats().conflicts, 0u);

  ASSERT_TRUE(s.add_clause(Lit::negative(g)));
  s.simplify();
  EXPECT_GT(s.stats().simplify_removed, 0u);
  EXPECT_EQ(s.stats().retained_learned, 0u)
      << "every learned clause depended on the retired guard";
  // With the guard retired the formula is vacuous again.
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(SatSolverRetention, SimplifyWithoutRetentionDropsAllLearned) {
  Solver s;
  std::vector<Var> vars;
  add_hard_sat_instance(s, vars);
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  ASSERT_GT(s.stats().conflicts, 0u);

  s.simplify(/*retain_learned=*/false);
  EXPECT_EQ(s.stats().retained_learned, 0u);
  // Correctness is unaffected either way — learned clauses are consequences.
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(SatSolverRetention, RetainedClausesReduceLaterSearchWork) {
  // Two identical solvers diverge only in simplify(retain): the retaining
  // one re-solves the (restarted) instance with at most as many conflicts.
  auto run = [](bool retain) {
    Solver s;
    std::vector<Var> vars;
    add_hard_sat_instance(s, vars);
    // Force real search on the re-solve: assume the complement of the first
    // model's polarity on a few variables so saved phases do not trivialise
    // the second run.
    EXPECT_EQ(s.solve(), SolveResult::kSat);
    s.simplify(retain);
    std::vector<Lit> flip;
    for (int i = 0; i < 6; ++i) {
      flip.push_back(Lit(vars[i], s.model_bool(vars[i])));
    }
    const uint64_t before = s.stats().conflicts;
    (void)s.solve(flip);
    return s.stats().conflicts - before;
  };
  const uint64_t with_retention = run(true);
  const uint64_t without_retention = run(false);
  EXPECT_LE(with_retention, without_retention)
      << "retained learned clauses must not increase search work";
}

// ---- Cancellation through the deadline token ----

TEST(SatSolver, CancelTokenStopsSearchFromAnotherThread) {
  // 24-bit multiplication commutativity via pigeonhole-style hard instance:
  // use a big pigeonhole that cannot finish quickly, then cancel it.
  Solver s;
  constexpr int P = 12, H = 11;
  std::vector<std::vector<Var>> p(P, std::vector<Var>(H));
  for (auto& row : p) {
    for (Var& v : row) v = s.new_var();
  }
  for (int i = 0; i < P; ++i) {
    std::vector<Lit> clause;
    for (int h = 0; h < H; ++h) clause.push_back(Lit::positive(p[i][h]));
    s.add_clause(std::move(clause));
  }
  for (int h = 0; h < H; ++h) {
    for (int i = 0; i < P; ++i) {
      for (int j = i + 1; j < P; ++j) {
        s.add_clause(Lit::negative(p[i][h]), Lit::negative(p[j][h]));
      }
    }
  }
  support::CancelToken cancel = support::CancelToken::create();
  s.set_deadline(support::Deadline().with_cancel(cancel));
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    cancel.cancel();
  });
  SolveResult r = s.solve();
  canceller.join();
  // Either the search was cancelled (kUnknown) or it legitimately finished
  // under 50ms (kUnsat); both are sound, a hang is the failure mode.
  EXPECT_TRUE(r == SolveResult::kUnknown || r == SolveResult::kUnsat);
  // A cancelled solver is reusable once the token is cleared.
  s.set_deadline(support::Deadline());
  Solver fresh;
  Var x = fresh.new_var();
  fresh.add_clause(Lit::positive(x));
  EXPECT_EQ(fresh.solve(), SolveResult::kSat);
}

TEST(SatSolver, AlreadyCancelledTokenYieldsUnknown) {
  Solver s;
  Var x = s.new_var(), y = s.new_var();
  s.add_clause(Lit::positive(x), Lit::positive(y));
  support::CancelToken cancel = support::CancelToken::create();
  cancel.cancel();
  s.set_deadline(support::Deadline().with_cancel(cancel));
  EXPECT_EQ(s.solve(), SolveResult::kUnknown);
  s.set_deadline(support::Deadline());
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(SatSolver, StatsArePopulated) {
  Solver s;
  Var x = s.new_var(), y = s.new_var();
  s.add_clause(Lit::positive(x), Lit::positive(y));
  s.solve();
  EXPECT_GE(s.stats().decisions, 1u);
}

}  // namespace
}  // namespace llhsc::sat

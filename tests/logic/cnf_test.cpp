// Tseitin encoder tests: for random formulas, the CNF must be equisatisfiable
// and every SAT model of the CNF must satisfy the original formula.
#include "logic/cnf.hpp"

#include <gtest/gtest.h>

#include <random>

#include "logic/formula.hpp"
#include "sat/solver.hpp"

namespace llhsc::logic {
namespace {

TEST(CnfEncoder, AssertVariable) {
  FormulaArena arena;
  sat::Solver solver;
  CnfEncoder enc(arena, solver);
  BoolVar a = arena.new_bool_var("a");
  enc.assert_formula(arena.var(a));
  ASSERT_EQ(solver.solve(), sat::SolveResult::kSat);
  EXPECT_TRUE(enc.model_value(a));
}

TEST(CnfEncoder, AssertContradictionIsUnsat) {
  FormulaArena arena;
  sat::Solver solver;
  CnfEncoder enc(arena, solver);
  Formula a = arena.var(arena.new_bool_var("a"));
  enc.assert_formula(a);
  enc.assert_formula(arena.mk_not(a));
  EXPECT_EQ(solver.solve(), sat::SolveResult::kUnsat);
}

TEST(CnfEncoder, TopLevelAndSplits) {
  FormulaArena arena;
  sat::Solver solver;
  CnfEncoder enc(arena, solver);
  BoolVar a = arena.new_bool_var("a");
  BoolVar b = arena.new_bool_var("b");
  enc.assert_formula(arena.mk_and(arena.var(a), arena.var(b)));
  ASSERT_EQ(solver.solve(), sat::SolveResult::kSat);
  EXPECT_TRUE(enc.model_value(a));
  EXPECT_TRUE(enc.model_value(b));
}

TEST(CnfEncoder, XorConstraint) {
  FormulaArena arena;
  sat::Solver solver;
  CnfEncoder enc(arena, solver);
  BoolVar a = arena.new_bool_var("a");
  BoolVar b = arena.new_bool_var("b");
  enc.assert_formula(arena.mk_xor(arena.var(a), arena.var(b)));
  ASSERT_EQ(solver.solve(), sat::SolveResult::kSat);
  EXPECT_NE(enc.model_value(a), enc.model_value(b));
}

// Random formula property test: Tseitin encoding preserves satisfiability and
// models project correctly.
struct RandomFormulaCase {
  uint32_t seed;
  int num_vars;
  int depth;
};

class RandomFormulaTest : public ::testing::TestWithParam<RandomFormulaCase> {
 protected:
  Formula random_formula(FormulaArena& arena, const std::vector<Formula>& vars,
                         std::mt19937& rng, int depth) {
    std::uniform_int_distribution<int> op_dist(0, depth <= 0 ? 0 : 5);
    switch (op_dist(rng)) {
      case 0: {
        std::uniform_int_distribution<size_t> v(0, vars.size() - 1);
        return vars[v(rng)];
      }
      case 1:
        return arena.mk_not(random_formula(arena, vars, rng, depth - 1));
      case 2:
        return arena.mk_and(random_formula(arena, vars, rng, depth - 1),
                            random_formula(arena, vars, rng, depth - 1));
      case 3:
        return arena.mk_or(random_formula(arena, vars, rng, depth - 1),
                           random_formula(arena, vars, rng, depth - 1));
      case 4:
        return arena.mk_xor(random_formula(arena, vars, rng, depth - 1),
                            random_formula(arena, vars, rng, depth - 1));
      default:
        return arena.mk_iff(random_formula(arena, vars, rng, depth - 1),
                            random_formula(arena, vars, rng, depth - 1));
    }
  }
};

TEST_P(RandomFormulaTest, EncodingIsEquisatisfiableAndModelsProject) {
  const auto& param = GetParam();
  std::mt19937 rng(param.seed);
  FormulaArena arena;
  std::vector<BoolVar> bool_vars;
  std::vector<Formula> vars;
  for (int i = 0; i < param.num_vars; ++i) {
    bool_vars.push_back(arena.new_bool_var("v" + std::to_string(i)));
    vars.push_back(arena.var(bool_vars.back()));
  }
  Formula f = random_formula(arena, vars, rng, param.depth);

  // Brute-force satisfiability of f.
  bool brute_sat = false;
  for (uint32_t m = 0; m < (1u << param.num_vars); ++m) {
    std::vector<bool> assignment;
    for (int i = 0; i < param.num_vars; ++i) assignment.push_back((m >> i) & 1);
    if (arena.evaluate(f, assignment)) {
      brute_sat = true;
      break;
    }
  }

  sat::Solver solver;
  CnfEncoder enc(arena, solver);
  enc.assert_formula(f);
  bool cnf_sat = solver.solve() == sat::SolveResult::kSat;
  EXPECT_EQ(cnf_sat, brute_sat);

  if (cnf_sat) {
    std::vector<bool> assignment;
    for (int i = 0; i < param.num_vars; ++i) {
      assignment.push_back(enc.model_value(bool_vars[static_cast<size_t>(i)]));
    }
    EXPECT_TRUE(arena.evaluate(f, assignment))
        << "SAT model does not satisfy the source formula: "
        << arena.to_string(f);
  }
}

// At-most-one encodings: pairwise and sequential must admit exactly the
// same projected models (n "one true" cases + 1 "none true").
class AmoEncodingTest : public ::testing::TestWithParam<int> {};

TEST_P(AmoEncodingTest, PairwiseAndSequentialAgree) {
  int n = GetParam();
  for (bool sequential : {false, true}) {
    FormulaArena arena;
    sat::Solver solver;
    CnfEncoder enc(arena, solver);
    std::vector<BoolVar> vars;
    std::vector<Formula> fs;
    for (int i = 0; i < n; ++i) {
      vars.push_back(arena.new_bool_var("x" + std::to_string(i)));
      fs.push_back(arena.var(vars.back()));
    }
    Formula amo = sequential ? arena.mk_at_most_one_sequential(fs)
                             : arena.mk_at_most_one_pairwise(fs);
    enc.assert_formula(amo);
    std::vector<sat::Var> projection;
    for (BoolVar v : vars) projection.push_back(enc.sat_var(v));
    EXPECT_EQ(solver.count_models(projection), static_cast<uint64_t>(n) + 1)
        << (sequential ? "sequential" : "pairwise") << " n=" << n;
  }
}

TEST_P(AmoEncodingTest, ExactlyOneDispatchCountsModels) {
  int n = GetParam();
  FormulaArena arena;
  sat::Solver solver;
  CnfEncoder enc(arena, solver);
  std::vector<BoolVar> vars;
  std::vector<Formula> fs;
  for (int i = 0; i < n; ++i) {
    vars.push_back(arena.new_bool_var("x" + std::to_string(i)));
    fs.push_back(arena.var(vars.back()));
  }
  enc.assert_formula(arena.mk_exactly_one(fs));
  std::vector<sat::Var> projection;
  for (BoolVar v : vars) projection.push_back(enc.sat_var(v));
  EXPECT_EQ(solver.count_models(projection), static_cast<uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, AmoEncodingTest,
                         ::testing::Values(1, 2, 3, 7, 8, 9, 12, 20));

std::vector<RandomFormulaCase> make_cases() {
  std::vector<RandomFormulaCase> cases;
  for (uint32_t seed = 1; seed <= 30; ++seed) {
    cases.push_back({seed, 5, 6});
    cases.push_back({seed + 1000, 8, 8});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomFormulas, RandomFormulaTest,
                         ::testing::ValuesIn(make_cases()));

}  // namespace
}  // namespace llhsc::logic

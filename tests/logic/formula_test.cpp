#include "logic/formula.hpp"

#include <gtest/gtest.h>

namespace llhsc::logic {
namespace {

class FormulaTest : public ::testing::Test {
 protected:
  FormulaArena arena;
};

TEST_F(FormulaTest, ConstantsAreInterned) {
  EXPECT_EQ(arena.make_true(), arena.make_true());
  EXPECT_EQ(arena.make_false(), arena.make_false());
  EXPECT_NE(arena.make_true(), arena.make_false());
}

TEST_F(FormulaTest, VariablesAreDistinct) {
  BoolVar a = arena.new_bool_var("a");
  BoolVar b = arena.new_bool_var("b");
  EXPECT_NE(arena.var(a), arena.var(b));
  EXPECT_EQ(arena.var(a), arena.var(a));
  EXPECT_EQ(arena.var_name(a), "a");
}

TEST_F(FormulaTest, HashConsingSharesStructure) {
  Formula a = arena.var(arena.new_bool_var("a"));
  Formula b = arena.var(arena.new_bool_var("b"));
  Formula f1 = arena.mk_and(a, b);
  Formula f2 = arena.mk_and(a, b);
  EXPECT_EQ(f1, f2);
  // Commutativity through canonical ordering.
  EXPECT_EQ(arena.mk_and(b, a), f1);
  EXPECT_EQ(arena.mk_or(a, b), arena.mk_or(b, a));
}

TEST_F(FormulaTest, SimplificationRules) {
  Formula a = arena.var(arena.new_bool_var("a"));
  Formula t = arena.make_true();
  Formula f = arena.make_false();
  EXPECT_EQ(arena.mk_and(a, t), a);
  EXPECT_EQ(arena.mk_and(a, f), f);
  EXPECT_EQ(arena.mk_or(a, f), a);
  EXPECT_EQ(arena.mk_or(a, t), t);
  EXPECT_EQ(arena.mk_not(arena.mk_not(a)), a);
  EXPECT_EQ(arena.mk_and(a, a), a);
  EXPECT_EQ(arena.mk_and(a, arena.mk_not(a)), f);
  EXPECT_EQ(arena.mk_or(a, arena.mk_not(a)), t);
  EXPECT_EQ(arena.mk_xor(a, a), f);
  EXPECT_EQ(arena.mk_iff(a, a), t);
  EXPECT_EQ(arena.mk_implies(f, a), t);
  EXPECT_EQ(arena.mk_implies(a, t), t);
}

TEST_F(FormulaTest, EvaluateBasicConnectives) {
  BoolVar va = arena.new_bool_var("a");
  BoolVar vb = arena.new_bool_var("b");
  Formula a = arena.var(va);
  Formula b = arena.var(vb);

  auto eval = [&](Formula f, bool av, bool bv) {
    std::vector<bool> assignment{av, bv};
    return arena.evaluate(f, assignment);
  };

  Formula conj = arena.mk_and(a, b);
  Formula disj = arena.mk_or(a, b);
  Formula ex = arena.mk_xor(a, b);
  Formula imp = arena.mk_implies(a, b);
  Formula iff = arena.mk_iff(a, b);
  for (bool av : {false, true}) {
    for (bool bv : {false, true}) {
      EXPECT_EQ(eval(conj, av, bv), av && bv);
      EXPECT_EQ(eval(disj, av, bv), av || bv);
      EXPECT_EQ(eval(ex, av, bv), av != bv);
      EXPECT_EQ(eval(imp, av, bv), !av || bv);
      EXPECT_EQ(eval(iff, av, bv), av == bv);
    }
  }
}

TEST_F(FormulaTest, ExactlyOneSemantics) {
  std::vector<BoolVar> vars;
  std::vector<Formula> fs;
  for (int i = 0; i < 4; ++i) {
    vars.push_back(arena.new_bool_var("x" + std::to_string(i)));
    fs.push_back(arena.var(vars.back()));
  }
  Formula eo = arena.mk_exactly_one(fs);
  for (uint32_t m = 0; m < 16; ++m) {
    std::vector<bool> assignment;
    int pop = 0;
    for (int i = 0; i < 4; ++i) {
      bool bit = (m >> i) & 1;
      assignment.push_back(bit);
      pop += bit;
    }
    EXPECT_EQ(arena.evaluate(eo, assignment), pop == 1) << "m=" << m;
  }
}

TEST_F(FormulaTest, AtMostOneSemantics) {
  std::vector<Formula> fs;
  for (int i = 0; i < 3; ++i) {
    fs.push_back(arena.var(arena.new_bool_var("x" + std::to_string(i))));
  }
  Formula amo = arena.mk_at_most_one(fs);
  for (uint32_t m = 0; m < 8; ++m) {
    std::vector<bool> assignment;
    int pop = 0;
    for (int i = 0; i < 3; ++i) {
      bool bit = (m >> i) & 1;
      assignment.push_back(bit);
      pop += bit;
    }
    EXPECT_EQ(arena.evaluate(amo, assignment), pop <= 1);
  }
}

TEST_F(FormulaTest, IteSimplifies) {
  Formula a = arena.var(arena.new_bool_var("a"));
  Formula b = arena.var(arena.new_bool_var("b"));
  EXPECT_EQ(arena.mk_ite(arena.make_true(), a, b), a);
  EXPECT_EQ(arena.mk_ite(arena.make_false(), a, b), b);
  EXPECT_EQ(arena.mk_ite(a, b, b), b);
}

TEST_F(FormulaTest, ToStringRendersStructure) {
  Formula a = arena.var(arena.new_bool_var("a"));
  Formula b = arena.var(arena.new_bool_var("b"));
  std::string s = arena.to_string(arena.mk_and(a, b));
  EXPECT_NE(s.find("and"), std::string::npos);
  EXPECT_NE(s.find('a'), std::string::npos);
  EXPECT_NE(s.find('b'), std::string::npos);
}

TEST_F(FormulaTest, NaryHelpers) {
  std::vector<Formula> fs;
  for (int i = 0; i < 5; ++i) {
    fs.push_back(arena.var(arena.new_bool_var("v" + std::to_string(i))));
  }
  Formula all = arena.mk_and(fs);
  Formula any = arena.mk_or(fs);
  std::vector<bool> all_true(5, true);
  std::vector<bool> all_false(5, false);
  std::vector<bool> one_true(5, false);
  one_true[2] = true;
  EXPECT_TRUE(arena.evaluate(all, all_true));
  EXPECT_FALSE(arena.evaluate(all, one_true));
  EXPECT_TRUE(arena.evaluate(any, one_true));
  EXPECT_FALSE(arena.evaluate(any, all_false));
}

TEST_F(FormulaTest, EmptyNaryAndIsTrueOrIsFalse) {
  EXPECT_EQ(arena.mk_and(std::span<const Formula>{}), arena.make_true());
  EXPECT_EQ(arena.mk_or(std::span<const Formula>{}), arena.make_false());
}

TEST_F(FormulaTest, BvAtomsIntern) {
  Formula a1 = arena.mk_bv_atom(BvPred::kUlt, 3, 7);
  Formula a2 = arena.mk_bv_atom(BvPred::kUlt, 3, 7);
  Formula a3 = arena.mk_bv_atom(BvPred::kUle, 3, 7);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, a3);
  EXPECT_EQ(arena.op(a1), Op::kBvAtom);
  EXPECT_EQ(arena.bv_atom(a1).lhs_term, 3u);
  EXPECT_EQ(arena.bv_atom(a1).rhs_term, 7u);
}

}  // namespace
}  // namespace llhsc::logic

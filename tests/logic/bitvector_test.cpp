// Bit-blaster property tests: arithmetic and predicates on constant vectors
// must match native 64-bit arithmetic; symbolic cases are cross-checked
// through the SAT solver.
#include "logic/bitvector.hpp"

#include <gtest/gtest.h>

#include <random>

#include "logic/cnf.hpp"
#include "sat/solver.hpp"

namespace llhsc::logic {
namespace {

class BvFixture : public ::testing::Test {
 protected:
  FormulaArena formulas;
  BvArena bv{formulas};

  /// Evaluates a formula that contains no free variables.
  bool eval_closed(Formula f) {
    std::vector<bool> empty(formulas.num_bool_vars(), false);
    return formulas.evaluate(f, empty, bv.atom_evaluator());
  }

  uint64_t eval_term_closed(BvTerm t) {
    std::vector<bool> empty(formulas.num_bool_vars(), false);
    return bv.evaluate(t, empty);
  }
};

TEST_F(BvFixture, ConstantRoundTrip) {
  EXPECT_EQ(eval_term_closed(bv.bv_const(0xdeadbeef, 32)), 0xdeadbeefu);
  EXPECT_EQ(eval_term_closed(bv.bv_const(0, 32)), 0u);
  EXPECT_EQ(eval_term_closed(bv.bv_const(UINT64_MAX, 64)), UINT64_MAX);
  // Truncation to width.
  EXPECT_EQ(eval_term_closed(bv.bv_const(0x1ff, 8)), 0xffu);
}

TEST_F(BvFixture, ConstantArithmetic) {
  auto c = [&](uint64_t v) { return bv.bv_const(v, 32); };
  EXPECT_EQ(eval_term_closed(bv.bv_add(c(3), c(4))), 7u);
  EXPECT_EQ(eval_term_closed(bv.bv_sub(c(10), c(4))), 6u);
  EXPECT_EQ(eval_term_closed(bv.bv_sub(c(0), c(1))), 0xffffffffu);  // wrap
  EXPECT_EQ(eval_term_closed(bv.bv_mul(c(6), c(7))), 42u);
  EXPECT_EQ(eval_term_closed(bv.bv_and(c(0xf0), c(0x3c))), 0x30u);
  EXPECT_EQ(eval_term_closed(bv.bv_or(c(0xf0), c(0x0f))), 0xffu);
  EXPECT_EQ(eval_term_closed(bv.bv_xor(c(0xff), c(0x0f))), 0xf0u);
  EXPECT_EQ(eval_term_closed(bv.bv_not(c(0))), 0xffffffffu);
  EXPECT_EQ(eval_term_closed(bv.bv_shl(c(1), 4)), 16u);
  EXPECT_EQ(eval_term_closed(bv.bv_lshr(c(0x100), 4)), 0x10u);
}

TEST_F(BvFixture, ExtractConcatZeroExtend) {
  auto t = bv.bv_const(0xabcd1234, 32);
  EXPECT_EQ(eval_term_closed(bv.bv_extract(t, 15, 0)), 0x1234u);
  EXPECT_EQ(eval_term_closed(bv.bv_extract(t, 31, 16)), 0xabcdu);
  auto hi = bv.bv_const(0xab, 8);
  auto lo = bv.bv_const(0xcd, 8);
  EXPECT_EQ(eval_term_closed(bv.bv_concat(hi, lo)), 0xabcdu);
  EXPECT_EQ(bv.width(bv.bv_concat(hi, lo)), 16u);
  auto z = bv.bv_zero_extend(lo, 32);
  EXPECT_EQ(bv.width(z), 32u);
  EXPECT_EQ(eval_term_closed(z), 0xcdu);
}

TEST_F(BvFixture, ConstantPredicates) {
  auto c = [&](uint64_t v) { return bv.bv_const(v, 32); };
  EXPECT_TRUE(eval_closed(bv.eq(c(5), c(5))));
  EXPECT_FALSE(eval_closed(bv.eq(c(5), c(6))));
  EXPECT_TRUE(eval_closed(bv.ult(c(5), c(6))));
  EXPECT_FALSE(eval_closed(bv.ult(c(6), c(5))));
  EXPECT_FALSE(eval_closed(bv.ult(c(5), c(5))));
  EXPECT_TRUE(eval_closed(bv.ule(c(5), c(5))));
  EXPECT_TRUE(eval_closed(bv.ule(c(4), c(5))));
  EXPECT_FALSE(eval_closed(bv.ule(c(6), c(5))));
  EXPECT_TRUE(eval_closed(bv.uge(c(6), c(5))));
  EXPECT_TRUE(eval_closed(bv.ugt(c(6), c(5))));
  // Overflow.
  EXPECT_TRUE(eval_closed(bv.uadd_overflow(c(0xffffffff), c(1))));
  EXPECT_FALSE(eval_closed(bv.uadd_overflow(c(0x7fffffff), c(1))));
}

TEST_F(BvFixture, IteSelectsByCondition) {
  BoolVar cvar = formulas.new_bool_var("c");
  Formula c = formulas.var(cvar);
  auto t = bv.bv_ite(c, bv.bv_const(10, 8), bv.bv_const(20, 8));
  std::vector<bool> yes(formulas.num_bool_vars(), false);
  yes[cvar.index] = true;
  std::vector<bool> no(formulas.num_bool_vars(), false);
  EXPECT_EQ(bv.evaluate(t, yes), 10u);
  EXPECT_EQ(bv.evaluate(t, no), 20u);
}

// Symbolic property: solver finds x such that x + 1 == 0 (i.e. x = max).
TEST_F(BvFixture, SolverFindsWrapAroundValue) {
  auto x = bv.bv_var("x", 16);
  Formula goal = bv.eq(bv.bv_add(x, bv.bv_const(1, 16)), bv.bv_const(0, 16));
  sat::Solver solver;
  CnfEncoder enc(formulas, solver, &bv);
  enc.assert_formula(goal);
  ASSERT_EQ(solver.solve(), sat::SolveResult::kSat);
  std::vector<bool> assignment(formulas.num_bool_vars(), false);
  for (uint32_t i = 0; i < assignment.size(); ++i) {
    assignment[i] = enc.model_value(BoolVar{i});
  }
  EXPECT_EQ(bv.evaluate(x, assignment), 0xffffu);
}

TEST_F(BvFixture, UnsatisfiableRangeConstraint) {
  // x < 4 && x > 10 is unsat.
  auto x = bv.bv_var("x", 8);
  sat::Solver solver;
  CnfEncoder enc(formulas, solver, &bv);
  enc.assert_formula(bv.ult(x, bv.bv_const(4, 8)));
  enc.assert_formula(bv.ugt(x, bv.bv_const(10, 8)));
  EXPECT_EQ(solver.solve(), sat::SolveResult::kUnsat);
}

// Randomised cross-check of blasted arithmetic vs native arithmetic.
struct BvRandomCase {
  uint32_t seed;
  uint32_t width;
};

class BvRandomTest : public ::testing::TestWithParam<BvRandomCase> {};

TEST_P(BvRandomTest, BlastedOpsMatchNative) {
  const auto& param = GetParam();
  std::mt19937_64 rng(param.seed);
  FormulaArena formulas;
  BvArena bv(formulas);
  uint64_t mask = param.width == 64 ? UINT64_MAX : (1ULL << param.width) - 1;

  for (int iter = 0; iter < 24; ++iter) {
    uint64_t a = rng() & mask;
    uint64_t b = rng() & mask;
    auto ta = bv.bv_const(a, param.width);
    auto tb = bv.bv_const(b, param.width);
    std::vector<bool> empty(formulas.num_bool_vars(), false);
    auto ev = [&](BvTerm t) { return bv.evaluate(t, empty); };
    auto evf = [&](Formula f) {
      std::vector<bool> e(formulas.num_bool_vars(), false);
      return formulas.evaluate(f, e, bv.atom_evaluator());
    };
    EXPECT_EQ(ev(bv.bv_add(ta, tb)), (a + b) & mask);
    EXPECT_EQ(ev(bv.bv_sub(ta, tb)), (a - b) & mask);
    EXPECT_EQ(ev(bv.bv_mul(ta, tb)), (a * b) & mask);
    EXPECT_EQ(ev(bv.bv_and(ta, tb)), a & b);
    EXPECT_EQ(ev(bv.bv_or(ta, tb)), a | b);
    EXPECT_EQ(ev(bv.bv_xor(ta, tb)), a ^ b);
    EXPECT_EQ(evf(bv.ult(ta, tb)), a < b);
    EXPECT_EQ(evf(bv.ule(ta, tb)), a <= b);
    EXPECT_EQ(evf(bv.eq(ta, tb)), a == b);
    unsigned __int128 sum = static_cast<unsigned __int128>(a) + b;
    bool overflow = param.width == 64 ? sum > UINT64_MAX
                                      : sum >= (1ULL << param.width);
    EXPECT_EQ(evf(bv.uadd_overflow(ta, tb)), overflow);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, BvRandomTest,
    ::testing::Values(BvRandomCase{1, 8}, BvRandomCase{2, 16},
                      BvRandomCase{3, 32}, BvRandomCase{4, 64},
                      BvRandomCase{5, 7}, BvRandomCase{6, 33}));

}  // namespace
}  // namespace llhsc::logic

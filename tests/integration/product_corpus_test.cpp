// Whole-product-line integration sweep: every valid product of the running
// example (all 12) and a sample of the RV64 platform's products are derived,
// pushed through every checker and compiled to a verified DTB. This is the
// "the product line is safe by construction" claim (§III-B) tested
// exhaustively rather than on the two paper configurations.
#include <gtest/gtest.h>

#include "checkers/lint.hpp"
#include "checkers/semantic.hpp"
#include "checkers/syntactic.hpp"
#include "core/riscv_example.hpp"
#include "feature/multivm.hpp"
#include "core/running_example.hpp"
#include "dts/printer.hpp"
#include "fdt/fdt.hpp"
#include "schema/builtin_schemas.hpp"

namespace llhsc {
namespace {

std::set<std::string> selection_names(const feature::FeatureModel& m,
                                      const feature::Selection& sel) {
  std::set<std::string> names;
  for (uint32_t i = 0; i < m.size(); ++i) {
    if (sel[i]) names.insert(m.feature(feature::FeatureId{i}).name);
  }
  return names;
}

void check_product(const delta::ProductLine& pl,
                   const schema::SchemaSet& schemas,
                   const std::set<std::string>& features,
                   const std::string& label) {
  support::DiagnosticEngine diags;
  auto tree = pl.derive(features, diags);
  ASSERT_NE(tree, nullptr) << label << ": " << diags.render();
  ASSERT_FALSE(diags.has_errors()) << label << ": " << diags.render();

  checkers::SyntacticChecker syn(schemas);
  checkers::Findings f = syn.check(*tree);
  EXPECT_EQ(checkers::error_count(f), 0u)
      << label << ":\n" << checkers::render(f);

  checkers::SemanticChecker sem;
  checkers::Findings sf = sem.check(*tree);
  EXPECT_EQ(checkers::error_count(sf), 0u)
      << label << ":\n" << checkers::render(sf);

  checkers::Findings lf = checkers::LintChecker().check(*tree);
  EXPECT_TRUE(lf.empty()) << label << ":\n" << checkers::render(lf);

  // DTS round-trips and the DTB verifies.
  support::DiagnosticEngine de;
  auto reparsed = dts::parse_dts(dts::print_dts(*tree), label + ".dts", de);
  EXPECT_NE(reparsed, nullptr) << label;
  EXPECT_FALSE(de.has_errors()) << label << ": " << de.render();
  auto blob = fdt::emit(*tree, de);
  ASSERT_TRUE(blob.has_value()) << label << ": " << de.render();
  EXPECT_TRUE(fdt::verify(*blob, de)) << label << ": " << de.render();
}

TEST(ProductCorpus, AllTwelveRunningExampleProductsAreSound) {
  feature::FeatureModel model = feature::running_example_model();
  support::DiagnosticEngine diags;
  auto pl = core::running_example_product_line(diags);
  ASSERT_NE(pl, nullptr) << diags.render();
  schema::SchemaSet schemas = schema::builtin_schemas();

  smt::Solver solver;
  uint64_t n = 0;
  feature::enumerate_products(model, solver, [&](const feature::Selection& sel) {
    std::set<std::string> features = selection_names(model, sel);
    check_product(*pl, schemas, features, "product" + std::to_string(n));
    ++n;
    return true;
  });
  EXPECT_EQ(n, 12u);
}

TEST(ProductCorpus, SampledRiscvProductsAreSound) {
  feature::FeatureModel model = core::riscv_feature_model();
  support::DiagnosticEngine diags;
  auto pl = core::riscv_product_line(diags);
  ASSERT_NE(pl, nullptr) << diags.render();
  schema::SchemaSet schemas = core::riscv_schemas();

  smt::Solver solver;
  uint64_t n = 0;
  feature::enumerate_products(
      model, solver,
      [&](const feature::Selection& sel) {
        std::set<std::string> features = selection_names(model, sel);
        check_product(*pl, schemas, features, "rv64-product" + std::to_string(n));
        ++n;
        return true;
      },
      /*max_products=*/24);
  EXPECT_EQ(n, 24u);
}

TEST(ProductCorpus, EveryTwoVmAllocationIsSemanticallySound) {
  // Beyond single products: all 72 allocations of the running example derive
  // two VM DTSs that pass the semantic checker simultaneously.
  feature::FeatureModel model = feature::running_example_model();
  support::DiagnosticEngine diags;
  auto pl = core::running_example_product_line(diags);
  ASSERT_NE(pl, nullptr);
  auto cpus = core::exclusive_cpus(model);

  smt::Solver solver;
  uint64_t n = 0;
  feature::enumerate_allocations(
      model, solver, 2, cpus,
      [&](const feature::Allocation& alloc) {
        for (size_t k = 0; k < alloc.vm_selections.size(); ++k) {
          support::DiagnosticEngine d;
          auto tree = pl->derive(
              selection_names(model, alloc.vm_selections[k]), d);
          EXPECT_NE(tree, nullptr) << d.render();
          if (tree) {
            checkers::SemanticChecker sem;
            checkers::Findings f = sem.check(*tree);
            EXPECT_EQ(checkers::error_count(f), 0u)
                << "allocation " << n << " vm" << k << ":\n"
                << checkers::render(f);
          }
        }
        ++n;
        return true;
      });
  EXPECT_EQ(n, 72u);
}

}  // namespace
}  // namespace llhsc

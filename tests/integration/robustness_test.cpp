// Robustness / failure-injection suite: the binary FDT reader and the DTS
// parser must survive arbitrary corruption without crashing — errors are
// reported through diagnostics, never through UB. Deterministic mutation
// corpus (seeded RNG), no external fuzzer needed.
#include <gtest/gtest.h>

#include <random>

#include "dts/parser.hpp"
#include "fdt/fdt.hpp"

namespace llhsc {
namespace {

std::vector<uint8_t> healthy_blob() {
  support::DiagnosticEngine de;
  auto tree = dts::parse_dts(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    memory@40000000 { device_type = "memory"; reg = <0x40000000 0x1000>; };
    chosen { bootargs = "console=ttyS0"; };
    soc {
        #address-cells = <1>;
        #size-cells = <1>;
        uart@10000000 { compatible = "ns16550a"; reg = <0x10000000 0x100>; };
    };
};
)",
                             "base.dts", de);
  auto blob = fdt::emit(*tree, de);
  EXPECT_TRUE(blob.has_value());
  return blob.value_or(std::vector<uint8_t>{});
}

TEST(FdtRobustness, SingleByteCorruptionNeverCrashes) {
  std::vector<uint8_t> base = healthy_blob();
  std::mt19937 rng(7);
  std::uniform_int_distribution<size_t> pos_dist(0, base.size() - 1);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int i = 0; i < 500; ++i) {
    std::vector<uint8_t> blob = base;
    blob[pos_dist(rng)] = static_cast<uint8_t>(byte_dist(rng));
    support::DiagnosticEngine de;
    // Must return either a tree or nullptr-with-errors; never crash or hang.
    auto tree = fdt::read(blob, de);
    if (tree == nullptr) {
      EXPECT_TRUE(de.has_errors());
    }
    support::DiagnosticEngine dv;
    (void)fdt::verify(blob, dv);
  }
}

TEST(FdtRobustness, TruncationSweepNeverCrashes) {
  std::vector<uint8_t> base = healthy_blob();
  for (size_t len = 0; len <= base.size(); len += 7) {
    std::vector<uint8_t> blob(base.begin(),
                              base.begin() + static_cast<long>(len));
    support::DiagnosticEngine de;
    auto tree = fdt::read(blob, de);
    if (len < base.size()) {
      EXPECT_EQ(tree, nullptr) << "truncated blob at " << len;
    }
  }
}

TEST(FdtRobustness, HeaderFieldFuzzing) {
  std::vector<uint8_t> base = healthy_blob();
  std::mt19937 rng(11);
  std::uniform_int_distribution<int> field(0, 9);
  std::uniform_int_distribution<uint32_t> value(0, UINT32_MAX);
  for (int i = 0; i < 300; ++i) {
    std::vector<uint8_t> blob = base;
    size_t off = static_cast<size_t>(field(rng)) * 4;
    uint32_t v = value(rng);
    blob[off] = static_cast<uint8_t>(v >> 24);
    blob[off + 1] = static_cast<uint8_t>(v >> 16);
    blob[off + 2] = static_cast<uint8_t>(v >> 8);
    blob[off + 3] = static_cast<uint8_t>(v);
    support::DiagnosticEngine de;
    (void)fdt::read(blob, de);
    support::DiagnosticEngine dv;
    (void)fdt::verify(blob, dv);
  }
}

TEST(DtsRobustness, RandomTextNeverCrashes) {
  std::mt19937 rng(13);
  const std::string alphabet =
      "{}<>[]();=&/\\\"'@#,.-_ \n\tabcdef0123456789xX*";
  std::uniform_int_distribution<size_t> char_dist(0, alphabet.size() - 1);
  std::uniform_int_distribution<size_t> len_dist(1, 400);
  for (int i = 0; i < 300; ++i) {
    std::string text;
    size_t len = len_dist(rng);
    for (size_t c = 0; c < len; ++c) text += alphabet[char_dist(rng)];
    support::DiagnosticEngine de;
    (void)dts::parse_dts(text, "fuzz.dts", de);
  }
}

TEST(DtsRobustness, MutatedValidSourceNeverCrashes) {
  const std::string base = R"(
/dts-v1/;
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    l1: dev@1000 { reg = <0x1000 0x100>; names = "a", "b"; raw = [de ad]; };
    user { link = <&l1 (1 + 2)>; alias = &l1; };
};
)";
  std::mt19937 rng(17);
  std::uniform_int_distribution<size_t> pos_dist(0, base.size() - 1);
  std::uniform_int_distribution<int> op_dist(0, 2);
  std::uniform_int_distribution<int> byte_dist(32, 126);
  for (int i = 0; i < 400; ++i) {
    std::string text = base;
    switch (op_dist(rng)) {
      case 0:  // substitute
        text[pos_dist(rng)] = static_cast<char>(byte_dist(rng));
        break;
      case 1:  // delete
        text.erase(pos_dist(rng) % text.size(), 1);
        break;
      default:  // insert
        text.insert(pos_dist(rng) % text.size(), 1,
                    static_cast<char>(byte_dist(rng)));
        break;
    }
    support::DiagnosticEngine de;
    (void)dts::parse_dts(text, "mutated.dts", de);
  }
}

TEST(DtsRobustness, DeepNestingDoesNotOverflow) {
  // 2000 nested nodes: recursion depth must be handled (parser recurses per
  // nesting level; this bounds the acceptable depth and documents it).
  std::string text = "/ { ";
  for (int i = 0; i < 2000; ++i) text += "n { ";
  for (int i = 0; i < 2000; ++i) text += "}; ";
  text += "};";
  support::DiagnosticEngine de;
  auto tree = dts::parse_dts(text, "deep.dts", de);
  EXPECT_NE(tree, nullptr);
}

TEST(DtsRobustness, HugePropertyValue) {
  std::string text = "/ { n { big = <";
  for (int i = 0; i < 50000; ++i) text += "1 ";
  text += ">; }; };";
  support::DiagnosticEngine de;
  auto tree = dts::parse_dts(text, "huge.dts", de);
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->find("/n")->find_property("big")->as_cells()->size(),
            50000u);
}

}  // namespace
}  // namespace llhsc

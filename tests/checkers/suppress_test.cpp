// SuppressionIndex tests: inline `// llhsc-disable-next-line` comment
// scanning (id lists, bare form, trailing-comment form, marker-in-string
// inertness), baseline load/apply (including every documented error), and
// the to_baseline round trip.
#include "checkers/suppress.hpp"

#include <gtest/gtest.h>

namespace llhsc::checkers {
namespace {

Finding make(std::string rule, std::string subject, std::string file = "a.dts",
             uint32_t line = 10) {
  Finding f;
  f.rule = std::move(rule);
  f.subject = std::move(subject);
  f.location.file = std::move(file);
  f.location.line = line;
  f.location.column = 1;
  f.message = "seeded";
  return f;
}

TEST(Suppress, EmptyIndexSuppressesNothing) {
  SuppressionIndex idx;
  EXPECT_TRUE(idx.empty());
  Findings fs = {make("graph-cells-arity", "/uart@2000")};
  EXPECT_EQ(idx.apply(fs), 0u);
  EXPECT_EQ(fs.size(), 1u);
}

TEST(Suppress, CommentNamingTheRuleSuppressesTheNextLine) {
  SuppressionIndex idx;
  idx.add_source("a.dts", R"(line one
// llhsc-disable-next-line graph-cells-arity
    clocks = <&clk>;
)");
  EXPECT_FALSE(idx.empty());
  Findings fs = {make("graph-cells-arity", "/uart@2000", "a.dts", 3),
                 make("graph-cells-arity", "/uart@2000", "a.dts", 4),
                 make("graph-provider-cycle", "/uart@2000", "a.dts", 3)};
  EXPECT_EQ(idx.apply(fs), 1u);  // the named rule on the guarded line only
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].location.line, 4u);
  EXPECT_EQ(fs[1].rule, "graph-provider-cycle");
}

TEST(Suppress, BareCommentSuppressesEveryRule) {
  SuppressionIndex idx;
  idx.add_source("a.dts", "// llhsc-disable-next-line\nclocks = <&clk>;\n");
  Findings fs = {make("graph-cells-arity", "/u", "a.dts", 2),
                 make("graph-provider-cycle", "/u", "a.dts", 2)};
  EXPECT_EQ(idx.apply(fs), 2u);
  EXPECT_TRUE(fs.empty());
}

TEST(Suppress, IdListsSplitOnCommasAndWhitespace) {
  SuppressionIndex idx;
  idx.add_source("a.dts",
                 "// llhsc-disable-next-line graph-cells-arity, "
                 "graph-orphan-provider graph-provider-cycle\nx;\n");
  Findings fs = {make("graph-cells-arity", "/u", "a.dts", 2),
                 make("graph-orphan-provider", "/u", "a.dts", 2),
                 make("graph-provider-cycle", "/u", "a.dts", 2),
                 make("graph-status-propagation", "/u", "a.dts", 2)};
  EXPECT_EQ(idx.apply(fs), 3u);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "graph-status-propagation");
}

TEST(Suppress, CommentMayTrailCode) {
  SuppressionIndex idx;
  idx.add_source(
      "a.dts",
      "reg = <1>;  // llhsc-disable-next-line graph-cells-arity\nx;\n");
  Findings fs = {make("graph-cells-arity", "/u", "a.dts", 2)};
  EXPECT_EQ(idx.apply(fs), 1u);
}

TEST(Suppress, MarkerOutsideACommentIsInert) {
  SuppressionIndex idx;
  idx.add_source("a.dts",
                 "name = \"llhsc-disable-next-line graph-cells-arity\";\nx;\n");
  Findings fs = {make("graph-cells-arity", "/u", "a.dts", 2)};
  EXPECT_EQ(idx.apply(fs), 0u);
}

TEST(Suppress, CommentsAreScopedToTheirFile) {
  SuppressionIndex idx;
  idx.add_source("a.dts", "// llhsc-disable-next-line\nx;\n");
  Findings fs = {make("graph-cells-arity", "/u", "b.dts", 2)};
  EXPECT_EQ(idx.apply(fs), 0u);
}

TEST(Suppress, InvalidLocationNeverMatchesAComment) {
  SuppressionIndex idx;
  idx.add_source("a.dts", "// llhsc-disable-next-line\nx;\n");
  Finding synthetic = make("graph-cells-arity", "/u");
  synthetic.location = {};  // programmatic tree: no source position
  Findings fs = {synthetic};
  EXPECT_EQ(idx.apply(fs), 0u);
}

TEST(Suppress, BaselineMatchesRulePlusSubjectAnywhere) {
  SuppressionIndex idx;
  std::string error;
  ASSERT_TRUE(idx.load_baseline(
      R"({"version": 1, "findings": [
            {"rule": "graph-cells-arity", "subject": "/uart@2000"}]})",
      error))
      << error;
  // Line churn must not invalidate a baseline entry: different locations,
  // same (rule, subject), all suppressed.
  Findings fs = {make("graph-cells-arity", "/uart@2000", "a.dts", 3),
                 make("graph-cells-arity", "/uart@2000", "b.dts", 99),
                 make("graph-cells-arity", "/spi@3000", "a.dts", 3)};
  EXPECT_EQ(idx.apply(fs), 2u);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].subject, "/spi@3000");
}

TEST(Suppress, BaselineErrorsAreReported) {
  std::string error;
  SuppressionIndex idx;
  EXPECT_FALSE(idx.load_baseline("not json", error));
  EXPECT_EQ(error, "baseline is not a JSON object");
  EXPECT_FALSE(idx.load_baseline("[]", error));
  EXPECT_EQ(error, "baseline is not a JSON object");
  EXPECT_FALSE(idx.load_baseline(R"({"version": 1})", error));
  EXPECT_EQ(error, "baseline has no \"findings\" array");
  EXPECT_FALSE(idx.load_baseline(R"({"version": 1, "findings": [{}]})", error));
  EXPECT_EQ(error, "baseline entry without a \"rule\" id");
}

TEST(Suppress, BaselineIgnoresUnknownFields) {
  std::string error;
  SuppressionIndex idx;
  ASSERT_TRUE(idx.load_baseline(
      R"({"version": 2, "tool": "llhsc", "findings": [
            {"rule": "r", "subject": "/s", "note": "kept for humans"}]})",
      error))
      << error;
  Findings fs = {make("r", "/s")};
  EXPECT_EQ(idx.apply(fs), 1u);
}

TEST(Suppress, ToBaselineRoundTripsAndDeduplicates) {
  Findings fs = {make("graph-cells-arity", "/uart@2000", "a.dts", 3),
                 make("graph-cells-arity", "/uart@2000", "b.dts", 7),
                 make("graph-orphan-provider", "/clk@1000", "a.dts", 1)};
  std::string doc = SuppressionIndex::to_baseline(fs);

  SuppressionIndex idx;
  std::string error;
  ASSERT_TRUE(idx.load_baseline(doc, error)) << error << "\n" << doc;
  Findings again = fs;
  EXPECT_EQ(idx.apply(again), fs.size());
  EXPECT_TRUE(again.empty());

  // Deduplicated: the two /uart@2000 findings collapse to one entry.
  EXPECT_EQ(doc.find("\"/uart@2000\""), doc.rfind("\"/uart@2000\""));
}

TEST(Suppress, InlineAndBaselineLayersCompose) {
  SuppressionIndex idx;
  idx.add_source("a.dts", "// llhsc-disable-next-line graph-cells-arity\nx;\n");
  std::string error;
  ASSERT_TRUE(idx.load_baseline(
      R"({"version": 1, "findings": [
            {"rule": "graph-orphan-provider", "subject": "/clk@1000"}]})",
      error));
  Findings fs = {make("graph-cells-arity", "/u", "a.dts", 2),
                 make("graph-orphan-provider", "/clk@1000", "b.dts", 40),
                 make("graph-provider-cycle", "/u", "a.dts", 5)};
  EXPECT_EQ(idx.apply(fs), 2u);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "graph-provider-cycle");
}

}  // namespace
}  // namespace llhsc::checkers

// Cross-reference engine tests: one minimal negative DTS per rule id,
// asserting rule id + severity + source location, plus registry behaviour
// (per-rule disable and severity override) and context facts.
#include "checkers/crossref/rules.hpp"

#include <gtest/gtest.h>

#include <set>

#include "checkers/crossref/context.hpp"
#include "dts/parser.hpp"

namespace llhsc::checkers::crossref {
namespace {

std::unique_ptr<dts::Tree> parse_ok(std::string_view src) {
  support::DiagnosticEngine de;
  auto t = dts::parse_dts(src, "t.dts", de);
  EXPECT_FALSE(de.has_errors()) << de.render();
  return t;
}

Findings run(const dts::Tree& tree, CrossRefOptions options = {}) {
  return CrossRefChecker(std::move(options)).check(tree);
}

/// The single finding carrying `rule`, failing the test when absent or
/// ambiguous is not required — first match wins.
const Finding* find_by_rule(const Findings& fs, std::string_view rule) {
  for (const Finding& f : fs) {
    if (f.rule_id() == rule) return &f;
  }
  return nullptr;
}

void expect_rule(const Findings& fs, std::string_view rule,
                 FindingSeverity severity) {
  const Finding* f = find_by_rule(fs, rule);
  ASSERT_NE(f, nullptr) << "missing rule " << rule << "\n" << render(fs);
  EXPECT_EQ(f->severity, severity) << f->render();
  EXPECT_TRUE(f->location.valid()) << f->render();
  EXPECT_EQ(f->location.file, "t.dts") << f->render();
  EXPECT_GT(f->location.line, 0u) << f->render();
}

TEST(CrossRef, CleanTreeHasNoFindings) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    intc: interrupt-controller@1000 {
        reg = <0x1000 0x100>;
        interrupt-controller;
        #interrupt-cells = <2>;
    };
    clk: clock-controller@2000 {
        reg = <0x2000 0x100>;
        #clock-cells = <1>;
    };
    uart@3000 {
        reg = <0x3000 0x100>;
        interrupt-parent = <&intc>;
        interrupts = <5 4>;
        clocks = <&clk 0>;
    };
};
)");
  Findings f = run(*tree);
  EXPECT_TRUE(f.empty()) << render(f);
}

TEST(CrossRef, DanglingPhandleInArgsList) {
  auto tree = parse_ok(R"(
/ { uart@3000 { clocks = <0x77 0>; }; };
)");
  Findings f = run(*tree);
  expect_rule(f, "phandle-dangling", FindingSeverity::kError);
  EXPECT_EQ(find_by_rule(f, "phandle-dangling")->subject, "/uart@3000");
}

TEST(CrossRef, DuplicateExplicitPhandle) {
  // Duplicate phandles are a parse-time error when references resolve; the
  // rule must still catch trees built or merged programmatically.
  dts::Tree tree;
  auto a = std::make_unique<dts::Node>("a");
  a->set_property(dts::Property::cells("phandle", {7}));
  a->set_location({"t.dts", 2, 1});
  auto b = std::make_unique<dts::Node>("b");
  b->set_property(dts::Property::cells("phandle", {7}));
  b->set_location({"t.dts", 3, 1});
  tree.root().add_child(std::move(a));
  tree.root().add_child(std::move(b));
  Findings f = run(tree);
  const Finding* dup = find_by_rule(f, "phandle-duplicate");
  ASSERT_NE(dup, nullptr) << render(f);
  EXPECT_EQ(dup->severity, FindingSeverity::kError);
  EXPECT_EQ(dup->subject, "/b");
  EXPECT_EQ(dup->other_subject, "/a");
  EXPECT_TRUE(dup->location.valid());
}

TEST(CrossRef, DanglingInterruptParent) {
  auto tree = parse_ok(R"(
/ { uart@3000 { interrupt-parent = <0xdead>; interrupts = <5>; }; };
)");
  Findings f = run(*tree);
  expect_rule(f, "interrupt-parent-dangling", FindingSeverity::kError);
}

TEST(CrossRef, InterruptCellsArity) {
  auto tree = parse_ok(R"(
/ {
    intc: pic {
        interrupt-controller;
        #interrupt-cells = <3>;
    };
    uart@3000 { interrupt-parent = <&intc>; interrupts = <1 2>; };
};
)");
  Findings f = run(*tree);
  expect_rule(f, "interrupt-cells-arity", FindingSeverity::kError);
  EXPECT_EQ(find_by_rule(f, "interrupt-cells-arity")->other_subject, "/pic");
}

TEST(CrossRef, InterruptProviderMissingCells) {
  auto tree = parse_ok(R"(
/ {
    intc: pic { interrupt-controller; };
    uart@3000 { interrupt-parent = <&intc>; interrupts = <5>; };
};
)");
  Findings f = run(*tree);
  expect_rule(f, "interrupt-provider-missing-cells", FindingSeverity::kError);
}

TEST(CrossRef, ImplicitInterruptParentViaAncestor) {
  // Without interrupt-parent, the nearest ancestor interrupt-controller
  // types the specifier (DT spec implicit parent).
  auto tree = parse_ok(R"(
/ {
    pic {
        interrupt-controller;
        #interrupt-cells = <2>;
        child { interrupts = <1 2 3>; };
    };
};
)");
  Findings f = run(*tree);
  expect_rule(f, "interrupt-cells-arity", FindingSeverity::kError);
}

TEST(CrossRef, PhandleArgsArity) {
  auto tree = parse_ok(R"(
/ {
    clk: clock-controller { #clock-cells = <2>; };
    uart@3000 { clocks = <&clk 1>; };
};
)");
  Findings f = run(*tree);
  expect_rule(f, "phandle-args-arity", FindingSeverity::kError);
}

TEST(CrossRef, PhandleArgsMultipleEntriesAndSuffixMatch) {
  auto tree = parse_ok(R"(
/ {
    gpio: gpio-controller { #gpio-cells = <2>; };
    spi@4000 {
        cs-gpios = <&gpio 1 0>, <&gpio 2>;
    };
};
)");
  Findings f = run(*tree);
  const Finding* arity = find_by_rule(f, "phandle-args-arity");
  ASSERT_NE(arity, nullptr) << render(f);
  EXPECT_NE(arity->message.find("entry 1"), std::string::npos)
      << arity->message;
}

TEST(CrossRef, ProviderMissingCells) {
  auto tree = parse_ok(R"(
/ {
    notclk: widget { };
    uart@3000 { clocks = <&notclk 0>; };
};
)");
  Findings f = run(*tree);
  expect_rule(f, "provider-missing-cells", FindingSeverity::kError);
}

TEST(CrossRef, InterruptTreeCycle) {
  auto tree = parse_ok(R"(
/ {
    a: pic-a {
        interrupt-controller;
        #interrupt-cells = <1>;
        interrupt-parent = <&b>;
    };
    b: pic-b {
        interrupt-controller;
        #interrupt-cells = <1>;
        interrupt-parent = <&a>;
    };
};
)");
  Findings f = run(*tree);
  expect_rule(f, "interrupt-tree-cycle", FindingSeverity::kError);
}

TEST(CrossRef, SelfInterruptParentTerminatesTree) {
  // A controller whose interrupt parent is itself is the root of the
  // interrupt tree (of_irq_find_parent semantics), not a cycle.
  auto tree = parse_ok(R"(
/ {
    interrupt-parent = <&gic>;
    gic: interrupt-controller@1000 {
        interrupt-controller;
        #interrupt-cells = <2>;
    };
    uart@3000 { interrupts = <5 4>; };
};
)");
  Findings f = run(*tree);
  EXPECT_EQ(find_by_rule(f, "interrupt-tree-cycle"), nullptr) << render(f);
}

TEST(CrossRef, RangesCoverage) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    bus@10000000 {
        #address-cells = <1>;
        #size-cells = <1>;
        reg = <0x10000000 0x10000>;
        ranges = <0x0 0x10000000 0x1000>;
        dev@2000 { reg = <0x2000 0x100>; };
    };
};
)");
  Findings f = run(*tree);
  expect_rule(f, "ranges-coverage", FindingSeverity::kWarning);
}

TEST(CrossRef, ProviderOrphan) {
  auto tree = parse_ok(R"(
/ {
    clk: clock-controller { #clock-cells = <0>; };
};
)");
  Findings f = run(*tree);
  expect_rule(f, "provider-orphan", FindingSeverity::kWarning);
}

TEST(CrossRef, DisableRuleSuppressesFinding) {
  auto tree = parse_ok(R"(
/ { uart@3000 { interrupt-parent = <0xdead>; interrupts = <5>; }; };
)");
  CrossRefOptions opts;
  opts.disabled.insert("interrupt-parent-dangling");
  Findings f = run(*tree, opts);
  EXPECT_EQ(find_by_rule(f, "interrupt-parent-dangling"), nullptr)
      << render(f);
}

TEST(CrossRef, SeverityOverride) {
  auto tree = parse_ok(R"(
/ { uart@3000 { interrupt-parent = <0xdead>; interrupts = <5>; }; };
)");
  CrossRefOptions opts;
  opts.severity_overrides["interrupt-parent-dangling"] =
      FindingSeverity::kWarning;
  Findings f = run(*tree, opts);
  const Finding* found = find_by_rule(f, "interrupt-parent-dangling");
  ASSERT_NE(found, nullptr) << render(f);
  EXPECT_EQ(found->severity, FindingSeverity::kWarning);
}

TEST(CrossRef, CatalogIdsAreUniqueAndResolvable) {
  std::set<std::string_view> seen;
  for (const RuleInfo& r : rule_catalog()) {
    EXPECT_TRUE(seen.insert(r.id).second) << "duplicate id " << r.id;
    EXPECT_EQ(find_rule(r.id), &r);
    EXPECT_FALSE(r.summary.empty());
  }
  EXPECT_EQ(find_rule("no-such-rule"), nullptr);
}

TEST(AnalysisContext, IndexesAndTranslation) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    clk: clock-controller@2000 { reg = <0x2000 0x100>; #clock-cells = <0>; };
    consumer { clocks = <&clk>; };
    bus@40000000 {
        #address-cells = <1>;
        #size-cells = <1>;
        reg = <0x40000000 0x10000>;
        ranges = <0x0 0x40000000 0x10000>;
        dev@2000 { reg = <0x2000 0x100>; };
    };
};
)");
  AnalysisContext ctx(*tree);
  const dts::Node* clk = ctx.node_for_label("clk");
  ASSERT_NE(clk, nullptr);
  EXPECT_EQ(ctx.path_of(*clk), "/clock-controller@2000");
  // resolve_references assigned clk a phandle; the index must agree.
  auto ph = clk->find_property("phandle")->as_u32();
  ASSERT_TRUE(ph.has_value());
  EXPECT_EQ(ctx.node_for_phandle(*ph), clk);
  EXPECT_EQ(ctx.node_for_phandle(0xdead), nullptr);

  const dts::Node* dev = ctx.node_at("/bus@40000000/dev@2000");
  ASSERT_NE(dev, nullptr);
  EXPECT_EQ(ctx.reg_cells(*dev), (std::pair<uint32_t, uint32_t>{1, 1}));
  EXPECT_EQ(ctx.translate(*dev, 0x2000, 0x100),
            std::optional<uint64_t>(0x40002000));
  EXPECT_EQ(ctx.translate(*dev, 0x20000, 0x100), std::nullopt);
  EXPECT_EQ(ctx.parent_of(*dev), ctx.node_at("/bus@40000000"));
}

}  // namespace
}  // namespace llhsc::checkers::crossref

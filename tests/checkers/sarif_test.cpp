// SARIF 2.1.0 emitter tests: structural assertions plus a golden-file
// comparison (tests/checkers/data/crossref_golden.sarif) over a fixed DTS so
// format drift is caught byte-for-byte.
#include "checkers/report.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "checkers/crossref/rules.hpp"
#include "dts/parser.hpp"

namespace llhsc::checkers {
namespace {

// The acceptance example: a dangling interrupt-parent and a wrong-arity
// clocks entry.
constexpr std::string_view kBadDts = R"(/dts-v1/;
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    clk: clock-controller@1000 {
        reg = <0x1000 0x100>;
        #clock-cells = <1>;
    };
    uart@2000 {
        reg = <0x2000 0x100>;
        interrupt-parent = <0xdead>;
        interrupts = <5>;
        clocks = <&clk>;
    };
};
)";

Findings bad_findings() {
  support::DiagnosticEngine de;
  auto tree = dts::parse_dts(kBadDts, "t.dts", de);
  EXPECT_FALSE(de.has_errors()) << de.render();
  return crossref::CrossRefChecker().check(*tree);
}

TEST(Sarif, ContainsRuleIdsLevelsAndLocations) {
  std::string sarif = to_sarif(bad_findings(), "t.dts");
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"llhsc\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"interrupt-parent-dangling\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"phandle-args-arity\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"t.dts\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\""), std::string::npos);
}

TEST(Sarif, EmptyFindingsIsStillAValidRun) {
  std::string sarif = to_sarif({}, "clean.dts");
  EXPECT_NE(sarif.find("\"results\": []"), std::string::npos);
  EXPECT_NE(sarif.find("\"rules\": []"), std::string::npos);
}

TEST(Sarif, SynthesizedFindingFallsBackToArtifactUri) {
  Finding f;
  f.kind = FindingKind::kAddressOverlap;
  f.subject = "/a[0]";
  f.message = "overlap";
  std::string sarif = to_sarif({f}, "fallback.dts");
  EXPECT_NE(sarif.find("\"uri\": \"fallback.dts\""), std::string::npos);
  EXPECT_EQ(sarif.find("\"region\""), std::string::npos)
      << "no region without a valid location";
}

TEST(Sarif, MatchesGoldenFile) {
  std::string sarif = to_sarif(bad_findings(), "t.dts");
  std::ifstream in(std::string(LLHSC_TEST_DATA_DIR) +
                   "/crossref_golden.sarif");
  ASSERT_TRUE(in.good()) << "golden file missing";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(sarif, golden.str())
      << "SARIF output drifted from the golden file; if intentional, "
         "regenerate tests/checkers/data/crossref_golden.sarif";
}

}  // namespace
}  // namespace llhsc::checkers

// Resource-allocation checker — paper §IV-A / E2, E3.
#include "checkers/resource_allocation.hpp"

#include <gtest/gtest.h>

#include "core/running_example.hpp"

namespace llhsc::checkers {
namespace {

class RacTest : public ::testing::TestWithParam<smt::Backend> {
 protected:
  feature::FeatureModel model = feature::running_example_model();
  ResourceAllocationChecker make_checker() {
    return ResourceAllocationChecker(model, core::exclusive_cpus(model),
                                     GetParam());
  }
};

// E2 — Fig. 1b + Fig. 1c form a valid two-VM configuration.
TEST_P(RacTest, PaperAllocationPasses) {
  auto checker = make_checker();
  Findings f = checker.check({core::fig1b_features(), core::fig1c_features()});
  EXPECT_EQ(error_count(f), 0u) << render(f);
}

TEST_P(RacTest, SameCpuInBothVmsFlagged) {
  auto checker = make_checker();
  Findings f = checker.check({core::fig1b_features(), core::fig1b_features()});
  ASSERT_TRUE(contains(f, FindingKind::kExclusivityViolation)) << render(f);
  for (const Finding& finding : f) {
    if (finding.kind == FindingKind::kExclusivityViolation) {
      EXPECT_EQ(finding.subject, "cpu@0");
    }
  }
}

TEST_P(RacTest, InvalidProductFlagged) {
  auto checker = make_checker();
  // veth0 without its required cpu@0 (cross-constraint violation).
  std::set<std::string> bad{"CustomSBC", "memory", "cpus",      "cpu@1",
                            "uarts",     "uart@20000000", "vEthernet", "veth0"};
  Findings f = checker.check({bad});
  EXPECT_TRUE(contains(f, FindingKind::kInvalidVmProduct)) << render(f);
}

TEST_P(RacTest, BothCpusInOneVmFlagged) {
  auto checker = make_checker();
  std::set<std::string> bad{"CustomSBC", "memory", "cpus",
                            "cpu@0",     "cpu@1",  "uarts",
                            "uart@20000000"};
  Findings f = checker.check({bad});
  EXPECT_TRUE(contains(f, FindingKind::kInvalidVmProduct))
      << "cpus is an XOR group: " << render(f);
}

TEST_P(RacTest, MissingMandatoryFeatureFlagged) {
  auto checker = make_checker();
  std::set<std::string> bad{"CustomSBC", "cpus", "cpu@0", "uarts",
                            "uart@20000000"};  // no memory
  Findings f = checker.check({bad});
  EXPECT_TRUE(contains(f, FindingKind::kInvalidVmProduct)) << render(f);
}

TEST_P(RacTest, UnknownFeatureNameFlagged) {
  auto checker = make_checker();
  Findings f = checker.check({{"CustomSBC", "warp-drive"}});
  ASSERT_TRUE(contains(f, FindingKind::kInvalidVmProduct));
  EXPECT_NE(f[0].message.find("warp-drive"), std::string::npos);
}

// E3 — three VMs cannot each get an exclusive CPU from a pool of two.
TEST_P(RacTest, ThreeVmsOverTwoCpusFlagged) {
  auto checker = make_checker();
  std::set<std::string> vm_a = core::fig1b_features();
  std::set<std::string> vm_b = core::fig1c_features();
  // Third VM reuses cpu@0.
  std::set<std::string> vm_c{"CustomSBC", "memory", "cpus", "cpu@0",
                             "uarts",     "uart@30000000"};
  Findings f = checker.check({vm_a, vm_b, vm_c});
  EXPECT_TRUE(contains(f, FindingKind::kExclusivityViolation)) << render(f);
}

TEST_P(RacTest, SharedUartsAreFine) {
  auto checker = make_checker();
  std::set<std::string> vm_a{"CustomSBC", "memory", "cpus", "cpu@0",
                             "uarts",     "uart@20000000"};
  std::set<std::string> vm_b{"CustomSBC", "memory", "cpus", "cpu@1",
                             "uarts",     "uart@20000000"};
  Findings f = checker.check({vm_a, vm_b});
  EXPECT_EQ(error_count(f), 0u) << render(f);
}

TEST_P(RacTest, PlatformUnionHelper) {
  feature::Selection a(4, false), b(4, false);
  a[0] = a[1] = true;
  b[0] = b[3] = true;
  auto u = ResourceAllocationChecker::platform_union({a, b});
  EXPECT_EQ(u, (feature::Selection{true, true, false, true}));
}

INSTANTIATE_TEST_SUITE_P(Backends, RacTest,
                         ::testing::ValuesIn(smt::all_backends()),
                         [](const ::testing::TestParamInfo<smt::Backend>& info) {
                           return std::string(smt::to_string(info.param));
                         });

}  // namespace
}  // namespace llhsc::checkers

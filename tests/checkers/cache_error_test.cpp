// An unusable --cache-dir must be loud: the QueryCache records why it
// disabled itself, the planner counts it, and the semantic checker surfaces
// exactly one cache-unavailable warning — never a silent cold run.
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "checkers/semantic.hpp"
#include "dts/parser.hpp"
#include "smt/query_cache.hpp"

namespace llhsc {
namespace {

std::string make_temp_dir() {
  char tmpl[] = "/tmp/llhsc_cache_test_XXXXXX";
  return ::mkdtemp(tmpl);
}

std::unique_ptr<dts::Tree> small_tree() {
  constexpr const char* kDts = R"(/dts-v1/;
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    memory@40000000 { device_type = "memory"; reg = <0x40000000 0x1000000>; };
    uart@20000000 { compatible = "ns16550a"; reg = <0x20000000 0x1000>; };
};
)";
  support::DiagnosticEngine diags;
  dts::SourceManager sources;
  auto tree = dts::parse_dts(kDts, "t.dts", sources, diags);
  EXPECT_NE(tree, nullptr) << diags.render();
  return tree;
}

size_t count_kind(const checkers::Findings& findings,
                  checkers::FindingKind kind) {
  size_t n = 0;
  for (const auto& f : findings) {
    if (f.kind == kind) ++n;
  }
  return n;
}

TEST(QueryCacheError, FileAsCacheDirDisablesWithReason) {
  const std::string dir = make_temp_dir();
  const std::string file_path = dir + "/plain-file";
  std::ofstream(file_path) << "not a directory";

  smt::QueryCache cache(file_path, smt::Backend::kBuiltin);
  EXPECT_FALSE(cache.enabled());
  EXPECT_NE(cache.error().find("not a directory"), std::string::npos)
      << cache.error();

  std::remove(file_path.c_str());
  ::rmdir(dir.c_str());
}

TEST(QueryCacheError, UsableDirReportsNoError) {
  const std::string dir = make_temp_dir();
  smt::QueryCache cache(dir, smt::Backend::kBuiltin);
  EXPECT_TRUE(cache.enabled());
  EXPECT_TRUE(cache.error().empty()) << cache.error();
  // Cleanup: best effort; the versioned subdir holds no entries yet.
  ::rmdir(cache.directory().c_str());
  ::rmdir(dir.c_str());
}

TEST(QueryCacheError, SemanticCheckerEmitsOneWarningFinding) {
  const std::string dir = make_temp_dir();
  const std::string file_path = dir + "/plain-file";
  std::ofstream(file_path) << "not a directory";

  auto tree = small_tree();
  checkers::SemanticOptions options;
  options.cache_dir = file_path;
  checkers::SemanticChecker checker(smt::Backend::kBuiltin, options);

  checkers::Findings first = checker.check(*tree);
  ASSERT_EQ(count_kind(first, checkers::FindingKind::kCacheUnavailable), 1u);
  for (const auto& f : first) {
    if (f.kind != checkers::FindingKind::kCacheUnavailable) continue;
    EXPECT_EQ(f.severity, checkers::FindingSeverity::kWarning);
    EXPECT_EQ(f.subject, file_path);
    EXPECT_NE(f.message.find("query cache disabled"), std::string::npos);
  }
  EXPECT_EQ(checker.plan_stats().cache_errors, 1u);

  // The warning is once per checker lifetime, not once per check() call —
  // the pipeline reuses one checker per unit and must not spam.
  checkers::Findings second = checker.check(*tree);
  EXPECT_EQ(count_kind(second, checkers::FindingKind::kCacheUnavailable), 0u);

  std::remove(file_path.c_str());
  ::rmdir(dir.c_str());
}

TEST(QueryCacheError, NoCacheDirNoFinding) {
  auto tree = small_tree();
  checkers::SemanticChecker checker(smt::Backend::kBuiltin);
  checkers::Findings findings = checker.check(*tree);
  EXPECT_EQ(count_kind(findings, checkers::FindingKind::kCacheUnavailable),
            0u);
  EXPECT_EQ(checker.plan_stats().cache_errors, 0u);
}

}  // namespace
}  // namespace llhsc

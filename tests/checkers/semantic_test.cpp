// Semantic checker tests — paper §IV-C / E4. The headline scenario: a UART
// whose base address clashes with a memory bank is invisible to syntactic
// checking but caught here, with a solver-produced witness address.
#include "checkers/semantic.hpp"

#include <gtest/gtest.h>

#include <random>

#include "checkers/interval_baseline.hpp"
#include "dts/parser.hpp"

namespace llhsc::checkers {
namespace {

std::unique_ptr<dts::Tree> parse_ok(std::string_view src) {
  support::DiagnosticEngine de;
  auto t = dts::parse_dts(src, "t.dts", de);
  EXPECT_FALSE(de.has_errors()) << de.render();
  return t;
}

TEST(RegionExtraction, RunningExampleRegions) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <2>;
    #size-cells = <2>;
    memory@40000000 {
        device_type = "memory";
        reg = <0x0 0x40000000 0x0 0x20000000 0x0 0x60000000 0x0 0x20000000>;
    };
    uart@20000000 { compatible = "ns16550a"; reg = <0x0 0x20000000 0x0 0x1000>; };
};
)");
  Findings f;
  auto regions = extract_regions(*tree, f);
  ASSERT_EQ(regions.size(), 3u);
  EXPECT_EQ(regions[0].base, 0x40000000u);
  EXPECT_EQ(regions[0].size, 0x20000000u);
  EXPECT_TRUE(regions[0].is_memory());
  EXPECT_EQ(regions[1].base, 0x60000000u);
  EXPECT_EQ(regions[1].entry_index, 1u);
  EXPECT_EQ(regions[2].base, 0x20000000u);
  EXPECT_EQ(regions[2].size, 0x1000u);
  EXPECT_EQ(regions[2].region_class, RegionClass::kDevice);
  EXPECT_TRUE(f.empty());
}

TEST(RegionExtraction, SixtyFourBitAddressesCombine) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <2>;
    #size-cells = <2>;
    memory@0 { device_type = "memory"; reg = <0x1 0x80000000 0x0 0x10000>; };
};
)");
  Findings f;
  auto regions = extract_regions(*tree, f);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].base, 0x180000000ull);
  EXPECT_EQ(regions[0].size, 0x10000u);
}

TEST(RegionExtraction, CpuRegIsNotARegion) {
  auto tree = parse_ok(R"(
/ {
    cpus {
        #address-cells = <1>;
        #size-cells = <0>;
        cpu@0 { reg = <0>; };
    };
};
)");
  Findings f;
  EXPECT_TRUE(extract_regions(*tree, f).empty())
      << "#size-cells = 0 means reg is an id, not an address range";
}

TEST(RegionExtraction, TruncationReinterpretsEntries) {
  // The §IV-C scenario: root switched to 1/1 cells, memory reg still has 8
  // cells -> FOUR 32-bit banks instead of two 64-bit ones.
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    memory@40000000 {
        device_type = "memory";
        reg = <0x0 0x40000000 0x0 0x20000000 0x0 0x60000000 0x0 0x20000000>;
    };
};
)");
  Findings f;
  auto regions = extract_regions(*tree, f);
  ASSERT_EQ(regions.size(), 4u) << "four banks of memory, not the original two";
  EXPECT_EQ(regions[0].base, 0x0u);
  EXPECT_EQ(regions[2].base, 0x0u);
}

TEST(RegionExtraction, RangesTranslation) {
  // A bus mapping child [0x0, 0x10000) to CPU 0x10000000.
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    bus@10000000 {
        #address-cells = <1>;
        #size-cells = <1>;
        reg = <0x10000000 0x10000>;
        ranges = <0x0 0x10000000 0x10000>;
        dev@100 { reg = <0x100 0x10>; };
    };
};
)");
  Findings f;
  auto regions = extract_regions(*tree, f);
  EXPECT_TRUE(f.empty()) << render(f);
  ASSERT_EQ(regions.size(), 2u);
  // The bus's own reg is in the root space.
  EXPECT_EQ(regions[0].base, 0x10000000u);
  // The device translates through the bus's ranges.
  EXPECT_EQ(regions[1].base, 0x10000100u);
  EXPECT_EQ(regions[1].local_base, 0x100u);
}

TEST(RegionExtraction, NestedRangesCompose) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    outer {
        #address-cells = <1>;
        #size-cells = <1>;
        ranges = <0x0 0x40000000 0x100000>;
        inner {
            #address-cells = <1>;
            #size-cells = <1>;
            ranges = <0x0 0x1000 0x1000>;
            dev@20 { reg = <0x20 0x10>; };
        };
    };
};
)");
  Findings f;
  auto regions = extract_regions(*tree, f);
  ASSERT_EQ(regions.size(), 1u);
  // 0x20 -> inner: 0x1020 -> outer: 0x40001020.
  EXPECT_EQ(regions[0].base, 0x40001020u);
}

TEST(RegionExtraction, BooleanRangesIsIdentity) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    soc {
        #address-cells = <1>;
        #size-cells = <1>;
        ranges;
        dev@5000 { reg = <0x5000 0x100>; };
    };
};
)");
  Findings f;
  auto regions = extract_regions(*tree, f);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].base, 0x5000u);
}

TEST(RegionExtraction, OutOfRangesRegIsFlagged) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    bus {
        #address-cells = <1>;
        #size-cells = <1>;
        ranges = <0x0 0x10000000 0x1000>;
        dev@2000 { reg = <0x2000 0x10>; };
    };
};
)");
  Findings f;
  auto regions = extract_regions(*tree, f);
  EXPECT_TRUE(regions.empty());
  ASSERT_TRUE(contains(f, FindingKind::kRangesViolation)) << render(f);
}

TEST(RegionExtraction, TranslatedOverlapDetected) {
  // Two buses map different local addresses onto the SAME cpu window: the
  // clash is only visible after translation.
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    busa {
        #address-cells = <1>;
        #size-cells = <1>;
        ranges = <0x0 0x20000000 0x10000>;
        deva@0 { reg = <0x0 0x100>; };
    };
    busb {
        #address-cells = <1>;
        #size-cells = <1>;
        ranges = <0x8000 0x20000000 0x10000>;
        devb@8000 { reg = <0x8000 0x100>; };
    };
};
)");
  SemanticChecker checker;
  Findings f = checker.check(*tree);
  EXPECT_TRUE(contains(f, FindingKind::kAddressOverlap))
      << "0x0 via busa and 0x8000 via busb both land at 0x20000000: "
      << render(f);
}

class SemanticTest : public ::testing::TestWithParam<smt::Backend> {
 protected:
  Findings check(const dts::Tree& tree) {
    SemanticChecker checker(GetParam());
    return checker.check(tree);
  }
};

// E4 — the paper's §I-A clash: uart base = second memory bank base.
TEST_P(SemanticTest, UartMemoryClashDetected) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <2>;
    #size-cells = <2>;
    memory@40000000 {
        device_type = "memory";
        reg = <0x0 0x40000000 0x0 0x20000000 0x0 0x60000000 0x0 0x20000000>;
    };
    uart@60000000 { compatible = "ns16550a"; reg = <0x0 0x60000000 0x0 0x1000>; };
};
)");
  Findings f = check(*tree);
  ASSERT_TRUE(contains(f, FindingKind::kAddressOverlap)) << render(f);
  for (const Finding& finding : f) {
    if (finding.kind == FindingKind::kAddressOverlap) {
      // The witness must lie inside both ranges.
      EXPECT_GE(finding.witness, 0x60000000u);
      EXPECT_LT(finding.witness, 0x60001000u);
    }
  }
}

TEST_P(SemanticTest, DisjointLayoutPasses) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <2>;
    #size-cells = <2>;
    memory@40000000 {
        device_type = "memory";
        reg = <0x0 0x40000000 0x0 0x20000000 0x0 0x60000000 0x0 0x20000000>;
    };
    uart@20000000 { compatible = "ns16550a"; reg = <0x0 0x20000000 0x0 0x1000>; };
    uart@30000000 { compatible = "ns16550a"; reg = <0x0 0x30000000 0x0 0x1000>; };
};
)");
  Findings f = check(*tree);
  EXPECT_EQ(error_count(f), 0u) << render(f);
}

// E5 — omitted d4: four truncated banks collide at 0x0.
TEST_P(SemanticTest, TruncationCollisionAtZero) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    memory@40000000 {
        device_type = "memory";
        reg = <0x0 0x40000000 0x0 0x20000000 0x0 0x60000000 0x0 0x20000000>;
    };
};
)");
  Findings f = check(*tree);
  ASSERT_TRUE(contains(f, FindingKind::kAddressOverlap)) << render(f);
  bool witness_at_zero_range = false;
  for (const Finding& finding : f) {
    if (finding.kind == FindingKind::kAddressOverlap &&
        finding.base_a == 0 && finding.base_b == 0) {
      witness_at_zero_range = true;
      EXPECT_LT(finding.witness, 0x20000000u)
          << "witness must sit in the shared prefix of the zero-based banks";
    }
  }
  EXPECT_TRUE(witness_at_zero_range)
      << "the paper reports an actual collision on address 0x0: " << render(f);
}

TEST_P(SemanticTest, AdjacentRegionsDoNotOverlap) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    memory@40000000 {
        device_type = "memory";
        reg = <0x40000000 0x20000000 0x60000000 0x20000000>;
    };
};
)");
  Findings f = check(*tree);
  EXPECT_EQ(error_count(f), 0u)
      << "[0x40000000,0x60000000) and [0x60000000,0x80000000) touch but do "
         "not overlap: "
      << render(f);
}

TEST_P(SemanticTest, OneByteOverlapDetected) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    a@1000 { reg = <0x1000 0x101>; };
    b@1100 { reg = <0x1100 0x100>; };
};
)");
  Findings f = check(*tree);
  ASSERT_TRUE(contains(f, FindingKind::kAddressOverlap)) << render(f);
  for (const Finding& finding : f) {
    if (finding.kind == FindingKind::kAddressOverlap) {
      EXPECT_EQ(finding.witness, 0x1100u) << "only one address is shared";
    }
  }
}

TEST_P(SemanticTest, IpcInsideMemoryIsAllowed) {
  // Bao carves IPC shared memory out of RAM (Listing 6: ipc at 0x70000000
  // inside the 0x60000000+0x20000000 bank).
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    memory@40000000 {
        device_type = "memory";
        reg = <0x40000000 0x20000000 0x60000000 0x20000000>;
    };
    vEthernet {
        veth1@70000000 { compatible = "veth"; reg = <0x70000000 0x10000000>; id = <1>; };
    };
};
)");
  Findings f = check(*tree);
  EXPECT_EQ(error_count(f), 0u) << render(f);
}

TEST_P(SemanticTest, IpcVsIpcOverlapIsError) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    vEthernet {
        veth0@70000000 { compatible = "veth"; reg = <0x70000000 0x10000000>; id = <0>; };
        veth1@78000000 { compatible = "veth"; reg = <0x78000000 0x10000000>; id = <1>; };
    };
};
)");
  Findings f = check(*tree);
  EXPECT_TRUE(contains(f, FindingKind::kAddressOverlap)) << render(f);
}

TEST_P(SemanticTest, IpcVsDeviceOverlapIsError) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    uart@70000000 { compatible = "ns16550a"; reg = <0x70000000 0x1000>; };
    vEthernet {
        veth0@70000000 { compatible = "veth"; reg = <0x70000000 0x10000000>; id = <0>; };
    };
};
)");
  Findings f = check(*tree);
  EXPECT_TRUE(contains(f, FindingKind::kAddressOverlap)) << render(f);
}

TEST_P(SemanticTest, SizeOverflowDetected) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <2>;
    #size-cells = <2>;
    bad@0 { reg = <0xffffffff 0xfffff000 0x0 0x2000>; };
};
)");
  Findings f = check(*tree);
  EXPECT_TRUE(contains(f, FindingKind::kSizeOverflow)) << render(f);
}

TEST_P(SemanticTest, ZeroSizeRegionWarns) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    dev@1000 { reg = <0x1000 0x0>; };
};
)");
  Findings f = check(*tree);
  EXPECT_TRUE(contains(f, FindingKind::kZeroSizeRegion));
  EXPECT_EQ(error_count(f), 0u);
}

TEST_P(SemanticTest, OversizedCellDetected) {
  dts::Tree tree;
  tree.root().set_property(dts::Property::cells("#address-cells", {1}));
  tree.root().set_property(dts::Property::cells("#size-cells", {1}));
  dts::Node& n = tree.root().get_or_create_child("dev@0");
  n.set_property(dts::Property::cells("reg", {0x100000000ull, 0x1000}));
  Findings f = check(tree);
  EXPECT_TRUE(contains(f, FindingKind::kRegWidthViolation)) << render(f);
}

TEST_P(SemanticTest, InterruptCollisionDetected) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    a@1000 { reg = <0x1000 0x10>; interrupts = <5>; };
    b@2000 { reg = <0x2000 0x10>; interrupts = <5>; };
    c@3000 { reg = <0x3000 0x10>; interrupts = <6>; };
};
)");
  Findings f = check(*tree);
  ASSERT_TRUE(contains(f, FindingKind::kInterruptCollision)) << render(f);
  int collisions = 0;
  for (const Finding& finding : f) {
    if (finding.kind == FindingKind::kInterruptCollision) ++collisions;
  }
  EXPECT_EQ(collisions, 1);
}

TEST_P(SemanticTest, DifferentInterruptParentsDoNotCollide) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    pic_a: pic@100 { reg = <0x100 0x10>; };
    pic_b: pic@200 { reg = <0x200 0x10>; };
    a@1000 { reg = <0x1000 0x10>; interrupt-parent = <&pic_a>; interrupts = <5>; };
    b@2000 { reg = <0x2000 0x10>; interrupt-parent = <&pic_b>; interrupts = <5>; };
};
)");
  Findings f = check(*tree);
  EXPECT_FALSE(contains(f, FindingKind::kInterruptCollision)) << render(f);
}

// compatible is a stringlist; the veth binding may be the fallback entry,
// not the first. Regression: classify() used as_string(), which only
// matches a single-string compatible.
TEST_P(SemanticTest, VethCompatibleAnywhereInStringlistIsIpc) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    memory@40000000 {
        device_type = "memory";
        reg = <0x40000000 0x20000000 0x60000000 0x20000000>;
    };
    vEthernet {
        shm@70000000 { compatible = "acme,veth-2", "veth"; reg = <0x70000000 0x10000000>; id = <1>; };
    };
};
)");
  Findings f = check(*tree);
  EXPECT_EQ(error_count(f), 0u)
      << "a multi-entry compatible containing \"veth\" is an IPC window and "
         "may overlap RAM: "
      << render(f);
}

// Regression: check_interrupts read only cells[0] of the first entry, so a
// collision on the second entry of a multi-entry interrupts went unseen.
TEST_P(SemanticTest, SecondInterruptEntryCollisionDetected) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    a@1000 { reg = <0x1000 0x10>; interrupts = <5 9>; };
    b@2000 { reg = <0x2000 0x10>; interrupts = <9>; };
};
)");
  Findings f = check(*tree);
  int collisions = 0;
  for (const Finding& finding : f) {
    if (finding.kind == FindingKind::kInterruptCollision) {
      ++collisions;
      EXPECT_EQ(finding.base_a, 9u) << finding.render();
    }
  }
  EXPECT_EQ(collisions, 1)
      << "a's second entry and b's first both claim line 9: " << render(f);
}

// Multi-cell specifiers: the parent's #interrupt-cells sets the tuple
// stride, and tuples compare whole — differing only in a trailing cell is
// not a collision (the old cells[0] comparison would have flagged it).
TEST_P(SemanticTest, StridedInterruptTuplesCompareWhole) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    gic: intc@8000000 { reg = <0x8000000 0x10000>; #interrupt-cells = <3>; };
    a@1000 { reg = <0x1000 0x10>; interrupt-parent = <&gic>; interrupts = <0 10 4>; };
    b@2000 { reg = <0x2000 0x10>; interrupt-parent = <&gic>; interrupts = <0 10 4>; };
    c@3000 { reg = <0x3000 0x10>; interrupt-parent = <&gic>; interrupts = <0 10 8>; };
};
)");
  Findings f = check(*tree);
  int collisions = 0;
  for (const Finding& finding : f) {
    if (finding.kind == FindingKind::kInterruptCollision) {
      ++collisions;
      EXPECT_EQ(finding.subject, "/b@2000") << finding.render();
      EXPECT_EQ(finding.other_subject, "/a@1000") << finding.render();
    }
  }
  EXPECT_EQ(collisions, 1) << render(f);
}

// interrupt-parent inherits from the nearest ancestor per the DT spec, so
// equal lines routed to different inherited parents do not collide.
TEST_P(SemanticTest, InheritedInterruptParentsResolvePerSubtree) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    pic_a: pic@100 { reg = <0x100 0x10>; #interrupt-cells = <1>; };
    pic_b: pic@200 { reg = <0x200 0x10>; #interrupt-cells = <1>; };
    soc_a {
        interrupt-parent = <&pic_a>;
        a@1000 { reg = <0x1000 0x10>; interrupts = <5>; };
    };
    soc_b {
        interrupt-parent = <&pic_b>;
        b@2000 { reg = <0x2000 0x10>; interrupts = <5>; };
        c@3000 { reg = <0x3000 0x10>; interrupts = <5>; };
    };
};
)");
  Findings f = check(*tree);
  int collisions = 0;
  for (const Finding& finding : f) {
    if (finding.kind == FindingKind::kInterruptCollision) {
      ++collisions;
      EXPECT_EQ(finding.subject, "/soc_b/c@3000") << finding.render();
    }
  }
  EXPECT_EQ(collisions, 1)
      << "only b and c share the inherited parent pic_b: " << render(f);
}

TEST_P(SemanticTest, FindingsCarryProvenance) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    a@1000 { reg = <0x1000 0x100>; };
    b@1080 { reg = <0x1080 0x100>; };
};
)");
  tree->find("/b@1080")->set_provenance("d7");
  Findings f = check(*tree);
  ASSERT_TRUE(contains(f, FindingKind::kAddressOverlap));
  for (const Finding& finding : f) {
    if (finding.kind == FindingKind::kAddressOverlap) {
      EXPECT_EQ(finding.delta, "d7") << "blame the delta that made the region";
    }
  }
}

// The §IV-C d3 scenario across buses: the overlapping regions live under
// parents with DIFFERENT #address-cells. The dma's reg was authored for the
// 2-cell world; its parent's truncation to 1/1 cells re-reads it as two
// 32-bit regions, the first of which floods [0x0, 0x50000000) and collides
// with the memory bank whose parent kept 2-cell addressing.
TEST_P(SemanticTest, TruncationAcrossBusesWithDifferentAddressCells) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <2>;
    #size-cells = <2>;
    memory@40000000 {
        device_type = "memory";
        reg = <0x0 0x40000000 0x0 0x20000000>;
    };
    soc {
        #address-cells = <1>;
        #size-cells = <1>;
        ranges;
        dma@5000000000 { reg = <0x0 0x50000000 0x0 0x1000>; };
    };
};
)");
  Findings f = check(*tree);
  bool memory_vs_dma = false;
  for (const Finding& finding : f) {
    if (finding.kind != FindingKind::kAddressOverlap) continue;
    memory_vs_dma =
        finding.subject.rfind("/memory@40000000", 0) == 0 &&
        finding.other_subject.rfind("/soc/dma@5000000000", 0) == 0;
    if (memory_vs_dma) {
      EXPECT_GE(finding.witness, 0x40000000u);
      EXPECT_LT(finding.witness, 0x50000000u);
      break;
    }
  }
  EXPECT_TRUE(memory_vs_dma)
      << "expected the truncated dma region to overlap the memory bank: "
      << render(f);
}

// Control for the test above: with the soc bus kept at 2-cell addressing the
// reg is one region at the device's true address 0x50'00000000, far above
// the end of memory, and nothing overlaps.
TEST_P(SemanticTest, NoTruncationNoOverlap) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <2>;
    #size-cells = <2>;
    memory@40000000 {
        device_type = "memory";
        reg = <0x0 0x40000000 0x0 0x20000000>;
    };
    soc {
        #address-cells = <2>;
        #size-cells = <2>;
        ranges;
        dma@5000000000 { reg = <0x50 0x00000000 0x0 0x1000>; };
    };
};
)");
  Findings f = check(*tree);
  EXPECT_FALSE(contains(f, FindingKind::kAddressOverlap)) << render(f);
}

// The d3 blame chain: the overlap introduced purely by re-interpretation
// must blame the delta that rewrote the governing cell widths.
TEST_P(SemanticTest, TruncationOverlapBlamesTheCellsDelta) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    memory@40000000 {
        device_type = "memory";
        reg = <0x0 0x40000000 0x0 0x20000000 0x0 0x60000000 0x0 0x20000000>;
    };
};
)");
  dts::Property cells = dts::Property::cells("#address-cells", {1});
  cells.provenance = "d3";
  tree->root().set_property(std::move(cells));
  Findings f = check(*tree);
  ASSERT_TRUE(contains(f, FindingKind::kAddressOverlap)) << render(f);
  for (const Finding& finding : f) {
    if (finding.kind == FindingKind::kAddressOverlap) {
      EXPECT_EQ(finding.delta, "d3") << finding.render();
    }
  }
}

// A solver budget that cannot cover the query load must surface as exactly
// one error-severity kSolverTimeout finding (remaining queries are skipped,
// not silently passed) — and the run terminates promptly instead of hanging.
// plan = false: under the planner these disjoint regions never reach the
// solver at all (see PlannedBudgetExhaustionStillReportsTimeout for the
// planned-path variant).
TEST(SemanticTimeout, ExhaustedBudgetReportsOneTimeoutFinding) {
  std::vector<MemRegion> regions;
  for (int i = 0; i < 48; ++i) {
    MemRegion r;
    r.path = "/r" + std::to_string(i);
    r.base = static_cast<uint64_t>(i) * 0x1000;
    r.size = 0x800;
    r.region_class = RegionClass::kDevice;
    regions.push_back(std::move(r));
  }
  SemanticOptions opts;
  opts.solver_timeout_ms = 1;
  opts.plan = false;
  SemanticChecker checker(smt::Backend::kBuiltin, opts);
  Findings f = checker.check_regions(regions);
  int timeouts = 0;
  for (const Finding& finding : f) {
    if (finding.kind == FindingKind::kSolverTimeout) {
      ++timeouts;
      EXPECT_EQ(finding.severity, FindingSeverity::kError);
    }
  }
  EXPECT_EQ(timeouts, 1) << render(f);
  EXPECT_GT(error_count(f), 0u);
}

// The planned path prunes structurally-disjoint queries, but queries that
// survive the prefilter still respect the budget: pile up enough genuinely
// overlapping pairs and the timeout finding fires exactly as before.
TEST(SemanticTimeout, PlannedBudgetExhaustionStillReportsTimeout) {
  std::vector<MemRegion> regions;
  for (int i = 0; i < 64; ++i) {
    MemRegion r;
    r.path = "/r" + std::to_string(i);
    r.base = 0x1000;  // all identical: every pair is a candidate
    r.size = 0x800;
    r.region_class = RegionClass::kDevice;
    regions.push_back(std::move(r));
  }
  SemanticOptions opts;
  opts.solver_timeout_ms = 1;
  opts.plan = true;
  SemanticChecker checker(smt::Backend::kBuiltin, opts);
  Findings f = checker.check_regions(regions);
  int timeouts = 0;
  for (const Finding& finding : f) {
    if (finding.kind == FindingKind::kSolverTimeout) {
      ++timeouts;
      EXPECT_EQ(finding.severity, FindingSeverity::kError);
    }
  }
  EXPECT_EQ(timeouts, 1) << render(f);
  EXPECT_GT(error_count(f), 0u);
}

TEST(SemanticTimeout, GenerousBudgetDoesNotFire) {
  std::vector<MemRegion> regions;
  for (int i = 0; i < 4; ++i) {
    MemRegion r;
    r.path = "/r" + std::to_string(i);
    r.base = static_cast<uint64_t>(i) * 0x10000;
    r.size = 0x1000;
    r.region_class = RegionClass::kDevice;
    regions.push_back(std::move(r));
  }
  SemanticOptions opts;
  opts.solver_timeout_ms = 60000;
  SemanticChecker checker(smt::Backend::kBuiltin, opts);
  Findings f = checker.check_regions(regions);
  EXPECT_FALSE(contains(f, FindingKind::kSolverTimeout)) << render(f);
  EXPECT_EQ(error_count(f), 0u) << render(f);
}

// Property sweep: random region sets, solver verdict vs interval arithmetic.
struct RandomRegionsCase {
  uint32_t seed;
  smt::Backend backend;
  int count;
};

class RandomRegionsTest : public ::testing::TestWithParam<RandomRegionsCase> {};

TEST_P(RandomRegionsTest, SolverAgreesWithIntervalArithmetic) {
  std::mt19937_64 rng(GetParam().seed);
  std::uniform_int_distribution<uint64_t> base_dist(0, 1 << 20);
  std::uniform_int_distribution<uint64_t> size_dist(1, 1 << 12);
  std::vector<MemRegion> regions;
  for (int i = 0; i < GetParam().count; ++i) {
    MemRegion r;
    r.path = "/r" + std::to_string(i);
    r.base = base_dist(rng);
    r.size = size_dist(rng);
    r.region_class = RegionClass::kDevice;
    regions.push_back(std::move(r));
  }
  SemanticChecker checker(GetParam().backend);
  Findings f = checker.check_regions(regions);
  size_t solver_overlaps = 0;
  for (const Finding& finding : f) {
    if (finding.kind == FindingKind::kAddressOverlap) ++solver_overlaps;
  }
  size_t interval_overlaps = 0;
  for (size_t i = 0; i < regions.size(); ++i) {
    for (size_t j = i + 1; j < regions.size(); ++j) {
      if (regions[i].base < regions[j].base + regions[j].size &&
          regions[j].base < regions[i].base + regions[i].size) {
        ++interval_overlaps;
      }
    }
  }
  EXPECT_EQ(solver_overlaps, interval_overlaps);
}

// Satellite property test for the query planner: on random concrete region
// sets the planned path must be finding-equivalent (every field, witness
// included) to the exhaustive pairwise path, and both verdict-equivalent to
// the structural sweep-line baseline. Mixed classes exercise the planner's
// class-pair pruning (ipc-vs-memory is never a fault).
TEST_P(RandomRegionsTest, PlannedPathMatchesExhaustiveAndBaseline) {
  std::mt19937_64 rng(GetParam().seed ^ 0x9e3779b97f4a7c15ull);
  std::uniform_int_distribution<uint64_t> base_dist(0, 1 << 20);
  std::uniform_int_distribution<uint64_t> size_dist(1, 1 << 12);
  std::uniform_int_distribution<int> class_dist(0, 2);
  std::vector<MemRegion> regions;
  for (int i = 0; i < GetParam().count; ++i) {
    MemRegion r;
    r.path = "/r" + std::to_string(i);
    r.base = base_dist(rng);
    r.size = size_dist(rng);
    switch (class_dist(rng)) {
      case 0: r.region_class = RegionClass::kDevice; break;
      case 1: r.region_class = RegionClass::kIpc; break;
      default: r.region_class = RegionClass::kMemory; break;
    }
    regions.push_back(std::move(r));
  }

  SemanticOptions planned_opts;
  planned_opts.plan = true;
  SemanticOptions exhaustive_opts;
  exhaustive_opts.plan = false;
  SemanticChecker planned(GetParam().backend, planned_opts);
  SemanticChecker exhaustive(GetParam().backend, exhaustive_opts);
  Findings pf = planned.check_regions(regions);
  Findings ef = exhaustive.check_regions(regions);

  ASSERT_EQ(pf.size(), ef.size()) << "planned:\n"
                                  << render(pf) << "exhaustive:\n"
                                  << render(ef);
  for (size_t i = 0; i < pf.size(); ++i) {
    EXPECT_EQ(pf[i].kind, ef[i].kind);
    EXPECT_EQ(pf[i].subject, ef[i].subject);
    EXPECT_EQ(pf[i].other_subject, ef[i].other_subject);
    EXPECT_EQ(pf[i].base_a, ef[i].base_a);
    EXPECT_EQ(pf[i].size_a, ef[i].size_a);
    EXPECT_EQ(pf[i].base_b, ef[i].base_b);
    EXPECT_EQ(pf[i].size_b, ef[i].size_b);
    EXPECT_EQ(pf[i].witness, ef[i].witness)
        << "planned and exhaustive witnesses must agree at " << pf[i].render();
    EXPECT_EQ(pf[i].message, ef[i].message);
  }

  auto overlap_count = [](const Findings& fs) {
    size_t n = 0;
    for (const Finding& f : fs) {
      if (f.kind == FindingKind::kAddressOverlap) ++n;
    }
    return n;
  };
  EXPECT_EQ(overlap_count(pf), overlap_count(check_regions_baseline(regions)))
      << "solver path and structural baseline must agree on the verdict";
}

std::vector<RandomRegionsCase> region_cases() {
  std::vector<RandomRegionsCase> cases;
  for (uint32_t seed = 1; seed <= 6; ++seed) {
    cases.push_back({seed, smt::Backend::kBuiltin, 8});
    cases.push_back({seed + 10, smt::Backend::kZ3, 8});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Random, RandomRegionsTest,
                         ::testing::ValuesIn(region_cases()));

INSTANTIATE_TEST_SUITE_P(Backends, SemanticTest,
                         ::testing::ValuesIn(smt::all_backends()),
                         [](const ::testing::TestParamInfo<smt::Backend>& info) {
                           return std::string(smt::to_string(info.param));
                         });

}  // namespace
}  // namespace llhsc::checkers

// Lint checker tests: dtc-style structural warnings.
#include "checkers/lint.hpp"

#include <gtest/gtest.h>

#include "dts/parser.hpp"

namespace llhsc::checkers {
namespace {

std::unique_ptr<dts::Tree> parse_ok(std::string_view src) {
  support::DiagnosticEngine de;
  auto t = dts::parse_dts(src, "t.dts", de);
  EXPECT_FALSE(de.has_errors()) << de.render();
  return t;
}

Findings lint(const dts::Tree& tree) { return LintChecker().check(tree); }

TEST(Lint, CleanTreeHasNoWarnings) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    memory@40000000 { device_type = "memory"; reg = <0x40000000 0x1000>; };
    cpus {
        #address-cells = <1>;
        #size-cells = <0>;
        cpu@0 { reg = <0>; };
    };
};
)");
  Findings f = lint(*tree);
  EXPECT_TRUE(f.empty()) << render(f);
}

TEST(Lint, RegWithoutUnitAddress) {
  auto tree = parse_ok(R"(
/ { #address-cells = <1>; #size-cells = <1>;
    flash { reg = <0x0 0x1000>; }; };
)");
  Findings f = lint(*tree);
  ASSERT_TRUE(contains(f, FindingKind::kUnitAddressMissing)) << render(f);
}

TEST(Lint, UnitAddressWithoutReg) {
  auto tree = parse_ok("/ { ghost@1000 { }; };");
  Findings f = lint(*tree);
  EXPECT_TRUE(contains(f, FindingKind::kUnitAddressMissing)) << render(f);
}

TEST(Lint, UnitAddressMismatch) {
  auto tree = parse_ok(R"(
/ { #address-cells = <1>; #size-cells = <1>;
    uart@2000 { reg = <0x3000 0x100>; }; };
)");
  Findings f = lint(*tree);
  ASSERT_TRUE(contains(f, FindingKind::kUnitAddressMismatch)) << render(f);
  for (const Finding& finding : f) {
    if (finding.kind == FindingKind::kUnitAddressMismatch) {
      EXPECT_EQ(finding.base_a, 0x2000u);
      EXPECT_EQ(finding.base_b, 0x3000u);
    }
  }
}

TEST(Lint, UnitAddressMatchesTwoCellAddress) {
  auto tree = parse_ok(R"(
/ { #address-cells = <2>; #size-cells = <2>;
    mem@180000000 { reg = <0x1 0x80000000 0x0 0x1000>; }; };
)");
  Findings f = lint(*tree);
  EXPECT_FALSE(contains(f, FindingKind::kUnitAddressMismatch)) << render(f);
}

TEST(Lint, LeadingZeroUnitAddress) {
  auto tree = parse_ok(R"(
/ { #address-cells = <1>; #size-cells = <1>;
    uart@02000 { reg = <0x2000 0x100>; }; };
)");
  Findings f = lint(*tree);
  EXPECT_TRUE(contains(f, FindingKind::kNameConvention)) << render(f);
}

TEST(Lint, DifferentBaseNamesSharingUnitAddressAreFine) {
  auto tree = parse_ok(R"(
/ { #address-cells = <1>; #size-cells = <1>;
    uart@1000 { reg = <0x1000 0x100>; };
    spi@2000 { reg = <0x2000 0x100>; }; };
)");
  dts::Node& n1 = tree->root().get_or_create_child("eth@5000");
  n1.set_property(dts::Property::cells("reg", {0x5000, 0x100}));
  dts::Node& n2 = tree->root().get_or_create_child("eth2@5000");
  n2.set_property(dts::Property::cells("reg", {0x5000, 0x100}));
  Findings f = lint(*tree);
  EXPECT_FALSE(contains(f, FindingKind::kDuplicateUnitAddress)) << render(f);
}

TEST(Lint, DuplicateUnitAddressSameBaseName) {
  dts::Tree tree;
  tree.root().set_property(dts::Property::cells("#address-cells", {1}));
  tree.root().set_property(dts::Property::cells("#size-cells", {1}));
  dts::Node& a = tree.root().add_child(std::make_unique<dts::Node>("uart@1000"));
  a.set_property(dts::Property::cells("reg", {0x1000, 0x100}));
  // dtc reaches this state through overlays; build directly via add_child.
  dts::Node& b = tree.root().add_child(std::make_unique<dts::Node>("uart@1000"));
  b.set_property(dts::Property::cells("reg", {0x1000, 0x100}));
  Findings f = lint(tree);
  EXPECT_TRUE(contains(f, FindingKind::kDuplicateUnitAddress)) << render(f);
}

TEST(Lint, BadStatusValue) {
  auto tree = parse_ok(R"(
/ { dev { status = "maybe"; }; };
)");
  Findings f = lint(*tree);
  EXPECT_TRUE(contains(f, FindingKind::kBadStatusValue)) << render(f);
}

TEST(Lint, GoodStatusValues) {
  auto tree = parse_ok(R"(
/ {
    a { status = "okay"; };
    b { status = "disabled"; };
    c { status = "reserved"; };
    d { status = "fail-sss"; };
};
)");
  Findings f = lint(*tree);
  EXPECT_FALSE(contains(f, FindingKind::kBadStatusValue)) << render(f);
}

TEST(Lint, MissingCellsDeclaration) {
  auto tree = parse_ok(R"(
/ { #address-cells = <1>; #size-cells = <1>;
    bus {
        dev@1000 { reg = <0x1000 0x100>; };
    };
};
)");
  Findings f = lint(*tree);
  EXPECT_TRUE(contains(f, FindingKind::kMissingCells)) << render(f);
}

TEST(Lint, RootNeverNeedsCellsWarning) {
  auto tree = parse_ok(R"(
/ { dev@1000 { reg = <0x1000 0x100>; }; };
)");
  Findings f = lint(*tree);
  EXPECT_FALSE(contains(f, FindingKind::kMissingCells))
      << "the root's defaults are canonical: " << render(f);
}

TEST(Lint, InvalidPropertyName) {
  dts::Tree tree;
  dts::Node& n = tree.root().get_or_create_child("dev");
  dts::Property p;
  p.name = std::string(40, 'x');  // over the 31-char limit
  n.set_property(std::move(p));
  Findings f = lint(tree);
  EXPECT_TRUE(contains(f, FindingKind::kNameConvention)) << render(f);
}

TEST(Lint, AllFindingsAreWarnings) {
  auto tree = parse_ok(R"(
/ { ghost@1000 { status = "maybe"; }; };
)");
  Findings f = lint(*tree);
  ASSERT_FALSE(f.empty());
  EXPECT_EQ(error_count(f), 0u);
}

TEST(Lint, AliasToMissingNodeWarns) {
  auto tree = parse_ok(R"(
/ {
    aliases { serial0 = "/soc/uart@1000"; };
    soc { };
};
)");
  Findings f = lint(*tree);
  EXPECT_TRUE(contains(f, FindingKind::kUnitAddressMissing)) << render(f);
}

TEST(Lint, AliasToExistingNodeIsClean) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    aliases { serial0 = "/soc/uart@1000"; };
    soc {
        #address-cells = <1>;
        #size-cells = <1>;
        uart@1000 { reg = <0x1000 0x100>; };
    };
};
)");
  Findings f = lint(*tree);
  EXPECT_TRUE(f.empty()) << render(f);
}

TEST(Lint, StdoutPathValidated) {
  auto bad = parse_ok(R"(
/ { chosen { stdout-path = "/soc/nothere:115200n8"; }; };
)");
  Findings f = lint(*bad);
  EXPECT_TRUE(contains(f, FindingKind::kUnitAddressMissing)) << render(f);

  auto good = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    chosen { stdout-path = "/soc/uart@1000:115200n8"; };
    soc {
        #address-cells = <1>;
        #size-cells = <1>;
        uart@1000 { reg = <0x1000 0x100>; };
    };
};
)");
  Findings f2 = lint(*good);
  EXPECT_TRUE(f2.empty()) << render(f2);
}

TEST(Lint, OptionsDisableChecks) {
  auto tree = parse_ok("/ { ghost@1000 { }; };");
  LintOptions opts;
  opts.check_unit_addresses = false;
  Findings f = LintChecker(opts).check(*tree);
  EXPECT_FALSE(contains(f, FindingKind::kUnitAddressMissing));
}

}  // namespace
}  // namespace llhsc::checkers

// Device-graph IR + rules tests: graph construction facts (typed edges,
// status folding, provider roles), one minimal negative DTS per graph rule,
// registry behaviour (disable / severity override through the shared rule
// catalog), the cross-unit exclusive-provider analysis, and an SCC property
// test pitting iterative Tarjan against a naive reachability oracle on
// deterministic pseudo-random graphs.
#include "checkers/graph/rules.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "checkers/graph/fixpoint.hpp"
#include "checkers/graph/graph.hpp"
#include "dts/parser.hpp"

namespace llhsc::checkers::graph {
namespace {

std::unique_ptr<dts::Tree> parse_ok(std::string_view src) {
  support::DiagnosticEngine de;
  auto t = dts::parse_dts(src, "t.dts", de);
  EXPECT_FALSE(de.has_errors()) << de.render();
  return t;
}

Findings run(const dts::Tree& tree, RuleOptions options = {}) {
  const DeviceGraph g = DeviceGraph::build(tree);
  return GraphChecker(std::move(options)).check(g);
}

const Finding* find_by_rule(const Findings& fs, std::string_view rule) {
  for (const Finding& f : fs) {
    if (f.rule_id() == rule) return &f;
  }
  return nullptr;
}

const GraphNode* find_node(const DeviceGraph& g, std::string_view path) {
  for (const GraphNode& n : g.nodes()) {
    if (n.path == path) return &n;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Graph construction
// ---------------------------------------------------------------------------

TEST(DeviceGraphBuild, TypedEdgesAndProviderRoles) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    clk: clock-controller@1000 { #clock-cells = <1>; };
    rst: reset-controller@2000 { #reset-cells = <1>; };
    uart@3000 {
        clocks = <&clk 0>;
        resets = <&rst 7>;
    };
};
)");
  const DeviceGraph g = DeviceGraph::build(*tree);

  const GraphNode* clk = find_node(g, "/clock-controller@1000");
  const GraphNode* uart = find_node(g, "/uart@3000");
  ASSERT_NE(clk, nullptr);
  ASSERT_NE(uart, nullptr);
  EXPECT_TRUE(clk->is_provider);
  EXPECT_FALSE(uart->is_provider);
  ASSERT_EQ(uart->out.size(), 2u);
  EXPECT_EQ(clk->in.size(), 1u);

  const Edge& clock_edge = g.edge(uart->out[0]);
  EXPECT_EQ(clock_edge.kind, EdgeKind::kClock);
  EXPECT_EQ(clock_edge.property, "clocks");
  EXPECT_TRUE(clock_edge.resolved);
  EXPECT_FALSE(clock_edge.truncated);
  EXPECT_EQ(clock_edge.arity, 1u);
  EXPECT_EQ(g.node(clock_edge.provider).path, "/clock-controller@1000");

  const Edge& reset_edge = g.edge(uart->out[1]);
  EXPECT_EQ(reset_edge.kind, EdgeKind::kReset);
  EXPECT_EQ(reset_edge.property, "resets");
}

TEST(DeviceGraphBuild, AncestorStatusFoldsIntoEffectiveDisabling) {
  auto tree = parse_ok(R"(
/ {
    bus@1000 {
        status = "disabled";
        uart@1100 { };
    };
    uart@2000 { status = "okay"; };
};
)");
  const DeviceGraph g = DeviceGraph::build(*tree);
  const GraphNode* nested = find_node(g, "/bus@1000/uart@1100");
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(nested->status, NodeStatus::kOkay);  // own status is absent
  EXPECT_TRUE(nested->effectively_disabled);     // ...but the bus is off
  const GraphNode* top = find_node(g, "/uart@2000");
  ASSERT_NE(top, nullptr);
  EXPECT_FALSE(top->effectively_disabled);
}

TEST(DeviceGraphBuild, InterruptEdgesUseTheEffectiveParent) {
  auto tree = parse_ok(R"(
/ {
    intc: interrupt-controller@1000 {
        interrupt-controller;
        #interrupt-cells = <2>;
    };
    explicit@2000 {
        interrupt-parent = <&intc>;
        interrupts = <5 4 6 4>;
    };
    soc {
        interrupt-controller;
        #interrupt-cells = <1>;
        implicit@3000 { interrupts = <9>; };
    };
};
)");
  const DeviceGraph g = DeviceGraph::build(*tree);

  const GraphNode* explicit_consumer = find_node(g, "/explicit@2000");
  ASSERT_NE(explicit_consumer, nullptr);
  ASSERT_EQ(explicit_consumer->out.size(), 2u);  // one edge per 2-cell tuple
  for (uint32_t ei : explicit_consumer->out) {
    const Edge& e = g.edge(ei);
    EXPECT_EQ(e.kind, EdgeKind::kInterrupt);
    EXPECT_TRUE(e.resolved);
    EXPECT_EQ(g.node(e.provider).path, "/interrupt-controller@1000");
  }

  // No interrupt-parent: the nearest interrupt-controller ancestor provides.
  const GraphNode* implicit_consumer = find_node(g, "/soc/implicit@3000");
  ASSERT_NE(implicit_consumer, nullptr);
  ASSERT_EQ(implicit_consumer->out.size(), 1u);
  EXPECT_EQ(g.node(g.edge(implicit_consumer->out[0]).provider).path, "/soc");
}

TEST(DeviceGraphBuild, DanglingPhandleYieldsUnresolvedEdge) {
  auto tree = parse_ok(R"(
/ {
    clk: clock-controller@1000 { #clock-cells = <0>; };
    uart@2000 { clocks = <&clk>, <0x99>; };
};
)");
  const DeviceGraph g = DeviceGraph::build(*tree);
  const GraphNode* uart = find_node(g, "/uart@2000");
  ASSERT_NE(uart, nullptr);
  ASSERT_EQ(uart->out.size(), 2u);
  EXPECT_TRUE(g.edge(uart->out[0]).resolved);
  const Edge& dangling = g.edge(uart->out[1]);
  EXPECT_FALSE(dangling.resolved);
  EXPECT_EQ(dangling.phandle, 0x99u);
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

TEST(GraphRules, CleanTreeHasNoFindings) {
  auto tree = parse_ok(R"(
/ {
    clk: clock-controller@1000 { #clock-cells = <1>; };
    uart@2000 { clocks = <&clk 0>; };
};
)");
  Findings f = run(*tree);
  EXPECT_TRUE(f.empty()) << render(f);
}

TEST(GraphRules, ProviderCycleIsReportedOnceWithItsPath) {
  auto tree = parse_ok(R"(
/ {
    a: clock-controller@1000 { #clock-cells = <0>; clocks = <&b>; };
    b: clock-controller@2000 { #clock-cells = <0>; clocks = <&a>; };
    uart@3000 { clocks = <&a>; };
};
)");
  Findings f = run(*tree);
  const Finding* cycle = find_by_rule(f, "graph-provider-cycle");
  ASSERT_NE(cycle, nullptr) << render(f);
  EXPECT_EQ(cycle->severity, FindingSeverity::kError);
  EXPECT_EQ(cycle->subject, "/clock-controller@1000");  // smallest pre-order
  ASSERT_EQ(cycle->flow.size(), 2u);  // a -> b -> a, one step per edge
  // Exactly one cycle finding for the one component.
  size_t cycles = 0;
  for (const Finding& x : f) {
    if (x.rule_id() == "graph-provider-cycle") ++cycles;
  }
  EXPECT_EQ(cycles, 1u);
}

TEST(GraphRules, SelfLoopIsACycle) {
  auto tree = parse_ok(R"(
/ {
    a: clock-controller@1000 { #clock-cells = <0>; clocks = <&a>; };
    uart@2000 { clocks = <&a>; };
};
)");
  Findings f = run(*tree);
  const Finding* cycle = find_by_rule(f, "graph-provider-cycle");
  ASSERT_NE(cycle, nullptr) << render(f);
  EXPECT_EQ(cycle->flow.size(), 1u);
}

TEST(GraphRules, StatusPropagationWalksTheChain) {
  auto tree = parse_ok(R"(
/ {
    pll: clock-controller@1000 { #clock-cells = <0>; status = "disabled"; };
    gate: clock-controller@2000 { #clock-cells = <0>; clocks = <&pll>; };
    uart@3000 { clocks = <&gate>; };
};
)");
  Findings f = run(*tree);
  // Both the gate (1 hop) and the uart (2 hops) report.
  size_t hits = 0;
  for (const Finding& x : f) {
    if (x.rule_id() == "graph-status-propagation") ++hits;
  }
  EXPECT_EQ(hits, 2u) << render(f);
  bool saw_uart = false;
  for (const Finding& x : f) {
    if (x.rule_id() != "graph-status-propagation" || x.subject != "/uart@3000")
      continue;
    saw_uart = true;
    EXPECT_NE(x.message.find("2 hop(s)"), std::string::npos) << x.render();
    // chain edge, chain edge, disabled-provider terminator
    ASSERT_EQ(x.flow.size(), 3u);
    EXPECT_NE(x.flow.back().note.find("disabled"), std::string::npos);
  }
  EXPECT_TRUE(saw_uart) << render(f);
}

TEST(GraphRules, DisabledConsumersAreExemptFromStatusPropagation) {
  auto tree = parse_ok(R"(
/ {
    pll: clock-controller@1000 { #clock-cells = <0>; status = "disabled"; };
    uart@2000 { status = "disabled"; clocks = <&pll>; };
};
)");
  Findings f = run(*tree);
  EXPECT_EQ(find_by_rule(f, "graph-status-propagation"), nullptr) << render(f);
}

TEST(GraphRules, MissingProviderTaintsConsumers) {
  auto tree = parse_ok(R"(
/ {
    uart@2000 { clocks = <0x42>; };
};
)");
  Findings f = run(*tree);
  const Finding* miss = find_by_rule(f, "graph-status-propagation");
  ASSERT_NE(miss, nullptr) << render(f);
  EXPECT_NE(miss->message.find("missing provider"), std::string::npos);
  EXPECT_NE(miss->message.find("66"), std::string::npos);  // phandle 0x42
}

TEST(GraphRules, CellsArityFlagsTruncatedTuples) {
  auto tree = parse_ok(R"(
/ {
    clk: clock-controller@1000 { #clock-cells = <2>; };
    uart@2000 { clocks = <&clk 1>; };
};
)");
  Findings f = run(*tree);
  const Finding* arity = find_by_rule(f, "graph-cells-arity");
  ASSERT_NE(arity, nullptr) << render(f);
  EXPECT_EQ(arity->subject, "/uart@2000");
  EXPECT_EQ(arity->other_subject, "/clock-controller@1000");
  EXPECT_NE(arity->message.find("2-cell contract"), std::string::npos);
  ASSERT_EQ(arity->flow.size(), 2u);  // consumer step + provider contract
}

TEST(GraphRules, OrphanProviderIsOnlyClaimedByDisabledConsumers) {
  auto tree = parse_ok(R"(
/ {
    clk: clock-controller@1000 { #clock-cells = <0>; };
    uart@2000 { status = "disabled"; clocks = <&clk>; };
};
)");
  Findings f = run(*tree);
  const Finding* orphan = find_by_rule(f, "graph-orphan-provider");
  ASSERT_NE(orphan, nullptr) << render(f);
  EXPECT_EQ(orphan->severity, FindingSeverity::kWarning);
  EXPECT_EQ(orphan->subject, "/clock-controller@1000");
}

TEST(GraphRules, DemandedProviderChainIsNotOrphaned) {
  auto tree = parse_ok(R"(
/ {
    pll: clock-controller@1000 { #clock-cells = <0>; };
    gate: clock-controller@2000 { #clock-cells = <0>; clocks = <&pll>; };
    uart@3000 { clocks = <&gate>; };
};
)");
  Findings f = run(*tree);
  // Demand flows uart -> gate -> pll; neither provider is an orphan.
  EXPECT_EQ(find_by_rule(f, "graph-orphan-provider"), nullptr) << render(f);
}

TEST(GraphRules, RulesHonorDisableAndSeverityOverride) {
  auto tree = parse_ok(R"(
/ {
    clk: clock-controller@1000 { #clock-cells = <2>; };
    uart@2000 { clocks = <&clk 1>; };
};
)");
  RuleOptions disabled;
  disabled.disabled.insert("graph-cells-arity");
  Findings off = run(*tree, disabled);
  EXPECT_EQ(find_by_rule(off, "graph-cells-arity"), nullptr);

  RuleOptions demoted;
  demoted.severity_overrides["graph-cells-arity"] =
      FindingSeverity::kWarning;
  Findings warned = run(*tree, demoted);
  const Finding* f = find_by_rule(warned, "graph-cells-arity");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, FindingSeverity::kWarning);
}

TEST(GraphRules, AllGraphRuleIdsAreInTheSharedCatalog) {
  for (const char* id :
       {"graph-provider-cycle", "graph-status-propagation",
        "graph-cells-arity", "graph-orphan-provider",
        "graph-exclusive-provider"}) {
    EXPECT_NE(crossref::find_rule(id), nullptr) << id;
  }
}

// ---------------------------------------------------------------------------
// Cross-unit exclusive providers
// ---------------------------------------------------------------------------

TEST(GraphCrossUnit, TwoUnitsClaimingOneProviderConflict) {
  auto vma = parse_ok(R"(
/ {
    dma: dma-controller@1000 { #dma-cells = <1>; };
    eth@2000 { dmas = <&dma 0>; };
};
)");
  auto vmb = parse_ok(R"(
/ {
    dma: dma-controller@1000 { #dma-cells = <1>; };
    spi@3000 { dmas = <&dma 1>; };
};
)");
  const DeviceGraph ga = DeviceGraph::build(*vma);
  const DeviceGraph gb = DeviceGraph::build(*vmb);
  Findings f = check_exclusive_providers({{"vma", &ga}, {"vmb", &gb}});
  const Finding* x = find_by_rule(f, "graph-exclusive-provider");
  ASSERT_NE(x, nullptr) << render(f);
  EXPECT_EQ(x->subject, "/dma-controller@1000");
  EXPECT_EQ(x->other_subject, "vma");
  EXPECT_NE(x->message.find("'vma' and unit 'vmb'"), std::string::npos);
  ASSERT_EQ(x->flow.size(), 2u);  // one claiming consumer per unit
}

TEST(GraphCrossUnit, SharedPropertyOptsOut) {
  auto vma = parse_ok(R"(
/ {
    clk: clock-controller@1000 { #clock-cells = <0>; shared; };
    uart@2000 { clocks = <&clk>; };
};
)");
  auto vmb = parse_ok(R"(
/ {
    clk: clock-controller@1000 { #clock-cells = <0>; shared; };
    uart@3000 { clocks = <&clk>; };
};
)");
  const DeviceGraph ga = DeviceGraph::build(*vma);
  const DeviceGraph gb = DeviceGraph::build(*vmb);
  Findings f = check_exclusive_providers({{"vma", &ga}, {"vmb", &gb}});
  EXPECT_TRUE(f.empty()) << render(f);
}

TEST(GraphCrossUnit, InterruptControllersAreNeverClaimed) {
  // Interrupt controllers are virtualized per VM — two VMs wiring their
  // interrupts through the same physical controller is the normal case.
  auto vma = parse_ok(R"(
/ {
    intc: interrupt-controller@1000 {
        interrupt-controller; #interrupt-cells = <1>;
    };
    uart@2000 { interrupt-parent = <&intc>; interrupts = <5>; };
};
)");
  auto vmb = parse_ok(R"(
/ {
    intc: interrupt-controller@1000 {
        interrupt-controller; #interrupt-cells = <1>;
    };
    uart@3000 { interrupt-parent = <&intc>; interrupts = <6>; };
};
)");
  const DeviceGraph ga = DeviceGraph::build(*vma);
  const DeviceGraph gb = DeviceGraph::build(*vmb);
  Findings f = check_exclusive_providers({{"vma", &ga}, {"vmb", &gb}});
  EXPECT_TRUE(f.empty()) << render(f);
}

// ---------------------------------------------------------------------------
// SCC property test: Tarjan vs a naive reachability oracle
// ---------------------------------------------------------------------------

/// Naive SCC: m is in n's component iff n reaches m and m reaches n.
std::vector<std::vector<uint32_t>> naive_scc(
    size_t n, const std::vector<std::vector<uint32_t>>& adj) {
  // DFS reachability per node.
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (uint32_t s = 0; s < n; ++s) {
    std::vector<uint32_t> stack = {s};
    reach[s][s] = true;
    while (!stack.empty()) {
      uint32_t cur = stack.back();
      stack.pop_back();
      for (uint32_t m : adj[cur]) {
        if (!reach[s][m]) {
          reach[s][m] = true;
          stack.push_back(m);
        }
      }
    }
  }
  std::vector<bool> done(n, false);
  std::vector<std::vector<uint32_t>> comps;
  for (uint32_t s = 0; s < n; ++s) {
    if (done[s]) continue;
    std::vector<uint32_t> comp;
    for (uint32_t m = s; m < n; ++m) {
      if (reach[s][m] && reach[m][s]) {
        comp.push_back(m);
        done[m] = true;
      }
    }
    comps.push_back(std::move(comp));
  }
  return comps;
}

/// Canonical form: each component sorted (tarjan_scc already sorts), the
/// list sorted by first member.
std::vector<std::vector<uint32_t>> canonical(
    std::vector<std::vector<uint32_t>> comps) {
  for (auto& c : comps) std::sort(c.begin(), c.end());
  std::sort(comps.begin(), comps.end());
  return comps;
}

TEST(TarjanScc, MatchesNaiveOracleOnRandomGraphs) {
  // Deterministic LCG so failures reproduce byte-for-byte.
  uint64_t state = 0x2545f4914f6cdd1dull;
  auto next = [&]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint32_t>(state >> 33);
  };
  for (int round = 0; round < 200; ++round) {
    const size_t n = 1 + next() % 24;
    // Edge density sweeps from sparse to dense across rounds.
    const size_t edges = next() % (n * 3 + 1);
    std::vector<std::vector<uint32_t>> adj(n);
    for (size_t i = 0; i < edges; ++i) {
      adj[next() % n].push_back(next() % n);
    }
    auto got = canonical(
        tarjan_scc(n, [&](uint32_t m) -> const std::vector<uint32_t>& {
          return adj[m];
        }));
    auto want = canonical(naive_scc(n, adj));
    ASSERT_EQ(got, want) << "round " << round << ", n=" << n;
  }
}

TEST(TarjanScc, DeepChainDoesNotOverflowTheStack) {
  // 100k-node chain: the explicit-stack implementation must not recurse.
  const size_t n = 100000;
  std::vector<std::vector<uint32_t>> adj(n);
  for (uint32_t i = 0; i + 1 < n; ++i) adj[i].push_back(i + 1);
  auto comps = tarjan_scc(n, [&](uint32_t m) -> const std::vector<uint32_t>& {
    return adj[m];
  });
  EXPECT_EQ(comps.size(), n);  // all singletons
}

TEST(Worklist, DeduplicatesAndDrainsFifo) {
  Worklist wl(4);
  wl.push(2);
  wl.push(1);
  wl.push(2);  // duplicate while queued: dropped
  EXPECT_EQ(wl.pop(), 2u);
  wl.push(2);  // re-push after pop: accepted
  EXPECT_EQ(wl.pop(), 1u);
  EXPECT_EQ(wl.pop(), 2u);
  EXPECT_TRUE(wl.empty());
}

}  // namespace
}  // namespace llhsc::checkers::graph

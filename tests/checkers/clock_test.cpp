// Clock-assignment uniqueness (checkers/semantic.cpp, check_clocks): two
// consumers pinning the same (provider, specifier) clock is a fault, and
// the planner's bucket prefilter — the sweep-line idea generalised to
// clock-provider buckets — must keep verdicts byte-identical to the
// exhaustive pairwise path.
#include <memory>
#include <string>

#include "checkers/semantic.hpp"
#include "dts/parser.hpp"
#include "gtest/gtest.h"

namespace llhsc::checkers {
namespace {

std::unique_ptr<dts::Tree> parse(const std::string& src) {
  support::DiagnosticEngine diags;
  auto tree = dts::parse_dts(src, "clock.dts", diags);
  EXPECT_NE(tree, nullptr);
  EXPECT_FALSE(diags.has_errors());
  return tree;
}

Findings check(const dts::Tree& tree, bool plan) {
  SemanticOptions opts;
  opts.plan = plan;
  SemanticChecker checker(smt::Backend::kBuiltin, opts);
  return checker.check(tree);
}

size_t clock_findings(const Findings& fs) {
  size_t n = 0;
  for (const Finding& f : fs) {
    if (f.kind == FindingKind::kClockCollision) ++n;
  }
  return n;
}

constexpr const char* kColliding =
    "/dts-v1/;\n"
    "/ {\n"
    "  #address-cells = <1>; #size-cells = <1>;\n"
    "  clk: clock-controller { phandle = <1>; #clock-cells = <1>; };\n"
    "  a@1000 { reg = <0x1000 0x100>; assigned-clocks = <1 4>; };\n"
    "  b@2000 { reg = <0x2000 0x100>; assigned-clocks = <1 4>; };\n"
    "};\n";

TEST(ClockCheck, SameProviderSameSpecifierCollides) {
  auto tree = parse(kColliding);
  Findings fs = check(*tree, /*plan=*/true);
  ASSERT_EQ(clock_findings(fs), 1u);
  for (const Finding& f : fs) {
    if (f.kind != FindingKind::kClockCollision) continue;
    EXPECT_EQ(f.property, "assigned-clocks");
    EXPECT_NE(f.message.find("provider phandle 1"), std::string::npos);
  }
}

TEST(ClockCheck, DistinctSpecifiersDoNotCollide) {
  auto tree = parse(
      "/dts-v1/;\n"
      "/ {\n"
      "  #address-cells = <1>; #size-cells = <1>;\n"
      "  clk: clock-controller { phandle = <1>; #clock-cells = <1>; };\n"
      "  a@1000 { reg = <0x1000 0x100>; assigned-clocks = <1 4>; };\n"
      "  b@2000 { reg = <0x2000 0x100>; assigned-clocks = <1 5>; };\n"
      "};\n");
  EXPECT_EQ(clock_findings(check(*tree, true)), 0u);
}

TEST(ClockCheck, PerProviderStrideIsRespected) {
  // Provider 1 takes one specifier cell, provider 2 takes none: the second
  // entry of a's list starts right after <1 7>. Both consumers pin clock
  // provider-2 (the zero-cell provider), which must collide.
  auto tree = parse(
      "/dts-v1/;\n"
      "/ {\n"
      "  #address-cells = <1>; #size-cells = <1>;\n"
      "  clka { phandle = <1>; #clock-cells = <1>; };\n"
      "  clkb { phandle = <2>; #clock-cells = <0>; };\n"
      "  a@1000 { reg = <0x1000 0x100>; assigned-clocks = <1 7 2>; };\n"
      "  b@2000 { reg = <0x2000 0x100>; assigned-clocks = <2>; };\n"
      "};\n");
  EXPECT_EQ(clock_findings(check(*tree, true)), 1u);
}

TEST(ClockCheck, UnknownProviderEntriesAreSkipped) {
  // Phandle 9 resolves to nothing: the stride is unknowable, so the entry
  // is skipped (crossref owns the dangling-phandle report) — no crash, no
  // false collision.
  auto tree = parse(
      "/dts-v1/;\n"
      "/ {\n"
      "  #address-cells = <1>; #size-cells = <1>;\n"
      "  a@1000 { reg = <0x1000 0x100>; assigned-clocks = <9 4>; };\n"
      "  b@2000 { reg = <0x2000 0x100>; assigned-clocks = <9 4>; };\n"
      "};\n");
  EXPECT_EQ(clock_findings(check(*tree, true)), 0u);
}

TEST(ClockCheck, PlannedEqualsExhaustive) {
  auto tree = parse(kColliding);
  Findings planned = check(*tree, /*plan=*/true);
  Findings exhaustive = check(*tree, /*plan=*/false);
  ASSERT_EQ(planned.size(), exhaustive.size());
  for (size_t i = 0; i < planned.size(); ++i) {
    EXPECT_EQ(planned[i].kind, exhaustive[i].kind);
    EXPECT_EQ(planned[i].subject, exhaustive[i].subject);
    EXPECT_EQ(planned[i].other_subject, exhaustive[i].other_subject);
    EXPECT_EQ(planned[i].message, exhaustive[i].message);
  }
}

TEST(ClockCheck, CanBeDisabled) {
  auto tree = parse(kColliding);
  SemanticOptions opts;
  opts.check_clocks = false;
  SemanticChecker checker(smt::Backend::kBuiltin, opts);
  EXPECT_EQ(clock_findings(checker.check(*tree)), 0u);
}

}  // namespace
}  // namespace llhsc::checkers

// Tests for the sweep-line baseline (verdict-equivalence with the SMT path)
// and the JSON report rendering.
#include <gtest/gtest.h>

#include <random>

#include "checkers/interval_baseline.hpp"
#include "checkers/report.hpp"

namespace llhsc::checkers {
namespace {

MemRegion region(std::string path, uint64_t base, uint64_t size,
                 RegionClass cls = RegionClass::kDevice) {
  MemRegion r;
  r.path = std::move(path);
  r.base = base;
  r.size = size;
  r.region_class = cls;
  return r;
}

TEST(IntervalBaseline, FindsSimpleOverlap) {
  std::vector<MemRegion> regions{region("/a", 0x1000, 0x200),
                                 region("/b", 0x1100, 0x100)};
  auto pairs = find_overlaps_sweepline(regions);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (OverlapPair{0, 1}));
}

TEST(IntervalBaseline, AdjacentRegionsDoNotOverlap) {
  std::vector<MemRegion> regions{region("/a", 0x1000, 0x100),
                                 region("/b", 0x1100, 0x100)};
  EXPECT_TRUE(find_overlaps_sweepline(regions).empty());
}

TEST(IntervalBaseline, RespectsClassRules) {
  std::vector<MemRegion> regions{
      region("/mem", 0x1000, 0x1000, RegionClass::kMemory),
      region("/ipc", 0x1400, 0x100, RegionClass::kIpc)};
  EXPECT_TRUE(find_overlaps_sweepline(regions).empty())
      << "ipc-over-memory is sanctioned";
  regions[1].region_class = RegionClass::kDevice;
  EXPECT_EQ(find_overlaps_sweepline(regions).size(), 1u);
}

TEST(IntervalBaseline, ZeroSizeRegionsIgnored) {
  std::vector<MemRegion> regions{region("/a", 0x1000, 0),
                                 region("/b", 0x1000, 0x100)};
  EXPECT_TRUE(find_overlaps_sweepline(regions).empty());
}

TEST(IntervalBaseline, NestedAndChainedOverlaps) {
  std::vector<MemRegion> regions{region("/big", 0x1000, 0x1000),
                                 region("/in1", 0x1100, 0x100),
                                 region("/in2", 0x1fff, 0x100)};
  auto pairs = find_overlaps_sweepline(regions);
  // big-in1, big-in2; in1 and in2 are disjoint.
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (OverlapPair{0, 1}));
  EXPECT_EQ(pairs[1], (OverlapPair{0, 2}));
}

class BaselineAgreementTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BaselineAgreementTest, AgreesWithSemanticChecker) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<uint64_t> base_dist(0, 1 << 16);
  std::uniform_int_distribution<uint64_t> size_dist(1, 1 << 10);
  std::uniform_int_distribution<int> cls_dist(0, 2);
  std::vector<MemRegion> regions;
  for (int i = 0; i < 12; ++i) {
    regions.push_back(region("/r" + std::to_string(i), base_dist(rng),
                             size_dist(rng),
                             static_cast<RegionClass>(cls_dist(rng))));
  }
  auto pairs = find_overlaps_sweepline(regions);

  SemanticChecker checker;
  Findings f = checker.check_regions(regions);
  size_t smt_overlaps = 0;
  for (const Finding& finding : f) {
    if (finding.kind == FindingKind::kAddressOverlap) ++smt_overlaps;
  }
  EXPECT_EQ(pairs.size(), smt_overlaps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineAgreementTest,
                         ::testing::Range(1u, 13u));

TEST(Report, JsonShapeAndEscaping) {
  Finding f;
  f.kind = FindingKind::kAddressOverlap;
  f.subject = "/memory@40000000[0]";
  f.other_subject = "/uart@60000000[0]";
  f.delta = "d3";
  f.base_a = 0x60000000;
  f.size_a = 0x20000000;
  f.base_b = 0x60000000;
  f.size_b = 0x1000;
  f.witness = 0x60000000;
  f.message = "overlap with \"quotes\"\nand newline";
  Findings fs{f};

  std::string json = to_json(fs);
  EXPECT_NE(json.find("\"kind\": \"address-overlap\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(json.find("\"delta\": \"d3\""), std::string::npos);
  EXPECT_NE(json.find("\"witness\": 1610612736"), std::string::npos);
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos) << "raw newlines must be escaped";
}

TEST(Report, SummaryCounts) {
  Finding err;
  err.kind = FindingKind::kMissingRequired;
  err.subject = "/n";
  Finding warn;
  warn.kind = FindingKind::kZeroSizeRegion;
  warn.severity = FindingSeverity::kWarning;
  warn.subject = "/n";
  std::string json = report_json({err, warn});
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\": 1"), std::string::npos);
}

TEST(Report, EmptyFindings) {
  EXPECT_EQ(to_json({}), "[]");
  EXPECT_NE(report_json({}).find("\"errors\": 0"), std::string::npos);
}

}  // namespace
}  // namespace llhsc::checkers

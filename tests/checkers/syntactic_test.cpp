// Syntactic checker tests — paper §IV-B / E6. Parameterized over both
// solver backends.
#include "checkers/syntactic.hpp"

#include <gtest/gtest.h>

#include "dts/parser.hpp"
#include "schema/builtin_schemas.hpp"
#include "schema/yaml_lite.hpp"

namespace llhsc::checkers {
namespace {

std::unique_ptr<dts::Tree> parse_ok(std::string_view src) {
  support::DiagnosticEngine de;
  auto t = dts::parse_dts(src, "t.dts", de);
  EXPECT_FALSE(de.has_errors()) << de.render();
  return t;
}

class SyntacticTest : public ::testing::TestWithParam<smt::Backend> {
 protected:
  schema::SchemaSet schemas = schema::builtin_schemas();
  Findings check(const dts::Tree& tree) {
    SyntacticChecker checker(schemas, GetParam());
    return checker.check(tree);
  }
};

// E6: Listing 5 — a well-formed memory node passes.
TEST_P(SyntacticTest, ValidMemoryNodePasses) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <2>;
    #size-cells = <2>;
    memory@40000000 {
        device_type = "memory";
        reg = <0x0 0x40000000 0x0 0x20000000 0x0 0x60000000 0x0 0x20000000>;
    };
};
)");
  Findings f = check(*tree);
  EXPECT_EQ(error_count(f), 0u) << render(f);
}

TEST_P(SyntacticTest, MissingRequiredPropertyFlagged) {
  auto tree = parse_ok(R"(
/ {
    memory@40000000 { device_type = "memory"; };
};
)");
  Findings f = check(*tree);
  ASSERT_TRUE(contains(f, FindingKind::kMissingRequired)) << render(f);
  for (const Finding& finding : f) {
    if (finding.kind == FindingKind::kMissingRequired) {
      EXPECT_EQ(finding.property, "reg");
      EXPECT_EQ(finding.subject, "/memory@40000000");
    }
  }
}

// E6: constraint (1) — device_type must be the constant "memory".
TEST_P(SyntacticTest, ConstMismatchFlagged) {
  auto tree = parse_ok(R"(
/ {
    memory@40000000 { device_type = "ram"; reg = <0x0 0x1000 0x0 0x100>; };
};
)");
  Findings f = check(*tree);
  EXPECT_TRUE(contains(f, FindingKind::kConstMismatch)) << render(f);
}

TEST_P(SyntacticTest, EnumViolationFlagged) {
  auto tree = parse_ok(R"(
/ {
    cpus {
        #address-cells = <1>;
        #size-cells = <0>;
        cpu@0 {
            compatible = "intel,i486";
            device_type = "cpu";
            reg = <0>;
        };
    };
};
)");
  Findings f = check(*tree);
  EXPECT_TRUE(contains(f, FindingKind::kEnumViolation)) << render(f);
}

// The paper's §I-A reg-shape rule: "each sub-array must have size 4" when
// #address-cells = #size-cells = 2.
TEST_P(SyntacticTest, RegShapeRuleAcceptsMultiples) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <2>;
    #size-cells = <2>;
    memory@40000000 {
        device_type = "memory";
        reg = <0x0 0x40000000 0x0 0x20000000>;
    };
};
)");
  Findings f = check(*tree);
  EXPECT_EQ(error_count(f), 0u) << render(f);
}

TEST_P(SyntacticTest, RegShapeRuleRejectsPartialEntry) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <2>;
    #size-cells = <2>;
    memory@40000000 {
        device_type = "memory";
        reg = <0x0 0x40000000 0x0 0x20000000 0x0 0x60000000>;
    };
};
)");
  Findings f = check(*tree);
  EXPECT_TRUE(contains(f, FindingKind::kRegShapeViolation)) << render(f);
}

TEST_P(SyntacticTest, RegShapeRuleRejectsEmptyReg) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    memory@40000000 { device_type = "memory"; reg = <>; };
};
)");
  Findings f = check(*tree);
  EXPECT_TRUE(contains(f, FindingKind::kRegShapeViolation) ||
              contains(f, FindingKind::kItemCountViolation))
      << render(f);
}

// The §IV-C setup seen purely syntactically: after truncation to 1/1 cells
// the 8-cell reg is STILL shape-valid ("dt-schema assumes that any multiple
// ... is valid") — the syntactic checker must NOT flag it.
TEST_P(SyntacticTest, TruncatedAddressingPassesSyntactically) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    memory@40000000 {
        device_type = "memory";
        reg = <0x0 0x40000000 0x0 0x20000000 0x0 0x60000000 0x0 0x20000000>;
    };
};
)");
  Findings f = check(*tree);
  EXPECT_EQ(error_count(f), 0u)
      << "dt-schema-style checks accept any multiple of the stride: "
      << render(f);
}

TEST_P(SyntacticTest, ItemCountViolationFlagged) {
  // cpu reg must have exactly 1 entry.
  auto tree = parse_ok(R"(
/ {
    cpus {
        #address-cells = <1>;
        #size-cells = <0>;
        cpu@0 {
            compatible = "arm,cortex-a53";
            device_type = "cpu";
            reg = <0 1 2>;
        };
    };
};
)");
  Findings f = check(*tree);
  EXPECT_TRUE(contains(f, FindingKind::kItemCountViolation)) << render(f);
}

TEST_P(SyntacticTest, TypeMismatchFlagged) {
  auto tree = parse_ok(R"(
/ {
    memory@40000000 { device_type = <1>; reg = <0x0 0x1000 0x0 0x10>; };
};
)");
  Findings f = check(*tree);
  EXPECT_TRUE(contains(f, FindingKind::kTypeMismatch)) << render(f);
}

TEST_P(SyntacticTest, ChildRuleMinCount) {
  auto tree = parse_ok(R"(
/ {
    cpus { #address-cells = <1>; #size-cells = <0>; };
};
)");
  Findings f = check(*tree);
  EXPECT_TRUE(contains(f, FindingKind::kChildRuleViolation)) << render(f);
}

TEST_P(SyntacticTest, CpusConstCellsChecked) {
  auto tree = parse_ok(R"(
/ {
    cpus {
        #address-cells = <2>;
        #size-cells = <0>;
        cpu@0 { compatible = "arm,cortex-a53"; device_type = "cpu"; reg = <0>; };
    };
};
)");
  Findings f = check(*tree);
  EXPECT_TRUE(contains(f, FindingKind::kConstMismatch)) << render(f);
}

TEST_P(SyntacticTest, VethBindingChecked) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    vEthernet {
        veth0@80000000 {
            compatible = "veth";
            reg = <0x80000000 0x10000000>;
            id = <7>;
        };
    };
};
)");
  Findings f = check(*tree);
  // id = 7 outside enum {0,1,2,3}.
  EXPECT_TRUE(contains(f, FindingKind::kEnumViolation)) << render(f);
}

TEST_P(SyntacticTest, FindingsCarryDeltaProvenance) {
  auto tree = parse_ok(R"(
/ {
    memory@40000000 { device_type = "ram"; reg = <0x0 0x1 0x0 0x1>; };
};
)");
  dts::Node* mem = tree->find("/memory@40000000");
  mem->find_property("device_type")->provenance = "d9";
  Findings f = check(*tree);
  ASSERT_TRUE(contains(f, FindingKind::kConstMismatch));
  for (const Finding& finding : f) {
    if (finding.kind == FindingKind::kConstMismatch) {
      EXPECT_EQ(finding.delta, "d9");
    }
  }
}

TEST_P(SyntacticTest, UnmatchedNodeWarningOptIn) {
  auto tree = parse_ok("/ { mystery@1 { weird = <1>; }; };");
  SyntacticOptions opts;
  opts.warn_unmatched_nodes = true;
  SyntacticChecker checker(schemas, GetParam(), opts);
  Findings f = checker.check(*tree);
  EXPECT_TRUE(contains(f, FindingKind::kNoSchema));
  EXPECT_EQ(error_count(f), 0u) << "kNoSchema is a warning";
  // Default: no warning.
  Findings f2 = check(*tree);
  EXPECT_FALSE(contains(f2, FindingKind::kNoSchema));
}

TEST_P(SyntacticTest, AdditionalPropertiesEnforced) {
  schema::SchemaSet strict;
  schema::PropertySchema reg;
  reg.name = "reg";
  strict.add(schema::SchemaBuilder("strict")
                 .select_node_name("gadget@*")
                 .property(std::move(reg))
                 .no_additional_properties()
                 .build());
  auto tree = parse_ok("/ { gadget@1 { reg = <1 2>; rogue = <3>; }; };");
  SyntacticChecker checker(strict, GetParam());
  Findings f = checker.check(*tree);
  ASSERT_TRUE(contains(f, FindingKind::kUnknownProperty)) << render(f);
  for (const Finding& finding : f) {
    if (finding.kind == FindingKind::kUnknownProperty) {
      EXPECT_EQ(finding.property, "rogue");
    }
  }
}

TEST_P(SyntacticTest, MinimumMaximumCellBounds) {
  // Manufacturer-range constraints (§II-A): clock frequencies etc.
  schema::SchemaSet set;
  schema::PropertySchema clk;
  clk.name = "clock-frequency";
  clk.type = schema::PropertyType::kCells;
  clk.minimum = 1000000;    // 1 MHz
  clk.maximum = 100000000;  // 100 MHz
  set.add(schema::SchemaBuilder("clocked")
              .select_node_name("osc@*")
              .property(std::move(clk))
              .no_reg_shape_check()
              .build());

  auto good = parse_ok("/ { osc@1 { clock-frequency = <24000000>; }; };");
  auto too_low = parse_ok("/ { osc@1 { clock-frequency = <1000>; }; };");
  auto too_high = parse_ok("/ { osc@1 { clock-frequency = <0x10000000>; }; };");

  SyntacticChecker checker(set, GetParam());
  EXPECT_EQ(error_count(checker.check(*good)), 0u);
  EXPECT_TRUE(contains(checker.check(*too_low), FindingKind::kEnumViolation));
  EXPECT_TRUE(contains(checker.check(*too_high), FindingKind::kEnumViolation));
}

TEST_P(SyntacticTest, MinimumMaximumFromYaml) {
  const char* yaml = R"($id: clocked
select:
  nodeName: "osc@*"
properties:
  clock-frequency:
    type: cells
    minimum: 1000000
    maximum: 100000000
regShapeCheck: false
)";
  support::DiagnosticEngine de;
  schema::SchemaSet set;
  ASSERT_EQ(schema::load_schema_stream(yaml, set, de), 1u) << de.render();
  auto bad = parse_ok("/ { osc@1 { clock-frequency = <5>; }; };");
  SyntacticChecker checker(set, GetParam());
  EXPECT_TRUE(contains(checker.check(*bad), FindingKind::kEnumViolation));
}

TEST_P(SyntacticTest, SolverIsActuallyConsulted) {
  auto tree = parse_ok(R"(
/ {
    memory@40000000 { device_type = "memory"; reg = <0x0 0x1000 0x0 0x10>; };
};
)");
  SyntacticChecker checker(schemas, GetParam());
  (void)checker.check(*tree);
  EXPECT_GT(checker.solver_checks(), 0u)
      << "the checker must discharge constraints through the solver";
}

INSTANTIATE_TEST_SUITE_P(Backends, SyntacticTest,
                         ::testing::ValuesIn(smt::all_backends()),
                         [](const ::testing::TestParamInfo<smt::Backend>& info) {
                           return std::string(smt::to_string(info.param));
                         });

}  // namespace
}  // namespace llhsc::checkers

// The public API surface, exercised exactly as an external embedder would:
// only <api/llhsc.hpp> is included (tools/check_api_includes.sh pins the
// include graph to std-only), version macros gate compilation, error codes
// round-trip through their wire names, and the check/session entry points
// honour the byte-identity and incrementality contracts of docs/api.md.
#include "api/llhsc.hpp"

#include <gtest/gtest.h>

namespace llhsc::api {
namespace {

static_assert(LLHSC_API_VERSION == 200,
              "this test suite pins API generation 2.0");
static_assert(LLHSC_API_VERSION_MAJOR == 2 && LLHSC_API_VERSION_MINOR == 0);
#if LLHSC_API_VERSION < 200
#error "the composite macro must be usable in preprocessor conditionals"
#endif

constexpr const char* kCleanBoard = R"(/dts-v1/;
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    memory@40000000 { device_type = "memory"; reg = <0x40000000 0x1000000>; };
    uart0: uart@20000000 { compatible = "ns16550a"; reg = <0x20000000 0x1000>; };
};
)";

constexpr const char* kClashingBoard = R"(/dts-v1/;
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    memory@40000000 { device_type = "memory"; reg = <0x40000000 0x1000000>; };
    uart@40000000 { compatible = "ns16550a"; reg = <0x40000000 0x1000>; };
};
)";

CheckRequest board_request(const char* source) {
  CheckRequest request;
  request.path = "board.dts";
  request.source = source;
  return request;
}

TEST(ApiSurface, ErrorCodesRoundTripTheirWireNames) {
  const ErrorCode all[] = {
      ErrorCode::kOk,           ErrorCode::kFindings,
      ErrorCode::kUsage,        ErrorCode::kBadRequest,
      ErrorCode::kTooLarge,     ErrorCode::kOverloaded,
      ErrorCode::kQuotaExceeded, ErrorCode::kShuttingDown,
      ErrorCode::kDeadlineExceeded, ErrorCode::kWorkerFailed,
  };
  for (ErrorCode code : all) {
    EXPECT_EQ(error_code_from_wire(error_code_name(code)), code)
        << error_code_name(code);
  }
  // Unknown wire strings classify conservatively as caller error.
  EXPECT_EQ(error_code_from_wire("no_such_code"), ErrorCode::kUsage);

  EXPECT_EQ(exit_code_of(ErrorCode::kOk), 0);
  EXPECT_EQ(exit_code_of(ErrorCode::kFindings), 1);
  EXPECT_EQ(exit_code_of(ErrorCode::kUsage), 2);
  EXPECT_EQ(exit_code_of(ErrorCode::kWorkerFailed), 2);
  EXPECT_EQ(error_code_of_exit(0), ErrorCode::kOk);
  EXPECT_EQ(error_code_of_exit(1), ErrorCode::kFindings);
  EXPECT_EQ(error_code_of_exit(2), ErrorCode::kUsage);
}

TEST(ApiSurface, RunCheckVerdictsAndStatusClassification) {
  CheckResult clean = run_check(board_request(kCleanBoard));
  EXPECT_EQ(clean.exit_code, 0) << clean.error_text;
  EXPECT_EQ(clean.status, ErrorCode::kOk);
  EXPECT_EQ(clean.errors, 0u);
  EXPECT_FALSE(clean.output.empty());

  CheckResult clash = run_check(board_request(kClashingBoard));
  EXPECT_EQ(clash.exit_code, 1) << clash.output;
  EXPECT_EQ(clash.status, ErrorCode::kFindings);
  EXPECT_GT(clash.errors, 0u) << "the uart/memory overlap must surface";
}

TEST(ApiSurface, CheckStoreTurnsRepeatsIntoHitsWithIdenticalBytes) {
  CheckResult oneshot = run_check(board_request(kCleanBoard));

  CheckStore store;
  CheckResult cold = run_check(board_request(kCleanBoard), store);
  EXPECT_FALSE(cold.trace.check_cache_hit);
  CheckResult warm = run_check(board_request(kCleanBoard), store);
  EXPECT_TRUE(warm.trace.tree_cache_hit);
  EXPECT_TRUE(warm.trace.check_cache_hit);

  // The store is an accelerator, never a different checker.
  EXPECT_EQ(cold.output, oneshot.output);
  EXPECT_EQ(warm.output, oneshot.output);
  EXPECT_EQ(warm.exit_code, oneshot.exit_code);
  EXPECT_EQ(warm.error_text, oneshot.error_text);

  StoreStats stats = store.stats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.unit_checks, 1u);
  EXPECT_EQ(stats.unit_checks, 1u) << "the warm run must not re-check";
}

TEST(ApiSurface, RunSessionReportsIncrementalCost) {
  SessionRequest request;
  request.core_source = kCleanBoard;
  request.core_name = "core.dts";
  request.deltas_source =
      "delta da when fa {\n"
      "    modifies uart@20000000 { clock-frequency = <1000000>; }\n"
      "}\n";
  request.deltas_name = "t.deltas";
  request.products.push_back({"pa", {"fa"}});

  CheckStore store;
  SessionResult cold = run_session(request, store);
  EXPECT_EQ(cold.exit_code, 0) << cold.error_text;
  EXPECT_EQ(cold.status, ErrorCode::kOk);
  ASSERT_EQ(cold.units.size(), 1u);
  EXPECT_EQ(cold.units[0].name, "pa");
  EXPECT_EQ(cold.cost.derives, 1u);
  EXPECT_EQ(cold.cost.unit_checks, 1u);

  SessionResult warm = run_session(request, store);
  EXPECT_EQ(warm.exit_code, 0) << warm.error_text;
  ASSERT_EQ(warm.units.size(), 1u);
  EXPECT_TRUE(warm.units[0].composed_cache_hit);
  EXPECT_TRUE(warm.units[0].check_cache_hit);
  EXPECT_EQ(warm.cost.derives, 0u) << "warm session must not re-derive";
  EXPECT_EQ(warm.cost.unit_checks, 0u);
  EXPECT_EQ(warm.units[0].report, cold.units[0].report);
}

TEST(ApiSurface, ProtocolVersionMatchesTheApiGeneration) {
  EXPECT_EQ(protocol_version(), 2);
  EXPECT_EQ(protocol_version(), LLHSC_API_VERSION_MAJOR);
}

}  // namespace
}  // namespace llhsc::api

#include "dts/tree.hpp"

#include <gtest/gtest.h>

namespace llhsc::dts {
namespace {

TEST(Property, TypedConstructorsAndReaders) {
  Property b = Property::boolean("flag");
  EXPECT_TRUE(b.is_boolean());

  Property c = Property::cells("reg", {0x40000000, 0x20000000});
  auto cells = c.as_cells();
  ASSERT_TRUE(cells.has_value());
  EXPECT_EQ(*cells, (std::vector<uint64_t>{0x40000000, 0x20000000}));
  EXPECT_FALSE(c.as_string().has_value());

  Property s = Property::string("device_type", "memory");
  EXPECT_EQ(s.as_string(), "memory");
  EXPECT_FALSE(s.as_cells().has_value());

  Property sl = Property::strings("compatible", {"a,b", "c"});
  EXPECT_EQ(sl.as_string_list(), (std::vector<std::string>{"a,b", "c"}));
  EXPECT_FALSE(sl.as_string().has_value()) << "two strings are not one string";

  Property u = Property::cells("#address-cells", {2});
  EXPECT_EQ(u.as_u32(), 2u);
  Property too_many = Property::cells("x", {1, 2});
  EXPECT_FALSE(too_many.as_u32().has_value());
  Property too_big = Property::cells("x", {0x1'0000'0000ull});
  EXPECT_FALSE(too_big.as_u32().has_value());
}

TEST(Node, BaseNameAndUnitAddress) {
  Node n("memory@40000000");
  EXPECT_EQ(n.base_name(), "memory");
  EXPECT_EQ(n.unit_address(), "40000000");
  Node plain("cpus");
  EXPECT_EQ(plain.base_name(), "cpus");
  EXPECT_TRUE(plain.unit_address().empty());
}

TEST(Node, PropertySetReplaceRemove) {
  Node n("n");
  n.set_property(Property::cells("a", {1}));
  n.set_property(Property::cells("a", {2}));
  EXPECT_EQ(n.properties().size(), 1u);
  EXPECT_EQ(n.find_property("a")->as_u32(), 2u);
  EXPECT_TRUE(n.remove_property("a"));
  EXPECT_FALSE(n.remove_property("a"));
  EXPECT_EQ(n.find_property("a"), nullptr);
}

TEST(Node, ChildManagement) {
  Node n("parent");
  n.add_child(std::make_unique<Node>("child@0"));
  n.get_or_create_child("child@1");
  n.get_or_create_child("child@1");  // idempotent
  EXPECT_EQ(n.children().size(), 2u);
  EXPECT_NE(n.find_child("child@0"), nullptr);
  EXPECT_EQ(n.find_child("child"), nullptr);
  // Fuzzy lookup by base name is ambiguous here.
  EXPECT_EQ(n.find_child_fuzzy("child"), nullptr);
  EXPECT_TRUE(n.remove_child("child@0"));
  EXPECT_EQ(n.find_child_fuzzy("child"), n.find_child("child@1"));
}

TEST(Node, MergePropertiesChildrenLabels) {
  Node a("n");
  a.set_property(Property::cells("p", {1}));
  a.get_or_create_child("kid").set_property(Property::cells("x", {10}));
  a.add_label("l1");

  Node b("n");
  b.set_property(Property::cells("p", {2}));
  b.set_property(Property::cells("q", {3}));
  Node& bkid = b.get_or_create_child("kid");
  bkid.set_property(Property::cells("y", {20}));
  b.add_label("l2");

  a.merge_from(std::move(b));
  EXPECT_EQ(a.find_property("p")->as_u32(), 2u);
  EXPECT_EQ(a.find_property("q")->as_u32(), 3u);
  Node* kid = a.find_child("kid");
  ASSERT_NE(kid, nullptr);
  EXPECT_EQ(kid->find_property("x")->as_u32(), 10u);
  EXPECT_EQ(kid->find_property("y")->as_u32(), 20u);
  EXPECT_EQ(a.labels(), (std::vector<support::Atom>{"l1", "l2"}));
  EXPECT_EQ(a.children().size(), 1u);
}

TEST(Node, CloneIsDeep) {
  Node n("root");
  n.set_property(Property::cells("p", {1}));
  n.get_or_create_child("kid").set_property(Property::string("s", "v"));
  n.set_provenance("d1");
  auto copy = n.clone();
  // Mutating the copy must not affect the original.
  copy->find_child("kid")->set_property(Property::string("s", "changed"));
  copy->set_property(Property::cells("p", {9}));
  EXPECT_EQ(n.find_child("kid")->find_property("s")->as_string(), "v");
  EXPECT_EQ(n.find_property("p")->as_u32(), 1u);
  EXPECT_EQ(copy->provenance(), "d1");
}

TEST(Node, CellDefaults) {
  Node n("n");
  EXPECT_EQ(n.address_cells_or_default(), 2u);
  EXPECT_EQ(n.size_cells_or_default(), 1u);
  n.set_property(Property::cells("#address-cells", {1}));
  n.set_property(Property::cells("#size-cells", {0}));
  EXPECT_EQ(n.address_cells_or_default(), 1u);
  EXPECT_EQ(n.size_cells_or_default(), 0u);
}

TEST(Tree, FindPaths) {
  Tree t;
  Node& cpus = t.root().get_or_create_child("cpus");
  cpus.get_or_create_child("cpu@0");
  t.root().get_or_create_child("memory@40000000");

  EXPECT_EQ(t.find("/"), &t.root());
  EXPECT_EQ(t.find("/cpus"), &cpus);
  EXPECT_NE(t.find("/cpus/cpu@0"), nullptr);
  EXPECT_NE(t.find("/memory"), nullptr) << "base-name fallback";
  EXPECT_EQ(t.find("/nope"), nullptr);
  EXPECT_EQ(t.find("relative"), nullptr);
  EXPECT_EQ(t.find(""), nullptr);
}

TEST(Tree, PathOf) {
  Tree t;
  Node& cpu0 = t.root().get_or_create_child("cpus").get_or_create_child("cpu@0");
  EXPECT_EQ(t.path_of(cpu0), "/cpus/cpu@0");
  EXPECT_EQ(t.path_of(t.root()), "/");
  Node orphan("x");
  EXPECT_EQ(t.path_of(orphan), "");
}

TEST(Tree, VisitIsPreOrder) {
  Tree t;
  t.root().get_or_create_child("a").get_or_create_child("b");
  t.root().get_or_create_child("c");
  std::vector<std::string> paths;
  t.visit([&](const std::string& p, const Node&) { paths.push_back(p); });
  EXPECT_EQ(paths, (std::vector<std::string>{"/", "/a", "/a/b", "/c"}));
}

TEST(Tree, NodeCount) {
  Tree t;
  EXPECT_EQ(t.node_count(), 1u);
  t.root().get_or_create_child("a").get_or_create_child("b");
  t.root().get_or_create_child("c");
  EXPECT_EQ(t.node_count(), 4u);
}

TEST(Tree, CloneIndependence) {
  Tree t;
  t.root().get_or_create_child("n").set_property(Property::cells("v", {1}));
  t.memreserves().push_back({0x1000, 0x100});
  auto copy = t.clone();
  copy->find("/n")->set_property(Property::cells("v", {2}));
  EXPECT_EQ(t.find("/n")->find_property("v")->as_u32(), 1u);
  EXPECT_EQ(copy->memreserves().size(), 1u);
}

TEST(Tree, ResolveReferencesAssignsUniquePhandles) {
  Tree t;
  Node& a = t.root().get_or_create_child("a");
  a.add_label("la");
  Node& b = t.root().get_or_create_child("b");
  b.add_label("lb");
  Node& user = t.root().get_or_create_child("user");
  Property p;
  p.name = "link";
  p.chunks.push_back(Chunk::make_cells(
      {Cell::reference("la"), Cell::reference("lb"), Cell::reference("la")}));
  user.set_property(std::move(p));

  support::DiagnosticEngine de;
  ASSERT_TRUE(t.resolve_references(de)) << de.render();
  auto pa = a.find_property("phandle");
  auto pb = b.find_property("phandle");
  ASSERT_NE(pa, nullptr);
  ASSERT_NE(pb, nullptr);
  EXPECT_NE(pa->as_u32(), pb->as_u32());
  auto cells = user.find_property("link")->as_cells();
  ASSERT_TRUE(cells.has_value());
  EXPECT_EQ((*cells)[0], *pa->as_u32());
  EXPECT_EQ((*cells)[1], *pb->as_u32());
  EXPECT_EQ((*cells)[2], *pa->as_u32()) << "same label, same phandle";
}

TEST(Tree, ResolveRefChunkExpandsToPath) {
  Tree t;
  Node& target = t.root().get_or_create_child("soc").get_or_create_child("uart@0");
  target.add_label("u0");
  Node& aliases = t.root().get_or_create_child("aliases");
  Property p;
  p.name = "serial0";
  p.chunks.push_back(Chunk::make_ref("u0"));
  aliases.set_property(std::move(p));

  support::DiagnosticEngine de;
  ASSERT_TRUE(t.resolve_references(de));
  EXPECT_EQ(aliases.find_property("serial0")->as_string(), "/soc/uart@0");
}

TEST(Tree, ResolveRespectsExistingPhandles) {
  Tree t;
  Node& a = t.root().get_or_create_child("a");
  a.add_label("la");
  a.set_property(Property::cells("phandle", {7}));
  Node& b = t.root().get_or_create_child("b");
  b.add_label("lb");
  Node& user = t.root().get_or_create_child("user");
  Property p;
  p.name = "link";
  p.chunks.push_back(
      Chunk::make_cells({Cell::reference("la"), Cell::reference("lb")}));
  user.set_property(std::move(p));

  support::DiagnosticEngine de;
  ASSERT_TRUE(t.resolve_references(de));
  auto cells = user.find_property("link")->as_cells();
  EXPECT_EQ((*cells)[0], 7u);
  EXPECT_NE((*cells)[1], 7u) << "fresh phandle must not collide";
}

TEST(Tree, ResolveDiagnosesDuplicateExplicitPhandles) {
  Tree t;
  t.root().get_or_create_child("a").set_property(
      Property::cells("phandle", {7}));
  t.root().get_or_create_child("b").set_property(
      Property::cells("phandle", {7}));

  support::DiagnosticEngine de;
  EXPECT_FALSE(t.resolve_references(de));
  EXPECT_TRUE(de.contains_code("dts-duplicate-phandle")) << de.render();
}

TEST(Tree, ResolveDiagnosesMalformedPhandleWithoutOverwriting) {
  Tree t;
  Node& a = t.root().get_or_create_child("a");
  a.add_label("la");
  a.set_property(Property::strings("phandle", {"nope"}));
  Node& user = t.root().get_or_create_child("user");
  Property p;
  p.name = "link";
  p.chunks.push_back(Chunk::make_cells({Cell::reference("la")}));
  user.set_property(std::move(p));

  support::DiagnosticEngine de;
  EXPECT_FALSE(t.resolve_references(de));
  EXPECT_TRUE(de.contains_code("dts-bad-phandle")) << de.render();
  EXPECT_EQ(a.find_property("phandle")->as_string(), "nope")
      << "assignment must not silently replace a malformed phandle";
}

TEST(Tree, AutoAssignmentSkipsExplicitValues) {
  // A gap-filling assignment must never alias an explicit phandle, even one
  // larger than the running counter.
  Tree t;
  Node& a = t.root().get_or_create_child("a");
  a.add_label("la");
  Node& taken = t.root().get_or_create_child("taken");
  taken.set_property(Property::cells("phandle", {1}));
  Node& user = t.root().get_or_create_child("user");
  Property p;
  p.name = "link";
  p.chunks.push_back(Chunk::make_cells({Cell::reference("la")}));
  user.set_property(std::move(p));

  support::DiagnosticEngine de;
  ASSERT_TRUE(t.resolve_references(de));
  auto assigned = a.find_property("phandle")->as_u32();
  ASSERT_TRUE(assigned.has_value());
  EXPECT_NE(*assigned, 1u) << "value 1 is explicitly taken";
}

}  // namespace
}  // namespace llhsc::dts

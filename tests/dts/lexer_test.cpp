#include "dts/lexer.hpp"

#include "dts/parser.hpp"

#include <gtest/gtest.h>

namespace llhsc::dts {
namespace {

std::vector<Token> lex(std::string_view src, support::DiagnosticEngine& de) {
  Lexer lexer(src, "test.dts", de);
  auto tokens = lexer.tokenize_all();
  tokens.pop_back();  // drop kEnd
  return tokens;
}

std::vector<Token> lex_ok(std::string_view src) {
  support::DiagnosticEngine de;
  auto tokens = lex(src, de);
  EXPECT_FALSE(de.has_errors()) << de.render();
  return tokens;
}

TEST(Lexer, Punctuation) {
  auto toks = lex_ok("{ } ; = , [ ] ( )");
  ASSERT_EQ(toks.size(), 9u);
  EXPECT_EQ(toks[0].kind, TokenKind::kLBrace);
  EXPECT_EQ(toks[1].kind, TokenKind::kRBrace);
  EXPECT_EQ(toks[2].kind, TokenKind::kSemi);
  EXPECT_EQ(toks[3].kind, TokenKind::kEquals);
  EXPECT_EQ(toks[4].kind, TokenKind::kComma);
  EXPECT_EQ(toks[5].kind, TokenKind::kLBracket);
  EXPECT_EQ(toks[6].kind, TokenKind::kRBracket);
  EXPECT_EQ(toks[7].kind, TokenKind::kLParen);
  EXPECT_EQ(toks[8].kind, TokenKind::kRParen);
}

TEST(Lexer, Identifiers) {
  auto toks = lex_ok("memory@40000000 #address-cells device_type cpu@0");
  ASSERT_EQ(toks.size(), 4u);
  for (const auto& t : toks) EXPECT_EQ(t.kind, TokenKind::kIdent);
  EXPECT_EQ(toks[0].text, "memory@40000000");
  EXPECT_EQ(toks[1].text, "#address-cells");
  EXPECT_EQ(toks[2].text, "device_type");
  EXPECT_EQ(toks[3].text, "cpu@0");
}

TEST(Lexer, Integers) {
  auto toks = lex_ok("42 0x2A 0x40000000 0");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].value, 42u);
  EXPECT_EQ(toks[1].value, 42u);
  EXPECT_EQ(toks[2].value, 0x40000000u);
  EXPECT_EQ(toks[3].value, 0u);
}

TEST(Lexer, Strings) {
  auto toks = lex_ok(R"("arm,cortex-a53" "with \"escape\"" "tab\there")");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].kind, TokenKind::kString);
  EXPECT_EQ(toks[0].text, "arm,cortex-a53");
  EXPECT_EQ(toks[1].text, "with \"escape\"");
  EXPECT_EQ(toks[2].text, "tab\there");
}

TEST(Lexer, LabelsAndRefs) {
  auto toks = lex_ok("uart0: serial@20000000 { }; &uart0");
  ASSERT_GE(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, TokenKind::kLabel);
  EXPECT_EQ(toks[0].text, "uart0");
  EXPECT_EQ(toks[1].kind, TokenKind::kIdent);
  EXPECT_EQ(toks.back().kind, TokenKind::kRef);
  EXPECT_EQ(toks.back().text, "uart0");
}

TEST(Lexer, PathReference) {
  auto toks = lex_ok("&{/cpus/cpu@0}");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokenKind::kRef);
  EXPECT_EQ(toks[0].text, "/cpus/cpu@0");
}

TEST(Lexer, Directives) {
  auto toks = lex_ok("/dts-v1/; /memreserve/ 0x0 0x1000;");
  EXPECT_EQ(toks[0].kind, TokenKind::kDirective);
  EXPECT_EQ(toks[0].text, "dts-v1");
  EXPECT_EQ(toks[2].kind, TokenKind::kDirective);
  EXPECT_EQ(toks[2].text, "memreserve");
}

TEST(Lexer, IncludeSplicesTokens) {
  // /include/ is resolved inside the lexer: tokens from the included buffer
  // appear inline, then lexing resumes in the including file.
  SourceManager sm;
  sm.register_file("mid.dtsi", "b c");
  support::DiagnosticEngine de;
  Lexer lexer("a /include/ \"mid.dtsi\" d", "top.dts", de, &sm);
  std::vector<std::string> texts;
  std::vector<std::string> files;
  while (true) {
    Token t = lexer.next();
    if (t.kind == TokenKind::kEnd) break;
    texts.push_back(t.text.str());
    files.push_back(t.location.file.str());
  }
  EXPECT_FALSE(de.has_errors()) << de.render();
  EXPECT_EQ(texts, (std::vector<std::string>{"a", "b", "c", "d"}));
  EXPECT_EQ(files, (std::vector<std::string>{"top.dts", "mid.dtsi",
                                             "mid.dtsi", "top.dts"}));
}

TEST(Lexer, IncludeWithoutSourceManagerIsError) {
  support::DiagnosticEngine de;
  Lexer lexer("/include/ \"x.dtsi\" after", "top.dts", de);
  EXPECT_EQ(lexer.next().text, "after");
  EXPECT_TRUE(de.contains_code("dts-include"));
}

TEST(Lexer, RootSlashVsDirective) {
  auto toks = lex_ok("/ { };");
  EXPECT_EQ(toks[0].kind, TokenKind::kSlash);
}

TEST(Lexer, CommentsAreSkipped) {
  auto toks = lex_ok(
      "// line comment\n"
      "a /* block\n comment */ b");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, UnterminatedCommentReportsError) {
  support::DiagnosticEngine de;
  lex("a /* never closed", de);
  EXPECT_TRUE(de.has_errors());
  EXPECT_TRUE(de.contains_code("dts-lex"));
}

TEST(Lexer, UnterminatedStringReportsError) {
  support::DiagnosticEngine de;
  lex("\"never closed", de);
  EXPECT_TRUE(de.has_errors());
}

TEST(Lexer, UnterminatedCommentAnchorsAtOpeningDelimiter) {
  // The error must point at the '/*' (line 2, column 3), never one past the
  // end of the buffer, and a note must flag the comment as never closed.
  support::DiagnosticEngine de;
  lex("a\n  /* opened\nbut never closed", de);
  ASSERT_TRUE(de.has_errors());
  const support::Diagnostic* error = nullptr;
  bool note_seen = false;
  for (const auto& d : de.diagnostics()) {
    if (d.severity == support::Severity::kError) error = &d;
    if (d.severity == support::Severity::kNote &&
        d.message.find("never closed") != std::string::npos) {
      note_seen = true;
    }
  }
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->message, "unterminated block comment");
  EXPECT_EQ(error->location.line, 2u);
  EXPECT_EQ(error->location.column, 3u);
  EXPECT_TRUE(note_seen);
}

TEST(Lexer, UnterminatedStringAnchorsAtOpeningQuote) {
  support::DiagnosticEngine de;
  lex("x = \"runs off the end", de);
  ASSERT_TRUE(de.has_errors());
  const support::Diagnostic* error = nullptr;
  bool note_seen = false;
  for (const auto& d : de.diagnostics()) {
    if (d.severity == support::Severity::kError) error = &d;
    if (d.severity == support::Severity::kNote &&
        d.message.find("never closed") != std::string::npos) {
      note_seen = true;
    }
  }
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->message, "unterminated string literal");
  EXPECT_EQ(error->location.line, 1u);
  EXPECT_EQ(error->location.column, 5u);
  EXPECT_TRUE(note_seen);
}

TEST(Lexer, UnterminatedStringWithTrailingBackslashAtEof) {
  // A dangling escape at EOF must not read past the buffer or loop forever.
  support::DiagnosticEngine de;
  lex("\"ends with escape\\", de);
  EXPECT_TRUE(de.has_errors());
  EXPECT_TRUE(de.contains_code("dts-lex"));
}

TEST(Lexer, AngleBracketsAndShifts) {
  auto toks = lex_ok("< > << >>");
  EXPECT_EQ(toks[0].kind, TokenKind::kLAngle);
  EXPECT_EQ(toks[1].kind, TokenKind::kRAngle);
  EXPECT_EQ(toks[2].kind, TokenKind::kArith);
  EXPECT_EQ(toks[2].text, "<<");
  EXPECT_EQ(toks[3].kind, TokenKind::kArith);
  EXPECT_EQ(toks[3].text, ">>");
}

TEST(Lexer, LocationsTrackLinesAndColumns) {
  auto toks = lex_ok("a\n  b");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].location.line, 1u);
  EXPECT_EQ(toks[0].location.column, 1u);
  EXPECT_EQ(toks[1].location.line, 2u);
  EXPECT_EQ(toks[1].location.column, 3u);
  EXPECT_EQ(toks[0].location.file, "test.dts");
}

TEST(Lexer, PeekDoesNotConsume) {
  support::DiagnosticEngine de;
  Lexer lexer("a b", "t", de);
  EXPECT_EQ(lexer.peek().text, "a");
  EXPECT_EQ(lexer.peek().text, "a");
  EXPECT_EQ(lexer.next().text, "a");
  EXPECT_EQ(lexer.next().text, "b");
  EXPECT_EQ(lexer.next().kind, TokenKind::kEnd);
  EXPECT_EQ(lexer.next().kind, TokenKind::kEnd) << "kEnd must be sticky";
}

}  // namespace
}  // namespace llhsc::dts

// Overlay round-trip over the real example data: apply enable-uart0.dtso to
// custom-sbc.dts, print the result, re-parse the print, and require the
// re-parsed tree to print identically — printer output must be a fixpoint
// under parse, or generated .dts artifacts would drift on every hop.
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "dts/overlay.hpp"
#include "dts/parser.hpp"
#include "dts/printer.hpp"

namespace llhsc::dts {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(OverlayRoundTrip, EnableUart0OnCustomSbc) {
  const std::string data_dir = LLHSC_EXAMPLES_DATA_DIR;
  const std::string base_text = read_file(data_dir + "/custom-sbc.dts");
  const std::string overlay_text = read_file(data_dir + "/enable-uart0.dtso");

  support::DiagnosticEngine diags;
  SourceManager sources;
  sources.set_base_directory(data_dir);  // resolves /include/ "cpus.dtsi"
  auto base = parse_dts(base_text, "custom-sbc.dts", sources, diags);
  ASSERT_NE(base, nullptr) << diags.render();
  ASSERT_FALSE(diags.has_errors()) << diags.render();

  auto overlay =
      parse_overlay(overlay_text, "enable-uart0.dtso", sources, diags);
  ASSERT_TRUE(overlay.has_value()) << diags.render();
  ASSERT_TRUE(apply_overlay(*base, *overlay, diags)) << diags.render();
  ASSERT_FALSE(diags.has_errors()) << diags.render();

  const std::string printed = print_dts(*base);
  // The overlay's effect must be visible in the printed tree.
  EXPECT_NE(printed.find("status = \"okay\""), std::string::npos);
  EXPECT_NE(printed.find("current-speed"), std::string::npos);

  // Re-parse the print. The printed tree is self-contained (includes were
  // spliced during the first parse), so no base directory is needed.
  support::DiagnosticEngine diags2;
  SourceManager sources2;
  auto reparsed = parse_dts(printed, "roundtrip.dts", sources2, diags2);
  ASSERT_NE(reparsed, nullptr) << diags2.render();
  ASSERT_FALSE(diags2.has_errors()) << diags2.render();

  EXPECT_EQ(print_dts(*reparsed), printed)
      << "print -> parse -> print must be a fixpoint";
}

TEST(OverlayRoundTrip, RepeatedApplicationIsDeterministic) {
  // Two independent apply runs over freshly parsed trees must print the
  // same bytes — overlay application must not depend on allocation order.
  const std::string data_dir = LLHSC_EXAMPLES_DATA_DIR;
  const std::string base_text = read_file(data_dir + "/custom-sbc.dts");
  const std::string overlay_text = read_file(data_dir + "/enable-uart0.dtso");

  auto run = [&]() {
    support::DiagnosticEngine diags;
    SourceManager sources;
    sources.set_base_directory(data_dir);
    auto base = parse_dts(base_text, "custom-sbc.dts", sources, diags);
    EXPECT_NE(base, nullptr) << diags.render();
    auto overlay =
        parse_overlay(overlay_text, "enable-uart0.dtso", sources, diags);
    EXPECT_TRUE(overlay.has_value()) << diags.render();
    EXPECT_TRUE(apply_overlay(*base, *overlay, diags)) << diags.render();
    return print_dts(*base);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace llhsc::dts

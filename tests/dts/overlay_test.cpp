// Overlay tests: both syntaxes, label and path targets, __symbols__
// resolution, provenance stamping, and failure modes.
#include "dts/overlay.hpp"

#include <gtest/gtest.h>

#include "dts/printer.hpp"

namespace llhsc::dts {
namespace {

std::unique_ptr<Tree> base_tree() {
  support::DiagnosticEngine de;
  auto t = parse_dts(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    soc {
        #address-cells = <1>;
        #size-cells = <1>;
        u0: uart@1000 { compatible = "ns16550a"; reg = <0x1000 0x100>;
                        status = "disabled"; };
    };
};
)",
                     "base.dts", de);
  EXPECT_FALSE(de.has_errors()) << de.render();
  return t;
}

std::optional<Overlay> parse_ok(std::string_view src) {
  support::DiagnosticEngine de;
  SourceManager sm;
  auto o = parse_overlay(src, "test.dtso", sm, de);
  EXPECT_FALSE(de.has_errors()) << de.render();
  return o;
}

TEST(Overlay, LabelSugarSyntax) {
  auto overlay = parse_ok(R"(
/dts-v1/;
/plugin/;
&u0 {
    status = "okay";
    current-speed = <115200>;
};
)");
  ASSERT_TRUE(overlay.has_value());
  ASSERT_EQ(overlay->fragments.size(), 1u);
  EXPECT_EQ(overlay->fragments[0].target_label, "u0");

  auto base = base_tree();
  support::DiagnosticEngine de;
  ASSERT_TRUE(apply_overlay(*base, *overlay, de)) << de.render();
  const Node* uart = base->find("/soc/uart@1000");
  EXPECT_EQ(uart->find_property("status")->as_string(), "okay");
  EXPECT_EQ(uart->find_property("current-speed")->as_u32(), 115200u);
  EXPECT_EQ(uart->find_property("status")->provenance, "overlay:test.dtso");
}

TEST(Overlay, ExplicitFragmentSyntaxWithPath) {
  auto overlay = parse_ok(R"(
/dts-v1/;
/plugin/;
/ {
    fragment@0 {
        target-path = "/soc";
        __overlay__ {
            spi@2000 {
                compatible = "vendor,spi";
                reg = <0x2000 0x100>;
            };
        };
    };
};
)");
  ASSERT_TRUE(overlay.has_value());
  ASSERT_EQ(overlay->fragments.size(), 1u);
  EXPECT_EQ(overlay->fragments[0].target_path, "/soc");

  auto base = base_tree();
  support::DiagnosticEngine de;
  ASSERT_TRUE(apply_overlay(*base, *overlay, de)) << de.render();
  const Node* spi = base->find("/soc/spi@2000");
  ASSERT_NE(spi, nullptr);
  EXPECT_EQ(spi->find_property("compatible")->as_string(), "vendor,spi");
  EXPECT_EQ(spi->provenance(), "overlay:test.dtso");
}

TEST(Overlay, ExplicitFragmentWithLabelTarget) {
  auto overlay = parse_ok(R"(
/dts-v1/;
/plugin/;
/ {
    fragment@0 {
        target = <&u0>;
        __overlay__ { status = "okay"; };
    };
};
)");
  ASSERT_TRUE(overlay.has_value());
  EXPECT_EQ(overlay->fragments[0].target_label, "u0");
  auto base = base_tree();
  support::DiagnosticEngine de;
  ASSERT_TRUE(apply_overlay(*base, *overlay, de)) << de.render();
  EXPECT_EQ(base->find("/soc/uart@1000")->find_property("status")->as_string(),
            "okay");
}

TEST(Overlay, MultipleFragmentsApplyInOrder) {
  auto overlay = parse_ok(R"(
/dts-v1/;
/plugin/;
&u0 { status = "okay"; };
/ {
    fragment@0 {
        target-path = "/soc/uart@1000";
        __overlay__ { status = "disabled"; };
    };
};
)");
  ASSERT_TRUE(overlay.has_value());
  ASSERT_EQ(overlay->fragments.size(), 2u);
  auto base = base_tree();
  support::DiagnosticEngine de;
  ASSERT_TRUE(apply_overlay(*base, *overlay, de));
  EXPECT_EQ(base->find("/soc/uart@1000")->find_property("status")->as_string(),
            "disabled")
      << "later fragments override earlier ones";
}

TEST(Overlay, SymbolsNodeResolution) {
  // A base that went through emit/read loses live labels; __symbols__
  // restores label targeting.
  auto base = base_tree();
  add_symbols_node(*base);
  const Node* sym = base->find("/__symbols__");
  ASSERT_NE(sym, nullptr);
  EXPECT_EQ(sym->find_property("u0")->as_string(), "/soc/uart@1000");

  // Strip live labels to simulate a compiled base.
  Tree stripped;
  stripped.root().merge_from(std::move(*base->root().clone()));
  // (labels survived the clone; emulate loss by clearing via re-adding a
  //  label-free node) — instead verify resolution prefers live labels and
  //  falls back to __symbols__ when absent:
  auto overlay = parse_ok(R"(
/dts-v1/;
/plugin/;
&u0 { status = "okay"; };
)");
  support::DiagnosticEngine de;
  ASSERT_TRUE(apply_overlay(stripped, *overlay, de)) << de.render();
  EXPECT_EQ(
      stripped.find("/soc/uart@1000")->find_property("status")->as_string(),
      "okay");
}

TEST(Overlay, AddSymbolsIsIdempotent) {
  auto base = base_tree();
  add_symbols_node(*base);
  add_symbols_node(*base);
  size_t count = 0;
  base->visit([&](const std::string& path, const Node&) {
    if (path == "/__symbols__") ++count;
  });
  EXPECT_EQ(count, 1u);
}

TEST(Overlay, MissingPluginDirectiveRejected) {
  support::DiagnosticEngine de;
  SourceManager sm;
  EXPECT_FALSE(parse_overlay("/dts-v1/;\n&u0 { };\n", "o.dtso", sm, de)
                   .has_value());
  EXPECT_TRUE(de.contains_code("overlay-parse"));
}

TEST(Overlay, FragmentWithoutTargetRejected) {
  support::DiagnosticEngine de;
  SourceManager sm;
  auto o = parse_overlay(R"(
/dts-v1/;
/plugin/;
/ { fragment@0 { __overlay__ { x = <1>; }; }; };
)",
                         "o.dtso", sm, de);
  EXPECT_FALSE(o.has_value());
}

TEST(Overlay, FragmentWithBothTargetsRejected) {
  support::DiagnosticEngine de;
  SourceManager sm;
  auto o = parse_overlay(R"(
/dts-v1/;
/plugin/;
/ { fragment@0 { target = <&a>; target-path = "/"; __overlay__ { }; }; };
)",
                         "o.dtso", sm, de);
  EXPECT_FALSE(o.has_value());
}

TEST(Overlay, UnresolvableTargetFailsApply) {
  auto overlay = parse_ok(R"(
/dts-v1/;
/plugin/;
&ghost { status = "okay"; };
)");
  ASSERT_TRUE(overlay.has_value());
  auto base = base_tree();
  support::DiagnosticEngine de;
  EXPECT_FALSE(apply_overlay(*base, *overlay, de));
  EXPECT_TRUE(de.contains_code("overlay-apply"));
}

TEST(Overlay, OverlayRefsIntoBaseResolve) {
  // The overlay adds a device referencing a base node by label: after
  // application the reference must resolve to a phandle.
  auto overlay = parse_ok(R"(
/dts-v1/;
/plugin/;
/ {
    fragment@0 {
        target-path = "/soc";
        __overlay__ {
            dma@3000 {
                reg = <0x3000 0x100>;
                companion = <&u0>;
            };
        };
    };
};
)");
  ASSERT_TRUE(overlay.has_value());
  auto base = base_tree();
  support::DiagnosticEngine de;
  ASSERT_TRUE(apply_overlay(*base, *overlay, de)) << de.render();
  auto companion =
      base->find("/soc/dma@3000")->find_property("companion")->as_u32();
  ASSERT_TRUE(companion.has_value());
  auto uart_phandle =
      base->find("/soc/uart@1000")->find_property("phandle")->as_u32();
  EXPECT_EQ(companion, uart_phandle);
}

}  // namespace
}  // namespace llhsc::dts

// Printer tests: structural round-trip through the parser is the key
// property — print(parse(x)) must parse to a tree equivalent to parse(x).
#include "dts/printer.hpp"

#include <gtest/gtest.h>

#include "dts/parser.hpp"

namespace llhsc::dts {
namespace {

bool trees_equal(const Node& a, const Node& b);

bool trees_equal(const Node& a, const Node& b) {
  if (a.name() != b.name()) return false;
  if (a.properties().size() != b.properties().size()) return false;
  for (size_t i = 0; i < a.properties().size(); ++i) {
    if (!(a.properties()[i] == b.properties()[i])) return false;
  }
  if (a.children().size() != b.children().size()) return false;
  for (size_t i = 0; i < a.children().size(); ++i) {
    if (!trees_equal(*a.children()[i], *b.children()[i])) return false;
  }
  return true;
}

std::unique_ptr<Tree> parse_ok(std::string_view src) {
  support::DiagnosticEngine de;
  ParseOptions opts;
  opts.resolve_references = false;  // keep refs symbolic for comparison
  SourceManager sm;
  auto t = parse_dts(src, "t.dts", sm, de, opts);
  EXPECT_FALSE(de.has_errors()) << de.render();
  return t;
}

TEST(Printer, SimpleNode) {
  Tree t;
  Node& m = t.root().get_or_create_child("memory@40000000");
  m.set_property(Property::string("device_type", "memory"));
  m.set_property(Property::cells("reg", {0x40000000, 0x20000000}));
  std::string out = print_dts(t);
  EXPECT_NE(out.find("/dts-v1/;"), std::string::npos);
  EXPECT_NE(out.find("memory@40000000 {"), std::string::npos);
  EXPECT_NE(out.find("device_type = \"memory\";"), std::string::npos);
  EXPECT_NE(out.find("reg = <0x40000000 0x20000000>;"), std::string::npos);
}

TEST(Printer, BooleanProperty) {
  Tree t;
  t.root().get_or_create_child("n").set_property(Property::boolean("ranges"));
  EXPECT_NE(print_dts(t).find("ranges;"), std::string::npos);
}

TEST(Printer, LabelsAreEmitted) {
  Tree t;
  Node& u = t.root().get_or_create_child("uart@20000000");
  u.add_label("uart0");
  EXPECT_NE(print_dts(t).find("uart0: uart@20000000 {"), std::string::npos);
}

TEST(Printer, MemReserves) {
  Tree t;
  t.memreserves().push_back({0x10000000, 0x4000});
  std::string out = print_dts(t);
  EXPECT_NE(out.find("/memreserve/ 0x10000000 0x4000;"), std::string::npos);
}

TEST(Printer, StringEscapes) {
  Tree t;
  t.root().get_or_create_child("n").set_property(
      Property::string("s", "a\"b\\c"));
  std::string out = print_dts(t);
  EXPECT_NE(out.find(R"(s = "a\"b\\c";)"), std::string::npos);
}

TEST(Printer, ProvenanceComments) {
  Tree t;
  Node& n = t.root().get_or_create_child("vEthernet");
  n.set_provenance("d3");
  Property p = Property::cells("id", {0});
  p.provenance = "d1";
  n.set_property(std::move(p));
  PrintOptions opts;
  opts.provenance_comments = true;
  std::string out = print_dts(t, opts);
  EXPECT_NE(out.find("/* delta: d3 */"), std::string::npos);
  EXPECT_NE(out.find("/* delta: d1 */"), std::string::npos);
  // Off by default.
  EXPECT_EQ(print_dts(t).find("delta:"), std::string::npos);
}

TEST(Printer, RoundTripRunningExample) {
  const char* src = R"(
/dts-v1/;
/ {
    #address-cells = <2>;
    #size-cells = <2>;
    memory@40000000 {
        device_type = "memory";
        reg = <0x0 0x40000000 0x0 0x20000000 0x0 0x60000000 0x0 0x20000000>;
    };
    cpus {
        #address-cells = <1>;
        #size-cells = <0>;
        cpu@0 {
            compatible = "arm,cortex-a53";
            device_type = "cpu";
            enable-method = "psci";
            reg = <0x0>;
        };
        cpu@1 {
            compatible = "arm,cortex-a53";
            reg = <0x1>;
        };
    };
    uart0: uart@20000000 {
        compatible = "ns16550a";
        reg = <0x0 0x20000000 0x0 0x1000>;
        mac = [de ad];
        names = "a", "b";
        flag;
    };
};
)";
  auto original = parse_ok(src);
  ASSERT_NE(original, nullptr);
  std::string printed = print_dts(*original);
  auto reparsed = parse_ok(printed);
  ASSERT_NE(reparsed, nullptr) << printed;
  EXPECT_TRUE(trees_equal(original->root(), reparsed->root())) << printed;
}

TEST(Printer, RoundTripPreservesRefs) {
  const char* src = R"(
/ {
    intc: pic@1000 { };
    dev { link = <&intc 5>; alias = &intc; };
};
)";
  auto original = parse_ok(src);
  std::string printed = print_dts(*original);
  EXPECT_NE(printed.find("<&intc 0x5>"), std::string::npos) << printed;
  EXPECT_NE(printed.find("alias = &intc;"), std::string::npos);
  auto reparsed = parse_ok(printed);
  EXPECT_TRUE(trees_equal(original->root(), reparsed->root()));
}

TEST(Printer, BitsDirectiveRoundTrip) {
  auto original = parse_ok(R"(
/ { n {
    b = /bits/ 8 <0x12 0x34>;
    h = /bits/ 16 <0xabcd>;
    q = /bits/ 64 <0x1122334455667788>;
}; };
)");
  std::string printed = print_dts(*original);
  EXPECT_NE(printed.find("/bits/ 8 <0x12 0x34>"), std::string::npos) << printed;
  EXPECT_NE(printed.find("/bits/ 16 <0xabcd>"), std::string::npos);
  auto reparsed = parse_ok(printed);
  EXPECT_TRUE(trees_equal(original->root(), reparsed->root())) << printed;
}

TEST(Printer, DecimalCellsOption) {
  Tree t;
  t.root().get_or_create_child("n").set_property(Property::cells("v", {10}));
  PrintOptions opts;
  opts.hex_cells = false;
  EXPECT_NE(print_dts(t, opts).find("v = <10>;"), std::string::npos);
}

}  // namespace
}  // namespace llhsc::dts

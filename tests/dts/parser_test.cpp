// Parser tests around the paper's running example (Listing 1 + Listing 2):
// a CustomSBC with one memory node (two 64-bit banks), a 2-core cluster
// included from "cpus.dtsi", and two UARTs.
#include "dts/parser.hpp"

#include <gtest/gtest.h>

namespace llhsc::dts {
namespace {

// Listing 1 reconstructed: the paper shows memory/cpus/uart top-level nodes
// with the cluster stored in cpus.dtsi.
constexpr const char* kMainDts = R"(
/dts-v1/;

/ {
    #address-cells = <2>;
    #size-cells = <2>;

    memory@40000000 {
        device_type = "memory";
        reg = <0x0 0x40000000 0x0 0x20000000
               0x0 0x60000000 0x0 0x20000000>;
    };

    /include/ "cpus.dtsi"

    uart0: uart@20000000 {
        compatible = "ns16550a";
        reg = <0x0 0x20000000 0x0 0x1000>;
    };

    uart1: uart@30000000 {
        compatible = "ns16550a";
        reg = <0x0 0x30000000 0x0 0x1000>;
    };
};
)";

// Listing 2 verbatim (modulo the OCR's cpu00/cpu01 for cpu@0/cpu@1).
constexpr const char* kCpusDtsi = R"(
cpus {
    #address-cells = <0x1>;
    #size-cells = <0x0>;

    cpu@0 {
        compatible = "arm,cortex-a53";
        device_type = "cpu";
        enable-method = "psci";
        reg = <0x0>;
    };

    cpu@1 {
        compatible = "arm,cortex-a53";
        device_type = "cpu";
        enable-method = "psci";
        reg = <0x1>;
    };
};
)";

std::unique_ptr<Tree> parse_ok(std::string_view src,
                               const SourceManager& sm = {}) {
  support::DiagnosticEngine de;
  auto tree = parse_dts(src, "test.dts", sm, de);
  EXPECT_FALSE(de.has_errors()) << de.render();
  EXPECT_NE(tree, nullptr);
  return tree;
}

TEST(Parser, EmptyRoot) {
  auto tree = parse_ok("/dts-v1/;\n/ { };\n");
  EXPECT_EQ(tree->root().children().size(), 0u);
}

TEST(Parser, RunningExampleStructure) {
  SourceManager sm;
  sm.register_file("cpus.dtsi", kCpusDtsi);
  auto tree = parse_ok(kMainDts, sm);

  EXPECT_EQ(tree->root().children().size(), 4u);
  const Node* memory = tree->find("/memory@40000000");
  ASSERT_NE(memory, nullptr);
  EXPECT_EQ(memory->find_property("device_type")->as_string(), "memory");
  auto reg = memory->find_property("reg")->as_cells();
  ASSERT_TRUE(reg.has_value());
  ASSERT_EQ(reg->size(), 8u);
  EXPECT_EQ((*reg)[1], 0x40000000u);
  EXPECT_EQ((*reg)[3], 0x20000000u);
  EXPECT_EQ((*reg)[5], 0x60000000u);

  const Node* cpus = tree->find("/cpus");
  ASSERT_NE(cpus, nullptr);
  EXPECT_EQ(cpus->children().size(), 2u);
  EXPECT_EQ(cpus->address_cells_or_default(), 1u);
  EXPECT_EQ(cpus->size_cells_or_default(), 0u);
  const Node* cpu0 = tree->find("/cpus/cpu@0");
  ASSERT_NE(cpu0, nullptr);
  EXPECT_EQ(cpu0->find_property("compatible")->as_string(), "arm,cortex-a53");
  EXPECT_EQ(cpu0->find_property("reg")->as_u32(), 0u);
  EXPECT_EQ(tree->find("/cpus/cpu@1")->find_property("reg")->as_u32(), 1u);
}

TEST(Parser, MissingIncludeIsReported) {
  support::DiagnosticEngine de;
  SourceManager sm;  // cpus.dtsi not registered
  auto tree = parse_dts(kMainDts, "test.dts", sm, de);
  EXPECT_TRUE(de.contains_code("dts-include"));
  // The rest of the tree still parses.
  ASSERT_NE(tree, nullptr);
  EXPECT_NE(tree->find("/memory@40000000"), nullptr);
  EXPECT_EQ(tree->find("/cpus"), nullptr);
}

TEST(Parser, IncludeCycleIsCaught) {
  SourceManager sm;
  sm.register_file("a.dtsi", "/include/ \"b.dtsi\"\n");
  sm.register_file("b.dtsi", "/include/ \"a.dtsi\"\n");
  support::DiagnosticEngine de;
  parse_dts("/include/ \"a.dtsi\"\n/ { };", "top.dts", sm, de);
  EXPECT_TRUE(de.contains_code("dts-include"));
}

TEST(Parser, BooleanProperty) {
  auto tree = parse_ok("/ { chosen { interrupts-extended-enable; }; };");
  const Node* chosen = tree->find("/chosen");
  ASSERT_NE(chosen, nullptr);
  const Property* p = chosen->find_property("interrupts-extended-enable");
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->is_boolean());
}

TEST(Parser, StringListProperty) {
  auto tree = parse_ok(
      R"(/ { node { compatible = "vendor,specific", "generic"; }; };)");
  auto list = tree->find("/node")->find_property("compatible")->as_string_list();
  ASSERT_TRUE(list.has_value());
  EXPECT_EQ(*list, (std::vector<std::string>{"vendor,specific", "generic"}));
}

TEST(Parser, ByteString) {
  auto tree = parse_ok("/ { n { mac = [de ad be ef 00 01]; }; };");
  const Property* p = tree->find("/n")->find_property("mac");
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->chunks.size(), 1u);
  EXPECT_EQ(p->chunks[0].kind, ChunkKind::kBytes);
  EXPECT_EQ(p->chunks[0].bytes,
            (std::vector<uint8_t>{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}));
}

TEST(Parser, MixedValueChunks) {
  auto tree = parse_ok(
      R"(/ { n { p = <1 2>, "str", [aa]; }; };)");
  const Property* p = tree->find("/n")->find_property("p");
  ASSERT_EQ(p->chunks.size(), 3u);
  EXPECT_EQ(p->chunks[0].kind, ChunkKind::kCells);
  EXPECT_EQ(p->chunks[1].kind, ChunkKind::kString);
  EXPECT_EQ(p->chunks[2].kind, ChunkKind::kBytes);
}

TEST(Parser, CellExpressions) {
  auto tree = parse_ok("/ { n { p = <(1 + 2) ((3 * 4) - 2) (1 << 8)>; }; };");
  auto cells = tree->find("/n")->find_property("p")->as_cells();
  ASSERT_TRUE(cells.has_value());
  EXPECT_EQ(*cells, (std::vector<uint64_t>{3, 10, 256}));
}

TEST(Parser, DuplicateNodesMerge) {
  auto tree = parse_ok(R"(
/ {
    n { a = <1>; b = <2>; };
};
/ {
    n { b = <3>; c = <4>; };
};
)");
  const Node* n = tree->find("/n");
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->find_property("a")->as_u32(), 1u);
  EXPECT_EQ(n->find_property("b")->as_u32(), 3u) << "later definition wins";
  EXPECT_EQ(n->find_property("c")->as_u32(), 4u);
}

TEST(Parser, LabelExtension) {
  auto tree = parse_ok(R"(
/ {
    u0: uart@1000 { status = "disabled"; };
};
&u0 {
    status = "okay";
    extra = <1>;
};
)");
  const Node* uart = tree->find("/uart@1000");
  ASSERT_NE(uart, nullptr);
  EXPECT_EQ(uart->find_property("status")->as_string(), "okay");
  EXPECT_EQ(uart->find_property("extra")->as_u32(), 1u);
}

TEST(Parser, PhandleReferenceResolution) {
  auto tree = parse_ok(R"(
/ {
    intc: interrupt-controller@1000 { };
    dev { interrupt-parent = <&intc>; };
};
)");
  const Node* intc = tree->find("/interrupt-controller@1000");
  ASSERT_NE(intc, nullptr);
  auto phandle = intc->find_property("phandle");
  ASSERT_NE(phandle, nullptr) << "referenced node must receive a phandle";
  auto parent = tree->find("/dev")->find_property("interrupt-parent")->as_u32();
  EXPECT_EQ(parent, phandle->as_u32());
}

TEST(Parser, UnresolvedReferenceIsError) {
  support::DiagnosticEngine de;
  auto tree =
      parse_dts("/ { dev { x = <&nothere>; }; };", "t.dts", de);
  (void)tree;
  EXPECT_TRUE(de.contains_code("dts-unresolved-ref"));
}

TEST(Parser, DeleteNodeAndProperty) {
  auto tree = parse_ok(R"(
/ {
    n { a = <1>; b = <2>; };
};
/ {
    n { /delete-property/ a; };
    /delete-node/ gone;
};
)");
  // /delete-node/ of a non-existent node warns but does not error.
  const Node* n = tree->find("/n");
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->find_property("a"), nullptr);
  EXPECT_NE(n->find_property("b"), nullptr);
}

TEST(Parser, MemReserve) {
  auto tree = parse_ok("/memreserve/ 0x10000000 0x4000;\n/ { };");
  ASSERT_EQ(tree->memreserves().size(), 1u);
  EXPECT_EQ(tree->memreserves()[0].address, 0x10000000u);
  EXPECT_EQ(tree->memreserves()[0].size, 0x4000u);
}

TEST(Parser, ErrorRecoveryProducesPartialTree) {
  support::DiagnosticEngine de;
  auto tree = parse_dts(R"(
/ {
    good { a = <1>; };
    bad { b = ; };
    alsogood { c = <2>; };
};
)",
                        "t.dts", de);
  EXPECT_TRUE(de.has_errors());
  ASSERT_NE(tree, nullptr);
  EXPECT_NE(tree->find("/good"), nullptr);
  EXPECT_NE(tree->find("/alsogood"), nullptr);
}

TEST(Parser, SixtyFourBitCellValues) {
  // Cell literals over 32 bits warn (dtc truncates with a warning) but the
  // value survives so the semantic layer can flag the truncation precisely.
  support::DiagnosticEngine de;
  auto tree = parse_dts("/ { n { big = <0x100000000>; }; };", "t.dts", de);
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(de.error_count(), 0u) << de.render();
  EXPECT_TRUE(de.contains_code("dts-cell-overflow"));
  auto cells = tree->find("/n")->find_property("big")->as_cells();
  EXPECT_EQ((*cells)[0], 0x100000000u);
}

TEST(Parser, BitsDirective) {
  auto tree = parse_ok(R"(
/ { n {
    bytes8 = /bits/ 8 <0x12 0x34>;
    halves = /bits/ 16 <0x1234 0xabcd>;
    full64 = /bits/ 64 <0x123456789abcdef0>;
    normal = <0x1>;
}; };
)");
  const Node* n = tree->find("/n");
  const Property* b8 = n->find_property("bytes8");
  ASSERT_EQ(b8->chunks.size(), 1u);
  EXPECT_EQ(b8->chunks[0].element_bits, 8);
  EXPECT_EQ(*b8->as_cells(), (std::vector<uint64_t>{0x12, 0x34}));
  EXPECT_EQ(n->find_property("halves")->chunks[0].element_bits, 16);
  EXPECT_EQ(n->find_property("full64")->chunks[0].element_bits, 64);
  EXPECT_EQ((*n->find_property("full64")->as_cells())[0],
            0x123456789abcdef0ull);
  EXPECT_EQ(n->find_property("normal")->chunks[0].element_bits, 32);
}

TEST(Parser, BitsValueRangeChecked) {
  support::DiagnosticEngine de;
  parse_dts("/ { n { v = /bits/ 8 <0x1ff>; }; };", "t.dts", de);
  EXPECT_TRUE(de.has_errors());
}

TEST(Parser, BitsBadWidthRejected) {
  support::DiagnosticEngine de;
  parse_dts("/ { n { v = /bits/ 12 <0x1>; }; };", "t.dts", de);
  EXPECT_TRUE(de.contains_code("dts-parse"));
}

TEST(Parser, BitsRejectsReferences) {
  support::DiagnosticEngine de;
  parse_dts("/ { l: a { }; n { v = /bits/ 16 <&l>; }; };", "t.dts", de);
  EXPECT_TRUE(de.has_errors());
}

TEST(Parser, DeepNesting) {
  std::string src = "/ { a { b { c { d { e { leaf = <7>; }; }; }; }; }; };";
  auto tree = parse_ok(src);
  const Node* leaf_parent = tree->find("/a/b/c/d/e");
  ASSERT_NE(leaf_parent, nullptr);
  EXPECT_EQ(leaf_parent->find_property("leaf")->as_u32(), 7u);
}

TEST(Parser, UnitAddressFuzzyLookup) {
  SourceManager sm;
  sm.register_file("cpus.dtsi", kCpusDtsi);
  auto tree = parse_ok(kMainDts, sm);
  // Lookup by base name when unambiguous.
  EXPECT_NE(tree->find("/memory"), nullptr);
  // "uart" is ambiguous (two nodes) -> nullptr.
  EXPECT_EQ(tree->find("/uart"), nullptr);
}

}  // namespace
}  // namespace llhsc::dts

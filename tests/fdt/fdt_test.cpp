// DTB emitter/reader/verifier tests. The central property: the binary image
// is a fixed point of emit . read — emit(read(emit(t))) == emit(t).
#include "fdt/fdt.hpp"

#include <gtest/gtest.h>

#include "dts/parser.hpp"

namespace llhsc::fdt {
namespace {

std::unique_ptr<dts::Tree> parse_ok(std::string_view src) {
  support::DiagnosticEngine de;
  auto t = dts::parse_dts(src, "t.dts", de);
  EXPECT_FALSE(de.has_errors()) << de.render();
  return t;
}

std::vector<uint8_t> emit_ok(const dts::Tree& tree) {
  support::DiagnosticEngine de;
  auto blob = emit(tree, de);
  EXPECT_TRUE(blob.has_value()) << de.render();
  return blob.value_or(std::vector<uint8_t>{});
}

TEST(Fdt, HeaderFields) {
  dts::Tree tree;
  auto blob = emit_ok(tree);
  auto header = read_header(blob);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->magic, kMagic);
  EXPECT_EQ(header->version, kVersion);
  EXPECT_EQ(header->last_comp_version, kLastCompatibleVersion);
  EXPECT_EQ(header->totalsize, blob.size());
  EXPECT_EQ(header->off_dt_struct % 4, 0u);
  EXPECT_EQ(header->off_mem_rsvmap % 8, 0u);
}

TEST(Fdt, EmptyTreeRoundTrip) {
  dts::Tree tree;
  auto blob = emit_ok(tree);
  support::DiagnosticEngine de;
  auto back = read(blob, de);
  ASSERT_NE(back, nullptr) << de.render();
  EXPECT_EQ(back->root().children().size(), 0u);
}

TEST(Fdt, BinaryFixedPoint) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <2>;
    #size-cells = <2>;
    memory@40000000 {
        device_type = "memory";
        reg = <0x0 0x40000000 0x0 0x20000000>;
    };
    cpus {
        #address-cells = <1>;
        #size-cells = <0>;
        cpu@0 { compatible = "arm,cortex-a53"; reg = <0>; };
    };
    chosen { bootargs = "console=ttyS0"; ranges; };
};
)");
  auto blob1 = emit_ok(*tree);
  support::DiagnosticEngine de;
  auto back = read(blob1, de);
  ASSERT_NE(back, nullptr) << de.render();
  auto blob2 = emit_ok(*back);
  EXPECT_EQ(blob1, blob2) << "emit . read must be a binary fixed point";
}

TEST(Fdt, PropertyValuesSurviveAsBytes) {
  auto tree = parse_ok(R"(
/ { n { cells = <0xdeadbeef 0x1>; text = "hi"; flag; raw = [0a 0b]; }; };
)");
  auto blob = emit_ok(*tree);
  support::DiagnosticEngine de;
  auto back = read(blob, de);
  ASSERT_NE(back, nullptr);
  const dts::Node* n = back->find("/n");
  ASSERT_NE(n, nullptr);
  auto cells = bytes_as_cells(*n->find_property("cells"));
  ASSERT_TRUE(cells.has_value());
  EXPECT_EQ(*cells, (std::vector<uint32_t>{0xdeadbeef, 1}));
  EXPECT_EQ(bytes_as_string(*n->find_property("text")), "hi");
  EXPECT_TRUE(n->find_property("flag")->is_boolean());
  EXPECT_EQ(n->find_property("raw")->chunks[0].bytes,
            (std::vector<uint8_t>{0x0a, 0x0b}));
}

TEST(Fdt, BitsDirectiveSerialization) {
  auto tree = parse_ok(R"(
/ { n {
    b = /bits/ 8 <0x12 0x34>;
    h = /bits/ 16 <0xabcd>;
    q = /bits/ 64 <0x1122334455667788>;
}; };
)");
  auto blob = emit_ok(*tree);
  support::DiagnosticEngine de;
  auto back = read(blob, de);
  ASSERT_NE(back, nullptr);
  const dts::Node* n = back->find("/n");
  EXPECT_EQ(n->find_property("b")->chunks[0].bytes,
            (std::vector<uint8_t>{0x12, 0x34}));
  EXPECT_EQ(n->find_property("h")->chunks[0].bytes,
            (std::vector<uint8_t>{0xab, 0xcd}));
  EXPECT_EQ(n->find_property("q")->chunks[0].bytes,
            (std::vector<uint8_t>{0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                                  0x88}));
}

TEST(Fdt, MemReservationsRoundTrip) {
  dts::Tree tree;
  tree.memreserves().push_back({0x10000000, 0x4000});
  tree.memreserves().push_back({0x80000000, 0x100000});
  auto blob = emit_ok(tree);
  support::DiagnosticEngine de;
  auto back = read(blob, de);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->memreserves(), tree.memreserves());
}

TEST(Fdt, StringsBlockIsDeduplicated) {
  // Two nodes sharing property names must intern them once: compare against
  // a one-node blob's strings size.
  auto two = parse_ok("/ { a { reg = <1>; status = \"okay\"; }; "
                      "b { reg = <2>; status = \"okay\"; }; };");
  auto one = parse_ok("/ { a { reg = <1>; status = \"okay\"; }; };");
  auto blob_two = emit_ok(*two);
  auto blob_one = emit_ok(*one);
  auto h2 = read_header(blob_two);
  auto h1 = read_header(blob_one);
  EXPECT_EQ(h2->size_dt_strings, h1->size_dt_strings)
      << "shared property names must not grow the strings block";
}

TEST(Fdt, VerifyAcceptsGoodBlob) {
  auto tree = parse_ok("/ { n { v = <1>; }; };");
  auto blob = emit_ok(*tree);
  support::DiagnosticEngine de;
  EXPECT_TRUE(verify(blob, de)) << de.render();
}

TEST(Fdt, VerifyRejectsBadMagic) {
  auto tree = parse_ok("/ { };");
  auto blob = emit_ok(*tree);
  blob[0] = 0x00;
  support::DiagnosticEngine de;
  EXPECT_FALSE(verify(blob, de));
}

TEST(Fdt, VerifyRejectsTruncatedBlob) {
  auto tree = parse_ok("/ { n { v = <1>; }; };");
  auto blob = emit_ok(*tree);
  blob.resize(blob.size() / 2);
  support::DiagnosticEngine de;
  EXPECT_FALSE(verify(blob, de));
}

TEST(Fdt, VerifyRejectsCorruptToken) {
  auto tree = parse_ok("/ { n { v = <1>; }; };");
  auto blob = emit_ok(*tree);
  auto header = read_header(blob);
  // Stomp the first structure token with garbage.
  blob[header->off_dt_struct + 3] = 0x77;
  support::DiagnosticEngine de;
  EXPECT_FALSE(verify(blob, de));
}

TEST(Fdt, ReadRejectsEmptyBuffer) {
  support::DiagnosticEngine de;
  EXPECT_EQ(read({}, de), nullptr);
  EXPECT_TRUE(de.has_errors());
}

TEST(Fdt, EmitRejectsUnresolvedRefs) {
  dts::Tree tree;
  dts::Property p;
  p.name = "link";
  p.chunks.push_back(dts::Chunk::make_cells({dts::Cell::reference("ghost")}));
  tree.root().get_or_create_child("n").set_property(std::move(p));
  support::DiagnosticEngine de;
  EXPECT_FALSE(emit(tree, de).has_value());
  EXPECT_TRUE(de.contains_code("fdt-emit"));
}

TEST(Fdt, EmitRejectsOversizedCells) {
  dts::Tree tree;
  tree.root().get_or_create_child("n").set_property(
      dts::Property::cells("big", {0x1'0000'0000ull}));
  support::DiagnosticEngine de;
  EXPECT_FALSE(emit(tree, de).has_value());
  EXPECT_TRUE(de.contains_code("fdt-emit"));
}

TEST(Fdt, PaddingOption) {
  dts::Tree tree;
  EmitOptions opts;
  opts.padding = 128;
  support::DiagnosticEngine de;
  auto with = emit(tree, de, opts);
  auto without = emit(tree, de);
  ASSERT_TRUE(with && without);
  EXPECT_EQ(with->size(), without->size() + 128);
  support::DiagnosticEngine de2;
  EXPECT_TRUE(verify(*with, de2)) << de2.render();
}

TEST(Fdt, BootCpuidRoundTrip) {
  dts::Tree tree;
  EmitOptions opts;
  opts.boot_cpuid_phys = 3;
  support::DiagnosticEngine de;
  auto blob = emit(tree, de, opts);
  ASSERT_TRUE(blob.has_value());
  EXPECT_EQ(read_header(*blob)->boot_cpuid_phys, 3u);
}

TEST(Fdt, PhandleResolvedTreeEmits) {
  // References resolved to phandles emit cleanly end-to-end.
  support::DiagnosticEngine de;
  auto tree = dts::parse_dts(R"(
/ {
    intc: pic@1000 { };
    dev { interrupt-parent = <&intc>; };
};
)",
                             "t.dts", de);
  ASSERT_NE(tree, nullptr);
  ASSERT_FALSE(de.has_errors()) << de.render();
  auto blob = emit_ok(*tree);
  auto back = read(blob, de);
  ASSERT_NE(back, nullptr);
  auto cells = bytes_as_cells(*back->find("/dev")->find_property("interrupt-parent"));
  ASSERT_TRUE(cells.has_value());
  auto target_phandle =
      bytes_as_cells(*back->find("/pic@1000")->find_property("phandle"));
  ASSERT_TRUE(target_phandle.has_value());
  EXPECT_EQ((*cells)[0], (*target_phandle)[0]);
}

}  // namespace
}  // namespace llhsc::fdt

#include "server/json.hpp"

#include <gtest/gtest.h>

namespace llhsc::server {
namespace {

TEST(Json, ScalarRoundTrip) {
  EXPECT_EQ(Json::null().dump(), "null");
  EXPECT_EQ(Json::boolean(true).dump(), "true");
  EXPECT_EQ(Json::boolean(false).dump(), "false");
  EXPECT_EQ(Json::integer(-42).dump(), "-42");
  EXPECT_EQ(Json::unsigned_integer(9223372036854775807ull).dump(),
            "9223372036854775807");
  // Documented saturation: the wire never carries a wrapped-negative count.
  EXPECT_EQ(Json::unsigned_integer(18446744073709551615ull).dump(),
            "9223372036854775807");
  EXPECT_EQ(Json::string("hi").dump(), "\"hi\"");
}

TEST(Json, ObjectKeepsInsertionOrder) {
  Json o = Json::object();
  o.set("zeta", Json::integer(1));
  o.set("alpha", Json::integer(2));
  EXPECT_EQ(o.dump(), "{\"zeta\":1,\"alpha\":2}");
}

TEST(Json, EscapesControlBytesAndQuotes) {
  Json s = Json::string("a\"b\\c\nd\te\x01");
  auto parsed = Json::parse(s.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_string(), "a\"b\\c\nd\te\x01");
}

TEST(Json, ParsesNestedStructures) {
  auto v = Json::parse(
      R"({"id": 7, "params": {"files": ["a.dts", "b.dts"], "deep": true}})");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->is_object());
  EXPECT_EQ(v->at("id").as_int(), 7);
  const Json& files = v->at("params").at("files");
  ASSERT_EQ(files.items().size(), 2u);
  EXPECT_EQ(files.items()[1].as_string(), "b.dts");
  EXPECT_TRUE(v->at("params").at("deep").as_bool());
}

TEST(Json, LargeUnsignedSurvivesParse) {
  // The full int64 range round-trips exactly (counters live well below it).
  auto v = Json::parse("{\"n\": 9223372036854775807, \"m\": -42}");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->at("n").as_uint(), 9223372036854775807ull);
  // Negative values never masquerade as huge unsigned counters.
  EXPECT_EQ(v->at("m").as_uint(/*fallback=*/7), 7u);
}

TEST(Json, RejectsTrailingGarbage) {
  EXPECT_FALSE(Json::parse("{} extra").has_value());
  EXPECT_FALSE(Json::parse("{\"a\": 1} {\"b\": 2}").has_value());
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
  EXPECT_FALSE(Json::parse("nul").has_value());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").has_value());
}

TEST(Json, AbsentFieldIsNullAndDefaults) {
  auto v = Json::parse("{\"present\": 3}");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->at("absent").is_null());
  EXPECT_EQ(v->at("absent").as_uint(9), 9u);
  EXPECT_TRUE(v->at("absent").as_bool(true));
  EXPECT_FALSE(v->has("absent"));
  EXPECT_TRUE(v->has("present"));
}

TEST(Json, FieldsExposesObjectEntries) {
  auto v = Json::parse("{\"a.dtsi\": \"x\", \"b.dtsi\": \"y\"}");
  ASSERT_TRUE(v.has_value());
  const auto& fields = v->fields();
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0].first, "a.dtsi");
  EXPECT_EQ(fields[1].second.as_string(), "y");
}

TEST(Json, DumpParseRoundTripIsStable) {
  Json o = Json::object();
  o.set("report", Json::string("vm1.dts:3:5: error: boom\n"));
  Json arr = Json::array();
  arr.push(Json::integer(1));
  arr.push(Json::null());
  arr.push(Json::number(1.5));
  o.set("list", std::move(arr));
  auto round = Json::parse(o.dump());
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->dump(), o.dump());
}

}  // namespace
}  // namespace llhsc::server

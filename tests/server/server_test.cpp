#include "server/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/check_service.hpp"

namespace llhsc::server {
namespace {

constexpr const char* kDts = R"(/dts-v1/;
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    memory@40000000 { device_type = "memory"; reg = <0x40000000 0x1000000>; };
};
)";

/// Blocking line-oriented client over the daemon's Unix socket.
class Client {
 public:
  explicit Client(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    // The server thread may still be between bind and listen: retry briefly.
    for (int i = 0; i < 200; ++i) {
      if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0) {
        connected_ = true;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool connected() const { return connected_; }

  bool send_line(const std::string& line) {
    std::string framed = line;
    framed += '\n';
    size_t off = 0;
    while (off < framed.size()) {
      ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off,
                         MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  std::optional<Json> recv_response() {
    char chunk[4096];
    while (buffer_.find('\n') == std::string::npos) {
      ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return std::nullopt;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    size_t newline = buffer_.find('\n');
    std::string line = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    return Json::parse(line);
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

Json check_request(int id, const std::string& source) {
  Json params = Json::object();
  params.set("path", Json::string("test.dts"));
  params.set("source", Json::string(source));
  Json request = Json::object();
  request.set("id", Json::integer(id));
  request.set("method", Json::string("check"));
  request.set("params", std::move(params));
  return request;
}

/// One Server on a background thread, torn down via the wire protocol (or
/// request_stop as a fallback) so every test also exercises the drain path.
class ServerFixture {
 public:
  explicit ServerFixture(size_t queue_limit = 64) {
    char tmpl[] = "/tmp/llhscd_test_XXXXXX";
    dir_ = ::mkdtemp(tmpl);
    ServerOptions options;
    options.socket_path = dir_ + "/d.sock";
    options.jobs = 4;
    options.queue_limit = queue_limit;
    options.log = &log_;
    server_ = std::make_unique<Server>(std::move(options));
    thread_ = std::thread([this]() { exit_code_ = server_->run(); });
  }

  ~ServerFixture() {
    if (thread_.joinable()) {
      server_->request_stop();
      thread_.join();
    }
    ::unlink((dir_ + "/d.sock").c_str());
    ::rmdir(dir_.c_str());
  }

  [[nodiscard]] const std::string& socket_path() const {
    return server_->socket_path();
  }

  int shutdown_and_join() {
    Client client(socket_path());
    EXPECT_TRUE(client.connected());
    Json request = Json::object();
    request.set("id", Json::integer(0));
    request.set("method", Json::string("shutdown"));
    EXPECT_TRUE(client.send_line(request.dump()));
    auto response = client.recv_response();
    EXPECT_TRUE(response.has_value());
    thread_.join();
    return exit_code_;
  }

 private:
  std::string dir_;
  std::ostringstream log_;
  std::unique_ptr<Server> server_;
  std::thread thread_;
  int exit_code_ = -1;
};

TEST(Server, PingPong) {
  ServerFixture fixture;
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line(R"({"id": 5, "method": "ping"})"));
  auto response = client.recv_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->at("id").as_int(), 5);
  EXPECT_TRUE(response->at("ok").as_bool());
  EXPECT_TRUE(response->at("result").at("pong").as_bool());
}

TEST(Server, CheckResponseMatchesRunCheckBytes) {
  ServerFixture fixture;
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line(check_request(1, kDts).dump()));
  auto response = client.recv_response();
  ASSERT_TRUE(response.has_value());
  ASSERT_TRUE(response->at("ok").as_bool()) << response->dump();
  const Json& result = response->at("result");

  CheckRequest local;
  local.path = "test.dts";
  local.source = kDts;
  CheckOutcome expected = run_check(local, nullptr);
  EXPECT_EQ(result.at("exit_code").as_int(), expected.exit_code);
  EXPECT_EQ(result.at("stdout").as_string(), expected.output);
  EXPECT_EQ(result.at("stderr").as_string(), expected.error_text);
}

TEST(Server, WarmCheckHitsArtifactCache) {
  ServerFixture fixture;
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line(check_request(1, kDts).dump()));
  auto cold = client.recv_response();
  ASSERT_TRUE(cold.has_value());
  EXPECT_FALSE(cold->at("result").at("trace").at("tree_cache_hit").as_bool());

  ASSERT_TRUE(client.send_line(check_request(2, kDts).dump()));
  auto warm = client.recv_response();
  ASSERT_TRUE(warm.has_value());
  EXPECT_TRUE(warm->at("result").at("trace").at("tree_cache_hit").as_bool());
  EXPECT_TRUE(warm->at("result").at("trace").at("check_cache_hit").as_bool());
  EXPECT_EQ(warm->at("result").at("stdout").as_string(),
            cold->at("result").at("stdout").as_string());
}

TEST(Server, EightConcurrentClients) {
  ServerFixture fixture;
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  // int, not vector<bool>: each thread writes its own element, and
  // vector<bool> packs elements into shared words.
  std::vector<int> ok(kClients, 0);
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i]() {
      Client client(fixture.socket_path());
      if (!client.connected()) return;
      // Half the clients share one source (exercising the in-flight build
      // latch), half get distinct sources (exercising parallel builds).
      std::string source(kDts);
      if (i % 2 == 1) {
        source += "/* client " + std::to_string(i) + " */\n";
      }
      if (!client.send_line(check_request(i, source).dump())) return;
      auto response = client.recv_response();
      ok[i] = response.has_value() && response->at("ok").as_bool(false) &&
              response->at("id").as_int(-1) == i &&
              response->at("result").at("exit_code").as_int(-1) == 0;
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_TRUE(ok[i]) << "client " << i;
  }
}

TEST(Server, StatsReportsCountersAndLatency) {
  ServerFixture fixture;
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line(check_request(1, kDts).dump()));
  ASSERT_TRUE(client.recv_response().has_value());
  ASSERT_TRUE(client.send_line(R"({"id": 2, "method": "stats"})"));
  auto response = client.recv_response();
  ASSERT_TRUE(response.has_value());
  const Json& result = response->at("result");
  EXPECT_EQ(result.at("checks").as_uint(), 1u);
  EXPECT_GE(result.at("requests_total").as_uint(), 2u);
  EXPECT_EQ(result.at("latency").at("count").as_uint(), 1u);
  EXPECT_GT(result.at("latency").at("p95_us").as_uint(), 0u);
  EXPECT_EQ(result.at("store").at("tree_parses").as_uint(), 1u);
}

TEST(Server, StatsCheckCountersMatchTheCheckTrace) {
  ServerFixture fixture;
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());
  // Two overlapping regions so the semantic stage genuinely reaches the
  // solver — kDts alone has no region pair and every counter stays zero.
  std::string source(kDts);
  source.insert(source.rfind("};"),
                "    mmio@40800000 { reg = <0x40800000 0x1000000>; };\n");
  ASSERT_TRUE(client.send_line(check_request(1, source).dump()));
  auto check = client.recv_response();
  ASSERT_TRUE(check.has_value());
  // Every reply is stamped with the wire schema version.
  EXPECT_EQ(check->at("schema_version").as_int(), 1);
  const Json& trace = check->at("result").at("trace");

  ASSERT_TRUE(client.send_line(R"({"id": 2, "method": "stats"})"));
  auto stats = client.recv_response();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->at("schema_version").as_int(), 1);
  // The daemon's cumulative counters are accumulated from each check's
  // trace, which is itself a reduction of the obs event stream — with one
  // check served, the stats section must equal that check's trace verbatim.
  const Json& counters = stats->at("result").at("check_counters");
  for (const char* name : {"solver_checks", "queries_issued", "queries_pruned",
                           "cache_hits", "cache_errors"}) {
    EXPECT_EQ(counters.at(name).as_uint(), trace.at(name).as_uint()) << name;
  }
  EXPECT_GT(counters.at("solver_checks").as_uint(), 0u);
}

TEST(Server, MalformedLineIsBadRequest) {
  ServerFixture fixture;
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line("this is not json"));
  auto response = client.recv_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_FALSE(response->at("ok").as_bool(true));
  EXPECT_EQ(response->at("error").at("code").as_string(), "bad_request");
  // The connection survives a bad line.
  ASSERT_TRUE(client.send_line(R"({"id": 9, "method": "ping"})"));
  auto pong = client.recv_response();
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->at("ok").as_bool());
}

TEST(Server, UnknownMethodIsBadRequest) {
  ServerFixture fixture;
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line(R"({"id": 1, "method": "frobnicate"})"));
  auto response = client.recv_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->at("error").at("code").as_string(), "bad_request");
}

TEST(Server, ZeroQueueLimitRejectsAsOverloaded) {
  ServerFixture fixture(/*queue_limit=*/0);
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line(check_request(1, kDts).dump()));
  auto response = client.recv_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_FALSE(response->at("ok").as_bool(true));
  EXPECT_EQ(response->at("error").at("code").as_string(), "overloaded");
}

TEST(Server, ShutdownRequestDrainsCleanly) {
  ServerFixture fixture;
  {
    Client client(fixture.socket_path());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.send_line(check_request(1, kDts).dump()));
    ASSERT_TRUE(client.recv_response().has_value());
  }
  EXPECT_EQ(fixture.shutdown_and_join(), 0);
}

TEST(Server, RefusesToStealALiveSocket) {
  ServerFixture fixture;
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());

  // A second daemon pointed at the same path must refuse to start instead
  // of unlinking the live socket out from under the first.
  ServerOptions options;
  options.socket_path = fixture.socket_path();
  std::ostringstream log;
  options.log = &log;
  Server second(std::move(options));
  EXPECT_EQ(second.run(), 2);
  EXPECT_NE(log.str().find("refusing to start"), std::string::npos)
      << log.str();

  // The first daemon still owns the socket and still serves.
  ASSERT_TRUE(client.send_line(R"({"id": 1, "method": "ping"})"));
  auto response = client.recv_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->at("ok").as_bool());
}

TEST(Server, SessionRequestOverTheWire) {
  ServerFixture fixture;
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());
  Json product = Json::object();
  product.set("name", Json::string("pa"));
  Json features = Json::array();
  features.push(Json::string("fa"));
  product.set("features", std::move(features));
  Json products = Json::array();
  products.push(std::move(product));
  Json params = Json::object();
  params.set("core_source", Json::string(kDts));
  params.set("core_name", Json::string("core.dts"));
  params.set("deltas_source",
             Json::string("delta da when fa {\n"
                          "    modifies memory@40000000 { status = \"okay\"; }\n"
                          "}\n"));
  params.set("deltas_name", Json::string("t.deltas"));
  params.set("products", std::move(products));
  Json request = Json::object();
  request.set("id", Json::integer(3));
  request.set("method", Json::string("session"));
  request.set("params", std::move(params));
  ASSERT_TRUE(client.send_line(request.dump()));
  auto response = client.recv_response();
  ASSERT_TRUE(response.has_value());
  ASSERT_TRUE(response->at("ok").as_bool(false)) << response->dump();
  const Json& result = response->at("result");
  EXPECT_EQ(result.at("exit_code").as_int(-1), 0);
  ASSERT_EQ(result.at("units").items().size(), 1u);
  EXPECT_EQ(result.at("units").items()[0].at("name").as_string(), "pa");
  EXPECT_EQ(result.at("cost").at("derives").as_uint(), 1u);
}

}  // namespace
}  // namespace llhsc::server

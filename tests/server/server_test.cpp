#include "server/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/check_service.hpp"

namespace llhsc::server {
namespace {

constexpr const char* kDts = R"(/dts-v1/;
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    memory@40000000 { device_type = "memory"; reg = <0x40000000 0x1000000>; };
};
)";

/// Blocking line-oriented client over the daemon's Unix socket or its TCP
/// listener (loopback).
class Client {
 public:
  explicit Client(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    // The server thread may still be between bind and listen: retry briefly.
    for (int i = 0; i < 200; ++i) {
      if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0) {
        connected_ = true;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  explicit Client(uint16_t tcp_port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(tcp_port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    for (int i = 0; i < 200; ++i) {
      if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0) {
        connected_ = true;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  /// Half-closes the write side mid-request (the fuzz/disconnect tests).
  void shutdown_write() { ::shutdown(fd_, SHUT_WR); }

  bool send_raw(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                         MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool connected() const { return connected_; }

  bool send_line(const std::string& line) {
    std::string framed = line;
    framed += '\n';
    size_t off = 0;
    while (off < framed.size()) {
      ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off,
                         MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  std::optional<Json> recv_response() {
    char chunk[4096];
    while (buffer_.find('\n') == std::string::npos) {
      ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return std::nullopt;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    size_t newline = buffer_.find('\n');
    std::string line = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    return Json::parse(line);
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

Json check_request(int id, const std::string& source) {
  Json params = Json::object();
  params.set("path", Json::string("test.dts"));
  params.set("source", Json::string(source));
  Json request = Json::object();
  request.set("id", Json::integer(id));
  request.set("method", Json::string("check"));
  request.set("params", std::move(params));
  return request;
}

/// One Server on a background thread, torn down via the wire protocol (or
/// request_stop as a fallback) so every test also exercises the drain path.
class ServerFixture {
 public:
  explicit ServerFixture(size_t queue_limit = 64)
      : ServerFixture([queue_limit](ServerOptions& options) {
          options.queue_limit = queue_limit;
        }) {}

  explicit ServerFixture(const std::function<void(ServerOptions&)>& tweak) {
    char tmpl[] = "/tmp/llhscd_test_XXXXXX";
    dir_ = ::mkdtemp(tmpl);
    ServerOptions options;
    options.socket_path = dir_ + "/d.sock";
    options.jobs = 4;
    options.log = &log_;
    if (tweak) tweak(options);
    server_ = std::make_unique<Server>(std::move(options));
    thread_ = std::thread([this]() { exit_code_ = server_->run(); });
  }

  /// The bound TCP port, waiting for the listener to come up.
  [[nodiscard]] uint16_t tcp_port() const {
    for (int i = 0; i < 500; ++i) {
      const uint16_t port = server_->tcp_port();
      if (port != 0) return port;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return 0;
  }

  ~ServerFixture() {
    if (thread_.joinable()) {
      server_->request_stop();
      thread_.join();
    }
    ::unlink((dir_ + "/d.sock").c_str());
    ::rmdir(dir_.c_str());
  }

  [[nodiscard]] const std::string& socket_path() const {
    return server_->socket_path();
  }

  int shutdown_and_join() {
    Client client(socket_path());
    EXPECT_TRUE(client.connected());
    Json request = Json::object();
    request.set("id", Json::integer(0));
    request.set("method", Json::string("shutdown"));
    EXPECT_TRUE(client.send_line(request.dump()));
    auto response = client.recv_response();
    EXPECT_TRUE(response.has_value());
    thread_.join();
    return exit_code_;
  }

 private:
  std::string dir_;
  std::ostringstream log_;
  std::unique_ptr<Server> server_;
  std::thread thread_;
  int exit_code_ = -1;
};

TEST(Server, PingPong) {
  ServerFixture fixture;
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line(R"({"id": 5, "method": "ping"})"));
  auto response = client.recv_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->at("id").as_int(), 5);
  EXPECT_TRUE(response->at("ok").as_bool());
  EXPECT_TRUE(response->at("result").at("pong").as_bool());
}

TEST(Server, CheckResponseMatchesRunCheckBytes) {
  ServerFixture fixture;
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line(check_request(1, kDts).dump()));
  auto response = client.recv_response();
  ASSERT_TRUE(response.has_value());
  ASSERT_TRUE(response->at("ok").as_bool()) << response->dump();
  const Json& result = response->at("result");

  CheckRequest local;
  local.path = "test.dts";
  local.source = kDts;
  CheckOutcome expected = run_check(local, nullptr);
  EXPECT_EQ(result.at("exit_code").as_int(), expected.exit_code);
  EXPECT_EQ(result.at("stdout").as_string(), expected.output);
  EXPECT_EQ(result.at("stderr").as_string(), expected.error_text);
}

TEST(Server, WarmCheckHitsArtifactCache) {
  ServerFixture fixture;
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line(check_request(1, kDts).dump()));
  auto cold = client.recv_response();
  ASSERT_TRUE(cold.has_value());
  EXPECT_FALSE(cold->at("result").at("trace").at("tree_cache_hit").as_bool());

  ASSERT_TRUE(client.send_line(check_request(2, kDts).dump()));
  auto warm = client.recv_response();
  ASSERT_TRUE(warm.has_value());
  EXPECT_TRUE(warm->at("result").at("trace").at("tree_cache_hit").as_bool());
  EXPECT_TRUE(warm->at("result").at("trace").at("check_cache_hit").as_bool());
  EXPECT_EQ(warm->at("result").at("stdout").as_string(),
            cold->at("result").at("stdout").as_string());
}

TEST(Server, EightConcurrentClients) {
  ServerFixture fixture;
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  // int, not vector<bool>: each thread writes its own element, and
  // vector<bool> packs elements into shared words.
  std::vector<int> ok(kClients, 0);
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i]() {
      Client client(fixture.socket_path());
      if (!client.connected()) return;
      // Half the clients share one source (exercising the in-flight build
      // latch), half get distinct sources (exercising parallel builds).
      std::string source(kDts);
      if (i % 2 == 1) {
        source += "/* client " + std::to_string(i) + " */\n";
      }
      if (!client.send_line(check_request(i, source).dump())) return;
      auto response = client.recv_response();
      ok[i] = response.has_value() && response->at("ok").as_bool(false) &&
              response->at("id").as_int(-1) == i &&
              response->at("result").at("exit_code").as_int(-1) == 0;
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_TRUE(ok[i]) << "client " << i;
  }
}

TEST(Server, StatsReportsCountersAndLatency) {
  ServerFixture fixture;
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line(check_request(1, kDts).dump()));
  ASSERT_TRUE(client.recv_response().has_value());
  ASSERT_TRUE(client.send_line(R"({"id": 2, "method": "stats"})"));
  auto response = client.recv_response();
  ASSERT_TRUE(response.has_value());
  const Json& result = response->at("result");
  EXPECT_EQ(result.at("checks").as_uint(), 1u);
  EXPECT_GE(result.at("requests_total").as_uint(), 2u);
  EXPECT_EQ(result.at("latency").at("count").as_uint(), 1u);
  EXPECT_GT(result.at("latency").at("p95_us").as_uint(), 0u);
  EXPECT_EQ(result.at("store").at("tree_parses").as_uint(), 1u);
}

TEST(Server, StatsCheckCountersMatchTheCheckTrace) {
  ServerFixture fixture;
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());
  // Two overlapping regions so the semantic stage genuinely reaches the
  // solver — kDts alone has no region pair and every counter stays zero.
  std::string source(kDts);
  source.insert(source.rfind("};"),
                "    mmio@40800000 { reg = <0x40800000 0x1000000>; };\n");
  ASSERT_TRUE(client.send_line(check_request(1, source).dump()));
  auto check = client.recv_response();
  ASSERT_TRUE(check.has_value());
  // Every reply is stamped with the wire schema version.
  EXPECT_EQ(check->at("schema_version").as_int(), 1);
  const Json& trace = check->at("result").at("trace");

  ASSERT_TRUE(client.send_line(R"({"id": 2, "method": "stats"})"));
  auto stats = client.recv_response();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->at("schema_version").as_int(), 1);
  // The daemon's cumulative counters are accumulated from each check's
  // trace, which is itself a reduction of the obs event stream — with one
  // check served, the stats section must equal that check's trace verbatim.
  const Json& counters = stats->at("result").at("check_counters");
  for (const char* name : {"solver_checks", "queries_issued", "queries_pruned",
                           "cache_hits", "cache_errors"}) {
    EXPECT_EQ(counters.at(name).as_uint(), trace.at(name).as_uint()) << name;
  }
  EXPECT_GT(counters.at("solver_checks").as_uint(), 0u);
}

TEST(Server, MalformedLineIsBadRequest) {
  ServerFixture fixture;
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line("this is not json"));
  auto response = client.recv_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_FALSE(response->at("ok").as_bool(true));
  EXPECT_EQ(response->at("error").at("code").as_string(), "bad_request");
  // The connection survives a bad line.
  ASSERT_TRUE(client.send_line(R"({"id": 9, "method": "ping"})"));
  auto pong = client.recv_response();
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->at("ok").as_bool());
}

TEST(Server, UnknownMethodIsBadRequest) {
  ServerFixture fixture;
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line(R"({"id": 1, "method": "frobnicate"})"));
  auto response = client.recv_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->at("error").at("code").as_string(), "bad_request");
}

TEST(Server, ZeroQueueLimitRejectsAsOverloaded) {
  ServerFixture fixture(/*queue_limit=*/0);
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line(check_request(1, kDts).dump()));
  auto response = client.recv_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_FALSE(response->at("ok").as_bool(true));
  EXPECT_EQ(response->at("error").at("code").as_string(), "overloaded");
}

TEST(Server, ShutdownRequestDrainsCleanly) {
  ServerFixture fixture;
  {
    Client client(fixture.socket_path());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.send_line(check_request(1, kDts).dump()));
    ASSERT_TRUE(client.recv_response().has_value());
  }
  EXPECT_EQ(fixture.shutdown_and_join(), 0);
}

TEST(Server, RefusesToStealALiveSocket) {
  ServerFixture fixture;
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());

  // A second daemon pointed at the same path must refuse to start instead
  // of unlinking the live socket out from under the first.
  ServerOptions options;
  options.socket_path = fixture.socket_path();
  std::ostringstream log;
  options.log = &log;
  Server second(std::move(options));
  EXPECT_EQ(second.run(), 2);
  EXPECT_NE(log.str().find("refusing to start"), std::string::npos)
      << log.str();

  // The first daemon still owns the socket and still serves.
  ASSERT_TRUE(client.send_line(R"({"id": 1, "method": "ping"})"));
  auto response = client.recv_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->at("ok").as_bool());
}

TEST(Server, SessionRequestOverTheWire) {
  ServerFixture fixture;
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());
  Json product = Json::object();
  product.set("name", Json::string("pa"));
  Json features = Json::array();
  features.push(Json::string("fa"));
  product.set("features", std::move(features));
  Json products = Json::array();
  products.push(std::move(product));
  Json params = Json::object();
  params.set("core_source", Json::string(kDts));
  params.set("core_name", Json::string("core.dts"));
  params.set("deltas_source",
             Json::string("delta da when fa {\n"
                          "    modifies memory@40000000 { status = \"okay\"; }\n"
                          "}\n"));
  params.set("deltas_name", Json::string("t.deltas"));
  params.set("products", std::move(products));
  Json request = Json::object();
  request.set("id", Json::integer(3));
  request.set("method", Json::string("session"));
  request.set("params", std::move(params));
  ASSERT_TRUE(client.send_line(request.dump()));
  auto response = client.recv_response();
  ASSERT_TRUE(response.has_value());
  ASSERT_TRUE(response->at("ok").as_bool(false)) << response->dump();
  const Json& result = response->at("result");
  EXPECT_EQ(result.at("exit_code").as_int(-1), 0);
  ASSERT_EQ(result.at("units").items().size(), 1u);
  EXPECT_EQ(result.at("units").items()[0].at("name").as_string(), "pa");
  EXPECT_EQ(result.at("cost").at("derives").as_uint(), 1u);
}

TEST(Server, HelloReportsProtocolVersionAndCapabilities) {
  ServerFixture fixture;
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line(R"({"id": 1, "method": "hello"})"));
  auto response = client.recv_response();
  ASSERT_TRUE(response.has_value());
  ASSERT_TRUE(response->at("ok").as_bool(false));
  // hello is a new (v2) surface; v1 replies elsewhere stay stamped 1.
  EXPECT_EQ(response->at("schema_version").as_int(), 2);
  const Json& result = response->at("result");
  EXPECT_EQ(result.at("protocol_version").as_int(), kProtocolVersion);
  bool has_check = false;
  for (const Json& cap : result.at("capabilities").items()) {
    if (cap.as_string() == "check") has_check = true;
  }
  EXPECT_TRUE(has_check);
}

TEST(Server, HealthzReportsOkAndWorkerCounts) {
  ServerFixture fixture;
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line(R"({"id": 1, "method": "healthz"})"));
  auto response = client.recv_response();
  ASSERT_TRUE(response.has_value());
  ASSERT_TRUE(response->at("ok").as_bool(false));
  EXPECT_EQ(response->at("schema_version").as_int(), 2);
  const Json& result = response->at("result");
  EXPECT_EQ(result.at("status").as_string(), "ok");
  EXPECT_EQ(result.at("workers").at("configured").as_uint(), 0u);
  EXPECT_EQ(result.at("workers").at("restarts").as_uint(), 0u);
  EXPECT_EQ(result.at("queue_limit").as_uint(), 64u);
}

TEST(Server, V1RepliesKeepSchemaVersionOne) {
  ServerFixture fixture;
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());
  // The pre-versioning surfaces — ping, check, stats, errors — must stay
  // stamped schema_version 1 (and byte-compatible) forever.
  ASSERT_TRUE(client.send_line(R"({"id": 1, "method": "ping"})"));
  auto pong = client.recv_response();
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->at("schema_version").as_int(), 1);
  ASSERT_TRUE(client.send_line(R"({"id": 2, "method": "stats"})"));
  auto stats = client.recv_response();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->at("schema_version").as_int(), 1);
  ASSERT_TRUE(client.send_line("{bad"));
  auto error = client.recv_response();
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->at("schema_version").as_int(), 1);
}

TEST(Server, TcpListenerServesChecksIdentically) {
  ServerFixture fixture([](ServerOptions& options) {
    options.tcp_listen = "127.0.0.1:0";
  });
  const uint16_t port = fixture.tcp_port();
  ASSERT_NE(port, 0);
  Client client(port);
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line(check_request(1, kDts).dump()));
  auto response = client.recv_response();
  ASSERT_TRUE(response.has_value());
  ASSERT_TRUE(response->at("ok").as_bool(false)) << response->dump();
  EXPECT_EQ(response->at("schema_version").as_int(), 1);

  CheckRequest local;
  local.path = "test.dts";
  local.source = kDts;
  CheckOutcome expected = run_check(local, nullptr);
  EXPECT_EQ(response->at("result").at("stdout").as_string(), expected.output);
  EXPECT_EQ(response->at("result").at("exit_code").as_int(),
            expected.exit_code);
}

TEST(Server, ConcurrentTcpAndUnixClients) {
  ServerFixture fixture([](ServerOptions& options) {
    options.tcp_listen = "127.0.0.1:0";
  });
  const uint16_t port = fixture.tcp_port();
  ASSERT_NE(port, 0);
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::vector<int> ok(kClients, 0);
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i]() {
      // Alternate transports; both speak the identical protocol.
      Client client = i % 2 == 0 ? Client(port) : Client(fixture.socket_path());
      if (!client.connected()) return;
      std::string source(kDts);
      source += "/* client " + std::to_string(i) + " */\n";
      if (!client.send_line(check_request(i, source).dump())) return;
      auto response = client.recv_response();
      ok[i] = response.has_value() && response->at("ok").as_bool(false) &&
              response->at("id").as_int(-1) == i &&
              response->at("result").at("exit_code").as_int(-1) == 0;
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_TRUE(ok[i]) << "client " << i;
  }
}

TEST(Server, TenantQuotaRejectsTheSecondAdmission) {
  ServerFixture fixture([](ServerOptions& options) {
    options.tenant_quota = 1;
    options.jobs = 2;
  });
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());
  // A source that genuinely reaches the solver, so the first admission is
  // still in flight when the loop processes the second line of the same
  // read batch.
  std::string slow(kDts);
  slow.insert(slow.rfind("};"),
              "    mmio@40800000 { reg = <0x40800000 0x1000000>; };\n"
              "    mmio@40900000 { reg = <0x40900000 0x1000000>; };\n");
  Json first = check_request(1, slow);
  first.set("tenant", Json::string("t1"));
  Json second = check_request(2, slow);
  second.set("tenant", Json::string("t1"));
  ASSERT_TRUE(client.send_line(first.dump() + "\n" + second.dump()));
  bool saw_ok = false;
  bool saw_quota = false;
  for (int i = 0; i < 2; ++i) {
    auto response = client.recv_response();
    ASSERT_TRUE(response.has_value());
    if (response->at("ok").as_bool(false)) {
      saw_ok = true;
    } else {
      EXPECT_EQ(response->at("error").at("code").as_string(),
                "quota_exceeded");
      saw_quota = true;
    }
  }
  EXPECT_TRUE(saw_ok);
  EXPECT_TRUE(saw_quota);
  // The quota releases with the admission. The release lands just after
  // the response is enqueued (responses are never reordered after drain
  // accounting), so retry briefly.
  bool served = false;
  for (int attempt = 0; attempt < 200 && !served; ++attempt) {
    Json third = check_request(100 + attempt, kDts);
    third.set("tenant", Json::string("t1"));
    ASSERT_TRUE(client.send_line(third.dump()));
    auto response = client.recv_response();
    ASSERT_TRUE(response.has_value());
    served = response->at("ok").as_bool(false);
    if (!served) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(served);
}

TEST(Server, OversizedLineIsTooLargeAndTheConnectionResyncs) {
  ServerFixture fixture([](ServerOptions& options) {
    options.max_line_bytes = 1024;
  });
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());
  std::string huge(4096, 'x');
  ASSERT_TRUE(client.send_line(huge));
  auto response = client.recv_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_FALSE(response->at("ok").as_bool(true));
  EXPECT_EQ(response->at("error").at("code").as_string(), "too_large");
  // The connection resynchronises at the newline and keeps serving.
  ASSERT_TRUE(client.send_line(R"({"id": 9, "method": "ping"})"));
  auto pong = client.recv_response();
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->at("ok").as_bool());
}

// Forked-worker tests live in their own suite: the TSan CI leg filters on
// `Server\.` and must not fork (TSan cannot start threads after a
// multi-threaded fork); release/ASan ctest runs everything.
TEST(ServerWorkers, CheckBytesMatchTheInProcessPath) {
  ServerFixture fixture([](ServerOptions& options) {
    options.workers = 2;
    options.jobs = 1;
  });
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line(check_request(1, kDts).dump()));
  auto response = client.recv_response();
  ASSERT_TRUE(response.has_value());
  ASSERT_TRUE(response->at("ok").as_bool(false)) << response->dump();
  EXPECT_EQ(response->at("schema_version").as_int(), 1);

  CheckRequest local;
  local.path = "test.dts";
  local.source = kDts;
  CheckOutcome expected = run_check(local, nullptr);
  EXPECT_EQ(response->at("result").at("stdout").as_string(), expected.output);
  EXPECT_EQ(response->at("result").at("stderr").as_string(),
            expected.error_text);
  EXPECT_EQ(response->at("result").at("exit_code").as_int(),
            expected.exit_code);
}

TEST(ServerWorkers, StatsAggregateAcrossWorkersIsVersionTwo) {
  ServerFixture fixture([](ServerOptions& options) {
    options.workers = 2;
    options.jobs = 1;
  });
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line(check_request(1, kDts).dump()));
  ASSERT_TRUE(client.recv_response().has_value());
  ASSERT_TRUE(client.send_line(R"({"id": 2, "method": "stats"})"));
  auto stats = client.recv_response();
  ASSERT_TRUE(stats.has_value());
  ASSERT_TRUE(stats->at("ok").as_bool(false)) << stats->dump();
  // Worker-mode stats expose worker detail, so they are a v2 surface.
  EXPECT_EQ(stats->at("schema_version").as_int(), 2);
  const Json& result = stats->at("result");
  EXPECT_EQ(result.at("checks").as_uint(), 1u);
  EXPECT_EQ(result.at("workers").at("configured").as_uint(), 2u);
  EXPECT_EQ(result.at("store").at("tree_parses").as_uint(), 1u);
  // The aggregate also reports the new rejection classes.
  EXPECT_TRUE(result.at("errors").has("quota_exceeded"));
  EXPECT_TRUE(result.at("errors").has("worker_failed"));
}

TEST(ServerWorkers, SessionRequestIsShardedAndAnswered) {
  ServerFixture fixture([](ServerOptions& options) {
    options.workers = 2;
    options.jobs = 1;
  });
  Client client(fixture.socket_path());
  ASSERT_TRUE(client.connected());
  Json product = Json::object();
  product.set("name", Json::string("pa"));
  Json features = Json::array();
  features.push(Json::string("fa"));
  product.set("features", std::move(features));
  Json products = Json::array();
  products.push(std::move(product));
  Json params = Json::object();
  params.set("core_source", Json::string(kDts));
  params.set("core_name", Json::string("core.dts"));
  params.set("deltas_source",
             Json::string("delta da when fa {\n"
                          "    modifies memory@40000000 { status = \"okay\"; }\n"
                          "}\n"));
  params.set("deltas_name", Json::string("t.deltas"));
  params.set("products", std::move(products));
  Json request = Json::object();
  request.set("id", Json::integer(3));
  request.set("method", Json::string("session"));
  request.set("params", std::move(params));
  ASSERT_TRUE(client.send_line(request.dump()));
  auto response = client.recv_response();
  ASSERT_TRUE(response.has_value());
  ASSERT_TRUE(response->at("ok").as_bool(false)) << response->dump();
  EXPECT_EQ(response->at("result").at("exit_code").as_int(-1), 0);
  EXPECT_EQ(response->at("result").at("cost").at("derives").as_uint(), 1u);
}

TEST(ServerWorkers, KillDashNineIsSurvivedWithNoLostResponse) {
  ServerFixture fixture([](ServerOptions& options) {
    options.workers = 2;
    options.jobs = 1;
  });
  Client probe(fixture.socket_path());
  ASSERT_TRUE(probe.connected());
  ASSERT_TRUE(probe.send_line(R"({"id": 0, "method": "healthz"})"));
  auto healthz = probe.recv_response();
  ASSERT_TRUE(healthz.has_value());
  const Json& pids = healthz->at("result").at("workers").at("pids");
  ASSERT_EQ(pids.items().size(), 2u);
  const pid_t victim = static_cast<pid_t>(pids.items()[0].as_int());

  constexpr int kClients = 6;
  std::vector<std::thread> threads;
  std::vector<int> accounted(kClients, 0);
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i]() {
      Client client(fixture.socket_path());
      if (!client.connected()) return;
      std::string source(kDts);
      source += "/* crash client " + std::to_string(i) + " */\n";
      if (!client.send_line(check_request(i, source).dump())) return;
      auto response = client.recv_response();
      if (!response.has_value()) return;
      // Zero wrong, zero lost: the answer is either the correct verdict or
      // an explicit worker_failed error — never silence, never garbage.
      if (response->at("ok").as_bool(false)) {
        accounted[i] =
            response->at("result").at("exit_code").as_int(-1) == 0 ? 1 : 0;
      } else {
        accounted[i] = response->at("error").at("code").as_string() ==
                               "worker_failed"
                           ? 1
                           : 0;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_EQ(::kill(victim, SIGKILL), 0);
  for (auto& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(accounted[i], 1) << "client " << i;
  }

  // The supervisor reaps the corpse and forks a replacement.
  bool recovered = false;
  for (int i = 0; i < 500 && !recovered; ++i) {
    ASSERT_TRUE(probe.send_line(R"({"id": 1, "method": "healthz"})"));
    auto status = probe.recv_response();
    ASSERT_TRUE(status.has_value());
    const Json& workers = status->at("result").at("workers");
    recovered = workers.at("alive").as_uint() == 2u &&
                workers.at("restarts").as_uint() >= 1u;
    if (!recovered) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(recovered);
}

}  // namespace
}  // namespace llhsc::server

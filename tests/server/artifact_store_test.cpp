#include "server/artifact_store.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace llhsc::server {
namespace {

constexpr const char* kCore = R"(/dts-v1/;
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    memory@40000000 { device_type = "memory"; reg = <0x40000000 0x1000000>; };
};
)";

TEST(ArtifactStore, TreeParseIsContentAddressed) {
  ArtifactStore store;
  dts::SourceManager sm1;
  bool hit = true;
  auto a = store.tree(kCore, "core.dts", sm1, &hit);
  EXPECT_FALSE(hit);
  ASSERT_NE(a->tree, nullptr);
  EXPECT_FALSE(a->parse_errors);

  dts::SourceManager sm2;
  auto b = store.tree(kCore, "core.dts", sm2, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(a.get(), b.get()) << "same content must share the parse";
  EXPECT_EQ(store.stats().tree_parses, 1u);
  EXPECT_EQ(store.stats().hits, 1u);
}

TEST(ArtifactStore, DifferentContentDifferentArtifact) {
  ArtifactStore store;
  dts::SourceManager sm;
  auto a = store.tree(kCore, "core.dts", sm);
  std::string edited(kCore);
  edited += "\n";
  auto b = store.tree(edited, "core.dts", sm);
  EXPECT_NE(a->key, b->key);
  EXPECT_EQ(store.stats().tree_parses, 2u);
}

TEST(ArtifactStore, IncludeEditInvalidatesTree) {
  const std::string source = "/dts-v1/;\n/include/ \"frag.dtsi\"\n";
  ArtifactStore store;
  dts::SourceManager sm1;
  sm1.register_file("frag.dtsi", "/ { a = <1>; };\n");
  bool hit = true;
  auto a = store.tree(source, "top.dts", sm1, &hit);
  EXPECT_FALSE(hit);
  ASSERT_FALSE(a->parse_errors) << a->diagnostics_text;
  ASSERT_EQ(a->includes.size(), 1u);
  EXPECT_EQ(a->includes[0].first, "frag.dtsi");

  // Same main source, same include content: hit.
  dts::SourceManager sm2;
  sm2.register_file("frag.dtsi", "/ { a = <1>; };\n");
  auto b = store.tree(source, "top.dts", sm2, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(a.get(), b.get());

  // Same main source, *edited* include: the dependency edge must force a
  // re-parse even though the main text's hash is unchanged.
  dts::SourceManager sm3;
  sm3.register_file("frag.dtsi", "/ { a = <2>; };\n");
  auto c = store.tree(source, "top.dts", sm3, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(b.get(), c.get());
  EXPECT_EQ(store.stats().tree_parses, 2u);
  // The effective key must change with the include content too — derived
  // artifacts (product lines, composed trees, check verdicts) key off it,
  // and a stable key would hand them stale cached results over the fresh
  // parse.
  EXPECT_EQ(a->key, b->key);
  EXPECT_NE(b->key, c->key) << "key must fold the include content hashes";
}

TEST(ArtifactStore, ParseErrorsAreCachedToo) {
  ArtifactStore store;
  dts::SourceManager sm;
  auto a = store.tree("/dts-v1/;\n/ { unterminated", "bad.dts", sm);
  EXPECT_TRUE(a->parse_errors);
  EXPECT_FALSE(a->diagnostics_text.empty());
  bool hit = false;
  auto b = store.tree("/dts-v1/;\n/ { unterminated", "bad.dts", sm, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(a.get(), b.get()) << "a failing input must not re-parse each ask";
}

TEST(ArtifactStore, ConcurrentIdenticalRequestsShareOneBuild) {
  ArtifactStore store;
  constexpr int kThreads = 8;
  std::atomic<int> misses{0};
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const TreeArtifact>> results(kThreads);
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i]() {
      dts::SourceManager sm;
      bool hit = false;
      results[i] = store.tree(kCore, "core.dts", sm, &hit);
      if (!hit) misses.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.stats().tree_parses, 1u)
      << "concurrent identical requests must share one parse";
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(results[0].get(), results[i].get());
  }
}

TEST(ArtifactStore, UnitCheckGetOrBuild) {
  ArtifactStore store;
  int builds = 0;
  auto build = [&]() {
    ++builds;
    CheckArtifact art;
    art.key = 99;
    art.solver_checks = 7;
    return art;
  };
  bool hit = true;
  auto a = store.unit_check(99, build, &hit);
  EXPECT_FALSE(hit);
  auto b = store.unit_check(99, build, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(b->solver_checks, 7u);
  EXPECT_EQ(store.stats().unit_checks, 1u);
}

TEST(ArtifactStore, FifoEvictionBoundsEachClass) {
  ArtifactStore store(/*capacity=*/2);
  auto build = [](uint64_t key) {
    return [key]() {
      CheckArtifact art;
      art.key = key;
      return art;
    };
  };
  (void)store.unit_check(1, build(1));
  (void)store.unit_check(2, build(2));
  (void)store.unit_check(3, build(3));  // evicts key 1
  EXPECT_EQ(store.stats().evictions, 1u);
  bool hit = true;
  (void)store.unit_check(1, build(1), &hit);  // rebuilt, not an error
  EXPECT_FALSE(hit);
  EXPECT_EQ(store.stats().unit_checks, 4u);
}

TEST(ArtifactStore, DeltaModuleFingerprintsAreStableAndDistinct) {
  ArtifactStore store;
  const std::string deltas =
      "delta da when fa {\n"
      "    modifies memory@40000000 { status = \"okay\"; }\n"
      "}\n"
      "delta db when fb {\n"
      "    modifies memory@40000000 { status = \"disabled\"; }\n"
      "}\n";
  auto a = store.deltas(deltas, "t.deltas");
  ASSERT_FALSE(a->parse_errors) << a->diagnostics_text;
  ASSERT_EQ(a->modules.size(), 2u);
  ASSERT_EQ(a->module_keys.size(), 2u);
  EXPECT_NE(a->module_keys[0], a->module_keys[1]);
  EXPECT_EQ(a->module_keys[0], delta_module_fingerprint(a->modules[0]));
}

TEST(ArtifactStore, FnvCombineOrderSensitive) {
  const uint64_t h = 0xcbf29ce484222325ull;
  EXPECT_NE(fnv_combine(fnv_combine(h, 1), 2),
            fnv_combine(fnv_combine(h, 2), 1));
  EXPECT_NE(fnv_combine(h, 0), h);
}

}  // namespace
}  // namespace llhsc::server

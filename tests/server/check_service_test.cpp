#include "server/check_service.hpp"

#include <gtest/gtest.h>

namespace llhsc::server {
namespace {

// A layout whose verdict is decided entirely inside the included .dtsi: the
// clean variant keeps the uart clear of the memory bank, the clashing
// variant parks it on the bank's base address (the paper's §I-A clash).
constexpr const char* kCleanSoc = R"(/ {
    #address-cells = <1>;
    #size-cells = <1>;
    memory@40000000 { device_type = "memory"; reg = <0x40000000 0x1000000>; };
    uart@20000000 { compatible = "ns16550a"; reg = <0x20000000 0x1000>; };
};
)";

constexpr const char* kClashingSoc = R"(/ {
    #address-cells = <1>;
    #size-cells = <1>;
    memory@40000000 { device_type = "memory"; reg = <0x40000000 0x1000000>; };
    uart@40000000 { compatible = "ns16550a"; reg = <0x40000000 0x1000>; };
};
)";

CheckRequest include_request(const char* soc_content) {
  CheckRequest r;
  r.path = "top.dts";
  r.source = "/dts-v1/;\n/include/ \"soc.dtsi\"\n";
  r.includes.emplace_back("soc.dtsi", soc_content);
  return r;
}

TEST(CheckService, IncludeEditChangesCachedVerdict) {
  ArtifactStore store;
  CheckOutcome clean = run_check(include_request(kCleanSoc), &store);
  EXPECT_EQ(clean.exit_code, 0) << clean.error_text;
  EXPECT_EQ(clean.errors, 0u);

  // Same main source, same options — only the .dtsi changed. The stale
  // verdict must NOT come back from the unit-check cache.
  CheckOutcome clash = run_check(include_request(kClashingSoc), &store);
  EXPECT_FALSE(clash.trace.tree_cache_hit);
  EXPECT_FALSE(clash.trace.check_cache_hit)
      << "verdict key must change when an include changes";
  EXPECT_EQ(clash.exit_code, 1) << clash.output;
  EXPECT_GT(clash.errors, 0u) << "the uart/memory clash must surface";

  // And the cached-store answer matches the storeless one byte-for-byte.
  CheckOutcome oneshot = run_check(include_request(kClashingSoc), nullptr);
  EXPECT_EQ(clash.output, oneshot.output);
  EXPECT_EQ(clash.error_text, oneshot.error_text);
  EXPECT_EQ(clash.exit_code, oneshot.exit_code);

  // Restoring the original include restores the clean verdict as a pure
  // cache hit: both keys stay live in the store.
  CheckOutcome restored = run_check(include_request(kCleanSoc), &store);
  EXPECT_TRUE(restored.trace.check_cache_hit);
  EXPECT_EQ(restored.exit_code, 0);
  EXPECT_EQ(restored.output, clean.output);
}

}  // namespace
}  // namespace llhsc::server

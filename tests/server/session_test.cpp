#include "server/session.hpp"

#include <gtest/gtest.h>

namespace llhsc::server {
namespace {

constexpr const char* kCore = R"(/dts-v1/;
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    memory@40000000 { device_type = "memory"; reg = <0x40000000 0x1000000>; };
    uart0: uart@20000000 { compatible = "ns16550a"; reg = <0x20000000 0x1000>; };
};
)";

constexpr const char* kDeltas =
    "delta da when fa {\n"
    "    modifies uart@20000000 { clock-frequency = <1000000>; }\n"
    "}\n"
    "delta db when fb {\n"
    "    modifies memory@40000000 { status = \"okay\"; }\n"
    "}\n";

SessionRequest base_request() {
  SessionRequest r;
  r.core_source = kCore;
  r.core_name = "core.dts";
  r.deltas_source = kDeltas;
  r.deltas_name = "t.deltas";
  r.products.push_back({"pa", {"fa"}});
  r.products.push_back({"pb", {"fb"}});
  return r;
}

TEST(Session, ColdRunChecksEveryProduct) {
  ArtifactStore store;
  SessionOutcome out = run_session_check(base_request(), store);
  EXPECT_EQ(out.exit_code, 0) << out.error_text;
  ASSERT_EQ(out.units.size(), 2u);
  EXPECT_EQ(out.units[0].name, "pa");
  EXPECT_EQ(out.units[1].name, "pb");
  EXPECT_FALSE(out.units[0].composed_cache_hit);
  EXPECT_FALSE(out.units[1].composed_cache_hit);
  EXPECT_EQ(out.cost.tree_parses, 1u);
  EXPECT_EQ(out.cost.delta_parses, 1u);
  EXPECT_EQ(out.cost.product_line_builds, 1u);
  EXPECT_EQ(out.cost.derives, 2u);
  EXPECT_EQ(out.cost.unit_checks, 2u);
}

TEST(Session, WarmRunIsAllHits) {
  ArtifactStore store;
  (void)run_session_check(base_request(), store);
  SessionOutcome out = run_session_check(base_request(), store);
  EXPECT_EQ(out.exit_code, 0) << out.error_text;
  ASSERT_EQ(out.units.size(), 2u);
  EXPECT_TRUE(out.units[0].composed_cache_hit);
  EXPECT_TRUE(out.units[0].check_cache_hit);
  EXPECT_TRUE(out.units[1].composed_cache_hit);
  EXPECT_TRUE(out.units[1].check_cache_hit);
  EXPECT_EQ(out.cost.tree_parses, 0u);
  EXPECT_EQ(out.cost.delta_parses, 0u);
  EXPECT_EQ(out.cost.derives, 0u);
  EXPECT_EQ(out.cost.unit_checks, 0u);
}

TEST(Session, EditingOneModuleRechecksOnlyItsProduct) {
  ArtifactStore store;
  (void)run_session_check(base_request(), store);

  // Edit db's body: pb must re-derive and re-check, pa must stay cached.
  SessionRequest edited = base_request();
  edited.deltas_source =
      "delta da when fa {\n"
      "    modifies uart@20000000 { clock-frequency = <1000000>; }\n"
      "}\n"
      "delta db when fb {\n"
      "    modifies memory@40000000 { status = \"disabled\"; }\n"
      "}\n";
  SessionOutcome out = run_session_check(edited, store);
  EXPECT_EQ(out.exit_code, 0) << out.error_text;
  ASSERT_EQ(out.units.size(), 2u);
  EXPECT_TRUE(out.units[0].composed_cache_hit) << "pa does not activate db";
  EXPECT_TRUE(out.units[0].check_cache_hit);
  EXPECT_FALSE(out.units[1].composed_cache_hit);
  EXPECT_FALSE(out.units[1].check_cache_hit);
  EXPECT_EQ(out.cost.tree_parses, 0u) << "core text unchanged";
  EXPECT_EQ(out.cost.delta_parses, 1u);
  EXPECT_EQ(out.cost.derives, 1u) << "only pb's composed tree rebuilds";
  EXPECT_EQ(out.cost.unit_checks, 1u);
}

TEST(Session, IncludeEditRebuildsEveryUnit) {
  // The same nodes as kCore, but loaded through a .dtsi — the core's main
  // text never changes in this test, only the include's content.
  constexpr const char* kSocV1 = R"(/ {
    #address-cells = <1>;
    #size-cells = <1>;
    memory@40000000 { device_type = "memory"; reg = <0x40000000 0x1000000>; };
    uart0: uart@20000000 { compatible = "ns16550a"; reg = <0x20000000 0x1000>; };
};
)";
  ArtifactStore store;
  SessionRequest request = base_request();
  request.core_source = "/dts-v1/;\n/include/ \"soc.dtsi\"\n";
  request.includes.emplace_back("soc.dtsi", kSocV1);
  SessionOutcome cold = run_session_check(request, store);
  EXPECT_EQ(cold.exit_code, 0) << cold.error_text;
  EXPECT_EQ(cold.cost.derives, 2u);

  SessionOutcome warm = run_session_check(request, store);
  EXPECT_EQ(warm.cost.tree_parses, 0u);
  EXPECT_EQ(warm.cost.derives, 0u) << "unchanged include must stay cached";

  // Edit only the .dtsi: the core's effective key changes, so the product
  // line, every composed tree, and every verdict must rebuild — a cached
  // unit check here would be a verdict over the old include content.
  SessionRequest edited = request;
  edited.includes[0].second = R"(/ {
    #address-cells = <1>;
    #size-cells = <1>;
    memory@40000000 { device_type = "memory"; reg = <0x40000000 0x2000000>; };
    uart0: uart@20000000 { compatible = "ns16550a"; reg = <0x20000000 0x1000>; };
};
)";
  SessionOutcome out = run_session_check(edited, store);
  EXPECT_EQ(out.exit_code, 0) << out.error_text;
  ASSERT_EQ(out.units.size(), 2u);
  EXPECT_FALSE(out.units[0].composed_cache_hit);
  EXPECT_FALSE(out.units[0].check_cache_hit);
  EXPECT_FALSE(out.units[1].composed_cache_hit);
  EXPECT_FALSE(out.units[1].check_cache_hit);
  EXPECT_EQ(out.cost.tree_parses, 1u);
  EXPECT_EQ(out.cost.delta_parses, 0u) << "delta text unchanged";
  EXPECT_EQ(out.cost.product_line_builds, 1u) << "wraps the new core tree";
  EXPECT_EQ(out.cost.derives, 2u);
  EXPECT_EQ(out.cost.unit_checks, 2u);
}

TEST(Session, GraphArtifactsRederiveOnlyForEditedUnits) {
  ArtifactStore store;
  SessionOutcome cold = run_session_check(base_request(), store);
  EXPECT_EQ(cold.exit_code, 0) << cold.error_text;
  EXPECT_EQ(cold.cost.graph_builds, 2u) << "one device graph per product";
  EXPECT_EQ(cold.cost.cross_checks, 1u);

  SessionOutcome warm = run_session_check(base_request(), store);
  EXPECT_EQ(warm.cost.graph_builds, 0u) << "unchanged trees, cached graphs";
  EXPECT_EQ(warm.cost.cross_checks, 0u);

  // One-delta edit: only pb's composed tree changes, so only pb's graph
  // artifact re-derives; the cross-unit verdict keys on both graphs and
  // must re-run exactly once.
  SessionRequest edited = base_request();
  edited.deltas_source =
      "delta da when fa {\n"
      "    modifies uart@20000000 { clock-frequency = <1000000>; }\n"
      "}\n"
      "delta db when fb {\n"
      "    modifies memory@40000000 { status = \"disabled\"; }\n"
      "}\n";
  SessionOutcome out = run_session_check(edited, store);
  EXPECT_EQ(out.exit_code, 0) << out.error_text;
  EXPECT_EQ(out.cost.derives, 1u);
  EXPECT_EQ(out.cost.graph_builds, 1u) << "only pb's graph rebuilds";
  EXPECT_EQ(out.cost.cross_checks, 1u);
}

TEST(Session, GraphDisabledBuildsNoGraphArtifacts) {
  ArtifactStore store;
  SessionRequest request = base_request();
  request.graph = false;
  SessionOutcome out = run_session_check(request, store);
  EXPECT_EQ(out.exit_code, 0) << out.error_text;
  EXPECT_EQ(out.cost.graph_builds, 0u);
  EXPECT_EQ(out.cost.cross_checks, 0u);
}

TEST(Session, CrossUnitConflictSurfacesAsGraphUnit) {
  // Both products keep the same enabled uart claiming the same clock
  // provider — the cross-unit exclusive-provider rule must report, as a
  // synthetic "*graph*" unit after the per-product units.
  constexpr const char* kClockedCore = R"(/dts-v1/;
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    memory@40000000 { device_type = "memory"; reg = <0x40000000 0x1000000>; };
    clk: clock-controller@10000000 {
        reg = <0x10000000 0x1000>;
        #clock-cells = <0>;
    };
    uart0: uart@20000000 {
        compatible = "ns16550a";
        reg = <0x20000000 0x1000>;
        clocks = <&clk>;
    };
};
)";
  ArtifactStore store;
  SessionRequest request = base_request();
  request.core_source = kClockedCore;
  request.lint = false;
  request.syntax = false;
  request.semantics = false;
  SessionOutcome out = run_session_check(request, store);
  EXPECT_EQ(out.exit_code, 1);
  ASSERT_GE(out.units.size(), 3u);
  const SessionUnitResult& cross = out.units.back();
  EXPECT_EQ(cross.name, "*graph*");
  EXPECT_EQ(cross.errors, 1u);
  EXPECT_NE(cross.report.find("graph-exclusive-provider"), std::string::npos)
      << cross.report;
  EXPECT_NE(cross.report.find("'pa' and unit 'pb'"), std::string::npos)
      << cross.report;

  // The conflict verdict itself is cached: a warm rerun reports it again
  // without re-running the analysis.
  SessionOutcome warm = run_session_check(request, store);
  EXPECT_EQ(warm.exit_code, 1);
  EXPECT_EQ(warm.cost.cross_checks, 0u);
  EXPECT_EQ(warm.units.back().name, "*graph*");
  EXPECT_TRUE(warm.units.back().check_cache_hit);
}

TEST(Session, PlatformUnitIsUnionOfSelections) {
  ArtifactStore store;
  SessionRequest request = base_request();
  request.check_platform = true;
  SessionOutcome out = run_session_check(request, store);
  EXPECT_EQ(out.exit_code, 0) << out.error_text;
  ASSERT_EQ(out.units.size(), 3u);
  EXPECT_EQ(out.units.back().name, "platform");
  // The platform activates both modules, so its composed tree is distinct
  // from both products': three derives.
  EXPECT_EQ(out.cost.derives, 3u);
}

TEST(Session, CoreParseErrorRejectsRequest) {
  ArtifactStore store;
  SessionRequest request = base_request();
  request.core_source = "/dts-v1/;\n/ { broken";
  SessionOutcome out = run_session_check(request, store);
  EXPECT_EQ(out.exit_code, 1);
  EXPECT_FALSE(out.error_text.empty());
  EXPECT_TRUE(out.units.empty());
}

TEST(Session, AllocationRequiresModel) {
  ArtifactStore store;
  SessionRequest request = base_request();
  request.check_allocation = true;
  SessionOutcome out = run_session_check(request, store);
  EXPECT_EQ(out.exit_code, 2);
  EXPECT_NE(out.error_text.find("feature model"), std::string::npos);
}

constexpr const char* kLiftedModel =
    "model T {\n"
    "  fa;\n"
    "  fb;\n"
    "}\n";

SessionRequest lifted_request() {
  SessionRequest r = base_request();
  r.products.clear();
  r.model_source = kLiftedModel;
  r.model_name = "t.fm";
  r.check_lifted = true;
  return r;
}

TEST(SessionLifted, RequiresModel) {
  ArtifactStore store;
  SessionRequest request = base_request();
  request.check_lifted = true;
  SessionOutcome out = run_session_check(request, store);
  EXPECT_EQ(out.exit_code, 2);
  EXPECT_NE(out.error_text.find("feature model"), std::string::npos);
}

TEST(SessionLifted, FamilyVerdictIsOneCachedUnit) {
  ArtifactStore store;
  SessionOutcome cold = run_session_check(lifted_request(), store);
  EXPECT_EQ(cold.exit_code, 0) << cold.error_text;
  ASSERT_EQ(cold.units.size(), 1u);
  EXPECT_EQ(cold.units[0].name, "*lifted*");
  EXPECT_FALSE(cold.units[0].check_cache_hit);
  EXPECT_EQ(cold.cost.lifted_checks, 1u);
  // No product is ever derived or individually checked.
  EXPECT_EQ(cold.cost.derives, 0u);
  EXPECT_EQ(cold.cost.unit_checks, 0u);

  SessionOutcome warm = run_session_check(lifted_request(), store);
  ASSERT_EQ(warm.units.size(), 1u);
  EXPECT_TRUE(warm.units[0].check_cache_hit);
  EXPECT_EQ(warm.cost.lifted_checks, 0u);
}

TEST(SessionLifted, EditingAnyDeltaInvalidatesTheFamilyVerdict) {
  ArtifactStore store;
  (void)run_session_check(lifted_request(), store);
  SessionRequest edited = lifted_request();
  edited.deltas_source =
      "delta da when fa {\n"
      "    modifies uart@20000000 { clock-frequency = <2000000>; }\n"
      "}\n"
      "delta db when fb {\n"
      "    modifies memory@40000000 { status = \"okay\"; }\n"
      "}\n";
  SessionOutcome out = run_session_check(edited, store);
  ASSERT_EQ(out.units.size(), 1u);
  EXPECT_FALSE(out.units[0].check_cache_hit);
  EXPECT_EQ(out.cost.lifted_checks, 1u);
}

}  // namespace
}  // namespace llhsc::server

// Multi-VM allocation tests — paper §IV-A. E3: with two exclusive CPUs and
// a mandatory cpus feature, the maximum number of VMs is exactly 2.
#include "feature/multivm.hpp"

#include <gtest/gtest.h>

namespace llhsc::feature {
namespace {

std::vector<FeatureId> cpus_of(const FeatureModel& m) {
  return {*m.find("cpu@0"), *m.find("cpu@1")};
}

Selection select(const FeatureModel& m,
                 const std::vector<std::string>& names) {
  Selection sel(m.size(), false);
  for (const std::string& n : names) sel[m.find(n)->index] = true;
  return sel;
}

class MultiVmTest : public ::testing::TestWithParam<smt::Backend> {};

TEST_P(MultiVmTest, SingleVmFeasible) {
  FeatureModel m = running_example_model();
  EXPECT_TRUE(allocation_feasible(m, GetParam(), 1, cpus_of(m)));
}

TEST_P(MultiVmTest, TwoVmsFeasible) {
  FeatureModel m = running_example_model();
  EXPECT_TRUE(allocation_feasible(m, GetParam(), 2, cpus_of(m)));
}

// E3 — "the maximum number of VMs is two (m = 2)".
TEST_P(MultiVmTest, MaxVmsIsTwo) {
  FeatureModel m = running_example_model();
  EXPECT_FALSE(allocation_feasible(m, GetParam(), 3, cpus_of(m)))
      << "3 VMs cannot each own an exclusive CPU from a pool of 2";
  EXPECT_EQ(max_feasible_vms(m, GetParam(), cpus_of(m)), 2);
}

TEST_P(MultiVmTest, Fig1bFig1cAllocationIsValid) {
  FeatureModel m = running_example_model();
  smt::Solver solver(GetParam());
  std::vector<Selection> vms{
      select(m, {"CustomSBC", "memory", "cpus", "cpu@0", "uarts",
                 "uart@20000000", "uart@30000000", "vEthernet", "veth0"}),
      select(m, {"CustomSBC", "memory", "cpus", "cpu@1", "uarts",
                 "uart@20000000", "uart@30000000", "vEthernet", "veth1"}),
  };
  EXPECT_TRUE(check_allocation(m, solver, cpus_of(m), vms));
}

TEST_P(MultiVmTest, SameCpuTwiceIsRejected) {
  FeatureModel m = running_example_model();
  smt::Solver solver(GetParam());
  Selection vm = select(m, {"CustomSBC", "memory", "cpus", "cpu@0", "uarts",
                            "uart@20000000"});
  std::vector<Selection> vms{vm, vm};
  EXPECT_FALSE(check_allocation(m, solver, cpus_of(m), vms))
      << "cpu@0 is exclusive and cannot serve two VMs";
}

TEST_P(MultiVmTest, SharedUartsAcrossVmsAllowed) {
  FeatureModel m = running_example_model();
  smt::Solver solver(GetParam());
  std::vector<Selection> vms{
      select(m, {"CustomSBC", "memory", "cpus", "cpu@0", "uarts",
                 "uart@20000000"}),
      select(m, {"CustomSBC", "memory", "cpus", "cpu@1", "uarts",
                 "uart@20000000"}),
  };
  EXPECT_TRUE(check_allocation(m, solver, cpus_of(m), vms))
      << "UARTs are not exclusive resources";
}

TEST_P(MultiVmTest, PlatformIsUnionOfVmSelections) {
  FeatureModel m = running_example_model();
  smt::Solver solver(GetParam());
  uint64_t n = enumerate_allocations(
      m, solver, 2, cpus_of(m),
      [&](const Allocation& alloc) {
        for (uint32_t i = 0; i < m.size(); ++i) {
          bool any = false;
          for (const Selection& vm : alloc.vm_selections) any = any || vm[i];
          EXPECT_EQ(alloc.platform_selection[i], any)
              << "platform must be the union (feature "
              << m.feature(FeatureId{i}).name << ")";
        }
        return true;
      },
      32);
  EXPECT_GT(n, 0u);
}

TEST_P(MultiVmTest, EnumeratedAllocationsAreValidProducts) {
  FeatureModel m = running_example_model();
  smt::Solver solver(GetParam());
  uint64_t n = enumerate_allocations(
      m, solver, 2, cpus_of(m),
      [&](const Allocation& alloc) {
        for (const Selection& vm : alloc.vm_selections) {
          EXPECT_TRUE(m.is_consistent_selection(vm));
        }
        // Exclusivity.
        for (FeatureId cpu : cpus_of(m)) {
          int holders = 0;
          for (const Selection& vm : alloc.vm_selections) {
            holders += vm[cpu.index] ? 1 : 0;
          }
          EXPECT_LE(holders, 1);
        }
        return true;
      },
      64);
  EXPECT_GT(n, 0u);
}

TEST_P(MultiVmTest, AllTwoVmAllocationsCount) {
  // Each VM is one of the 12 products; exclusivity forces distinct CPUs.
  // VM1 uses cpu@0 (6 products), VM2 uses cpu@1 (6 products), or vice versa:
  // 6*6*2 = 72 ordered allocations.
  FeatureModel m = running_example_model();
  smt::Solver solver(GetParam());
  uint64_t n = enumerate_allocations(
      m, solver, 2, cpus_of(m), [](const Allocation&) { return true; }, 1000);
  EXPECT_EQ(n, 72u);
}

INSTANTIATE_TEST_SUITE_P(Backends, MultiVmTest,
                         ::testing::ValuesIn(smt::all_backends()),
                         [](const ::testing::TestParamInfo<smt::Backend>& info) {
                           return std::string(smt::to_string(info.param));
                         });

}  // namespace
}  // namespace llhsc::feature

// Configurator tests — paper Fig. 1 semantics: decision propagation grays
// out forced/forbidden features, invalid selections are rejected up front.
#include "feature/configurator.hpp"

#include <gtest/gtest.h>

namespace llhsc::feature {
namespace {

class ConfiguratorTest : public ::testing::TestWithParam<smt::Backend> {
 protected:
  FeatureModel model = running_example_model();
  FeatureId id(const char* name) { return *model.find(name); }
};

TEST_P(ConfiguratorTest, MandatoryFeaturesStartForced) {
  Configurator cfg(model, GetParam());
  EXPECT_EQ(cfg.state(model.root()), DecisionState::kForced);
  EXPECT_EQ(cfg.state(id("memory")), DecisionState::kForced);
  EXPECT_EQ(cfg.state(id("cpus")), DecisionState::kForced);
  EXPECT_EQ(cfg.state(id("uarts")), DecisionState::kForced);
  EXPECT_EQ(cfg.state(id("cpu@0")), DecisionState::kOpen);
  EXPECT_EQ(cfg.state(id("vEthernet")), DecisionState::kOpen);
  EXPECT_FALSE(cfg.complete());
}

// The paper's grayed-out CPU behaviour: picking veth0 forces cpu@0 and
// forbids cpu@1 (XOR) and veth1.
TEST_P(ConfiguratorTest, SelectingVethPropagates) {
  Configurator cfg(model, GetParam());
  ASSERT_TRUE(cfg.select(id("veth0")));
  EXPECT_EQ(cfg.state(id("cpu@0")), DecisionState::kForced);
  EXPECT_EQ(cfg.state(id("cpu@1")), DecisionState::kForbidden);
  EXPECT_EQ(cfg.state(id("veth1")), DecisionState::kForbidden);
  EXPECT_EQ(cfg.state(id("vEthernet")), DecisionState::kForced);
}

TEST_P(ConfiguratorTest, ContradictingDecisionRejected) {
  Configurator cfg(model, GetParam());
  ASSERT_TRUE(cfg.select(id("cpu@1")));
  // veth0 requires cpu@0, which XOR-conflicts with cpu@1.
  EXPECT_FALSE(cfg.select(id("veth0")));
  EXPECT_EQ(cfg.state(id("veth0")), DecisionState::kForbidden);
  // State unchanged: cpu@1 still selected.
  EXPECT_EQ(cfg.state(id("cpu@1")), DecisionState::kSelected);
}

TEST_P(ConfiguratorTest, ForcedFeatureCannotBeDeselected) {
  Configurator cfg(model, GetParam());
  EXPECT_FALSE(cfg.deselect(id("memory")));
  EXPECT_TRUE(cfg.select(id("memory"))) << "agreeing confirmation is a no-op";
}

TEST_P(ConfiguratorTest, CompletionYieldsValidProduct) {
  Configurator cfg(model, GetParam());
  ASSERT_TRUE(cfg.select(id("veth1")));
  ASSERT_TRUE(cfg.select(id("uart@20000000")));
  ASSERT_TRUE(cfg.deselect(id("uart@30000000")));
  EXPECT_TRUE(cfg.complete()) << "everything else is implied";
  Selection sel = cfg.current_selection();
  EXPECT_TRUE(model.is_consistent_selection(sel));
  EXPECT_TRUE(sel[id("cpu@1").index]);
  EXPECT_FALSE(sel[id("cpu@0").index]);
}

TEST_P(ConfiguratorTest, RemainingProductsShrinkMonotonically) {
  Configurator cfg(model, GetParam());
  uint64_t r0 = cfg.remaining_products();
  EXPECT_EQ(r0, 12u);
  ASSERT_TRUE(cfg.select(id("cpu@0")));
  uint64_t r1 = cfg.remaining_products();
  EXPECT_EQ(r1, 6u);
  ASSERT_TRUE(cfg.deselect(id("vEthernet")));
  uint64_t r2 = cfg.remaining_products();
  EXPECT_EQ(r2, 3u);  // 3 non-empty UART subsets
  EXPECT_LE(r2, r1);
  EXPECT_LE(r1, r0);
}

TEST_P(ConfiguratorTest, RetractReopensDecision) {
  Configurator cfg(model, GetParam());
  ASSERT_TRUE(cfg.select(id("veth0")));
  EXPECT_EQ(cfg.state(id("cpu@1")), DecisionState::kForbidden);
  ASSERT_TRUE(cfg.retract(id("veth0")));
  EXPECT_EQ(cfg.state(id("veth0")), DecisionState::kOpen);
  EXPECT_EQ(cfg.state(id("cpu@1")), DecisionState::kOpen);
  EXPECT_EQ(cfg.remaining_products(), 12u);
  // Retracting a non-decision fails.
  EXPECT_FALSE(cfg.retract(id("memory")));
}

TEST_P(ConfiguratorTest, EveryReachableCompletionIsValid) {
  // Drive the configurator through all decision sequences over the leaves
  // (greedy: always decide the first open feature both ways, depth 3) and
  // confirm no reachable complete state is inconsistent.
  std::function<void(Configurator&, int)> explore = [&](Configurator& cfg,
                                                        int depth) {
    if (cfg.complete()) {
      EXPECT_TRUE(model.is_consistent_selection(cfg.current_selection()));
      return;
    }
    if (depth == 0) return;
    for (uint32_t i = 0; i < model.size(); ++i) {
      if (cfg.state(FeatureId{i}) != DecisionState::kOpen) continue;
      for (bool value : {true, false}) {
        Configurator copy(model, GetParam());
        // Replay: decisions are not copyable; rebuild by applying the same
        // user decisions then the new one.
        for (uint32_t j = 0; j < model.size(); ++j) {
          if (cfg.state(FeatureId{j}) == DecisionState::kSelected) {
            copy.select(FeatureId{j});
          } else if (cfg.state(FeatureId{j}) == DecisionState::kDeselected) {
            copy.deselect(FeatureId{j});
          }
        }
        bool ok = value ? copy.select(FeatureId{i})
                        : copy.deselect(FeatureId{i});
        if (ok) explore(copy, depth - 1);
      }
      break;  // branching on the first open feature suffices for coverage
    }
  };
  Configurator cfg(model, GetParam());
  explore(cfg, 3);
}

INSTANTIATE_TEST_SUITE_P(Backends, ConfiguratorTest,
                         ::testing::ValuesIn(smt::all_backends()),
                         [](const ::testing::TestParamInfo<smt::Backend>& info) {
                           return std::string(smt::to_string(info.param));
                         });

}  // namespace
}  // namespace llhsc::feature

// The textual feature-model format: parsing, semantics, and the
// print -> parse round trip.
#include "feature/text_format.hpp"

#include <gtest/gtest.h>

#include "feature/analysis.hpp"

namespace llhsc::feature {
namespace {

constexpr const char* kFig1aText = R"(model CustomSBC {
    memory mandatory;
    cpus mandatory group xor {
        cpu@0;
        cpu@1;
    }
    uarts mandatory abstract group or {
        uart@20000000;
        uart@30000000;
    }
    vEthernet abstract group xor {
        veth0;
        veth1;
    }
    constraint veth0 requires cpu@0;
    constraint veth1 requires cpu@1;
}
)";

std::optional<FeatureModel> parse_ok(std::string_view text) {
  support::DiagnosticEngine de;
  auto m = parse_model(text, "m.fm", de);
  EXPECT_FALSE(de.has_errors()) << de.render();
  return m;
}

TEST(TextFormat, ParsesFig1a) {
  auto m = parse_ok(kFig1aText);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->size(), 11u);
  EXPECT_EQ(m->feature(m->root()).name, "CustomSBC");
  EXPECT_TRUE(m->feature(*m->find("memory")).mandatory);
  EXPECT_EQ(m->feature(*m->find("cpus")).group, GroupKind::kXor);
  EXPECT_EQ(m->feature(*m->find("uarts")).group, GroupKind::kOr);
  EXPECT_TRUE(m->feature(*m->find("uarts")).abstract_feature);
  EXPECT_EQ(m->cross_constraints().size(), 2u);
}

TEST(TextFormat, ParsedFig1aMatchesBuiltinModel) {
  // The text form and the builtin C++ construction must describe the same
  // product line: identical product counts and identical valid selections.
  auto parsed = parse_ok(kFig1aText);
  ASSERT_TRUE(parsed.has_value());
  FeatureModel builtin = running_example_model();
  ASSERT_EQ(parsed->size(), builtin.size());
  smt::Solver s1, s2;
  EXPECT_EQ(count_products(*parsed, s1), count_products(builtin, s2));
  for (uint32_t mask = 0; mask < (1u << builtin.size()); ++mask) {
    Selection sel(builtin.size());
    for (uint32_t i = 0; i < builtin.size(); ++i) sel[i] = (mask >> i) & 1;
    EXPECT_EQ(parsed->is_consistent_selection(sel),
              builtin.is_consistent_selection(sel))
        << "mask=" << mask;
  }
}

TEST(TextFormat, PrintParseRoundTrip) {
  auto original = parse_ok(kFig1aText);
  ASSERT_TRUE(original.has_value());
  std::string printed = print_model(*original);
  auto reparsed = parse_ok(printed);
  ASSERT_TRUE(reparsed.has_value()) << printed;
  ASSERT_EQ(reparsed->size(), original->size());
  for (uint32_t i = 0; i < original->size(); ++i) {
    const Feature& a = original->feature(FeatureId{i});
    const Feature& b = reparsed->feature(FeatureId{i});
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.mandatory, b.mandatory);
    EXPECT_EQ(a.abstract_feature, b.abstract_feature);
    EXPECT_EQ(a.group, b.group);
    EXPECT_EQ(a.parent, b.parent);
  }
  EXPECT_EQ(reparsed->cross_constraints().size(),
            original->cross_constraints().size());
}

TEST(TextFormat, RootGroup) {
  auto m = parse_ok("model M group xor { a; b; }\n");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->feature(m->root()).group, GroupKind::kXor);
  smt::Solver solver;
  EXPECT_EQ(count_products(*m, solver), 2u);
}

TEST(TextFormat, NestedGroups) {
  auto m = parse_ok(R"(model M {
    top mandatory group or {
        left group xor { l1; l2; }
        right;
    }
}
)");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->size(), 6u);
  // or over {left, right}; left is xor{l1,l2}. Products: left(l1), left(l2),
  // right, left(l1)+right, left(l2)+right = 5.
  smt::Solver solver;
  EXPECT_EQ(count_products(*m, solver), 5u);
}

TEST(TextFormat, ErrorsAreReported) {
  support::DiagnosticEngine de;
  EXPECT_FALSE(parse_model("nonsense", "m.fm", de).has_value());
  EXPECT_TRUE(de.contains_code("fm-parse"));

  support::DiagnosticEngine de2;
  EXPECT_FALSE(parse_model("model M { a group sideways { b; } }", "m.fm", de2)
                   .has_value());

  support::DiagnosticEngine de3;
  EXPECT_FALSE(
      parse_model("model M { a; constraint a requires ghost; }", "m.fm", de3)
          .has_value());
  EXPECT_TRUE(de3.contains_code("fm-parse"));

  support::DiagnosticEngine de4;
  EXPECT_FALSE(parse_model("model M { a ", "m.fm", de4).has_value());
}

TEST(TextFormat, CardinalityGroups) {
  auto m = parse_ok(R"(model M {
    cluster mandatory group [2..3] { a; b; c; d; }
}
)");
  ASSERT_TRUE(m.has_value());
  const Feature& cluster = m->feature(*m->find("cluster"));
  EXPECT_EQ(cluster.group, GroupKind::kCardinality);
  EXPECT_EQ(cluster.group_min, 2u);
  EXPECT_EQ(cluster.group_max, 3u);
  smt::Solver solver;
  EXPECT_EQ(count_products(*m, solver), 10u);

  // Round trip.
  std::string printed = print_model(*m);
  EXPECT_NE(printed.find("group [2..3]"), std::string::npos) << printed;
  auto reparsed = parse_ok(printed);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->feature(*reparsed->find("cluster")).group_max, 3u);
}

TEST(TextFormat, CardinalityWithSpaces) {
  auto m = parse_ok("model M { g group [1 .. 2] { a; b; } }\n");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->feature(*m->find("g")).group_min, 1u);
}

TEST(TextFormat, BadCardinalityRejected) {
  support::DiagnosticEngine de;
  EXPECT_FALSE(
      parse_model("model M { g group [3..1] { a; } }", "m.fm", de).has_value());
}

TEST(TextFormat, ExcludesConstraint) {
  auto m = parse_ok("model M { a; b; constraint a excludes b; }\n");
  ASSERT_TRUE(m.has_value());
  smt::Solver solver;
  EXPECT_EQ(count_products(*m, solver), 3u);  // {}, {a}, {b}
}

}  // namespace
}  // namespace llhsc::feature

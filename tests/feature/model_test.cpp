#include "feature/model.hpp"

#include <gtest/gtest.h>

#include "feature/analysis.hpp"

namespace llhsc::feature {
namespace {

TEST(FeatureModel, Construction) {
  FeatureModel m;
  FeatureId root = m.add_root("root");
  FeatureId a = m.add_feature(root, "a", true);
  FeatureId b = m.add_feature(root, "b");
  m.set_group(root, GroupKind::kAnd);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.root(), root);
  EXPECT_EQ(m.feature(a).name, "a");
  EXPECT_TRUE(m.feature(a).mandatory);
  EXPECT_FALSE(m.feature(b).mandatory);
  EXPECT_EQ(m.feature(root).children.size(), 2u);
  EXPECT_EQ(m.find("b"), b);
  EXPECT_FALSE(m.find("zzz").has_value());
}

TEST(FeatureModel, ConsistencyCheckerAndGroup) {
  FeatureModel m;
  FeatureId root = m.add_root("r");
  m.add_feature(root, "must", true);
  m.add_feature(root, "may", false);
  // {root, must} ok; {root} violates mandatory; {root, must, may} ok.
  EXPECT_TRUE(m.is_consistent_selection({true, true, false}));
  EXPECT_FALSE(m.is_consistent_selection({true, false, false}));
  EXPECT_TRUE(m.is_consistent_selection({true, true, true}));
  // Root must always be selected.
  EXPECT_FALSE(m.is_consistent_selection({false, false, false}));
  // Child without parent.
  EXPECT_FALSE(m.is_consistent_selection({false, true, false}));
}

TEST(FeatureModel, ConsistencyXorGroup) {
  FeatureModel m;
  FeatureId root = m.add_root("r");
  FeatureId g = m.add_feature(root, "g", true);
  m.set_group(g, GroupKind::kXor);
  m.add_feature(g, "x");
  m.add_feature(g, "y");
  EXPECT_TRUE(m.is_consistent_selection({true, true, true, false}));
  EXPECT_TRUE(m.is_consistent_selection({true, true, false, true}));
  EXPECT_FALSE(m.is_consistent_selection({true, true, true, true}));
  EXPECT_FALSE(m.is_consistent_selection({true, true, false, false}));
}

TEST(FeatureModel, ConsistencyOrGroup) {
  FeatureModel m;
  FeatureId root = m.add_root("r");
  FeatureId g = m.add_feature(root, "g", true);
  m.set_group(g, GroupKind::kOr);
  m.add_feature(g, "x");
  m.add_feature(g, "y");
  EXPECT_TRUE(m.is_consistent_selection({true, true, true, true}));
  EXPECT_TRUE(m.is_consistent_selection({true, true, true, false}));
  EXPECT_FALSE(m.is_consistent_selection({true, true, false, false}));
}

TEST(FeatureModel, CrossConstraints) {
  FeatureModel m;
  FeatureId root = m.add_root("r");
  FeatureId a = m.add_feature(root, "a");
  FeatureId b = m.add_feature(root, "b");
  FeatureId c = m.add_feature(root, "c");
  m.add_requires(a, b);
  m.add_excludes(b, c);
  EXPECT_TRUE(m.is_consistent_selection({true, true, true, false}));
  EXPECT_FALSE(m.is_consistent_selection({true, true, false, false}))
      << "a requires b";
  EXPECT_FALSE(m.is_consistent_selection({true, false, true, true}))
      << "b excludes c";
  EXPECT_TRUE(m.is_consistent_selection({true, false, false, true}));
}

TEST(RunningExample, ModelShape) {
  FeatureModel m = running_example_model();
  // root, memory, cpus, cpu@0, cpu@1, uarts, uart@20000000, uart@30000000,
  // vEthernet, veth0, veth1.
  EXPECT_EQ(m.size(), 11u);
  EXPECT_TRUE(m.find("CustomSBC").has_value());
  EXPECT_EQ(m.feature(*m.find("cpus")).group, GroupKind::kXor);
  EXPECT_EQ(m.feature(*m.find("uarts")).group, GroupKind::kOr);
  EXPECT_EQ(m.feature(*m.find("vEthernet")).group, GroupKind::kXor);
  EXPECT_TRUE(m.feature(*m.find("uarts")).abstract_feature);
  EXPECT_EQ(m.cross_constraints().size(), 2u);
}

}  // namespace
}  // namespace llhsc::feature

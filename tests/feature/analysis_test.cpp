// Feature-model analyses, parameterized over both solver backends. E1: the
// running example (paper Fig. 1a) has exactly 12 valid products.
#include "feature/analysis.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace llhsc::feature {
namespace {

class AnalysisTest : public ::testing::TestWithParam<smt::Backend> {
 protected:
  smt::Solver make_solver() { return smt::Solver(GetParam()); }
};

TEST_P(AnalysisTest, TrivialModelHasOneProduct) {
  FeatureModel m;
  m.add_root("r");
  smt::Solver solver(GetParam());
  EXPECT_FALSE(is_void(m, solver));
  EXPECT_EQ(count_products(m, solver), 1u);
}

TEST_P(AnalysisTest, OptionalFeaturesDoubleProducts) {
  FeatureModel m;
  FeatureId root = m.add_root("r");
  m.add_feature(root, "a");
  m.add_feature(root, "b");
  m.add_feature(root, "c");
  smt::Solver solver(GetParam());
  EXPECT_EQ(count_products(m, solver), 8u);
}

TEST_P(AnalysisTest, MandatoryFeatureDoesNotMultiply) {
  FeatureModel m;
  FeatureId root = m.add_root("r");
  m.add_feature(root, "must", true);
  m.add_feature(root, "may");
  smt::Solver solver(GetParam());
  EXPECT_EQ(count_products(m, solver), 2u);
}

TEST_P(AnalysisTest, LargeXorGroupCounts) {
  // Exceeds the pairwise at-most-one limit, exercising the sequential
  // encoding inside a feature model.
  FeatureModel m;
  FeatureId root = m.add_root("r");
  FeatureId g = m.add_feature(root, "g", true);
  m.set_group(g, GroupKind::kXor);
  constexpr int kChildren = 12;
  for (int i = 0; i < kChildren; ++i) {
    m.add_feature(g, "x" + std::to_string(i));
  }
  smt::Solver solver(GetParam());
  EXPECT_EQ(count_products(m, solver), static_cast<uint64_t>(kChildren));
}

TEST_P(AnalysisTest, CardinalityGroupCounts) {
  // [2..3] over 4 children: C(4,2) + C(4,3) = 6 + 4 = 10 products.
  FeatureModel m;
  FeatureId root = m.add_root("r");
  FeatureId g = m.add_feature(root, "g", true);
  m.set_group_cardinality(g, 2, 3);
  for (int i = 0; i < 4; ++i) m.add_feature(g, "x" + std::to_string(i));
  smt::Solver solver(GetParam());
  EXPECT_EQ(count_products(m, solver), 10u);
}

TEST_P(AnalysisTest, CardinalityGroupBruteForce) {
  FeatureModel m;
  FeatureId root = m.add_root("r");
  FeatureId g = m.add_feature(root, "g");  // optional parent
  m.set_group_cardinality(g, 1, 2);
  for (int i = 0; i < 5; ++i) m.add_feature(g, "x" + std::to_string(i));
  uint64_t brute = 0;
  for (uint32_t mask = 0; mask < (1u << m.size()); ++mask) {
    Selection sel(m.size());
    for (uint32_t i = 0; i < m.size(); ++i) sel[i] = (mask >> i) & 1;
    if (m.is_consistent_selection(sel)) ++brute;
  }
  smt::Solver solver(GetParam());
  EXPECT_EQ(count_products(m, solver), brute);
  // parent absent (1) + parent with 1..2 of 5 children (5 + 10).
  EXPECT_EQ(brute, 16u);
}

TEST_P(AnalysisTest, XorGroupCounts) {
  FeatureModel m;
  FeatureId root = m.add_root("r");
  FeatureId g = m.add_feature(root, "g", true);
  m.set_group(g, GroupKind::kXor);
  m.add_feature(g, "x");
  m.add_feature(g, "y");
  m.add_feature(g, "z");
  smt::Solver solver(GetParam());
  EXPECT_EQ(count_products(m, solver), 3u);
}

TEST_P(AnalysisTest, OrGroupCounts) {
  FeatureModel m;
  FeatureId root = m.add_root("r");
  FeatureId g = m.add_feature(root, "g", true);
  m.set_group(g, GroupKind::kOr);
  m.add_feature(g, "x");
  m.add_feature(g, "y");
  m.add_feature(g, "z");
  smt::Solver solver(GetParam());
  EXPECT_EQ(count_products(m, solver), 7u);  // non-empty subsets of 3
}

TEST_P(AnalysisTest, OptionalGroupParent) {
  FeatureModel m;
  FeatureId root = m.add_root("r");
  FeatureId g = m.add_feature(root, "g");  // optional
  m.set_group(g, GroupKind::kXor);
  m.add_feature(g, "x");
  m.add_feature(g, "y");
  smt::Solver solver(GetParam());
  EXPECT_EQ(count_products(m, solver), 3u);  // absent, x, y
}

TEST_P(AnalysisTest, VoidModelDetected) {
  FeatureModel m;
  FeatureId root = m.add_root("r");
  FeatureId a = m.add_feature(root, "a", true);
  FeatureId b = m.add_feature(root, "b", true);
  m.add_excludes(a, b);
  smt::Solver solver(GetParam());
  EXPECT_TRUE(is_void(m, solver));
  EXPECT_EQ(count_products(m, solver), 0u);
}

TEST_P(AnalysisTest, DeadFeatures) {
  FeatureModel m;
  FeatureId root = m.add_root("r");
  FeatureId a = m.add_feature(root, "a", true);
  FeatureId dead = m.add_feature(root, "dead");
  m.add_excludes(dead, a);  // dead requires ~a, but a is mandatory
  smt::Solver solver(GetParam());
  auto result = dead_features(m, solver);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], dead);
}

TEST_P(AnalysisTest, CoreFeatures) {
  FeatureModel m;
  FeatureId root = m.add_root("r");
  FeatureId a = m.add_feature(root, "a", true);
  FeatureId b = m.add_feature(root, "b");
  FeatureId c = m.add_feature(root, "c");
  m.add_requires(root, c);  // root always selected -> c core
  smt::Solver solver(GetParam());
  auto result = core_features(m, solver);
  // root, a (mandatory), c (required by root).
  EXPECT_EQ(result.size(), 3u);
  EXPECT_TRUE(std::find(result.begin(), result.end(), a) != result.end());
  EXPECT_TRUE(std::find(result.begin(), result.end(), c) != result.end());
  EXPECT_FALSE(std::find(result.begin(), result.end(), b) != result.end());
}

// E1 — paper Fig. 1a: "In this feature model there are 12 valid products".
TEST_P(AnalysisTest, RunningExampleHasTwelveProducts) {
  FeatureModel m = running_example_model();
  smt::Solver solver(GetParam());
  EXPECT_EQ(count_products(m, solver), 12u);
}

TEST_P(AnalysisTest, RunningExampleEnumerationMatchesBruteForce) {
  FeatureModel m = running_example_model();
  smt::Solver solver(GetParam());
  uint64_t solver_count = 0;
  enumerate_products(m, solver, [&](const Selection& sel) {
    EXPECT_TRUE(m.is_consistent_selection(sel))
        << "solver enumerated an inconsistent product";
    ++solver_count;
    return true;
  });
  // Brute force over all 2^11 selections.
  uint64_t brute = 0;
  for (uint32_t mask = 0; mask < (1u << m.size()); ++mask) {
    Selection sel(m.size());
    for (uint32_t i = 0; i < m.size(); ++i) sel[i] = (mask >> i) & 1;
    if (m.is_consistent_selection(sel)) ++brute;
  }
  EXPECT_EQ(solver_count, brute);
  EXPECT_EQ(brute, 12u);
}

TEST_P(AnalysisTest, CappedEnumerationReportsTruncation) {
  FeatureModel m = running_example_model();
  smt::Solver solver(GetParam());
  // 12 products: a cap of 5 is hit with products left over...
  uint64_t streamed = 0;
  bool capped = false;
  uint64_t n = enumerate_products(
      m, solver, [&](const Selection&) { ++streamed; return true; }, 5,
      &capped);
  EXPECT_EQ(n, 5u);
  EXPECT_EQ(streamed, 5u);
  EXPECT_TRUE(capped);
  // ...while a cap of exactly 12 drains the family and is NOT flagged.
  capped = true;
  n = enumerate_products(
      m, solver, [&](const Selection&) { return true; }, 12, &capped);
  EXPECT_EQ(n, 12u);
  EXPECT_FALSE(capped);
}

TEST_P(AnalysisTest, RunningExampleCrossConstraintsEnforced) {
  FeatureModel m = running_example_model();
  smt::Solver solver(GetParam());
  // veth0 with cpu@1 is invalid (veth0 requires cpu@0).
  Selection bad(m.size(), false);
  for (const char* name : {"CustomSBC", "memory", "cpus", "cpu@1", "uarts",
                           "uart@20000000", "vEthernet", "veth0"}) {
    bad[m.find(name)->index] = true;
  }
  EXPECT_FALSE(is_valid_product(m, solver, bad));
  // Swap to veth1: valid.
  Selection good = bad;
  good[m.find("veth0")->index] = false;
  good[m.find("veth1")->index] = true;
  EXPECT_TRUE(is_valid_product(m, solver, good));
}

TEST_P(AnalysisTest, RunningExampleHasNoDeadFeatures) {
  FeatureModel m = running_example_model();
  smt::Solver solver(GetParam());
  EXPECT_TRUE(dead_features(m, solver).empty());
}

TEST_P(AnalysisTest, ExplainInvalidProduct) {
  FeatureModel m = running_example_model();
  smt::Solver solver(GetParam());
  // veth0 without cpu@0 — the explanation must involve the participants of
  // the violated cross-constraint (veth0 selected, cpu@0 deselected) or the
  // XOR group that forces the conflict.
  Selection bad(m.size(), false);
  for (const char* name : {"CustomSBC", "memory", "cpus", "cpu@1", "uarts",
                           "uart@20000000", "vEthernet", "veth0"}) {
    bad[m.find(name)->index] = true;
  }
  auto conflict = explain_invalid_product(m, solver, bad);
  ASSERT_FALSE(conflict.empty());
  bool mentions_veth0 = false;
  for (FeatureId f : conflict) {
    if (m.feature(f).name == "veth0") mentions_veth0 = true;
  }
  EXPECT_TRUE(mentions_veth0) << "the core should involve veth0";
  // A valid product explains to nothing.
  Selection good = bad;
  good[m.find("veth0")->index] = false;
  good[m.find("veth1")->index] = true;
  EXPECT_TRUE(explain_invalid_product(m, solver, good).empty());
}

TEST_P(AnalysisTest, FalseOptionalDetection) {
  FeatureModel m;
  FeatureId root = m.add_root("r");
  m.add_feature(root, "a", /*mandatory=*/true);
  FeatureId b = m.add_feature(root, "b");  // optional...
  m.add_requires(root, b);                 // ...but forced by the root
  m.add_feature(root, "c");                // genuinely optional
  smt::Solver solver(GetParam());
  auto fo = false_optional_features(m, solver);
  ASSERT_EQ(fo.size(), 1u);
  EXPECT_EQ(fo[0], b);
}

TEST_P(AnalysisTest, EnumerationLimitRespected) {
  FeatureModel m = running_example_model();
  smt::Solver solver(GetParam());
  EXPECT_EQ(count_products(m, solver, 5), 5u);
}

INSTANTIATE_TEST_SUITE_P(Backends, AnalysisTest,
                         ::testing::ValuesIn(smt::all_backends()),
                         [](const ::testing::TestParamInfo<smt::Backend>& info) {
                           return std::string(smt::to_string(info.param));
                         });

// Property sweep: random feature models, solver count == brute-force count.
struct RandomModelCase {
  uint32_t seed;
  smt::Backend backend;
};

class RandomModelTest : public ::testing::TestWithParam<RandomModelCase> {};

TEST_P(RandomModelTest, CountMatchesBruteForce) {
  std::mt19937 rng(GetParam().seed);
  FeatureModel m;
  FeatureId root = m.add_root("r");
  std::vector<FeatureId> pool{root};
  std::uniform_int_distribution<int> group_dist(0, 2);
  std::uniform_int_distribution<int> flag(0, 1);
  int n = 8;
  for (int i = 0; i < n; ++i) {
    std::uniform_int_distribution<size_t> parent_dist(0, pool.size() - 1);
    FeatureId parent = pool[parent_dist(rng)];
    FeatureId f = m.add_feature(parent, "f" + std::to_string(i), flag(rng));
    pool.push_back(f);
  }
  for (FeatureId f : pool) {
    m.set_group(f, static_cast<GroupKind>(group_dist(rng)));
  }
  // A couple of random cross-constraints.
  std::uniform_int_distribution<size_t> pick(1, pool.size() - 1);
  m.add_requires(pool[pick(rng)], pool[pick(rng)]);
  m.add_excludes(pool[pick(rng)], pool[pick(rng)]);

  uint64_t brute = 0;
  for (uint32_t mask = 0; mask < (1u << m.size()); ++mask) {
    Selection sel(m.size());
    for (uint32_t i = 0; i < m.size(); ++i) sel[i] = (mask >> i) & 1;
    if (m.is_consistent_selection(sel)) ++brute;
  }
  smt::Solver solver(GetParam().backend);
  EXPECT_EQ(count_products(m, solver), brute);
}

std::vector<RandomModelCase> random_cases() {
  std::vector<RandomModelCase> cases;
  for (uint32_t seed = 1; seed <= 10; ++seed) {
    cases.push_back({seed, smt::Backend::kBuiltin});
    cases.push_back({seed + 100, smt::Backend::kZ3});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Random, RandomModelTest,
                         ::testing::ValuesIn(random_cases()));

}  // namespace
}  // namespace llhsc::feature

// Bao config generation — paper Listings 3 (E8) and 6 (E9).
#include "baogen/baogen.hpp"

#include <gtest/gtest.h>

#include "core/running_example.hpp"
#include "dts/parser.hpp"

namespace llhsc::baogen {
namespace {

std::unique_ptr<dts::Tree> parse_ok(std::string_view src) {
  support::DiagnosticEngine de;
  dts::SourceManager sm = core::running_example_sources();
  auto t = dts::parse_dts(src, "t.dts", sm, de);
  EXPECT_FALSE(de.has_errors()) << de.render();
  return t;
}

// E8 — Listing 3: platform_desc for the running example.
TEST(Baogen, PlatformFromRunningExample) {
  auto tree = parse_ok(core::running_example_core_dts());
  support::DiagnosticEngine de;
  PlatformConfig p = extract_platform(*tree, de);
  EXPECT_FALSE(de.has_errors()) << de.render();
  EXPECT_EQ(p.cpu_num, 2u);
  ASSERT_EQ(p.regions.size(), 2u);
  EXPECT_EQ(p.regions[0], (MemRegion{0x40000000, 0x20000000}));
  EXPECT_EQ(p.regions[1], (MemRegion{0x60000000, 0x20000000}));
  EXPECT_EQ(p.console_base, 0x20000000u);
  EXPECT_EQ(p.cluster_core_counts, (std::vector<uint32_t>{2}));
}

TEST(Baogen, PlatformRenderingMatchesListing3Shape) {
  auto tree = parse_ok(core::running_example_core_dts());
  support::DiagnosticEngine de;
  std::string c = render_platform_c(extract_platform(*tree, de));
  EXPECT_NE(c.find("#include <platform.h>"), std::string::npos);
  EXPECT_NE(c.find(".cpu_num = 2"), std::string::npos);
  EXPECT_NE(c.find(".base = 0x40000000, .size = 0x20000000"),
            std::string::npos);
  EXPECT_NE(c.find(".base = 0x60000000, .size = 0x20000000"),
            std::string::npos);
  EXPECT_NE(c.find(".console = { .base = 0x20000000 }"), std::string::npos);
  EXPECT_NE(c.find(".core_num = (uint8_t[]) {2}"), std::string::npos);
}

// E9 — Listing 6: one VM using all resources (no partitioning), 32-bit
// addressing, with a veth IPC.
std::unique_ptr<dts::Tree> full_vm_tree() {
  return parse_ok(R"(
/dts-v1/;
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    memory@40000000 {
        device_type = "memory";
        reg = <0x40000000 0x20000000 0x60000000 0x20000000>;
    };
    /include/ "cpus.dtsi"
    uart@20000000 { compatible = "ns16550a"; reg = <0x20000000 0x1000>; };
    uart@30000000 { compatible = "ns16550a"; reg = <0x30000000 0x1000>; };
    vEthernet {
        veth0@70000000 { compatible = "veth"; reg = <0x70000000 0x10000>; id = <0>; };
    };
};
)");
}

TEST(Baogen, VmFromFullTree) {
  auto tree = full_vm_tree();
  support::DiagnosticEngine de;
  VmConfig vm = extract_vm(*tree, "vm", de);
  EXPECT_FALSE(de.has_errors()) << de.render();
  EXPECT_EQ(vm.cpu_num, 2u);
  EXPECT_EQ(vm.cpu_affinity, 0b11u);
  EXPECT_EQ(vm.entry, 0x40000000u);
  EXPECT_EQ(vm.base_addr, 0x40000000u);
  ASSERT_EQ(vm.regions.size(), 2u);
  EXPECT_EQ(vm.regions[0], (MemRegion{0x40000000, 0x20000000}));
  EXPECT_EQ(vm.regions[1], (MemRegion{0x60000000, 0x20000000}));
  ASSERT_EQ(vm.devs.size(), 2u);
  EXPECT_EQ(vm.devs[0], (DevRegion{0x20000000, 0x20000000, 0x1000, ""}));
  EXPECT_EQ(vm.devs[1], (DevRegion{0x30000000, 0x30000000, 0x1000, ""}));
  ASSERT_EQ(vm.ipcs.size(), 1u);
  EXPECT_EQ(vm.ipcs[0].base, 0x70000000u);
  EXPECT_EQ(vm.ipcs[0].size, 0x10000u);
  EXPECT_EQ(vm.ipcs[0].shmem_id, 0u);
}

TEST(Baogen, AssembleConfigDerivesShmems) {
  VmConfig a;
  a.ipcs.push_back({0x70000000, 0x10000, 0, ""});
  VmConfig b;
  b.ipcs.push_back({0x70000000, 0x20000, 0, ""});
  b.ipcs.push_back({0x80000000, 0x4000, 2, ""});
  BaoConfig cfg = assemble_config({a, b});
  ASSERT_EQ(cfg.shmem_sizes.size(), 3u);
  EXPECT_EQ(cfg.shmem_sizes[0], 0x20000u) << "largest ipc wins";
  EXPECT_EQ(cfg.shmem_sizes[1], 0u);
  EXPECT_EQ(cfg.shmem_sizes[2], 0x4000u);
}

TEST(Baogen, ConfigRenderingMatchesListing6Shape) {
  auto tree = full_vm_tree();
  support::DiagnosticEngine de;
  BaoConfig cfg = assemble_config({extract_vm(*tree, "vm", de)});
  std::string c = render_config_c(cfg);
  EXPECT_NE(c.find("#include <config.h>"), std::string::npos);
  EXPECT_NE(c.find("VM_IMAGE(vm, vmimage.bin);"), std::string::npos);
  EXPECT_NE(c.find("CONFIG_HEADER"), std::string::npos);
  EXPECT_NE(c.find(".base_addr = 0x40000000"), std::string::npos);
  EXPECT_NE(c.find(".entry = 0x40000000"), std::string::npos);
  EXPECT_NE(c.find(".cpu_affinity = 0b11"), std::string::npos);
  EXPECT_NE(c.find(".cpu_num = 2, .dev_num = 2"), std::string::npos);
  EXPECT_NE(c.find(".pa = 0x20000000, .va = 0x20000000, .size = 0x1000"),
            std::string::npos);
  EXPECT_NE(c.find(".ipc_num = 1"), std::string::npos);
  EXPECT_NE(c.find(".base = 0x70000000, .size = 0x10000"), std::string::npos);
  EXPECT_NE(c.find(".shmem_id = 0"), std::string::npos);
  EXPECT_NE(c.find(".shmemlist_size = 1"), std::string::npos);
  EXPECT_NE(c.find("[0] = { .size = 0x10000 }"), std::string::npos);
}

TEST(Baogen, QemuCommandRendering) {
  auto tree = full_vm_tree();
  support::DiagnosticEngine de;
  VmConfig vm = extract_vm(*tree, "vm", de);
  std::string cmd = render_qemu_command(vm);
  EXPECT_NE(cmd.find("qemu-system-aarch64"), std::string::npos);
  EXPECT_NE(cmd.find("-machine virt"), std::string::npos);
  EXPECT_NE(cmd.find("-smp 2"), std::string::npos);
  // Two 0x20000000 regions = 1 GiB = 1024M.
  EXPECT_NE(cmd.find("-m 1024M"), std::string::npos) << cmd;
  EXPECT_NE(cmd.find("-dtb vm.dtb"), std::string::npos);
  EXPECT_NE(cmd.find("-serial mon:stdio"), std::string::npos);
  EXPECT_NE(cmd.find("ivshmem-plain,memdev=shmem0"), std::string::npos)
      << "the veth IPC maps onto a shared-memory device: " << cmd;
  EXPECT_NE(cmd.find("size=0x10000"), std::string::npos);
}

TEST(Baogen, QemuOptionsOverride) {
  auto tree = full_vm_tree();
  support::DiagnosticEngine de;
  VmConfig vm = extract_vm(*tree, "vm", de);
  QemuOptions opts;
  opts.qemu_binary = "qemu-system-riscv64";
  opts.machine = "virt,aclint=on";
  opts.cpu = "rv64";
  opts.dtb_path = "out/vm1.dtb";
  std::string cmd = render_qemu_command(vm, opts);
  EXPECT_NE(cmd.find("qemu-system-riscv64"), std::string::npos);
  EXPECT_NE(cmd.find("-cpu rv64"), std::string::npos);
  EXPECT_NE(cmd.find("-dtb out/vm1.dtb"), std::string::npos);
}

TEST(Baogen, SingleCpuVm) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    memory@40000000 { device_type = "memory"; reg = <0x40000000 0x20000000>; };
    cpus {
        #address-cells = <1>;
        #size-cells = <0>;
        cpu@1 { compatible = "arm,cortex-a53"; device_type = "cpu"; reg = <1>; };
    };
};
)");
  support::DiagnosticEngine de;
  VmConfig vm = extract_vm(*tree, "vm1", de);
  EXPECT_EQ(vm.cpu_num, 1u);
  EXPECT_EQ(vm.cpu_affinity, 0b10u) << "affinity reflects the physical id";
}

TEST(Baogen, MissingCpusIsError) {
  auto tree = parse_ok(R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    memory@40000000 { device_type = "memory"; reg = <0x40000000 0x1000>; };
};
)");
  support::DiagnosticEngine de;
  (void)extract_vm(*tree, "vm", de);
  EXPECT_TRUE(de.has_errors());
  support::DiagnosticEngine de2;
  (void)extract_platform(*tree, de2);
  EXPECT_TRUE(de2.has_errors());
}

TEST(Baogen, MissingMemoryIsError) {
  auto tree = parse_ok(R"(
/ {
    cpus {
        #address-cells = <1>;
        #size-cells = <0>;
        cpu@0 { reg = <0>; };
    };
};
)");
  support::DiagnosticEngine de;
  (void)extract_vm(*tree, "vm", de);
  EXPECT_TRUE(de.has_errors());
}

}  // namespace
}  // namespace llhsc::baogen

// SMT facade tests — parameterized over both backends (builtin CDCL
// bit-blasting and the native Z3 API), so every behaviour is checked
// differentially. The paper's semantic checker scenarios (§IV-C memory
// overlap) appear here in miniature.
#include "smt/solver.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <random>

namespace llhsc::smt {
namespace {

class SmtBackendTest : public ::testing::TestWithParam<Backend> {};

TEST_P(SmtBackendTest, TrivialSat) {
  Solver s(GetParam());
  s.add(s.formulas().make_true());
  EXPECT_EQ(s.check(), CheckResult::kSat);
}

TEST_P(SmtBackendTest, TrivialUnsat) {
  Solver s(GetParam());
  s.add(s.formulas().make_false());
  EXPECT_EQ(s.check(), CheckResult::kUnsat);
}

TEST_P(SmtBackendTest, BooleanModelExtraction) {
  Solver s(GetParam());
  auto& fa = s.formulas();
  logic::Formula a = s.bool_var("a");
  logic::Formula b = s.bool_var("b");
  s.add(a);
  s.add(fa.mk_not(b));
  ASSERT_EQ(s.check(), CheckResult::kSat);
  EXPECT_TRUE(s.model_bool(a));
  EXPECT_FALSE(s.model_bool(b));
}

TEST_P(SmtBackendTest, PushPopScopes) {
  Solver s(GetParam());
  auto& fa = s.formulas();
  logic::Formula a = s.bool_var("a");
  s.add(a);
  EXPECT_EQ(s.check(), CheckResult::kSat);
  s.push();
  s.add(fa.mk_not(a));
  EXPECT_EQ(s.check(), CheckResult::kUnsat);
  s.pop();
  EXPECT_EQ(s.check(), CheckResult::kSat);
}

TEST_P(SmtBackendTest, NestedScopes) {
  Solver s(GetParam());
  auto& fa = s.formulas();
  logic::Formula a = s.bool_var("a");
  logic::Formula b = s.bool_var("b");
  s.push();
  s.add(a);
  s.push();
  s.add(fa.mk_not(a));
  EXPECT_EQ(s.check(), CheckResult::kUnsat);
  s.pop();
  EXPECT_EQ(s.check(), CheckResult::kSat);
  s.add(b);
  EXPECT_EQ(s.check(), CheckResult::kSat);
  s.pop();
  // Outside all scopes: no constraints remain.
  s.add(fa.mk_not(a));
  EXPECT_EQ(s.check(), CheckResult::kSat);
}

TEST_P(SmtBackendTest, CheckAssuming) {
  Solver s(GetParam());
  auto& fa = s.formulas();
  logic::Formula a = s.bool_var("a");
  logic::Formula b = s.bool_var("b");
  s.add(fa.mk_implies(a, b));
  std::vector<logic::Formula> assume1{a};
  EXPECT_EQ(s.check_assuming(assume1), CheckResult::kSat);
  EXPECT_TRUE(s.model_bool(b));
  std::vector<logic::Formula> assume2{a, fa.mk_not(b)};
  EXPECT_EQ(s.check_assuming(assume2), CheckResult::kUnsat);
  // No pollution of the base formula.
  EXPECT_EQ(s.check(), CheckResult::kSat);
}

TEST_P(SmtBackendTest, BvEquationSolvable) {
  Solver s(GetParam());
  auto& bv = s.bitvectors();
  auto x = s.bv_var("x", 32);
  // x + 5 == 12  =>  x == 7
  s.add(bv.eq(bv.bv_add(x, bv.bv_const(5, 32)), bv.bv_const(12, 32)));
  ASSERT_EQ(s.check(), CheckResult::kSat);
  EXPECT_EQ(s.model_bv(x), 7u);
}

TEST_P(SmtBackendTest, BvRangeConflict) {
  Solver s(GetParam());
  auto& bv = s.bitvectors();
  auto x = s.bv_var("x", 16);
  s.add(bv.ult(x, bv.bv_const(10, 16)));
  s.add(bv.ugt(x, bv.bv_const(20, 16)));
  EXPECT_EQ(s.check(), CheckResult::kUnsat);
}

// The paper's running-example collision in miniature: memory bank at
// [0x60000000, 0x80000000) and a UART at 0x60000000 must be detected as
// overlapping; a UART at 0x20000000 must not.
TEST_P(SmtBackendTest, MemoryOverlapDetection) {
  for (uint64_t uart_base : {0x60000000ull, 0x20000000ull}) {
    Solver s(GetParam());
    auto& fa = s.formulas();
    auto& bv = s.bitvectors();
    auto b1 = bv.bv_const(0x60000000, 64);
    auto s1 = bv.bv_const(0x20000000, 64);
    auto b2 = bv.bv_const(uart_base, 64);
    auto s2 = bv.bv_const(0x1000, 64);
    // Overlap: b1 < b2 + s2 && b2 < b1 + s1
    logic::Formula overlap = fa.mk_and(bv.ult(b1, bv.bv_add(b2, s2)),
                                       bv.ult(b2, bv.bv_add(b1, s1)));
    s.add(overlap);
    bool expect_overlap = uart_base == 0x60000000ull;
    EXPECT_EQ(s.check(),
              expect_overlap ? CheckResult::kSat : CheckResult::kUnsat)
        << "uart_base=" << std::hex << uart_base;
  }
}

TEST_P(SmtBackendTest, SymbolicOverlapWitness) {
  // Find an address x inside both [0x1000, 0x2000) and [0x1800, 0x2800).
  Solver s(GetParam());
  auto& fa = s.formulas();
  auto& bv = s.bitvectors();
  auto x = s.bv_var("x", 32);
  auto in = [&](uint64_t base, uint64_t size) {
    return fa.mk_and(bv.uge(x, bv.bv_const(base, 32)),
                     bv.ult(x, bv.bv_const(base + size, 32)));
  };
  s.add(in(0x1000, 0x1000));
  s.add(in(0x1800, 0x1000));
  ASSERT_EQ(s.check(), CheckResult::kSat);
  uint64_t witness = s.model_bv(x);
  EXPECT_GE(witness, 0x1800u);
  EXPECT_LT(witness, 0x2000u);
}

TEST_P(SmtBackendTest, UnsatCoreOverAssumptions) {
  Solver s(GetParam());
  auto& fa = s.formulas();
  logic::Formula a = s.bool_var("a");
  logic::Formula b = s.bool_var("b");
  logic::Formula c = s.bool_var("c");
  s.add(fa.mk_not(fa.mk_and(a, b)));  // a and b conflict
  std::vector<logic::Formula> assume{a, b, c};
  ASSERT_EQ(s.check_assuming(assume), CheckResult::kUnsat);
  std::vector<logic::Formula> core = s.unsat_core();
  ASSERT_FALSE(core.empty());
  // Every core element is one of the assumptions, and a or b is present.
  bool has_ab = false;
  for (logic::Formula f : core) {
    bool is_assumption = f == a || f == b || f == c;
    EXPECT_TRUE(is_assumption);
    has_ab = has_ab || f == a || f == b;
  }
  EXPECT_TRUE(has_ab);
}

TEST_P(SmtBackendTest, UnsatCoreWithNegatedAssumptions) {
  Solver s(GetParam());
  auto& fa = s.formulas();
  logic::Formula a = s.bool_var("a");
  s.add(a);
  std::vector<logic::Formula> assume{fa.mk_not(a)};
  ASSERT_EQ(s.check_assuming(assume), CheckResult::kUnsat);
  std::vector<logic::Formula> core = s.unsat_core();
  ASSERT_EQ(core.size(), 1u);
  EXPECT_EQ(core[0], fa.mk_not(a));
}

TEST_P(SmtBackendTest, StatsCountChecks) {
  Solver s(GetParam());
  s.add(s.formulas().make_true());
  s.check();
  s.check();
  EXPECT_EQ(s.stats().checks, 2u);
  EXPECT_EQ(s.stats().sat_results, 2u);
}

INSTANTIATE_TEST_SUITE_P(Backends, SmtBackendTest,
                         ::testing::ValuesIn(all_backends()),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return std::string(to_string(info.param));
                         });

// Differential property test: random mixed bool/bv instances must get the
// same verdict from both backends.
class DifferentialTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DifferentialTest, BackendsAgree) {
  std::mt19937_64 rng(GetParam());
  // Build the same random instance in both solvers.
  auto build_and_check = [&](Backend backend, uint64_t seed) {
    std::mt19937_64 local(seed);
    Solver s(backend);
    auto& fa = s.formulas();
    auto& bv = s.bitvectors();
    auto x = s.bv_var("x", 12);
    auto y = s.bv_var("y", 12);
    std::uniform_int_distribution<uint64_t> val(0, (1 << 12) - 1);
    std::uniform_int_distribution<int> kind(0, 3);
    for (int i = 0; i < 6; ++i) {
      logic::Formula f = fa.make_true();
      uint64_t c = val(local);
      switch (kind(local)) {
        case 0: f = bv.ult(x, bv.bv_const(c, 12)); break;
        case 1: f = bv.uge(y, bv.bv_const(c, 12)); break;
        case 2: f = bv.eq(bv.bv_add(x, y), bv.bv_const(c, 12)); break;
        default: f = fa.mk_not(bv.eq(x, y)); break;
      }
      s.add(f);
    }
    return s.check();
  };
  uint64_t seed = rng();
  CheckResult builtin = build_and_check(Backend::kBuiltin, seed);
  CheckResult z3 = build_and_check(Backend::kZ3, seed);
  EXPECT_EQ(builtin, z3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range(1u, 21u));

TEST_P(SmtBackendTest, MinimalCoreIsMinimal) {
  Solver s(GetParam());
  auto& fa = s.formulas();
  logic::Formula a = s.bool_var("a");
  logic::Formula b = s.bool_var("b");
  logic::Formula c = s.bool_var("c");
  logic::Formula d = s.bool_var("d");
  s.add(fa.mk_implies(a, fa.mk_not(b)));  // a ^ b conflict
  std::vector<logic::Formula> assumptions{a, b, c, d};
  std::vector<logic::Formula> core = s.minimal_core(assumptions);
  ASSERT_EQ(core.size(), 2u) << "only {a, b} is necessary";
  bool has_a = false, has_b = false;
  for (logic::Formula f : core) {
    has_a = has_a || f == a;
    has_b = has_b || f == b;
  }
  EXPECT_TRUE(has_a && has_b);
  // Minimality: every strict subset is satisfiable.
  for (size_t drop = 0; drop < core.size(); ++drop) {
    std::vector<logic::Formula> sub;
    for (size_t j = 0; j < core.size(); ++j) {
      if (j != drop) sub.push_back(core[j]);
    }
    EXPECT_EQ(s.check_assuming(sub), CheckResult::kSat);
  }
}

TEST_P(SmtBackendTest, MinimalCoreOfSatIsEmpty) {
  Solver s(GetParam());
  logic::Formula a = s.bool_var("a");
  std::vector<logic::Formula> assumptions{a};
  EXPECT_TRUE(s.minimal_core(assumptions).empty());
}

// Push/pop stress: random interleavings of scoped assertions and checks must
// produce identical verdict sequences on both backends.
class ScopeStressTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ScopeStressTest, BackendsAgreeUnderRandomScoping) {
  auto run = [](Backend backend, uint32_t seed) {
    std::mt19937 rng(seed);
    Solver s(backend);
    auto& fa = s.formulas();
    std::vector<logic::Formula> vars;
    for (int i = 0; i < 6; ++i) {
      vars.push_back(s.bool_var("v" + std::to_string(i)));
    }
    std::uniform_int_distribution<int> op(0, 9);
    std::uniform_int_distribution<size_t> pick(0, vars.size() - 1);
    std::uniform_int_distribution<int> coin(0, 1);
    int depth = 0;
    std::vector<CheckResult> verdicts;
    for (int step = 0; step < 60; ++step) {
      int o = op(rng);
      if (o < 3) {
        s.push();
        ++depth;
      } else if (o < 5 && depth > 0) {
        s.pop();
        --depth;
      } else if (o < 8) {
        // Random binary clause (possibly negated literals).
        logic::Formula a = vars[pick(rng)];
        logic::Formula b = vars[pick(rng)];
        if (coin(rng)) a = fa.mk_not(a);
        if (coin(rng)) b = fa.mk_not(b);
        s.add(fa.mk_or(a, b));
      } else {
        verdicts.push_back(s.check());
      }
    }
    while (depth-- > 0) s.pop();
    verdicts.push_back(s.check());
    return verdicts;
  };
  uint32_t seed = GetParam();
  EXPECT_EQ(run(Backend::kBuiltin, seed), run(Backend::kZ3, seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScopeStressTest, ::testing::Range(1u, 41u));

// Regression: a base-level unsat verdict must survive repeated checks. The
// builtin backend's CDCL core used to consume its level-0 trail on the way
// to the first kUnsat and report a bogus kSat on the next check.
TEST_P(SmtBackendTest, RepeatedCheckOfUnsatBaseIsStable) {
  Solver s(GetParam());
  auto& fa = s.formulas();
  logic::Formula a = s.bool_var("a");
  logic::Formula b = s.bool_var("b");
  s.add(fa.mk_or(a, b));
  s.add(fa.mk_or(a, fa.mk_not(b)));
  s.add(fa.mk_or(fa.mk_not(a), b));
  s.add(fa.mk_or(fa.mk_not(a), fa.mk_not(b)));
  EXPECT_EQ(s.check(), CheckResult::kUnsat);
  EXPECT_EQ(s.check(), CheckResult::kUnsat);
  EXPECT_EQ(s.check(), CheckResult::kUnsat);
}

// Regression for the same defect through the scope API: the exact
// push/add/check/pop/add/check interleaving the semantic checker issues.
TEST_P(SmtBackendTest, AddAfterPopOfUnsatScope) {
  Solver s(GetParam());
  auto& fa = s.formulas();
  logic::Formula a = s.bool_var("a");
  logic::Formula b = s.bool_var("b");
  s.push();
  s.add(a);
  s.add(fa.mk_not(a));
  EXPECT_EQ(s.check(), CheckResult::kUnsat);
  EXPECT_EQ(s.check(), CheckResult::kUnsat);
  s.pop();
  s.add(b);
  EXPECT_EQ(s.check(), CheckResult::kSat);
  EXPECT_TRUE(s.model_bool(b));
  s.push();
  s.add(fa.mk_not(b));
  EXPECT_EQ(s.check(), CheckResult::kUnsat);
  s.pop();
  s.add(fa.mk_or(a, b));
  EXPECT_EQ(s.check(), CheckResult::kSat);
}

// An expired deadline degrades a query gracefully without touching the
// asserted formula. The builtin solver polls the deadline deterministically
// (at entry, then decimated), so it must answer kUnknown; z3's timeout
// parameter is advisory — its timer thread can starve under load and the
// check may still land a verdict. The instance is satisfiable (the constant
// is odd, so any odd x determines a y mod 2^64), which pins what that
// verdict may be: never kUnsat.
TEST_P(SmtBackendTest, ExpiredDeadlineDegradesGracefully) {
  Solver s(GetParam());
  auto& bv = s.bitvectors();
  auto x = s.bv_var("x", 64);
  auto y = s.bv_var("y", 64);
  // 64-bit factoring: far beyond a 0ms budget on any backend.
  s.add(bv.eq(bv.bv_mul(x, y), bv.bv_const(0xffffffffffffffc5ull, 64)));
  s.add(bv.ugt(x, bv.bv_const(1, 64)));
  s.add(bv.ugt(y, bv.bv_const(1, 64)));
  s.set_deadline(support::Deadline::after_ms(0));
  const CheckResult r = s.check();
  if (GetParam() == Backend::kBuiltin) {
    EXPECT_EQ(r, CheckResult::kUnknown);
  } else {
    EXPECT_NE(r, CheckResult::kUnsat);
  }
  if (r == CheckResult::kUnknown) {
    EXPECT_EQ(s.stats().unknown_results, 1u);
  }
}

// A hard query under a small budget must come back kUnknown in roughly the
// budgeted time — a pathological instance degrades into a visible timeout,
// never a hang. The instance is 28-bit multiplication commutativity, which
// bit-blasted CDCL cannot decide quickly (Z3 rewrites it away, so this is
// builtin-only).
TEST(SmtDeadline, HardQueryTerminatesNearTheBudget) {
  Solver s(Backend::kBuiltin);
  auto& fa = s.formulas();
  auto& bv = s.bitvectors();
  auto x = s.bv_var("x", 28);
  auto y = s.bv_var("y", 28);
  s.add(fa.mk_not(bv.eq(bv.bv_mul(x, y), bv.bv_mul(y, x))));
  s.set_deadline(support::Deadline::after_ms(200));
  auto t0 = std::chrono::steady_clock::now();
  CheckResult r = s.check();
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  EXPECT_EQ(r, CheckResult::kUnknown);
  // ~2x the 200ms budget; generous slack for sanitizer-instrumented runs.
  EXPECT_LT(ms, 2500.0);
}

}  // namespace
}  // namespace llhsc::smt

// Portfolio backend tests — the racing backend must be observationally
// identical to either backend alone: same verdicts, same pinned witnesses,
// same unsat-core contract, plus exactly one winner counter per definitive
// check. Z3 is compiled in unconditionally (CMake requires it), so there is
// no runtime skip; if the build ever gains a z3-less configuration these
// tests gate on all_backends() containing kPortfolio.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "obs/obs.hpp"
#include "smt/query_plan.hpp"
#include "smt/solver.hpp"

namespace llhsc::smt {
namespace {

int64_t counter_total(const std::vector<obs::Event>& events,
                      std::string_view name) {
  int64_t total = 0;
  for (const obs::Event& e : events) {
    if (e.kind == obs::Event::Kind::kCounter && e.name == name) {
      total += e.delta;
    }
  }
  return total;
}

// Three-way differential: builtin-only, z3-only and the portfolio must
// agree on every verdict of the same random mixed bool/bv instance.
class PortfolioDifferentialTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PortfolioDifferentialTest, AllThreeBackendsAgree) {
  auto build_and_check = [](Backend backend, uint64_t seed) {
    std::mt19937_64 local(seed);
    Solver s(backend);
    auto& fa = s.formulas();
    auto& bv = s.bitvectors();
    auto x = s.bv_var("x", 12);
    auto y = s.bv_var("y", 12);
    std::uniform_int_distribution<uint64_t> val(0, (1 << 12) - 1);
    std::uniform_int_distribution<int> kind(0, 3);
    std::vector<CheckResult> verdicts;
    for (int batch = 0; batch < 3; ++batch) {
      for (int i = 0; i < 4; ++i) {
        logic::Formula f = fa.make_true();
        uint64_t c = val(local);
        switch (kind(local)) {
          case 0: f = bv.ult(x, bv.bv_const(c, 12)); break;
          case 1: f = bv.uge(y, bv.bv_const(c, 12)); break;
          case 2: f = bv.eq(bv.bv_add(x, y), bv.bv_const(c, 12)); break;
          default: f = fa.mk_not(bv.eq(x, y)); break;
        }
        s.add(f);
      }
      verdicts.push_back(s.check());
    }
    return verdicts;
  };
  const uint64_t seed = GetParam() * 0x9e3779b97f4a7c15ull;
  auto builtin = build_and_check(Backend::kBuiltin, seed);
  auto z3 = build_and_check(Backend::kZ3, seed);
  auto portfolio = build_and_check(Backend::kPortfolio, seed);
  EXPECT_EQ(builtin, z3);
  EXPECT_EQ(builtin, portfolio);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PortfolioDifferentialTest,
                         ::testing::Range(1u, 21u));

TEST(PortfolioBackendTest, EveryDefinitiveCheckRecordsExactlyOneWinner) {
  obs::TraceSink sink;
  {
    obs::ScopedSink guard(&sink);
    Solver s(Backend::kPortfolio);
    auto& fa = s.formulas();
    logic::Formula a = s.bool_var("a");
    logic::Formula b = s.bool_var("b");
    s.add(fa.mk_or(a, b));
    EXPECT_EQ(s.check(), CheckResult::kSat);
    s.push();
    s.add(fa.mk_not(a));
    s.add(fa.mk_not(b));
    EXPECT_EQ(s.check(), CheckResult::kUnsat);
    s.pop();
    EXPECT_EQ(s.check(), CheckResult::kSat);
  }
  const std::vector<obs::Event> events = sink.snapshot();
  const int64_t builtin_wins = counter_total(events, "portfolio_wins_builtin");
  const int64_t z3_wins = counter_total(events, "portfolio_wins_z3");
  EXPECT_EQ(builtin_wins + z3_wins, 3)
      << "builtin_wins=" << builtin_wins << " z3_wins=" << z3_wins;
  EXPECT_GE(builtin_wins, 0);
  EXPECT_GE(z3_wins, 0);
}

TEST(PortfolioBackendTest, PinnedWitnessIsBackendIndependent) {
  // A query whose witness term has exactly one value in every model — the
  // shape the semantic checker emits — must read back identically no matter
  // which backend wins the race.
  auto witness_of = [](Backend backend) {
    Solver s(backend);
    auto& bv = s.bitvectors();
    auto x = s.bv_var("x", 64);
    s.add(bv.uge(x, bv.bv_const(0x1800, 64)));
    s.add(bv.ult(x, bv.bv_const(0x2000, 64)));
    s.add(bv.eq(x, bv.bv_const(0x1800, 64)));  // the pin
    EXPECT_EQ(s.check(), CheckResult::kSat);
    return s.model_bv(x);
  };
  const uint64_t builtin = witness_of(Backend::kBuiltin);
  const uint64_t z3 = witness_of(Backend::kZ3);
  const uint64_t portfolio = witness_of(Backend::kPortfolio);
  EXPECT_EQ(builtin, 0x1800u);
  EXPECT_EQ(z3, builtin);
  EXPECT_EQ(portfolio, builtin);
}

TEST(PortfolioBackendTest, UnsatCoreComesFromTheWinner) {
  Solver s(Backend::kPortfolio);
  auto& fa = s.formulas();
  logic::Formula a = s.bool_var("a");
  logic::Formula b = s.bool_var("b");
  logic::Formula c = s.bool_var("c");
  s.add(fa.mk_not(fa.mk_and(a, b)));
  std::vector<logic::Formula> assume{a, b, c};
  ASSERT_EQ(s.check_assuming(assume), CheckResult::kUnsat);
  std::vector<logic::Formula> core = s.unsat_core();
  ASSERT_FALSE(core.empty());
  bool has_ab = false;
  for (logic::Formula f : core) {
    EXPECT_TRUE(f == a || f == b || f == c)
        << "core element is not an assumption";
    has_ab = has_ab || f == a || f == b;
  }
  EXPECT_TRUE(has_ab);
}

TEST(PortfolioBackendTest, GuardRetirementStreamMatchesBuiltin) {
  // The query planner's exact call sequence — guarded batch, check_assuming,
  // retire, next batch — replayed on builtin and portfolio side by side.
  auto run = [](Backend backend) {
    Solver s(backend);
    QueryPlanner planner(s, "");
    auto& bv = s.bitvectors();
    std::vector<CheckResult> verdicts;
    std::vector<uint64_t> witnesses;
    const struct { uint64_t a0, a1, b0, b1; } cases[] = {
        {0x1000, 0x1100, 0x1080, 0x1180},  // overlap
        {0x1000, 0x1100, 0x2000, 0x2100},  // disjoint
        {0x0, 0x10, 0x8, 0x18},            // overlap at zero
        {0x5000, 0x5001, 0x5001, 0x5002},  // adjacent
    };
    for (const auto& c : cases) {
      auto x = bv.bv_var("x", 64);
      std::vector<logic::Formula> fs{
          bv.uge(x, bv.bv_const(c.a0, 64)), bv.ult(x, bv.bv_const(c.a1, 64)),
          bv.uge(x, bv.bv_const(c.b0, 64)), bv.ult(x, bv.bv_const(c.b1, 64))};
      // Pin the witness to the intersection's low end so sat answers are
      // byte-comparable across backends.
      fs.push_back(bv.eq(x, bv.bv_const(std::max(c.a0, c.b0), 64)));
      QueryPlanner::Outcome o = planner.check(fs, x);
      verdicts.push_back(o.result);
      witnesses.push_back(o.witness);
    }
    return std::make_pair(verdicts, witnesses);
  };
  const auto builtin = run(Backend::kBuiltin);
  const auto portfolio = run(Backend::kPortfolio);
  EXPECT_EQ(builtin.first, portfolio.first);
  EXPECT_EQ(builtin.second, portfolio.second);
  ASSERT_EQ(builtin.first.size(), 4u);
  EXPECT_EQ(builtin.first[0], CheckResult::kSat);
  EXPECT_EQ(builtin.first[1], CheckResult::kUnsat);
  EXPECT_EQ(builtin.first[2], CheckResult::kSat);
  EXPECT_EQ(builtin.first[3], CheckResult::kUnsat);
}

TEST(PortfolioBackendTest, ExpiredDeadlineNeverHangsOrPoisons) {
  Solver s(Backend::kPortfolio);
  auto& bv = s.bitvectors();
  auto x = s.bv_var("x", 64);
  auto y = s.bv_var("y", 64);
  // 64-bit factoring: far beyond a 0ms budget. The instance is satisfiable
  // (the constant is odd, so any odd x determines a y mod 2^64), which pins
  // what a definitive answer may be. Deadlines are best-effort — z3's
  // timeout parameter is advisory and its timer can starve under load, so a
  // backend may still land a verdict; the contract is that the race returns
  // promptly-or-correctly: unknown from the expired budget, or sat if a
  // solver beat its own cancellation. Never unsat, never a hang.
  s.add(bv.eq(bv.bv_mul(x, y), bv.bv_const(0xffffffffffffffc5ull, 64)));
  s.add(bv.ugt(x, bv.bv_const(1, 64)));
  s.add(bv.ugt(y, bv.bv_const(1, 64)));
  s.set_deadline(support::Deadline::after_ms(0));
  EXPECT_NE(s.check(), CheckResult::kUnsat);
  // A fresh portfolio solver is unaffected by another race timing out.
  Solver trivial(Backend::kPortfolio);
  trivial.add(trivial.formulas().make_true());
  EXPECT_EQ(trivial.check(), CheckResult::kSat);
}

TEST(PortfolioBackendTest, RepeatedRacesOnOneInstanceStayConsistent) {
  // Stress the claim/cancel protocol: many quick races back to back on the
  // same solver, alternating sat and unsat, must never wedge or misreport.
  Solver s(Backend::kPortfolio);
  auto& fa = s.formulas();
  logic::Formula a = s.bool_var("a");
  logic::Formula b = s.bool_var("b");
  s.add(fa.mk_or(a, b));
  std::vector<logic::Formula> sat_assume{a};
  std::vector<logic::Formula> unsat_assume{fa.mk_not(a), fa.mk_not(b)};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(s.check_assuming(sat_assume), CheckResult::kSat) << "round " << i;
    EXPECT_EQ(s.check_assuming(unsat_assume), CheckResult::kUnsat)
        << "round " << i;
  }
}

}  // namespace
}  // namespace llhsc::smt

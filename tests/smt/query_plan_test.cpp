// Query planner + persistent query cache tests. The planner's contract is
// verdict transparency: batched guarded solving and cache replay must agree
// with a plain push/add/check/pop sequence on the same formulas, witness
// values included.
#include "smt/query_plan.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/obs.hpp"
#include "smt/query_cache.hpp"

namespace llhsc::smt {
namespace {

/// One concrete "does x fall into both intervals" query — the shape the
/// semantic checker builds — constructed inside `solver`'s arenas.
struct IntervalQuery {
  std::vector<logic::Formula> fs;
  logic::BvTerm x;
};

IntervalQuery make_interval_query(Solver& solver, uint64_t base_a,
                                  uint64_t size_a, uint64_t base_b,
                                  uint64_t size_b) {
  logic::BvArena& bv = solver.bitvectors();
  IntervalQuery q;
  q.x = bv.bv_var("x", 64);
  auto in_range = [&](uint64_t base, uint64_t size) {
    logic::BvTerm lo = bv.bv_const(base, 64);
    logic::BvTerm hi = bv.bv_const(base + size, 64);
    q.fs.push_back(bv.uge(q.x, lo));
    q.fs.push_back(bv.ult(q.x, hi));
  };
  in_range(base_a, size_a);
  in_range(base_b, size_b);
  return q;
}

std::string fresh_cache_dir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "/llhsc-qp-" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

// -- canonicalisation --

TEST(QueryCanonicalText, StableAcrossArenaIdDrift) {
  // Solver B builds unrelated terms first, shifting every arena id; the
  // canonical text must not notice.
  Solver a(Backend::kBuiltin);
  Solver b(Backend::kBuiltin);
  b.bool_var("noise");
  b.bitvectors().bv_var("noise_bv", 32);
  b.add(b.bitvectors().eq(b.bitvectors().bv_var("m", 16),
                          b.bitvectors().bv_const(7, 16)));

  IntervalQuery qa = make_interval_query(a, 0x1000, 0x100, 0x1080, 0x100);
  IntervalQuery qb = make_interval_query(b, 0x1000, 0x100, 0x1080, 0x100);
  std::string ta =
      canonical_query_text(a.formulas(), a.bitvectors(), qa.fs, qa.x);
  std::string tb =
      canonical_query_text(b.formulas(), b.bitvectors(), qb.fs, qb.x);
  EXPECT_EQ(ta, tb);
  EXPECT_EQ(query_fingerprint(ta), query_fingerprint(tb));
}

TEST(QueryCanonicalText, IgnoresVariableNames) {
  Solver a(Backend::kBuiltin);
  Solver b(Backend::kBuiltin);
  logic::BvTerm xa = a.bitvectors().bv_var("ov0.x", 64);
  logic::BvTerm xb = b.bitvectors().bv_var("completely.different", 64);
  std::vector<logic::Formula> fa{
      a.bitvectors().eq(xa, a.bitvectors().bv_const(5, 64))};
  std::vector<logic::Formula> fb{
      b.bitvectors().eq(xb, b.bitvectors().bv_const(5, 64))};
  EXPECT_EQ(canonical_query_text(a.formulas(), a.bitvectors(), fa, xa),
            canonical_query_text(b.formulas(), b.bitvectors(), fb, xb));
}

TEST(QueryCanonicalText, DistinguishesDifferentQueries) {
  Solver s(Backend::kBuiltin);
  IntervalQuery q1 = make_interval_query(s, 0x1000, 0x100, 0x1080, 0x100);
  IntervalQuery q2 = make_interval_query(s, 0x1000, 0x100, 0x2000, 0x100);
  std::string t1 =
      canonical_query_text(s.formulas(), s.bitvectors(), q1.fs, q1.x);
  std::string t2 =
      canonical_query_text(s.formulas(), s.bitvectors(), q2.fs, q2.x);
  EXPECT_NE(t1, t2);
  EXPECT_NE(query_fingerprint(t1), query_fingerprint(t2));
}

TEST(QueryCanonicalText, WitnessTermChangesTheKey) {
  // Same formulas, different (or absent) witness term: the verdict is the
  // same but the stored witness is not, so the key must differ.
  Solver s(Backend::kBuiltin);
  IntervalQuery q = make_interval_query(s, 0x0, 0x10, 0x8, 0x10);
  std::string with =
      canonical_query_text(s.formulas(), s.bitvectors(), q.fs, q.x);
  std::string without =
      canonical_query_text(s.formulas(), s.bitvectors(), q.fs, {});
  EXPECT_NE(with, without);
}

// -- cache storage --

TEST(QueryCacheTest, RoundTripsEntries) {
  QueryCache cache(fresh_cache_dir("roundtrip"), Backend::kBuiltin);
  ASSERT_TRUE(cache.enabled());
  const std::string text = "llhsc test probe\n[eq t0 t1]\nw -\n";
  EXPECT_FALSE(cache.lookup(text).has_value());

  cache.store(text, {CheckResult::kSat, 0x1100});
  auto hit = cache.lookup(text);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->result, CheckResult::kSat);
  EXPECT_EQ(hit->witness, 0x1100u);

  // A different probe is a miss even though the file layout is shared.
  EXPECT_FALSE(cache.lookup("something else\n").has_value());
}

TEST(QueryCacheTest, UnsatEntriesCarryNoWitness) {
  QueryCache cache(fresh_cache_dir("unsat"), Backend::kBuiltin);
  ASSERT_TRUE(cache.enabled());
  const std::string text = "probe unsat\n";
  cache.store(text, {CheckResult::kUnsat, 0});
  auto hit = cache.lookup(text);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->result, CheckResult::kUnsat);
  EXPECT_EQ(hit->witness, 0u);
}

TEST(QueryCacheTest, BackendsUseDisjointNamespaces) {
  const std::string dir = fresh_cache_dir("backends");
  QueryCache builtin_cache(dir, Backend::kBuiltin);
  ASSERT_TRUE(builtin_cache.enabled());
  const std::string text = "shared probe\n";
  builtin_cache.store(text, {CheckResult::kSat, 42});

  QueryCache z3_cache(dir, Backend::kZ3);
  if (z3_cache.enabled()) {
    EXPECT_FALSE(z3_cache.lookup(text).has_value())
        << "a z3 cache must not replay builtin verdicts";
  }
}

TEST(QueryCacheTest, FingerprintCollisionFallsThroughToTheSolver) {
  // Forge a collision: plant a valid entry whose *file name* matches probe
  // B's 64-bit fingerprint but whose stored canonical text is probe A. The
  // collision guard must reject the replay (returning a miss, so the caller
  // falls through to the solver) and count it.
  const std::string dir = fresh_cache_dir("collision");
  QueryCache cache(dir, Backend::kBuiltin);
  ASSERT_TRUE(cache.enabled());
  const std::string text_a = "probe A\n[1 f0]\nw -\n";
  const std::string text_b = "probe B\n[2 f0]\nw -\n";
  ASSERT_NE(query_fingerprint(text_a), query_fingerprint(text_b));

  std::ostringstream name;
  name << std::hex << query_fingerprint(text_b);
  const std::string forged = dir + "/qc1-builtin/" + name.str() + ".qc";
  {
    std::ofstream out(forged, std::ios::binary);
    ASSERT_TRUE(out.good());
    out << "llhsc-qc 1 sat 42\n" << text_a;
  }

  obs::TraceSink sink;
  {
    obs::ScopedSink guard(&sink);
    EXPECT_FALSE(cache.lookup(text_b).has_value())
        << "a colliding entry must never replay the wrong verdict";
    // A properly-stored entry for the same text is a legitimate hit — the
    // guard only fires on content mismatch, not on every lookup.
    cache.store(text_a, {CheckResult::kSat, 42});
    auto hit = cache.lookup(text_a);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->result, CheckResult::kSat);
  }
  int64_t collisions = 0;
  for (const obs::Event& e : sink.snapshot()) {
    if (e.kind == obs::Event::Kind::kCounter && e.name == "qcache.collisions") {
      collisions += e.delta;
    }
  }
  EXPECT_EQ(collisions, 1);
}

TEST(QueryCacheTest, EmptyDirectoryDisablesCache) {
  QueryCache cache("", Backend::kBuiltin);
  EXPECT_FALSE(cache.enabled());
  EXPECT_FALSE(cache.lookup("anything").has_value());
  cache.store("anything", {CheckResult::kSat, 1});  // must be a no-op
}

// -- the planner --

class QueryPlannerTest : public ::testing::TestWithParam<Backend> {};

TEST_P(QueryPlannerTest, AgreesWithPushPopOnMixedQueries) {
  Solver planned(GetParam());
  Solver reference(GetParam());
  QueryPlanner planner(planned, "");

  struct Case {
    uint64_t base_a, size_a, base_b, size_b;
  };
  // sat, unsat, sat, unsat — interleaved so a stale guard or leaked
  // conflict from a retired query would flip a later verdict.
  const Case cases[] = {
      {0x1000, 0x100, 0x1080, 0x100},  // overlap
      {0x1000, 0x100, 0x2000, 0x100},  // disjoint
      {0x0, 0x10, 0x8, 0x10},          // overlap at low addresses
      {0x5000, 0x1, 0x5001, 0x1},      // adjacent: no overlap
  };
  for (const Case& c : cases) {
    IntervalQuery pq =
        make_interval_query(planned, c.base_a, c.size_a, c.base_b, c.size_b);
    QueryPlanner::Outcome o = planner.check(pq.fs, pq.x);

    IntervalQuery rq =
        make_interval_query(reference, c.base_a, c.size_a, c.base_b, c.size_b);
    reference.push();
    for (logic::Formula f : rq.fs) reference.add(f);
    CheckResult want = reference.check();
    uint64_t want_witness =
        want == CheckResult::kSat ? reference.model_bv(rq.x) : 0;
    reference.pop();

    EXPECT_EQ(o.result, want);
    EXPECT_FALSE(o.from_cache);
    if (want == CheckResult::kSat) {
      // Without a pin the model is backend-specific; assert the witness is
      // a real point of the intersection instead of comparing values.
      EXPECT_GE(o.witness, std::max(c.base_a, c.base_b));
      EXPECT_LT(o.witness, std::min(c.base_a + c.size_a, c.base_b + c.size_b));
      EXPECT_GE(want_witness, std::max(c.base_a, c.base_b));
    }
  }
  EXPECT_EQ(planner.stats().queries_issued, 4u);
  EXPECT_EQ(planner.stats().cache_hits, 0u);
  EXPECT_EQ(planned.stats().checks, 4u)
      << "one check_assuming per query, no push/pop re-encoding";
}

TEST_P(QueryPlannerTest, NotePrunedOnlyTouchesTheCounter) {
  Solver s(GetParam());
  QueryPlanner planner(s, "");
  planner.note_pruned(7);
  planner.note_pruned(3);
  EXPECT_EQ(planner.stats().queries_pruned, 10u);
  EXPECT_EQ(planner.stats().queries_issued, 0u);
  EXPECT_EQ(s.stats().checks, 0u);
}

TEST_P(QueryPlannerTest, WarmCacheReplaysVerdictAndWitness) {
  const std::string dir =
      fresh_cache_dir(std::string("warm-") + std::string(to_string(GetParam())));
  struct Decision {
    CheckResult result;
    uint64_t witness;
    bool from_cache;
  };
  auto run = [&] {
    Solver s(GetParam());
    QueryPlanner planner(s, dir);
    EXPECT_TRUE(planner.cache_enabled());
    std::vector<Decision> out;
    // A pinned sat query (deterministic witness) and an unsat one.
    IntervalQuery sat_q = make_interval_query(s, 0x1000, 0x100, 0x1080, 0x100);
    logic::BvArena& bv = s.bitvectors();
    sat_q.fs.push_back(bv.eq(sat_q.x, bv.bv_const(0x1080, 64)));
    QueryPlanner::Outcome o1 = planner.check(sat_q.fs, sat_q.x);
    out.push_back({o1.result, o1.witness, o1.from_cache});
    IntervalQuery unsat_q = make_interval_query(s, 0x1000, 0x100, 0x2000, 0x100);
    QueryPlanner::Outcome o2 = planner.check(unsat_q.fs, unsat_q.x);
    out.push_back({o2.result, o2.witness, o2.from_cache});
    EXPECT_EQ(planner.stats().cache_hits + planner.stats().queries_issued, 2u);
    if (planner.stats().cache_hits == 2) {
      EXPECT_EQ(s.stats().checks, 0u)
          << "a fully warm planner must never touch the solver";
    }
    return out;
  };

  std::vector<Decision> cold = run();
  ASSERT_EQ(cold.size(), 2u);
  EXPECT_EQ(cold[0].result, CheckResult::kSat);
  EXPECT_EQ(cold[0].witness, 0x1080u);
  EXPECT_FALSE(cold[0].from_cache);
  EXPECT_EQ(cold[1].result, CheckResult::kUnsat);

  std::vector<Decision> warm = run();
  ASSERT_EQ(warm.size(), 2u);
  EXPECT_TRUE(warm[0].from_cache);
  EXPECT_TRUE(warm[1].from_cache);
  EXPECT_EQ(warm[0].result, CheckResult::kSat);
  EXPECT_EQ(warm[0].witness, 0x1080u);
  EXPECT_EQ(warm[1].result, CheckResult::kUnsat);
}

// Builtin-only: the CDCL loop polls the deadline, so an already-expired one
// deterministically yields kUnknown (z3's 1ms floor may still decide a
// trivial query, which is fine but not a stable test).
TEST(QueryPlannerDeadlineTest, ExpiredDeadlineIsNotCached) {
  const std::string dir = fresh_cache_dir("deadline-builtin");
  {
    Solver s(Backend::kBuiltin);
    s.set_deadline(support::Deadline::after_ms(0));
    QueryPlanner planner(s, dir);
    IntervalQuery q = make_interval_query(s, 0x1000, 0x100, 0x1080, 0x100);
    QueryPlanner::Outcome o = planner.check(q.fs, q.x);
    EXPECT_EQ(o.result, CheckResult::kUnknown);
  }
  {
    // A later run with budget must re-attempt and decide the query.
    Solver s(Backend::kBuiltin);
    QueryPlanner planner(s, dir);
    IntervalQuery q = make_interval_query(s, 0x1000, 0x100, 0x1080, 0x100);
    QueryPlanner::Outcome o = planner.check(q.fs, q.x);
    EXPECT_EQ(o.result, CheckResult::kSat);
    EXPECT_FALSE(o.from_cache) << "kUnknown must never be served from cache";
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, QueryPlannerTest,
                         ::testing::ValuesIn(all_backends()),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace llhsc::smt

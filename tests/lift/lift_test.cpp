// Lifted family-based checking (src/lift): engine behaviour on synthetic
// families and the paper's running example, plus the differential harness
// proving lifted verdicts equal per-product enumeration — on every backend.
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "core/running_example.hpp"
#include "dts/parser.hpp"
#include "feature/text_format.hpp"
#include "gtest/gtest.h"
#include "lift/differential.hpp"
#include "lift/lift.hpp"
#include "lift/synthetic.hpp"

namespace llhsc {
namespace {

using checkers::FindingKind;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

feature::FeatureModel custom_sbc_model() {
  support::DiagnosticEngine diags;
  auto model = feature::parse_model(
      read_file(std::string(LLHSC_EXAMPLES_DATA_DIR) + "/custom-sbc.fm"),
      "custom-sbc.fm", diags);
  EXPECT_TRUE(model.has_value());
  return std::move(*model);
}

/// Builds a product line from inline DTS + delta sources.
std::unique_ptr<delta::ProductLine> make_line(const std::string& core_dts,
                                              const std::string& deltas_src) {
  support::DiagnosticEngine diags;
  auto core = dts::parse_dts(core_dts, "core.dts", diags);
  EXPECT_NE(core, nullptr);
  auto deltas = delta::parse_deltas(deltas_src, "line.deltas", diags);
  EXPECT_FALSE(diags.has_errors()) << diags.diagnostics().size();
  return std::make_unique<delta::ProductLine>(std::move(core),
                                              std::move(deltas));
}

feature::FeatureModel optional_features_model(
    const std::vector<std::string>& names) {
  feature::FeatureModel m;
  feature::FeatureId root = m.add_root("root");
  for (const std::string& n : names) m.add_feature(root, n);
  return m;
}

void expect_differential_equal(const delta::ProductLine& line,
                               const feature::FeatureModel& model,
                               const lift::LiftedResult& lifted,
                               const lift::LiftOptions& opts) {
  lift::DifferentialReport report =
      lift::compare_with_enumeration(line, model, lifted, opts);
  EXPECT_TRUE(report.equal);
  for (const std::string& m : report.mismatches) ADD_FAILURE() << m;
  EXPECT_FALSE(report.capped);
}

TEST(LiftedSynthetic, CleanFamilyHasNoFindings) {
  lift::SyntheticSpl spl = lift::make_synthetic_spl(4, /*with_overlap=*/false);
  support::DiagnosticEngine diags;
  lift::LiftOptions opts;
  lift::LiftedResult r = lift::check_family(*spl.line, spl.model, opts, diags);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.components, 4u);
  // Each independent optional delta has exactly two activation patterns.
  EXPECT_EQ(r.patterns, 8u);
  EXPECT_EQ(r.slices, 8u);
  expect_differential_equal(*spl.line, spl.model, r, opts);
}

TEST(LiftedSynthetic, OverlapReportedWithSymbolicCondition) {
  lift::SyntheticSpl spl = lift::make_synthetic_spl(4, /*with_overlap=*/true);
  support::DiagnosticEngine diags;
  lift::LiftOptions opts;
  lift::LiftedResult r = lift::check_family(*spl.line, spl.model, opts, diags);
  EXPECT_TRUE(r.ok);
  ASSERT_EQ(r.findings.size(), 1u);
  const lift::LiftedFinding& f = r.findings[0];
  EXPECT_EQ(f.finding.kind, FindingKind::kAddressOverlap);
  // The overlap needs exactly dev0 and dev1 active.
  ASSERT_EQ(f.condition.size(), 2u);
  for (const lift::DeltaLiteral& l : f.condition) EXPECT_TRUE(l.positive);
  EXPECT_EQ(f.config_summary, "f0 && f1");
  EXPECT_TRUE(f.sample_config.count("f0"));
  EXPECT_TRUE(f.sample_config.count("f1"));
  expect_differential_equal(*spl.line, spl.model, r, opts);
}

TEST(LiftedSynthetic, DifferentialHoldsOnEveryBackend) {
  for (smt::Backend backend : smt::all_backends()) {
    lift::SyntheticSpl spl =
        lift::make_synthetic_spl(3, /*with_overlap=*/true);
    support::DiagnosticEngine diags;
    lift::LiftOptions opts;
    opts.backend = backend;
    lift::LiftedResult r =
        lift::check_family(*spl.line, spl.model, opts, diags);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.findings.size(), 1u);
    expect_differential_equal(*spl.line, spl.model, r, opts);
  }
}

TEST(LiftedSynthetic, FlattenAnnotatesConfigs) {
  lift::SyntheticSpl spl = lift::make_synthetic_spl(2, /*with_overlap=*/true);
  support::DiagnosticEngine diags;
  lift::LiftedResult r =
      lift::check_family(*spl.line, spl.model, {}, diags);
  checkers::Findings flat = lift::flatten(r);
  ASSERT_EQ(flat.size(), 1u);
  EXPECT_NE(flat[0].message.find("[configs: f0 && f1]"), std::string::npos);
}

TEST(LiftedSynthetic, PatternCapRefusesIncompleteResult) {
  lift::SyntheticSpl spl = lift::make_synthetic_spl(3, /*with_overlap=*/false);
  support::DiagnosticEngine diags;
  lift::LiftOptions opts;
  opts.max_patterns = 1;
  lift::LiftedResult r = lift::check_family(*spl.line, spl.model, opts, diags);
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.findings.empty());
  EXPECT_EQ(r.findings[0].finding.kind, FindingKind::kEnumerationCapped);
}

TEST(LiftedSynthetic, ExclusivityLiftFlagsAlwaysSelectedFeature) {
  lift::SyntheticSpl spl = lift::make_synthetic_spl(2, /*with_overlap=*/false);
  support::DiagnosticEngine diags;
  lift::LiftOptions opts;
  opts.exclusive_features = {"synth", "f0"};
  lift::LiftedResult r = lift::check_family(*spl.line, spl.model, opts, diags);
  EXPECT_TRUE(r.ok);
  // The root is selected everywhere; the optional f0 is not.
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].finding.kind, FindingKind::kExclusivityViolation);
  EXPECT_EQ(r.findings[0].finding.subject, "synth");
}

TEST(LiftedDeriveFailure, FailingConfigsBecomeFailClasses) {
  auto line = make_line(
      "/dts-v1/;\n/ { #address-cells = <1>; #size-cells = <1>; };\n",
      "delta good when f0 {\n"
      "  adds binding / { dev@1000 { reg = <0x1000 0x100>; }; }\n"
      "}\n"
      "delta broken when f1 {\n"
      "  modifies /missing { status = \"okay\"; }\n"
      "}\n");
  feature::FeatureModel model = optional_features_model({"f0", "f1"});
  support::DiagnosticEngine diags;
  lift::LiftOptions opts;
  lift::LiftedResult r = lift::check_family(*line, model, opts, diags);
  EXPECT_TRUE(r.ok);
  ASSERT_EQ(r.fail_classes.size(), 1u);
  ASSERT_EQ(r.fail_classes[0].size(), 1u);
  EXPECT_EQ(r.fail_classes[0][0].delta, "broken");
  EXPECT_TRUE(r.fail_classes[0][0].positive);
  bool has_derive_failure = false;
  for (const lift::LiftedFinding& f : r.findings) {
    if (f.finding.kind == FindingKind::kDeriveFailure) {
      has_derive_failure = true;
      EXPECT_EQ(f.config_summary, "f1");
    }
  }
  EXPECT_TRUE(has_derive_failure);
  expect_differential_equal(*line, model, r, opts);
}

TEST(LiftedInterrupts, CollisionOnlyWhenBothDevicesSelected) {
  auto line = make_line(
      "/dts-v1/;\n"
      "/ {\n"
      "  #address-cells = <1>; #size-cells = <1>;\n"
      "  interrupt-parent = <1>;\n"
      "  intc {\n"
      "    phandle = <1>;\n"
      "    #interrupt-cells = <1>;\n"
      "    interrupt-controller;\n"
      "  };\n"
      "};\n",
      "delta dev_a when f0 {\n"
      "  adds binding / { deva@1000 { reg = <0x1000 0x100>;\n"
      "                               interrupts = <5>; }; }\n"
      "}\n"
      "delta dev_b when f1 {\n"
      "  adds binding / { devb@2000 { reg = <0x2000 0x100>;\n"
      "                               interrupts = <5>; }; }\n"
      "}\n");
  feature::FeatureModel model = optional_features_model({"f0", "f1"});
  support::DiagnosticEngine diags;
  lift::LiftOptions opts;
  lift::LiftedResult r = lift::check_family(*line, model, opts, diags);
  EXPECT_TRUE(r.ok);
  // Both deltas write interrupt-affecting properties: one shared component.
  EXPECT_EQ(r.components, 1u);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].finding.kind, FindingKind::kInterruptCollision);
  EXPECT_EQ(r.findings[0].config_summary, "f0 && f1");
  expect_differential_equal(*line, model, r, opts);
}

TEST(LiftedClocks, AssignedClockCollisionIsConditional) {
  auto line = make_line(
      "/dts-v1/;\n"
      "/ {\n"
      "  #address-cells = <1>; #size-cells = <1>;\n"
      "  clock-controller {\n"
      "    phandle = <2>;\n"
      "    #clock-cells = <1>;\n"
      "  };\n"
      "};\n",
      "delta cons_a when f0 {\n"
      "  adds binding / { consa@1000 { reg = <0x1000 0x100>;\n"
      "                                assigned-clocks = <2 7>; }; }\n"
      "}\n"
      "delta cons_b when f1 {\n"
      "  adds binding / { consb@2000 { reg = <0x2000 0x100>;\n"
      "                                assigned-clocks = <2 7>; }; }\n"
      "}\n");
  feature::FeatureModel model = optional_features_model({"f0", "f1"});
  support::DiagnosticEngine diags;
  lift::LiftOptions opts;
  lift::LiftedResult r = lift::check_family(*line, model, opts, diags);
  EXPECT_TRUE(r.ok);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].finding.kind, FindingKind::kClockCollision);
  EXPECT_EQ(r.findings[0].config_summary, "f0 && f1");
  expect_differential_equal(*line, model, r, opts);
}

TEST(LiftedRefusal, AmbiguousBareTargetInUnionIsRejected) {
  auto line = make_line(
      "/dts-v1/;\n"
      "/ {\n"
      "  #address-cells = <1>; #size-cells = <1>;\n"
      "  busa { uart { }; };\n"
      "  busb { uart { }; };\n"
      "};\n",
      "delta tweak when f0 {\n"
      "  modifies uart { status = \"okay\"; }\n"
      "}\n");
  feature::FeatureModel model = optional_features_model({"f0"});
  support::DiagnosticEngine diags;
  lift::LiftedResult r = lift::check_family(*line, model, {}, diags);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(diags.has_errors());
}

TEST(LiftedRunningExample, DifferentialOnCustomSbc) {
  for (smt::Backend backend : smt::all_backends()) {
    support::DiagnosticEngine diags;
    auto line = core::running_example_product_line(diags);
    ASSERT_NE(line, nullptr);
    feature::FeatureModel model = custom_sbc_model();
    lift::LiftOptions opts;
    opts.backend = backend;
    lift::LiftedResult r = lift::check_family(*line, model, opts, diags);
    EXPECT_TRUE(r.ok);
    // The complete product line is clean: every product checks green.
    EXPECT_TRUE(r.findings.empty());
    expect_differential_equal(*line, model, r, opts);
  }
}

TEST(LiftedRunningExample, MissingD4TruncationFoundFamilyWide) {
  support::DiagnosticEngine diags;
  auto line = core::running_example_product_line_without_d4(diags);
  ASSERT_NE(line, nullptr);
  feature::FeatureModel model = custom_sbc_model();
  lift::LiftOptions opts;
  lift::LiftedResult r = lift::check_family(*line, model, opts, diags);
  EXPECT_TRUE(r.ok);
  bool overlap = false;
  for (const lift::LiftedFinding& f : r.findings) {
    if (f.finding.kind == FindingKind::kAddressOverlap) overlap = true;
  }
  EXPECT_TRUE(overlap);
  expect_differential_equal(*line, model, r, opts);
}

TEST(LiftedRunningExample, UartClashCoreDifferential) {
  support::DiagnosticEngine diags;
  auto line =
      core::running_example_product_line(diags, /*with_uart_clash=*/true);
  ASSERT_NE(line, nullptr);
  feature::FeatureModel model = custom_sbc_model();
  lift::LiftOptions opts;
  lift::LiftedResult r = lift::check_family(*line, model, opts, diags);
  EXPECT_TRUE(r.ok);
  expect_differential_equal(*line, model, r, opts);
}

TEST(LiftedScale, LargeFamilyCheckedWithoutEnumeration) {
  // 2^12 products; the engine's work is linear in deltas, not products.
  lift::SyntheticSpl spl = lift::make_synthetic_spl(12, /*with_overlap=*/true);
  support::DiagnosticEngine diags;
  lift::LiftOptions opts;
  lift::LiftedResult r = lift::check_family(*spl.line, spl.model, opts, diags);
  EXPECT_TRUE(r.ok);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].config_summary, "f0 && f1");
  EXPECT_EQ(r.components, 12u);
  EXPECT_EQ(r.slices, 24u);
  // Differential on a sample of the family (capped) still matches.
  lift::DifferentialOptions dopts;
  dopts.max_products = 64;
  lift::DifferentialReport report =
      lift::compare_with_enumeration(*spl.line, spl.model, r, opts, dopts);
  EXPECT_TRUE(report.equal);
  EXPECT_TRUE(report.capped);
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_EQ(report.notes[0].kind, FindingKind::kEnumerationCapped);
}

}  // namespace
}  // namespace llhsc

#include "schema/yaml_lite.hpp"

#include <gtest/gtest.h>

#include "schema/builtin_schemas.hpp"

namespace llhsc::schema {
namespace {

yaml::Value parse_ok(std::string_view text) {
  support::DiagnosticEngine de;
  auto v = yaml::parse(text, de);
  EXPECT_TRUE(v.has_value()) << de.render();
  EXPECT_FALSE(de.has_errors()) << de.render();
  return v.value_or(yaml::Value{});
}

TEST(YamlLite, ScalarMap) {
  auto v = parse_ok("a: 1\nb: hello\nc: \"quoted value\"\n");
  ASSERT_TRUE(v.is_map());
  EXPECT_EQ(v.get("a")->as_integer(), 1u);
  EXPECT_EQ(v.get("b")->as_string(), "hello");
  EXPECT_EQ(v.get("c")->as_string(), "quoted value");
  EXPECT_EQ(v.get("missing"), nullptr);
}

TEST(YamlLite, NestedMaps) {
  auto v = parse_ok(R"(select:
  nodeName: "memory@*"
  deeper:
    key: value
)");
  const auto* sel = v.get("select");
  ASSERT_NE(sel, nullptr);
  EXPECT_EQ(sel->get("nodeName")->as_string(), "memory@*");
  EXPECT_EQ(sel->get("deeper")->get("key")->as_string(), "value");
}

TEST(YamlLite, SequencesOfScalars) {
  auto v = parse_ok(R"(required:
  - device_type
  - reg
)");
  const auto* req = v.get("required");
  ASSERT_NE(req, nullptr);
  ASSERT_TRUE(req->is_seq());
  ASSERT_EQ(req->seq.size(), 2u);
  EXPECT_EQ(req->seq[0].as_string(), "device_type");
  EXPECT_EQ(req->seq[1].as_string(), "reg");
}

TEST(YamlLite, SequenceOfMaps) {
  auto v = parse_ok(R"(children:
  - pattern: "cpu@*"
    schema: cpu
    minCount: 1
  - pattern: "other@*"
)");
  const auto* c = v.get("children");
  ASSERT_TRUE(c != nullptr && c->is_seq());
  ASSERT_EQ(c->seq.size(), 2u);
  EXPECT_EQ(c->seq[0].get("pattern")->as_string(), "cpu@*");
  EXPECT_EQ(c->seq[0].get("minCount")->as_integer(), 1u);
  EXPECT_EQ(c->seq[1].get("pattern")->as_string(), "other@*");
}

TEST(YamlLite, CommentsAndBlanksIgnored) {
  auto v = parse_ok(R"(# leading comment
a: 1   # trailing comment

b: "has # inside quotes"
)");
  EXPECT_EQ(v.get("a")->as_integer(), 1u);
  EXPECT_EQ(v.get("b")->as_string(), "has # inside quotes");
}

TEST(YamlLite, Booleans) {
  auto v = parse_ok("t: true\nf: false\nn: 42\n");
  EXPECT_EQ(v.get("t")->as_bool(), true);
  EXPECT_EQ(v.get("f")->as_bool(), false);
  EXPECT_FALSE(v.get("n")->as_bool().has_value());
}

TEST(YamlLite, StreamSplitting) {
  support::DiagnosticEngine de;
  auto docs = yaml::parse_stream("a: 1\n---\nb: 2\n---\nc: 3\n", de);
  ASSERT_EQ(docs.size(), 3u);
  EXPECT_EQ(docs[1].get("b")->as_integer(), 2u);
}

TEST(YamlLite, BadIndentationReported) {
  support::DiagnosticEngine de;
  auto v = yaml::parse("a: 1\n   stray\n", de);
  EXPECT_TRUE(de.has_errors());
  (void)v;
}

TEST(SchemaLoader, Listing5Fragment) {
  // The paper's Listing 5, extended with the $id/select house-keeping the
  // loader needs.
  const char* text = R"($id: memory
select:
  nodeName: "memory@*"
properties:
  device_type:
    const: memory
  reg:
    minItems: 1
    maxItems: 1024
required:
  - device_type
  - reg
)";
  support::DiagnosticEngine de;
  auto schema = load_schema_yaml(text, de);
  ASSERT_TRUE(schema.has_value()) << de.render();
  EXPECT_EQ(schema->id, "memory");
  EXPECT_EQ(schema->select.node_name_pattern, "memory@*");
  const PropertySchema* dt = schema->find_property("device_type");
  ASSERT_NE(dt, nullptr);
  EXPECT_EQ(dt->const_string, "memory");
  const PropertySchema* reg = schema->find_property("reg");
  ASSERT_NE(reg, nullptr);
  EXPECT_EQ(reg->min_items, 1u);
  EXPECT_EQ(reg->max_items, 1024u);
  EXPECT_EQ(schema->required, (std::vector<std::string>{"device_type", "reg"}));
}

TEST(SchemaLoader, MissingIdIsError) {
  support::DiagnosticEngine de;
  EXPECT_FALSE(load_schema_yaml("description: no id\n", de).has_value());
  EXPECT_TRUE(de.contains_code("schema-load"));
}

TEST(SchemaLoader, EnumAndConstCells) {
  const char* text = R"($id: x
properties:
  id:
    enum:
      - 0
      - 1
  "#address-cells":
    const: 2
)";
  support::DiagnosticEngine de;
  auto schema = load_schema_yaml(text, de);
  ASSERT_TRUE(schema.has_value()) << de.render();
  EXPECT_EQ(schema->find_property("id")->enum_cells,
            (std::vector<uint64_t>{0, 1}));
  EXPECT_EQ(schema->find_property("#address-cells")->const_cell, 2u);
}

TEST(SchemaLoader, BuiltinYamlMatchesBuiltinCpp) {
  // The YAML twin of the builtin set must load and agree on the essentials.
  support::DiagnosticEngine de;
  SchemaSet from_yaml;
  size_t n = load_schema_stream(builtin_schemas_yaml(), from_yaml, de);
  EXPECT_FALSE(de.has_errors()) << de.render();
  SchemaSet from_cpp = builtin_schemas();
  ASSERT_EQ(n, from_cpp.size());
  for (const NodeSchema& cpp : from_cpp.schemas()) {
    const NodeSchema* y = from_yaml.find(cpp.id);
    ASSERT_NE(y, nullptr) << cpp.id;
    EXPECT_EQ(y->required, cpp.required) << cpp.id;
    EXPECT_EQ(y->select.node_name_pattern, cpp.select.node_name_pattern);
    EXPECT_EQ(y->select.compatibles, cpp.select.compatibles) << cpp.id;
    EXPECT_EQ(y->check_reg_shape, cpp.check_reg_shape) << cpp.id;
    EXPECT_EQ(y->properties.size(), cpp.properties.size()) << cpp.id;
    for (const PropertySchema& p : cpp.properties) {
      const PropertySchema* yp = y->find_property(p.name);
      ASSERT_NE(yp, nullptr) << cpp.id << "." << p.name;
      EXPECT_EQ(yp->const_string, p.const_string);
      EXPECT_EQ(yp->const_cell, p.const_cell);
      EXPECT_EQ(yp->enum_strings, p.enum_strings);
      EXPECT_EQ(yp->enum_cells, p.enum_cells);
      EXPECT_EQ(yp->min_items, p.min_items);
      EXPECT_EQ(yp->max_items, p.max_items);
    }
  }
}

}  // namespace
}  // namespace llhsc::schema

#include "schema/schema.hpp"

#include <gtest/gtest.h>

#include "dts/parser.hpp"
#include "schema/builtin_schemas.hpp"

namespace llhsc::schema {
namespace {

dts::Node make_node(const std::string& name) { return dts::Node(name); }

TEST(Selector, NodeNamePattern) {
  Selector s;
  s.node_name_pattern = "memory@*";
  EXPECT_TRUE(s.matches(make_node("memory@40000000")));
  EXPECT_FALSE(s.matches(make_node("uart@20000000")));
  // Base-name match also accepted.
  Selector plain;
  plain.node_name_pattern = "cpus";
  EXPECT_TRUE(plain.matches(make_node("cpus")));
}

TEST(Selector, CompatibleMatch) {
  Selector s;
  s.compatibles = {"ns16550a"};
  dts::Node n("serial@1000");
  EXPECT_FALSE(s.matches(n));
  n.set_property(dts::Property::string("compatible", "ns16550a"));
  EXPECT_TRUE(s.matches(n));
  // String-list compatible.
  dts::Node m("serial@2000");
  m.set_property(
      dts::Property::strings("compatible", {"vendor,uart", "ns16550a"}));
  EXPECT_TRUE(s.matches(m));
  dts::Node o("serial@3000");
  o.set_property(dts::Property::string("compatible", "other"));
  EXPECT_FALSE(s.matches(o));
}

TEST(SchemaSet, MatchReturnsAllApplicable) {
  SchemaSet set = builtin_schemas();
  dts::Node uart("uart@20000000");
  uart.set_property(dts::Property::string("compatible", "ns16550a"));
  auto matches = set.match(uart);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0]->id, "uart");
}

TEST(SchemaSet, FindById) {
  SchemaSet set = builtin_schemas();
  EXPECT_NE(set.find("memory"), nullptr);
  EXPECT_NE(set.find("cpu"), nullptr);
  EXPECT_EQ(set.find("nope"), nullptr);
  EXPECT_EQ(set.size(), 5u);
}

TEST(Builtin, MemorySchemaShape) {
  NodeSchema m = memory_schema();
  EXPECT_EQ(m.id, "memory");
  const PropertySchema* dt = m.find_property("device_type");
  ASSERT_NE(dt, nullptr);
  EXPECT_EQ(dt->const_string, "memory");
  const PropertySchema* reg = m.find_property("reg");
  ASSERT_NE(reg, nullptr);
  EXPECT_EQ(reg->min_items, 1u);
  EXPECT_EQ(reg->max_items, 1024u);
  EXPECT_EQ(m.required,
            (std::vector<std::string>{"device_type", "reg"}));
}

TEST(Builtin, SchemasMatchRunningExampleNodes) {
  SchemaSet set = builtin_schemas();
  support::DiagnosticEngine de;
  dts::SourceManager sm;
  auto tree = dts::parse_dts(R"(
/ {
    memory@40000000 { device_type = "memory"; reg = <0x0 0x1000>; };
    cpus { cpu@0 { compatible = "arm,cortex-a53"; reg = <0>; }; };
    uart@20000000 { compatible = "ns16550a"; reg = <0x20000000 0x1000>; };
    vEthernet { veth0@80000000 { compatible = "veth"; }; };
};
)",
                             "t.dts", sm, de);
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(set.match(*tree->find("/memory@40000000")).size(), 1u);
  EXPECT_EQ(set.match(*tree->find("/cpus")).size(), 1u);
  EXPECT_EQ(set.match(*tree->find("/cpus/cpu@0")).size(), 1u);
  EXPECT_EQ(set.match(*tree->find("/uart@20000000")).size(), 1u);
  EXPECT_EQ(set.match(*tree->find("/vEthernet/veth0@80000000")).size(), 1u);
  EXPECT_TRUE(set.match(*tree->find("/vEthernet")).empty())
      << "the abstract container matches no binding";
}

TEST(Builder, FluentConstruction) {
  PropertySchema p;
  p.name = "clock-frequency";
  p.type = PropertyType::kCells;
  NodeSchema s = SchemaBuilder("test")
                     .description("desc")
                     .select_node_name("test@*")
                     .property(std::move(p))
                     .require("clock-frequency")
                     .no_additional_properties()
                     .no_reg_shape_check()
                     .build();
  EXPECT_EQ(s.id, "test");
  EXPECT_FALSE(s.additional_properties);
  EXPECT_FALSE(s.check_reg_shape);
  EXPECT_NE(s.find_property("clock-frequency"), nullptr);
  EXPECT_EQ(s.find_property("nope"), nullptr);
}

}  // namespace
}  // namespace llhsc::schema

// Shared synthetic-workload generators for the llhsc benchmarks. Each
// generator scales the paper's running-example shapes to arbitrary sizes so
// the benches can sweep where the paper only shows a single point.
#pragma once

#include <random>
#include <string>

#include "checkers/semantic.hpp"
#include "dts/tree.hpp"
#include "feature/model.hpp"

namespace llhsc::benchgen {

/// A CustomSBC-style feature model scaled up: `cpus` XOR-group CPUs,
/// `uarts` OR-group UARTs (mandatory), one optional XOR vEthernet per CPU
/// with the veth->cpu cross-requirement.
inline feature::FeatureModel scaled_model(int num_cpus, int num_uarts) {
  feature::FeatureModel m;
  feature::FeatureId root = m.add_root("SBC");
  m.add_feature(root, "memory", /*mandatory=*/true);
  feature::FeatureId cpus = m.add_feature(root, "cpus", true);
  m.set_group(cpus, feature::GroupKind::kXor);
  std::vector<feature::FeatureId> cpu_ids;
  for (int i = 0; i < num_cpus; ++i) {
    cpu_ids.push_back(m.add_feature(cpus, "cpu@" + std::to_string(i)));
  }
  feature::FeatureId uarts = m.add_feature(root, "uarts", true, true);
  m.set_group(uarts, feature::GroupKind::kOr);
  for (int i = 0; i < num_uarts; ++i) {
    m.add_feature(uarts, "uart@" + std::to_string(i));
  }
  feature::FeatureId veth = m.add_feature(root, "vEthernet", false, true);
  m.set_group(veth, feature::GroupKind::kXor);
  for (int i = 0; i < num_cpus; ++i) {
    feature::FeatureId v = m.add_feature(veth, "veth" + std::to_string(i));
    m.add_requires(v, cpu_ids[static_cast<size_t>(i)]);
  }
  return m;
}

/// CPUs of a scaled model (the exclusive resources).
inline std::vector<feature::FeatureId> scaled_model_cpus(
    const feature::FeatureModel& m, int num_cpus) {
  std::vector<feature::FeatureId> out;
  for (int i = 0; i < num_cpus; ++i) {
    out.push_back(*m.find("cpu@" + std::to_string(i)));
  }
  return out;
}

/// Disjoint device regions laid out back-to-back with gaps; `overlapping`
/// optionally injects one collision so SAT and UNSAT paths are both timed.
inline std::vector<checkers::MemRegion> synthetic_regions(int count,
                                                          bool overlapping) {
  std::vector<checkers::MemRegion> regions;
  uint64_t base = 0x10000000;
  for (int i = 0; i < count; ++i) {
    checkers::MemRegion r;
    r.path = "/dev@" + std::to_string(i);
    r.base = base;
    r.size = 0x1000;
    r.region_class = checkers::RegionClass::kDevice;
    regions.push_back(std::move(r));
    base += 0x2000;
  }
  if (overlapping && count >= 2) {
    regions.back().base = regions.front().base + 0x800;
  }
  return regions;
}

/// A synthetic SBC tree: one memory node with `banks` banks plus `devices`
/// MMIO devices, all disjoint, 32-bit addressing.
inline std::unique_ptr<dts::Tree> synthetic_tree(int banks, int devices) {
  auto tree = std::make_unique<dts::Tree>();
  dts::Node& root = tree->root();
  root.set_property(dts::Property::cells("#address-cells", {1}));
  root.set_property(dts::Property::cells("#size-cells", {1}));
  std::vector<uint64_t> reg;
  uint64_t base = 0x80000000;
  for (int i = 0; i < banks; ++i) {
    reg.push_back(base);
    reg.push_back(0x100000);
    base += 0x200000;
  }
  dts::Node& mem = root.get_or_create_child("memory@80000000");
  mem.set_property(dts::Property::string("device_type", "memory"));
  mem.set_property(dts::Property::cells("reg", std::move(reg)));
  base = 0x10000000;
  for (int i = 0; i < devices; ++i) {
    dts::Node& dev = root.get_or_create_child(
        "uart@" + std::to_string(base));
    dev.set_property(dts::Property::string("compatible", "ns16550a"));
    dev.set_property(dts::Property::cells("reg", {base, 0x1000}));
    base += 0x2000;
  }
  return tree;
}

}  // namespace llhsc::benchgen

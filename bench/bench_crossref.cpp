// Cross-reference engine cost model: AnalysisContext construction (indices +
// cells/ranges environment) vs the rule sweep that consumes it, swept over
// synthetic SoC trees up to ~5k nodes. The split matters because the context
// is built once per tree and shared with the semantic checker, so rule cost
// must be measured against a warm context as well as end-to-end.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "checkers/crossref/context.hpp"
#include "checkers/crossref/rules.hpp"
#include "dts/tree.hpp"

using namespace llhsc;

namespace {

// A plausible SoC: per-bus interrupt controller + clock controller, devices
// referencing both through phandles, buses mapped through ranges. Node count
// is roughly buses * (devices_per_bus + 3) + 2.
std::unique_ptr<dts::Tree> synthetic_soc(int buses, int devices_per_bus) {
  auto tree = std::make_unique<dts::Tree>();
  dts::Node& root = tree->root();
  root.set_property(dts::Property::cells("#address-cells", {1}));
  root.set_property(dts::Property::cells("#size-cells", {1}));
  uint32_t next_phandle = 1;
  for (int b = 0; b < buses; ++b) {
    uint64_t bus_base = 0x4000'0000ull + static_cast<uint64_t>(b) * 0x100'0000;
    dts::Node& bus = root.get_or_create_child(
        "bus@" + std::to_string(bus_base));
    bus.set_property(dts::Property::cells("#address-cells", {1}));
    bus.set_property(dts::Property::cells("#size-cells", {1}));
    bus.set_property(dts::Property::cells("reg", {bus_base, 0x100'0000}));
    bus.set_property(
        dts::Property::cells("ranges", {0x0, bus_base, 0x100'0000}));

    uint32_t intc_handle = next_phandle++;
    dts::Node& intc = bus.get_or_create_child("interrupt-controller@0");
    intc.set_property(dts::Property::cells("reg", {0x0, 0x1000}));
    intc.set_property(dts::Property::boolean("interrupt-controller"));
    intc.set_property(dts::Property::cells("#interrupt-cells", {2}));
    intc.set_property(dts::Property::cells("phandle", {intc_handle}));

    uint32_t clk_handle = next_phandle++;
    dts::Node& clk = bus.get_or_create_child("clock-controller@1000");
    clk.set_property(dts::Property::cells("reg", {0x1000, 0x1000}));
    clk.set_property(dts::Property::cells("#clock-cells", {1}));
    clk.set_property(dts::Property::cells("phandle", {clk_handle}));

    for (int d = 0; d < devices_per_bus; ++d) {
      uint64_t base = 0x2000 + static_cast<uint64_t>(d) * 0x1000;
      dts::Node& dev =
          bus.get_or_create_child("dev@" + std::to_string(base));
      dev.set_property(dts::Property::cells("reg", {base, 0x1000}));
      dev.set_property(dts::Property::cells("interrupt-parent",
                                            {intc_handle}));
      dev.set_property(dts::Property::cells(
          "interrupts", {static_cast<uint64_t>(d), 4}));
      dev.set_property(dts::Property::cells(
          "clocks", {clk_handle, static_cast<uint64_t>(d)}));
    }
  }
  return tree;
}

// Index + cells/ranges environment build, the once-per-tree cost.
void BM_ContextConstruction(benchmark::State& state) {
  auto tree = synthetic_soc(static_cast<int>(state.range(0)),
                            static_cast<int>(state.range(1)));
  for (auto _ : state) {
    checkers::crossref::AnalysisContext ctx(*tree);
    benchmark::DoNotOptimize(ctx.nodes().size());
  }
  state.counters["nodes"] = static_cast<double>(tree->node_count());
}
BENCHMARK(BM_ContextConstruction)
    ->Args({4, 16})
    ->Args({16, 64})
    ->Args({64, 76});  // ~5k nodes

// Full rule sweep against a warm context (the per-check marginal cost).
void BM_RuleSweep(benchmark::State& state) {
  auto tree = synthetic_soc(static_cast<int>(state.range(0)),
                            static_cast<int>(state.range(1)));
  checkers::crossref::AnalysisContext ctx(*tree);
  size_t findings = 0;
  for (auto _ : state) {
    checkers::crossref::CrossRefChecker checker;
    checkers::Findings f = checker.check(ctx);
    findings = f.size();
    benchmark::DoNotOptimize(findings);
  }
  state.counters["nodes"] = static_cast<double>(tree->node_count());
  state.counters["findings"] = static_cast<double>(findings);
}
BENCHMARK(BM_RuleSweep)->Args({4, 16})->Args({16, 64})->Args({64, 76});

// End-to-end: context + sweep, what `llhsc check` pays per tree.
void BM_CheckEndToEnd(benchmark::State& state) {
  auto tree = synthetic_soc(static_cast<int>(state.range(0)),
                            static_cast<int>(state.range(1)));
  for (auto _ : state) {
    checkers::crossref::CrossRefChecker checker;
    benchmark::DoNotOptimize(checker.check(*tree));
  }
  state.counters["nodes"] = static_cast<double>(tree->node_count());
}
BENCHMARK(BM_CheckEndToEnd)->Args({4, 16})->Args({16, 64})->Args({64, 76});

// Address translation through one ranges level, the hot path the semantic
// checker also leans on via the shared context.
void BM_Translate(benchmark::State& state) {
  auto tree = synthetic_soc(16, 64);
  checkers::crossref::AnalysisContext ctx(*tree);
  const dts::Node* dev = ctx.node_at("/bus@1073741824/dev@8192");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.translate(*dev, 0x2000, 0x1000));
  }
}
BENCHMARK(BM_Translate);

}  // namespace

BENCHMARK_MAIN();

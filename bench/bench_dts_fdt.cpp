// Substrate benches: DTS parsing/printing throughput and FDT (DTB)
// emit/read/verify, swept over tree size. These back the DESIGN.md choices
// (single-pass lexer with textual include splicing; deduplicated strings
// block).
#include <benchmark/benchmark.h>

#include <sstream>

#include "bench_common.hpp"
#include "dts/parser.hpp"
#include "dts/printer.hpp"
#include "fdt/fdt.hpp"

using namespace llhsc;

namespace {

std::string synthetic_dts(int devices) {
  std::ostringstream os;
  os << "/dts-v1/;\n/ {\n  #address-cells = <1>;\n  #size-cells = <1>;\n";
  os << "  memory@80000000 { device_type = \"memory\"; "
        "reg = <0x80000000 0x40000000>; };\n";
  uint64_t base = 0x10000000;
  for (int i = 0; i < devices; ++i) {
    os << "  uart" << i << ": uart@" << std::hex << base << std::dec
       << " {\n    compatible = \"ns16550a\";\n    reg = <0x" << std::hex
       << base << std::dec << " 0x1000>;\n    interrupts = <" << (i + 1)
       << ">;\n    names = \"a\", \"b\";\n    mac = [de ad be ef];\n  };\n";
    base += 0x2000;
  }
  os << "};\n";
  return os.str();
}

void BM_DtsParse(benchmark::State& state) {
  std::string src = synthetic_dts(static_cast<int>(state.range(0)));
  size_t nodes = 0;
  for (auto _ : state) {
    support::DiagnosticEngine diags;
    auto tree = dts::parse_dts(src, "synthetic.dts", diags);
    nodes = tree->node_count();
    benchmark::DoNotOptimize(tree);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(src.size()));
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_DtsParse)->Arg(8)->Arg(64)->Arg(512);

void BM_DtsPrint(benchmark::State& state) {
  support::DiagnosticEngine diags;
  auto tree = dts::parse_dts(synthetic_dts(static_cast<int>(state.range(0))),
                             "synthetic.dts", diags);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dts::print_dts(*tree));
  }
  state.counters["nodes"] = static_cast<double>(tree->node_count());
}
BENCHMARK(BM_DtsPrint)->Arg(8)->Arg(64)->Arg(512);

void BM_FdtEmit(benchmark::State& state) {
  support::DiagnosticEngine diags;
  auto tree = dts::parse_dts(synthetic_dts(static_cast<int>(state.range(0))),
                             "synthetic.dts", diags);
  size_t bytes = 0;
  for (auto _ : state) {
    auto blob = fdt::emit(*tree, diags);
    bytes = blob ? blob->size() : 0;
    benchmark::DoNotOptimize(blob);
  }
  state.counters["dtb_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_FdtEmit)->Arg(8)->Arg(64)->Arg(512);

void BM_FdtRead(benchmark::State& state) {
  support::DiagnosticEngine diags;
  auto tree = dts::parse_dts(synthetic_dts(static_cast<int>(state.range(0))),
                             "synthetic.dts", diags);
  auto blob = fdt::emit(*tree, diags);
  for (auto _ : state) {
    support::DiagnosticEngine d;
    benchmark::DoNotOptimize(fdt::read(*blob, d));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(blob->size()));
}
BENCHMARK(BM_FdtRead)->Arg(8)->Arg(64)->Arg(512);

void BM_FdtVerify(benchmark::State& state) {
  support::DiagnosticEngine diags;
  auto tree = dts::parse_dts(synthetic_dts(static_cast<int>(state.range(0))),
                             "synthetic.dts", diags);
  auto blob = fdt::emit(*tree, diags);
  for (auto _ : state) {
    support::DiagnosticEngine d;
    benchmark::DoNotOptimize(fdt::verify(*blob, d));
  }
}
BENCHMARK(BM_FdtVerify)->Arg(8)->Arg(64)->Arg(512);

// Include splicing cost: one include per device vs monolithic.
void BM_DtsParseWithIncludes(benchmark::State& state) {
  int devices = static_cast<int>(state.range(0));
  dts::SourceManager sm;
  std::ostringstream main_dts;
  main_dts << "/dts-v1/;\n/ {\n";
  uint64_t base = 0x10000000;
  for (int i = 0; i < devices; ++i) {
    std::ostringstream frag;
    frag << "uart@" << std::hex << base << std::dec
         << " { compatible = \"ns16550a\"; reg = <0x" << std::hex << base
         << std::dec << " 0x1000>; };\n";
    std::string name = "dev" + std::to_string(i) + ".dtsi";
    sm.register_file(name, frag.str());
    main_dts << "  /include/ \"" << name << "\"\n";
    base += 0x2000;
  }
  main_dts << "};\n";
  std::string src = main_dts.str();
  for (auto _ : state) {
    support::DiagnosticEngine diags;
    benchmark::DoNotOptimize(dts::parse_dts(src, "main.dts", sm, diags));
  }
  state.counters["includes"] = static_cast<double>(devices);
}
BENCHMARK(BM_DtsParseWithIncludes)->Arg(8)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();

// E7 — the delta engine: parsing the Listing 4 module set, computing the
// application order, and deriving products. Sweep: derivation cost vs the
// number of delta modules.
#include <benchmark/benchmark.h>

#include <sstream>

#include "core/running_example.hpp"
#include "dts/overlay.hpp"
#include "delta/delta.hpp"
#include "dts/parser.hpp"

using namespace llhsc;

namespace {

void BM_ParseListing4Deltas(benchmark::State& state) {
  for (auto _ : state) {
    support::DiagnosticEngine diags;
    benchmark::DoNotOptimize(delta::parse_deltas(
        core::running_example_deltas(), "deltas", diags));
  }
}
BENCHMARK(BM_ParseListing4Deltas);

void BM_ApplicationOrder(benchmark::State& state) {
  support::DiagnosticEngine diags;
  auto pl = core::running_example_product_line(diags);
  auto features = core::fig1b_features();
  for (auto _ : state) {
    support::DiagnosticEngine d;
    benchmark::DoNotOptimize(pl->application_order(features, d));
  }
}
BENCHMARK(BM_ApplicationOrder);

void BM_DeriveFig1b(benchmark::State& state) {
  support::DiagnosticEngine diags;
  auto pl = core::running_example_product_line(diags);
  auto features = core::fig1b_features();
  for (auto _ : state) {
    support::DiagnosticEngine d;
    benchmark::DoNotOptimize(pl->derive(features, d));
  }
}
BENCHMARK(BM_DeriveFig1b);

// Synthetic chain: N deltas, each after its predecessor, each touching one
// node — measures ordering + application scaling.
std::unique_ptr<delta::ProductLine> chain_product_line(int n) {
  std::ostringstream core;
  core << "/ {\n";
  for (int i = 0; i < n; ++i) {
    core << "  dev" << i << " { v = <0>; };\n";
  }
  core << "};\n";
  std::ostringstream deltas;
  for (int i = 0; i < n; ++i) {
    deltas << "delta d" << i;
    if (i > 0) deltas << " after d" << (i - 1);
    deltas << " { modifies dev" << i << " { v = <" << i + 1 << ">; } }\n";
  }
  support::DiagnosticEngine diags;
  auto tree = dts::parse_dts(core.str(), "core.dts", diags);
  auto ds = delta::parse_deltas(deltas.str(), "deltas", diags);
  return std::make_unique<delta::ProductLine>(std::move(tree), std::move(ds));
}

void BM_DeltaChainDerive(benchmark::State& state) {
  auto pl = chain_product_line(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    support::DiagnosticEngine d;
    benchmark::DoNotOptimize(pl->derive({}, d));
  }
  state.counters["deltas"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DeltaChainDerive)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

// Delta modules vs DeviceTree overlays — the two composition mechanisms
// applied to the same change (enable a UART + set a property). Overlays are
// the mainline alternative the paper's related work positions DOP against.
void BM_DeltaVsOverlay(benchmark::State& state) {
  const bool use_overlay = state.range(0) == 1;
  const char* base_src = R"(
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    soc {
        #address-cells = <1>;
        #size-cells = <1>;
        u0: uart@1000 { compatible = "ns16550a"; reg = <0x1000 0x100>;
                        status = "disabled"; };
    };
};
)";
  support::DiagnosticEngine diags;
  auto base = dts::parse_dts(base_src, "base.dts", diags);

  dts::SourceManager sm;
  auto overlay = dts::parse_overlay(R"(
/dts-v1/;
/plugin/;
&u0 { status = "okay"; current-speed = <115200>; };
)",
                                    "enable.dtso", sm, diags);
  auto deltas = delta::parse_deltas(R"(
delta enable {
    modifies uart@1000 {
        status = "okay";
        current-speed = <115200>;
    }
}
)",
                                    "enable.deltas", diags);

  for (auto _ : state) {
    auto tree = base->clone();
    support::DiagnosticEngine d;
    if (use_overlay) {
      benchmark::DoNotOptimize(dts::apply_overlay(*tree, *overlay, d));
    } else {
      benchmark::DoNotOptimize(delta::apply_delta(*tree, deltas[0], d));
    }
  }
  state.SetLabel(use_overlay ? "overlay" : "delta");
}
BENCHMARK(BM_DeltaVsOverlay)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();

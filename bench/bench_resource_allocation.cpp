// E3 — the §IV-A resource-allocation checker. Fixed point: the running
// example supports at most 2 VMs. Sweeps: feasibility checking as VM count
// and CPU pool grow (the cross-product XOR constraint is quadratic in VMs).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "checkers/resource_allocation.hpp"
#include "core/running_example.hpp"
#include "feature/multivm.hpp"

using namespace llhsc;

namespace {

smt::Backend backend_of(int64_t i) {
  return i == 0 ? smt::Backend::kBuiltin : smt::Backend::kZ3;
}

// Paper fixed point: max VMs = 2.
void BM_RunningExampleMaxVms(benchmark::State& state) {
  feature::FeatureModel m = feature::running_example_model();
  auto cpus = core::exclusive_cpus(m);
  int max_vms = 0;
  for (auto _ : state) {
    max_vms = feature::max_feasible_vms(m, backend_of(state.range(0)), cpus);
  }
  state.counters["max_vms"] = max_vms;
  state.SetLabel(std::string(smt::to_string(backend_of(state.range(0)))));
}
BENCHMARK(BM_RunningExampleMaxVms)->Arg(0)->Arg(1);

// Feasibility query scaling: n CPUs, n VMs (the feasible boundary).
void BM_AllocationFeasibility(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  feature::FeatureModel m = benchgen::scaled_model(n, 2);
  auto cpus = benchgen::scaled_model_cpus(m, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        feature::allocation_feasible(m, backend_of(state.range(1)), n, cpus));
  }
  state.counters["vms"] = n;
  state.counters["features"] = static_cast<double>(m.size());
  state.SetLabel(std::string(smt::to_string(backend_of(state.range(1)))));
}
BENCHMARK(BM_AllocationFeasibility)
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1});

// The infeasible side (n+1 VMs over n CPUs) — the UNSAT proof the checker
// relies on for the m = 2 bound.
void BM_AllocationInfeasibility(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  feature::FeatureModel m = benchgen::scaled_model(n, 2);
  auto cpus = benchgen::scaled_model_cpus(m, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(feature::allocation_feasible(
        m, backend_of(state.range(1)), n + 1, cpus));
  }
  state.counters["vms"] = n + 1;
  state.SetLabel(std::string(smt::to_string(backend_of(state.range(1)))));
}
BENCHMARK(BM_AllocationInfeasibility)
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1});

// The full checker on the paper's configuration.
void BM_CheckerOnPaperConfig(benchmark::State& state) {
  feature::FeatureModel m = feature::running_example_model();
  auto cpus = core::exclusive_cpus(m);
  for (auto _ : state) {
    checkers::ResourceAllocationChecker checker(m, cpus,
                                                backend_of(state.range(0)));
    benchmark::DoNotOptimize(
        checker.check({core::fig1b_features(), core::fig1c_features()}));
  }
  state.SetLabel(std::string(smt::to_string(backend_of(state.range(0)))));
}
BENCHMARK(BM_CheckerOnPaperConfig)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();

// PR4 — session re-checking through the api::CheckStore on the eight-VM
// workload (the two-VM running example widened by alternating Fig. 1b /
// Fig. 1c configurations). Three rows: a cold session (empty store), a warm
// re-check of the identical request (everything hits), and a one-delta edit
// (only d1's body changes, so only the products activating d1 re-derive).
// The store-counter deltas are exported so tools/bench_pr4.sh can assert
// the incrementality — rebuilds==1, hits>0 — instead of trusting it.
#include <benchmark/benchmark.h>

#include <string>

#include "api/llhsc.hpp"
#include "core/running_example.hpp"

using namespace llhsc;

namespace {

api::SessionRequest eight_vm_request() {
  api::SessionRequest r;
  r.core_source = core::running_example_core_dts();
  r.core_name = "custom-sbc.dts";
  r.includes.emplace_back("cpus.dtsi", core::running_example_cpus_dtsi());
  r.deltas_source = core::running_example_deltas();
  r.deltas_name = "custom-sbc.deltas";
  for (int i = 0; i < 8; ++i) {
    r.products.push_back({"vm" + std::to_string(i + 1),
                          i % 2 == 0 ? core::fig1b_features()
                                     : core::fig1c_features()});
  }
  return r;
}

/// d1's body with a per-edit unique property value, so every bench
/// iteration is a genuine fresh edit rather than a replay of an
/// already-cached variant. The veth schema allows additional properties,
/// so the edited product stays finding-free across revisions.
std::string deltas_with_d1_edit(int revision) {
  std::string text = core::running_example_deltas();
  const std::string needle = "id = <0>;";
  size_t pos = text.find(needle);
  if (pos != std::string::npos) {
    text.insert(pos + needle.size(),
                "\n            edit-revision = <" +
                    std::to_string(revision) + ">;");
  }
  return text;
}

void BM_SessionCheckCold(benchmark::State& state) {
  const api::SessionRequest request = eight_vm_request();
  int exit_code = -1;
  uint64_t derives = 0;
  for (auto _ : state) {
    api::CheckStore store;  // cold: nothing cached
    api::SessionResult out = api::run_session(request, store);
    exit_code = out.exit_code;
    derives = out.cost.derives;
    benchmark::DoNotOptimize(out);
  }
  state.counters["exit_code"] = static_cast<double>(exit_code);
  state.counters["derives"] = static_cast<double>(derives);
  state.SetLabel("cold");
}
BENCHMARK(BM_SessionCheckCold);

void BM_SessionCheckWarm(benchmark::State& state) {
  const api::SessionRequest request = eight_vm_request();
  api::CheckStore store;
  (void)api::run_session(request, store);  // prime
  int exit_code = -1;
  uint64_t derives = 0;
  uint64_t hits = 0;
  for (auto _ : state) {
    api::SessionResult out = api::run_session(request, store);
    exit_code = out.exit_code;
    derives = out.cost.derives;
    hits = out.cost.hits;
    benchmark::DoNotOptimize(out);
  }
  state.counters["exit_code"] = static_cast<double>(exit_code);
  state.counters["derives"] = static_cast<double>(derives);
  state.counters["hits"] = static_cast<double>(hits);
  state.SetLabel("warm");
}
BENCHMARK(BM_SessionCheckWarm);

void BM_SessionOneDeltaEdit(benchmark::State& state) {
  api::CheckStore store;
  (void)api::run_session(eight_vm_request(), store);  // prime
  int revision = 1;
  int exit_code = -1;
  uint64_t derives = 0;
  uint64_t unit_checks = 0;
  uint64_t hits = 0;
  for (auto _ : state) {
    state.PauseTiming();
    api::SessionRequest request = eight_vm_request();
    request.deltas_source = deltas_with_d1_edit(revision++);
    state.ResumeTiming();
    api::SessionResult out = api::run_session(request, store);
    exit_code = out.exit_code;
    derives = out.cost.derives;
    unit_checks = out.cost.unit_checks;
    hits = out.cost.hits;
    benchmark::DoNotOptimize(out);
  }
  state.counters["exit_code"] = static_cast<double>(exit_code);
  state.counters["derives"] = static_cast<double>(derives);
  state.counters["unit_checks"] = static_cast<double>(unit_checks);
  state.counters["hits"] = static_cast<double>(hits);
  state.SetLabel("one-delta-edit");
}
BENCHMARK(BM_SessionOneDeltaEdit);

}  // namespace

BENCHMARK_MAIN();

// E4 + E12 — the §IV-C semantic checker. Fixed point: the running-example
// UART clash is detected. Sweeps: pairwise disjointness checking vs region
// count and address width, with a three-way ablation — builtin bit-blasting,
// native Z3, and a plain interval-arithmetic baseline (what a non-SMT tool
// would do; it cannot produce witnesses or mix symbolic constraints, which
// is the capability the SMT path buys).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "checkers/semantic.hpp"
#include "core/running_example.hpp"
#include "dts/parser.hpp"

using namespace llhsc;

namespace {

smt::Backend backend_of(int64_t i) {
  return i == 0 ? smt::Backend::kBuiltin : smt::Backend::kZ3;
}

// Paper fixed point: detect the §I-A clash in the faulty CustomSBC.
void BM_RunningExampleClash(benchmark::State& state) {
  support::DiagnosticEngine diags;
  dts::SourceManager sm = core::running_example_sources();
  auto tree = dts::parse_dts(core::running_example_core_dts_with_uart_clash(),
                             "clash.dts", sm, diags);
  size_t overlaps = 0;
  for (auto _ : state) {
    checkers::SemanticChecker checker(backend_of(state.range(0)));
    checkers::Findings f = checker.check(*tree);
    overlaps = 0;
    for (const auto& finding : f) {
      if (finding.kind == checkers::FindingKind::kAddressOverlap) ++overlaps;
    }
  }
  state.counters["overlaps"] = static_cast<double>(overlaps);
  state.SetLabel(std::string(smt::to_string(backend_of(state.range(0)))));
}
BENCHMARK(BM_RunningExampleClash)->Arg(0)->Arg(1);

// Sweep: disjoint regions (all-UNSAT workload), region count on x-axis.
void BM_OverlapCheckDisjoint(benchmark::State& state) {
  auto regions =
      benchgen::synthetic_regions(static_cast<int>(state.range(0)), false);
  for (auto _ : state) {
    checkers::SemanticChecker checker(backend_of(state.range(1)));
    benchmark::DoNotOptimize(checker.check_regions(regions));
  }
  state.counters["regions"] = static_cast<double>(regions.size());
  state.counters["pairs"] =
      static_cast<double>(regions.size() * (regions.size() - 1) / 2);
  state.SetLabel(std::string(smt::to_string(backend_of(state.range(1)))));
}
BENCHMARK(BM_OverlapCheckDisjoint)
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({16, 0})
    ->Args({32, 0})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({16, 1})
    ->Args({32, 1});

// Ablation baseline: interval arithmetic (no SMT, no witnesses).
void BM_OverlapCheckIntervalBaseline(benchmark::State& state) {
  auto regions =
      benchgen::synthetic_regions(static_cast<int>(state.range(0)), false);
  size_t overlaps = 0;
  for (auto _ : state) {
    overlaps = 0;
    for (size_t i = 0; i < regions.size(); ++i) {
      for (size_t j = i + 1; j < regions.size(); ++j) {
        if (regions[i].base < regions[j].base + regions[j].size &&
            regions[j].base < regions[i].base + regions[i].size) {
          ++overlaps;
        }
      }
    }
    benchmark::DoNotOptimize(overlaps);
  }
  state.counters["regions"] = static_cast<double>(regions.size());
  state.SetLabel("interval-baseline");
}
BENCHMARK(BM_OverlapCheckIntervalBaseline)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

// Address-width sweep (bit-blasting cost grows with width; Z3 less so).
void BM_OverlapCheckWidth(benchmark::State& state) {
  auto regions = benchgen::synthetic_regions(8, true);
  checkers::SemanticOptions opts;
  opts.address_bits = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    checkers::SemanticChecker checker(backend_of(state.range(1)), opts);
    benchmark::DoNotOptimize(checker.check_regions(regions));
  }
  state.counters["bits"] = static_cast<double>(state.range(0));
  state.SetLabel(std::string(smt::to_string(backend_of(state.range(1)))));
}
BENCHMARK(BM_OverlapCheckWidth)
    ->Args({32, 0})
    ->Args({48, 0})
    ->Args({64, 0})
    ->Args({32, 1})
    ->Args({48, 1})
    ->Args({64, 1});

// Whole-tree check (extraction + interrupts + overlaps) on synthetic SBCs.
void BM_SemanticWholeTree(benchmark::State& state) {
  auto tree = benchgen::synthetic_tree(static_cast<int>(state.range(0)),
                                       static_cast<int>(state.range(1)));
  for (auto _ : state) {
    checkers::SemanticChecker checker(backend_of(state.range(2)));
    benchmark::DoNotOptimize(checker.check(*tree));
  }
  state.counters["banks"] = static_cast<double>(state.range(0));
  state.counters["devices"] = static_cast<double>(state.range(1));
  state.SetLabel(std::string(smt::to_string(backend_of(state.range(2)))));
}
BENCHMARK(BM_SemanticWholeTree)
    ->Args({2, 8, 0})
    ->Args({4, 16, 0})
    ->Args({2, 8, 1})
    ->Args({4, 16, 1});

}  // namespace

BENCHMARK_MAIN();

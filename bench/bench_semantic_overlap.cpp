// E4 + E12 — the §IV-C semantic checker. Fixed point: the running-example
// UART clash is detected. Sweeps: pairwise disjointness checking vs region
// count and address width, with a three-way ablation — builtin bit-blasting,
// native Z3, and a plain interval-arithmetic baseline (what a non-SMT tool
// would do; it cannot produce witnesses or mix symbolic constraints, which
// is the capability the SMT path buys).
#include <benchmark/benchmark.h>

#include <filesystem>

#include "bench_common.hpp"
#include "checkers/semantic.hpp"
#include "core/running_example.hpp"
#include "dts/parser.hpp"

using namespace llhsc;

namespace {

smt::Backend backend_of(int64_t i) {
  return i == 0 ? smt::Backend::kBuiltin : smt::Backend::kZ3;
}

// Paper fixed point: detect the §I-A clash in the faulty CustomSBC.
void BM_RunningExampleClash(benchmark::State& state) {
  support::DiagnosticEngine diags;
  dts::SourceManager sm = core::running_example_sources();
  auto tree = dts::parse_dts(core::running_example_core_dts_with_uart_clash(),
                             "clash.dts", sm, diags);
  size_t overlaps = 0;
  for (auto _ : state) {
    checkers::SemanticChecker checker(backend_of(state.range(0)));
    checkers::Findings f = checker.check(*tree);
    overlaps = 0;
    for (const auto& finding : f) {
      if (finding.kind == checkers::FindingKind::kAddressOverlap) ++overlaps;
    }
  }
  state.counters["overlaps"] = static_cast<double>(overlaps);
  state.SetLabel(std::string(smt::to_string(backend_of(state.range(0)))));
}
BENCHMARK(BM_RunningExampleClash)->Arg(0)->Arg(1);

// Sweep: disjoint regions (all-UNSAT workload), region count on x-axis.
// plan=false pins the exhaustive one-query-per-pair path this sweep has
// always measured; BM_OverlapCheckPlanner covers the planned modes.
void BM_OverlapCheckDisjoint(benchmark::State& state) {
  auto regions =
      benchgen::synthetic_regions(static_cast<int>(state.range(0)), false);
  checkers::SemanticOptions opts;
  opts.plan = false;
  for (auto _ : state) {
    checkers::SemanticChecker checker(backend_of(state.range(1)), opts);
    benchmark::DoNotOptimize(checker.check_regions(regions));
  }
  state.counters["regions"] = static_cast<double>(regions.size());
  state.counters["pairs"] =
      static_cast<double>(regions.size() * (regions.size() - 1) / 2);
  state.SetLabel(std::string(smt::to_string(backend_of(state.range(1)))));
}
BENCHMARK(BM_OverlapCheckDisjoint)
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({16, 0})
    ->Args({32, 0})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({16, 1})
    ->Args({32, 1});

// Ablation baseline: interval arithmetic (no SMT, no witnesses).
void BM_OverlapCheckIntervalBaseline(benchmark::State& state) {
  auto regions =
      benchgen::synthetic_regions(static_cast<int>(state.range(0)), false);
  size_t overlaps = 0;
  for (auto _ : state) {
    overlaps = 0;
    for (size_t i = 0; i < regions.size(); ++i) {
      for (size_t j = i + 1; j < regions.size(); ++j) {
        if (regions[i].base < regions[j].base + regions[j].size &&
            regions[j].base < regions[i].base + regions[i].size) {
          ++overlaps;
        }
      }
    }
    benchmark::DoNotOptimize(overlaps);
  }
  state.counters["regions"] = static_cast<double>(regions.size());
  state.SetLabel("interval-baseline");
}
BENCHMARK(BM_OverlapCheckIntervalBaseline)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

// The query-planner ablation on one collision-bearing workload:
//   mode 0 — exhaustive: one push/check/pop per pair (the pre-planner path)
//   mode 1 — planned: sweep-line prefilter + batched guarded queries
//   mode 2 — warm cache: planned, with every verdict replayed from a
//            pre-populated --cache-dir (zero solver queries)
void BM_OverlapCheckPlanner(benchmark::State& state) {
  auto regions =
      benchgen::synthetic_regions(static_cast<int>(state.range(0)), true);
  const int64_t mode = state.range(2);
  checkers::SemanticOptions opts;
  opts.plan = mode != 0;
  std::string cache_dir;
  if (mode == 2) {
    cache_dir = (std::filesystem::temp_directory_path() /
                 ("llhsc-bench-qc-" + std::string(smt::to_string(backend_of(
                                          state.range(1))))))
                    .string();
    std::filesystem::remove_all(cache_dir);
    opts.cache_dir = cache_dir;
    // Prime the cache outside the timed loop.
    checkers::SemanticChecker warmup(backend_of(state.range(1)), opts);
    benchmark::DoNotOptimize(warmup.check_regions(regions));
  }
  uint64_t checks = 0, issued = 0, pruned = 0, hits = 0;
  for (auto _ : state) {
    checkers::SemanticChecker checker(backend_of(state.range(1)), opts);
    benchmark::DoNotOptimize(checker.check_regions(regions));
    checks = checker.solver_checks();
    issued = checker.plan_stats().queries_issued;
    pruned = checker.plan_stats().queries_pruned;
    hits = checker.plan_stats().cache_hits;
  }
  if (!cache_dir.empty()) std::filesystem::remove_all(cache_dir);
  state.counters["regions"] = static_cast<double>(regions.size());
  state.counters["solver_checks"] = static_cast<double>(checks);
  state.counters["queries_issued"] = static_cast<double>(issued);
  state.counters["queries_pruned"] = static_cast<double>(pruned);
  state.counters["cache_hits"] = static_cast<double>(hits);
  const char* mode_name[] = {"exhaustive", "planned", "warm-cache"};
  state.SetLabel(std::string(smt::to_string(backend_of(state.range(1)))) +
                 "/" + mode_name[mode]);
}
BENCHMARK(BM_OverlapCheckPlanner)
    ->Args({16, 0, 0})
    ->Args({16, 0, 1})
    ->Args({16, 0, 2})
    ->Args({32, 0, 0})
    ->Args({32, 0, 1})
    ->Args({32, 0, 2})
    ->Args({32, 1, 0})
    ->Args({32, 1, 1})
    ->Args({32, 1, 2});

// Address-width sweep (bit-blasting cost grows with width; Z3 less so).
void BM_OverlapCheckWidth(benchmark::State& state) {
  auto regions = benchgen::synthetic_regions(8, true);
  checkers::SemanticOptions opts;
  opts.plan = false;  // keep measuring the per-pair encoding cost
  opts.address_bits = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    checkers::SemanticChecker checker(backend_of(state.range(1)), opts);
    benchmark::DoNotOptimize(checker.check_regions(regions));
  }
  state.counters["bits"] = static_cast<double>(state.range(0));
  state.SetLabel(std::string(smt::to_string(backend_of(state.range(1)))));
}
BENCHMARK(BM_OverlapCheckWidth)
    ->Args({32, 0})
    ->Args({48, 0})
    ->Args({64, 0})
    ->Args({32, 1})
    ->Args({48, 1})
    ->Args({64, 1});

// Whole-tree check (extraction + interrupts + overlaps) on synthetic SBCs.
void BM_SemanticWholeTree(benchmark::State& state) {
  auto tree = benchgen::synthetic_tree(static_cast<int>(state.range(0)),
                                       static_cast<int>(state.range(1)));
  for (auto _ : state) {
    checkers::SemanticChecker checker(backend_of(state.range(2)));
    benchmark::DoNotOptimize(checker.check(*tree));
  }
  state.counters["banks"] = static_cast<double>(state.range(0));
  state.counters["devices"] = static_cast<double>(state.range(1));
  state.SetLabel(std::string(smt::to_string(backend_of(state.range(2)))));
}
BENCHMARK(BM_SemanticWholeTree)
    ->Args({2, 8, 0})
    ->Args({4, 16, 0})
    ->Args({2, 8, 1})
    ->Args({4, 16, 1});

}  // namespace

BENCHMARK_MAIN();

// SAT substrate benches: the CDCL solver on classic instance families
// (implication chains for propagation, pigeonhole for clause learning,
// random 3-SAT near the phase transition) plus the Tseitin + bit-blasting
// layers. These are the ablation data for the builtin backend.
#include <benchmark/benchmark.h>

#include <random>

#include "logic/bitvector.hpp"
#include "logic/cnf.hpp"
#include "sat/solver.hpp"

using namespace llhsc;

namespace {

void BM_SatChainPropagation(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sat::Solver s;
    std::vector<sat::Var> vars;
    for (int i = 0; i < n; ++i) vars.push_back(s.new_var());
    for (int i = 0; i + 1 < n; ++i) {
      s.add_clause(sat::Lit::negative(vars[static_cast<size_t>(i)]),
                   sat::Lit::positive(vars[static_cast<size_t>(i + 1)]));
    }
    s.add_clause(sat::Lit::positive(vars[0]));
    benchmark::DoNotOptimize(s.solve());
  }
  state.counters["vars"] = static_cast<double>(n);
}
BENCHMARK(BM_SatChainPropagation)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SatPigeonhole(benchmark::State& state) {
  int pigeons = static_cast<int>(state.range(0));
  int holes = pigeons - 1;
  for (auto _ : state) {
    sat::Solver s;
    std::vector<std::vector<sat::Var>> p(
        static_cast<size_t>(pigeons),
        std::vector<sat::Var>(static_cast<size_t>(holes)));
    for (auto& row : p) {
      for (sat::Var& v : row) v = s.new_var();
    }
    for (int i = 0; i < pigeons; ++i) {
      std::vector<sat::Lit> clause;
      for (int h = 0; h < holes; ++h) {
        clause.push_back(sat::Lit::positive(
            p[static_cast<size_t>(i)][static_cast<size_t>(h)]));
      }
      s.add_clause(std::move(clause));
    }
    for (int h = 0; h < holes; ++h) {
      for (int i = 0; i < pigeons; ++i) {
        for (int j = i + 1; j < pigeons; ++j) {
          s.add_clause(sat::Lit::negative(
                           p[static_cast<size_t>(i)][static_cast<size_t>(h)]),
                       sat::Lit::negative(
                           p[static_cast<size_t>(j)][static_cast<size_t>(h)]));
        }
      }
    }
    benchmark::DoNotOptimize(s.solve());
  }
  state.counters["pigeons"] = static_cast<double>(pigeons);
}
BENCHMARK(BM_SatPigeonhole)->Arg(6)->Arg(7)->Arg(8)->Arg(9);

void BM_SatRandom3Sat(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int clauses = static_cast<int>(4.2 * n);
  std::mt19937 rng(42);
  std::uniform_int_distribution<int> var_dist(0, n - 1);
  std::uniform_int_distribution<int> sign(0, 1);
  std::vector<std::vector<std::pair<int, bool>>> instance;
  for (int i = 0; i < clauses; ++i) {
    std::vector<std::pair<int, bool>> c;
    for (int j = 0; j < 3; ++j) c.emplace_back(var_dist(rng), sign(rng) == 1);
    instance.push_back(std::move(c));
  }
  for (auto _ : state) {
    sat::Solver s;
    std::vector<sat::Var> vars;
    for (int i = 0; i < n; ++i) vars.push_back(s.new_var());
    bool ok = true;
    for (const auto& c : instance) {
      std::vector<sat::Lit> lits;
      for (auto [v, neg] : c) {
        lits.push_back(sat::Lit(vars[static_cast<size_t>(v)], neg));
      }
      ok = s.add_clause(std::move(lits)) && ok;
    }
    benchmark::DoNotOptimize(ok ? s.solve() : sat::SolveResult::kUnsat);
  }
  state.counters["vars"] = static_cast<double>(n);
  state.counters["clauses"] = static_cast<double>(clauses);
}
BENCHMARK(BM_SatRandom3Sat)->Arg(50)->Arg(100)->Arg(150);

// Deadline-poll overhead: the same random 3-SAT workload with no deadline
// (the poll is hoisted out of the search loop entirely), with a generous
// wall-clock deadline (decimated clock reads: one per kDeadlinePollBudget
// work units), and with a cancel token on top (same cadence, one extra
// atomic load per poll). The three rows bounding each other is the evidence
// that bounded solving is safe to leave on for every query.
//   mode 0 — unlimited (hoisted poll)
//   mode 1 — 60s deadline (never fires; decimated clock reads)
//   mode 2 — 60s deadline + cancel token (never fires)
void BM_SatDeadlinePolling(benchmark::State& state) {
  constexpr int kVars = 100;
  const int clauses = static_cast<int>(4.2 * kVars);
  std::mt19937 rng(42);
  std::uniform_int_distribution<int> var_dist(0, kVars - 1);
  std::uniform_int_distribution<int> sign(0, 1);
  std::vector<std::vector<std::pair<int, bool>>> instance;
  for (int i = 0; i < clauses; ++i) {
    std::vector<std::pair<int, bool>> c;
    for (int j = 0; j < 3; ++j) c.emplace_back(var_dist(rng), sign(rng) == 1);
    instance.push_back(std::move(c));
  }
  const int64_t mode = state.range(0);
  support::CancelToken token = support::CancelToken::create();
  for (auto _ : state) {
    sat::Solver s;
    if (mode == 1) {
      s.set_deadline(support::Deadline::after_ms(60000));
    } else if (mode == 2) {
      s.set_deadline(support::Deadline::after_ms(60000).with_cancel(token));
    }
    std::vector<sat::Var> vars;
    for (int i = 0; i < kVars; ++i) vars.push_back(s.new_var());
    bool ok = true;
    for (const auto& c : instance) {
      std::vector<sat::Lit> lits;
      for (auto [v, neg] : c) {
        lits.push_back(sat::Lit(vars[static_cast<size_t>(v)], neg));
      }
      ok = s.add_clause(std::move(lits)) && ok;
    }
    benchmark::DoNotOptimize(ok ? s.solve() : sat::SolveResult::kUnsat);
  }
  const char* mode_name[] = {"unlimited", "deadline", "deadline+cancel"};
  state.SetLabel(mode_name[mode]);
}
BENCHMARK(BM_SatDeadlinePolling)->Arg(0)->Arg(1)->Arg(2);

// Bit-blasting: solve x + y == C with x < y, sweeping width.
void BM_BitBlastAddition(benchmark::State& state) {
  uint32_t width = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    logic::FormulaArena formulas;
    logic::BvArena bv(formulas);
    sat::Solver s;
    logic::CnfEncoder enc(formulas, s, &bv);
    auto x = bv.bv_var("x", width);
    auto y = bv.bv_var("y", width);
    enc.assert_formula(bv.eq(bv.bv_add(x, y),
                             bv.bv_const(0x1234 & ((1ull << width) - 1), width)));
    enc.assert_formula(bv.ult(x, y));
    benchmark::DoNotOptimize(s.solve());
  }
  state.counters["width"] = static_cast<double>(width);
}
BENCHMARK(BM_BitBlastAddition)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// Bit-blasting a multiplier (quadratic circuit): factor a constant.
void BM_BitBlastFactoring(benchmark::State& state) {
  uint32_t width = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    logic::FormulaArena formulas;
    logic::BvArena bv(formulas);
    sat::Solver s;
    logic::CnfEncoder enc(formulas, s, &bv);
    auto x = bv.bv_var("x", width);
    auto y = bv.bv_var("y", width);
    enc.assert_formula(
        bv.eq(bv.bv_mul(x, y), bv.bv_const(143 /* = 11 * 13 */, width)));
    enc.assert_formula(bv.ugt(x, bv.bv_const(1, width)));
    enc.assert_formula(bv.ugt(y, bv.bv_const(1, width)));
    benchmark::DoNotOptimize(s.solve());
  }
  state.counters["width"] = static_cast<double>(width);
}
BENCHMARK(BM_BitBlastFactoring)->Arg(8)->Arg(12)->Arg(16);

// At-most-one encoding ablation: pairwise (quadratic clauses) vs sequential
// counter (linear, auxiliary variables) — the dispatch behind XOR feature
// groups. Workload: assert AMO over n vars plus "at least one", enumerate
// all n models.
void BM_AmoEncodings(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool sequential = state.range(1) == 1;
  for (auto _ : state) {
    logic::FormulaArena arena;
    sat::Solver s;
    logic::CnfEncoder enc(arena, s);
    std::vector<logic::BoolVar> vars;
    std::vector<logic::Formula> fs;
    for (int i = 0; i < n; ++i) {
      vars.push_back(arena.new_bool_var("x" + std::to_string(i)));
      fs.push_back(arena.var(vars.back()));
    }
    logic::Formula amo = sequential ? arena.mk_at_most_one_sequential(fs)
                                    : arena.mk_at_most_one_pairwise(fs);
    enc.assert_formula(amo);
    enc.assert_formula(arena.mk_or(fs));
    std::vector<sat::Var> projection;
    for (logic::BoolVar v : vars) projection.push_back(enc.sat_var(v));
    benchmark::DoNotOptimize(s.count_models(projection));
  }
  state.counters["n"] = static_cast<double>(n);
  state.SetLabel(sequential ? "sequential" : "pairwise");
}
BENCHMARK(BM_AmoEncodings)
    ->Args({16, 0})
    ->Args({64, 0})
    ->Args({256, 0})
    ->Args({16, 1})
    ->Args({64, 1})
    ->Args({256, 1});

// All-SAT enumeration throughput (backs the product-counting analyses).
void BM_SatModelEnumeration(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sat::Solver s;
    std::vector<sat::Var> vars;
    for (int i = 0; i < n; ++i) vars.push_back(s.new_var());
    // at-least-one constraint: 2^n - 1 models
    std::vector<sat::Lit> clause;
    for (sat::Var v : vars) clause.push_back(sat::Lit::positive(v));
    s.add_clause(std::move(clause));
    benchmark::DoNotOptimize(s.count_models(vars));
  }
  state.counters["models"] = static_cast<double>((1u << n) - 1);
}
BENCHMARK(BM_SatModelEnumeration)->Arg(4)->Arg(8)->Arg(10);

}  // namespace

BENCHMARK_MAIN();

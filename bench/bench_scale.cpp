// PR10 — horizontal-scaling load driver for llhscd. Unlike the other bench
// binaries this is not a google-benchmark microbench: it drives a *live*
// daemon over its Unix socket with N concurrent clients issuing
// solver-backed check requests, and reports aggregate throughput as one
// JSON line on stdout. tools/bench_scale.sh runs it against a 1-worker and
// a multi-worker daemon in interleaved rounds and gates the pooled-best
// speedup (BENCH_pr10.json).
//
// Every request body carries a unique bench-rev property, so neither the
// daemon's in-memory artifact store nor a worker's check cache can
// short-circuit the work: each request parses, plans and proves its
// address map from scratch — the CPU-bound workload horizontal scaling is
// supposed to parallelise.
//
// Usage: bench_scale --socket <path> [--clients N] [--requests M]
//                    [--regions K] [--tag T]
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "server/json.hpp"

using llhsc::server::Json;

namespace {

// A clean K-region board: every region is disjoint, so the semantic stage
// has to discharge the full pairwise no-overlap obligation set through the
// solver (the expensive path), and the verdict stays exit 0.
std::string board_source(int regions, int revision) {
  std::string s = "/dts-v1/;\n/ {\n";
  s += "    #address-cells = <1>;\n    #size-cells = <1>;\n";
  s += "    bench-rev = <" + std::to_string(revision) + ">;\n";
  s += "    memory@40000000 { device_type = \"memory\"; "
       "reg = <0x40000000 0x1000000>; };\n";
  for (int i = 0; i < regions; ++i) {
    const unsigned base = 0x10000000u + 0x100000u * static_cast<unsigned>(i);
    char node[160];
    std::snprintf(node, sizeof(node),
                  "    uart@%x { compatible = \"ns16550a\"; "
                  "reg = <0x%x 0x1000>; };\n",
                  base, base);
    s += node;
  }
  s += "};\n";
  return s;
}

std::string check_line(uint64_t id, int regions, int revision) {
  Json params = Json::object();
  params.set("path", Json::string("bench-scale.dts"));
  params.set("source", Json::string(board_source(regions, revision)));
  params.set("format", Json::string("json"));
  Json req = Json::object();
  req.set("id", Json::unsigned_integer(id));
  req.set("method", Json::string("check"));
  req.set("params", std::move(params));
  return req.dump() + "\n";
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

bool recv_line(int fd, std::string& buffer, std::string& line) {
  for (;;) {
    const size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      return true;
    }
    char chunk[65536];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) return false;
    buffer.append(chunk, static_cast<size_t>(n));
  }
}

struct ClientResult {
  int served = 0;
  int failures = 0;
};

void run_client(const std::string& socket_path, int client, int requests,
                int regions, int tag, ClientResult& result) {
  const int fd = connect_unix(socket_path);
  if (fd < 0) {
    result.failures = requests;
    return;
  }
  std::string buffer;
  std::string line;
  for (int i = 0; i < requests; ++i) {
    const uint64_t id = static_cast<uint64_t>(client) * 100000u +
                        static_cast<uint64_t>(i) + 1;
    const int revision = tag * 1000000 + client * 10000 + i;
    if (!send_all(fd, check_line(id, regions, revision)) ||
        !recv_line(fd, buffer, line)) {
      result.failures += requests - i;
      break;
    }
    const std::optional<Json> reply = Json::parse(line);
    if (!reply || !reply->has("ok") || !reply->at("ok").as_bool(false)) {
      ++result.failures;
      continue;
    }
    ++result.served;
  }
  ::close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  int clients = 4;
  int requests = 8;
  int regions = 6;
  int tag = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--socket") socket_path = next();
    else if (arg == "--clients") clients = std::atoi(next());
    else if (arg == "--requests") requests = std::atoi(next());
    else if (arg == "--regions") regions = std::atoi(next());
    else if (arg == "--tag") tag = std::atoi(next());
    else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (socket_path.empty() || clients < 1 || requests < 1) {
    std::fprintf(stderr,
                 "usage: bench_scale --socket <path> [--clients N] "
                 "[--requests M] [--regions K] [--tag T]\n");
    return 2;
  }

  std::vector<ClientResult> results(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back(run_client, socket_path, c, requests, regions, tag,
                         std::ref(results[static_cast<size_t>(c)]));
  }
  for (std::thread& t : threads) t.join();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  int served = 0;
  int failures = 0;
  for (const ClientResult& r : results) {
    served += r.served;
    failures += r.failures;
  }
  const double rps = wall_ms > 0 ? served / (wall_ms / 1e3) : 0.0;
  std::printf(
      "{\"clients\": %d, \"requests_per_client\": %d, \"regions\": %d, "
      "\"served\": %d, \"failures\": %d, \"wall_ms\": %.3f, "
      "\"rps\": %.3f}\n",
      clients, requests, regions, served, failures, wall_ms, rps);
  return failures == 0 ? 0 : 1;
}

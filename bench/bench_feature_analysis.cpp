// E1 + E11 — feature-model analyses. The fixed point the paper reports:
// the running example has 12 valid products. The sweeps back the paper's
// claim that feature-model allocation "is efficiently handled by the
// SAT-solver" (§VI): product counting and validity checking stay fast as the
// model grows, on both backends.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "feature/analysis.hpp"
#include "feature/configurator.hpp"

using namespace llhsc;

namespace {

smt::Backend backend_of(int64_t i) {
  return i == 0 ? smt::Backend::kBuiltin : smt::Backend::kZ3;
}

// Paper fixed point: count the 12 products of Fig. 1a.
void BM_RunningExampleProductCount(benchmark::State& state) {
  feature::FeatureModel m = feature::running_example_model();
  uint64_t count = 0;
  for (auto _ : state) {
    smt::Solver solver(backend_of(state.range(0)));
    count = feature::count_products(m, solver);
    benchmark::DoNotOptimize(count);
  }
  state.counters["products"] = static_cast<double>(count);
  state.SetLabel(std::string(smt::to_string(backend_of(state.range(0)))));
}
BENCHMARK(BM_RunningExampleProductCount)->Arg(0)->Arg(1);

// Sweep: product counting as the model grows (CPUs x UARTs).
void BM_ProductCountScaling(benchmark::State& state) {
  int cpus = static_cast<int>(state.range(0));
  int uarts = static_cast<int>(state.range(1));
  feature::FeatureModel m = benchgen::scaled_model(cpus, uarts);
  uint64_t count = 0;
  for (auto _ : state) {
    smt::Solver solver(backend_of(state.range(2)));
    count = feature::count_products(m, solver);
  }
  state.counters["features"] = static_cast<double>(m.size());
  state.counters["products"] = static_cast<double>(count);
  state.SetLabel(std::string(smt::to_string(backend_of(state.range(2)))));
}
BENCHMARK(BM_ProductCountScaling)
    ->Args({2, 2, 0})
    ->Args({4, 4, 0})
    ->Args({8, 6, 0})
    ->Args({2, 2, 1})
    ->Args({4, 4, 1})
    ->Args({8, 6, 1});

// Validity of one product — the interactive-configuration operation.
void BM_ValidProductCheck(benchmark::State& state) {
  int cpus = static_cast<int>(state.range(0));
  feature::FeatureModel m = benchgen::scaled_model(cpus, cpus);
  feature::Selection sel(m.size(), false);
  sel[m.root().index] = true;
  sel[m.find("memory")->index] = true;
  sel[m.find("cpus")->index] = true;
  sel[m.find("cpu@0")->index] = true;
  sel[m.find("uarts")->index] = true;
  sel[m.find("uart@0")->index] = true;
  for (auto _ : state) {
    smt::Solver solver(backend_of(state.range(1)));
    benchmark::DoNotOptimize(feature::is_valid_product(m, solver, sel));
  }
  state.counters["features"] = static_cast<double>(m.size());
  state.SetLabel(std::string(smt::to_string(backend_of(state.range(1)))));
}
BENCHMARK(BM_ValidProductCheck)
    ->Args({4, 0})
    ->Args({16, 0})
    ->Args({64, 0})
    ->Args({4, 1})
    ->Args({16, 1})
    ->Args({64, 1});

// Dead-feature analysis: one solver call per feature.
void BM_DeadFeatureAnalysis(benchmark::State& state) {
  int cpus = static_cast<int>(state.range(0));
  feature::FeatureModel m = benchgen::scaled_model(cpus, cpus);
  for (auto _ : state) {
    smt::Solver solver(backend_of(state.range(1)));
    benchmark::DoNotOptimize(feature::dead_features(m, solver));
  }
  state.counters["features"] = static_cast<double>(m.size());
  state.SetLabel(std::string(smt::to_string(backend_of(state.range(1)))));
}
BENCHMARK(BM_DeadFeatureAnalysis)
    ->Args({8, 0})
    ->Args({32, 0})
    ->Args({8, 1})
    ->Args({32, 1});

// Interactive-configuration latency: one user decision triggers a full
// propagation pass (2 solver queries per undecided feature) — the number the
// paper's cloud UI would feel.
void BM_ConfiguratorDecision(benchmark::State& state) {
  int cpus = static_cast<int>(state.range(0));
  feature::FeatureModel m = benchgen::scaled_model(cpus, cpus);
  auto veth0 = m.find("veth0");
  for (auto _ : state) {
    feature::Configurator cfg(m, backend_of(state.range(1)));
    benchmark::DoNotOptimize(cfg.select(*veth0));
  }
  state.counters["features"] = static_cast<double>(m.size());
  state.SetLabel(std::string(smt::to_string(backend_of(state.range(1)))));
}
BENCHMARK(BM_ConfiguratorDecision)
    ->Args({2, 0})
    ->Args({8, 0})
    ->Args({16, 0})
    ->Args({2, 1})
    ->Args({8, 1})
    ->Args({16, 1});

}  // namespace

BENCHMARK_MAIN();

// PR9 — lifted family-based checking vs per-product enumeration on the
// synthetic SPL (n independent optional features, one delta each, dev1
// overlapping dev0). Three rows:
//   lifted-4096      one solver conversation over the 2^12 family
//   enumerated-4096  derive + semantic-check every one of the 4096 products
//   lifted-1M        the 2^20 family, which enumeration cannot touch
// The lifted rows export the engine shape (components/patterns/slices) and
// a one-shot differential verdict so tools/bench_pr9.sh can assert the
// speedup is over *equal* verdicts, not a cheaper analysis.
#include <benchmark/benchmark.h>

#include <memory>
#include <set>
#include <string>

#include "checkers/semantic.hpp"
#include "feature/analysis.hpp"
#include "lift/differential.hpp"
#include "lift/lift.hpp"
#include "lift/synthetic.hpp"
#include "smt/solver.hpp"
#include "support/diagnostics.hpp"

using namespace llhsc;

namespace {

lift::LiftOptions lifted_options() {
  lift::LiftOptions opts;
  opts.backend = smt::Backend::kBuiltin;
  opts.max_configs = 4;
  return opts;
}

void BM_LiftedFamily(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const lift::SyntheticSpl spl = lift::make_synthetic_spl(n, true);
  const lift::LiftOptions opts = lifted_options();
  lift::LiftedResult result;
  for (auto _ : state) {
    support::DiagnosticEngine diags;
    result = lift::check_family(*spl.line, spl.model, opts, diags);
    benchmark::DoNotOptimize(result);
  }
  state.counters["ok"] = result.ok ? 1 : 0;
  state.counters["findings"] = static_cast<double>(result.findings.size());
  state.counters["components"] = static_cast<double>(result.components);
  state.counters["patterns"] = static_cast<double>(result.patterns);
  state.counters["slices"] = static_cast<double>(result.slices);
  // One untimed differential over the full family: the speedup row below is
  // only meaningful if the verdicts are identical product-for-product.
  if (n <= 12) {
    lift::DifferentialOptions dopts;
    dopts.max_products = uint64_t{1} << n;
    const lift::DifferentialReport diff = lift::compare_with_enumeration(
        *spl.line, spl.model, result, opts, dopts);
    state.counters["differential_equal"] =
        diff.equal && !diff.capped ? 1 : 0;
    state.counters["differential_products"] =
        static_cast<double>(diff.products);
  }
  state.SetLabel("lifted-2^" + std::to_string(n));
}
BENCHMARK(BM_LiftedFamily)->Arg(12)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_EnumeratedFamily(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const lift::SyntheticSpl spl = lift::make_synthetic_spl(n, true);
  checkers::SemanticChecker checker(smt::Backend::kBuiltin, {});
  uint64_t products = 0;
  uint64_t findings = 0;
  for (auto _ : state) {
    products = 0;
    findings = 0;
    smt::Solver solver(smt::Backend::kBuiltin);
    feature::enumerate_products(
        spl.model, solver,
        [&](const feature::Selection& sel) {
          std::set<std::string> names;
          for (uint32_t i = 0; i < sel.size(); ++i) {
            if (sel[i]) {
              names.insert(spl.model.feature(feature::FeatureId{i}).name);
            }
          }
          support::DiagnosticEngine diags;
          std::unique_ptr<dts::Tree> tree = spl.line->derive(names, diags);
          if (tree != nullptr) {
            ++products;
            findings += checker.check(*tree).size();
          }
          return true;
        },
        uint64_t{1} << n);
    benchmark::DoNotOptimize(findings);
  }
  state.counters["products"] = static_cast<double>(products);
  state.counters["findings"] = static_cast<double>(findings);
  state.SetLabel("enumerated-2^" + std::to_string(n));
}
BENCHMARK(BM_EnumeratedFamily)->Arg(12)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

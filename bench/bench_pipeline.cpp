// E10 — the full Fig. 2 workflow on the paper's two-VM configuration: all
// three checkers plus artifact generation, per backend, and a stage
// breakdown (allocation / generation / syntax / semantics toggled off
// individually).
#include <benchmark/benchmark.h>

#include <filesystem>

#include "core/pipeline.hpp"
#include "core/running_example.hpp"
#include "feature/analysis.hpp"
#include "obs/obs.hpp"
#include "schema/builtin_schemas.hpp"

using namespace llhsc;

namespace {

smt::Backend backend_of(int64_t i) {
  return i == 0 ? smt::Backend::kBuiltin : smt::Backend::kZ3;
}

struct Fixture {
  feature::FeatureModel model = feature::running_example_model();
  schema::SchemaSet schemas = schema::builtin_schemas();
  support::DiagnosticEngine diags;
  std::unique_ptr<delta::ProductLine> pl =
      core::running_example_product_line(diags);
  std::vector<core::VmSpec> vms{{"vm1", core::fig1b_features()},
                                {"vm2", core::fig1c_features()}};
};

void BM_FullPipeline(benchmark::State& state) {
  Fixture fx;
  core::PipelineOptions opts;
  opts.backend = backend_of(state.range(0));
  bool ok = false;
  for (auto _ : state) {
    core::Pipeline pipeline(fx.model, core::exclusive_cpus(fx.model), *fx.pl,
                            fx.schemas, opts);
    core::PipelineResult result = pipeline.run(fx.vms);
    ok = result.ok;
    benchmark::DoNotOptimize(result);
  }
  state.counters["ok"] = ok ? 1 : 0;
  state.SetLabel(std::string(smt::to_string(backend_of(state.range(0)))));
}
BENCHMARK(BM_FullPipeline)->Arg(0)->Arg(1);

// Stage ablation: each stage disabled in turn (builtin backend).
void BM_PipelineStageAblation(benchmark::State& state) {
  Fixture fx;
  core::PipelineOptions opts;
  const char* label = "all-stages";
  switch (state.range(0)) {
    case 1: opts.check_allocation = false; label = "no-allocation"; break;
    case 2: opts.check_syntax = false; label = "no-syntax"; break;
    case 3: opts.check_semantics = false; label = "no-semantics"; break;
    case 4: opts.emit_dtb = false; label = "no-dtb"; break;
    default: break;
  }
  for (auto _ : state) {
    core::Pipeline pipeline(fx.model, core::exclusive_cpus(fx.model), *fx.pl,
                            fx.schemas, opts);
    benchmark::DoNotOptimize(pipeline.run(fx.vms));
  }
  state.SetLabel(label);
}
BENCHMARK(BM_PipelineStageAblation)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

// Serial vs parallel scaling: the two-VM example widened to eight VMs
// (alternating Fig. 1b / Fig. 1c configurations) so there is enough per-VM
// work to amortise across the pool. Allocation is disabled because eight
// VMs deliberately reuse the two-VM example's exclusive CPUs. Real time is
// what matters here, not aggregate CPU time.
void BM_PipelineParallel(benchmark::State& state) {
  Fixture fx;
  std::vector<core::VmSpec> vms;
  for (int i = 0; i < 8; ++i) {
    vms.push_back({"vm" + std::to_string(i + 1),
                   i % 2 == 0 ? core::fig1b_features()
                              : core::fig1c_features()});
  }
  core::PipelineOptions opts;
  opts.check_allocation = false;
  opts.jobs = static_cast<unsigned>(state.range(0));
  bool ok = false;
  for (auto _ : state) {
    core::Pipeline pipeline(fx.model, core::exclusive_cpus(fx.model), *fx.pl,
                            fx.schemas, opts);
    core::PipelineResult result = pipeline.run(vms);
    ok = result.ok;
    benchmark::DoNotOptimize(result);
  }
  state.counters["ok"] = ok ? 1 : 0;
  state.SetLabel("jobs=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_PipelineParallel)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// Query-planner ablation on the eight-VM workload (the PR3 acceptance
// workload): exhaustive per-pair solving vs the planned path vs a warm
// persistent cache. Counters expose the trace totals the --trace-json
// output reports, so the ratio is auditable from the benchmark output.
//   mode 0 — exhaustive (plan_queries=false)
//   mode 1 — planned (sweep-line + bucket prefilters, batched queries)
//   mode 2 — planned with a pre-populated --cache-dir (warm: zero queries)
void BM_PipelineEightVmPlanner(benchmark::State& state) {
  Fixture fx;
  std::vector<core::VmSpec> vms;
  for (int i = 0; i < 8; ++i) {
    vms.push_back({"vm" + std::to_string(i + 1),
                   i % 2 == 0 ? core::fig1b_features()
                              : core::fig1c_features()});
  }
  const int64_t mode = state.range(0);
  core::PipelineOptions opts;
  opts.check_allocation = false;
  opts.plan_queries = mode != 0;
  std::string cache_dir;
  if (mode == 2) {
    cache_dir =
        (std::filesystem::temp_directory_path() / "llhsc-bench-pipeline-qc")
            .string();
    std::filesystem::remove_all(cache_dir);
    opts.cache_dir = cache_dir;
    core::Pipeline warmup(fx.model, core::exclusive_cpus(fx.model), *fx.pl,
                          fx.schemas, opts);
    benchmark::DoNotOptimize(warmup.run(vms));
  }
  uint64_t checks = 0, issued = 0, pruned = 0, hits = 0;
  for (auto _ : state) {
    core::Pipeline pipeline(fx.model, core::exclusive_cpus(fx.model), *fx.pl,
                            fx.schemas, opts);
    core::PipelineResult result = pipeline.run(vms);
    checks = issued = pruned = hits = 0;
    for (const core::StageTrace& s : result.trace.stages) {
      if (s.stage != "semantic") continue;
      checks += s.solver_checks;
      issued += s.queries_issued;
      pruned += s.queries_pruned;
      hits += s.cache_hits;
    }
    benchmark::DoNotOptimize(result);
  }
  if (!cache_dir.empty()) std::filesystem::remove_all(cache_dir);
  state.counters["semantic_solver_checks"] = static_cast<double>(checks);
  state.counters["queries_issued"] = static_cast<double>(issued);
  state.counters["queries_pruned"] = static_cast<double>(pruned);
  state.counters["cache_hits"] = static_cast<double>(hits);
  const char* mode_name[] = {"exhaustive", "planned", "warm-cache"};
  state.SetLabel(mode_name[mode]);
}
BENCHMARK(BM_PipelineEightVmPlanner)->Arg(0)->Arg(1)->Arg(2);

// PR5 tracing-overhead gate (tools/bench_pr5.sh): the planned eight-VM
// workload with span capture killed. Compared against
// BM_PipelineEightVmPlanner/1 (identical work, spans on) to bound the
// observability layer's cost. Counter events still record either way — they
// are the accounting substrate behind the verdicts, not a profiling
// preference (src/obs/obs.hpp).
void BM_PipelineEightVmNoTrace(benchmark::State& state) {
  Fixture fx;
  std::vector<core::VmSpec> vms;
  for (int i = 0; i < 8; ++i) {
    vms.push_back({"vm" + std::to_string(i + 1),
                   i % 2 == 0 ? core::fig1b_features()
                              : core::fig1c_features()});
  }
  core::PipelineOptions opts;
  opts.check_allocation = false;
  obs::set_enabled(false);
  bool ok = false;
  for (auto _ : state) {
    core::Pipeline pipeline(fx.model, core::exclusive_cpus(fx.model), *fx.pl,
                            fx.schemas, opts);
    core::PipelineResult result = pipeline.run(vms);
    ok = result.ok;
    benchmark::DoNotOptimize(result);
  }
  obs::set_enabled(true);
  state.counters["ok"] = ok ? 1 : 0;
  state.SetLabel("planned-notrace");
}
BENCHMARK(BM_PipelineEightVmNoTrace);

// PR6 graph-overhead gate (tools/bench_pr6.sh): the planned eight-VM
// workload with the device-graph stage disabled. Compared against
// BM_PipelineEightVmPlanner/1 (identical work plus graph build, per-unit
// graph rules, and the cross-unit exclusive-provider analysis) to bound
// the dataflow layer's cost — it must stay on by default.
void BM_PipelineEightVmNoGraph(benchmark::State& state) {
  Fixture fx;
  std::vector<core::VmSpec> vms;
  for (int i = 0; i < 8; ++i) {
    vms.push_back({"vm" + std::to_string(i + 1),
                   i % 2 == 0 ? core::fig1b_features()
                              : core::fig1c_features()});
  }
  core::PipelineOptions opts;
  opts.check_allocation = false;
  opts.check_graph = false;
  bool ok = false;
  for (auto _ : state) {
    core::Pipeline pipeline(fx.model, core::exclusive_cpus(fx.model), *fx.pl,
                            fx.schemas, opts);
    core::PipelineResult result = pipeline.run(vms);
    ok = result.ok;
    benchmark::DoNotOptimize(result);
  }
  state.counters["ok"] = ok ? 1 : 0;
  state.SetLabel("planned-nograph");
}
BENCHMARK(BM_PipelineEightVmNoGraph);

// Failure path: the omitted-d4 configuration (checkers find the collisions).
void BM_PipelineFaultDetection(benchmark::State& state) {
  feature::FeatureModel model = feature::running_example_model();
  schema::SchemaSet schemas = schema::builtin_schemas();
  support::DiagnosticEngine diags;
  auto pl = core::running_example_product_line_without_d4(diags);
  std::vector<core::VmSpec> vms{{"vm1", core::fig1b_features()},
                                {"vm2", core::fig1c_features()}};
  core::PipelineOptions opts;
  opts.backend = backend_of(state.range(0));
  size_t findings = 0;
  for (auto _ : state) {
    core::Pipeline pipeline(model, core::exclusive_cpus(model), *pl, schemas,
                            opts);
    core::PipelineResult result = pipeline.run(vms);
    findings = result.findings.size();
  }
  state.counters["findings"] = static_cast<double>(findings);
  state.SetLabel(std::string(smt::to_string(backend_of(state.range(0)))));
}
BENCHMARK(BM_PipelineFaultDetection)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();

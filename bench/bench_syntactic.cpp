// E6 — the §IV-B syntactic checker: dt-schema constraints discharged as SMT
// proof obligations. Fixed point: the running example passes all checks.
// Sweep: checking cost vs tree size, per backend.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "checkers/syntactic.hpp"
#include "core/running_example.hpp"
#include "dts/parser.hpp"
#include "schema/builtin_schemas.hpp"
#include "schema/yaml_lite.hpp"

using namespace llhsc;

namespace {

smt::Backend backend_of(int64_t i) {
  return i == 0 ? smt::Backend::kBuiltin : smt::Backend::kZ3;
}

void BM_RunningExampleSyntactic(benchmark::State& state) {
  support::DiagnosticEngine diags;
  dts::SourceManager sm = core::running_example_sources();
  auto tree = dts::parse_dts(core::running_example_core_dts(), "sbc.dts", sm,
                             diags);
  schema::SchemaSet schemas = schema::builtin_schemas();
  uint64_t solver_checks = 0;
  for (auto _ : state) {
    checkers::SyntacticChecker checker(schemas, backend_of(state.range(0)));
    benchmark::DoNotOptimize(checker.check(*tree));
    solver_checks = checker.solver_checks();
  }
  state.counters["solver_checks"] = static_cast<double>(solver_checks);
  state.SetLabel(std::string(smt::to_string(backend_of(state.range(0)))));
}
BENCHMARK(BM_RunningExampleSyntactic)->Arg(0)->Arg(1);

void BM_SyntacticScaling(benchmark::State& state) {
  auto tree = benchgen::synthetic_tree(4, static_cast<int>(state.range(0)));
  schema::SchemaSet schemas = schema::builtin_schemas();
  for (auto _ : state) {
    checkers::SyntacticChecker checker(schemas, backend_of(state.range(1)));
    benchmark::DoNotOptimize(checker.check(*tree));
  }
  state.counters["nodes"] = static_cast<double>(tree->node_count());
  state.SetLabel(std::string(smt::to_string(backend_of(state.range(1)))));
}
BENCHMARK(BM_SyntacticScaling)
    ->Args({8, 0})
    ->Args({32, 0})
    ->Args({128, 0})
    ->Args({8, 1})
    ->Args({32, 1})
    ->Args({128, 1});

// The YAML loading path (schema files -> SchemaSet).
void BM_SchemaYamlLoad(benchmark::State& state) {
  const char* yaml = schema::builtin_schemas_yaml();
  for (auto _ : state) {
    support::DiagnosticEngine diags;
    schema::SchemaSet set;
    benchmark::DoNotOptimize(schema::load_schema_stream(yaml, set, diags));
  }
}
BENCHMARK(BM_SchemaYamlLoad);

}  // namespace

BENCHMARK_MAIN();

// dtb_tool: a miniature dtc — compiles DTS to DTB and decompiles DTB back,
// exercising the FDT substrate as a standalone utility.
//
//   $ ./dtb_tool compile  in.dts  out.dtb
//   $ ./dtb_tool dump     in.dtb
//   $ ./dtb_tool roundtrip in.dts        # compile + read back + print
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "dts/parser.hpp"
#include "dts/printer.hpp"
#include "fdt/fdt.hpp"
#include "support/strings.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int usage() {
  std::cerr << "usage: dtb_tool compile <in.dts> <out.dtb>\n"
               "       dtb_tool dump <in.dtb>\n"
               "       dtb_tool roundtrip <in.dts>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace llhsc;
  if (argc < 3) return usage();
  std::string mode = argv[1];
  support::DiagnosticEngine diags;

  if (mode == "compile" && argc == 4) {
    std::string source = read_file(argv[2]);
    dts::SourceManager sm;
    // Resolve includes relative to the input file's directory.
    std::string dir = argv[2];
    size_t slash = dir.find_last_of('/');
    sm.set_base_directory(slash == std::string::npos ? "."
                                                     : dir.substr(0, slash));
    auto tree = dts::parse_dts(source, argv[2], sm, diags);
    if (tree == nullptr || diags.has_errors()) {
      std::cerr << diags.render();
      return 1;
    }
    auto blob = fdt::emit(*tree, diags);
    if (!blob) {
      std::cerr << diags.render();
      return 1;
    }
    std::ofstream out(argv[3], std::ios::binary);
    out.write(reinterpret_cast<const char*>(blob->data()),
              static_cast<std::streamsize>(blob->size()));
    std::cout << "wrote " << blob->size() << " bytes to " << argv[3] << "\n";
    return 0;
  }

  if (mode == "dump" && argc == 3) {
    std::string raw = read_file(argv[2]);
    std::vector<uint8_t> blob(raw.begin(), raw.end());
    auto header = fdt::read_header(blob);
    if (!header) {
      std::cerr << "not a DTB\n";
      return 1;
    }
    std::cout << "magic        " << support::hex(header->magic) << "\n"
              << "totalsize    " << header->totalsize << "\n"
              << "version      " << header->version << "\n"
              << "struct       @" << header->off_dt_struct << " +"
              << header->size_dt_struct << "\n"
              << "strings      @" << header->off_dt_strings << " +"
              << header->size_dt_strings << "\n";
    if (!fdt::verify(blob, diags)) {
      std::cerr << diags.render();
      return 1;
    }
    auto tree = fdt::read(blob, diags);
    if (tree == nullptr) {
      std::cerr << diags.render();
      return 1;
    }
    std::cout << "\n" << dts::print_dts(*tree);
    return 0;
  }

  if (mode == "roundtrip" && argc == 3) {
    std::string source = read_file(argv[2]);
    auto tree = dts::parse_dts(source, argv[2], diags);
    if (tree == nullptr || diags.has_errors()) {
      std::cerr << diags.render();
      return 1;
    }
    auto blob = fdt::emit(*tree, diags);
    if (!blob) {
      std::cerr << diags.render();
      return 1;
    }
    auto back = fdt::read(*blob, diags);
    if (back == nullptr) {
      std::cerr << diags.render();
      return 1;
    }
    auto blob2 = fdt::emit(*back, diags);
    std::cout << "DTB size " << blob->size() << " bytes, fixed point: "
              << (blob2 && *blob2 == *blob ? "yes" : "NO") << "\n\n"
              << dts::print_dts(*back);
    return 0;
  }
  return usage();
}

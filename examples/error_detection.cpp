// Fault-injection walkthrough: the two errors the paper uses to motivate
// llhsc, each shown at the three tool levels the paper compares —
//
//   dtc (pure syntax)      : accepts both faulty trees
//   dt-schema-style checks : accepts both (structural rules hold)
//   llhsc semantic checker : rejects both, with witness + delta blame
//
// Scenario A (§I-A): a UART base address clashing with a memory bank.
// Scenario B (§IV-C): delta d4 omitted — d3 truncates addressing to 32 bit,
// the memory reg is re-interpreted as four banks colliding at 0x0.
#include <iomanip>
#include <iostream>

#include "core/pipeline.hpp"
#include "core/running_example.hpp"
#include "feature/analysis.hpp"
#include "schema/builtin_schemas.hpp"

namespace {

struct Verdicts {
  bool dtc_ok = false;        // parses (syntax only)
  bool dtschema_ok = false;   // syntactic/structural checks pass
  bool llhsc_ok = false;      // semantic checks pass
};

void print_row(const std::string& name, const Verdicts& v) {
  auto cell = [](bool ok) { return ok ? "accept" : "REJECT"; };
  std::cout << "  " << std::left << std::setw(28) << name << std::setw(12)
            << cell(v.dtc_ok) << std::setw(14) << cell(v.dtschema_ok)
            << cell(v.llhsc_ok) << "\n";
}

Verdicts evaluate(const llhsc::dts::Tree& tree) {
  using namespace llhsc;
  Verdicts v;
  v.dtc_ok = true;  // the tree parsed, which is all dtc checks
  schema::SchemaSet schemas = schema::builtin_schemas();
  checkers::SyntacticChecker syn(schemas);
  v.dtschema_ok = checkers::error_count(syn.check(tree)) == 0;
  checkers::SemanticChecker sem;
  v.llhsc_ok = checkers::error_count(sem.check(tree)) == 0;
  return v;
}

}  // namespace

int main() {
  using namespace llhsc;

  std::cout << "tool comparison on the paper's two fault scenarios\n\n";
  std::cout << "  " << std::left << std::setw(28) << "scenario" << std::setw(12)
            << "dtc" << std::setw(14) << "dt-schema" << "llhsc\n";

  // Baseline: the healthy running example.
  {
    support::DiagnosticEngine diags;
    dts::SourceManager sm = core::running_example_sources();
    auto tree = dts::parse_dts(core::running_example_core_dts(),
                               "custom-sbc.dts", sm, diags);
    print_row("healthy CustomSBC", evaluate(*tree));
  }

  // Scenario A — §I-A address clash.
  checkers::Findings clash_findings;
  {
    support::DiagnosticEngine diags;
    dts::SourceManager sm = core::running_example_sources();
    auto tree = dts::parse_dts(core::running_example_core_dts_with_uart_clash(),
                               "custom-sbc-clash.dts", sm, diags);
    print_row("A: uart@60000000 clash", evaluate(*tree));
    checkers::SemanticChecker sem;
    clash_findings = sem.check(*tree);
  }

  // Scenario B — §IV-C omitted d4, run through the full product line.
  checkers::Findings truncation_findings;
  {
    support::DiagnosticEngine diags;
    auto pl = core::running_example_product_line_without_d4(diags);
    auto tree = pl->derive(core::fig1b_features(), diags);
    if (tree == nullptr) {
      std::cerr << diags.render();
      return 2;
    }
    print_row("B: omitted delta d4", evaluate(*tree));
    checkers::SemanticChecker sem;
    truncation_findings = sem.check(*tree);
  }

  std::cout << "\n--- scenario A findings ---\n";
  for (const checkers::Finding& f : clash_findings) {
    if (f.kind == checkers::FindingKind::kAddressOverlap) {
      std::cout << f.render() << "\n";
    }
  }
  std::cout << "\n--- scenario B findings (note the delta blame) ---\n";
  size_t shown = 0;
  for (const checkers::Finding& f : truncation_findings) {
    if (f.kind == checkers::FindingKind::kAddressOverlap && shown++ < 4) {
      std::cout << f.render() << "\n";
    }
  }
  std::cout << "\nthe paper's claim holds: both faults pass dtc and the\n"
               "dt-schema-style structural rules, and only the SMT-backed\n"
               "semantic checker rejects them.\n";
  return 0;
}

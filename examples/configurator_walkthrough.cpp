// A scripted walk through the paper's Fig. 1 configuration flow: the user
// picks features step by step while the solver propagates decisions —
// forced features show pre-ticked, forbidden ones grayed out, exactly the
// "CPU features are grayed-out and cannot be selected by the user"
// behaviour of §IV-A.
#include <iomanip>
#include <iostream>

#include "feature/configurator.hpp"

namespace {

using namespace llhsc;

void show(const feature::Configurator& cfg) {
  const feature::FeatureModel& m = cfg.model();
  for (uint32_t i = 0; i < m.size(); ++i) {
    feature::FeatureId f{i};
    const feature::Feature& feat = m.feature(f);
    const char* mark = "[ ]";
    switch (cfg.state(f)) {
      case feature::DecisionState::kSelected: mark = "[x]"; break;
      case feature::DecisionState::kForced: mark = "[#]"; break;
      case feature::DecisionState::kForbidden: mark = " - "; break;
      case feature::DecisionState::kDeselected: mark = "[.]"; break;
      case feature::DecisionState::kOpen: break;
    }
    int depth = 0;
    for (feature::FeatureId p = feat.parent; p.valid();
         p = m.feature(p).parent) {
      ++depth;
    }
    std::cout << "  " << mark << ' ' << std::string(2 * depth, ' ')
              << feat.name << "\n";
  }
}

}  // namespace

int main() {
  feature::FeatureModel model = feature::running_example_model();
  feature::Configurator cfg(model, smt::Backend::kBuiltin);
  auto id = [&](const char* name) { return *model.find(name); };

  std::cout << "legend: [x] selected  [#] forced  [.] deselected  "
               "- forbidden  [ ] open\n";
  std::cout << "\n== initial state (mandatory features pre-forced) ==\n";
  show(cfg);
  std::cout << "remaining products: " << cfg.remaining_products() << "\n";

  std::cout << "\n== user selects veth0 ==\n";
  cfg.select(id("veth0"));
  show(cfg);
  std::cout << "remaining products: " << cfg.remaining_products()
            << "  (cpu@0 forced, cpu@1 and veth1 grayed out)\n";

  std::cout << "\n== user tries to select cpu@1 (rejected) ==\n";
  bool ok = cfg.select(id("cpu@1"));
  std::cout << "select(cpu@1) -> " << (ok ? "accepted" : "REJECTED") << "\n";

  std::cout << "\n== user selects uart@20000000, deselects uart@30000000 ==\n";
  cfg.select(id("uart@20000000"));
  cfg.deselect(id("uart@30000000"));
  show(cfg);
  std::cout << "complete: " << (cfg.complete() ? "yes" : "no")
            << ", remaining products: " << cfg.remaining_products() << "\n";
  return 0;
}

// Quickstart: parse a DTS, run the syntactic (dt-schema-style) and semantic
// (SMT) checkers, and print the findings. This is the minimal llhsc loop —
// no product line, no hypervisor.
//
//   $ ./quickstart            # checks a built-in demo DTS
//   $ ./quickstart board.dts  # checks your file
#include <fstream>
#include <iostream>
#include <sstream>

#include "checkers/semantic.hpp"
#include "checkers/syntactic.hpp"
#include "dts/parser.hpp"
#include "dts/printer.hpp"
#include "schema/builtin_schemas.hpp"

namespace {

constexpr const char* kDemoDts = R"(/dts-v1/;

/ {
    #address-cells = <2>;
    #size-cells = <2>;

    memory@40000000 {
        device_type = "memory";
        reg = <0x0 0x40000000 0x0 0x20000000
               0x0 0x60000000 0x0 0x20000000>;
    };

    /* Mistake: this UART's base address sits inside the second memory
       bank [0x60000000, 0x80000000). Syntactically flawless. */
    uart@60000000 {
        compatible = "ns16550a";
        reg = <0x0 0x60000000 0x0 0x1000>;
    };
};
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace llhsc;

  std::string source = kDemoDts;
  std::string name = "<demo>";
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
    name = argv[1];
  }

  support::DiagnosticEngine diags;
  auto tree = dts::parse_dts(source, name, diags);
  if (tree == nullptr || diags.has_errors()) {
    std::cerr << diags.render();
    return 2;
  }
  std::cout << "parsed " << name << ": " << tree->node_count() << " nodes\n\n";

  schema::SchemaSet schemas = schema::builtin_schemas();
  checkers::SyntacticChecker syntactic(schemas);
  checkers::Findings syn = syntactic.check(*tree);
  std::cout << "--- syntactic checker (dt-schema constraints as SMT) ---\n";
  std::cout << (syn.empty() ? "clean\n" : checkers::render(syn));

  checkers::SemanticChecker semantic;
  checkers::Findings sem = semantic.check(*tree);
  std::cout << "\n--- semantic checker (bit-vector overlap formula 7) ---\n";
  std::cout << (sem.empty() ? "clean\n" : checkers::render(sem));

  size_t errors = checkers::error_count(syn) + checkers::error_count(sem);
  std::cout << "\n" << errors << " error(s)\n";
  return errors == 0 ? 0 : 1;
}

// Writes the running example artifacts (core DTS, cpus.dtsi,
// delta modules, feature model, a sample overlay) into a directory, so the
// llhsc CLI can be driven end-to-end from files:
//
//   ./gen_data examples/data
//   ./llhsc generate --core examples/data/custom-sbc.dts
//       --deltas examples/data/custom-sbc.deltas
//       --features CustomSBC,memory,cpus,cpu@0,uarts,uart@20000000
//   ./llhsc products --model examples/data/custom-sbc.fm
#include <fstream>
#include <iostream>

#include "core/running_example.hpp"
#include "feature/analysis.hpp"
#include "feature/text_format.hpp"

namespace {

bool write(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out.good()) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  std::cout << "wrote " << path << "\n";
  return true;
}

constexpr const char* kSampleOverlay = R"(/dts-v1/;
/plugin/;

/* Enable the first UART and raise its speed — the overlay twin of a
   delta module's `modifies`. Apply with:
   llhsc overlay --base custom-sbc.dts --overlay enable-uart0.dtso */
&uart0 {
    status = "okay";
    current-speed = <115200>;
};
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace llhsc;
  std::string dir = argc > 1 ? argv[1] : ".";
  bool ok = true;
  ok = write(dir + "/custom-sbc.dts", core::running_example_core_dts()) && ok;
  ok = write(dir + "/cpus.dtsi", core::running_example_cpus_dtsi()) && ok;
  ok = write(dir + "/custom-sbc.deltas", core::running_example_deltas()) && ok;
  ok = write(dir + "/custom-sbc.fm",
             feature::print_model(feature::running_example_model())) &&
       ok;
  ok = write(dir + "/enable-uart0.dtso", kSampleOverlay) && ok;
  return ok ? 0 : 1;
}

// The paper's running example, end to end (Fig. 2): the CustomSBC feature
// model, the delta-oriented product line, the Fig. 1b/1c VM configurations,
// all three checkers, and the generated artifacts — two VM DTSs, the
// platform DTS, the Bao platform config (Listing 3) and VM config
// (Listing 6), plus DTB blobs. This reproduces everything the paper's cloud
// service demo serves.
#include <iostream>

#include "core/pipeline.hpp"
#include "core/running_example.hpp"
#include "feature/analysis.hpp"
#include "schema/builtin_schemas.hpp"

int main() {
  using namespace llhsc;

  // 1. The feature model of Fig. 1a.
  feature::FeatureModel model = feature::running_example_model();
  smt::Solver analysis_solver;
  std::cout << "=== Feature model (Fig. 1a) ===\n";
  std::cout << "features: " << model.size() << "\n";
  std::cout << "valid products: " << feature::count_products(model, analysis_solver)
            << " (paper: 12)\n";
  std::cout << "max VMs under CPU exclusivity: "
            << feature::max_feasible_vms(model, smt::Backend::kBuiltin,
                                         core::exclusive_cpus(model))
            << " (paper: m = 2)\n\n";

  // 2. The product line: Listing 1 core + Listing 4 deltas.
  support::DiagnosticEngine diags;
  auto product_line = core::running_example_product_line(diags);
  if (product_line == nullptr) {
    std::cerr << diags.render();
    return 2;
  }
  std::cout << "=== Product line ===\n";
  std::cout << "core DTS nodes: " << product_line->core().node_count()
            << ", delta modules: " << product_line->deltas().size() << "\n";
  auto order = product_line->application_order(core::fig1b_features(), diags);
  if (order) {
    std::cout << "delta order for the veth0 VM:";
    for (const delta::DeltaModule* d : *order) std::cout << ' ' << d->name;
    std::cout << "\n\n";
  }

  // 3. Run the whole pipeline for the two paper VMs.
  schema::SchemaSet schemas = schema::builtin_schemas();
  core::Pipeline pipeline(model, core::exclusive_cpus(model), *product_line,
                          schemas);
  core::PipelineResult result = pipeline.run(
      {{"vm1", core::fig1b_features()}, {"vm2", core::fig1c_features()}});

  std::cout << "=== Pipeline (Fig. 2) ===\n";
  std::cout << "status: " << (result.ok ? "OK" : "FAILED") << "\n";
  if (!result.findings.empty()) std::cout << checkers::render(result.findings);
  if (result.diagnostics.has_errors()) std::cout << result.diagnostics.render();
  if (!result.ok) return 1;

  for (const core::GeneratedVm& vm : result.vms) {
    std::cout << "\n=== " << vm.name << ".dts ("
              << vm.tree->node_count() << " nodes, DTB " << vm.dtb.size()
              << " bytes) ===\n"
              << vm.dts_text;
  }
  std::cout << "\n=== platform.dts ===\n" << result.platform_dts_text;
  std::cout << "\n=== platform.c (paper Listing 3) ===\n"
            << result.platform_config_c;
  std::cout << "\n=== config.c (paper Listing 6) ===\n" << result.vm_config_c;
  return 0;
}

// Static-partitioning exploration (paper §IV-A): interactive-style analysis
// of the multi-VM feature model — feasibility per VM count, enumeration of
// valid allocations, and what the resource-allocation checker says about
// deliberately broken configurations.
#include <iostream>

#include "checkers/resource_allocation.hpp"
#include "core/running_example.hpp"
#include "feature/multivm.hpp"

int main() {
  using namespace llhsc;

  feature::FeatureModel model = feature::running_example_model();
  std::vector<feature::FeatureId> cpus = core::exclusive_cpus(model);

  std::cout << "=== allocation feasibility (exclusive CPUs: ";
  for (size_t i = 0; i < cpus.size(); ++i) {
    std::cout << (i ? ", " : "") << model.feature(cpus[i]).name;
  }
  std::cout << ") ===\n";
  for (int m = 1; m <= 4; ++m) {
    bool ok = feature::allocation_feasible(model, smt::Backend::kBuiltin, m,
                                           cpus);
    std::cout << "  " << m << " VM" << (m > 1 ? "s" : " ") << ": "
              << (ok ? "feasible" : "infeasible") << "\n";
  }
  std::cout << "  => max VMs = "
            << feature::max_feasible_vms(model, smt::Backend::kBuiltin, cpus)
            << " (paper: m = 2)\n\n";

  std::cout << "=== first 8 of the valid 2-VM allocations ===\n";
  smt::Solver solver;
  auto names_of = [&](const feature::Selection& sel) {
    std::string out;
    for (uint32_t i = 0; i < model.size(); ++i) {
      const feature::Feature& f = model.feature(feature::FeatureId{i});
      if (sel[i] && f.children.empty()) {  // leaves only, for brevity
        if (!out.empty()) out += ", ";
        out += f.name;
      }
    }
    return out;
  };
  uint64_t total = feature::enumerate_allocations(
      model, solver, 2, cpus,
      [&](const feature::Allocation& alloc) {
        static int shown = 0;
        if (shown++ < 8) {
          std::cout << "  vm1 {" << names_of(alloc.vm_selections[0])
                    << "} | vm2 {" << names_of(alloc.vm_selections[1])
                    << "}\n";
        }
        return true;
      });
  std::cout << "  ... " << total << " allocations in total\n\n";

  std::cout << "=== the checker on broken configurations ===\n";
  checkers::ResourceAllocationChecker checker(model, cpus);

  std::cout << "-- same CPU for both VMs --\n";
  checkers::Findings f1 =
      checker.check({core::fig1b_features(), core::fig1b_features()});
  std::cout << checkers::render(f1);

  std::cout << "-- veth0 without its required cpu@0 --\n";
  checkers::Findings f2 = checker.check({{"CustomSBC", "memory", "cpus",
                                          "cpu@1", "uarts", "uart@20000000",
                                          "vEthernet", "veth0"}});
  std::cout << checkers::render(f2);

  std::cout << "-- three VMs over two CPUs --\n";
  checkers::Findings f3 = checker.check(
      {core::fig1b_features(), core::fig1c_features(),
       {"CustomSBC", "memory", "cpus", "cpu@0", "uarts", "uart@30000000"}});
  std::cout << checkers::render(f3);
  return 0;
}

#include <platform.h>

struct platform_desc platform = {
  .cpu_num = 2,
  .region_num = 2,
  .regions = (struct mem_region[]) {
    { .base = 0x40000000, .size = 0x20000000 },
    { .base = 0x60000000, .size = 0x20000000 },
  },

  .console = { .base = 0x20000000 },

  .arch = {
    .clusters = {
      .num = 1, .core_num = (uint8_t[]) {2}
    },
  }
};

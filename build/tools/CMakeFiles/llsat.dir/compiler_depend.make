# Empty compiler generated dependencies file for llsat.
# This may be replaced when dependencies are built.

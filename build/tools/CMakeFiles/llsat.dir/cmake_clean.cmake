file(REMOVE_RECURSE
  "CMakeFiles/llsat.dir/llsat.cpp.o"
  "CMakeFiles/llsat.dir/llsat.cpp.o.d"
  "llsat"
  "llsat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llsat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

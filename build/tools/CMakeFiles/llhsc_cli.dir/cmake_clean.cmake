file(REMOVE_RECURSE
  "CMakeFiles/llhsc_cli.dir/llhsc_main.cpp.o"
  "CMakeFiles/llhsc_cli.dir/llhsc_main.cpp.o.d"
  "llhsc"
  "llhsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llhsc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

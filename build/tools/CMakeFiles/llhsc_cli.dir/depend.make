# Empty dependencies file for llhsc_cli.
# This may be replaced when dependencies are built.

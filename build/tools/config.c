#include <config.h>

VM_IMAGE(vm1, vm1image.bin);
VM_IMAGE(vm2, vm2image.bin);

struct config config = {
  CONFIG_HEADER
  .vmlist_size = 2,
  .vmlist = {
    { .image = {
        .base_addr = 0x40000000,
        .load_addr = VM_IMAGE_OFFSET(vm1),
        .size = VM_IMAGE_SIZE(vm1)
      },
      .entry = 0x40000000,
      .cpu_affinity = 0b1,
      .platform = { .cpu_num = 1, .dev_num = 2,
        .region_num = 2,
        .regions = (struct mem_region[]) {
          { .base = 0x40000000, .size = 0x20000000 },
          { .base = 0x60000000, .size = 0x20000000 },
        },
        .devs = (struct dev_region[]) {
          /* from /uart@20000000 */
          { .pa = 0x20000000, .va = 0x20000000, .size = 0x1000 },
          /* from /uart@30000000 */
          { .pa = 0x30000000, .va = 0x30000000, .size = 0x1000 },
        },
      },
      .ipc_num = 1,
      .ipcs = (struct ipc[]) {
        { /* /vEthernet/veth0@80000000 */
          .base = 0x80000000, .size = 0x10000000,
          .shmem_id = 0,
        },
      },
    },
    { .image = {
        .base_addr = 0x40000000,
        .load_addr = VM_IMAGE_OFFSET(vm2),
        .size = VM_IMAGE_SIZE(vm2)
      },
      .entry = 0x40000000,
      .cpu_affinity = 0b10,
      .platform = { .cpu_num = 1, .dev_num = 2,
        .region_num = 2,
        .regions = (struct mem_region[]) {
          { .base = 0x40000000, .size = 0x20000000 },
          { .base = 0x60000000, .size = 0x20000000 },
        },
        .devs = (struct dev_region[]) {
          /* from /uart@20000000 */
          { .pa = 0x20000000, .va = 0x20000000, .size = 0x1000 },
          /* from /uart@30000000 */
          { .pa = 0x30000000, .va = 0x30000000, .size = 0x1000 },
        },
      },
      .ipc_num = 1,
      .ipcs = (struct ipc[]) {
        { /* /vEthernet/veth1@70000000 */
          .base = 0x70000000, .size = 0x10000000,
          .shmem_id = 1,
        },
      },
    },
  },
  .shmemlist_size = 2,
  .shmemlist = (struct shmem[]) {
    [0] = { .size = 0x10000000 },
    [1] = { .size = 0x10000000 },
  },
};

# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_demo "/root/repo/build/tools/llhsc" "demo" "--out" "/root/repo/build/tools")
set_tests_properties(cli_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_check_generated "/root/repo/build/tools/llhsc" "check" "/root/repo/build/tools/vm1.dts")
set_tests_properties(cli_check_generated PROPERTIES  DEPENDS "cli_demo" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_check_json "/root/repo/build/tools/llhsc" "check" "/root/repo/build/tools/vm1.dts" "--format" "json")
set_tests_properties(cli_check_json PROPERTIES  DEPENDS "cli_demo" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_products "/root/repo/build/tools/llhsc" "products" "--count-only")
set_tests_properties(cli_products PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_analyze "/root/repo/build/tools/llhsc" "analyze")
set_tests_properties(cli_analyze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_allocate "/root/repo/build/tools/llhsc" "allocate" "--exclusive" "cpu@0,cpu@1" "--vms" "3")
set_tests_properties(cli_allocate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_configure "/root/repo/build/tools/llhsc" "configure" "--decide" "veth0=on,uart@20000000=on,uart@30000000=off")
set_tests_properties(cli_configure PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_generate "/root/repo/build/tools/llhsc" "generate" "--core" "/root/repo/examples/data/custom-sbc.dts" "--deltas" "/root/repo/examples/data/custom-sbc.deltas" "--features" "CustomSBC,memory,cpus,cpu@0,uarts,uart@20000000" "--out" "/root/repo/build/tools" "--name" "cli_solo")
set_tests_properties(cli_generate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_overlay "/root/repo/build/tools/llhsc" "overlay" "--base" "/root/repo/examples/data/custom-sbc.dts" "--overlay" "/root/repo/examples/data/enable-uart0.dtso")
set_tests_properties(cli_overlay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;30;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_model_products "/root/repo/build/tools/llhsc" "products" "--model" "/root/repo/examples/data/custom-sbc.fm" "--count-only")
set_tests_properties(cli_model_products PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;34;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(llsat_smoke "/root/repo/build/tools/llsat" "/root/repo/build/tools/smoke.cnf")
set_tests_properties(llsat_smoke PROPERTIES  PASS_REGULAR_EXPRESSION "s SATISFIABLE" REQUIRED_FILES "/root/repo/build/tools/smoke.cnf" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;36;add_test;/root/repo/tools/CMakeLists.txt;0;")

file(REMOVE_RECURSE
  "CMakeFiles/dts_overlay_test.dir/dts/overlay_test.cpp.o"
  "CMakeFiles/dts_overlay_test.dir/dts/overlay_test.cpp.o.d"
  "dts_overlay_test"
  "dts_overlay_test.pdb"
  "dts_overlay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dts_overlay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for dts_overlay_test.
# This may be replaced when dependencies are built.

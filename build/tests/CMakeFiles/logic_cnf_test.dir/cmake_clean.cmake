file(REMOVE_RECURSE
  "CMakeFiles/logic_cnf_test.dir/logic/cnf_test.cpp.o"
  "CMakeFiles/logic_cnf_test.dir/logic/cnf_test.cpp.o.d"
  "logic_cnf_test"
  "logic_cnf_test.pdb"
  "logic_cnf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logic_cnf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for logic_cnf_test.
# This may be replaced when dependencies are built.

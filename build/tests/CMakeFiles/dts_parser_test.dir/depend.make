# Empty dependencies file for dts_parser_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dts_parser_test.dir/dts/parser_test.cpp.o"
  "CMakeFiles/dts_parser_test.dir/dts/parser_test.cpp.o.d"
  "dts_parser_test"
  "dts_parser_test.pdb"
  "dts_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dts_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fdt_test.
# This may be replaced when dependencies are built.

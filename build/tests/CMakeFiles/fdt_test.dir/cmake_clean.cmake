file(REMOVE_RECURSE
  "CMakeFiles/fdt_test.dir/fdt/fdt_test.cpp.o"
  "CMakeFiles/fdt_test.dir/fdt/fdt_test.cpp.o.d"
  "fdt_test"
  "fdt_test.pdb"
  "fdt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

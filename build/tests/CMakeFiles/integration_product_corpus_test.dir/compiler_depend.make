# Empty compiler generated dependencies file for integration_product_corpus_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/integration_product_corpus_test.dir/integration/product_corpus_test.cpp.o"
  "CMakeFiles/integration_product_corpus_test.dir/integration/product_corpus_test.cpp.o.d"
  "integration_product_corpus_test"
  "integration_product_corpus_test.pdb"
  "integration_product_corpus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_product_corpus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/dts_lexer_test.dir/dts/lexer_test.cpp.o"
  "CMakeFiles/dts_lexer_test.dir/dts/lexer_test.cpp.o.d"
  "dts_lexer_test"
  "dts_lexer_test.pdb"
  "dts_lexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dts_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for dts_lexer_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for checkers_syntactic_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/checkers_syntactic_test.dir/checkers/syntactic_test.cpp.o"
  "CMakeFiles/checkers_syntactic_test.dir/checkers/syntactic_test.cpp.o.d"
  "checkers_syntactic_test"
  "checkers_syntactic_test.pdb"
  "checkers_syntactic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkers_syntactic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

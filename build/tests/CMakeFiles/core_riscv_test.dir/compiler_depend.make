# Empty compiler generated dependencies file for core_riscv_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/core_riscv_test.dir/core/riscv_test.cpp.o"
  "CMakeFiles/core_riscv_test.dir/core/riscv_test.cpp.o.d"
  "core_riscv_test"
  "core_riscv_test.pdb"
  "core_riscv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_riscv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

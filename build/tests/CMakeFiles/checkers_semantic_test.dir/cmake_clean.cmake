file(REMOVE_RECURSE
  "CMakeFiles/checkers_semantic_test.dir/checkers/semantic_test.cpp.o"
  "CMakeFiles/checkers_semantic_test.dir/checkers/semantic_test.cpp.o.d"
  "checkers_semantic_test"
  "checkers_semantic_test.pdb"
  "checkers_semantic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkers_semantic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

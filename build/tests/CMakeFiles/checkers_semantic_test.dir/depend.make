# Empty dependencies file for checkers_semantic_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for logic_bitvector_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/logic_bitvector_test.dir/logic/bitvector_test.cpp.o"
  "CMakeFiles/logic_bitvector_test.dir/logic/bitvector_test.cpp.o.d"
  "logic_bitvector_test"
  "logic_bitvector_test.pdb"
  "logic_bitvector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logic_bitvector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

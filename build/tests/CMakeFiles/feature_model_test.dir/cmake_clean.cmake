file(REMOVE_RECURSE
  "CMakeFiles/feature_model_test.dir/feature/model_test.cpp.o"
  "CMakeFiles/feature_model_test.dir/feature/model_test.cpp.o.d"
  "feature_model_test"
  "feature_model_test.pdb"
  "feature_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

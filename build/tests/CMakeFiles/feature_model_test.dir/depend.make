# Empty dependencies file for feature_model_test.
# This may be replaced when dependencies are built.

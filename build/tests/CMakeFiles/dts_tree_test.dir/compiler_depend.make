# Empty compiler generated dependencies file for dts_tree_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dts_tree_test.dir/dts/tree_test.cpp.o"
  "CMakeFiles/dts_tree_test.dir/dts/tree_test.cpp.o.d"
  "dts_tree_test"
  "dts_tree_test.pdb"
  "dts_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dts_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/feature_text_format_test.dir/feature/text_format_test.cpp.o"
  "CMakeFiles/feature_text_format_test.dir/feature/text_format_test.cpp.o.d"
  "feature_text_format_test"
  "feature_text_format_test.pdb"
  "feature_text_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_text_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/schema_yaml_test.dir/schema/yaml_test.cpp.o"
  "CMakeFiles/schema_yaml_test.dir/schema/yaml_test.cpp.o.d"
  "schema_yaml_test"
  "schema_yaml_test.pdb"
  "schema_yaml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_yaml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

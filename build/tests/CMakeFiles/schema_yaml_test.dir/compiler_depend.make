# Empty compiler generated dependencies file for schema_yaml_test.
# This may be replaced when dependencies are built.

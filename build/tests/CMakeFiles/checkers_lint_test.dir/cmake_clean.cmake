file(REMOVE_RECURSE
  "CMakeFiles/checkers_lint_test.dir/checkers/lint_test.cpp.o"
  "CMakeFiles/checkers_lint_test.dir/checkers/lint_test.cpp.o.d"
  "checkers_lint_test"
  "checkers_lint_test.pdb"
  "checkers_lint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkers_lint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

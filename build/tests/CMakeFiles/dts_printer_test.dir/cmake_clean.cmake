file(REMOVE_RECURSE
  "CMakeFiles/dts_printer_test.dir/dts/printer_test.cpp.o"
  "CMakeFiles/dts_printer_test.dir/dts/printer_test.cpp.o.d"
  "dts_printer_test"
  "dts_printer_test.pdb"
  "dts_printer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dts_printer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for dts_printer_test.
# This may be replaced when dependencies are built.

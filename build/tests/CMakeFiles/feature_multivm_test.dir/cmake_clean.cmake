file(REMOVE_RECURSE
  "CMakeFiles/feature_multivm_test.dir/feature/multivm_test.cpp.o"
  "CMakeFiles/feature_multivm_test.dir/feature/multivm_test.cpp.o.d"
  "feature_multivm_test"
  "feature_multivm_test.pdb"
  "feature_multivm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_multivm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for feature_multivm_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/feature_configurator_test.dir/feature/configurator_test.cpp.o"
  "CMakeFiles/feature_configurator_test.dir/feature/configurator_test.cpp.o.d"
  "feature_configurator_test"
  "feature_configurator_test.pdb"
  "feature_configurator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_configurator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

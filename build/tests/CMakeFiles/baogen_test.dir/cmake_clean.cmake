file(REMOVE_RECURSE
  "CMakeFiles/baogen_test.dir/baogen/baogen_test.cpp.o"
  "CMakeFiles/baogen_test.dir/baogen/baogen_test.cpp.o.d"
  "baogen_test"
  "baogen_test.pdb"
  "baogen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baogen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for baogen_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for checkers_resource_allocation_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/checkers_resource_allocation_test.dir/checkers/resource_allocation_test.cpp.o"
  "CMakeFiles/checkers_resource_allocation_test.dir/checkers/resource_allocation_test.cpp.o.d"
  "checkers_resource_allocation_test"
  "checkers_resource_allocation_test.pdb"
  "checkers_resource_allocation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkers_resource_allocation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/checkers/resource_allocation_test.cpp" "tests/CMakeFiles/checkers_resource_allocation_test.dir/checkers/resource_allocation_test.cpp.o" "gcc" "tests/CMakeFiles/checkers_resource_allocation_test.dir/checkers/resource_allocation_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/llhsc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llhsc_baogen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llhsc_checkers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llhsc_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llhsc_delta.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llhsc_feature.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llhsc_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llhsc_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llhsc_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llhsc_fdt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llhsc_dts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llhsc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

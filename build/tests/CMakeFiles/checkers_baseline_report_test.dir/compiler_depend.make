# Empty compiler generated dependencies file for checkers_baseline_report_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/checkers_baseline_report_test.dir/checkers/baseline_report_test.cpp.o"
  "CMakeFiles/checkers_baseline_report_test.dir/checkers/baseline_report_test.cpp.o.d"
  "checkers_baseline_report_test"
  "checkers_baseline_report_test.pdb"
  "checkers_baseline_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkers_baseline_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

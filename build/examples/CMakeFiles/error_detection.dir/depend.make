# Empty dependencies file for error_detection.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dtb_tool.dir/dtb_tool.cpp.o"
  "CMakeFiles/dtb_tool.dir/dtb_tool.cpp.o.d"
  "dtb_tool"
  "dtb_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtb_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for dtb_tool.
# This may be replaced when dependencies are built.

# Empty dependencies file for custom_sbc.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/custom_sbc.dir/custom_sbc.cpp.o"
  "CMakeFiles/custom_sbc.dir/custom_sbc.cpp.o.d"
  "custom_sbc"
  "custom_sbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_sbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

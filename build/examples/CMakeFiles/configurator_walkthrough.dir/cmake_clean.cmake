file(REMOVE_RECURSE
  "CMakeFiles/configurator_walkthrough.dir/configurator_walkthrough.cpp.o"
  "CMakeFiles/configurator_walkthrough.dir/configurator_walkthrough.cpp.o.d"
  "configurator_walkthrough"
  "configurator_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/configurator_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

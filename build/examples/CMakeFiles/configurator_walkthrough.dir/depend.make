# Empty dependencies file for configurator_walkthrough.
# This may be replaced when dependencies are built.

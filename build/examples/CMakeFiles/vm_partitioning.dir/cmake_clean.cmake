file(REMOVE_RECURSE
  "CMakeFiles/vm_partitioning.dir/vm_partitioning.cpp.o"
  "CMakeFiles/vm_partitioning.dir/vm_partitioning.cpp.o.d"
  "vm_partitioning"
  "vm_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for vm_partitioning.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_sbc "/root/repo/build/examples/custom_sbc")
set_tests_properties(example_custom_sbc PROPERTIES  PASS_REGULAR_EXPRESSION "valid products: 12" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_error_detection "/root/repo/build/examples/error_detection")
set_tests_properties(example_error_detection PROPERTIES  PASS_REGULAR_EXPRESSION "REJECT" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vm_partitioning "/root/repo/build/examples/vm_partitioning")
set_tests_properties(example_vm_partitioning PROPERTIES  PASS_REGULAR_EXPRESSION "max VMs = 2" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_configurator "/root/repo/build/examples/configurator_walkthrough")
set_tests_properties(example_configurator PROPERTIES  PASS_REGULAR_EXPRESSION "remaining products: 1" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")

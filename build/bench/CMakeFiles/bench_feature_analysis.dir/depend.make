# Empty dependencies file for bench_feature_analysis.
# This may be replaced when dependencies are built.

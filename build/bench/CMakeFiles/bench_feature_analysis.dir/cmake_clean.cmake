file(REMOVE_RECURSE
  "CMakeFiles/bench_feature_analysis.dir/bench_feature_analysis.cpp.o"
  "CMakeFiles/bench_feature_analysis.dir/bench_feature_analysis.cpp.o.d"
  "bench_feature_analysis"
  "bench_feature_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_feature_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_resource_allocation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_resource_allocation.dir/bench_resource_allocation.cpp.o"
  "CMakeFiles/bench_resource_allocation.dir/bench_resource_allocation.cpp.o.d"
  "bench_resource_allocation"
  "bench_resource_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_resource_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_semantic_overlap.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_semantic_overlap.dir/bench_semantic_overlap.cpp.o"
  "CMakeFiles/bench_semantic_overlap.dir/bench_semantic_overlap.cpp.o.d"
  "bench_semantic_overlap"
  "bench_semantic_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_semantic_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

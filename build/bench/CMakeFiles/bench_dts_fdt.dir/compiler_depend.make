# Empty compiler generated dependencies file for bench_dts_fdt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_dts_fdt.dir/bench_dts_fdt.cpp.o"
  "CMakeFiles/bench_dts_fdt.dir/bench_dts_fdt.cpp.o.d"
  "bench_dts_fdt"
  "bench_dts_fdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dts_fdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

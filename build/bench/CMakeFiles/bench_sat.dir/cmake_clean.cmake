file(REMOVE_RECURSE
  "CMakeFiles/bench_sat.dir/bench_sat.cpp.o"
  "CMakeFiles/bench_sat.dir/bench_sat.cpp.o.d"
  "bench_sat"
  "bench_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

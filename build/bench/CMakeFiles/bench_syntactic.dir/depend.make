# Empty dependencies file for bench_syntactic.
# This may be replaced when dependencies are built.

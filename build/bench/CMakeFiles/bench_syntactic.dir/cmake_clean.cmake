file(REMOVE_RECURSE
  "CMakeFiles/bench_syntactic.dir/bench_syntactic.cpp.o"
  "CMakeFiles/bench_syntactic.dir/bench_syntactic.cpp.o.d"
  "bench_syntactic"
  "bench_syntactic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_syntactic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

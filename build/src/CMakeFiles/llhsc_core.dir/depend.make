# Empty dependencies file for llhsc_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libllhsc_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/llhsc_core.dir/core/pipeline.cpp.o"
  "CMakeFiles/llhsc_core.dir/core/pipeline.cpp.o.d"
  "CMakeFiles/llhsc_core.dir/core/riscv_example.cpp.o"
  "CMakeFiles/llhsc_core.dir/core/riscv_example.cpp.o.d"
  "CMakeFiles/llhsc_core.dir/core/running_example.cpp.o"
  "CMakeFiles/llhsc_core.dir/core/running_example.cpp.o.d"
  "libllhsc_core.a"
  "libllhsc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llhsc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for llhsc_checkers.
# This may be replaced when dependencies are built.

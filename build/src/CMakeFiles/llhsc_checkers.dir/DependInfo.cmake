
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checkers/finding.cpp" "src/CMakeFiles/llhsc_checkers.dir/checkers/finding.cpp.o" "gcc" "src/CMakeFiles/llhsc_checkers.dir/checkers/finding.cpp.o.d"
  "/root/repo/src/checkers/interval_baseline.cpp" "src/CMakeFiles/llhsc_checkers.dir/checkers/interval_baseline.cpp.o" "gcc" "src/CMakeFiles/llhsc_checkers.dir/checkers/interval_baseline.cpp.o.d"
  "/root/repo/src/checkers/lint.cpp" "src/CMakeFiles/llhsc_checkers.dir/checkers/lint.cpp.o" "gcc" "src/CMakeFiles/llhsc_checkers.dir/checkers/lint.cpp.o.d"
  "/root/repo/src/checkers/report.cpp" "src/CMakeFiles/llhsc_checkers.dir/checkers/report.cpp.o" "gcc" "src/CMakeFiles/llhsc_checkers.dir/checkers/report.cpp.o.d"
  "/root/repo/src/checkers/resource_allocation.cpp" "src/CMakeFiles/llhsc_checkers.dir/checkers/resource_allocation.cpp.o" "gcc" "src/CMakeFiles/llhsc_checkers.dir/checkers/resource_allocation.cpp.o.d"
  "/root/repo/src/checkers/semantic.cpp" "src/CMakeFiles/llhsc_checkers.dir/checkers/semantic.cpp.o" "gcc" "src/CMakeFiles/llhsc_checkers.dir/checkers/semantic.cpp.o.d"
  "/root/repo/src/checkers/syntactic.cpp" "src/CMakeFiles/llhsc_checkers.dir/checkers/syntactic.cpp.o" "gcc" "src/CMakeFiles/llhsc_checkers.dir/checkers/syntactic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/llhsc_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llhsc_feature.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llhsc_delta.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llhsc_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llhsc_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llhsc_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llhsc_dts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llhsc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/llhsc_checkers.dir/checkers/finding.cpp.o"
  "CMakeFiles/llhsc_checkers.dir/checkers/finding.cpp.o.d"
  "CMakeFiles/llhsc_checkers.dir/checkers/interval_baseline.cpp.o"
  "CMakeFiles/llhsc_checkers.dir/checkers/interval_baseline.cpp.o.d"
  "CMakeFiles/llhsc_checkers.dir/checkers/lint.cpp.o"
  "CMakeFiles/llhsc_checkers.dir/checkers/lint.cpp.o.d"
  "CMakeFiles/llhsc_checkers.dir/checkers/report.cpp.o"
  "CMakeFiles/llhsc_checkers.dir/checkers/report.cpp.o.d"
  "CMakeFiles/llhsc_checkers.dir/checkers/resource_allocation.cpp.o"
  "CMakeFiles/llhsc_checkers.dir/checkers/resource_allocation.cpp.o.d"
  "CMakeFiles/llhsc_checkers.dir/checkers/semantic.cpp.o"
  "CMakeFiles/llhsc_checkers.dir/checkers/semantic.cpp.o.d"
  "CMakeFiles/llhsc_checkers.dir/checkers/syntactic.cpp.o"
  "CMakeFiles/llhsc_checkers.dir/checkers/syntactic.cpp.o.d"
  "libllhsc_checkers.a"
  "libllhsc_checkers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llhsc_checkers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

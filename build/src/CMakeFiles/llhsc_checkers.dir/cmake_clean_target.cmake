file(REMOVE_RECURSE
  "libllhsc_checkers.a"
)

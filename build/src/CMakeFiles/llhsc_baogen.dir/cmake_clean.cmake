file(REMOVE_RECURSE
  "CMakeFiles/llhsc_baogen.dir/baogen/baogen.cpp.o"
  "CMakeFiles/llhsc_baogen.dir/baogen/baogen.cpp.o.d"
  "libllhsc_baogen.a"
  "libllhsc_baogen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llhsc_baogen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for llhsc_baogen.
# This may be replaced when dependencies are built.

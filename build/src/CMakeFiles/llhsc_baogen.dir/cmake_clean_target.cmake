file(REMOVE_RECURSE
  "libllhsc_baogen.a"
)

file(REMOVE_RECURSE
  "libllhsc_schema.a"
)

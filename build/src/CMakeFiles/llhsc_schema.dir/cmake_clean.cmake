file(REMOVE_RECURSE
  "CMakeFiles/llhsc_schema.dir/schema/builtin_schemas.cpp.o"
  "CMakeFiles/llhsc_schema.dir/schema/builtin_schemas.cpp.o.d"
  "CMakeFiles/llhsc_schema.dir/schema/schema.cpp.o"
  "CMakeFiles/llhsc_schema.dir/schema/schema.cpp.o.d"
  "CMakeFiles/llhsc_schema.dir/schema/yaml_lite.cpp.o"
  "CMakeFiles/llhsc_schema.dir/schema/yaml_lite.cpp.o.d"
  "libllhsc_schema.a"
  "libllhsc_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llhsc_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

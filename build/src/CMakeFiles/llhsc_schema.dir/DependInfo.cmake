
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schema/builtin_schemas.cpp" "src/CMakeFiles/llhsc_schema.dir/schema/builtin_schemas.cpp.o" "gcc" "src/CMakeFiles/llhsc_schema.dir/schema/builtin_schemas.cpp.o.d"
  "/root/repo/src/schema/schema.cpp" "src/CMakeFiles/llhsc_schema.dir/schema/schema.cpp.o" "gcc" "src/CMakeFiles/llhsc_schema.dir/schema/schema.cpp.o.d"
  "/root/repo/src/schema/yaml_lite.cpp" "src/CMakeFiles/llhsc_schema.dir/schema/yaml_lite.cpp.o" "gcc" "src/CMakeFiles/llhsc_schema.dir/schema/yaml_lite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/llhsc_dts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llhsc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for llhsc_schema.
# This may be replaced when dependencies are built.

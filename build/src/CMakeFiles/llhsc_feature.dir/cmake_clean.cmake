file(REMOVE_RECURSE
  "CMakeFiles/llhsc_feature.dir/feature/analysis.cpp.o"
  "CMakeFiles/llhsc_feature.dir/feature/analysis.cpp.o.d"
  "CMakeFiles/llhsc_feature.dir/feature/configurator.cpp.o"
  "CMakeFiles/llhsc_feature.dir/feature/configurator.cpp.o.d"
  "CMakeFiles/llhsc_feature.dir/feature/model.cpp.o"
  "CMakeFiles/llhsc_feature.dir/feature/model.cpp.o.d"
  "CMakeFiles/llhsc_feature.dir/feature/multivm.cpp.o"
  "CMakeFiles/llhsc_feature.dir/feature/multivm.cpp.o.d"
  "CMakeFiles/llhsc_feature.dir/feature/text_format.cpp.o"
  "CMakeFiles/llhsc_feature.dir/feature/text_format.cpp.o.d"
  "libllhsc_feature.a"
  "libllhsc_feature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llhsc_feature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libllhsc_feature.a"
)

# Empty dependencies file for llhsc_feature.
# This may be replaced when dependencies are built.

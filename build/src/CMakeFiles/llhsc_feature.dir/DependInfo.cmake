
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/feature/analysis.cpp" "src/CMakeFiles/llhsc_feature.dir/feature/analysis.cpp.o" "gcc" "src/CMakeFiles/llhsc_feature.dir/feature/analysis.cpp.o.d"
  "/root/repo/src/feature/configurator.cpp" "src/CMakeFiles/llhsc_feature.dir/feature/configurator.cpp.o" "gcc" "src/CMakeFiles/llhsc_feature.dir/feature/configurator.cpp.o.d"
  "/root/repo/src/feature/model.cpp" "src/CMakeFiles/llhsc_feature.dir/feature/model.cpp.o" "gcc" "src/CMakeFiles/llhsc_feature.dir/feature/model.cpp.o.d"
  "/root/repo/src/feature/multivm.cpp" "src/CMakeFiles/llhsc_feature.dir/feature/multivm.cpp.o" "gcc" "src/CMakeFiles/llhsc_feature.dir/feature/multivm.cpp.o.d"
  "/root/repo/src/feature/text_format.cpp" "src/CMakeFiles/llhsc_feature.dir/feature/text_format.cpp.o" "gcc" "src/CMakeFiles/llhsc_feature.dir/feature/text_format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/llhsc_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llhsc_dts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llhsc_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llhsc_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llhsc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libllhsc_delta.a"
)

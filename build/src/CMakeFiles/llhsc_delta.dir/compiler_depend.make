# Empty compiler generated dependencies file for llhsc_delta.
# This may be replaced when dependencies are built.

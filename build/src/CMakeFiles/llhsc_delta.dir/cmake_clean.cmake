file(REMOVE_RECURSE
  "CMakeFiles/llhsc_delta.dir/delta/apply.cpp.o"
  "CMakeFiles/llhsc_delta.dir/delta/apply.cpp.o.d"
  "CMakeFiles/llhsc_delta.dir/delta/delta.cpp.o"
  "CMakeFiles/llhsc_delta.dir/delta/delta.cpp.o.d"
  "CMakeFiles/llhsc_delta.dir/delta/parser.cpp.o"
  "CMakeFiles/llhsc_delta.dir/delta/parser.cpp.o.d"
  "libllhsc_delta.a"
  "libllhsc_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llhsc_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for llhsc_logic.
# This may be replaced when dependencies are built.

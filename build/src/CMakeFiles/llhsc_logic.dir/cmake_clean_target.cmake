file(REMOVE_RECURSE
  "libllhsc_logic.a"
)

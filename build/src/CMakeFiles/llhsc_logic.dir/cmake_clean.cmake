file(REMOVE_RECURSE
  "CMakeFiles/llhsc_logic.dir/logic/bitvector.cpp.o"
  "CMakeFiles/llhsc_logic.dir/logic/bitvector.cpp.o.d"
  "CMakeFiles/llhsc_logic.dir/logic/cnf.cpp.o"
  "CMakeFiles/llhsc_logic.dir/logic/cnf.cpp.o.d"
  "CMakeFiles/llhsc_logic.dir/logic/formula.cpp.o"
  "CMakeFiles/llhsc_logic.dir/logic/formula.cpp.o.d"
  "libllhsc_logic.a"
  "libllhsc_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llhsc_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smt/builtin_backend.cpp" "src/CMakeFiles/llhsc_smt.dir/smt/builtin_backend.cpp.o" "gcc" "src/CMakeFiles/llhsc_smt.dir/smt/builtin_backend.cpp.o.d"
  "/root/repo/src/smt/solver.cpp" "src/CMakeFiles/llhsc_smt.dir/smt/solver.cpp.o" "gcc" "src/CMakeFiles/llhsc_smt.dir/smt/solver.cpp.o.d"
  "/root/repo/src/smt/z3_backend.cpp" "src/CMakeFiles/llhsc_smt.dir/smt/z3_backend.cpp.o" "gcc" "src/CMakeFiles/llhsc_smt.dir/smt/z3_backend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/llhsc_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llhsc_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llhsc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/llhsc_smt.dir/smt/builtin_backend.cpp.o"
  "CMakeFiles/llhsc_smt.dir/smt/builtin_backend.cpp.o.d"
  "CMakeFiles/llhsc_smt.dir/smt/solver.cpp.o"
  "CMakeFiles/llhsc_smt.dir/smt/solver.cpp.o.d"
  "CMakeFiles/llhsc_smt.dir/smt/z3_backend.cpp.o"
  "CMakeFiles/llhsc_smt.dir/smt/z3_backend.cpp.o.d"
  "libllhsc_smt.a"
  "libllhsc_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llhsc_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libllhsc_smt.a"
)

# Empty dependencies file for llhsc_smt.
# This may be replaced when dependencies are built.

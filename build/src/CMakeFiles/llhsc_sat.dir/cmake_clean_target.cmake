file(REMOVE_RECURSE
  "libllhsc_sat.a"
)

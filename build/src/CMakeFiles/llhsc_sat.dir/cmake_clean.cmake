file(REMOVE_RECURSE
  "CMakeFiles/llhsc_sat.dir/sat/dimacs.cpp.o"
  "CMakeFiles/llhsc_sat.dir/sat/dimacs.cpp.o.d"
  "CMakeFiles/llhsc_sat.dir/sat/solver.cpp.o"
  "CMakeFiles/llhsc_sat.dir/sat/solver.cpp.o.d"
  "libllhsc_sat.a"
  "libllhsc_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llhsc_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for llhsc_sat.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/llhsc_dts.dir/dts/lexer.cpp.o"
  "CMakeFiles/llhsc_dts.dir/dts/lexer.cpp.o.d"
  "CMakeFiles/llhsc_dts.dir/dts/overlay.cpp.o"
  "CMakeFiles/llhsc_dts.dir/dts/overlay.cpp.o.d"
  "CMakeFiles/llhsc_dts.dir/dts/parser.cpp.o"
  "CMakeFiles/llhsc_dts.dir/dts/parser.cpp.o.d"
  "CMakeFiles/llhsc_dts.dir/dts/printer.cpp.o"
  "CMakeFiles/llhsc_dts.dir/dts/printer.cpp.o.d"
  "CMakeFiles/llhsc_dts.dir/dts/tree.cpp.o"
  "CMakeFiles/llhsc_dts.dir/dts/tree.cpp.o.d"
  "libllhsc_dts.a"
  "libllhsc_dts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llhsc_dts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

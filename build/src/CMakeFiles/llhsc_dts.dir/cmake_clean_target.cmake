file(REMOVE_RECURSE
  "libllhsc_dts.a"
)

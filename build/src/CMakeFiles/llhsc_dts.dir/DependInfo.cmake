
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dts/lexer.cpp" "src/CMakeFiles/llhsc_dts.dir/dts/lexer.cpp.o" "gcc" "src/CMakeFiles/llhsc_dts.dir/dts/lexer.cpp.o.d"
  "/root/repo/src/dts/overlay.cpp" "src/CMakeFiles/llhsc_dts.dir/dts/overlay.cpp.o" "gcc" "src/CMakeFiles/llhsc_dts.dir/dts/overlay.cpp.o.d"
  "/root/repo/src/dts/parser.cpp" "src/CMakeFiles/llhsc_dts.dir/dts/parser.cpp.o" "gcc" "src/CMakeFiles/llhsc_dts.dir/dts/parser.cpp.o.d"
  "/root/repo/src/dts/printer.cpp" "src/CMakeFiles/llhsc_dts.dir/dts/printer.cpp.o" "gcc" "src/CMakeFiles/llhsc_dts.dir/dts/printer.cpp.o.d"
  "/root/repo/src/dts/tree.cpp" "src/CMakeFiles/llhsc_dts.dir/dts/tree.cpp.o" "gcc" "src/CMakeFiles/llhsc_dts.dir/dts/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/llhsc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

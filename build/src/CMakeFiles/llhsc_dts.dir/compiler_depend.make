# Empty compiler generated dependencies file for llhsc_dts.
# This may be replaced when dependencies are built.

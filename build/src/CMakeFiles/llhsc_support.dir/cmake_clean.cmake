file(REMOVE_RECURSE
  "CMakeFiles/llhsc_support.dir/support/diagnostics.cpp.o"
  "CMakeFiles/llhsc_support.dir/support/diagnostics.cpp.o.d"
  "CMakeFiles/llhsc_support.dir/support/strings.cpp.o"
  "CMakeFiles/llhsc_support.dir/support/strings.cpp.o.d"
  "libllhsc_support.a"
  "libllhsc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llhsc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libllhsc_support.a"
)

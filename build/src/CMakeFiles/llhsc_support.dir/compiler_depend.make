# Empty compiler generated dependencies file for llhsc_support.
# This may be replaced when dependencies are built.

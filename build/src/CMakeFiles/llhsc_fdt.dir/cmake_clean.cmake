file(REMOVE_RECURSE
  "CMakeFiles/llhsc_fdt.dir/fdt/fdt.cpp.o"
  "CMakeFiles/llhsc_fdt.dir/fdt/fdt.cpp.o.d"
  "libllhsc_fdt.a"
  "libllhsc_fdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llhsc_fdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

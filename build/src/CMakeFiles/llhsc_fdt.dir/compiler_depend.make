# Empty compiler generated dependencies file for llhsc_fdt.
# This may be replaced when dependencies are built.

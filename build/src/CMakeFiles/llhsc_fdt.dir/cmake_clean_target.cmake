file(REMOVE_RECURSE
  "libllhsc_fdt.a"
)

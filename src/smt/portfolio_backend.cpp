// Portfolio backend: races the builtin CDCL backend against Z3 on every
// check. Both backends receive the identical assertion stream; at check time
// the query is pre-encoded into both (sequentially — the builtin encoder
// mutates the shared term arenas), then the two solvers run on separate
// threads. The first definitive verdict (sat/unsat) claims the race with an
// atomic compare-exchange and cancels the loser:
//
//   - the builtin solver polls a support::CancelToken threaded through its
//     Deadline and backs out of the CDCL loop at the next poll;
//   - Z3 is stopped through z3::context::interrupt(), its documented
//     cross-thread cancellation point.
//
// Both threads are joined before check() returns, so the backends are
// strictly single-threaded outside the race window. Model and unsat-core
// queries are forwarded to whichever backend won the last race. Verdicts are
// backend-independent by construction and findings are byte-identical
// because witness terms are pinned at query construction.
#include <atomic>
#include <cassert>
#include <thread>

#include "obs/obs.hpp"
#include "smt/solver.hpp"

namespace llhsc::smt {

std::unique_ptr<SolverBackend> make_builtin_backend(
    logic::FormulaArena& formulas, logic::BvArena& bitvectors);
std::unique_ptr<SolverBackend> make_z3_backend(logic::FormulaArena& formulas,
                                               logic::BvArena& bitvectors);

namespace {

class PortfolioBackend final : public SolverBackend {
 public:
  PortfolioBackend(logic::FormulaArena& formulas, logic::BvArena& bitvectors)
      : builtin_(make_builtin_backend(formulas, bitvectors)),
        z3_(make_z3_backend(formulas, bitvectors)) {
    winner_ = builtin_.get();
  }

  void add(logic::Formula f) override {
    builtin_->add(f);
    z3_->add(f);
  }

  void push() override {
    builtin_->push();
    z3_->push();
  }

  void pop() override {
    builtin_->pop();
    z3_->pop();
  }

  void set_deadline(const support::Deadline& deadline) override {
    deadline_ = deadline;
  }

  void simplify() override {
    builtin_->simplify();
    z3_->simplify();
  }

  void prepare(std::span<const logic::Formula> assumptions) override {
    builtin_->prepare(assumptions);  // mutates the shared arenas — first
    z3_->prepare(assumptions);       // then reads them
  }

  CheckResult check(std::span<const logic::Formula> assumptions) override {
    // All shared-arena mutation happens here, before any thread is spawned.
    prepare(assumptions);

    support::CancelToken cancel = support::CancelToken::create();
    builtin_->set_deadline(deadline_.with_cancel(cancel));
    z3_->set_deadline(deadline_);

    // -1 = undecided, 0 = builtin, 1 = z3. The loser's verdict is discarded
    // (when both are definitive they agree; differential tests enforce it).
    std::atomic<int> claimed{-1};
    CheckResult z3_result = CheckResult::kUnknown;

    std::thread z3_thread([&] {
      CheckResult r = CheckResult::kUnknown;
      try {
        r = z3_->check(assumptions);
      } catch (...) {
        r = CheckResult::kUnknown;  // interrupted mid-check
      }
      if (r != CheckResult::kUnknown) {
        int expected = -1;
        if (claimed.compare_exchange_strong(expected, 1)) {
          cancel.cancel();  // stop the builtin search loop
        }
      }
      z3_result = r;
    });

    CheckResult builtin_result = builtin_->check(assumptions);
    if (builtin_result != CheckResult::kUnknown) {
      int expected = -1;
      if (claimed.compare_exchange_strong(expected, 0)) {
        z3_->interrupt();
      }
    }
    z3_thread.join();

    switch (claimed.load()) {
      case 0:
        winner_ = builtin_.get();
        obs::count("portfolio_wins_builtin", "solver", 1);
        return builtin_result;
      case 1:
        winner_ = z3_.get();
        obs::count("portfolio_wins_z3", "solver", 1);
        return z3_result;
      default:
        // Neither produced a verdict (deadline expired on both sides).
        winner_ = builtin_.get();
        return CheckResult::kUnknown;
    }
  }

  bool model_bool(logic::BoolVar v) override { return winner_->model_bool(v); }

  uint64_t model_bv(logic::BvTerm t) override { return winner_->model_bv(t); }

  std::vector<logic::Formula> unsat_core() override {
    return winner_->unsat_core();
  }

 private:
  std::unique_ptr<SolverBackend> builtin_;
  std::unique_ptr<SolverBackend> z3_;
  SolverBackend* winner_;  // backend that won the last race
  support::Deadline deadline_;
};

}  // namespace

std::unique_ptr<SolverBackend> make_portfolio_backend(
    logic::FormulaArena& formulas, logic::BvArena& bitvectors) {
  return std::make_unique<PortfolioBackend>(formulas, bitvectors);
}

}  // namespace llhsc::smt

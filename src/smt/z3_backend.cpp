// Z3 backend: translates the shared Formula/BvTerm DAG onto the Z3 native
// C++ API. Boolean structure maps 1:1; kBvAtom leaves map to Z3 bit-vector
// theory terms (no pre-blasting — Z3 applies its own bit-blasting tactic,
// exactly as the paper describes in §IV-C).
#include <cassert>
#include <optional>
#include <unordered_map>

#include <z3++.h>

#include "smt/solver.hpp"

namespace llhsc::smt {

namespace {

class Z3Backend final : public SolverBackend {
 public:
  Z3Backend(logic::FormulaArena& formulas, logic::BvArena& bitvectors)
      : formulas_(&formulas), bitvectors_(&bitvectors), solver_(ctx_) {}

  void add(logic::Formula f) override { solver_.add(translate(f)); }

  void push() override { solver_.push(); }
  void pop() override { solver_.pop(); }

  void set_deadline(const support::Deadline& deadline) override {
    deadline_ = deadline;
  }

  void prepare(std::span<const logic::Formula> assumptions) override {
    // Builds the Z3 exprs now, while the caller still guarantees exclusive
    // access to the shared term arenas; check() then only reads the caches.
    for (logic::Formula f : assumptions) (void)translate(f);
  }

  void interrupt() override {
    // Solver-scoped interrupt, not ctx_.interrupt(): the context-level flag
    // is only consumed by an *in-flight* interruptible procedure, so an
    // interrupt landing just after check() returns would poison the context
    // and make the next push()/add() throw "canceled". Z3_solver_interrupt
    // targets the running check and is a no-op between checks.
    Z3_solver_interrupt(ctx_, solver_);
  }

  CheckResult check(std::span<const logic::Formula> assumptions) override {
    // Map the deadline onto Z3's per-check timeout. 4294967295 (UINT32_MAX)
    // is Z3's "no timeout" sentinel; an already-expired deadline still gets
    // 1ms so the check returns unknown promptly instead of running free.
    z3::params params(ctx_);
    unsigned timeout_ms = UINT32_MAX;
    if (!deadline_.unlimited()) {
      uint64_t left = deadline_.remaining_ms();
      timeout_ms = left == 0 ? 1u
                   : left >= UINT32_MAX
                       ? UINT32_MAX - 1
                       : static_cast<unsigned>(left);
    }
    params.set("timeout", timeout_ms);
    solver_.set(params);
    z3::expr_vector assume(ctx_);
    assumption_map_.clear();
    for (logic::Formula f : assumptions) {
      z3::expr e = translate(f);
      assumption_map_.emplace_back(e, f);
      assume.push_back(e);
    }
    switch (solver_.check(assume)) {
      case z3::sat: model_ = solver_.get_model(); has_model_ = true; return CheckResult::kSat;
      case z3::unsat: return CheckResult::kUnsat;
      default: return CheckResult::kUnknown;
    }
  }

  std::vector<logic::Formula> unsat_core() override {
    std::vector<logic::Formula> core;
    z3::expr_vector z3_core = solver_.unsat_core();
    for (unsigned i = 0; i < z3_core.size(); ++i) {
      for (const auto& [expr, formula] : assumption_map_) {
        if (z3::eq(expr, z3_core[i])) {
          core.push_back(formula);
          break;
        }
      }
    }
    return core;
  }

  bool model_bool(logic::BoolVar v) override {
    assert(has_model_);
    auto it = bool_consts_.find(v.index);
    if (it == bool_consts_.end()) return false;  // unconstrained
    z3::expr val = model_->eval(it->second, /*model_completion=*/true);
    return val.bool_value() == Z3_L_TRUE;
  }

  uint64_t model_bv(logic::BvTerm t) override {
    assert(has_model_);
    z3::expr val = model_->eval(translate_term(t), /*model_completion=*/true);
    return val.get_numeral_uint64();
  }

 private:
  z3::expr translate(logic::Formula f) {
    auto it = formula_cache_.find(f.id());
    if (it != formula_cache_.end()) return it->second;
    z3::expr e = translate_uncached(f);
    formula_cache_.emplace(f.id(), e);
    return e;
  }

  z3::expr translate_uncached(logic::Formula f) {
    using logic::Op;
    const auto& fa = *formulas_;
    switch (fa.op(f)) {
      case Op::kTrue: return ctx_.bool_val(true);
      case Op::kFalse: return ctx_.bool_val(false);
      case Op::kVar: {
        logic::BoolVar v = fa.var_of(f);
        auto it = bool_consts_.find(v.index);
        if (it != bool_consts_.end()) return it->second;
        // Uniquify by index: distinct BoolVars may share a display name.
        std::string name =
            fa.var_name(v) + "!" + std::to_string(v.index);
        z3::expr c = ctx_.bool_const(name.c_str());
        bool_consts_.emplace(v.index, c);
        return c;
      }
      case Op::kBvAtom: {
        const logic::BvAtom& atom = fa.bv_atom(f);
        z3::expr a = translate_term_id(atom.lhs_term);
        z3::expr b = translate_term_id(atom.rhs_term);
        switch (atom.pred) {
          case logic::BvPred::kEq: return a == b;
          case logic::BvPred::kUlt: return z3::ult(a, b);
          case logic::BvPred::kUle: return z3::ule(a, b);
          case logic::BvPred::kUaddOverflow: {
            // Overflow iff zero-extended sum exceeds the width's max value.
            unsigned w = a.get_sort().bv_size();
            z3::expr az = z3::zext(a, 1);
            z3::expr bz = z3::zext(b, 1);
            z3::expr sum = az + bz;
            return sum.extract(w, w) == ctx_.bv_val(1, 1);
          }
        }
        break;
      }
      case Op::kNot: return !translate(fa.operands(f)[0]);
      case Op::kAnd: {
        z3::expr_vector ops(ctx_);
        for (logic::Formula g : fa.operands(f)) ops.push_back(translate(g));
        return z3::mk_and(ops);
      }
      case Op::kOr: {
        z3::expr_vector ops(ctx_);
        for (logic::Formula g : fa.operands(f)) ops.push_back(translate(g));
        return z3::mk_or(ops);
      }
      case Op::kXor: {
        auto ops = fa.operands(f);
        z3::expr acc = translate(ops[0]);
        for (size_t i = 1; i < ops.size(); ++i) acc = acc != translate(ops[i]);
        return acc;
      }
      case Op::kImplies: {
        auto ops = fa.operands(f);
        return z3::implies(translate(ops[0]), translate(ops[1]));
      }
      case Op::kIff: {
        auto ops = fa.operands(f);
        return translate(ops[0]) == translate(ops[1]);
      }
    }
    assert(false && "unreachable");
    return ctx_.bool_val(false);
  }

  z3::expr translate_term(logic::BvTerm t) { return translate_term_id(t.id()); }

  z3::expr translate_term_id(uint32_t id) {
    auto it = term_cache_.find(id);
    if (it != term_cache_.end()) return it->second;
    z3::expr e = translate_term_uncached(logic::BvTerm::from_id(id));
    term_cache_.emplace(id, e);
    return e;
  }

  z3::expr translate_term_uncached(logic::BvTerm t) {
    using logic::BvOp;
    auto& bv = *bitvectors_;
    unsigned w = bv.width(t);
    switch (bv.term_op(t)) {
      case BvOp::kConst: return ctx_.bv_val(bv.const_value(t), w);
      case BvOp::kVar: {
        std::string name = bv.var_name(t) + "!t" + std::to_string(t.id());
        return ctx_.bv_const(name.c_str(), w);
      }
      case BvOp::kAdd:
        return translate_term(bv.operand_a(t)) + translate_term(bv.operand_b(t));
      case BvOp::kSub:
        return translate_term(bv.operand_a(t)) - translate_term(bv.operand_b(t));
      case BvOp::kMul:
        return translate_term(bv.operand_a(t)) * translate_term(bv.operand_b(t));
      case BvOp::kAnd:
        return translate_term(bv.operand_a(t)) & translate_term(bv.operand_b(t));
      case BvOp::kOr:
        return translate_term(bv.operand_a(t)) | translate_term(bv.operand_b(t));
      case BvOp::kXor:
        return translate_term(bv.operand_a(t)) ^ translate_term(bv.operand_b(t));
      case BvOp::kNot: return ~translate_term(bv.operand_a(t));
      case BvOp::kShlConst:
        return z3::shl(translate_term(bv.operand_a(t)), ctx_.bv_val(bv.immediate(t), w));
      case BvOp::kLshrConst:
        return z3::lshr(translate_term(bv.operand_a(t)), ctx_.bv_val(bv.immediate(t), w));
      case BvOp::kZeroExt: {
        z3::expr a = translate_term(bv.operand_a(t));
        return z3::zext(a, w - a.get_sort().bv_size());
      }
      case BvOp::kExtract:
        return translate_term(bv.operand_a(t)).extract(bv.immediate2(t), bv.immediate(t));
      case BvOp::kConcat:
        return z3::concat(translate_term(bv.operand_a(t)),
                          translate_term(bv.operand_b(t)));
      case BvOp::kIte:
        return z3::ite(translate(bv.ite_condition(t)),
                       translate_term(bv.operand_a(t)),
                       translate_term(bv.operand_b(t)));
    }
    assert(false && "unreachable");
    return ctx_.bv_val(0, w);
  }

  logic::FormulaArena* formulas_;
  logic::BvArena* bitvectors_;
  z3::context ctx_;
  z3::solver solver_;
  support::Deadline deadline_;
  std::optional<z3::model> model_;
  bool has_model_ = false;
  std::unordered_map<uint32_t, z3::expr> formula_cache_;
  std::unordered_map<uint32_t, z3::expr> term_cache_;
  std::unordered_map<uint32_t, z3::expr> bool_consts_;
  std::vector<std::pair<z3::expr, logic::Formula>> assumption_map_;
};

}  // namespace

std::unique_ptr<SolverBackend> make_z3_backend(logic::FormulaArena& formulas,
                                               logic::BvArena& bitvectors) {
  return std::make_unique<Z3Backend>(formulas, bitvectors);
}

}  // namespace llhsc::smt

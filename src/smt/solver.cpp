#include "smt/solver.hpp"

#include "obs/obs.hpp"

namespace llhsc::smt {

// Backend factories (defined in their own translation units).
std::unique_ptr<SolverBackend> make_builtin_backend(
    logic::FormulaArena& formulas, logic::BvArena& bitvectors);
std::unique_ptr<SolverBackend> make_z3_backend(logic::FormulaArena& formulas,
                                               logic::BvArena& bitvectors);
std::unique_ptr<SolverBackend> make_portfolio_backend(
    logic::FormulaArena& formulas, logic::BvArena& bitvectors);

std::string_view to_string(Backend b) {
  switch (b) {
    case Backend::kBuiltin: return "builtin";
    case Backend::kZ3: return "z3";
    case Backend::kPortfolio: return "portfolio";
  }
  return "unknown";
}

std::string_view to_string(CheckResult r) {
  switch (r) {
    case CheckResult::kSat: return "sat";
    case CheckResult::kUnsat: return "unsat";
    case CheckResult::kUnknown: return "unknown";
  }
  return "unknown";
}

Solver::Solver(Backend backend)
    : backend_kind_(backend), bitvectors_(formulas_) {
  switch (backend) {
    case Backend::kBuiltin:
      backend_ = make_builtin_backend(formulas_, bitvectors_);
      break;
    case Backend::kZ3:
      backend_ = make_z3_backend(formulas_, bitvectors_);
      break;
    case Backend::kPortfolio:
      backend_ = make_portfolio_backend(formulas_, bitvectors_);
      break;
  }
}

Solver::~Solver() = default;

logic::Formula Solver::bool_var(const std::string& name) {
  return formulas_.var(formulas_.new_bool_var(name));
}

logic::BvTerm Solver::bv_var(const std::string& name, uint32_t width) {
  return bitvectors_.bv_var(name, width);
}

void Solver::add(logic::Formula f) { backend_->add(f); }
void Solver::push() { backend_->push(); }
void Solver::pop() { backend_->pop(); }

void Solver::retire(logic::Formula guard) {
  backend_->add(formulas_.mk_not(guard));
  backend_->simplify();
}

void Solver::set_deadline(const support::Deadline& deadline) {
  deadline_ = deadline;
  backend_->set_deadline(deadline);
}

CheckResult Solver::check() { return check_assuming({}); }

CheckResult Solver::check_assuming(std::span<const logic::Formula> assumptions) {
  obs::Span span("solver.check", "solver");
  ++stats_.checks;
  CheckResult r = backend_->check(assumptions);
  if (r == CheckResult::kSat) ++stats_.sat_results;
  if (r == CheckResult::kUnsat) ++stats_.unsat_results;
  if (r == CheckResult::kUnknown) ++stats_.unknown_results;
  obs::count("solver.checks", "solver", 1);
  if (span.active()) {
    span.arg("backend", std::string(to_string(backend_kind_)));
    span.arg("verdict", std::string(to_string(r)));
    span.arg("assumptions", std::to_string(assumptions.size()));
    span.arg("deadline_ms", deadline_.unlimited()
                                ? "unlimited"
                                : std::to_string(deadline_.remaining_ms()));
  }
  return r;
}

bool Solver::model_bool(logic::BoolVar v) { return backend_->model_bool(v); }

bool Solver::model_bool(logic::Formula var_formula) {
  return backend_->model_bool(formulas_.var_of(var_formula));
}

uint64_t Solver::model_bv(logic::BvTerm t) { return backend_->model_bv(t); }

std::vector<logic::Formula> Solver::unsat_core() {
  return backend_->unsat_core();
}

std::vector<logic::Formula> Solver::minimal_core(
    std::span<const logic::Formula> assumptions) {
  std::vector<logic::Formula> work(assumptions.begin(), assumptions.end());
  if (check_assuming(work) != CheckResult::kUnsat) return {};
  // Start from the backend's core (already a subset), then delete-test.
  std::vector<logic::Formula> core = unsat_core();
  if (core.empty()) core = work;
  for (size_t i = 0; i < core.size();) {
    std::vector<logic::Formula> candidate;
    candidate.reserve(core.size() - 1);
    for (size_t j = 0; j < core.size(); ++j) {
      if (j != i) candidate.push_back(core[j]);
    }
    if (check_assuming(candidate) == CheckResult::kUnsat) {
      core = std::move(candidate);  // element i was redundant
    } else {
      ++i;  // element i is necessary
    }
  }
  return core;
}

std::vector<Backend> all_backends() {
  return {Backend::kBuiltin, Backend::kZ3, Backend::kPortfolio};
}

}  // namespace llhsc::smt

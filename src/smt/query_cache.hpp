// Persistent query-result cache for the query planner. A solver query is a
// set of formulas plus (optionally) one bit-vector term whose model value is
// the witness to report; the cache maps a *structural* canonicalisation of
// that query to the verdict and witness from an earlier run. Formula and
// term ids are per-process (hash-consing order depends on construction
// order), so keys are computed by re-serialising the query DAG with
// traversal-order sequence numbers and ignoring variable names — two
// processes that build the same query get the same key.
//
// Storage is one file per key under  <dir>/qc<version>-<backend>/ ; bumping
// the format version or switching backends invalidates the whole cache by
// construction (different subdirectory). Writes go through a temp file +
// rename, so concurrent units racing on the same key each land a complete
// entry and readers never observe a partial file. Lookups verify the stored
// canonical text against the probe to defeat fingerprint collisions.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "logic/bitvector.hpp"
#include "logic/formula.hpp"
#include "smt/solver.hpp"

namespace llhsc::smt {

/// Structural serialisation of one query: each formula on its own line,
/// shared subterms back-referenced by first-visit sequence number, variable
/// names dropped. The final line names the witness term (or "-").
[[nodiscard]] std::string canonical_query_text(
    const logic::FormulaArena& formulas, const logic::BvArena& bitvectors,
    std::span<const logic::Formula> fs, logic::BvTerm witness_term);

/// FNV-1a 64 over the canonical text; the cache's file name.
[[nodiscard]] uint64_t query_fingerprint(std::string_view canonical_text);

class QueryCache {
 public:
  struct Entry {
    CheckResult result = CheckResult::kUnknown;
    uint64_t witness = 0;
  };

  /// Opens (creating if needed) the versioned cache directory for `backend`
  /// under `dir`. On any filesystem failure — `dir` is a file, the
  /// directory cannot be created, or a probe write fails (read-only mount,
  /// permissions) — the cache disables itself and records why in error():
  /// caching is an optimisation, never a correctness dependency, but the
  /// failure must be *visible* (the semantic checker turns it into one
  /// warning finding) rather than a silent cold run every time.
  QueryCache(const std::string& dir, Backend backend);

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Why the cache is disabled ("" when enabled or never requested).
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Returns the stored entry for this query, or nullopt on miss (including
  /// fingerprint collisions, unreadable entries, and a disabled cache).
  [[nodiscard]] std::optional<Entry> lookup(
      const std::string& canonical_text) const;

  /// Persists a decided query. kUnknown results (deadline expiry) are never
  /// stored — a later run with more budget must re-attempt them.
  void store(const std::string& canonical_text, const Entry& entry);

  [[nodiscard]] const std::string& directory() const { return version_dir_; }

 private:
  [[nodiscard]] std::optional<Entry> lookup_uncounted(
      const std::string& canonical_text) const;

  [[nodiscard]] std::string entry_path(uint64_t fingerprint) const;

  std::string version_dir_;
  bool enabled_ = false;
  std::string error_;
};

}  // namespace llhsc::smt

#include "smt/query_plan.hpp"

#include <vector>

#include "obs/obs.hpp"

namespace llhsc::smt {

QueryPlanner::QueryPlanner(Solver& solver, const std::string& cache_dir)
    : solver_(&solver) {
  if (!cache_dir.empty()) {
    cache_ = std::make_unique<QueryCache>(cache_dir, solver.backend());
    if (!cache_->enabled()) {
      stats_.cache_errors = 1;
      obs::count("planner.cache_errors", "planner", 1);
    }
  }
}

void QueryPlanner::note_pruned(uint64_t n) {
  stats_.queries_pruned += n;
  obs::count("planner.queries_pruned", "planner", static_cast<int64_t>(n));
}

const std::string& QueryPlanner::cache_error() const {
  static const std::string kEmpty;
  return cache_ == nullptr ? kEmpty : cache_->error();
}

QueryPlanner::Outcome QueryPlanner::check(std::span<const logic::Formula> fs,
                                          logic::BvTerm witness_term) {
  obs::Span span("planner.check", "planner");
  Outcome outcome;
  std::string key;
  if (cache_enabled()) {
    key = canonical_query_text(solver_->formulas(), solver_->bitvectors(), fs,
                               witness_term);
    if (auto hit = cache_->lookup(key)) {
      ++stats_.cache_hits;
      obs::count("planner.cache_hits", "planner", 1);
      outcome.result = hit->result;
      outcome.witness = hit->witness;
      outcome.from_cache = true;
      if (span.active()) {
        span.arg("verdict", std::string(to_string(outcome.result)));
        span.arg("from_cache", "true");
      }
      return outcome;
    }
  }

  logic::FormulaArena& fa = solver_->formulas();
  const logic::Formula guard =
      solver_->bool_var("qp.g" + std::to_string(guard_counter_++));
  for (logic::Formula f : fs) {
    solver_->add(fa.mk_implies(guard, f));
  }
  std::vector<logic::Formula> assumptions{guard};
  outcome.result = solver_->check_assuming(assumptions);
  ++stats_.queries_issued;
  obs::count("planner.queries_issued", "planner", 1);
  if (outcome.result == CheckResult::kSat && witness_term.valid()) {
    outcome.witness = solver_->model_bv(witness_term);
  }
  // Retire the guard: the implications become vacuous and the backend sweeps
  // any learned clauses that depended on the guard, while keeping the
  // guard-independent ones to prune later queries on the shared instance.
  solver_->retire(guard);

  if (cache_enabled() && outcome.result != CheckResult::kUnknown) {
    cache_->store(key, {outcome.result, outcome.witness});
  }
  if (span.active()) {
    span.arg("verdict", std::string(to_string(outcome.result)));
    span.arg("from_cache", "false");
  }
  return outcome;
}

}  // namespace llhsc::smt

// Builtin backend: Tseitin-encodes formulas onto the in-tree CDCL solver.
// push/pop is implemented with activation literals: assertions inside scope
// level k are guarded by that level's activation variable, which is assumed
// during check() and permanently falsified on pop().
#include <cassert>
#include <cstdlib>
#include <vector>

#include "logic/cnf.hpp"
#include "obs/obs.hpp"
#include "sat/solver.hpp"
#include "smt/solver.hpp"

namespace llhsc::smt {

namespace {

class BuiltinBackend final : public SolverBackend {
 public:
  BuiltinBackend(logic::FormulaArena& formulas, logic::BvArena& bitvectors)
      : formulas_(&formulas),
        bitvectors_(&bitvectors),
        encoder_(formulas, sat_, &bitvectors),
        // A/B escape hatch for benchmarking: with LLHSC_NO_CLAUSE_RETENTION
        // set, simplify() drops every learned clause (the pre-retention
        // behaviour) instead of keeping the guard-independent ones.
        retain_learned_(std::getenv("LLHSC_NO_CLAUSE_RETENTION") == nullptr) {}

  void add(logic::Formula f) override {
    if (scopes_.empty()) {
      encoder_.assert_formula(f);
    } else {
      sat::Lit act = scopes_.back();
      sat_.add_clause(~act, encoder_.encode(f));
    }
  }

  void push() override {
    scopes_.push_back(sat::Lit::positive(sat_.new_var()));
  }

  void pop() override {
    assert(!scopes_.empty());
    if (scopes_.empty()) return;       // unbalanced pop: keep the store sound
    sat_.add_clause(~scopes_.back());  // retire this scope's assertions
    scopes_.pop_back();
  }

  void set_deadline(const support::Deadline& deadline) override {
    sat_.set_deadline(deadline);
  }

  void prepare(std::span<const logic::Formula> assumptions) override {
    // Forces Tseitin encoding + bit-blasting now (mutating the shared
    // arenas); the subsequent check() hits the memoised literals.
    for (logic::Formula f : assumptions) (void)encoder_.encode(f);
  }

  void simplify() override { sat_.simplify(retain_learned_); }

  CheckResult check(std::span<const logic::Formula> assumptions) override {
    std::vector<sat::Lit> assume(scopes_.begin(), scopes_.end());
    assume.reserve(scopes_.size() + assumptions.size());
    assumption_map_.clear();
    for (logic::Formula f : assumptions) {
      sat::Lit l = encoder_.encode(f);
      assumption_map_.emplace_back(l, f);
      assume.push_back(l);
    }
    const uint64_t conflicts_before = sat_.stats().conflicts;
    const sat::SolveResult r = sat_.solve(assume);
    // Conflict accounting per check: how hard the CDCL search worked. The
    // retention pipeline tests assert this drops when learned clauses
    // survive guard retirement.
    obs::count("solver.conflicts", "solver",
               static_cast<int64_t>(sat_.stats().conflicts - conflicts_before));
    switch (r) {
      case sat::SolveResult::kSat: return CheckResult::kSat;
      case sat::SolveResult::kUnsat: return CheckResult::kUnsat;
      case sat::SolveResult::kUnknown: return CheckResult::kUnknown;
    }
    return CheckResult::kUnknown;
  }

  std::vector<logic::Formula> unsat_core() override {
    // Map the SAT-level core literals back to the user's assumption
    // formulas; scope activation literals are implementation detail and
    // excluded.
    std::vector<logic::Formula> core;
    for (sat::Lit l : sat_.unsat_core()) {
      for (const auto& [lit, formula] : assumption_map_) {
        if (lit == l) {
          core.push_back(formula);
          break;
        }
      }
    }
    return core;
  }

  bool model_bool(logic::BoolVar v) override { return encoder_.model_value(v); }

  uint64_t model_bv(logic::BvTerm t) override {
    // Rebuild a full Boolean assignment from the SAT model, then evaluate the
    // term. Unconstrained bits default to false — a legal model completion.
    std::vector<bool> assignment(formulas_->num_bool_vars(), false);
    for (uint32_t i = 0; i < assignment.size(); ++i) {
      assignment[i] = encoder_.model_value(logic::BoolVar{i});
    }
    return bitvectors_->evaluate(t, assignment);
  }

 private:
  logic::FormulaArena* formulas_;
  logic::BvArena* bitvectors_;
  sat::Solver sat_;
  logic::CnfEncoder encoder_;
  std::vector<sat::Lit> scopes_;
  std::vector<std::pair<sat::Lit, logic::Formula>> assumption_map_;
  bool retain_learned_;
};

}  // namespace

std::unique_ptr<SolverBackend> make_builtin_backend(
    logic::FormulaArena& formulas, logic::BvArena& bitvectors) {
  return std::make_unique<BuiltinBackend>(formulas, bitvectors);
}

}  // namespace llhsc::smt

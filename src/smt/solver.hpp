// SMT facade: one term language (logic::FormulaArena + logic::BvArena), two
// interchangeable backends.
//
//   - kBuiltin: Tseitin + bit-blasting onto the in-tree CDCL solver. Makes
//     llhsc self-contained, mirrors what Z3 does internally for QF_BV
//     ("the technique of bit-blasting is used by the Z3 theorem prover",
//     paper §IV-C).
//   - kZ3: the Z3 native C++ API — the backend the paper actually uses.
//   - kPortfolio: races kBuiltin and kZ3 on the same query; the first
//     definitive verdict (sat/unsat) wins and the loser is cancelled through
//     support::Deadline's cancel token. Findings are byte-identical to
//     either backend alone because witness terms are pinned at query
//     construction (checkers/semantic.cpp).
//
// The checkers never talk to a backend directly; differential tests assert
// both backends agree on every checker verdict.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "logic/bitvector.hpp"
#include "logic/formula.hpp"
#include "support/deadline.hpp"

namespace llhsc::smt {

enum class CheckResult : uint8_t { kSat, kUnsat, kUnknown };

enum class Backend : uint8_t { kBuiltin, kZ3, kPortfolio };

[[nodiscard]] std::string_view to_string(Backend b);
[[nodiscard]] std::string_view to_string(CheckResult r);

struct SolverStats {
  uint64_t checks = 0;
  uint64_t sat_results = 0;
  uint64_t unsat_results = 0;
  /// Checks that hit a deadline (or that the backend gave up on).
  uint64_t unknown_results = 0;
};

/// Backend implementation interface. Consumes formulas/terms built in the
/// arenas owned by the fronting Solver.
class SolverBackend {
 public:
  virtual ~SolverBackend() = default;
  virtual void add(logic::Formula f) = 0;
  virtual void push() = 0;
  virtual void pop() = 0;
  /// Bounds subsequent check() calls; an expired deadline yields kUnknown
  /// (builtin: polled in the CDCL search loop; z3: mapped to the solver's
  /// timeout parameter). A default Deadline removes the limit.
  virtual void set_deadline(const support::Deadline& deadline) = 0;
  /// Pre-encodes `assumptions` (and everything they reach) into backend-local
  /// form without solving. The builtin backend's Tseitin/bit-blasting step
  /// creates fresh variables in the *shared* term arenas, so portfolio racing
  /// calls prepare() on both backends sequentially before the race — the
  /// racing check() calls then hit memoised encodings and never touch shared
  /// state. Default no-op.
  virtual void prepare(std::span<const logic::Formula> assumptions) {
    (void)assumptions;
  }
  virtual CheckResult check(std::span<const logic::Formula> assumptions) = 0;
  [[nodiscard]] virtual bool model_bool(logic::BoolVar v) = 0;
  [[nodiscard]] virtual uint64_t model_bv(logic::BvTerm t) = 0;
  /// After a kUnsat check with assumptions: the subset of those assumptions
  /// that conflicts with the asserted formulas (not necessarily minimal).
  [[nodiscard]] virtual std::vector<logic::Formula> unsat_core() = 0;
  /// Housekeeping hook called after a guard literal is retired (asserted
  /// false at the top level): backends drop state the retired guard poisons
  /// while *retaining* everything independent of it. The builtin backend
  /// maps this to sat::Solver::simplify(), which sweeps learned clauses
  /// satisfied at level 0 out of the watch lists; Z3 manages its own learnt
  /// store, so the default is a no-op.
  virtual void simplify() {}
  /// Asynchronously aborts an in-flight check() from another thread; the
  /// interrupted check returns kUnknown. Default no-op (the builtin backend
  /// is cancelled through the Deadline token instead).
  virtual void interrupt() {}
};

/// The solver the rest of llhsc sees. Owns the term arenas and a backend.
/// Incremental: supports push/pop scopes and solving under assumptions,
/// matching the paper's "constraints can be added incrementally to the same
/// solver instance" extensibility claim (§VI).
class Solver {
 public:
  explicit Solver(Backend backend = Backend::kBuiltin);
  ~Solver();
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  [[nodiscard]] logic::FormulaArena& formulas() { return formulas_; }
  [[nodiscard]] logic::BvArena& bitvectors() { return bitvectors_; }
  [[nodiscard]] Backend backend() const { return backend_kind_; }

  /// Shorthand for declaring named atoms.
  logic::Formula bool_var(const std::string& name);
  logic::BvTerm bv_var(const std::string& name, uint32_t width);

  void add(logic::Formula f);
  void push();
  void pop();
  /// Retires an assumption guard: asserts !guard and lets the backend sweep
  /// guard-dependent learned clauses while keeping the guard-independent
  /// ones for later check_assuming() calls (learned-clause retention).
  void retire(logic::Formula guard);
  /// Wall-clock budget for each subsequent check; expired checks return
  /// kUnknown instead of blocking. Reset with a default Deadline.
  void set_deadline(const support::Deadline& deadline);
  CheckResult check();
  CheckResult check_assuming(std::span<const logic::Formula> assumptions);

  /// Model access after kSat.
  [[nodiscard]] bool model_bool(logic::BoolVar v);
  [[nodiscard]] bool model_bool(logic::Formula var_formula);
  [[nodiscard]] uint64_t model_bv(logic::BvTerm t);

  /// After a kUnsat check_assuming: the conflicting subset of the
  /// assumptions (an unsat core; not necessarily minimal).
  [[nodiscard]] std::vector<logic::Formula> unsat_core();

  /// Deletion-minimises a conflicting assumption set: repeatedly drops one
  /// element and re-checks, keeping the set unsat. Returns a *minimal* core
  /// (every element necessary), at the cost of O(|core|) solver calls.
  /// Returns empty when `assumptions` is actually satisfiable.
  [[nodiscard]] std::vector<logic::Formula> minimal_core(
      std::span<const logic::Formula> assumptions);

  [[nodiscard]] const SolverStats& stats() const { return stats_; }

 private:
  Backend backend_kind_;
  logic::FormulaArena formulas_;
  logic::BvArena bitvectors_;
  std::unique_ptr<SolverBackend> backend_;
  SolverStats stats_;
  /// Mirror of the backend's budget, so per-query spans can report it.
  support::Deadline deadline_;
};

/// Factory used by tests/benches to sweep both backends.
[[nodiscard]] std::vector<Backend> all_backends();

}  // namespace llhsc::smt

// SMT facade: one term language (logic::FormulaArena + logic::BvArena), two
// interchangeable backends.
//
//   - kBuiltin: Tseitin + bit-blasting onto the in-tree CDCL solver. Makes
//     llhsc self-contained, mirrors what Z3 does internally for QF_BV
//     ("the technique of bit-blasting is used by the Z3 theorem prover",
//     paper §IV-C).
//   - kZ3: the Z3 native C++ API — the backend the paper actually uses.
//
// The checkers never talk to a backend directly; differential tests assert
// both backends agree on every checker verdict.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "logic/bitvector.hpp"
#include "logic/formula.hpp"
#include "support/deadline.hpp"

namespace llhsc::smt {

enum class CheckResult : uint8_t { kSat, kUnsat, kUnknown };

enum class Backend : uint8_t { kBuiltin, kZ3 };

[[nodiscard]] std::string_view to_string(Backend b);
[[nodiscard]] std::string_view to_string(CheckResult r);

struct SolverStats {
  uint64_t checks = 0;
  uint64_t sat_results = 0;
  uint64_t unsat_results = 0;
  /// Checks that hit a deadline (or that the backend gave up on).
  uint64_t unknown_results = 0;
};

/// Backend implementation interface. Consumes formulas/terms built in the
/// arenas owned by the fronting Solver.
class SolverBackend {
 public:
  virtual ~SolverBackend() = default;
  virtual void add(logic::Formula f) = 0;
  virtual void push() = 0;
  virtual void pop() = 0;
  /// Bounds subsequent check() calls; an expired deadline yields kUnknown
  /// (builtin: polled in the CDCL search loop; z3: mapped to the solver's
  /// timeout parameter). A default Deadline removes the limit.
  virtual void set_deadline(const support::Deadline& deadline) = 0;
  virtual CheckResult check(std::span<const logic::Formula> assumptions) = 0;
  [[nodiscard]] virtual bool model_bool(logic::BoolVar v) = 0;
  [[nodiscard]] virtual uint64_t model_bv(logic::BvTerm t) = 0;
  /// After a kUnsat check with assumptions: the subset of those assumptions
  /// that conflicts with the asserted formulas (not necessarily minimal).
  [[nodiscard]] virtual std::vector<logic::Formula> unsat_core() = 0;
};

/// The solver the rest of llhsc sees. Owns the term arenas and a backend.
/// Incremental: supports push/pop scopes and solving under assumptions,
/// matching the paper's "constraints can be added incrementally to the same
/// solver instance" extensibility claim (§VI).
class Solver {
 public:
  explicit Solver(Backend backend = Backend::kBuiltin);
  ~Solver();
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  [[nodiscard]] logic::FormulaArena& formulas() { return formulas_; }
  [[nodiscard]] logic::BvArena& bitvectors() { return bitvectors_; }
  [[nodiscard]] Backend backend() const { return backend_kind_; }

  /// Shorthand for declaring named atoms.
  logic::Formula bool_var(const std::string& name);
  logic::BvTerm bv_var(const std::string& name, uint32_t width);

  void add(logic::Formula f);
  void push();
  void pop();
  /// Wall-clock budget for each subsequent check; expired checks return
  /// kUnknown instead of blocking. Reset with a default Deadline.
  void set_deadline(const support::Deadline& deadline);
  CheckResult check();
  CheckResult check_assuming(std::span<const logic::Formula> assumptions);

  /// Model access after kSat.
  [[nodiscard]] bool model_bool(logic::BoolVar v);
  [[nodiscard]] bool model_bool(logic::Formula var_formula);
  [[nodiscard]] uint64_t model_bv(logic::BvTerm t);

  /// After a kUnsat check_assuming: the conflicting subset of the
  /// assumptions (an unsat core; not necessarily minimal).
  [[nodiscard]] std::vector<logic::Formula> unsat_core();

  /// Deletion-minimises a conflicting assumption set: repeatedly drops one
  /// element and re-checks, keeping the set unsat. Returns a *minimal* core
  /// (every element necessary), at the cost of O(|core|) solver calls.
  /// Returns empty when `assumptions` is actually satisfiable.
  [[nodiscard]] std::vector<logic::Formula> minimal_core(
      std::span<const logic::Formula> assumptions);

  [[nodiscard]] const SolverStats& stats() const { return stats_; }

 private:
  Backend backend_kind_;
  logic::FormulaArena formulas_;
  logic::BvArena bitvectors_;
  std::unique_ptr<SolverBackend> backend_;
  SolverStats stats_;
  /// Mirror of the backend's budget, so per-query spans can report it.
  support::Deadline deadline_;
};

/// Factory used by tests/benches to sweep both backends.
[[nodiscard]] std::vector<Backend> all_backends();

}  // namespace llhsc::smt

// Query planner — the layer between the checkers and the solver. One
// planner fronts one Solver and turns a stream of independent decision
// queries (each a small formula set, optionally with a witness term) into
// the cheapest sound sequence of backend calls:
//
//   1. The *checkers* prune structurally decidable queries before they get
//      here (sweep-line interval prefilter for concrete regions, hash
//      buckets for interrupt tuples) and report them via note_pruned(), so
//      the trace still accounts for every query the exhaustive path would
//      have issued.
//   2. Surviving queries are *batched* onto the one solver instance: each
//      query's formulas are guarded by a fresh assumption literal
//      (g => f_i), decided with check_assuming({g}), and retired with
//      add(!g) — shared structure stays asserted and encoded once, and no
//      retired query constrains a later one. Both backends support
//      assumptions natively, so this costs one check() per query instead of
//      a push/encode/pop cycle.
//   3. Decided queries are recorded in a persistent QueryCache (when a
//      cache directory is configured); a later run that builds a
//      structurally identical query is answered without touching the
//      solver at all.
//
// Soundness of the division of labour: the planner never changes a
// query's verdict — pruning is the checkers' responsibility (and covered by
// the planned-vs-exhaustive property tests), batching is equisatisfiable by
// construction (guards are fresh and never reused), and cache entries store
// the witness, so findings are byte-identical across cold, batched, and
// warm-cache runs.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "smt/query_cache.hpp"
#include "smt/solver.hpp"

namespace llhsc::smt {

/// Per-planner counters surfaced through the pipeline trace.
struct QueryPlanStats {
  /// Queries that reached the backend (one check_assuming each).
  uint64_t queries_issued = 0;
  /// Queries decided structurally by a prefilter — never built.
  uint64_t queries_pruned = 0;
  /// Queries answered from the persistent cache.
  uint64_t cache_hits = 0;
  /// 1 when a cache directory was requested but could not be used (file in
  /// the way, unwritable, creation failure) — the run proceeded uncached.
  uint64_t cache_errors = 0;
};

class QueryPlanner {
 public:
  struct Outcome {
    CheckResult result = CheckResult::kUnknown;
    /// Model value of the witness term after kSat (0 otherwise).
    uint64_t witness = 0;
    /// The verdict came from the cache; the solver was not consulted.
    bool from_cache = false;
  };

  /// `cache_dir` empty disables the persistent cache (batching and the
  /// pruning counters still apply).
  QueryPlanner(Solver& solver, const std::string& cache_dir);

  /// Decides the conjunction of `fs` as one batched query. The formulas
  /// must be self-contained: the planner asserts them only under a fresh
  /// guard, so nothing added directly to the solver by the caller may be
  /// required for the verdict to be cache-portable.
  Outcome check(std::span<const logic::Formula> fs,
                logic::BvTerm witness_term = {});

  /// Records queries a prefilter discharged without building them.
  void note_pruned(uint64_t n);

  [[nodiscard]] const QueryPlanStats& stats() const { return stats_; }
  [[nodiscard]] bool cache_enabled() const {
    return cache_ != nullptr && cache_->enabled();
  }
  /// Why the requested cache is unusable ("" when fine or not requested).
  [[nodiscard]] const std::string& cache_error() const;

 private:
  Solver* solver_;
  std::unique_ptr<QueryCache> cache_;
  QueryPlanStats stats_;
  uint64_t guard_counter_ = 0;
};

}  // namespace llhsc::smt

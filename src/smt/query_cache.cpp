#include "smt/query_cache.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "obs/obs.hpp"
#include "support/file_lock.hpp"

namespace llhsc::smt {

namespace {

namespace fs = std::filesystem;

/// Bumped whenever the canonical text or entry format changes; part of the
/// directory name, so stale entries are never consulted.
constexpr int kCacheFormatVersion = 1;

struct Canonicalizer {
  const logic::FormulaArena* fa;
  const logic::BvArena* bv;
  std::ostringstream os;
  // First-visit sequence numbers. Names are deliberately ignored: fresh
  // counters differ between runs, but the query structure does not.
  std::unordered_map<uint32_t, uint32_t> term_seq;
  std::unordered_map<uint32_t, uint32_t> formula_seq;
  std::unordered_map<uint32_t, uint32_t> bool_var_seq;

  void term(logic::BvTerm t) {
    auto [it, fresh] =
        term_seq.emplace(t.id(), static_cast<uint32_t>(term_seq.size()));
    if (!fresh) {
      os << 't' << it->second;
      return;
    }
    const logic::BvOp op = bv->term_op(t);
    os << '(' << static_cast<int>(op) << ' ' << bv->width(t);
    switch (op) {
      case logic::BvOp::kConst:
        os << ' ' << bv->const_value(t);
        break;
      case logic::BvOp::kVar:
        break;
      case logic::BvOp::kNot:
        os << ' ';
        term(bv->operand_a(t));
        break;
      case logic::BvOp::kShlConst:
      case logic::BvOp::kLshrConst:
        os << ' ' << bv->immediate(t) << ' ';
        term(bv->operand_a(t));
        break;
      case logic::BvOp::kZeroExt:
        os << ' ';
        term(bv->operand_a(t));
        break;
      case logic::BvOp::kExtract:
        os << ' ' << bv->immediate2(t) << ' ' << bv->immediate(t) << ' ';
        term(bv->operand_a(t));
        break;
      case logic::BvOp::kIte:
        os << ' ';
        formula(bv->ite_condition(t));
        os << ' ';
        term(bv->operand_a(t));
        os << ' ';
        term(bv->operand_b(t));
        break;
      default:  // binary arithmetic / bitwise / concat
        os << ' ';
        term(bv->operand_a(t));
        os << ' ';
        term(bv->operand_b(t));
        break;
    }
    os << ')';
  }

  void formula(logic::Formula f) {
    auto [it, fresh] =
        formula_seq.emplace(f.id(), static_cast<uint32_t>(formula_seq.size()));
    if (!fresh) {
      os << 'f' << it->second;
      return;
    }
    const logic::Op op = fa->op(f);
    os << '[' << static_cast<int>(op);
    switch (op) {
      case logic::Op::kTrue:
      case logic::Op::kFalse:
        break;
      case logic::Op::kVar: {
        const uint32_t idx = fa->var_of(f).index;
        auto [vit, _] = bool_var_seq.emplace(
            idx, static_cast<uint32_t>(bool_var_seq.size()));
        os << ' ' << vit->second;
        break;
      }
      case logic::Op::kBvAtom: {
        const logic::BvAtom& atom = fa->bv_atom(f);
        os << ' ' << static_cast<int>(atom.pred) << ' ';
        term(logic::BvTerm::from_id(atom.lhs_term));
        os << ' ';
        term(logic::BvTerm::from_id(atom.rhs_term));
        break;
      }
      default:
        for (logic::Formula operand : fa->operands(f)) {
          os << ' ';
          formula(operand);
        }
        break;
    }
    os << ']';
  }
};

std::string hex64(uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

}  // namespace

std::string canonical_query_text(const logic::FormulaArena& formulas,
                                 const logic::BvArena& bitvectors,
                                 std::span<const logic::Formula> fs,
                                 logic::BvTerm witness_term) {
  Canonicalizer c{&formulas, &bitvectors, {}, {}, {}, {}};
  for (logic::Formula f : fs) {
    c.formula(f);
    c.os << '\n';
  }
  c.os << "w ";
  if (witness_term.valid()) {
    c.term(witness_term);
  } else {
    c.os << '-';
  }
  c.os << '\n';
  return c.os.str();
}

uint64_t query_fingerprint(std::string_view canonical_text) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char ch : canonical_text) {
    h ^= ch;
    h *= 0x100000001b3ull;
  }
  return h;
}

QueryCache::QueryCache(const std::string& dir, Backend backend) {
  if (dir.empty()) return;
  std::error_code ec;
  if (fs::exists(dir, ec) && !ec && !fs::is_directory(dir, ec)) {
    error_ = "cache directory '" + dir + "' exists but is not a directory";
    return;
  }
  version_dir_ = dir + "/qc" + std::to_string(kCacheFormatVersion) + "-" +
                 std::string(to_string(backend));
  ec.clear();
  fs::create_directories(version_dir_, ec);
  if (ec || !fs::is_directory(version_dir_, ec) || ec) {
    error_ = "cannot create cache directory '" + version_dir_ + "'" +
             (ec ? ": " + ec.message() : "");
    return;
  }
  // Probe write: create_directories succeeding does not prove the directory
  // is writable (read-only remount, sticky permissions). One tiny file,
  // written and removed, decides it up front instead of every store()
  // silently failing later.
  static std::atomic<uint64_t> probe_counter{0};
  const std::string probe =
      version_dir_ + "/.probe" + std::to_string(probe_counter.fetch_add(1)) +
      "-" + hex64(std::hash<std::thread::id>{}(std::this_thread::get_id()));
  {
    std::ofstream out(probe, std::ios::binary);
    out << "llhsc-qc-probe\n";
    if (!out.good()) {
      error_ = "cache directory '" + version_dir_ + "' is not writable";
      ec.clear();
      fs::remove(probe, ec);
      return;
    }
  }
  ec.clear();
  fs::remove(probe, ec);
  enabled_ = true;
}

std::string QueryCache::entry_path(uint64_t fingerprint) const {
  return version_dir_ + "/" + hex64(fingerprint) + ".qc";
}

std::optional<QueryCache::Entry> QueryCache::lookup(
    const std::string& canonical_text) const {
  if (!enabled_) return std::nullopt;
  std::optional<Entry> found = lookup_uncounted(canonical_text);
  obs::count(found ? "qcache.hit" : "qcache.miss", "qcache", 1);
  return found;
}

std::optional<QueryCache::Entry> QueryCache::lookup_uncounted(
    const std::string& canonical_text) const {
  std::ifstream in(entry_path(query_fingerprint(canonical_text)),
                   std::ios::binary);
  if (!in) return std::nullopt;
  std::string header;
  if (!std::getline(in, header)) return std::nullopt;
  std::istringstream hs(header);
  std::string magic, verdict, witness_hex;
  int version = 0;
  if (!(hs >> magic >> version >> verdict >> witness_hex) ||
      magic != "llhsc-qc" || version != kCacheFormatVersion) {
    return std::nullopt;
  }
  Entry entry;
  if (verdict == "sat") {
    entry.result = CheckResult::kSat;
  } else if (verdict == "unsat") {
    entry.result = CheckResult::kUnsat;
  } else {
    return std::nullopt;
  }
  entry.witness = std::stoull(witness_hex, nullptr, 16);
  // Collision guard: the stored canonical text must match the probe. A
  // mismatch means two distinct queries share a 64-bit fingerprint — count
  // it and fall through to the solver instead of replaying a wrong verdict.
  std::ostringstream body;
  body << in.rdbuf();
  if (body.str() != canonical_text) {
    obs::count("qcache.collisions", "qcache", 1);
    return std::nullopt;
  }
  return entry;
}

void QueryCache::store(const std::string& canonical_text, const Entry& entry) {
  if (!enabled_ || entry.result == CheckResult::kUnknown) return;
  const std::string path = entry_path(query_fingerprint(canonical_text));
  // Single-writer discipline for the cross-process shared cache: the rename
  // below is already atomic (readers never see a torn entry and stay
  // lock-free), so the flock's job is to serialise concurrent daemon workers
  // publishing the same directory — and, being kernel-owned, it is released
  // automatically if the holder is kill -9'd mid-write
  // (tools/check_crash_recovery.sh asserts that release).
  const support::FileLock writer_lock =
      support::FileLock::exclusive(version_dir_ + "/.writer.lock");
  static std::atomic<uint64_t> write_counter{0};
  const std::string tmp =
      path + ".tmp" + std::to_string(write_counter.fetch_add(1)) + "-" +
      hex64(std::hash<std::thread::id>{}(std::this_thread::get_id()));
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out) return;
    out << "llhsc-qc " << kCacheFormatVersion << ' '
        << (entry.result == CheckResult::kSat ? "sat" : "unsat") << ' '
        << hex64(entry.witness) << '\n'
        << canonical_text;
    if (!out.good()) {
      out.close();
      std::error_code ec;
      fs::remove(tmp, ec);
      return;
    }
  }
  // Atomic publish; racing writers produce identical content, so whichever
  // rename lands last is as good as the first.
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return;
  }
  obs::count("qcache.store", "qcache", 1);
}

}  // namespace llhsc::smt

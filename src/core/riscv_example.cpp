#include "core/riscv_example.hpp"

#include "schema/builtin_schemas.hpp"

namespace llhsc::core {

const char* riscv_core_dts() {
  return R"(/dts-v1/;

/ {
    #address-cells = <2>;
    #size-cells = <2>;
    compatible = "riscv-virtio";
    model = "llhsc,rv64-virt";

    memory@80000000 {
        device_type = "memory";
        reg = <0x0 0x80000000 0x0 0x40000000>;
    };

    /include/ "rv64-cpus.dtsi"

    /include/ "rv64-soc.dtsi"
};
)";
}

const char* riscv_cpus_dtsi() {
  return R"(cpus {
    #address-cells = <0x1>;
    #size-cells = <0x0>;
    timebase-frequency = <10000000>;

    cpu@0 {
        device_type = "cpu";
        compatible = "riscv";
        reg = <0x0>;
        riscv,isa = "rv64imafdc";
        mmu-type = "riscv,sv48";
        status = "okay";
    };

    cpu@1 {
        device_type = "cpu";
        compatible = "riscv";
        reg = <0x1>;
        riscv,isa = "rv64imafdc";
        mmu-type = "riscv,sv48";
        status = "okay";
    };

    cpu@2 {
        device_type = "cpu";
        compatible = "riscv";
        reg = <0x2>;
        riscv,isa = "rv64imafdc";
        mmu-type = "riscv,sv48";
        status = "okay";
    };

    cpu@3 {
        device_type = "cpu";
        compatible = "riscv";
        reg = <0x3>;
        riscv,isa = "rv64imafdc";
        mmu-type = "riscv,sv48";
        status = "okay";
    };
};
)";
}

const char* riscv_soc_dtsi() {
  return R"(soc {
    #address-cells = <2>;
    #size-cells = <2>;
    compatible = "simple-bus";
    ranges;

    clint@2000000 {
        compatible = "riscv,clint0";
        reg = <0x0 0x2000000 0x0 0x10000>;
    };

    plic: plic@c000000 {
        compatible = "riscv,plic0";
        reg = <0x0 0xc000000 0x0 0x4000000>;
        interrupt-controller;
        #interrupt-cells = <1>;
        riscv,ndev = <53>;
    };

    uart0: uart@10000000 {
        compatible = "ns16550a";
        reg = <0x0 0x10000000 0x0 0x100>;
        clock-frequency = <3686400>;
        interrupt-parent = <&plic>;
        interrupts = <10>;
    };

    uart1: uart@10001000 {
        compatible = "ns16550a";
        reg = <0x0 0x10001000 0x0 0x100>;
        clock-frequency = <3686400>;
        interrupt-parent = <&plic>;
        interrupts = <11>;
    };

    virtio0: virtio@10008000 {
        compatible = "virtio,mmio";
        reg = <0x0 0x10008000 0x0 0x1000>;
        interrupt-parent = <&plic>;
        interrupts = <1>;
    };

    virtio1: virtio@10009000 {
        compatible = "virtio,mmio";
        reg = <0x0 0x10009000 0x0 0x1000>;
        interrupt-parent = <&plic>;
        interrupts = <2>;
    };

    flash@20000000 {
        compatible = "cfi-flash";
        reg = <0x0 0x20000000 0x0 0x2000000>;
        bank-width = <4>;
    };
};
)";
}

const char* riscv_deltas() {
  // Pure removal product line: the core carries all hardware; each delta
  // strips what the selected configuration does not own.
  return R"(delta rm_hart0 when !hart0 { removes cpu@0; }
delta rm_hart1 when !hart1 { removes cpu@1; }
delta rm_hart2 when !hart2 { removes cpu@2; }
delta rm_hart3 when !hart3 { removes cpu@3; }
delta rm_uart0 when !uart@10000000 { removes uart@10000000; }
delta rm_uart1 when !uart@10001000 { removes uart@10001000; }
delta rm_virtio0 when !virtio@10008000 { removes virtio@10008000; }
delta rm_virtio1 when !virtio@10009000 { removes virtio@10009000; }
delta rm_flash when !flash { removes flash@20000000; }

delta stdout0 when uart@10000000 {
    modifies / {
        chosen {
            stdout-path = "/soc/uart@10000000";
        };
    }
}

delta stdout1 when (uart@10001000 && !uart@10000000) {
    modifies / {
        chosen {
            stdout-path = "/soc/uart@10001000";
        };
    }
}
)";
}

dts::SourceManager riscv_sources() {
  dts::SourceManager sm;
  sm.register_file("rv64-cpus.dtsi", riscv_cpus_dtsi());
  sm.register_file("rv64-soc.dtsi", riscv_soc_dtsi());
  return sm;
}

feature::FeatureModel riscv_feature_model() {
  feature::FeatureModel m;
  feature::FeatureId root = m.add_root("RV64Virt");
  m.add_feature(root, "memory", /*mandatory=*/true);

  // Harts form an OR group: every configuration owns at least one, and a VM
  // may own several (the exclusivity across VMs is per-hart, §IV-A).
  feature::FeatureId cpus = m.add_feature(root, "cpus", true);
  m.set_group(cpus, feature::GroupKind::kOr);
  for (int i = 0; i < 4; ++i) {
    m.add_feature(cpus, "hart" + std::to_string(i));
  }

  feature::FeatureId soc = m.add_feature(root, "soc", true, /*abstract=*/true);
  m.add_feature(soc, "plic", /*mandatory=*/true);
  m.add_feature(soc, "clint", /*mandatory=*/true);
  m.add_feature(soc, "flash");

  feature::FeatureId uarts = m.add_feature(root, "uarts", true, true);
  m.set_group(uarts, feature::GroupKind::kOr);
  m.add_feature(uarts, "uart@10000000");
  m.add_feature(uarts, "uart@10001000");

  feature::FeatureId virtio = m.add_feature(root, "virtio", false, true);
  m.set_group(virtio, feature::GroupKind::kOr);
  m.add_feature(virtio, "virtio@10008000");
  m.add_feature(virtio, "virtio@10009000");
  return m;
}

std::unique_ptr<delta::ProductLine> riscv_product_line(
    support::DiagnosticEngine& diags) {
  dts::SourceManager sm = riscv_sources();
  auto core = dts::parse_dts(riscv_core_dts(), "rv64-virt.dts", sm, diags);
  if (core == nullptr || diags.has_errors()) return nullptr;
  auto deltas = delta::parse_deltas(riscv_deltas(), "rv64-virt.deltas", diags);
  if (diags.has_errors()) return nullptr;
  return std::make_unique<delta::ProductLine>(std::move(core),
                                              std::move(deltas));
}

schema::SchemaSet riscv_schemas() {
  schema::SchemaSet set = schema::builtin_schemas();

  {
    schema::PropertySchema compatible;
    compatible.name = "compatible";
    compatible.type = schema::PropertyType::kString;
    compatible.enum_strings = {"riscv,plic0", "sifive,plic-1.0.0"};
    schema::PropertySchema reg;
    reg.name = "reg";
    reg.type = schema::PropertyType::kCells;
    reg.min_items = 1;
    reg.max_items = 1;
    schema::PropertySchema icells;
    icells.name = "#interrupt-cells";
    icells.type = schema::PropertyType::kCells;
    icells.const_cell = 1;
    schema::PropertySchema ic;
    ic.name = "interrupt-controller";
    ic.type = schema::PropertyType::kBool;
    schema::PropertySchema ndev;
    ndev.name = "riscv,ndev";
    ndev.type = schema::PropertyType::kCells;
    ndev.minimum = 1;
    ndev.maximum = 1023;
    set.add(schema::SchemaBuilder("plic")
                .description("RISC-V platform-level interrupt controller")
                .select_node_name("plic@*")
                .select_compatible("riscv,plic0")
                .property(std::move(compatible))
                .property(std::move(reg))
                .property(std::move(icells))
                .property(std::move(ic))
                .property(std::move(ndev))
                .require("compatible")
                .require("reg")
                .require("#interrupt-cells")
                .require("interrupt-controller")
                .build());
  }
  {
    schema::PropertySchema compatible;
    compatible.name = "compatible";
    compatible.type = schema::PropertyType::kString;
    compatible.enum_strings = {"riscv,clint0", "sifive,clint0"};
    schema::PropertySchema reg;
    reg.name = "reg";
    reg.type = schema::PropertyType::kCells;
    reg.min_items = 1;
    reg.max_items = 1;
    set.add(schema::SchemaBuilder("clint")
                .description("RISC-V core-local interruptor")
                .select_node_name("clint@*")
                .select_compatible("riscv,clint0")
                .property(std::move(compatible))
                .property(std::move(reg))
                .require("compatible")
                .require("reg")
                .build());
  }
  {
    schema::PropertySchema compatible;
    compatible.name = "compatible";
    compatible.type = schema::PropertyType::kString;
    compatible.const_string = "virtio,mmio";
    schema::PropertySchema reg;
    reg.name = "reg";
    reg.type = schema::PropertyType::kCells;
    reg.min_items = 1;
    reg.max_items = 1;
    schema::PropertySchema irq;
    irq.name = "interrupts";
    irq.type = schema::PropertyType::kCells;
    irq.minimum = 1;
    irq.maximum = 53;  // within the plic's riscv,ndev
    set.add(schema::SchemaBuilder("virtio-mmio")
                .description("virtio transport over MMIO")
                .select_node_name("virtio@*")
                .select_compatible("virtio,mmio")
                .property(std::move(compatible))
                .property(std::move(reg))
                .property(std::move(irq))
                .require("compatible")
                .require("reg")
                .require("interrupts")
                .build());
  }
  {
    schema::PropertySchema compatible;
    compatible.name = "compatible";
    compatible.type = schema::PropertyType::kString;
    compatible.const_string = "cfi-flash";
    schema::PropertySchema reg;
    reg.name = "reg";
    reg.type = schema::PropertyType::kCells;
    reg.min_items = 1;
    reg.max_items = 2;
    schema::PropertySchema width;
    width.name = "bank-width";
    width.type = schema::PropertyType::kCells;
    width.enum_cells = {1, 2, 4};
    set.add(schema::SchemaBuilder("cfi-flash")
                .description("parallel NOR flash")
                .select_node_name("flash@*")
                .select_compatible("cfi-flash")
                .property(std::move(compatible))
                .property(std::move(reg))
                .property(std::move(width))
                .require("compatible")
                .require("reg")
                .build());
  }
  return set;
}

std::vector<feature::FeatureId> riscv_exclusive_harts(
    const feature::FeatureModel& model) {
  std::vector<feature::FeatureId> out;
  for (int i = 0; i < 4; ++i) {
    if (auto id = model.find("hart" + std::to_string(i))) out.push_back(*id);
  }
  return out;
}

std::set<std::string> riscv_vm_a_features() {
  return {"RV64Virt", "memory",          "cpus",
          "hart0",    "hart1",           "soc",
          "plic",     "clint",           "uarts",
          "uart@10000000", "virtio",     "virtio@10008000"};
}

std::set<std::string> riscv_vm_b_features() {
  return {"RV64Virt", "memory",          "cpus",
          "hart2",    "hart3",           "soc",
          "plic",     "clint",           "uarts",
          "uart@10001000", "virtio",     "virtio@10009000",
          "flash"};
}

}  // namespace llhsc::core

#include "core/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace llhsc::core {

namespace {

void append_escaped(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

std::string format_ms(double ms) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << ms;
  return os.str();
}

}  // namespace

uint64_t PipelineTrace::total_solver_checks() const {
  uint64_t n = 0;
  for (const StageTrace& s : stages) n += s.solver_checks;
  return n;
}

size_t PipelineTrace::total_findings() const {
  size_t n = 0;
  for (const StageTrace& s : stages) n += s.findings;
  return n;
}

uint64_t PipelineTrace::total_queries_issued() const {
  uint64_t n = 0;
  for (const StageTrace& s : stages) n += s.queries_issued;
  return n;
}

uint64_t PipelineTrace::total_queries_pruned() const {
  uint64_t n = 0;
  for (const StageTrace& s : stages) n += s.queries_pruned;
  return n;
}

uint64_t PipelineTrace::total_cache_hits() const {
  uint64_t n = 0;
  for (const StageTrace& s : stages) n += s.cache_hits;
  return n;
}

uint64_t PipelineTrace::total_cache_errors() const {
  uint64_t n = 0;
  for (const StageTrace& s : stages) n += s.cache_errors;
  return n;
}

std::string PipelineTrace::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"jobs\": " << jobs << ",\n";
  os << "  \"total_ms\": " << format_ms(total_ms) << ",\n";
  os << "  \"complete\": " << (complete ? "true" : "false") << ",\n";
  os << "  \"solver_checks\": " << total_solver_checks() << ",\n";
  os << "  \"queries_issued\": " << total_queries_issued() << ",\n";
  os << "  \"queries_pruned\": " << total_queries_pruned() << ",\n";
  os << "  \"cache_hits\": " << total_cache_hits() << ",\n";
  os << "  \"cache_errors\": " << total_cache_errors() << ",\n";
  os << "  \"findings\": " << total_findings() << ",\n";
  os << "  \"stages\": [";
  for (size_t i = 0; i < stages.size(); ++i) {
    const StageTrace& s = stages[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"unit\": ";
    append_escaped(os, s.unit);
    os << ", \"stage\": ";
    append_escaped(os, s.stage);
    os << ", \"wall_ms\": " << format_ms(s.wall_ms)
       << ", \"solver_checks\": " << s.solver_checks
       << ", \"queries_issued\": " << s.queries_issued
       << ", \"queries_pruned\": " << s.queries_pruned
       << ", \"cache_hits\": " << s.cache_hits
       << ", \"cache_errors\": " << s.cache_errors
       << ", \"findings\": " << s.findings << '}';
  }
  if (!stages.empty()) os << "\n  ";
  os << "]\n}\n";
  return os.str();
}

std::string PipelineTrace::render_table() const {
  size_t unit_w = 4, stage_w = 5;
  for (const StageTrace& s : stages) {
    unit_w = std::max(unit_w, s.unit.size());
    stage_w = std::max(stage_w, s.stage.size());
  }
  std::ostringstream os;
  os << std::left << std::setw(static_cast<int>(unit_w)) << "unit" << "  "
     << std::setw(static_cast<int>(stage_w)) << "stage" << "  "
     << std::right << std::setw(10) << "wall_ms" << "  " << std::setw(7)
     << "checks" << "  " << std::setw(7) << "issued" << "  " << std::setw(7)
     << "pruned" << "  " << std::setw(7) << "cached" << "  " << std::setw(8)
     << "findings" << '\n';
  for (const StageTrace& s : stages) {
    os << std::left << std::setw(static_cast<int>(unit_w)) << s.unit << "  "
       << std::setw(static_cast<int>(stage_w)) << s.stage << "  "
       << std::right << std::setw(10) << format_ms(s.wall_ms) << "  "
       << std::setw(7) << s.solver_checks << "  " << std::setw(7)
       << s.queries_issued << "  " << std::setw(7) << s.queries_pruned
       << "  " << std::setw(7) << s.cache_hits << "  " << std::setw(8)
       << s.findings << '\n';
  }
  os << "total " << format_ms(total_ms) << " ms, "
     << total_solver_checks() << " solver checks, " << total_queries_issued()
     << " issued, " << total_queries_pruned() << " pruned, "
     << total_cache_hits() << " cache hits, ";
  if (total_cache_errors() > 0) {
    os << total_cache_errors() << " cache errors, ";
  }
  os << total_findings() << " findings, jobs=" << jobs
     << (complete ? "" : " (incomplete: fail-fast abort)") << '\n';
  return os.str();
}

}  // namespace llhsc::core

#include "core/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/json.hpp"

namespace llhsc::core {

namespace {

std::string format_ms(double ms) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << ms;
  return os.str();
}

}  // namespace

uint64_t PipelineTrace::total_solver_checks() const {
  uint64_t n = 0;
  for (const StageTrace& s : stages) n += s.solver_checks;
  return n;
}

size_t PipelineTrace::total_findings() const {
  size_t n = 0;
  for (const StageTrace& s : stages) n += s.findings;
  return n;
}

uint64_t PipelineTrace::total_queries_issued() const {
  uint64_t n = 0;
  for (const StageTrace& s : stages) n += s.queries_issued;
  return n;
}

uint64_t PipelineTrace::total_queries_pruned() const {
  uint64_t n = 0;
  for (const StageTrace& s : stages) n += s.queries_pruned;
  return n;
}

uint64_t PipelineTrace::total_cache_hits() const {
  uint64_t n = 0;
  for (const StageTrace& s : stages) n += s.cache_hits;
  return n;
}

uint64_t PipelineTrace::total_cache_errors() const {
  uint64_t n = 0;
  for (const StageTrace& s : stages) n += s.cache_errors;
  return n;
}

std::string PipelineTrace::to_json() const {
  using support::Json;
  Json doc = Json::object();
  doc.set("schema_version", Json::integer(1));
  doc.set("jobs", Json::unsigned_integer(jobs));
  doc.set("total_ms", Json::number(total_ms));
  doc.set("complete", Json::boolean(complete));
  doc.set("solver_checks", Json::unsigned_integer(total_solver_checks()));
  doc.set("queries_issued", Json::unsigned_integer(total_queries_issued()));
  doc.set("queries_pruned", Json::unsigned_integer(total_queries_pruned()));
  doc.set("cache_hits", Json::unsigned_integer(total_cache_hits()));
  doc.set("cache_errors", Json::unsigned_integer(total_cache_errors()));
  doc.set("findings", Json::unsigned_integer(total_findings()));
  Json stage_rows = Json::array();
  for (const StageTrace& s : stages) {
    Json row = Json::object();
    row.set("unit", Json::string(s.unit));
    row.set("stage", Json::string(s.stage));
    row.set("wall_ms", Json::number(s.wall_ms));
    row.set("solver_checks", Json::unsigned_integer(s.solver_checks));
    row.set("queries_issued", Json::unsigned_integer(s.queries_issued));
    row.set("queries_pruned", Json::unsigned_integer(s.queries_pruned));
    row.set("cache_hits", Json::unsigned_integer(s.cache_hits));
    row.set("cache_errors", Json::unsigned_integer(s.cache_errors));
    row.set("findings", Json::unsigned_integer(s.findings));
    stage_rows.push(std::move(row));
  }
  doc.set("stages", std::move(stage_rows));
  return doc.dump(Json::Style::kPretty) + "\n";
}

std::string PipelineTrace::render_table() const {
  size_t unit_w = 4, stage_w = 5;
  for (const StageTrace& s : stages) {
    unit_w = std::max(unit_w, s.unit.size());
    stage_w = std::max(stage_w, s.stage.size());
  }
  std::ostringstream os;
  os << std::left << std::setw(static_cast<int>(unit_w)) << "unit" << "  "
     << std::setw(static_cast<int>(stage_w)) << "stage" << "  "
     << std::right << std::setw(10) << "wall_ms" << "  " << std::setw(7)
     << "checks" << "  " << std::setw(7) << "issued" << "  " << std::setw(7)
     << "pruned" << "  " << std::setw(7) << "cached" << "  " << std::setw(8)
     << "findings" << '\n';
  for (const StageTrace& s : stages) {
    os << std::left << std::setw(static_cast<int>(unit_w)) << s.unit << "  "
       << std::setw(static_cast<int>(stage_w)) << s.stage << "  "
       << std::right << std::setw(10) << format_ms(s.wall_ms) << "  "
       << std::setw(7) << s.solver_checks << "  " << std::setw(7)
       << s.queries_issued << "  " << std::setw(7) << s.queries_pruned
       << "  " << std::setw(7) << s.cache_hits << "  " << std::setw(8)
       << s.findings << '\n';
  }
  os << "total " << format_ms(total_ms) << " ms, "
     << total_solver_checks() << " solver checks, " << total_queries_issued()
     << " issued, " << total_queries_pruned() << " pruned, "
     << total_cache_hits() << " cache hits, ";
  if (total_cache_errors() > 0) {
    os << total_cache_errors() << " cache errors, ";
  }
  os << total_findings() << " findings, jobs=" << jobs
     << (complete ? "" : " (incomplete: fail-fast abort)") << '\n';
  return os.str();
}

}  // namespace llhsc::core

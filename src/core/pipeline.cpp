#include "core/pipeline.hpp"

#include <atomic>
#include <chrono>
#include <functional>

#include "dts/printer.hpp"
#include "fdt/fdt.hpp"
#include "support/thread_pool.hpp"

namespace llhsc::core {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Everything one worker produces for one tree (a VM, or the platform as the
/// last unit). Findings arrive as per-stage chunks, each location-sorted
/// before it is appended, so the merged report is independent of how the
/// units were scheduled across threads.
struct UnitResult {
  std::unique_ptr<dts::Tree> tree;
  checkers::Findings findings;
  support::DiagnosticEngine diagnostics;
  std::vector<StageTrace> stages;

  std::string dts_text;
  std::vector<uint8_t> dtb;
  baogen::VmConfig config;
  std::string qemu_command;
  baogen::PlatformConfig platform_config;
  std::string platform_config_c;

  /// The fail-fast abort fired before this unit started.
  bool skipped = false;
};

}  // namespace

Pipeline::Pipeline(const feature::FeatureModel& model,
                   std::vector<feature::FeatureId> exclusive,
                   const delta::ProductLine& product_line,
                   const schema::SchemaSet& schemas, PipelineOptions options)
    : model_(&model),
      exclusive_(std::move(exclusive)),
      product_line_(&product_line),
      schemas_(&schemas),
      options_(options) {}

PipelineResult Pipeline::run(const std::vector<VmSpec>& vms) {
  const Clock::time_point run_start = Clock::now();
  PipelineResult result;
  const unsigned jobs = support::ThreadPool::resolve_jobs(options_.jobs);
  result.trace.jobs = jobs;

  // -- Stage 1: resource allocation (§IV-A) --
  // Inherently global (exclusivity reasons across every VM at once), so it
  // runs serially before the per-VM units fan out.
  if (options_.check_allocation) {
    const Clock::time_point t0 = Clock::now();
    checkers::ResourceAllocationChecker rac(*model_, exclusive_,
                                            options_.backend);
    std::vector<std::set<std::string>> features;
    features.reserve(vms.size());
    for (const VmSpec& vm : vms) features.push_back(vm.features);
    checkers::Findings alloc = rac.check(features);
    checkers::sort_by_location(alloc);
    result.trace.stages.push_back(
        StageTrace{"*", "allocation", ms_since(t0), 0, alloc.size()});
    result.findings.insert(result.findings.end(), alloc.begin(), alloc.end());
    if (options_.fail_fast && checkers::error_count(result.findings) > 0) {
      result.trace.complete = false;
      result.trace.total_ms = ms_since(run_start);
      result.ok = false;
      return result;
    }
  }

  // -- Stages 2-5 as independent work units: one per VM, platform last --
  std::set<std::string> platform_features;
  for (const VmSpec& vm : vms) {
    platform_features.insert(vm.features.begin(), vm.features.end());
  }

  const size_t unit_count = vms.size() + 1;
  std::vector<UnitResult> units(unit_count);
  // Fail-fast across units is best-effort: an error in one unit stops units
  // that have not started yet; units already running finish their current
  // stage. Everything collected is merged regardless.
  std::atomic<bool> abort{false};

  auto run_unit = [&](size_t idx) {
    UnitResult& u = units[idx];
    if (options_.fail_fast && abort.load(std::memory_order_relaxed)) {
      u.skipped = true;
      return;
    }
    const bool is_platform = idx == vms.size();
    const std::string unit_name = is_platform ? "platform" : vms[idx].name;

    // Stage 2: delta application (§III-B).
    const Clock::time_point t0 = Clock::now();
    u.tree = product_line_->derive(
        is_platform ? platform_features : vms[idx].features, u.diagnostics);
    u.stages.push_back(StageTrace{unit_name, "derive", ms_since(t0), 0, 0});
    if (u.tree == nullptr || u.diagnostics.has_errors()) {
      if (options_.fail_fast) abort.store(true, std::memory_order_relaxed);
      if (u.tree == nullptr) return;
    }

    // Stages 3+4 (+ lint): each stage is one chunk; sorted on arrival.
    // The callback fills the counter fields of its StageTrace entry.
    // Returns false when fail-fast ends the unit at this stage.
    auto run_stage = [&](const char* stage,
                         const std::function<checkers::Findings(StageTrace&)>&
                             fn) -> bool {
      StageTrace st;
      st.unit = unit_name;
      st.stage = stage;
      const Clock::time_point s0 = Clock::now();
      checkers::Findings f = fn(st);
      st.wall_ms = ms_since(s0);
      st.findings = f.size();
      checkers::sort_by_location(f);
      u.stages.push_back(std::move(st));
      const bool had_errors = checkers::error_count(f) > 0;
      u.findings.insert(u.findings.end(), f.begin(), f.end());
      if (had_errors && options_.fail_fast) {
        abort.store(true, std::memory_order_relaxed);
        return false;
      }
      return true;
    };

    const bool check_this = !is_platform || options_.check_platform;
    if (check_this && options_.check_lint) {
      if (!run_stage("lint", [&](StageTrace&) {
            return checkers::LintChecker().check(*u.tree);
          })) {
        return;
      }
    }
    if (check_this && options_.check_syntax) {
      if (!run_stage("syntactic", [&](StageTrace& st) {
            checkers::SyntacticChecker syn(*schemas_, options_.backend);
            checkers::Findings f = syn.check(*u.tree);
            st.solver_checks = syn.solver_checks();
            return f;
          })) {
        return;
      }
    }
    if (check_this && options_.check_semantics) {
      if (!run_stage("semantic", [&](StageTrace& st) {
            checkers::SemanticOptions sem_options;
            sem_options.solver_timeout_ms = options_.solver_timeout_ms;
            sem_options.plan = options_.plan_queries;
            sem_options.cache_dir = options_.cache_dir;
            checkers::SemanticChecker sem(options_.backend, sem_options);
            checkers::Findings f = sem.check(*u.tree);
            st.solver_checks = sem.solver_checks();
            st.queries_issued = sem.plan_stats().queries_issued;
            st.queries_pruned = sem.plan_stats().queries_pruned;
            st.cache_hits = sem.plan_stats().cache_hits;
            st.cache_errors = sem.plan_stats().cache_errors;
            return f;
          })) {
        return;
      }
    }

    // Stage 5: artifact emission.
    const Clock::time_point e0 = Clock::now();
    u.dts_text = dts::print_dts(*u.tree);
    if (options_.emit_dtb) {
      if (auto blob = fdt::emit(*u.tree, u.diagnostics)) {
        u.dtb = std::move(*blob);
      }
    }
    if (is_platform) {
      u.platform_config = baogen::extract_platform(*u.tree, u.diagnostics);
      u.platform_config_c = baogen::render_platform_c(u.platform_config);
    } else {
      u.config = baogen::extract_vm(*u.tree, vms[idx].name, u.diagnostics);
      baogen::QemuOptions qemu;
      qemu.kernel_image = vms[idx].name + "image.bin";
      qemu.dtb_path = vms[idx].name + ".dtb";
      u.qemu_command = baogen::render_qemu_command(u.config, qemu);
    }
    u.stages.push_back(StageTrace{unit_name, "emit", ms_since(e0), 0, 0});
  };

  if (jobs <= 1) {
    for (size_t idx = 0; idx < unit_count; ++idx) run_unit(idx);
  } else {
    support::ThreadPool pool(jobs);
    support::parallel_for(pool, unit_count, run_unit);
  }

  // -- Deterministic merge in VM declaration order (platform last) --
  for (size_t idx = 0; idx < unit_count; ++idx) {
    UnitResult& u = units[idx];
    if (u.skipped) continue;
    result.findings.insert(result.findings.end(), u.findings.begin(),
                           u.findings.end());
    result.diagnostics.merge(u.diagnostics);
    for (StageTrace& s : u.stages) {
      result.trace.stages.push_back(std::move(s));
    }
    if (u.tree == nullptr) continue;
    if (idx == vms.size()) {
      result.platform_tree = std::move(u.tree);
      result.platform_dts_text = std::move(u.dts_text);
      result.platform_dtb = std::move(u.dtb);
      result.platform_config = std::move(u.platform_config);
      result.platform_config_c = std::move(u.platform_config_c);
    } else {
      GeneratedVm gen;
      gen.name = vms[idx].name;
      gen.tree = std::move(u.tree);
      gen.dts_text = std::move(u.dts_text);
      gen.dtb = std::move(u.dtb);
      gen.config = std::move(u.config);
      gen.qemu_command = std::move(u.qemu_command);
      result.vms.push_back(std::move(gen));
    }
  }

  const bool aborted = abort.load(std::memory_order_relaxed);
  if (!aborted) {
    std::vector<baogen::VmConfig> vm_configs;
    vm_configs.reserve(result.vms.size());
    for (const GeneratedVm& vm : result.vms) vm_configs.push_back(vm.config);
    result.vm_config_c = baogen::render_config_c(
        baogen::assemble_config(std::move(vm_configs)));
  }

  result.trace.complete = !aborted;
  result.trace.total_ms = ms_since(run_start);
  result.ok = result.error_count() == 0;
  return result;
}

}  // namespace llhsc::core

#include "core/pipeline.hpp"

#include "dts/printer.hpp"
#include "fdt/fdt.hpp"

namespace llhsc::core {

Pipeline::Pipeline(const feature::FeatureModel& model,
                   std::vector<feature::FeatureId> exclusive,
                   const delta::ProductLine& product_line,
                   const schema::SchemaSet& schemas, PipelineOptions options)
    : model_(&model),
      exclusive_(std::move(exclusive)),
      product_line_(&product_line),
      schemas_(&schemas),
      options_(options) {}

PipelineResult Pipeline::run(const std::vector<VmSpec>& vms) {
  PipelineResult result;

  // -- Stage 1: resource allocation (§IV-A) --
  if (options_.check_allocation) {
    checkers::ResourceAllocationChecker rac(*model_, exclusive_,
                                            options_.backend);
    std::vector<std::set<std::string>> features;
    features.reserve(vms.size());
    for (const VmSpec& vm : vms) features.push_back(vm.features);
    checkers::Findings alloc = rac.check(features);
    result.findings.insert(result.findings.end(), alloc.begin(), alloc.end());
    if (options_.fail_fast && checkers::error_count(result.findings) > 0) {
      return result;
    }
  }

  // -- Stage 2: delta application (§III-B) --
  std::set<std::string> platform_features;
  for (const VmSpec& vm : vms) {
    platform_features.insert(vm.features.begin(), vm.features.end());
  }
  for (const VmSpec& vm : vms) {
    auto tree = product_line_->derive(vm.features, result.diagnostics);
    if (tree == nullptr) {
      if (options_.fail_fast) return result;
      continue;
    }
    GeneratedVm gen;
    gen.name = vm.name;
    gen.tree = std::move(tree);
    result.vms.push_back(std::move(gen));
  }
  result.platform_tree =
      product_line_->derive(platform_features, result.diagnostics);
  if (result.diagnostics.has_errors() && options_.fail_fast) return result;

  // -- Stages 3+4: syntactic and semantic checks per generated DTS --
  auto check_tree = [&](const dts::Tree& tree) {
    if (options_.check_lint) {
      checkers::Findings f = checkers::LintChecker().check(tree);
      result.findings.insert(result.findings.end(), f.begin(), f.end());
    }
    if (options_.check_syntax) {
      checkers::SyntacticChecker syn(*schemas_, options_.backend);
      checkers::Findings f = syn.check(tree);
      result.findings.insert(result.findings.end(), f.begin(), f.end());
    }
    if (options_.check_semantics) {
      checkers::SemanticChecker sem(options_.backend);
      checkers::Findings f = sem.check(tree);
      result.findings.insert(result.findings.end(), f.begin(), f.end());
    }
  };
  for (const GeneratedVm& vm : result.vms) check_tree(*vm.tree);
  if (options_.check_platform && result.platform_tree != nullptr) {
    check_tree(*result.platform_tree);
  }
  if (checkers::error_count(result.findings) > 0 && options_.fail_fast) {
    return result;
  }

  // -- Stage 5: artifact emission --
  std::vector<baogen::VmConfig> vm_configs;
  for (GeneratedVm& vm : result.vms) {
    vm.dts_text = dts::print_dts(*vm.tree);
    if (options_.emit_dtb) {
      if (auto blob = fdt::emit(*vm.tree, result.diagnostics)) {
        vm.dtb = std::move(*blob);
      }
    }
    vm.config = baogen::extract_vm(*vm.tree, vm.name, result.diagnostics);
    baogen::QemuOptions qemu;
    qemu.kernel_image = vm.name + "image.bin";
    qemu.dtb_path = vm.name + ".dtb";
    vm.qemu_command = baogen::render_qemu_command(vm.config, qemu);
    vm_configs.push_back(vm.config);
  }
  if (result.platform_tree != nullptr) {
    result.platform_dts_text = dts::print_dts(*result.platform_tree);
    if (options_.emit_dtb) {
      if (auto blob = fdt::emit(*result.platform_tree, result.diagnostics)) {
        result.platform_dtb = std::move(*blob);
      }
    }
    result.platform_config =
        baogen::extract_platform(*result.platform_tree, result.diagnostics);
    result.platform_config_c =
        baogen::render_platform_c(result.platform_config);
  }
  result.vm_config_c =
      baogen::render_config_c(baogen::assemble_config(std::move(vm_configs)));

  result.ok = result.error_count() == 0;
  return result;
}

}  // namespace llhsc::core

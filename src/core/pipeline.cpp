#include "core/pipeline.hpp"

#include <atomic>
#include <chrono>
#include <functional>

#include "checkers/graph/graph.hpp"
#include "checkers/graph/rules.hpp"
#include "dts/printer.hpp"
#include "fdt/fdt.hpp"
#include "obs/summary.hpp"
#include "support/thread_pool.hpp"

namespace llhsc::core {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Everything one worker produces for one tree (a VM, or the platform as the
/// last unit). Findings arrive as per-stage chunks, each location-sorted
/// before it is appended, so the merged report is independent of how the
/// units were scheduled across threads. The unit's obs events (stage spans +
/// solver/planner counters) travel the same way and are reduced into
/// StageTrace rows at merge time.
struct UnitResult {
  std::unique_ptr<dts::Tree> tree;
  checkers::Findings findings;
  support::DiagnosticEngine diagnostics;
  std::vector<obs::Event> events;
  /// The unit's device graph, kept past the per-unit stages so the merge
  /// can run the cross-unit exclusive-provider analysis over VM graphs.
  std::shared_ptr<const checkers::graph::DeviceGraph> graph;

  std::string dts_text;
  std::vector<uint8_t> dtb;
  baogen::VmConfig config;
  std::string qemu_command;
  baogen::PlatformConfig platform_config;
  std::string platform_config_c;

  /// The fail-fast abort fired before this unit started.
  bool skipped = false;
};

/// Reduces an event stream into StageTrace rows (docs/observability.md):
/// one row per stage span, counters attributed by (unit, scope).
void append_reduced_stages(const std::vector<obs::Event>& events,
                           std::vector<StageTrace>& out) {
  obs::Summary summary = obs::reduce(events);
  for (const obs::StageSummary& row : summary.stages) {
    out.push_back(StageTrace{row.unit, row.stage, row.wall_ms,
                             row.solver_checks, row.findings,
                             row.queries_issued, row.queries_pruned,
                             row.cache_hits, row.cache_errors});
  }
}

}  // namespace

Pipeline::Pipeline(const feature::FeatureModel& model,
                   std::vector<feature::FeatureId> exclusive,
                   const delta::ProductLine& product_line,
                   const schema::SchemaSet& schemas, PipelineOptions options)
    : model_(&model),
      exclusive_(std::move(exclusive)),
      product_line_(&product_line),
      schemas_(&schemas),
      options_(options) {}

PipelineResult Pipeline::run(const std::vector<VmSpec>& vms) {
  const Clock::time_point run_start = Clock::now();
  PipelineResult result;
  const unsigned jobs = support::ThreadPool::resolve_jobs(options_.jobs);
  result.trace.jobs = jobs;

  // -- Stage 1: resource allocation (§IV-A) --
  // Inherently global (exclusivity reasons across every VM at once), so it
  // runs serially before the per-VM units fan out. Its events (and the
  // reduced StageTrace row) lead the merged stream.
  obs::TraceSink alloc_sink;
  if (options_.check_allocation) {
    {
      obs::ScopedSink sink_guard(&alloc_sink);
      obs::ScopedUnit unit_guard("*");
      obs::ScopedScope scope_guard("allocation");
      obs::Span span("stage.allocation", "stage");
      checkers::ResourceAllocationChecker rac(*model_, exclusive_,
                                              options_.backend);
      std::vector<std::set<std::string>> features;
      features.reserve(vms.size());
      for (const VmSpec& vm : vms) features.push_back(vm.features);
      checkers::Findings alloc = rac.check(features);
      checkers::sort_by_location(alloc);
      obs::count("stage.findings", "stage",
                 static_cast<int64_t>(alloc.size()));
      result.findings.insert(result.findings.end(), alloc.begin(),
                             alloc.end());
    }
    result.events = alloc_sink.take();
    append_reduced_stages(result.events, result.trace.stages);
    if (options_.fail_fast && checkers::error_count(result.findings) > 0) {
      result.trace.complete = false;
      result.trace.total_ms = ms_since(run_start);
      result.ok = false;
      return result;
    }
  }

  // -- Stages 2-5 as independent work units: one per VM, platform last --
  std::set<std::string> platform_features;
  for (const VmSpec& vm : vms) {
    platform_features.insert(vm.features.begin(), vm.features.end());
  }

  const size_t unit_count = vms.size() + 1;
  std::vector<UnitResult> units(unit_count);
  // Fail-fast across units is best-effort: an error in one unit stops units
  // that have not started yet; units already running finish their current
  // stage. Everything collected is merged regardless.
  std::atomic<bool> abort{false};

  // The stage logic for one unit. Stage identities and counters are
  // recorded as obs events into the ambient (per-unit) sink; StageTrace
  // rows are reduced from them at merge time.
  auto unit_body = [&](size_t idx, UnitResult& u, bool is_platform) {
    // Stage 2: delta application (§III-B).
    {
      obs::ScopedScope scope_guard("derive");
      obs::Span span("stage.derive", "stage");
      u.tree = product_line_->derive(
          is_platform ? platform_features : vms[idx].features, u.diagnostics);
    }
    if (u.tree == nullptr || u.diagnostics.has_errors()) {
      if (options_.fail_fast) abort.store(true, std::memory_order_relaxed);
      if (u.tree == nullptr) return;
    }

    // Stages 3+4 (+ lint): each stage is one chunk; sorted on arrival.
    // `span_name` is the stage's span identity ("stage." + stage); both are
    // literals because spans keep only the pointer until they record.
    // Returns false when fail-fast ends the unit at this stage.
    auto run_stage = [&](const char* stage, const char* span_name,
                         const std::function<checkers::Findings()>& fn)
        -> bool {
      checkers::Findings f;
      {
        obs::ScopedScope scope_guard(stage);
        obs::Span span(span_name, "stage");
        f = fn();
        obs::count("stage.findings", "stage", static_cast<int64_t>(f.size()));
      }
      checkers::sort_by_location(f);
      const bool had_errors = checkers::error_count(f) > 0;
      u.findings.insert(u.findings.end(), f.begin(), f.end());
      if (had_errors && options_.fail_fast) {
        abort.store(true, std::memory_order_relaxed);
        return false;
      }
      return true;
    };

    const bool check_this = !is_platform || options_.check_platform;
    if (check_this && options_.check_lint) {
      if (!run_stage("lint", "stage.lint", [&] {
            return checkers::LintChecker().check(*u.tree);
          })) {
        return;
      }
    }
    if (check_this && options_.check_graph) {
      if (!run_stage("graph", "stage.graph", [&] {
            u.graph = std::make_shared<const checkers::graph::DeviceGraph>(
                checkers::graph::DeviceGraph::build(*u.tree));
            checkers::graph::GraphChecker checker{
                checkers::graph::RuleOptions{}};
            return checker.check(*u.graph);
          })) {
        return;
      }
    }
    if (check_this && options_.check_syntax) {
      if (!run_stage("syntactic", "stage.syntactic", [&] {
            checkers::SyntacticChecker syn(*schemas_, options_.backend);
            return syn.check(*u.tree);
          })) {
        return;
      }
    }
    if (check_this && options_.check_semantics) {
      if (!run_stage("semantic", "stage.semantic", [&] {
            checkers::SemanticOptions sem_options;
            sem_options.solver_timeout_ms = options_.solver_timeout_ms;
            sem_options.plan = options_.plan_queries;
            sem_options.cache_dir = options_.cache_dir;
            checkers::SemanticChecker sem(options_.backend, sem_options);
            return sem.check(*u.tree);
          })) {
        return;
      }
    }

    // Stage 5: artifact emission.
    {
      obs::ScopedScope scope_guard("emit");
      obs::Span span("stage.emit", "stage");
      u.dts_text = dts::print_dts(*u.tree);
      if (options_.emit_dtb) {
        if (auto blob = fdt::emit(*u.tree, u.diagnostics)) {
          u.dtb = std::move(*blob);
        }
      }
      if (is_platform) {
        u.platform_config = baogen::extract_platform(*u.tree, u.diagnostics);
        u.platform_config_c = baogen::render_platform_c(u.platform_config);
      } else {
        u.config = baogen::extract_vm(*u.tree, vms[idx].name, u.diagnostics);
        baogen::QemuOptions qemu;
        qemu.kernel_image = vms[idx].name + "image.bin";
        qemu.dtb_path = vms[idx].name + ".dtb";
        u.qemu_command = baogen::render_qemu_command(u.config, qemu);
      }
    }
  };

  auto run_unit = [&](size_t idx) {
    UnitResult& u = units[idx];
    if (options_.fail_fast && abort.load(std::memory_order_relaxed)) {
      u.skipped = true;
      return;
    }
    const bool is_platform = idx == vms.size();
    const std::string unit_name = is_platform ? "platform" : vms[idx].name;
    // One sink per unit: events from concurrent units never interleave, and
    // the merge below orders them by declaration index, so the trace is as
    // deterministic as the findings.
    obs::TraceSink unit_sink;
    {
      obs::ScopedSink sink_guard(&unit_sink);
      obs::ScopedUnit unit_guard(unit_name);
      unit_body(idx, u, is_platform);
    }
    u.events = unit_sink.take();
  };

  if (jobs <= 1) {
    for (size_t idx = 0; idx < unit_count; ++idx) run_unit(idx);
  } else {
    support::ThreadPool pool(jobs);
    support::parallel_for(pool, unit_count, run_unit);
  }

  // -- Deterministic merge in VM declaration order (platform last) --
  for (size_t idx = 0; idx < unit_count; ++idx) {
    UnitResult& u = units[idx];
    if (u.skipped) continue;
    result.findings.insert(result.findings.end(), u.findings.begin(),
                           u.findings.end());
    result.diagnostics.merge(u.diagnostics);
    append_reduced_stages(u.events, result.trace.stages);
    result.events.insert(result.events.end(),
                         std::make_move_iterator(u.events.begin()),
                         std::make_move_iterator(u.events.end()));
    if (u.tree == nullptr) continue;
    if (idx == vms.size()) {
      result.platform_tree = std::move(u.tree);
      result.platform_dts_text = std::move(u.dts_text);
      result.platform_dtb = std::move(u.dtb);
      result.platform_config = std::move(u.platform_config);
      result.platform_config_c = std::move(u.platform_config_c);
    } else {
      GeneratedVm gen;
      gen.name = vms[idx].name;
      gen.tree = std::move(u.tree);
      gen.dts_text = std::move(u.dts_text);
      gen.dtb = std::move(u.dtb);
      gen.config = std::move(u.config);
      gen.qemu_command = std::move(u.qemu_command);
      result.vms.push_back(std::move(gen));
    }
  }

  // -- Cross-unit graph analysis over the VM graphs (platform excluded) --
  // Serial by design, after the deterministic merge: its findings always
  // follow every unit's, regardless of --jobs.
  const bool aborted = abort.load(std::memory_order_relaxed);
  if (options_.check_graph && !aborted && vms.size() >= 2) {
    std::vector<checkers::graph::UnitGraph> vm_graphs;
    for (size_t idx = 0; idx < vms.size(); ++idx) {
      if (units[idx].graph != nullptr) {
        vm_graphs.push_back({vms[idx].name, units[idx].graph.get()});
      }
    }
    if (vm_graphs.size() >= 2) {
      obs::TraceSink cross_sink;
      {
        obs::ScopedSink sink_guard(&cross_sink);
        obs::ScopedUnit unit_guard("*");
        obs::ScopedScope scope_guard("graph");
        obs::Span span("stage.graph-cross", "stage");
        checkers::Findings cross =
            checkers::graph::check_exclusive_providers(vm_graphs);
        checkers::sort_by_location(cross);
        obs::count("stage.findings", "stage",
                   static_cast<int64_t>(cross.size()));
        result.findings.insert(result.findings.end(), cross.begin(),
                               cross.end());
      }
      std::vector<obs::Event> cross_events = cross_sink.take();
      append_reduced_stages(cross_events, result.trace.stages);
      result.events.insert(result.events.end(),
                           std::make_move_iterator(cross_events.begin()),
                           std::make_move_iterator(cross_events.end()));
    }
  }

  if (!aborted) {
    std::vector<baogen::VmConfig> vm_configs;
    vm_configs.reserve(result.vms.size());
    for (const GeneratedVm& vm : result.vms) vm_configs.push_back(vm.config);
    result.vm_config_c = baogen::render_config_c(
        baogen::assemble_config(std::move(vm_configs)));
  }

  result.trace.complete = !aborted;
  result.trace.total_ms = ms_since(run_start);
  result.ok = result.error_count() == 0;
  return result;
}

}  // namespace llhsc::core

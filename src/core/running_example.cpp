#include "core/running_example.hpp"

namespace llhsc::core {

const char* running_example_core_dts() {
  return R"(/dts-v1/;

/ {
    #address-cells = <2>;
    #size-cells = <2>;

    memory@40000000 {
        device_type = "memory";
        reg = <0x0 0x40000000 0x0 0x20000000
               0x0 0x60000000 0x0 0x20000000>;
    };

    /include/ "cpus.dtsi"

    uart0: uart@20000000 {
        compatible = "ns16550a";
        reg = <0x0 0x20000000 0x0 0x1000>;
    };

    uart1: uart@30000000 {
        compatible = "ns16550a";
        reg = <0x0 0x30000000 0x0 0x1000>;
    };
};
)";
}

const char* running_example_cpus_dtsi() {
  return R"(cpus {
    #address-cells = <0x1>;
    #size-cells = <0x0>;

    cpu@0 {
        compatible = "arm,cortex-a53";
        device_type = "cpu";
        enable-method = "psci";
        reg = <0x0>;
    };

    cpu@1 {
        compatible = "arm,cortex-a53";
        device_type = "cpu";
        enable-method = "psci";
        reg = <0x1>;
    };
};
)";
}

const char* running_example_core_dts_with_uart_clash() {
  // The §I-A mistake: the second UART's base address collides with the
  // second memory bank [0x60000000, 0x80000000). Syntactically flawless.
  return R"(/dts-v1/;

/ {
    #address-cells = <2>;
    #size-cells = <2>;

    memory@40000000 {
        device_type = "memory";
        reg = <0x0 0x40000000 0x0 0x20000000
               0x0 0x60000000 0x0 0x20000000>;
    };

    /include/ "cpus.dtsi"

    uart0: uart@20000000 {
        compatible = "ns16550a";
        reg = <0x0 0x20000000 0x0 0x1000>;
    };

    uart1: uart@60000000 {
        compatible = "ns16550a";
        reg = <0x0 0x60000000 0x0 0x1000>;
    };
};
)";
}

const char* running_example_deltas() {
  // Declaration order d3, d4, d1, d2 reproduces the paper's linearisations
  // (d3 < d4 < d1|d2) under the declaration-order tiebreak.
  //
  // d4's guard is strengthened from the paper's plain `when memory`: without
  // the (veth0 || veth1) conjunct d4 would rewrite the banks to 32-bit form
  // even in non-virtualised products where d3 never ran, leaving an
  // inconsistent 2/2-cell tree with 2-cell reg entries.
  return R"(delta d3 when (veth0 || veth1) {
    modifies / {
        #address-cells = <1>;
        #size-cells = <1>;
        vEthernet {
            #address-cells = <1>;
            #size-cells = <1>;
        };
    }
}

delta d4 after d3 when (memory && (veth0 || veth1)) {
    modifies memory@40000000 {
        reg = <0x40000000 0x20000000
               0x60000000 0x20000000>;
    }
}

delta d1 after d3 when veth0 {
    adds binding vEthernet {
        veth0@80000000 {
            compatible = "veth";
            reg = <0x80000000 0x10000000>;
            id = <0>;
        };
    }
}

delta d2 after d3 when veth1 {
    adds binding vEthernet {
        veth1@70000000 {
            compatible = "veth";
            reg = <0x70000000 0x10000000>;
            id = <1>;
        };
    }
}

delta d5 after d3 when ((veth0 || veth1) && uart@20000000) {
    modifies uart@20000000 {
        reg = <0x20000000 0x1000>;
    }
}

delta d6 after d3 when ((veth0 || veth1) && uart@30000000) {
    modifies uart@30000000 {
        reg = <0x30000000 0x1000>;
    }
}

delta rm_cpu0 when !cpu@0 {
    removes cpu@0;
}

delta rm_cpu1 when !cpu@1 {
    removes cpu@1;
}

delta rm_uart0 when !uart@20000000 {
    removes uart@20000000;
}

delta rm_uart1 when !uart@30000000 {
    removes uart@30000000;
}
)";
}

dts::SourceManager running_example_sources() {
  dts::SourceManager sm;
  sm.register_file("cpus.dtsi", running_example_cpus_dtsi());
  return sm;
}

namespace {

std::unique_ptr<delta::ProductLine> build_product_line(
    support::DiagnosticEngine& diags, bool with_uart_clash, bool omit_d4) {
  dts::SourceManager sm = running_example_sources();
  const char* core_text = with_uart_clash
                              ? running_example_core_dts_with_uart_clash()
                              : running_example_core_dts();
  auto core = dts::parse_dts(core_text, "custom-sbc.dts", sm, diags);
  if (core == nullptr || diags.has_errors()) return nullptr;
  auto deltas =
      delta::parse_deltas(running_example_deltas(), "custom-sbc.deltas", diags);
  if (diags.has_errors()) return nullptr;
  if (omit_d4) {
    std::erase_if(deltas,
                  [](const delta::DeltaModule& d) { return d.name == "d4"; });
  }
  return std::make_unique<delta::ProductLine>(std::move(core),
                                              std::move(deltas));
}

}  // namespace

std::unique_ptr<delta::ProductLine> running_example_product_line(
    support::DiagnosticEngine& diags, bool with_uart_clash) {
  return build_product_line(diags, with_uart_clash, /*omit_d4=*/false);
}

std::unique_ptr<delta::ProductLine> running_example_product_line_without_d4(
    support::DiagnosticEngine& diags) {
  return build_product_line(diags, /*with_uart_clash=*/false, /*omit_d4=*/true);
}

std::set<std::string> fig1b_features() {
  return {"CustomSBC", "memory",         "cpus",
          "cpu@0",     "uarts",          "uart@20000000",
          "uart@30000000", "vEthernet",  "veth0"};
}

std::set<std::string> fig1c_features() {
  return {"CustomSBC", "memory",         "cpus",
          "cpu@1",     "uarts",          "uart@20000000",
          "uart@30000000", "vEthernet",  "veth1"};
}

std::vector<feature::FeatureId> exclusive_cpus(
    const feature::FeatureModel& model) {
  std::vector<feature::FeatureId> out;
  if (auto cpu0 = model.find("cpu@0")) out.push_back(*cpu0);
  if (auto cpu1 = model.find("cpu@1")) out.push_back(*cpu1);
  return out;
}

}  // namespace llhsc::core

// The llhsc pipeline — the Fig. 2 workflow. Inputs: a feature model with
// exclusive resources, a DTS product line (core + deltas), binding schemas,
// and one feature configuration per VM. Stages:
//
//   1. resource-allocation check (§IV-A) of the VM configurations
//   2. delta activation/ordering/application -> one DTS per VM, plus the
//      platform DTS derived from the union of VM selections (§III-A)
//   3. syntactic check (§IV-B) of every generated DTS
//   4. semantic check (§IV-C) of every generated DTS
//   5. artifact emission: DTS text, DTB blobs, Bao platform + VM config C
//
// Every finding carries delta provenance, so a failing product names the
// delta module that caused it.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "baogen/baogen.hpp"
#include "checkers/finding.hpp"
#include "checkers/lint.hpp"
#include "checkers/resource_allocation.hpp"
#include "checkers/semantic.hpp"
#include "checkers/syntactic.hpp"
#include "core/trace.hpp"
#include "delta/delta.hpp"
#include "feature/analysis.hpp"
#include "obs/obs.hpp"
#include "schema/schema.hpp"

namespace llhsc::core {

struct VmSpec {
  std::string name;
  std::set<std::string> features;
};

struct PipelineOptions {
  smt::Backend backend = smt::Backend::kBuiltin;
  bool check_allocation = true;
  bool check_syntax = true;
  bool check_semantics = true;
  /// dtc-style structural warnings on every generated DTS.
  bool check_lint = true;
  /// Device-graph dataflow rules (checkers/graph/) on every generated DTS,
  /// plus the cross-unit exclusive-provider analysis over the VM graphs.
  bool check_graph = true;
  /// Also run the checkers on the derived platform DTS.
  bool check_platform = true;
  /// Emit DTB blobs for every generated DTS.
  bool emit_dtb = true;
  /// Stop at the first failing stage (true) or run all checks (false).
  /// Findings and trace entries collected before the stop are always kept
  /// and merged — fail-fast bounds the work, never the report.
  bool fail_fast = false;
  /// Worker threads for the per-VM stages 2-5 (1 = serial, 0 = one per
  /// hardware thread). Every VM is an independent work unit with its own
  /// solver and diagnostics; results merge in VM declaration order, so
  /// findings, diagnostics and artifacts are byte-identical for any value.
  unsigned jobs = 1;
  /// Per-tree wall-clock budget for the semantic checker's solver work, in
  /// ms (0 = unlimited). Expiry yields a kSolverTimeout error finding.
  uint64_t solver_timeout_ms = 0;
  /// Route semantic-checker queries through the smt::QueryPlanner (sweep-
  /// line / hash-bucket prefilters + batched assumption-guarded solving).
  /// Findings are byte-identical either way; false restores the exhaustive
  /// one-query-per-pair path for A/B comparison.
  bool plan_queries = true;
  /// Directory for the persistent query-result cache shared by every unit
  /// (empty = no cache). With a warm cache the semantic stages issue zero
  /// solver queries on unchanged input. See smt::QueryCache for the
  /// invalidation scheme.
  std::string cache_dir;
};

struct GeneratedVm {
  std::string name;
  std::unique_ptr<dts::Tree> tree;
  std::string dts_text;
  std::vector<uint8_t> dtb;
  baogen::VmConfig config;
  /// §V: the QEMU invocation equivalent to this VM's configuration.
  std::string qemu_command;
};

struct PipelineResult {
  bool ok = false;
  checkers::Findings findings;
  support::DiagnosticEngine diagnostics;
  /// Per-stage wall time / solver checks / finding counts, reduced from
  /// `events` (one row per stage span). Populated even when the run aborts
  /// early (trace.complete is false then).
  PipelineTrace trace;
  /// The raw obs event stream the trace was reduced from: stage spans,
  /// per-query solver/planner spans, cache counters. Ordered allocation
  /// first, then per unit in declaration order. Feeds `--profile`
  /// (obs::chrome_trace_json); empty when span capture is disabled.
  std::vector<obs::Event> events;

  std::vector<GeneratedVm> vms;
  std::unique_ptr<dts::Tree> platform_tree;
  std::string platform_dts_text;
  std::vector<uint8_t> platform_dtb;

  baogen::PlatformConfig platform_config;
  std::string platform_config_c;   // Listing 3
  std::string vm_config_c;         // Listing 6

  [[nodiscard]] size_t error_count() const {
    return checkers::error_count(findings) + diagnostics.error_count();
  }
};

class Pipeline {
 public:
  Pipeline(const feature::FeatureModel& model,
           std::vector<feature::FeatureId> exclusive,
           const delta::ProductLine& product_line,
           const schema::SchemaSet& schemas, PipelineOptions options = {});

  /// Runs the full workflow for the given VM configurations.
  [[nodiscard]] PipelineResult run(const std::vector<VmSpec>& vms);

 private:
  const feature::FeatureModel* model_;
  std::vector<feature::FeatureId> exclusive_;
  const delta::ProductLine* product_line_;
  const schema::SchemaSet* schemas_;
  PipelineOptions options_;
};

}  // namespace llhsc::core

// The paper's running example (CustomSBC), reconstructed once and shared by
// tests, examples and benchmarks: core DTS (Listing 1 + Listing 2 via
// cpus.dtsi), delta modules (Listing 4 plus the removal/rewrite deltas a
// complete product line needs), feature model (Fig. 1a), VM configurations
// (Fig. 1b / 1c) and the two fault-injected variants used in §I-A and §IV-C.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "delta/delta.hpp"
#include "dts/parser.hpp"
#include "feature/analysis.hpp"

namespace llhsc::core {

/// Listing 1 — the core DTS (includes "cpus.dtsi").
[[nodiscard]] const char* running_example_core_dts();
/// Listing 2 — the cluster binding included by the core DTS.
[[nodiscard]] const char* running_example_cpus_dtsi();
/// Listing 1 with the §I-A fault injected: the second UART's base address
/// clashes with the second memory bank (0x60000000).
[[nodiscard]] const char* running_example_core_dts_with_uart_clash();

/// Listing 4 — the delta modules in the delta language. Beyond the paper's
/// d1..d4, the complete product line needs: d5/d6 (rewrite UART regs to
/// 32-bit addressing once d3 switches the root cells — the paper's deltas
/// leave the UARTs stale, which its own semantic checker would reject) and
/// rm_* deltas removing unselected hardware from each VM's DTS.
[[nodiscard]] const char* running_example_deltas();

/// A SourceManager preloaded with cpus.dtsi.
[[nodiscard]] dts::SourceManager running_example_sources();

/// Parses the core (optionally the fault-injected variant) and the deltas
/// into a ProductLine. Returns nullptr on (unexpected) parse errors.
[[nodiscard]] std::unique_ptr<delta::ProductLine> running_example_product_line(
    support::DiagnosticEngine& diags, bool with_uart_clash = false);

/// Variant with delta d4 omitted — the §IV-C scenario: d3 truncates the
/// address width but nobody rewrites the memory banks, so the generated DTS
/// has four 32-bit banks colliding at 0x0.
[[nodiscard]] std::unique_ptr<delta::ProductLine>
running_example_product_line_without_d4(support::DiagnosticEngine& diags);

/// Fig. 1b — VM 1 features: cpu@0, both UARTs, veth0.
[[nodiscard]] std::set<std::string> fig1b_features();
/// Fig. 1c — VM 2 features: cpu@1, both UARTs, veth1.
[[nodiscard]] std::set<std::string> fig1c_features();

/// The exclusive resources of the running example (the CPU cores).
[[nodiscard]] std::vector<feature::FeatureId> exclusive_cpus(
    const feature::FeatureModel& model);

}  // namespace llhsc::core

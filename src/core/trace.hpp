// Pipeline observability: one StageTrace per (work unit, stage) pair that
// actually ran. Since PR 5 the rows are a *reduction* of the obs event
// stream (src/obs/summary.hpp) — the pipeline records stage spans and the
// solver/planner layers record counters, and this struct is rebuilt from
// them, merged in unit declaration order, so the trace is as deterministic
// as the findings (timings excepted — wall_ms is measured, everything else
// is exact). Rendered two ways: a JSON document with a top-level
// "schema_version": 1 (--trace-json, schema in docs/pipeline.md and
// docs/observability.md) and an aligned summary table (--verbose).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace llhsc::core {

struct StageTrace {
  /// VM name, "platform", or "*" for whole-run stages (allocation).
  std::string unit;
  /// "allocation" | "derive" | "lint" | "syntactic" | "semantic" | "emit".
  std::string stage;
  double wall_ms = 0.0;
  /// Solver check() calls issued by this stage (0 for solver-free stages).
  uint64_t solver_checks = 0;
  /// Findings this stage produced.
  size_t findings = 0;
  // Query-planner counters (semantic stage only; zero elsewhere and when
  // planning is disabled). queries_issued counts checks that reached the
  // backend, queries_pruned the checks a prefilter decided structurally,
  // cache_hits the checks answered from the persistent query cache.
  uint64_t queries_issued = 0;
  uint64_t queries_pruned = 0;
  uint64_t cache_hits = 0;
  /// 1 when this stage requested the persistent cache but could not use it
  /// (unwritable/non-directory --cache-dir); the stage ran uncached.
  uint64_t cache_errors = 0;
};

struct PipelineTrace {
  /// Worker threads the run used (1 = serial).
  unsigned jobs = 1;
  /// End-to-end wall time of Pipeline::run.
  double total_ms = 0.0;
  /// False when fail_fast aborted the run before every stage executed; the
  /// recorded stages are still valid partial data.
  bool complete = true;
  std::vector<StageTrace> stages;

  [[nodiscard]] uint64_t total_solver_checks() const;
  [[nodiscard]] size_t total_findings() const;
  [[nodiscard]] uint64_t total_queries_issued() const;
  [[nodiscard]] uint64_t total_queries_pruned() const;
  [[nodiscard]] uint64_t total_cache_hits() const;
  [[nodiscard]] uint64_t total_cache_errors() const;

  /// The --trace-json document (stable key order, 3-decimal timings).
  [[nodiscard]] std::string to_json() const;
  /// The --verbose summary table.
  [[nodiscard]] std::string render_table() const;
};

}  // namespace llhsc::core

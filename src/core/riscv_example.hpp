// A second, larger platform: an RV64 "virt"-class SBC. The paper's §V notes
// the generated configurations "are compatible with SBCs that use aarch64 or
// RV64 architecture"; this fixture exercises that claim with a materially
// different hardware shape — 4 harts with interrupt controllers per hart
// context, a PLIC, a CLINT, two UARTs, virtio-mmio slots and a flash node —
// plus its own feature model and product line (hart partitioning across up
// to 4 VMs, optional virtio devices per VM).
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "delta/delta.hpp"
#include "dts/parser.hpp"
#include "feature/analysis.hpp"
#include "schema/schema.hpp"

namespace llhsc::core {

/// The RV64 core DTS (includes "rv64-cpus.dtsi" and "rv64-soc.dtsi").
[[nodiscard]] const char* riscv_core_dts();
[[nodiscard]] const char* riscv_cpus_dtsi();
[[nodiscard]] const char* riscv_soc_dtsi();

/// Delta modules: per-VM 2-hart clusters, virtio slot assignment, and
/// hardware removal for unselected features.
[[nodiscard]] const char* riscv_deltas();

[[nodiscard]] dts::SourceManager riscv_sources();

/// Feature model: 4 XOR harts (exclusive), mandatory memory/plic/clint,
/// OR uarts, optional virtio slots with hart requirements.
[[nodiscard]] feature::FeatureModel riscv_feature_model();

[[nodiscard]] std::unique_ptr<delta::ProductLine> riscv_product_line(
    support::DiagnosticEngine& diags);

/// Schema set: the builtin set extended with riscv cpu, plic, clint and
/// virtio-mmio bindings.
[[nodiscard]] schema::SchemaSet riscv_schemas();

/// Exclusive resources (the harts).
[[nodiscard]] std::vector<feature::FeatureId> riscv_exclusive_harts(
    const feature::FeatureModel& model);

/// Two disjoint 2-hart VM configurations.
[[nodiscard]] std::set<std::string> riscv_vm_a_features();
[[nodiscard]] std::set<std::string> riscv_vm_b_features();

}  // namespace llhsc::core

#include "baogen/baogen.hpp"

#include <algorithm>
#include <sstream>

#include "checkers/semantic.hpp"
#include "support/strings.hpp"

namespace llhsc::baogen {

namespace {

bool is_uart(const dts::Node& node) {
  if (node.base_name() == "uart" || node.base_name() == "serial") return true;
  if (const dts::Property* c = node.find_property("compatible")) {
    auto list = c->as_string_list();
    auto one = c->as_string();
    if (one) {
      return one->find("uart") != std::string::npos || *one == "ns16550a" ||
             *one == "arm,pl011";
    }
    if (list) {
      for (const std::string& s : *list) {
        if (s.find("uart") != std::string::npos || s == "ns16550a" ||
            s == "arm,pl011") {
          return true;
        }
      }
    }
  }
  return false;
}

bool is_veth(const dts::Node& node) {
  if (const dts::Property* c = node.find_property("compatible")) {
    if (c->as_string() == std::optional<std::string>("veth")) return true;
  }
  return node.base_name().rfind("veth", 0) == 0;
}

/// Regions of one node in tree order, via the shared semantic extractor.
std::vector<checkers::MemRegion> regions_of(
    const std::vector<checkers::MemRegion>& all, const std::string& path) {
  std::vector<checkers::MemRegion> out;
  for (const checkers::MemRegion& r : all) {
    if (r.path == path) out.push_back(r);
  }
  return out;
}

}  // namespace

PlatformConfig extract_platform(const dts::Tree& tree,
                                support::DiagnosticEngine& diags) {
  PlatformConfig platform;
  checkers::Findings scratch;
  auto all_regions = checkers::extract_regions(tree, scratch);

  tree.visit([&](const std::string& path, const dts::Node& node) {
    // Memory banks.
    const dts::Property* dt = node.find_property("device_type");
    if (dt != nullptr && dt->as_string() == std::optional<std::string>("memory")) {
      for (const checkers::MemRegion& r : regions_of(all_regions, path)) {
        platform.regions.push_back({r.base, r.size});
      }
    }
    // Console: first UART in tree order.
    if (is_uart(node) && !platform.console_base.has_value()) {
      auto rs = regions_of(all_regions, path);
      if (!rs.empty()) platform.console_base = rs[0].base;
    }
  });

  // CPU clusters: each node named cpus* contributes one cluster.
  const dts::Node* cpus = tree.find("/cpus");
  if (cpus != nullptr) {
    uint32_t cores = 0;
    for (const auto& child : cpus->children()) {
      if (child->base_name() == "cpu") ++cores;
    }
    if (cores == 0) {
      diags.warning("baogen", "cpus node has no cpu@N children");
    }
    platform.cluster_core_counts.push_back(cores);
    platform.cpu_num = cores;
  } else {
    diags.error("baogen", "platform DTS has no /cpus node");
  }
  return platform;
}

VmConfig extract_vm(const dts::Tree& tree, std::string name,
                    support::DiagnosticEngine& diags) {
  VmConfig vm;
  vm.name = std::move(name);
  checkers::Findings scratch;
  auto all_regions = checkers::extract_regions(tree, scratch);

  tree.visit([&](const std::string& path, const dts::Node& node) {
    const dts::Property* dt = node.find_property("device_type");
    if (dt != nullptr && dt->as_string() == std::optional<std::string>("memory")) {
      for (const checkers::MemRegion& r : regions_of(all_regions, path)) {
        vm.regions.push_back({r.base, r.size});
      }
      return;
    }
    if (is_veth(node)) {
      auto rs = regions_of(all_regions, path);
      if (!rs.empty()) {
        IpcRegion ipc;
        ipc.base = rs[0].base;
        ipc.size = rs[0].size;
        ipc.source = path;
        if (const dts::Property* id = node.find_property("id")) {
          ipc.shmem_id = id->as_u32().value_or(0);
        }
        vm.ipcs.push_back(std::move(ipc));
      }
      return;
    }
    if (is_uart(node)) {
      for (const checkers::MemRegion& r : regions_of(all_regions, path)) {
        DevRegion dev;
        dev.pa = r.base;
        dev.va = r.base;  // identity mapping, as in Listing 6
        dev.size = r.size;
        dev.source = path;
        vm.devs.push_back(std::move(dev));
      }
    }
  });

  // CPU affinity: bitmask over the physical core ids found under /cpus.
  if (const dts::Node* cpus = tree.find("/cpus")) {
    for (const auto& child : cpus->children()) {
      if (child->base_name() != "cpu") continue;
      ++vm.cpu_num;
      if (const dts::Property* reg = child->find_property("reg")) {
        if (auto id = reg->as_u32()) {
          if (*id < 32) vm.cpu_affinity |= 1u << *id;
        }
      }
    }
  }
  if (vm.cpu_num == 0) {
    diags.error("baogen", "VM '" + vm.name + "' has no CPU assigned");
  }

  if (!vm.regions.empty()) {
    // Entry point and image base: the lowest memory region.
    uint64_t lowest = UINT64_MAX;
    for (const MemRegion& r : vm.regions) lowest = std::min(lowest, r.base);
    vm.entry = lowest;
    vm.base_addr = lowest;
  } else {
    diags.error("baogen", "VM '" + vm.name + "' has no memory region");
  }
  return vm;
}

BaoConfig assemble_config(std::vector<VmConfig> vms) {
  BaoConfig config;
  config.vms = std::move(vms);
  for (const VmConfig& vm : config.vms) {
    for (const IpcRegion& ipc : vm.ipcs) {
      if (config.shmem_sizes.size() <= ipc.shmem_id) {
        config.shmem_sizes.resize(ipc.shmem_id + 1, 0);
      }
      config.shmem_sizes[ipc.shmem_id] =
          std::max(config.shmem_sizes[ipc.shmem_id], ipc.size);
    }
  }
  return config;
}

std::string render_platform_c(const PlatformConfig& platform) {
  std::ostringstream os;
  os << "#include <platform.h>\n\n";
  os << "struct platform_desc platform = {\n";
  os << "  .cpu_num = " << platform.cpu_num << ",\n";
  os << "  .region_num = " << platform.regions.size() << ",\n";
  os << "  .regions = (struct mem_region[]) {\n";
  for (const MemRegion& r : platform.regions) {
    os << "    { .base = " << support::hex(r.base) << ", .size = "
       << support::hex(r.size) << " },\n";
  }
  os << "  },\n";
  if (platform.console_base) {
    os << "\n  .console = { .base = " << support::hex(*platform.console_base)
       << " },\n";
  }
  os << "\n  .arch = {\n    .clusters = {\n      .num = "
     << platform.cluster_core_counts.size()
     << ", .core_num = (uint8_t[]) {";
  for (size_t i = 0; i < platform.cluster_core_counts.size(); ++i) {
    if (i > 0) os << ", ";
    os << platform.cluster_core_counts[i];
  }
  os << "}\n    },\n  }\n};\n";
  return os.str();
}

std::string render_config_c(const BaoConfig& config) {
  std::ostringstream os;
  os << "#include <config.h>\n\n";
  for (const VmConfig& vm : config.vms) {
    os << "VM_IMAGE(" << vm.name << ", " << vm.name << "image.bin);\n";
  }
  os << "\nstruct config config = {\n  CONFIG_HEADER\n";
  os << "  .vmlist_size = " << config.vms.size() << ",\n";
  os << "  .vmlist = {\n";
  for (const VmConfig& vm : config.vms) {
    os << "    { .image = {\n"
       << "        .base_addr = " << support::hex(vm.base_addr) << ",\n"
       << "        .load_addr = VM_IMAGE_OFFSET(" << vm.name << "),\n"
       << "        .size = VM_IMAGE_SIZE(" << vm.name << ")\n"
       << "      },\n";
    os << "      .entry = " << support::hex(vm.entry) << ",\n";
    // Affinity rendered in binary, as in Listing 6 (0b11).
    os << "      .cpu_affinity = 0b";
    bool any = false;
    for (int bit = 31; bit >= 0; --bit) {
      if (vm.cpu_affinity & (1u << bit)) any = true;
      if (any) os << ((vm.cpu_affinity >> bit) & 1);
    }
    if (!any) os << '0';
    os << ",\n";
    os << "      .platform = { .cpu_num = " << vm.cpu_num
       << ", .dev_num = " << vm.devs.size() << ",\n";
    os << "        .region_num = " << vm.regions.size() << ",\n";
    os << "        .regions = (struct mem_region[]) {\n";
    for (const MemRegion& r : vm.regions) {
      os << "          { .base = " << support::hex(r.base)
         << ", .size = " << support::hex(r.size) << " },\n";
    }
    os << "        },\n";
    os << "        .devs = (struct dev_region[]) {\n";
    for (const DevRegion& d : vm.devs) {
      if (!d.source.empty()) os << "          /* from " << d.source << " */\n";
      os << "          { .pa = " << support::hex(d.pa)
         << ", .va = " << support::hex(d.va)
         << ", .size = " << support::hex(d.size) << " },\n";
    }
    os << "        },\n      },\n";
    os << "      .ipc_num = " << vm.ipcs.size() << ",\n";
    os << "      .ipcs = (struct ipc[]) {\n";
    for (const IpcRegion& ipc : vm.ipcs) {
      if (!ipc.source.empty()) {
        os << "        { /* " << ipc.source << " */\n";
      } else {
        os << "        {\n";
      }
      os << "          .base = " << support::hex(ipc.base)
         << ", .size = " << support::hex(ipc.size) << ",\n"
         << "          .shmem_id = " << ipc.shmem_id << ",\n        },\n";
    }
    os << "      },\n    },\n";
  }
  os << "  },\n";
  os << "  .shmemlist_size = " << config.shmem_sizes.size() << ",\n";
  os << "  .shmemlist = (struct shmem[]) {\n";
  for (size_t i = 0; i < config.shmem_sizes.size(); ++i) {
    os << "    [" << i << "] = { .size = " << support::hex(config.shmem_sizes[i])
       << " },\n";
  }
  os << "  },\n};\n";
  return os.str();
}

std::string render_qemu_command(const VmConfig& vm,
                                const QemuOptions& options) {
  std::ostringstream os;
  os << options.qemu_binary << " \\\n";
  os << "  -machine " << options.machine << " -cpu " << options.cpu << " \\\n";
  os << "  -smp " << vm.cpu_num << " \\\n";
  // Memory size: sum of the VM's RAM regions, in MiB (QEMU's -m unit).
  uint64_t bytes = 0;
  for (const MemRegion& r : vm.regions) bytes += r.size;
  os << "  -m " << (bytes >> 20) << "M \\\n";
  os << "  -kernel " << options.kernel_image << " \\\n";
  os << "  -dtb " << options.dtb_path << " \\\n";
  os << "  -nographic";
  for (size_t i = 0; i < vm.devs.size(); ++i) {
    // UART MMIO windows ride on the machine model; expose them as serial
    // chardevs in declaration order.
    os << " \\\n  -serial mon:stdio";
    break;  // one console; further UARTs would need explicit chardev ids
  }
  for (const IpcRegion& ipc : vm.ipcs) {
    os << " \\\n  -object memory-backend-file,id=shmem" << ipc.shmem_id
       << ",share=on,mem-path=/dev/shm/llhsc-ipc" << ipc.shmem_id << ",size="
       << support::hex(ipc.size);
    os << " \\\n  -device ivshmem-plain,memdev=shmem" << ipc.shmem_id;
  }
  os << "\n";
  return os.str();
}

}  // namespace llhsc::baogen

// Bao hypervisor configuration generation — paper §II-C and §III-B. From a
// checked DTS, llhsc extracts the platform description (Listing 3) and per-VM
// configurations (Listing 6) and renders them as the C files Bao consumes.
// The extraction rules:
//   memory nodes (device_type = "memory")  -> mem_region entries
//   cpus/cpu@N                             -> cpu_num / clusters / affinity
//   uart nodes                             -> dev_region entries (pa == va),
//                                             first UART doubles as console
//   veth nodes (compatible = "veth")       -> ipc entries + shared memory
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dts/tree.hpp"
#include "support/diagnostics.hpp"

namespace llhsc::baogen {

struct MemRegion {
  uint64_t base = 0;
  uint64_t size = 0;
  friend bool operator==(const MemRegion&, const MemRegion&) = default;
};

struct DevRegion {
  uint64_t pa = 0;
  uint64_t va = 0;
  uint64_t size = 0;
  std::string source;  // node path, rendered as a comment
  friend bool operator==(const DevRegion& a, const DevRegion& b) {
    return a.pa == b.pa && a.va == b.va && a.size == b.size;
  }
};

struct IpcRegion {
  uint64_t base = 0;
  uint64_t size = 0;
  uint32_t shmem_id = 0;
  std::string source;
  friend bool operator==(const IpcRegion& a, const IpcRegion& b) {
    return a.base == b.base && a.size == b.size && a.shmem_id == b.shmem_id;
  }
};

/// Listing 3: struct platform_desc.
struct PlatformConfig {
  uint32_t cpu_num = 0;
  std::vector<MemRegion> regions;
  std::optional<uint64_t> console_base;
  /// One entry per cluster: number of cores.
  std::vector<uint32_t> cluster_core_counts;
};

/// Listing 6: one entry of config.vmlist.
struct VmConfig {
  std::string name = "vm";
  uint64_t entry = 0;
  uint64_t base_addr = 0;
  uint32_t cpu_num = 0;
  uint32_t cpu_affinity = 0;  // bitmask over physical core ids
  std::vector<MemRegion> regions;
  std::vector<DevRegion> devs;
  std::vector<IpcRegion> ipcs;
};

/// Listing 6: the whole config file (vmlist + shmemlist).
struct BaoConfig {
  std::vector<VmConfig> vms;
  /// shmemlist sizes indexed by shmem id.
  std::vector<uint64_t> shmem_sizes;
};

/// Extracts the platform description from a (platform) DTS.
[[nodiscard]] PlatformConfig extract_platform(const dts::Tree& tree,
                                              support::DiagnosticEngine& diags);

/// Extracts one VM's configuration from its DTS.
[[nodiscard]] VmConfig extract_vm(const dts::Tree& tree, std::string name,
                                  support::DiagnosticEngine& diags);

/// Assembles the config file model from per-VM configs; shared-memory sizes
/// are derived from the ipc regions (one shmem per distinct id, sized to the
/// largest ipc mapped to it).
[[nodiscard]] BaoConfig assemble_config(std::vector<VmConfig> vms);

/// Renders Listing 3 (platform.c).
[[nodiscard]] std::string render_platform_c(const PlatformConfig& platform);

/// Renders Listing 6 (config.c).
[[nodiscard]] std::string render_config_c(const BaoConfig& config);

/// §V: the generated configurations "can be utilized not only in Bao ... but
/// also in other virtualization solutions such as QEMU". Renders a QEMU
/// system invocation for one VM: machine, smp/memory sizing from the config,
/// the DTB, and serial/ipc device arguments.
struct QemuOptions {
  std::string qemu_binary = "qemu-system-aarch64";
  std::string machine = "virt";
  std::string cpu = "cortex-a53";
  std::string kernel_image = "vmimage.bin";
  std::string dtb_path = "vm.dtb";
};

[[nodiscard]] std::string render_qemu_command(const VmConfig& vm,
                                              const QemuOptions& options = {});

}  // namespace llhsc::baogen

// DIMACS CNF interchange for the SAT substrate: read standard `p cnf`
// instances into a Solver (external benchmarks, differential testing against
// other solvers) and write clause lists back out.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sat/solver.hpp"
#include "support/diagnostics.hpp"

namespace llhsc::sat {

struct DimacsInstance {
  int num_vars = 0;
  std::vector<std::vector<Lit>> clauses;
};

/// Parses DIMACS CNF text. Accepts comment lines (c ...), the `p cnf V C`
/// header, clauses terminated by 0 (multi-line clauses allowed), and is
/// lenient about a mismatched clause count (reported as a warning).
[[nodiscard]] std::optional<DimacsInstance> parse_dimacs(
    std::string_view text, support::DiagnosticEngine& diags);

/// Loads an instance into a solver: creates variables 0..num_vars-1 (DIMACS
/// variable i maps to Var i-1) and adds every clause. Returns false if the
/// instance is trivially unsat during loading.
bool load_into(const DimacsInstance& instance, Solver& solver);

/// Renders an instance in DIMACS format.
[[nodiscard]] std::string write_dimacs(const DimacsInstance& instance);

/// Renders a model over num_vars variables as the DIMACS "v" line payload
/// (positive/negative literals, 0-terminated).
[[nodiscard]] std::string model_line(const Solver& solver, int num_vars);

}  // namespace llhsc::sat

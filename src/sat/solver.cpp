#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace llhsc::sat {

Solver::Solver() = default;

Var Solver::new_var() {
  Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(Value::kUndef);
  var_data_.push_back({});
  polarity_.push_back(false);
  activity_.push_back(0.0);
  seen_.push_back(0);
  heap_index_.push_back(-1);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_insert(v);
  return v;
}

bool Solver::add_clause(std::vector<Lit> lits) {
  if (!ok_) return false;
  assert(decision_level() == 0);
  // Sort, dedup, drop clauses with complementary or satisfied literals.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  out.reserve(lits.size());
  Lit prev = Lit::from_code(-2);
  for (Lit l : lits) {
    assert(l.var() >= 0 && l.var() < num_vars());
    if (value(l) == Value::kTrue || l == ~prev) return true;  // tautology/satisfied
    if (value(l) != Value::kFalse && l != prev) {
      out.push_back(l);
      prev = l;
    }
  }
  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    // Enqueue and propagate eagerly at level 0 so later add_clause calls see
    // the fixed values.
    if (!enqueue(out[0], kNoReason) || propagate() != kNoReason) {
      ok_ = false;
      return false;
    }
    return true;
  }
  ClauseRef cr = static_cast<ClauseRef>(clauses_.size());
  clauses_.push_back(Clause{std::move(out), 0.0, false, false});
  attach_clause(cr);
  return true;
}

void Solver::attach_clause(ClauseRef cr) {
  const Clause& c = clauses_[static_cast<size_t>(cr)];
  assert(c.lits.size() >= 2);
  watches_[static_cast<size_t>((~c.lits[0]).code())].push_back({cr, c.lits[1]});
  watches_[static_cast<size_t>((~c.lits[1]).code())].push_back({cr, c.lits[0]});
}

void Solver::detach_clause(ClauseRef cr) {
  const Clause& c = clauses_[static_cast<size_t>(cr)];
  for (int i = 0; i < 2; ++i) {
    auto& ws = watches_[static_cast<size_t>((~c.lits[static_cast<size_t>(i)]).code())];
    for (size_t j = 0; j < ws.size(); ++j) {
      if (ws[j].clause == cr) {
        ws[j] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

bool Solver::enqueue(Lit l, ClauseRef reason) {
  if (value(l) != Value::kUndef) return value(l) == Value::kTrue;
  assigns_[static_cast<size_t>(l.var())] = l.negated() ? Value::kFalse : Value::kTrue;
  var_data_[static_cast<size_t>(l.var())] = {reason, decision_level()};
  trail_.push_back(l);
  return true;
}

Solver::ClauseRef Solver::propagate() {
  while (qhead_ < trail_.size()) {
    Lit p = trail_[qhead_++];
    ++stats_.propagations;
    auto& ws = watches_[static_cast<size_t>(p.code())];
    size_t i = 0, j = 0;
    while (i < ws.size()) {
      Watcher w = ws[i];
      if (value(w.blocker) == Value::kTrue) {
        ws[j++] = ws[i++];
        continue;
      }
      Clause& c = clauses_[static_cast<size_t>(w.clause)];
      // Ensure the false literal (~p) is at position 1.
      Lit false_lit = ~p;
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      assert(c.lits[1] == false_lit);
      ++i;
      // If the other watch is true, keep watching.
      if (c.lits[0] != w.blocker && value(c.lits[0]) == Value::kTrue) {
        ws[j++] = {w.clause, c.lits[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != Value::kFalse) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[static_cast<size_t>((~c.lits[1]).code())].push_back({w.clause, c.lits[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Clause is unit or conflicting.
      ws[j++] = {w.clause, c.lits[0]};
      if (value(c.lits[0]) == Value::kFalse) {
        // Conflict: copy remaining watchers back and return.
        while (i < ws.size()) ws[j++] = ws[i++];
        ws.resize(j);
        qhead_ = trail_.size();
        return w.clause;
      }
      enqueue(c.lits[0], w.clause);
    }
    ws.resize(j);
  }
  return kNoReason;
}

void Solver::analyze(ClauseRef conflict, std::vector<Lit>& out_learnt,
                     int& out_btlevel) {
  out_learnt.clear();
  out_learnt.push_back(Lit::from_code(-2));  // placeholder for the UIP
  int path_count = 0;
  Lit p = Lit::from_code(-2);
  size_t index = trail_.size();
  ClauseRef cr = conflict;

  do {
    assert(cr != kNoReason);
    Clause& c = clauses_[static_cast<size_t>(cr)];
    if (c.learned) clause_bump_activity(c);
    for (size_t k = (p.code() == -2 ? 0 : 1); k < c.lits.size(); ++k) {
      Lit q = c.lits[k];
      Var v = q.var();
      if (!seen_[static_cast<size_t>(v)] && var_data_[static_cast<size_t>(v)].level > 0) {
        seen_[static_cast<size_t>(v)] = 1;
        var_bump_activity(v);
        if (var_data_[static_cast<size_t>(v)].level >= decision_level()) {
          ++path_count;
        } else {
          out_learnt.push_back(q);
        }
      }
    }
    // Select next literal from the trail to expand.
    while (!seen_[static_cast<size_t>(trail_[index - 1].var())]) --index;
    p = trail_[--index];
    cr = var_data_[static_cast<size_t>(p.var())].reason;
    seen_[static_cast<size_t>(p.var())] = 0;
    --path_count;
  } while (path_count > 0);
  out_learnt[0] = ~p;

  // Clause minimisation: drop literals implied by the rest of the clause.
  analyze_toclear_ = out_learnt;
  for (Lit l : out_learnt) seen_[static_cast<size_t>(l.var())] = 1;
  uint32_t abstract_levels = 0;
  for (size_t k = 1; k < out_learnt.size(); ++k) {
    int lvl = var_data_[static_cast<size_t>(out_learnt[k].var())].level;
    abstract_levels |= 1u << (static_cast<unsigned>(lvl) & 31u);
  }
  size_t keep = 1;
  for (size_t k = 1; k < out_learnt.size(); ++k) {
    Lit l = out_learnt[k];
    if (var_data_[static_cast<size_t>(l.var())].reason == kNoReason ||
        !lit_redundant(l, abstract_levels)) {
      out_learnt[keep++] = l;
    } else {
      ++stats_.minimized_literals;
    }
  }
  out_learnt.resize(keep);
  for (Lit l : analyze_toclear_) seen_[static_cast<size_t>(l.var())] = 0;
  stats_.learned_literals += out_learnt.size();

  // Compute backtrack level: second-highest level in the clause.
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    size_t max_i = 1;
    for (size_t k = 2; k < out_learnt.size(); ++k) {
      if (var_data_[static_cast<size_t>(out_learnt[k].var())].level >
          var_data_[static_cast<size_t>(out_learnt[max_i].var())].level) {
        max_i = k;
      }
    }
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = var_data_[static_cast<size_t>(out_learnt[1].var())].level;
  }
}

bool Solver::lit_redundant(Lit l, uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  size_t top = analyze_toclear_.size();
  while (!analyze_stack_.empty()) {
    Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    ClauseRef cr = var_data_[static_cast<size_t>(q.var())].reason;
    assert(cr != kNoReason);
    const Clause& c = clauses_[static_cast<size_t>(cr)];
    for (size_t k = 1; k < c.lits.size(); ++k) {
      Lit r = c.lits[k];
      Var v = r.var();
      int lvl = var_data_[static_cast<size_t>(v)].level;
      if (!seen_[static_cast<size_t>(v)] && lvl > 0) {
        uint32_t mask = 1u << (static_cast<unsigned>(lvl) & 31u);
        if (var_data_[static_cast<size_t>(v)].reason != kNoReason &&
            (mask & abstract_levels) != 0) {
          seen_[static_cast<size_t>(v)] = 1;
          analyze_stack_.push_back(r);
          analyze_toclear_.push_back(r);
        } else {
          // Not removable: undo marks added during this call.
          for (size_t j = top; j < analyze_toclear_.size(); ++j) {
            seen_[static_cast<size_t>(analyze_toclear_[j].var())] = 0;
          }
          analyze_toclear_.resize(top);
          return false;
        }
      }
    }
  }
  return true;
}

// `p` is the negation of a failed assumption. Walks implications backwards
// and collects every assumption (reason-less trail literal above level 0)
// contributing to the failure. core_ holds the assumption literals themselves.
void Solver::analyze_final(Lit p) {
  core_.clear();
  core_.push_back(~p);
  if (decision_level() == 0) return;
  seen_[static_cast<size_t>(p.var())] = 1;
  for (size_t i = trail_.size(); i-- > static_cast<size_t>(trail_lim_[0]);) {
    Var v = trail_[i].var();
    if (!seen_[static_cast<size_t>(v)]) continue;
    ClauseRef cr = var_data_[static_cast<size_t>(v)].reason;
    if (cr == kNoReason) {
      if (var_data_[static_cast<size_t>(v)].level > 0 && trail_[i] != ~p) {
        core_.push_back(trail_[i]);
      }
    } else {
      const Clause& c = clauses_[static_cast<size_t>(cr)];
      for (size_t k = 1; k < c.lits.size(); ++k) {
        if (var_data_[static_cast<size_t>(c.lits[k].var())].level > 0) {
          seen_[static_cast<size_t>(c.lits[k].var())] = 1;
        }
      }
    }
    seen_[static_cast<size_t>(v)] = 0;
  }
  seen_[static_cast<size_t>(p.var())] = 0;
}

void Solver::cancel_until(int level) {
  if (decision_level() <= level) return;
  for (size_t i = trail_.size(); i-- > static_cast<size_t>(trail_lim_[static_cast<size_t>(level)]);) {
    Var v = trail_[i].var();
    polarity_[static_cast<size_t>(v)] = assigns_[static_cast<size_t>(v)] == Value::kTrue;
    assigns_[static_cast<size_t>(v)] = Value::kUndef;
    if (!heap_contains(v)) heap_insert(v);
  }
  trail_.resize(static_cast<size_t>(trail_lim_[static_cast<size_t>(level)]));
  trail_lim_.resize(static_cast<size_t>(level));
  qhead_ = trail_.size();
}

Lit Solver::pick_branch_lit() {
  while (!heap_.empty()) {
    Var v = heap_remove_max();
    if (value(v) == Value::kUndef) {
      return Lit(v, !polarity_[static_cast<size_t>(v)]);
    }
  }
  return Lit::from_code(-2);
}

void Solver::var_bump_activity(Var v) {
  activity_[static_cast<size_t>(v)] += var_inc_;
  if (activity_[static_cast<size_t>(v)] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_contains(v)) heap_update(v);
}

void Solver::var_decay_activity() { var_inc_ /= var_decay_; }

void Solver::clause_bump_activity(Clause& c) {
  c.activity += clause_inc_;
  if (c.activity > 1e20) {
    for (Clause& cl : clauses_) {
      if (cl.learned) cl.activity *= 1e-20;
    }
    clause_inc_ *= 1e-20;
  }
}

void Solver::clause_decay_activity() { clause_inc_ /= clause_decay_; }

void Solver::simplify(bool retain_learned) {
  if (!ok_) return;
  assert(decision_level() == 0);
  if (decision_level() != 0) return;
  if (propagate() != kNoReason) {
    ok_ = false;
    return;
  }
  ++stats_.simplifies;
  // Level-0 reasons are never traversed by conflict analysis (it stops at
  // level-0 variables), so clauses referenced as reasons on the level-0
  // trail may be deleted — null the references to keep the invariant
  // obvious.
  for (Lit l : trail_) {
    var_data_[static_cast<size_t>(l.var())].reason = kNoReason;
  }
  size_t retained = 0;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    Clause& c = clauses_[i];
    if (c.deleted) continue;
    bool drop = !retain_learned && c.learned;
    if (!drop) {
      for (Lit l : c.lits) {
        if (value(l) == Value::kTrue) {
          drop = true;  // satisfied at level 0: can never propagate again
          break;
        }
      }
    }
    if (drop) {
      detach_clause(static_cast<ClauseRef>(i));
      if (c.learned && num_learned_ > 0) --num_learned_;
      c.deleted = true;
      c.lits.clear();
      c.lits.shrink_to_fit();
      ++stats_.simplify_removed;
    } else if (c.learned) {
      ++retained;
    }
  }
  stats_.retained_learned = retained;
}

void Solver::reduce_db() {
  ++stats_.reductions;
  // Collect learned clause refs not currently used as reasons.
  std::vector<ClauseRef> learned;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    if (!clauses_[i].learned || clauses_[i].deleted) continue;
    learned.push_back(static_cast<ClauseRef>(i));
  }
  std::sort(learned.begin(), learned.end(), [this](ClauseRef a, ClauseRef b) {
    return clauses_[static_cast<size_t>(a)].activity <
           clauses_[static_cast<size_t>(b)].activity;
  });
  std::vector<bool> is_reason(clauses_.size(), false);
  for (Lit l : trail_) {
    ClauseRef cr = var_data_[static_cast<size_t>(l.var())].reason;
    if (cr != kNoReason) is_reason[static_cast<size_t>(cr)] = true;
  }
  size_t limit = learned.size() / 2;
  for (size_t i = 0; i < limit; ++i) {
    ClauseRef cr = learned[i];
    Clause& c = clauses_[static_cast<size_t>(cr)];
    if (c.lits.size() <= 2 || is_reason[static_cast<size_t>(cr)]) continue;
    detach_clause(cr);
    c.deleted = true;
    c.lits.clear();
    c.lits.shrink_to_fit();
    if (num_learned_ > 0) --num_learned_;
  }
}

int64_t Solver::luby(int64_t i) {
  // Finds the i-th element (1-based) of the Luby sequence 1,1,2,1,1,2,4,...
  int64_t k = 1;
  while ((1LL << k) - 1 < i + 1) ++k;
  while ((1LL << (k - 1)) - 1 != i) {
    i = i - ((1LL << (k - 1)) - 1);
    k = 1;
    while ((1LL << k) - 1 < i + 1) ++k;
  }
  return 1LL << (k - 1);
}

SolveResult Solver::search_loop() {
  int64_t restart_count = 0;
  int64_t conflicts_until_restart = 100 * luby(restart_count);
  int64_t conflicts_this_restart = 0;
  std::vector<Lit> learnt;

  if (max_learnts_ <= 0.0) {
    size_t problem_clauses = 0;
    for (const Clause& c : clauses_) {
      if (!c.learned && !c.deleted) ++problem_clauses;
    }
    max_learnts_ = std::max(1000.0, static_cast<double>(problem_clauses) / 3.0);
  }

  // Decimated deadline/cancellation polling: the unlimited case is hoisted
  // out of the loop entirely; otherwise the clock is read every
  // kDeadlinePollBudget budget units (conflicts are weighted
  // kConflictPollCost, decisions 1 — see solver.hpp).
  const bool poll_deadline = !deadline_.unlimited();
  int64_t poll_budget = kDeadlinePollBudget;
  while (true) {
    ClauseRef conflict = propagate();
    if (conflict != kNoReason) {
      ++stats_.conflicts;
      ++conflicts_this_restart;
      if (poll_deadline && (poll_budget -= kConflictPollCost) <= 0) {
        poll_budget = kDeadlinePollBudget;
        if (deadline_.expired()) return SolveResult::kUnknown;
      }
      if (decision_level() == 0) {
        // A conflict below every assumption level means the clause database
        // alone is unsatisfiable — latch it, or the consumed trail would let
        // a later solve() miss the all-false clause and report a bogus model.
        ok_ = false;
        return SolveResult::kUnsat;
      }
      int btlevel = 0;
      analyze(conflict, learnt, btlevel);
      cancel_until(btlevel);
      if (learnt.size() == 1) {
        // Unit clauses always backtrack to level 0; assumptions are replayed
        // as pseudo-decisions by the no-conflict branch below.
        if (!enqueue(learnt[0], kNoReason)) {
          ok_ = false;  // the learned unit contradicts the level-0 trail
          return SolveResult::kUnsat;
        }
      } else {
        ClauseRef cr = static_cast<ClauseRef>(clauses_.size());
        clauses_.push_back(Clause{learnt, 0.0, true, false});
        ++num_learned_;
        clause_bump_activity(clauses_.back());
        attach_clause(cr);
        enqueue(learnt[0], cr);
      }
      var_decay_activity();
      clause_decay_activity();
    } else {
      // No conflict.
      if (poll_deadline && --poll_budget <= 0) {
        poll_budget = kDeadlinePollBudget;
        if (deadline_.expired()) return SolveResult::kUnknown;
      }
      if (conflicts_this_restart >= conflicts_until_restart &&
          decision_level() > static_cast<int>(assumptions_.size())) {
        ++stats_.restarts;
        ++restart_count;
        conflicts_this_restart = 0;
        conflicts_until_restart = 100 * luby(restart_count);
        cancel_until(static_cast<int>(assumptions_.size()));
        continue;
      }
      if (static_cast<double>(num_learned_) >= max_learnts_ + trail_.size()) {
        reduce_db();
        max_learnts_ *= 1.1;
      }
      // Place assumptions as pseudo-decisions first.
      Lit next = Lit::from_code(-2);
      while (decision_level() < static_cast<int>(assumptions_.size())) {
        Lit a = assumptions_[static_cast<size_t>(decision_level())];
        if (value(a) == Value::kTrue) {
          new_decision_level();  // already satisfied; dummy level keeps indexing
        } else if (value(a) == Value::kFalse) {
          analyze_final(~a);
          return SolveResult::kUnsat;
        } else {
          next = a;
          break;
        }
      }
      if (next.code() == -2) {
        ++stats_.decisions;
        next = pick_branch_lit();
        if (next.code() == -2) {
          // All variables assigned: model found.
          model_ = assigns_;
          return SolveResult::kSat;
        }
      }
      new_decision_level();
      enqueue(next, kNoReason);
    }
  }
}

SolveResult Solver::solve(const std::vector<Lit>& assumptions) {
  if (!ok_) return SolveResult::kUnsat;
  if (deadline_.expired()) return SolveResult::kUnknown;
  assumptions_ = assumptions;
  core_.clear();
  cancel_until(0);
  // Level-0 propagation of any pending units.
  if (propagate() != kNoReason) {
    ok_ = false;
    return SolveResult::kUnsat;
  }
  rebuild_order_heap();
  SolveResult r = search_loop();
  cancel_until(0);
  assumptions_.clear();
  return r;
}

Value Solver::model_value(Var v) const {
  if (v < 0 || static_cast<size_t>(v) >= model_.size()) return Value::kUndef;
  return model_[static_cast<size_t>(v)];
}

uint64_t Solver::enumerate_models(
    const std::vector<Var>& projection,
    const std::function<bool(const std::vector<bool>&)>& on_model,
    uint64_t max_models) {
  if (!ok_) return 0;
  // Selector-guarded blocking: every blocking clause carries ~sel, and the
  // enumeration solves under the assumption sel. Retiring the session is a
  // single permanent unit ~sel, after which all blocking clauses (and any
  // clauses learned from them, which also contain ~sel or are implied by the
  // base formula) are satisfied — the solver stays sound for reuse.
  Lit sel = Lit::positive(new_var());
  uint64_t found = 0;
  while (found < max_models) {
    if (solve({sel}) != SolveResult::kSat) break;
    std::vector<bool> proj(projection.size());
    for (size_t i = 0; i < projection.size(); ++i) {
      proj[i] = model_bool(projection[i]);
    }
    ++found;
    bool keep_going = on_model(proj);
    std::vector<Lit> block;
    block.reserve(projection.size() + 1);
    block.push_back(~sel);
    for (size_t i = 0; i < projection.size(); ++i) {
      block.push_back(Lit(projection[i], proj[i]));
    }
    if (!add_clause(std::move(block))) break;
    if (!keep_going) break;
  }
  add_clause(~sel);  // retire this enumeration session
  return found;
}

uint64_t Solver::count_models(const std::vector<Var>& projection,
                              uint64_t max_models) {
  return enumerate_models(
      projection, [](const std::vector<bool>&) { return true; }, max_models);
}

// ---- order heap ----

void Solver::heap_insert(Var v) {
  heap_index_[static_cast<size_t>(v)] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(static_cast<int>(heap_.size()) - 1);
}

void Solver::heap_update(Var v) {
  int i = heap_index_[static_cast<size_t>(v)];
  if (i >= 0) heap_sift_up(i);
}

Var Solver::heap_remove_max() {
  Var top = heap_[0];
  heap_[0] = heap_.back();
  heap_index_[static_cast<size_t>(heap_[0])] = 0;
  heap_.pop_back();
  heap_index_[static_cast<size_t>(top)] = -1;
  if (!heap_.empty()) heap_sift_down(0);
  return top;
}

void Solver::heap_sift_up(int i) {
  Var v = heap_[static_cast<size_t>(i)];
  double act = activity_[static_cast<size_t>(v)];
  while (i > 0) {
    int parent = (i - 1) / 2;
    Var pv = heap_[static_cast<size_t>(parent)];
    if (activity_[static_cast<size_t>(pv)] >= act) break;
    heap_[static_cast<size_t>(i)] = pv;
    heap_index_[static_cast<size_t>(pv)] = i;
    i = parent;
  }
  heap_[static_cast<size_t>(i)] = v;
  heap_index_[static_cast<size_t>(v)] = i;
}

void Solver::heap_sift_down(int i) {
  Var v = heap_[static_cast<size_t>(i)];
  double act = activity_[static_cast<size_t>(v)];
  int n = static_cast<int>(heap_.size());
  while (true) {
    int left = 2 * i + 1;
    if (left >= n) break;
    int right = left + 1;
    int best = left;
    if (right < n &&
        activity_[static_cast<size_t>(heap_[static_cast<size_t>(right)])] >
            activity_[static_cast<size_t>(heap_[static_cast<size_t>(left)])]) {
      best = right;
    }
    Var bv = heap_[static_cast<size_t>(best)];
    if (activity_[static_cast<size_t>(bv)] <= act) break;
    heap_[static_cast<size_t>(i)] = bv;
    heap_index_[static_cast<size_t>(bv)] = i;
    i = best;
  }
  heap_[static_cast<size_t>(i)] = v;
  heap_index_[static_cast<size_t>(v)] = i;
}

void Solver::rebuild_order_heap() {
  heap_.clear();
  std::fill(heap_index_.begin(), heap_index_.end(), -1);
  for (Var v = 0; v < num_vars(); ++v) {
    if (value(v) == Value::kUndef) heap_insert(v);
  }
}

}  // namespace llhsc::sat

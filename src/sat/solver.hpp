// A self-contained CDCL SAT solver in the MiniSat lineage. llhsc uses it as
// the builtin backend of the smt facade: feature-model analyses (§IV-A of the
// paper) and bit-blasted bit-vector constraints (§IV-C) both reduce to CNF
// solved here. Features:
//   - two-watched-literal unit propagation
//   - first-UIP conflict analysis with clause minimisation
//   - VSIDS (exponential decay) decision heuristic with phase saving
//   - Luby-sequence restarts
//   - learned-clause database reduction by activity
//   - solving under assumptions with final-conflict (unsat core) extraction
//   - all-SAT model enumeration over a projection set via blocking clauses
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "support/deadline.hpp"

namespace llhsc::sat {

/// Variables are dense 0-based indices; a Lit packs variable and sign.
using Var = int32_t;

class Lit {
 public:
  Lit() = default;
  Lit(Var v, bool negated) : code_(v * 2 + (negated ? 1 : 0)) {}

  [[nodiscard]] static Lit positive(Var v) { return Lit(v, false); }
  [[nodiscard]] static Lit negative(Var v) { return Lit(v, true); }
  [[nodiscard]] static Lit from_code(int32_t code) {
    Lit l;
    l.code_ = code;
    return l;
  }

  [[nodiscard]] Var var() const { return code_ >> 1; }
  [[nodiscard]] bool negated() const { return (code_ & 1) != 0; }
  [[nodiscard]] Lit operator~() const { return from_code(code_ ^ 1); }
  [[nodiscard]] int32_t code() const { return code_; }

  friend bool operator==(Lit a, Lit b) { return a.code_ == b.code_; }
  friend bool operator!=(Lit a, Lit b) { return a.code_ != b.code_; }
  friend bool operator<(Lit a, Lit b) { return a.code_ < b.code_; }

 private:
  int32_t code_ = -2;  // invalid until assigned
};

enum class Value : uint8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

[[nodiscard]] inline Value negate(Value v) {
  if (v == Value::kUndef) return Value::kUndef;
  return v == Value::kTrue ? Value::kFalse : Value::kTrue;
}

struct SolverStats {
  uint64_t decisions = 0;
  uint64_t propagations = 0;
  uint64_t conflicts = 0;
  uint64_t restarts = 0;
  uint64_t learned_literals = 0;
  uint64_t minimized_literals = 0;
  uint64_t reductions = 0;
};

/// Result of Solver::solve. kUnknown is only produced when a deadline was
/// set and expired before the search finished.
enum class SolveResult : uint8_t { kSat, kUnsat, kUnknown };

class Solver {
 public:
  Solver();

  /// Creates a fresh variable and returns its index.
  Var new_var();
  [[nodiscard]] int num_vars() const { return static_cast<int>(assigns_.size()); }

  /// Adds a clause (empty clause makes the instance trivially unsat). Returns
  /// false if the solver is already in an unsat state.
  bool add_clause(std::vector<Lit> lits);
  bool add_clause(Lit a) { return add_clause(std::vector<Lit>{a}); }
  bool add_clause(Lit a, Lit b) { return add_clause(std::vector<Lit>{a, b}); }
  bool add_clause(Lit a, Lit b, Lit c) {
    return add_clause(std::vector<Lit>{a, b, c});
  }

  /// Solves the current formula under the given assumptions.
  SolveResult solve(const std::vector<Lit>& assumptions = {});

  /// Bounds subsequent solve() calls: when the deadline expires mid-search,
  /// solve returns kUnknown instead of running on. A default-constructed
  /// Deadline removes the limit. The deadline is polled in the CDCL search
  /// loop every kDeadlinePollInterval iterations, so solve() overshoots the
  /// budget by at most one poll interval's worth of work.
  void set_deadline(const support::Deadline& deadline) { deadline_ = deadline; }

  /// After kSat: model value of a variable (kUndef only for never-used vars).
  [[nodiscard]] Value model_value(Var v) const;
  [[nodiscard]] bool model_bool(Var v) const { return model_value(v) == Value::kTrue; }

  /// After kUnsat under assumptions: the subset of assumptions that together
  /// with the formula is unsatisfiable (a — not necessarily minimal — core).
  [[nodiscard]] const std::vector<Lit>& unsat_core() const { return core_; }

  /// Enumerates models projected onto `projection`; invokes `on_model` for
  /// each distinct projected assignment. Stops early when on_model returns
  /// false or `max_models` is reached. Returns the number of models found.
  /// Enumeration adds temporary blocking clauses that are removed afterwards.
  uint64_t enumerate_models(const std::vector<Var>& projection,
                            const std::function<bool(const std::vector<bool>&)>& on_model,
                            uint64_t max_models = UINT64_MAX);

  /// Convenience: counts models over a projection (caps at max_models).
  uint64_t count_models(const std::vector<Var>& projection,
                        uint64_t max_models = UINT64_MAX);

  [[nodiscard]] const SolverStats& stats() const { return stats_; }
  [[nodiscard]] bool okay() const { return ok_; }

 private:
  struct Clause {
    std::vector<Lit> lits;
    double activity = 0.0;
    bool learned = false;
    bool deleted = false;
  };
  using ClauseRef = int32_t;
  static constexpr ClauseRef kNoReason = -1;

  struct Watcher {
    ClauseRef clause;
    Lit blocker;
  };

  struct VarData {
    ClauseRef reason = kNoReason;
    int level = 0;
  };

  // -- internal machinery --
  [[nodiscard]] Value value(Lit l) const {
    Value v = assigns_[static_cast<size_t>(l.var())];
    return l.negated() ? negate(v) : v;
  }
  [[nodiscard]] Value value(Var v) const { return assigns_[static_cast<size_t>(v)]; }
  [[nodiscard]] int decision_level() const { return static_cast<int>(trail_lim_.size()); }

  void attach_clause(ClauseRef cr);
  void detach_clause(ClauseRef cr);
  bool enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef conflict, std::vector<Lit>& out_learnt, int& out_btlevel);
  bool lit_redundant(Lit l, uint32_t abstract_levels);
  void analyze_final(Lit p);
  void cancel_until(int level);
  Lit pick_branch_lit();
  void new_decision_level() { trail_lim_.push_back(static_cast<int>(trail_.size())); }
  void var_bump_activity(Var v);
  void var_decay_activity();
  void clause_bump_activity(Clause& c);
  void clause_decay_activity();
  void reduce_db();
  void rebuild_order_heap();
  SolveResult search_loop();

  // order heap (binary max-heap on activity)
  void heap_insert(Var v);
  void heap_update(Var v);
  Var heap_remove_max();
  void heap_sift_up(int i);
  void heap_sift_down(int i);
  [[nodiscard]] bool heap_contains(Var v) const {
    return heap_index_[static_cast<size_t>(v)] >= 0;
  }

  static int64_t luby(int64_t i);

  bool ok_ = true;
  std::vector<Clause> clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit code
  std::vector<Value> assigns_;
  std::vector<VarData> var_data_;
  std::vector<bool> polarity_;  // saved phases
  std::vector<double> activity_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  size_t qhead_ = 0;

  std::vector<Var> heap_;
  std::vector<int> heap_index_;

  std::vector<Lit> assumptions_;
  std::vector<Lit> core_;
  static constexpr uint64_t kDeadlinePollInterval = 2048;
  support::Deadline deadline_;

  // conflict-analysis scratch
  std::vector<uint8_t> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_toclear_;

  double var_inc_ = 1.0;
  double var_decay_ = 0.95;
  double clause_inc_ = 1.0;
  double clause_decay_ = 0.999;
  double max_learnts_ = 0.0;

  std::vector<Value> model_;
  SolverStats stats_;
};

}  // namespace llhsc::sat

// A self-contained CDCL SAT solver in the MiniSat lineage. llhsc uses it as
// the builtin backend of the smt facade: feature-model analyses (§IV-A of the
// paper) and bit-blasted bit-vector constraints (§IV-C) both reduce to CNF
// solved here. Features:
//   - two-watched-literal unit propagation
//   - first-UIP conflict analysis with clause minimisation
//   - VSIDS (exponential decay) decision heuristic with phase saving
//   - Luby-sequence restarts
//   - learned-clause database reduction by activity
//   - solving under assumptions with final-conflict (unsat core) extraction
//   - all-SAT model enumeration over a projection set via blocking clauses
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "support/deadline.hpp"

namespace llhsc::sat {

/// Variables are dense 0-based indices; a Lit packs variable and sign.
using Var = int32_t;

class Lit {
 public:
  Lit() = default;
  Lit(Var v, bool negated) : code_(v * 2 + (negated ? 1 : 0)) {}

  [[nodiscard]] static Lit positive(Var v) { return Lit(v, false); }
  [[nodiscard]] static Lit negative(Var v) { return Lit(v, true); }
  [[nodiscard]] static Lit from_code(int32_t code) {
    Lit l;
    l.code_ = code;
    return l;
  }

  [[nodiscard]] Var var() const { return code_ >> 1; }
  [[nodiscard]] bool negated() const { return (code_ & 1) != 0; }
  [[nodiscard]] Lit operator~() const { return from_code(code_ ^ 1); }
  [[nodiscard]] int32_t code() const { return code_; }

  friend bool operator==(Lit a, Lit b) { return a.code_ == b.code_; }
  friend bool operator!=(Lit a, Lit b) { return a.code_ != b.code_; }
  friend bool operator<(Lit a, Lit b) { return a.code_ < b.code_; }

 private:
  int32_t code_ = -2;  // invalid until assigned
};

enum class Value : uint8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

[[nodiscard]] inline Value negate(Value v) {
  if (v == Value::kUndef) return Value::kUndef;
  return v == Value::kTrue ? Value::kFalse : Value::kTrue;
}

struct SolverStats {
  uint64_t decisions = 0;
  uint64_t propagations = 0;
  uint64_t conflicts = 0;
  uint64_t restarts = 0;
  uint64_t learned_literals = 0;
  uint64_t minimized_literals = 0;
  uint64_t reductions = 0;
  uint64_t simplifies = 0;
  /// Clauses removed by simplify() because the level-0 trail satisfies them
  /// (retired guards make their dependent clauses fall in this bucket).
  uint64_t simplify_removed = 0;
  /// Learned clauses still attached after the last simplify() — the ones
  /// retained across assumption-guard retirement.
  uint64_t retained_learned = 0;
};

/// Result of Solver::solve. kUnknown is only produced when a deadline was
/// set and expired before the search finished.
enum class SolveResult : uint8_t { kSat, kUnsat, kUnknown };

class Solver {
 public:
  Solver();

  /// Creates a fresh variable and returns its index.
  Var new_var();
  [[nodiscard]] int num_vars() const { return static_cast<int>(assigns_.size()); }

  /// Adds a clause (empty clause makes the instance trivially unsat). Returns
  /// false if the solver is already in an unsat state.
  bool add_clause(std::vector<Lit> lits);
  bool add_clause(Lit a) { return add_clause(std::vector<Lit>{a}); }
  bool add_clause(Lit a, Lit b) { return add_clause(std::vector<Lit>{a, b}); }
  bool add_clause(Lit a, Lit b, Lit c) {
    return add_clause(std::vector<Lit>{a, b, c});
  }

  /// Solves the current formula under the given assumptions.
  SolveResult solve(const std::vector<Lit>& assumptions = {});

  /// Level-0 housekeeping: propagates pending units, then removes every
  /// clause the level-0 trail satisfies (detached and marked deleted).
  /// After retiring an assumption guard with add_clause(~g), this sweeps
  /// exactly the clauses that depended on the guard being assumable —
  /// guard-independent learned clauses survive and keep pruning later
  /// solve() calls. With retain_learned=false the entire learned-clause
  /// database is dropped instead (the pre-retention behaviour, kept for
  /// A/B benchmarking). Must be called at decision level 0.
  void simplify(bool retain_learned = true);

  /// Bounds subsequent solve() calls: when the deadline expires mid-search,
  /// solve returns kUnknown instead of running on. A default-constructed
  /// Deadline removes the limit entirely (the poll is hoisted out of the
  /// search loop). The clock is read at most once every
  /// kDeadlinePollBudget/kConflictPollCost conflicts — or kDeadlinePollBudget
  /// decisions on conflict-free streaks — so solve() overshoots the budget by
  /// at most one poll window's worth of work. A Deadline carrying a
  /// support::CancelToken is observed at the same cadence, which is how
  /// portfolio racing stops a losing builtin search.
  void set_deadline(const support::Deadline& deadline) { deadline_ = deadline; }

  /// After kSat: model value of a variable (kUndef only for never-used vars).
  [[nodiscard]] Value model_value(Var v) const;
  [[nodiscard]] bool model_bool(Var v) const { return model_value(v) == Value::kTrue; }

  /// After kUnsat under assumptions: the subset of assumptions that together
  /// with the formula is unsatisfiable (a — not necessarily minimal — core).
  [[nodiscard]] const std::vector<Lit>& unsat_core() const { return core_; }

  /// Enumerates models projected onto `projection`; invokes `on_model` for
  /// each distinct projected assignment. Stops early when on_model returns
  /// false or `max_models` is reached. Returns the number of models found.
  /// Enumeration adds temporary blocking clauses that are removed afterwards.
  uint64_t enumerate_models(const std::vector<Var>& projection,
                            const std::function<bool(const std::vector<bool>&)>& on_model,
                            uint64_t max_models = UINT64_MAX);

  /// Convenience: counts models over a projection (caps at max_models).
  uint64_t count_models(const std::vector<Var>& projection,
                        uint64_t max_models = UINT64_MAX);

  [[nodiscard]] const SolverStats& stats() const { return stats_; }
  [[nodiscard]] bool okay() const { return ok_; }

 private:
  struct Clause {
    std::vector<Lit> lits;
    double activity = 0.0;
    bool learned = false;
    bool deleted = false;
  };
  using ClauseRef = int32_t;
  static constexpr ClauseRef kNoReason = -1;

  struct Watcher {
    ClauseRef clause;
    Lit blocker;
  };

  struct VarData {
    ClauseRef reason = kNoReason;
    int level = 0;
  };

  // -- internal machinery --
  [[nodiscard]] Value value(Lit l) const {
    Value v = assigns_[static_cast<size_t>(l.var())];
    return l.negated() ? negate(v) : v;
  }
  [[nodiscard]] Value value(Var v) const { return assigns_[static_cast<size_t>(v)]; }
  [[nodiscard]] int decision_level() const { return static_cast<int>(trail_lim_.size()); }

  void attach_clause(ClauseRef cr);
  void detach_clause(ClauseRef cr);
  bool enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef conflict, std::vector<Lit>& out_learnt, int& out_btlevel);
  bool lit_redundant(Lit l, uint32_t abstract_levels);
  void analyze_final(Lit p);
  void cancel_until(int level);
  Lit pick_branch_lit();
  void new_decision_level() { trail_lim_.push_back(static_cast<int>(trail_.size())); }
  void var_bump_activity(Var v);
  void var_decay_activity();
  void clause_bump_activity(Clause& c);
  void clause_decay_activity();
  void reduce_db();
  void rebuild_order_heap();
  SolveResult search_loop();

  // order heap (binary max-heap on activity)
  void heap_insert(Var v);
  void heap_update(Var v);
  Var heap_remove_max();
  void heap_sift_up(int i);
  void heap_sift_down(int i);
  [[nodiscard]] bool heap_contains(Var v) const {
    return heap_index_[static_cast<size_t>(v)] >= 0;
  }

  static int64_t luby(int64_t i);

  bool ok_ = true;
  std::vector<Clause> clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit code
  std::vector<Value> assigns_;
  std::vector<VarData> var_data_;
  std::vector<bool> polarity_;  // saved phases
  std::vector<double> activity_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  size_t qhead_ = 0;

  std::vector<Var> heap_;
  std::vector<int> heap_index_;

  std::vector<Lit> assumptions_;
  std::vector<Lit> core_;
  /// Deadline polling is decimated: each conflict costs kConflictPollCost
  /// budget units, each decision costs 1, and the clock is read when
  /// kDeadlinePollBudget units are spent — every 128 conflicts on
  /// conflict-dense searches, every 8192 decisions on conflict-free ones.
  static constexpr int64_t kDeadlinePollBudget = 8192;
  static constexpr int64_t kConflictPollCost = 64;
  support::Deadline deadline_;

  // conflict-analysis scratch
  std::vector<uint8_t> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_toclear_;

  /// Live learned-clause count, maintained incrementally so the search loop
  /// never rescans the clause database to decide when to reduce.
  size_t num_learned_ = 0;

  double var_inc_ = 1.0;
  double var_decay_ = 0.95;
  double clause_inc_ = 1.0;
  double clause_decay_ = 0.999;
  double max_learnts_ = 0.0;

  std::vector<Value> model_;
  SolverStats stats_;
};

}  // namespace llhsc::sat

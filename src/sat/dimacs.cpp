#include "sat/dimacs.hpp"

#include <sstream>

#include "support/strings.hpp"

namespace llhsc::sat {

std::optional<DimacsInstance> parse_dimacs(std::string_view text,
                                           support::DiagnosticEngine& diags) {
  DimacsInstance instance;
  bool header_seen = false;
  int declared_clauses = 0;
  std::vector<Lit> current;
  uint32_t line_no = 0;

  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    std::string_view line = text.substr(
        start, nl == std::string_view::npos ? std::string_view::npos
                                            : nl - start);
    ++line_no;
    std::string_view trimmed = support::trim(line);
    auto loc = support::SourceLocation{"<dimacs>", line_no, 0};
    if (!trimmed.empty() && trimmed[0] != 'c' && trimmed[0] != '%') {
      if (trimmed[0] == 'p') {
        auto parts = support::split_ws(trimmed);
        if (parts.size() != 4 || parts[1] != "cnf") {
          diags.error("dimacs", "malformed problem line", loc);
          return std::nullopt;
        }
        auto nv = support::parse_integer(parts[2]);
        auto nc = support::parse_integer(parts[3]);
        if (!nv || !nc) {
          diags.error("dimacs", "malformed problem line numbers", loc);
          return std::nullopt;
        }
        instance.num_vars = static_cast<int>(*nv);
        declared_clauses = static_cast<int>(*nc);
        header_seen = true;
      } else {
        if (!header_seen) {
          diags.error("dimacs", "clause before 'p cnf' header", loc);
          return std::nullopt;
        }
        for (const std::string& tok : support::split_ws(trimmed)) {
          bool negative = !tok.empty() && tok[0] == '-';
          auto v = support::parse_integer(negative ? tok.substr(1) : tok);
          if (!v) {
            diags.error("dimacs", "bad literal '" + tok + "'", loc);
            return std::nullopt;
          }
          if (*v == 0) {
            instance.clauses.push_back(current);
            current.clear();
            continue;
          }
          if (static_cast<int>(*v) > instance.num_vars) {
            diags.error("dimacs",
                        "literal " + tok + " exceeds declared variable count",
                        loc);
            return std::nullopt;
          }
          current.push_back(Lit(static_cast<Var>(*v) - 1, negative));
        }
      }
    }
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  if (!header_seen) {
    diags.error("dimacs", "missing 'p cnf' header");
    return std::nullopt;
  }
  if (!current.empty()) {
    diags.warning("dimacs", "final clause not 0-terminated; accepting it");
    instance.clauses.push_back(current);
  }
  if (declared_clauses != static_cast<int>(instance.clauses.size())) {
    diags.warning("dimacs",
                  "header declares " + std::to_string(declared_clauses) +
                      " clauses, found " +
                      std::to_string(instance.clauses.size()));
  }
  return instance;
}

bool load_into(const DimacsInstance& instance, Solver& solver) {
  while (solver.num_vars() < instance.num_vars) solver.new_var();
  bool ok = true;
  for (const auto& clause : instance.clauses) {
    ok = solver.add_clause(clause) && ok;
  }
  return ok;
}

std::string write_dimacs(const DimacsInstance& instance) {
  std::ostringstream os;
  os << "p cnf " << instance.num_vars << ' ' << instance.clauses.size() << '\n';
  for (const auto& clause : instance.clauses) {
    for (Lit l : clause) {
      os << (l.negated() ? -(l.var() + 1) : (l.var() + 1)) << ' ';
    }
    os << "0\n";
  }
  return os.str();
}

std::string model_line(const Solver& solver, int num_vars) {
  std::ostringstream os;
  for (Var v = 0; v < num_vars; ++v) {
    if (v > 0) os << ' ';
    os << (solver.model_value(v) == Value::kTrue ? (v + 1) : -(v + 1));
  }
  os << " 0";
  return os.str();
}

}  // namespace llhsc::sat

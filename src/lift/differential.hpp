// Differential harness: proves a LiftedResult equal to brute-force
// per-product enumeration. For every valid configuration (streamed, capped
// at max_products) the harness derives the product, runs the per-product
// SemanticChecker, and compares the finding multiset against the lifted
// findings whose conditions the configuration satisfies. Keys normalise
// pairwise-finding orientation (the delta linearisation can flip which
// region is "first" between a slice and a full product) and drop
// provenance/location/message, which legitimately differ between a slice
// tree and the full product tree.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lift/lift.hpp"

namespace llhsc::lift {

struct DifferentialOptions {
  /// Cap on enumerated products; hitting it adds a kEnumerationCapped note
  /// and reports `capped` (the comparison still covers every product seen).
  uint64_t max_products = 4096;
};

struct DifferentialReport {
  bool equal = false;
  bool capped = false;
  uint64_t products = 0;
  /// Human-readable discrepancies, capped at 16.
  std::vector<std::string> mismatches;
  /// Advisory notes (currently: the capped-enumeration warning).
  checkers::Findings notes;
};

/// Compares `lifted` (produced by check_family with `lopts`) against
/// per-product enumeration of the same line/model using the same backend
/// and checker options.
[[nodiscard]] DifferentialReport compare_with_enumeration(
    const delta::ProductLine& line, const feature::FeatureModel& model,
    const LiftedResult& lifted, const LiftOptions& lopts,
    const DifferentialOptions& dopts = {});

}  // namespace llhsc::lift

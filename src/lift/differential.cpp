#include "lift/differential.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "checkers/semantic.hpp"
#include "feature/analysis.hpp"
#include "support/diagnostics.hpp"

namespace llhsc::lift {

namespace {

using checkers::Finding;
using checkers::FindingKind;

bool is_pairwise(FindingKind k) {
  return k == FindingKind::kAddressOverlap ||
         k == FindingKind::kInterruptCollision ||
         k == FindingKind::kClockCollision;
}

/// Lifted findings of these kinds have no per-product counterpart.
bool family_only(FindingKind k) {
  return k == FindingKind::kDeriveFailure ||
         k == FindingKind::kExclusivityViolation ||
         k == FindingKind::kEnumerationCapped;
}

/// Comparison key. Pairwise findings normalise orientation — the `after`
/// linearisation only restricts order between *conflicting* deltas, so a
/// slice can legally insert siblings in a different order than the full
/// product, flipping which region of a pair is reported first — and drop
/// message/delta/location, which embed that orientation. Single-subject
/// findings keep the message (it carries the defect specifics).
std::string key_of(const Finding& f) {
  std::ostringstream os;
  os << static_cast<int>(f.kind) << '|' << static_cast<int>(f.severity) << '|'
     << f.property << '|';
  if (is_pairwise(f.kind)) {
    std::string s1 = f.subject, s2 = f.other_subject;
    std::pair<uint64_t, uint64_t> r1{f.base_a, f.size_a};
    std::pair<uint64_t, uint64_t> r2{f.base_b, f.size_b};
    if (s2 < s1) {
      std::swap(s1, s2);
      std::swap(r1, r2);
    }
    os << s1 << '|' << s2 << '|' << r1.first << ':' << r1.second << '|'
       << r2.first << ':' << r2.second << '|' << f.witness;
  } else {
    os << f.subject << '|' << f.message << '|' << f.base_a << ':' << f.size_a
       << '|' << f.delta;
  }
  return os.str();
}

std::string render_config(const std::set<std::string>& names) {
  std::string out = "{";
  for (const std::string& n : names) {
    if (out.size() > 1) out += ",";
    out += n;
  }
  return out + "}";
}

}  // namespace

DifferentialReport compare_with_enumeration(const delta::ProductLine& line,
                                            const feature::FeatureModel& model,
                                            const LiftedResult& lifted,
                                            const LiftOptions& lopts,
                                            const DifferentialOptions& dopts) {
  DifferentialReport report;
  checkers::SemanticOptions sopts;
  sopts.address_bits = lopts.address_bits;
  sopts.warn_zero_size = lopts.warn_zero_size;
  sopts.check_interrupts = lopts.check_interrupts;
  sopts.check_clocks = lopts.check_clocks;
  checkers::SemanticChecker checker(lopts.backend, sopts);

  auto literal_holds = [&](const DeltaLiteral& l,
                           const std::set<std::string>& names) {
    const delta::DeltaModule* d = line.find_delta(l.delta);
    return d != nullptr && d->when.evaluate(names) == l.positive;
  };
  auto condition_holds = [&](const std::vector<DeltaLiteral>& cond,
                             const std::set<std::string>& names) {
    return std::all_of(cond.begin(), cond.end(), [&](const DeltaLiteral& l) {
      return literal_holds(l, names);
    });
  };
  auto note_mismatch = [&](std::string what) {
    if (report.mismatches.size() < 16) {
      report.mismatches.push_back(std::move(what));
    }
  };

  smt::Solver enum_solver(lopts.backend);
  bool capped = false;
  report.products = feature::enumerate_products(
      model, enum_solver,
      [&](const feature::Selection& sel) {
        std::set<std::string> names;
        for (uint32_t i = 0; i < sel.size(); ++i) {
          if (sel[i]) names.insert(model.feature(feature::FeatureId{i}).name);
        }
        const std::string cfg = render_config(names);

        const bool in_fail_class = std::any_of(
            lifted.fail_classes.begin(), lifted.fail_classes.end(),
            [&](const std::vector<DeltaLiteral>& cls) {
              return condition_holds(cls, names);
            });
        support::DiagnosticEngine local;
        std::unique_ptr<dts::Tree> tree = line.derive(names, local);
        if ((tree == nullptr) != in_fail_class) {
          note_mismatch("config " + cfg + ": derivation " +
                        (tree ? "succeeded" : "failed") +
                        " but the lifted fail classes say the opposite");
          return true;
        }
        if (tree == nullptr) return true;  // both sides agree: no product

        std::multiset<std::string> actual;
        for (const Finding& f : checker.check(*tree)) {
          actual.insert(key_of(f));
        }
        std::multiset<std::string> expected;
        for (const LiftedFinding& lf : lifted.findings) {
          if (family_only(lf.finding.kind)) continue;
          if (condition_holds(lf.condition, names)) {
            expected.insert(key_of(lf.finding));
          }
        }
        for (const std::string& k : expected) {
          if (actual.count(k) < expected.count(k)) {
            note_mismatch("config " + cfg + ": lifted-only finding " + k);
            break;
          }
        }
        for (const std::string& k : actual) {
          if (expected.count(k) < actual.count(k)) {
            note_mismatch("config " + cfg + ": product-only finding " + k);
            break;
          }
        }
        return true;
      },
      dopts.max_products, &capped);
  report.capped = capped;
  if (capped) {
    Finding note;
    note.kind = FindingKind::kEnumerationCapped;
    note.severity = checkers::FindingSeverity::kWarning;
    note.subject = "product enumeration";
    note.message =
        "product enumeration stopped at the cap of " +
        std::to_string(dopts.max_products) +
        " products; the differential comparison covers only those";
    report.notes.push_back(std::move(note));
  }
  report.equal = report.mismatches.empty();
  return report;
}

}  // namespace llhsc::lift

// Family-based (lifted) product-line checking: verify all 2^n variants of a
// DTS product line in ONE incremental solver conversation instead of
// deriving and checking every product (docs/lifting.md).
//
// The engine decomposes the delta set into independent *components* (deltas
// whose footprints touch overlapping parts of the tree), enumerates each
// component's feature-reachable activation patterns by projected all-SAT,
// derives one small *slice* per pattern, and discharges every checker
// obligation (region disjointness, wrap/zero-size, interrupt and clock
// uniqueness) as a guarded formula whose assumptions are the pattern's
// activation literals — all against a single solver instance that holds the
// feature-model axioms and the delta-activation biconditionals
// a_d <-> when_d(features). Work is polynomial in components x patterns,
// not in 2^n products; the differential harness (lift/differential.hpp)
// proves the verdicts equal per-product enumeration.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "checkers/finding.hpp"
#include "delta/delta.hpp"
#include "feature/model.hpp"
#include "smt/solver.hpp"
#include "support/diagnostics.hpp"

namespace llhsc::lift {

struct LiftOptions {
  smt::Backend backend = smt::Backend::kBuiltin;
  /// Mirrors checkers::SemanticOptions for the lifted obligations.
  uint32_t address_bits = 64;
  bool warn_zero_size = true;
  bool check_interrupts = true;
  bool check_clocks = true;
  /// Cap on the all-SAT expansion of each finding's violating configuration
  /// classes (the per-finding "which products are affected" summary).
  uint64_t max_configs = 8;
  /// Cap on activation patterns per component. A component needing more
  /// patterns than this is reported as a kEnumerationCapped error and the
  /// result is not ok — the engine never silently under-approximates.
  uint64_t max_patterns = 1024;
  /// Features lifted through the exclusivity rule: a feature in this list
  /// that is selected in *every* configuration of the family is reported
  /// (family-level analogue of the resource-exclusivity check).
  std::vector<std::string> exclusive_features;
};

/// One activation literal: delta `delta` is active (positive) or inactive.
/// Under a concrete selection S the literal holds iff
/// when_delta.evaluate(S) == positive — activation is purely `when`-driven.
struct DeltaLiteral {
  std::string delta;
  bool positive = true;
};

/// One lifted finding: the same Finding content the per-product checker
/// would emit, plus the symbolic condition under which it manifests.
struct LiftedFinding {
  checkers::Finding finding;
  /// Conjunction of activation literals; empty = every configuration.
  /// A configuration exhibits the finding iff all literals hold AND the
  /// configuration is not in any derivation-failure class.
  std::vector<DeltaLiteral> condition;
  /// Violating configurations, projected onto the features the condition
  /// depends on: "veth0 && !veth1 || ..." (classes sorted, " || "-joined),
  /// or "all configurations" when the condition is feature-independent.
  std::string config_summary;
  /// True when the all-SAT expansion hit max_configs before draining.
  bool config_summary_capped = false;
  /// One concrete witness configuration (selected feature names).
  std::set<std::string> sample_config;
};

struct LiftedResult {
  /// True when the whole family was analysed (no refusal, no pattern cap).
  bool ok = false;
  std::vector<LiftedFinding> findings;
  /// Conditions under which product derivation itself fails (each matches a
  /// kDeriveFailure finding). A configuration matching any class derives no
  /// tree, so check findings never apply to it.
  std::vector<std::vector<DeltaLiteral>> fail_classes;
  /// Engine shape, for benches and tests.
  uint64_t components = 0;
  uint64_t patterns = 0;
  uint64_t slices = 0;
  uint64_t obligations = 0;
  uint64_t solver_checks = 0;
};

/// Checks the whole family in one solver conversation. Structural problems
/// (delta ordering cycles, targets ambiguous somewhere in the family) are
/// reported through `diags` and yield ok = false.
[[nodiscard]] LiftedResult check_family(const delta::ProductLine& line,
                                        const feature::FeatureModel& model,
                                        const LiftOptions& opts,
                                        support::DiagnosticEngine& diags);

/// Flattens to plain Findings for the report/SARIF/suppression surfaces:
/// each finding's message gains a " [configs: ...]" annotation carrying the
/// symbolic summary (the structured fields stay byte-identical to the
/// per-product checker's).
[[nodiscard]] checkers::Findings flatten(const LiftedResult& result);

}  // namespace llhsc::lift

// The lifted check engine (docs/lifting.md). Pipeline:
//
//   1. Union tree: apply every delta once, tolerantly (removes recorded but
//      not executed, add collisions merge) — a superset of every product
//      tree, used to resolve targets and compute footprints.
//   2. Components: union-find over deltas, joined when their footprints
//      touch intersecting parts of the tree. Footprints include the cells
//      environment (#address-cells/#size-cells/ranges influence a whole
//      subtree's reg interpretation) and the interrupt/clock environments
//      (pseudo-paths "<irq>"/"<clock>"), so any two deltas that can affect
//      the same obligation land in the same component.
//   3. Patterns: per component, the feature-reachable activation patterns
//      by projected all-SAT over the activation literals a_d, with the
//      feature model asserted once and a_d <-> when_d(features).
//   4. Slices: per (component, pattern), the component's active deltas
//      applied to a core clone with the real (strict) apply — application
//      failures become derivation-failure classes, successes are mined for
//      regions/claims restricted to the component's own paths.
//   5. Obligations: zero-size/wrap concretely, region pairs through guarded
//      formula-(7) queries, interrupt/clock pairs through guarded equality
//      queries — all on the one incremental solver, assumptions = the
//      pattern's activation literals (+ no-derivation-failure), guards
//      retired after each query (clause retention, PR 8).
//   6. Expansion: each finding's violating configurations by all-SAT over
//      the condition's own features, capped at max_configs.
#include "lift/lift.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "checkers/interval_baseline.hpp"
#include "checkers/semantic.hpp"
#include "feature/analysis.hpp"
#include "obs/obs.hpp"
#include "support/strings.hpp"

namespace llhsc::lift {

namespace {

using checkers::Finding;
using checkers::FindingKind;
using checkers::FindingSeverity;
using checkers::Findings;
using checkers::MemRegion;

constexpr const char* kIrqEnv = "<irq>";
constexpr const char* kClockEnv = "<clock>";

std::string path_join(const std::string& parent, std::string_view name) {
  return parent == "/" ? "/" + std::string(name)
                       : parent + "/" + std::string(name);
}

/// True when `path` is `root` or inside its subtree.
bool within(const std::string& path, const std::string& root) {
  if (root == "/") return !path.empty() && path[0] == '/';
  if (path.size() < root.size()) return false;
  if (path.compare(0, root.size(), root) != 0) return false;
  return path.size() == root.size() || path[root.size()] == '/';
}

/// One footprint element: an exact node path, a subtree root (prefix), or a
/// pseudo-path environment marker ("<irq>" / "<clock>").
struct CoverItem {
  std::string path;
  bool prefix = false;
};

struct Footprint {
  std::vector<CoverItem> items;

  void add_exact(const std::string& path) { items.push_back({path, false}); }
  void add_prefix(const std::string& path) { items.push_back({path, true}); }
};

bool items_intersect(const CoverItem& a, const CoverItem& b) {
  if (a.prefix && b.prefix) {
    return within(a.path, b.path) || within(b.path, a.path);
  }
  if (a.prefix) return within(b.path, a.path);
  if (b.prefix) return within(a.path, b.path);
  return a.path == b.path;
}

bool footprints_intersect(const Footprint& a, const Footprint& b) {
  for (const CoverItem& ia : a.items) {
    for (const CoverItem& ib : b.items) {
      if (items_intersect(ia, ib)) return true;
    }
  }
  return false;
}

/// True when any item of `items` covers the node path `path`.
bool covers(const std::vector<CoverItem>& items, const std::string& path) {
  for (const CoverItem& it : items) {
    if (it.prefix ? within(path, it.path) : it.path == path) return true;
  }
  return false;
}

bool has_env(const std::vector<CoverItem>& items, const char* env) {
  for (const CoverItem& it : items) {
    if (!it.prefix && it.path == env) return true;
  }
  return false;
}

bool is_cells_prop(std::string_view p) {
  return p == "#address-cells" || p == "#size-cells" || p == "ranges";
}
bool is_irq_prop(std::string_view p) {
  return p == "phandle" || p == "#interrupt-cells" ||
         p == "interrupt-parent" || p == "interrupts";
}
bool is_clock_prop(std::string_view p) {
  return p == "phandle" || p == "#clock-cells" || p == "assigned-clocks";
}

struct UnionFind {
  std::vector<size_t> parent;
  explicit UnionFind(size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), size_t{0});
  }
  size_t find(size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void join(size_t a, size_t b) { parent[find(a)] = find(b); }
};

/// Records one written property into the footprint: the node itself, plus
/// the environment couplings the property participates in.
void note_property(Footprint& fp, const std::string& path,
                   std::string_view prop) {
  fp.add_exact(path);
  if (is_cells_prop(prop)) fp.add_prefix(path);
  if (is_irq_prop(prop)) fp.add_exact(kIrqEnv);
  if (is_clock_prop(prop)) fp.add_exact(kClockEnv);
}

/// Environment markers for every property found anywhere in `node`'s
/// subtree (used for created fragments and removed subtrees, whose nested
/// content is covered path-wise by the subtree root already).
void note_subtree_env(Footprint& fp, const dts::Node& node) {
  for (const dts::Property& p : node.properties()) {
    if (is_irq_prop(p.name)) fp.add_exact(kIrqEnv);
    if (is_clock_prop(p.name)) fp.add_exact(kClockEnv);
  }
  for (const auto& child : node.children()) note_subtree_env(fp, *child);
}

/// Footprint of merging `fragment` into the union node at `path`, recorded
/// against what the union tree holds *now* (so creations are relative to
/// everything any earlier delta may have built).
void record_merge(const dts::Node* target, const dts::Node& fragment,
                  const std::string& path, Footprint& fp) {
  for (const dts::Property& p : fragment.properties()) {
    note_property(fp, path, p.name);
  }
  for (const auto& child : fragment.children()) {
    const dts::Node* existing =
        target != nullptr ? target->find_child(child->name()) : nullptr;
    const std::string child_path = path_join(path, child->name());
    if (existing == nullptr) {
      fp.add_prefix(child_path);
      note_subtree_env(fp, *child);
    } else {
      record_merge(existing, *child, child_path, fp);
    }
  }
}

std::string render_literal(const DeltaLiteral& l) {
  return l.positive ? l.delta : "!" + l.delta;
}

std::string render_condition(const std::vector<DeltaLiteral>& cond) {
  std::string out;
  for (const DeltaLiteral& l : cond) {
    if (!out.empty()) out += " && ";
    out += render_literal(l);
  }
  return out;
}

/// A slice's extraction output under one activation condition.
struct Variant {
  size_t component = SIZE_MAX;  // SIZE_MAX = the shared core variant
  std::vector<DeltaLiteral> cond;
  std::vector<logic::Formula> cond_formulas;
  std::vector<MemRegion> regions;
  Findings extraction_findings;
};

struct ClaimVariant {
  std::vector<DeltaLiteral> cond;
  std::vector<logic::Formula> cond_formulas;
  std::vector<checkers::IrqClaim> irq;
  std::vector<checkers::ClockClaim> clock;
};

struct Expansion {
  bool reachable = false;
  bool capped = false;
  std::string summary;
  std::set<std::string> sample;
};

class Engine {
 public:
  Engine(const delta::ProductLine& line, const feature::FeatureModel& model,
         const LiftOptions& opts, support::DiagnosticEngine& diags)
      : line_(line),
        model_(model),
        opts_(opts),
        diags_(diags),
        solver_(opts.backend) {}

  LiftedResult run() {
    obs::Span span("lift.check_family", "lift");
    if (!build_union()) return std::move(result_);
    build_components();
    encode_family();
    if (solver_.check() != smt::CheckResult::kUnsat) {
      if (!enumerate_patterns()) return std::move(result_);
      build_slices();
      assert_fail_classes();
      discharge_obligations();
      check_exclusivity();
    }
    expand_findings();
    result_.solver_checks = solver_.stats().checks;
    result_.ok = ok_;
    sort_findings();
    return std::move(result_);
  }

 private:
  // -- Step 1: union tree + footprints ------------------------------------

  bool build_union() {
    obs::Span span("lift.union", "lift");
    const auto& deltas = line_.deltas();
    footprints_.resize(deltas.size());
    std::vector<const delta::DeltaModule*> all;
    all.reserve(deltas.size());
    for (const delta::DeltaModule& d : deltas) all.push_back(&d);
    auto order = line_.linearize(all, diags_);
    if (!order) {
      ok_ = false;
      return false;
    }
    union_tree_ = line_.core().clone();
    for (const delta::DeltaModule* d : *order) {
      const size_t idx = delta_index(d->name);
      if (!union_apply(*d, footprints_[idx])) return false;
    }
    return true;
  }

  size_t delta_index(const std::string& name) const {
    const auto& deltas = line_.deltas();
    for (size_t i = 0; i < deltas.size(); ++i) {
      if (deltas[i].name == name) return i;
    }
    return SIZE_MAX;
  }

  /// Tolerant application into the union tree: adds/modifies merge (no
  /// collision failures), removals are recorded but not executed, and
  /// unresolvable targets are skipped (the strict slice application decides
  /// what that means product by product). A bare-name target matching more
  /// than one union node is refused outright: its resolution could differ
  /// across products, and the lifted encoding has no way to say so.
  bool union_apply(const delta::DeltaModule& d, Footprint& fp) {
    for (const delta::Operation& op : d.operations) {
      std::vector<dts::Node*> candidates =
          delta::resolve_target_candidates(*union_tree_, op.target);
      if (!op.target.empty() && op.target[0] != '/' && candidates.size() > 1) {
        diags_.error("lift",
                     "delta '" + d.name + "' targets '" + op.target +
                         "' which is ambiguous in the family union (" +
                         std::to_string(candidates.size()) +
                         " matches); lifted checking requires unambiguous "
                         "targets — use an absolute path",
                     op.location);
        ok_ = false;
        return false;
      }
      if (candidates.empty()) continue;
      dts::Node* target = candidates.front();
      const std::string path = union_tree_->path_of(*target);
      switch (op.kind) {
        case delta::OpKind::kAdds:
        case delta::OpKind::kModifies: {
          if (!op.body) break;
          auto fragment = op.body->clone();
          record_merge(target, *fragment, path, fp);
          fragment->set_name(target->name());
          target->merge_from(std::move(*fragment));
          break;
        }
        case delta::OpKind::kRemovesNode:
          fp.add_prefix(path);
          note_subtree_env(fp, *target);
          break;
        case delta::OpKind::kRemovesProperty:
          note_property(fp, path, op.property_name);
          break;
      }
    }
    return true;
  }

  // -- Step 2: components -------------------------------------------------

  void build_components() {
    const size_t n = footprints_.size();
    UnionFind uf(n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        if (footprints_intersect(footprints_[i], footprints_[j])) {
          uf.join(i, j);
        }
      }
    }
    std::map<size_t, size_t> root_to_comp;
    for (size_t i = 0; i < n; ++i) {
      const size_t root = uf.find(i);
      auto [it, fresh] = root_to_comp.try_emplace(root, components_.size());
      if (fresh) components_.emplace_back();
      components_[it->second].push_back(i);
      auto& items = component_items_.emplace(it->second, std::vector<CoverItem>{})
                        .first->second;
      items.insert(items.end(), footprints_[i].items.begin(),
                   footprints_[i].items.end());
    }
    result_.components = components_.size();
  }

  /// Component whose footprint covers `path`, or SIZE_MAX (core-owned).
  /// Coverage is unique by construction: two components covering one path
  /// would have intersecting footprints and have been joined.
  size_t owner_of(const std::string& path) const {
    for (size_t c = 0; c < components_.size(); ++c) {
      if (covers(component_items_.at(c), path)) return c;
    }
    return SIZE_MAX;
  }

  // -- Step 3: feature encoding + activation patterns ---------------------

  void encode_family() {
    auto& fa = solver_.formulas();
    enc_ = feature::encode(model_, solver_);
    const auto& deltas = line_.deltas();
    activation_.reserve(deltas.size());
    for (const delta::DeltaModule& d : deltas) {
      logic::Formula a = solver_.bool_var("delta!" + d.name);
      solver_.add(fa.mk_iff(a, when_formula(d.when)));
      activation_.push_back(a);
    }
  }

  logic::Formula when_formula(const delta::WhenExpr& w) {
    auto& fa = solver_.formulas();
    switch (w.kind()) {
      case delta::WhenExpr::Kind::kTrue:
        return fa.make_true();
      case delta::WhenExpr::Kind::kFeature: {
        // An unknown feature name can never be selected — evaluate() treats
        // it as false, and so does the encoding.
        auto id = model_.find(w.feature_name());
        return id ? enc_.variables[id->index] : fa.make_false();
      }
      case delta::WhenExpr::Kind::kNot:
        return fa.mk_not(when_formula(w.lhs()));
      case delta::WhenExpr::Kind::kAnd:
        return fa.mk_and(when_formula(w.lhs()), when_formula(w.rhs()));
      case delta::WhenExpr::Kind::kOr:
        return fa.mk_or(when_formula(w.lhs()), when_formula(w.rhs()));
    }
    return fa.make_true();
  }

  /// All feature-reachable activation patterns of every component, by
  /// projected all-SAT on the component's activation literals under a
  /// retirable guard. Returns false (and reports) when a component blows
  /// the pattern cap.
  bool enumerate_patterns() {
    obs::Span span("lift.patterns", "lift");
    auto& fa = solver_.formulas();
    patterns_.resize(components_.size());
    for (size_t c = 0; c < components_.size(); ++c) {
      logic::Formula guard =
          solver_.bool_var("lift!pat!" + std::to_string(c));
      std::vector<logic::Formula> assume{guard};
      while (true) {
        if (solver_.check_assuming(assume) != smt::CheckResult::kSat) break;
        if (patterns_[c].size() >= opts_.max_patterns) {
          Finding f;
          f.kind = FindingKind::kEnumerationCapped;
          f.subject = "component " + std::to_string(c);
          f.message = "activation-pattern enumeration exceeded the cap of " +
                      std::to_string(opts_.max_patterns) +
                      " patterns; the lifted result is incomplete";
          result_.findings.push_back({std::move(f), {}, "", false, {}});
          ok_ = false;
          break;
        }
        std::vector<bool> pattern(components_[c].size());
        std::vector<logic::Formula> blocking;
        blocking.reserve(pattern.size());
        for (size_t k = 0; k < components_[c].size(); ++k) {
          const logic::Formula a = activation_[components_[c][k]];
          pattern[k] = solver_.model_bool(a);
          blocking.push_back(pattern[k] ? fa.mk_not(a) : a);
        }
        patterns_[c].push_back(std::move(pattern));
        solver_.add(fa.mk_implies(guard, fa.mk_or(blocking)));
      }
      solver_.retire(guard);
      result_.patterns += patterns_[c].size();
      if (!ok_) return false;
    }
    return true;
  }

  std::vector<DeltaLiteral> pattern_condition(size_t c,
                                              const std::vector<bool>& pat) {
    std::vector<DeltaLiteral> cond;
    cond.reserve(pat.size());
    for (size_t k = 0; k < pat.size(); ++k) {
      cond.push_back({line_.deltas()[components_[c][k]].name, pat[k]});
    }
    return cond;
  }

  std::vector<logic::Formula> condition_formulas(
      size_t c, const std::vector<bool>& pat) {
    auto& fa = solver_.formulas();
    std::vector<logic::Formula> out;
    out.reserve(pat.size());
    for (size_t k = 0; k < pat.size(); ++k) {
      const logic::Formula a = activation_[components_[c][k]];
      out.push_back(pat[k] ? a : fa.mk_not(a));
    }
    return out;
  }

  // -- Step 4: slices -----------------------------------------------------

  void build_slices() {
    obs::Span span("lift.slices", "lift");
    const bool irq_lifted = irq_component() != SIZE_MAX;
    const bool clock_lifted = clock_component() != SIZE_MAX;

    // The shared core variant: everything no component can touch is
    // constant across the family and extracted exactly once.
    {
      Variant core;
      auto filter = [&](const std::string& path) {
        return owner_of(path) == SIZE_MAX;
      };
      Findings ext;
      std::vector<MemRegion> regions =
          checkers::extract_regions(line_.core(), ext);
      for (MemRegion& r : regions) {
        if (filter(r.path)) core.regions.push_back(std::move(r));
      }
      for (Finding& f : ext) {
        if (filter(f.subject)) core.extraction_findings.push_back(std::move(f));
      }
      variants_.push_back(std::move(core));
      if (opts_.check_interrupts && !irq_lifted) {
        ClaimVariant cv;
        cv.irq = checkers::collect_interrupt_claims(line_.core());
        claim_variants_.push_back(std::move(cv));
      }
      if (opts_.check_clocks && !clock_lifted) {
        if (claim_variants_.empty() || !claim_variants_.back().cond.empty()) {
          claim_variants_.push_back({});
        }
        claim_variants_.back().clock =
            checkers::collect_clock_claims(line_.core());
      }
    }

    std::set<std::pair<std::string, std::string>> warned_pairs;
    for (size_t c = 0; c < components_.size(); ++c) {
      for (const std::vector<bool>& pat : patterns_[c]) {
        build_slice(c, pat, warned_pairs);
      }
    }
  }

  void build_slice(size_t c, const std::vector<bool>& pat,
                   std::set<std::pair<std::string, std::string>>& warned) {
    ++result_.slices;
    std::vector<const delta::DeltaModule*> subset;
    for (size_t k = 0; k < pat.size(); ++k) {
      if (pat[k]) subset.push_back(&line_.deltas()[components_[c][k]]);
    }
    std::vector<DeltaLiteral> cond = pattern_condition(c, pat);
    std::vector<logic::Formula> cond_fs = condition_formulas(c, pat);

    support::DiagnosticEngine sdiags;
    auto order = line_.linearize(subset, sdiags);
    if (!order) {
      // Unreachable for a subset of an acyclic delta set; treat as a
      // derivation failure so nothing is silently skipped.
      add_fail_class(std::move(cond), "delta ordering failed",
                     support::SourceLocation{});
      return;
    }
    std::unique_ptr<dts::Tree> tree = line_.core().clone();
    std::vector<delta::DeltaEffects> effects;
    std::vector<const delta::DeltaModule*> applied;
    for (const delta::DeltaModule* d : *order) {
      delta::DeltaEffects fx;
      if (!delta::apply_delta(*tree, *d, sdiags, &fx)) {
        std::string why = "application of delta '" + d->name + "' failed";
        for (const support::Diagnostic& diag : sdiags.diagnostics()) {
          if (diag.severity == support::Severity::kError) {
            why = diag.message;
            break;
          }
        }
        add_fail_class(std::move(cond), why, d->location);
        return;
      }
      applied.push_back(d);
      effects.push_back(std::move(fx));
    }
    for (const delta::AmbiguousPair& p :
         delta::find_unordered_conflicts(applied, effects)) {
      if (warned.insert({p.a, p.b}).second) {
        diags_.warning("delta-order",
                       "deltas '" + p.a + "' and '" + p.b + "' " + p.detail +
                           " but neither is ordered 'after' the other; "
                           "declaration order decides the outcome");
      }
    }

    Variant v;
    v.component = c;
    v.cond = std::move(cond);
    v.cond_formulas = std::move(cond_fs);
    Findings ext;
    std::vector<MemRegion> regions = checkers::extract_regions(*tree, ext);
    for (MemRegion& r : regions) {
      if (owner_of(r.path) == c) v.regions.push_back(std::move(r));
    }
    for (Finding& f : ext) {
      if (owner_of(f.subject) == c) {
        v.extraction_findings.push_back(std::move(f));
      }
    }
    const bool want_irq = opts_.check_interrupts && c == irq_component();
    const bool want_clock = opts_.check_clocks && c == clock_component();
    if (want_irq || want_clock) {
      ClaimVariant cv;
      cv.cond = v.cond;
      cv.cond_formulas = v.cond_formulas;
      if (want_irq) cv.irq = checkers::collect_interrupt_claims(*tree);
      if (want_clock) cv.clock = checkers::collect_clock_claims(*tree);
      claim_variants_.push_back(std::move(cv));
    }
    variants_.push_back(std::move(v));
  }

  size_t irq_component() const { return env_component(kIrqEnv); }
  size_t clock_component() const { return env_component(kClockEnv); }
  size_t env_component(const char* env) const {
    for (size_t c = 0; c < components_.size(); ++c) {
      if (has_env(component_items_.at(c), env)) return c;
    }
    return SIZE_MAX;
  }

  void add_fail_class(std::vector<DeltaLiteral> cond, const std::string& why,
                      support::SourceLocation loc) {
    Finding f;
    f.kind = FindingKind::kDeriveFailure;
    f.subject = render_condition(cond);
    f.location = loc;
    f.message = "product derivation fails: " + why;
    result_.findings.push_back({std::move(f), cond, "", false, {}});
    derive_fail_finding_.push_back(result_.findings.size() - 1);
    result_.fail_classes.push_back(std::move(cond));
  }

  // -- Step 5: obligations ------------------------------------------------

  void assert_fail_classes() {
    auto& fa = solver_.formulas();
    for (size_t k = 0; k < result_.fail_classes.size(); ++k) {
      logic::Formula fvar =
          solver_.bool_var("lift!fail!" + std::to_string(k));
      std::vector<logic::Formula> lits;
      for (const DeltaLiteral& l : result_.fail_classes[k]) {
        const logic::Formula a = activation_[delta_index(l.delta)];
        lits.push_back(l.positive ? a : fa.mk_not(a));
      }
      solver_.add(fa.mk_iff(fvar, fa.mk_and(lits)));
      not_fail_.push_back(fa.mk_not(fvar));
    }
  }

  /// Merges two variant conditions (used for cross-component region pairs;
  /// identical conditions collapse, disjoint delta sets concatenate).
  static std::vector<DeltaLiteral> merge_conditions(
      const std::vector<DeltaLiteral>& a, const std::vector<DeltaLiteral>& b) {
    std::vector<DeltaLiteral> out = a;
    for (const DeltaLiteral& l : b) {
      bool present = false;
      for (const DeltaLiteral& e : out) {
        if (e.delta == l.delta) {
          present = true;
          break;
        }
      }
      if (!present) out.push_back(l);
    }
    return out;
  }

  void discharge_obligations() {
    obs::Span span("lift.obligations", "lift");
    const uint32_t width = opts_.address_bits;

    // Flat region list across every variant, masked into the solver's w-bit
    // view for the sweep-line prefilter (mirrors the planned per-product
    // path byte for byte: raw size for zero-size, masked for wrap).
    struct FlatRegion {
      size_t variant;
      MemRegion masked;
      const MemRegion* orig;
    };
    std::vector<FlatRegion> flat;
    for (size_t vi = 0; vi < variants_.size(); ++vi) {
      Variant& v = variants_[vi];
      for (Finding& f : v.extraction_findings) {
        queue_finding(f, v.cond);
      }
      for (const MemRegion& r : v.regions) {
        if (r.size == 0) {
          if (opts_.warn_zero_size) {
            Finding f = checkers::zero_size_finding(r);
            queue_finding(f, v.cond);
          }
          continue;
        }
        MemRegion m = r;
        m.base = checkers::mask_address(m.base, width);
        m.size = checkers::mask_address(m.size, width);
        if (checkers::region_wraps(m.base, m.size, width)) {
          Finding f = checkers::wrap_finding(r, width);
          queue_finding(f, v.cond);
          continue;  // empty in the w-bit encoding: cannot overlap
        }
        flat.push_back({vi, std::move(m), &r});
      }
    }

    // Sweep-line prefilter over every variant's regions at once; pairs from
    // the same component but different patterns are mutually exclusive and
    // dropped here, everything else goes to the solver under its merged
    // activation assumptions.
    std::vector<MemRegion> shadow;
    shadow.reserve(flat.size());
    for (const FlatRegion& fr : flat) shadow.push_back(fr.masked);
    for (const checkers::OverlapPair& pair :
         checkers::find_overlaps_sweepline(shadow)) {
      const FlatRegion& a = flat[pair.first];
      const FlatRegion& b = flat[pair.second];
      const Variant& va = variants_[a.variant];
      const Variant& vb = variants_[b.variant];
      if (a.variant != b.variant && va.component == vb.component &&
          va.component != SIZE_MAX) {
        continue;  // different patterns of one component: never co-active
      }
      discharge_overlap(*a.orig, *b.orig, va, vb);
    }

    discharge_claims();
  }

  void discharge_overlap(const MemRegion& a, const MemRegion& b,
                         const Variant& va, const Variant& vb) {
    ++result_.obligations;
    obs::count("lift.obligations", "lift", 1);
    auto& fa = solver_.formulas();
    const uint32_t width = opts_.address_bits;
    const std::string ns = "lift!ov" + std::to_string(fresh_counter_++);
    checkers::OverlapQuery q =
        checkers::build_overlap_query(solver_, a, b, width, ns);
    logic::Formula g = solver_.bool_var(ns + ".g");
    for (logic::Formula f : q.formulas) solver_.add(fa.mk_implies(g, f));
    std::vector<logic::Formula> assume{g};
    assume.insert(assume.end(), va.cond_formulas.begin(),
                  va.cond_formulas.end());
    for (logic::Formula f : vb.cond_formulas) {
      if (std::find(assume.begin(), assume.end(), f) == assume.end()) {
        assume.push_back(f);
      }
    }
    assume.insert(assume.end(), not_fail_.begin(), not_fail_.end());
    if (solver_.check_assuming(assume) == smt::CheckResult::kSat) {
      // The witness is pinned at query construction (see semantic.hpp), so
      // its value is known concretely — identical across backends.
      const uint64_t witness = std::max(checkers::mask_address(a.base, width),
                                        checkers::mask_address(b.base, width));
      Finding f = checkers::overlap_finding(a, b, witness);
      queue_finding(f, merge_conditions(va.cond, vb.cond));
    }
    solver_.retire(g);
  }

  /// Interrupt/clock uniqueness: claims only ever vary inside the one
  /// component that owns the environment (every delta that can create,
  /// remove, or re-interpret a claim carries the "<irq>"/"<clock>" marker),
  /// so colliding pairs always live inside a single claim variant and the
  /// obligation is a guarded equality query under that variant's condition.
  void discharge_claims() {
    auto& bv = solver_.bitvectors();
    auto& fa = solver_.formulas();
    for (const ClaimVariant& cv : claim_variants_) {
      auto run_pairs = [&](const auto& claims, auto comparable, auto equal,
                           auto make_terms, auto make_finding) {
        for (size_t i = 0; i < claims.size(); ++i) {
          for (size_t j = i + 1; j < claims.size(); ++j) {
            if (!comparable(claims[i], claims[j])) continue;
            if (!equal(claims[i], claims[j])) continue;  // bucket prefilter
            ++result_.obligations;
            obs::count("lift.obligations", "lift", 1);
            const std::string ns =
                "lift!cl" + std::to_string(fresh_counter_++);
            logic::Formula g = solver_.bool_var(ns + ".g");
            make_terms(ns, g, claims[i], claims[j]);
            std::vector<logic::Formula> assume{g};
            assume.insert(assume.end(), cv.cond_formulas.begin(),
                          cv.cond_formulas.end());
            assume.insert(assume.end(), not_fail_.begin(), not_fail_.end());
            if (solver_.check_assuming(assume) == smt::CheckResult::kSat) {
              Finding f = make_finding(claims[i], claims[j]);
              queue_finding(f, cv.cond);
            }
            solver_.retire(g);
          }
        }
      };
      run_pairs(
          cv.irq,
          [](const checkers::IrqClaim& a, const checkers::IrqClaim& b) {
            return a.parent_phandle == b.parent_phandle &&
                   a.tuple.size() == b.tuple.size();
          },
          [](const checkers::IrqClaim& a, const checkers::IrqClaim& b) {
            return a.tuple == b.tuple;
          },
          [&](const std::string& ns, logic::Formula g,
              const checkers::IrqClaim& a, const checkers::IrqClaim& b) {
            for (size_t k = 0; k < a.tuple.size(); ++k) {
              logic::BvTerm ta =
                  bv.bv_var(ns + ".a" + std::to_string(k), 32);
              logic::BvTerm tb =
                  bv.bv_var(ns + ".b" + std::to_string(k), 32);
              solver_.add(
                  fa.mk_implies(g, bv.eq(ta, bv.bv_const(a.tuple[k], 32))));
              solver_.add(
                  fa.mk_implies(g, bv.eq(tb, bv.bv_const(b.tuple[k], 32))));
              solver_.add(fa.mk_implies(g, bv.eq(ta, tb)));
            }
          },
          checkers::interrupt_collision_finding);
      run_pairs(
          cv.clock,
          [](const checkers::ClockClaim& a, const checkers::ClockClaim& b) {
            return a.provider_phandle == b.provider_phandle &&
                   a.tuple.size() == b.tuple.size();
          },
          [](const checkers::ClockClaim& a, const checkers::ClockClaim& b) {
            return a.tuple == b.tuple;
          },
          [&](const std::string& ns, logic::Formula g,
              const checkers::ClockClaim& a, const checkers::ClockClaim& b) {
            logic::BvTerm pa = bv.bv_var(ns + ".pa", 32);
            logic::BvTerm pb = bv.bv_var(ns + ".pb", 32);
            solver_.add(fa.mk_implies(
                g, bv.eq(pa, bv.bv_const(a.provider_phandle, 32))));
            solver_.add(fa.mk_implies(
                g, bv.eq(pb, bv.bv_const(b.provider_phandle, 32))));
            solver_.add(fa.mk_implies(g, bv.eq(pa, pb)));
            for (size_t k = 0; k < a.tuple.size(); ++k) {
              logic::BvTerm ta =
                  bv.bv_var(ns + ".a" + std::to_string(k), 32);
              logic::BvTerm tb =
                  bv.bv_var(ns + ".b" + std::to_string(k), 32);
              solver_.add(
                  fa.mk_implies(g, bv.eq(ta, bv.bv_const(a.tuple[k], 32))));
              solver_.add(
                  fa.mk_implies(g, bv.eq(tb, bv.bv_const(b.tuple[k], 32))));
              solver_.add(fa.mk_implies(g, bv.eq(ta, tb)));
            }
          },
          checkers::clock_collision_finding);
    }
  }

  /// The exclusivity lift: a listed exclusive feature that *every*
  /// configuration selects means the family cannot trade it away — the
  /// family-level analogue of two VMs claiming one exclusive resource.
  void check_exclusivity() {
    auto& fa = solver_.formulas();
    for (const std::string& name : opts_.exclusive_features) {
      auto id = model_.find(name);
      if (!id) continue;
      ++result_.obligations;
      std::vector<logic::Formula> assume{
          fa.mk_not(enc_.variables[id->index])};
      if (solver_.check_assuming(assume) == smt::CheckResult::kUnsat) {
        Finding f;
        f.kind = FindingKind::kExclusivityViolation;
        f.severity = FindingSeverity::kWarning;
        f.subject = name;
        f.message = "exclusive feature '" + name +
                    "' is selected in every configuration of the family";
        result_.findings.push_back({std::move(f), {}, "", false, {}});
      }
    }
  }

  void queue_finding(Finding& f, std::vector<DeltaLiteral> cond) {
    result_.findings.push_back({std::move(f), std::move(cond), "", false, {}});
    pending_expand_.push_back(result_.findings.size() - 1);
  }

  // -- Step 6: per-finding configuration expansion ------------------------

  void expand_findings() {
    obs::Span span("lift.expand", "lift");
    // Derive-failure findings expand without the not-fail exclusion (they
    // ARE the failures); check findings exclude failing configurations.
    std::vector<size_t> keep;
    std::set<size_t> drop;
    for (size_t idx : derive_fail_finding_) {
      LiftedFinding& lf = result_.findings[idx];
      Expansion e = expand(lf.condition, /*exclude_failures=*/false);
      lf.config_summary = e.summary;
      lf.config_summary_capped = e.capped;
      lf.sample_config = std::move(e.sample);
    }
    for (size_t idx : pending_expand_) {
      LiftedFinding& lf = result_.findings[idx];
      Expansion e = expand(lf.condition, /*exclude_failures=*/true);
      if (!e.reachable) {
        // No configuration both activates this pattern and survives
        // derivation: the obligation's subject never exists in a product.
        drop.insert(idx);
        continue;
      }
      lf.config_summary = e.summary;
      lf.config_summary_capped = e.capped;
      lf.sample_config = std::move(e.sample);
    }
    if (!drop.empty()) {
      std::vector<LiftedFinding> kept;
      kept.reserve(result_.findings.size() - drop.size());
      for (size_t i = 0; i < result_.findings.size(); ++i) {
        if (!drop.count(i)) kept.push_back(std::move(result_.findings[i]));
      }
      result_.findings = std::move(kept);
    }
  }

  Expansion expand(const std::vector<DeltaLiteral>& cond,
                   bool exclude_failures) {
    std::string memo_key = (exclude_failures ? "1|" : "0|");
    {
      std::vector<std::string> lits;
      for (const DeltaLiteral& l : cond) lits.push_back(render_literal(l));
      std::sort(lits.begin(), lits.end());
      for (const std::string& l : lits) memo_key += l + "|";
    }
    auto memo = expansion_memo_.find(memo_key);
    if (memo != expansion_memo_.end()) return memo->second;

    auto& fa = solver_.formulas();
    // Support: the features the condition's `when` expressions mention —
    // the summary projects onto exactly those.
    std::set<std::string> support_set;
    for (const DeltaLiteral& l : cond) {
      if (const delta::DeltaModule* d = line_.find_delta(l.delta)) {
        d->when.collect_features(support_set);
      }
    }
    std::vector<std::pair<std::string, logic::Formula>> support;
    for (const std::string& f : support_set) {
      if (auto id = model_.find(f)) {
        support.emplace_back(f, enc_.variables[id->index]);
      }
    }

    Expansion e;
    logic::Formula g =
        solver_.bool_var("lift!cfg!" + std::to_string(fresh_counter_++));
    std::vector<logic::Formula> assume{g};
    for (const DeltaLiteral& l : cond) {
      const logic::Formula a = activation_[delta_index(l.delta)];
      assume.push_back(l.positive ? a : fa.mk_not(a));
    }
    if (exclude_failures) {
      assume.insert(assume.end(), not_fail_.begin(), not_fail_.end());
    }
    std::vector<std::string> classes;
    const uint64_t cap = std::max<uint64_t>(1, opts_.max_configs);
    while (true) {
      if (solver_.check_assuming(assume) != smt::CheckResult::kSat) break;
      obs::count("lift.allsat_models", "lift", 1);
      e.reachable = true;
      if (e.sample.empty()) {
        for (uint32_t i = 0; i < model_.size(); ++i) {
          if (solver_.model_bool(enc_.variables[i])) {
            e.sample.insert(model_.feature(feature::FeatureId{i}).name);
          }
        }
      }
      if (support.empty()) {
        e.summary = "all configurations";
        break;
      }
      if (classes.size() >= cap) {
        e.capped = true;
        break;
      }
      std::string cls;
      std::vector<logic::Formula> blocking;
      blocking.reserve(support.size());
      for (const auto& [name, var] : support) {
        const bool on = solver_.model_bool(var);
        if (!cls.empty()) cls += " && ";
        cls += on ? name : "!" + name;
        blocking.push_back(on ? fa.mk_not(var) : var);
      }
      classes.push_back(std::move(cls));
      obs::count("lift.violating_configs", "lift", 1);
      solver_.add(fa.mk_implies(g, fa.mk_or(blocking)));
    }
    solver_.retire(g);
    if (e.summary.empty()) {
      std::sort(classes.begin(), classes.end());
      for (const std::string& c : classes) {
        if (!e.summary.empty()) e.summary += " || ";
        e.summary += c;
      }
      if (e.capped) e.summary += " || ...";
    }
    expansion_memo_.emplace(std::move(memo_key), e);
    return e;
  }

  void sort_findings() {
    std::stable_sort(result_.findings.begin(), result_.findings.end(),
                     [](const LiftedFinding& x, const LiftedFinding& y) {
                       const auto kx = std::make_tuple(
                           static_cast<int>(x.finding.kind), x.finding.subject,
                           x.finding.other_subject, x.finding.message,
                           render_condition(x.condition));
                       const auto ky = std::make_tuple(
                           static_cast<int>(y.finding.kind), y.finding.subject,
                           y.finding.other_subject, y.finding.message,
                           render_condition(y.condition));
                       return kx < ky;
                     });
  }

  const delta::ProductLine& line_;
  const feature::FeatureModel& model_;
  const LiftOptions& opts_;
  support::DiagnosticEngine& diags_;
  smt::Solver solver_;
  feature::Encoding enc_;
  std::vector<logic::Formula> activation_;  // a_d per delta index
  std::unique_ptr<dts::Tree> union_tree_;
  std::vector<Footprint> footprints_;
  std::vector<std::vector<size_t>> components_;  // delta indices, sorted
  std::map<size_t, std::vector<CoverItem>> component_items_;
  std::vector<std::vector<std::vector<bool>>> patterns_;  // per component
  std::vector<Variant> variants_;
  std::vector<ClaimVariant> claim_variants_;
  std::vector<logic::Formula> not_fail_;
  std::vector<size_t> pending_expand_;
  std::vector<size_t> derive_fail_finding_;
  std::map<std::string, Expansion> expansion_memo_;
  uint64_t fresh_counter_ = 0;
  LiftedResult result_;
  bool ok_ = true;
};

}  // namespace

LiftedResult check_family(const delta::ProductLine& line,
                          const feature::FeatureModel& model,
                          const LiftOptions& opts,
                          support::DiagnosticEngine& diags) {
  return Engine(line, model, opts, diags).run();
}

checkers::Findings flatten(const LiftedResult& result) {
  checkers::Findings out;
  out.reserve(result.findings.size());
  for (const LiftedFinding& lf : result.findings) {
    checkers::Finding f = lf.finding;
    if (!lf.config_summary.empty()) {
      f.message += " [configs: " + lf.config_summary + "]";
    }
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace llhsc::lift

#include "lift/synthetic.hpp"

#include <cstdio>
#include <string>

#include "dts/parser.hpp"
#include "support/diagnostics.hpp"

namespace llhsc::lift {

SyntheticSpl make_synthetic_spl(uint32_t n, bool with_overlap) {
  SyntheticSpl spl;
  feature::FeatureId root = spl.model.add_root("synth");
  for (uint32_t i = 0; i < n; ++i) {
    spl.model.add_feature(root, "f" + std::to_string(i));
  }

  support::DiagnosticEngine diags;
  auto core = dts::parse_dts(
      "/dts-v1/;\n/ { #address-cells = <1>; #size-cells = <1>; };\n",
      "synthetic-core.dts", diags);

  std::string delta_src;
  for (uint32_t i = 0; i < n; ++i) {
    // dev1 collides with dev0's [0x10000000, +0x1000) window when asked to;
    // everything else gets its own 16 MiB stride (fits 32 bits for n <= 24).
    const uint64_t base = (with_overlap && i == 1)
                              ? 0x10000800ull
                              : 0x10000000ull + 0x1000000ull * i;
    char hex[20];
    std::snprintf(hex, sizeof hex, "0x%llx",
                  static_cast<unsigned long long>(base));
    const std::string id = std::to_string(i);
    delta_src += "delta dev" + id + " when (f" + id + ") {\n";
    delta_src += "  adds binding / {\n";
    delta_src += "    dev" + id + "@" + (hex + 2) + " {\n";
    delta_src += "      reg = <" + std::string(hex) + " 0x1000>;\n";
    delta_src += "    };\n  }\n}\n";
  }
  std::vector<delta::DeltaModule> deltas =
      delta::parse_deltas(delta_src, "synthetic.deltas", diags);
  spl.line =
      std::make_unique<delta::ProductLine>(std::move(core), std::move(deltas));
  return spl;
}

}  // namespace llhsc::lift

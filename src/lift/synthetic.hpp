// Synthetic product lines for lifted-vs-enumeration benches and tests: n
// optional independent features f0..f{n-1}, each guarding one delta that
// adds one device with one reg entry — 2^n products, n singleton components.
// With `with_overlap`, dev1's region collides with dev0's, so the family
// has exactly one address-overlap finding under condition dev0 && dev1.
#pragma once

#include <cstdint>
#include <memory>

#include "delta/delta.hpp"
#include "feature/model.hpp"

namespace llhsc::lift {

struct SyntheticSpl {
  std::unique_ptr<delta::ProductLine> line;
  feature::FeatureModel model;
};

/// Builds the n-feature synthetic SPL described above. `n` must be >= 1
/// (and <= 24 to keep every region inside 32-bit space).
[[nodiscard]] SyntheticSpl make_synthetic_spl(uint32_t n, bool with_overlap);

}  // namespace llhsc::lift

// Delta-oriented programming (DOP) for DTS product lines — paper §II-B/§III.
// A ProductLine is a core DTS plus delta modules; each delta carries a
// `when` activation condition (propositional over feature names), `after`
// ordering constraints, and a list of operations:
//
//   adds binding <target> { fragment }   -- new children/properties under an
//                                           existing node (error if a child
//                                           already exists)
//   modifies <target> { fragment }       -- merge into an existing node
//                                           (properties override, children
//                                           merge; dtc semantics)
//   removes <target>                     -- delete a node
//   removes property <target> <name>     -- delete one property
//
// <target> is a node path ("/", "/cpus/cpu@0") or a unique node name
// ("memory@40000000", base names allowed when unambiguous).
//
// Application stamps provenance: every node/property a delta creates or
// overwrites records the delta name, so checker findings trace back to the
// culpable delta (§III-B).
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dts/tree.hpp"
#include "support/diagnostics.hpp"

namespace llhsc::delta {

/// Propositional activation condition over feature names.
class WhenExpr {
 public:
  enum class Kind : uint8_t { kTrue, kFeature, kNot, kAnd, kOr };

  static WhenExpr always();
  static WhenExpr feature(std::string name);
  static WhenExpr negate(WhenExpr e);
  static WhenExpr conj(WhenExpr a, WhenExpr b);
  static WhenExpr disj(WhenExpr a, WhenExpr b);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] const std::string& feature_name() const { return name_; }
  [[nodiscard]] const WhenExpr& lhs() const { return children_.at(0); }
  [[nodiscard]] const WhenExpr& rhs() const { return children_.at(1); }

  /// Evaluates against the set of selected feature names.
  [[nodiscard]] bool evaluate(const std::set<std::string>& selected) const;
  /// All feature names referenced.
  void collect_features(std::set<std::string>& out) const;
  [[nodiscard]] std::string to_string() const;

 private:
  Kind kind_ = Kind::kTrue;
  std::string name_;
  std::vector<WhenExpr> children_;
};

enum class OpKind : uint8_t { kAdds, kModifies, kRemovesNode, kRemovesProperty };

[[nodiscard]] std::string_view to_string(OpKind k);

struct Operation {
  OpKind kind = OpKind::kModifies;
  std::string target;               // node path or unique name
  std::string property_name;        // kRemovesProperty
  std::unique_ptr<dts::Node> body;  // kAdds / kModifies fragment
  support::SourceLocation location;

  Operation() = default;
  Operation(const Operation& other);
  Operation& operator=(const Operation& other);
  Operation(Operation&&) = default;
  Operation& operator=(Operation&&) = default;
};

struct DeltaModule {
  std::string name;
  WhenExpr when = WhenExpr::always();
  std::vector<std::string> after;
  std::vector<Operation> operations;
  support::SourceLocation location;
};

/// Footprint of one applied delta, recorded during application when a
/// recorder is supplied: which (path, property) pairs it wrote or removed,
/// which subtree roots it created or removed, and where its operation
/// targets resolved. find_unordered_conflicts turns two footprints into an
/// order-sensitivity verdict; the lift engine (src/lift) reuses the same
/// data to scope presence conditions.
struct DeltaEffects {
  std::string delta;  // module name
  /// (node path, property name) pairs written or removed.
  std::vector<std::pair<std::string, std::string>> writes;
  /// Roots of subtrees this delta created (nested content is implied).
  std::vector<std::string> creates;
  /// Roots of subtrees this delta removed.
  std::vector<std::string> removes;
  /// Resolved operation target paths (successful resolutions only).
  std::vector<std::string> targets;
  /// True when any operation failed (missing target, add collision, ...).
  bool failed = false;
};

/// One order-sensitive, unordered delta pair: applying `a` and `b` in
/// different orders yields different trees (or different failures), yet no
/// direct `after` edge connects them — so the declaration-order tiebreak,
/// not the author, decides the outcome.
struct AmbiguousPair {
  std::string a;       // earlier delta in the analysed order
  std::string b;       // later delta
  std::string detail;  // what the two deltas race on
};

/// Detects order-sensitive unordered pairs among `order` (with matching
/// `effects`, as recorded by apply_delta): write-write on the same
/// (path, property), creation of the same node, a removal racing any touch
/// of the removed subtree, and an operation targeting a node another delta
/// creates. Pairs connected by a direct `after` edge are ordered and
/// skipped. Deterministic: pairs come out in (i, j) order of `order`, one
/// entry per pair (first matching rule wins).
[[nodiscard]] std::vector<AmbiguousPair> find_unordered_conflicts(
    const std::vector<const DeltaModule*>& order,
    const std::vector<DeltaEffects>& effects);

/// Core DTS + deltas. Owns its trees.
class ProductLine {
 public:
  ProductLine(std::unique_ptr<dts::Tree> core, std::vector<DeltaModule> deltas);

  [[nodiscard]] const dts::Tree& core() const { return *core_; }
  [[nodiscard]] const std::vector<DeltaModule>& deltas() const { return deltas_; }
  [[nodiscard]] const DeltaModule* find_delta(std::string_view name) const;

  /// Deltas whose `when` holds under the selection, in declaration order.
  [[nodiscard]] std::vector<const DeltaModule*> active_deltas(
      const std::set<std::string>& selected_features) const;

  /// Linearises an explicit subset of this line's deltas respecting `after`
  /// (declaration order breaks ties; edges to deltas outside `subset` impose
  /// no constraint — DOP semantics). Reports cycles and unknown `after`
  /// targets; nullopt on error. The lift engine orders per-pattern delta
  /// subsets through this without synthesising a feature selection.
  [[nodiscard]] std::optional<std::vector<const DeltaModule*>> linearize(
      const std::vector<const DeltaModule*>& subset,
      support::DiagnosticEngine& diags) const;

  /// Linearises active deltas respecting `after` (declaration order breaks
  /// ties). Reports cycles and unknown `after` targets; nullopt on error.
  [[nodiscard]] std::optional<std::vector<const DeltaModule*>> application_order(
      const std::set<std::string>& selected_features,
      support::DiagnosticEngine& diags) const;

  /// Applies the ordered deltas to a clone of the core. Returns nullptr when
  /// activation/ordering/application failed (details in diags). Unordered
  /// order-sensitive delta pairs among the applied set are reported as
  /// "delta-order" warnings (see find_unordered_conflicts).
  [[nodiscard]] std::unique_ptr<dts::Tree> derive(
      const std::set<std::string>& selected_features,
      support::DiagnosticEngine& diags) const;

 private:
  std::unique_ptr<dts::Tree> core_;
  std::vector<DeltaModule> deltas_;
};

/// Applies one delta to a tree in place. Used by derive() and directly by
/// tests. Returns false on failed operations (missing targets, add
/// collisions); diagnostics name the delta. When `effects` is non-null the
/// delta's footprint is recorded into it (see DeltaEffects).
bool apply_delta(dts::Tree& tree, const DeltaModule& delta,
                 support::DiagnosticEngine& diags,
                 DeltaEffects* effects = nullptr);

/// All nodes in `tree` matching a delta operation target: the single node at
/// an absolute path, or every node whose name or base name equals a bare
/// name. apply_delta resolves through this (and fails on multiple matches);
/// the lift engine uses the candidate list to detect resolutions that would
/// be ambiguous somewhere in the family.
[[nodiscard]] std::vector<dts::Node*> resolve_target_candidates(
    dts::Tree& tree, const std::string& target);

/// Parses the delta-module language of paper Listing 4. Returns the modules
/// in declaration order; parse errors are reported and the affected module
/// skipped.
[[nodiscard]] std::vector<DeltaModule> parse_deltas(
    std::string_view source, std::string filename,
    support::DiagnosticEngine& diags);

}  // namespace llhsc::delta

// Delta application: resolves operation targets against the tree and applies
// adds/modifies/removes with provenance stamping.
#include "delta/delta.hpp"

namespace llhsc::delta {

namespace {

/// Resolves a target to a node: absolute paths go through Tree::find;
/// bare names search the whole tree for a unique (base-)name match.
dts::Node* resolve_target(dts::Tree& tree, const std::string& target) {
  if (!target.empty() && target[0] == '/') return tree.find(target);
  dts::Node* match = nullptr;
  bool ambiguous = false;
  tree.visit([&](const std::string&, dts::Node& n) {
    if (n.name() == target || n.base_name() == target) {
      if (match != nullptr && match != &n) ambiguous = true;
      if (match == nullptr) match = &n;
    }
  });
  return ambiguous ? nullptr : match;
}

/// Recursively stamps a fragment with the delta's name before it enters the
/// tree, so every created node/property is traceable.
void stamp(dts::Node& node, const std::string& delta_name) {
  node.set_provenance(delta_name);
  for (dts::Property& p : node.properties()) p.provenance = delta_name;
  for (const auto& c : node.children()) stamp(*c, delta_name);
}

/// adds: every fragment child must be new; fragment properties must be new.
bool apply_adds(dts::Node& target, dts::Node&& fragment,
                const DeltaModule& delta, const Operation& op,
                support::DiagnosticEngine& diags) {
  bool ok = true;
  for (dts::Property& p : fragment.properties()) {
    if (target.find_property(p.name) != nullptr) {
      diags.error("delta-apply",
                  "delta '" + delta.name + "' adds property '" + p.name +
                      "' which already exists in " + op.target +
                      " (use modifies)",
                  op.location);
      ok = false;
      continue;
    }
    target.set_property(std::move(p));
  }
  // Move children out of the fragment.
  std::vector<std::unique_ptr<dts::Node>> kids;
  while (!fragment.children().empty()) {
    // remove_child pops by name; take the first each round.
    const support::Atom name = fragment.children().front()->name();
    if (target.find_child(name) != nullptr) {
      diags.error("delta-apply",
                  "delta '" + delta.name + "' adds node '" + name +
                      "' which already exists in " + op.target +
                      " (use modifies)",
                  op.location);
      ok = false;
      fragment.remove_child(name);
      continue;
    }
    target.add_child(fragment.children().front()->clone());
    fragment.remove_child(name);
  }
  return ok;
}

}  // namespace

bool apply_delta(dts::Tree& tree, const DeltaModule& delta,
                 support::DiagnosticEngine& diags) {
  bool ok = true;
  for (const Operation& op : delta.operations) {
    switch (op.kind) {
      case OpKind::kAdds: {
        dts::Node* target = resolve_target(tree, op.target);
        if (target == nullptr) {
          diags.error("delta-apply",
                      "delta '" + delta.name + "' adds into unknown node '" +
                          op.target + "'",
                      op.location);
          ok = false;
          break;
        }
        auto fragment = op.body ? op.body->clone() : nullptr;
        if (!fragment) break;
        stamp(*fragment, delta.name);
        if (!apply_adds(*target, std::move(*fragment), delta, op, diags)) {
          ok = false;
        }
        break;
      }
      case OpKind::kModifies: {
        dts::Node* target = resolve_target(tree, op.target);
        if (target == nullptr) {
          diags.error("delta-apply",
                      "delta '" + delta.name + "' modifies unknown node '" +
                          op.target + "'",
                      op.location);
          ok = false;
          break;
        }
        auto fragment = op.body ? op.body->clone() : nullptr;
        if (!fragment) break;
        stamp(*fragment, delta.name);
        fragment->set_name(target->name());
        // merge_from would overwrite the *target's* provenance with the
        // fragment's; that is exactly right — the delta now owns the change.
        target->merge_from(std::move(*fragment));
        break;
      }
      case OpKind::kRemovesNode: {
        dts::Node* target = resolve_target(tree, op.target);
        if (target == nullptr || target == &tree.root()) {
          diags.error("delta-apply",
                      "delta '" + delta.name + "' removes unknown node '" +
                          op.target + "'",
                      op.location);
          ok = false;
          break;
        }
        // Find the parent by path.
        std::string path = tree.path_of(*target);
        size_t slash = path.find_last_of('/');
        std::string parent_path = slash == 0 ? "/" : path.substr(0, slash);
        dts::Node* parent = tree.find(parent_path);
        if (parent == nullptr || !parent->remove_child(target->name())) {
          diags.error("delta-apply",
                      "delta '" + delta.name + "' failed to remove node '" +
                          op.target + "'",
                      op.location);
          ok = false;
        }
        break;
      }
      case OpKind::kRemovesProperty: {
        dts::Node* target = resolve_target(tree, op.target);
        if (target == nullptr) {
          diags.error("delta-apply",
                      "delta '" + delta.name +
                          "' removes property from unknown node '" + op.target +
                          "'",
                      op.location);
          ok = false;
          break;
        }
        if (!target->remove_property(op.property_name)) {
          diags.error("delta-apply",
                      "delta '" + delta.name + "' removes missing property '" +
                          op.property_name + "' from " + op.target,
                      op.location);
          ok = false;
        }
        break;
      }
    }
  }
  return ok;
}

}  // namespace llhsc::delta

// Delta application: resolves operation targets against the tree and applies
// adds/modifies/removes with provenance stamping. Optionally records each
// delta's footprint (DeltaEffects) so derive() and the lift engine can
// reason about which deltas race on which paths.
#include "delta/delta.hpp"

namespace llhsc::delta {

namespace {

std::string path_join(const std::string& parent, std::string_view name) {
  return parent == "/" ? "/" + std::string(name)
                       : parent + "/" + std::string(name);
}

/// Resolves a target to a node: absolute paths go through Tree::find;
/// bare names search the whole tree for a unique (base-)name match.
dts::Node* resolve_target(dts::Tree& tree, const std::string& target) {
  std::vector<dts::Node*> candidates = resolve_target_candidates(tree, target);
  return candidates.size() == 1 ? candidates.front() : nullptr;
}

/// Recursively stamps a fragment with the delta's name before it enters the
/// tree, so every created node/property is traceable.
void stamp(dts::Node& node, const std::string& delta_name) {
  node.set_provenance(delta_name);
  for (dts::Property& p : node.properties()) p.provenance = delta_name;
  for (const auto& c : node.children()) stamp(*c, delta_name);
}

/// Records what merging `fragment` into `target` touches: property writes at
/// each level, plus creation of fragment children the target lacks. Nested
/// content of a created child is implied by its `creates` root.
void record_modify_effects(const dts::Node* target, const dts::Node& fragment,
                           const std::string& path, DeltaEffects& fx) {
  for (const dts::Property& p : fragment.properties()) {
    fx.writes.emplace_back(path, std::string(p.name));
  }
  for (const auto& child : fragment.children()) {
    const dts::Node* existing =
        target != nullptr ? target->find_child(child->name()) : nullptr;
    const std::string child_path = path_join(path, child->name());
    if (existing == nullptr) {
      fx.creates.push_back(child_path);
    } else {
      record_modify_effects(existing, *child, child_path, fx);
    }
  }
}

/// adds: every fragment child must be new; fragment properties must be new.
bool apply_adds(dts::Node& target, dts::Node&& fragment,
                const DeltaModule& delta, const Operation& op,
                support::DiagnosticEngine& diags) {
  bool ok = true;
  for (dts::Property& p : fragment.properties()) {
    if (target.find_property(p.name) != nullptr) {
      diags.error("delta-apply",
                  "delta '" + delta.name + "' adds property '" + p.name +
                      "' which already exists in " + op.target +
                      " (use modifies)",
                  op.location);
      ok = false;
      continue;
    }
    target.set_property(std::move(p));
  }
  // Move children out of the fragment.
  std::vector<std::unique_ptr<dts::Node>> kids;
  while (!fragment.children().empty()) {
    // remove_child pops by name; take the first each round.
    const support::Atom name = fragment.children().front()->name();
    if (target.find_child(name) != nullptr) {
      diags.error("delta-apply",
                  "delta '" + delta.name + "' adds node '" + name +
                      "' which already exists in " + op.target +
                      " (use modifies)",
                  op.location);
      ok = false;
      fragment.remove_child(name);
      continue;
    }
    target.add_child(fragment.children().front()->clone());
    fragment.remove_child(name);
  }
  return ok;
}

}  // namespace

std::vector<dts::Node*> resolve_target_candidates(dts::Tree& tree,
                                                  const std::string& target) {
  std::vector<dts::Node*> out;
  if (!target.empty() && target[0] == '/') {
    if (dts::Node* n = tree.find(target)) out.push_back(n);
    return out;
  }
  tree.visit([&](const std::string&, dts::Node& n) {
    if (n.name() == target || n.base_name() == target) out.push_back(&n);
  });
  return out;
}

bool apply_delta(dts::Tree& tree, const DeltaModule& delta,
                 support::DiagnosticEngine& diags, DeltaEffects* effects) {
  bool ok = true;
  if (effects != nullptr) effects->delta = delta.name;
  for (const Operation& op : delta.operations) {
    switch (op.kind) {
      case OpKind::kAdds: {
        dts::Node* target = resolve_target(tree, op.target);
        if (target == nullptr) {
          diags.error("delta-apply",
                      "delta '" + delta.name + "' adds into unknown node '" +
                          op.target + "'",
                      op.location);
          ok = false;
          break;
        }
        auto fragment = op.body ? op.body->clone() : nullptr;
        if (!fragment) break;
        if (effects != nullptr) {
          const std::string path = tree.path_of(*target);
          effects->targets.push_back(path);
          for (const dts::Property& p : fragment->properties()) {
            effects->writes.emplace_back(path, std::string(p.name));
          }
          for (const auto& child : fragment->children()) {
            effects->creates.push_back(path_join(path, child->name()));
          }
        }
        stamp(*fragment, delta.name);
        if (!apply_adds(*target, std::move(*fragment), delta, op, diags)) {
          ok = false;
        }
        break;
      }
      case OpKind::kModifies: {
        dts::Node* target = resolve_target(tree, op.target);
        if (target == nullptr) {
          diags.error("delta-apply",
                      "delta '" + delta.name + "' modifies unknown node '" +
                          op.target + "'",
                      op.location);
          ok = false;
          break;
        }
        auto fragment = op.body ? op.body->clone() : nullptr;
        if (!fragment) break;
        if (effects != nullptr) {
          const std::string path = tree.path_of(*target);
          effects->targets.push_back(path);
          record_modify_effects(target, *fragment, path, *effects);
        }
        stamp(*fragment, delta.name);
        fragment->set_name(target->name());
        // merge_from would overwrite the *target's* provenance with the
        // fragment's; that is exactly right — the delta now owns the change.
        target->merge_from(std::move(*fragment));
        break;
      }
      case OpKind::kRemovesNode: {
        dts::Node* target = resolve_target(tree, op.target);
        if (target == nullptr || target == &tree.root()) {
          diags.error("delta-apply",
                      "delta '" + delta.name + "' removes unknown node '" +
                          op.target + "'",
                      op.location);
          ok = false;
          break;
        }
        // Find the parent by path.
        std::string path = tree.path_of(*target);
        if (effects != nullptr) {
          effects->targets.push_back(path);
          effects->removes.push_back(path);
        }
        size_t slash = path.find_last_of('/');
        std::string parent_path = slash == 0 ? "/" : path.substr(0, slash);
        dts::Node* parent = tree.find(parent_path);
        if (parent == nullptr || !parent->remove_child(target->name())) {
          diags.error("delta-apply",
                      "delta '" + delta.name + "' failed to remove node '" +
                          op.target + "'",
                      op.location);
          ok = false;
        }
        break;
      }
      case OpKind::kRemovesProperty: {
        dts::Node* target = resolve_target(tree, op.target);
        if (target == nullptr) {
          diags.error("delta-apply",
                      "delta '" + delta.name +
                          "' removes property from unknown node '" + op.target +
                          "'",
                      op.location);
          ok = false;
          break;
        }
        if (effects != nullptr) {
          const std::string path = tree.path_of(*target);
          effects->targets.push_back(path);
          effects->writes.emplace_back(path, op.property_name);
        }
        if (!target->remove_property(op.property_name)) {
          diags.error("delta-apply",
                      "delta '" + delta.name + "' removes missing property '" +
                          op.property_name + "' from " + op.target,
                      op.location);
          ok = false;
        }
        break;
      }
    }
  }
  if (effects != nullptr && !ok) effects->failed = true;
  return ok;
}

}  // namespace llhsc::delta

// Parser for the delta-module language (paper Listing 4). Reuses the DTS
// lexer; DTS fragments inside adds/modifies bodies are parsed by the shared
// node-body parser so the two languages cannot drift apart.
#include "delta/delta.hpp"
#include "dts/lexer.hpp"
#include "dts/parser.hpp"

namespace llhsc::delta {

namespace {

class DeltaParser {
 public:
  DeltaParser(std::string_view source, std::string filename,
              support::DiagnosticEngine& diags)
      : lexer_(source, std::move(filename), diags), diags_(&diags) {}

  std::vector<DeltaModule> parse_all() {
    std::vector<DeltaModule> out;
    while (true) {
      dts::Token t = lexer_.next();
      if (t.kind == dts::TokenKind::kEnd) break;
      if (t.kind == dts::TokenKind::kIdent && t.text == "delta") {
        auto module = parse_delta(t.location);
        if (module) out.push_back(std::move(*module));
      } else {
        error("expected 'delta' at top level, found '" + t.text + "'",
              t.location);
        skip_to_next_delta();
      }
    }
    return out;
  }

 private:
  void error(const std::string& msg, const support::SourceLocation& loc) {
    diags_->error("delta-parse", msg, loc);
  }

  void skip_to_next_delta() {
    int depth = 0;
    while (true) {
      const dts::Token& t = lexer_.peek();
      if (t.kind == dts::TokenKind::kEnd) return;
      if (depth == 0 && t.kind == dts::TokenKind::kIdent && t.text == "delta") {
        return;
      }
      if (t.kind == dts::TokenKind::kLBrace) ++depth;
      if (t.kind == dts::TokenKind::kRBrace) depth = depth > 0 ? depth - 1 : 0;
      lexer_.next();
    }
  }

  std::optional<DeltaModule> parse_delta(support::SourceLocation loc) {
    DeltaModule module;
    module.location = loc;
    dts::Token name = lexer_.next();
    if (name.kind != dts::TokenKind::kIdent) {
      error("expected delta name", name.location);
      skip_to_next_delta();
      return std::nullopt;
    }
    module.name = name.text;

    // Optional clauses in either order: after ..., when ...
    while (true) {
      const dts::Token& t = lexer_.peek();
      if (t.kind == dts::TokenKind::kIdent && t.text == "after") {
        lexer_.next();
        while (true) {
          dts::Token dep = lexer_.next();
          if (dep.kind != dts::TokenKind::kIdent) {
            error("expected delta name after 'after'", dep.location);
            break;
          }
          module.after.push_back(dep.text.str());
          if (lexer_.peek().kind == dts::TokenKind::kComma) {
            lexer_.next();
            continue;
          }
          break;
        }
      } else if (t.kind == dts::TokenKind::kIdent && t.text == "when") {
        lexer_.next();
        module.when = parse_when_or();
      } else {
        break;
      }
    }

    dts::Token open = lexer_.next();
    if (open.kind != dts::TokenKind::kLBrace) {
      error("expected '{' to open delta body", open.location);
      skip_to_next_delta();
      return std::nullopt;
    }

    while (true) {
      dts::Token t = lexer_.next();
      if (t.kind == dts::TokenKind::kRBrace) break;
      if (t.kind == dts::TokenKind::kEnd) {
        error("unexpected end of file inside delta '" + module.name + "'",
              t.location);
        return module;
      }
      if (t.kind != dts::TokenKind::kIdent) {
        error("expected operation keyword, found '" + t.text + "'", t.location);
        skip_to_next_delta();
        return module;
      }
      if (t.text == "adds") {
        // Optional "binding" keyword (paper syntax).
        if (lexer_.peek().kind == dts::TokenKind::kIdent &&
            lexer_.peek().text == "binding") {
          lexer_.next();
        }
        parse_fragment_op(module, OpKind::kAdds, t.location);
      } else if (t.text == "modifies") {
        parse_fragment_op(module, OpKind::kModifies, t.location);
      } else if (t.text == "removes") {
        parse_removes(module, t.location);
      } else {
        error("unknown operation '" + t.text + "'", t.location);
        skip_to_next_delta();
        return module;
      }
    }
    return module;
  }

  // target := '/' | path. Paths arrive as a mix of tokens because the DTS
  // lexer folds "/name/" into a directive token: "/soc/uart@1000" lexes as
  // Directive("soc") + Ident("uart@1000"). Assemble every path-shaped token
  // until the operation body ('{') or terminator (';') begins.
  std::optional<std::string> parse_target() {
    std::string target;
    bool any = false;
    // `expect_segment` gates ident consumption: an ident only joins the path
    // when it opens it or follows a '/', so "removes property <target>
    // <name>" leaves <name> for the caller.
    bool expect_segment = true;
    while (true) {
      const dts::Token& t = lexer_.peek();
      if (t.kind == dts::TokenKind::kSlash) {
        lexer_.next();
        if (target.empty() || target.back() != '/') target += '/';
        expect_segment = true;
      } else if (t.kind == dts::TokenKind::kDirective) {
        support::Atom text = lexer_.next().text;
        if (target.empty() || target.back() != '/') target += '/';
        target += text;
        target += '/';
        expect_segment = true;
      } else if (expect_segment && (t.kind == dts::TokenKind::kIdent ||
                                    t.kind == dts::TokenKind::kInt)) {
        target += lexer_.next().text;
        expect_segment = false;
      } else {
        break;
      }
      any = true;
    }
    if (!any) {
      error("expected operation target (node name or path)",
            lexer_.peek().location);
      return std::nullopt;
    }
    // Normalise a trailing '/' from the directive form ("/soc/" + end).
    if (target.size() > 1 && target.back() == '/') target.pop_back();
    return target;
  }

  void parse_fragment_op(DeltaModule& module, OpKind kind,
                         support::SourceLocation loc) {
    auto target = parse_target();
    if (!target) {
      skip_to_next_delta();
      return;
    }
    dts::Token open = lexer_.next();
    if (open.kind != dts::TokenKind::kLBrace) {
      error("expected '{' after operation target", open.location);
      skip_to_next_delta();
      return;
    }
    Operation op;
    op.kind = kind;
    op.target = *target;
    op.location = loc;
    op.body = std::make_unique<dts::Node>(*target);
    dts::parse_node_body_into(*op.body, lexer_, *diags_);
    module.operations.push_back(std::move(op));
    // Optional trailing ';' after the fragment (DTS habit).
    if (lexer_.peek().kind == dts::TokenKind::kSemi) lexer_.next();
  }

  void parse_removes(DeltaModule& module, support::SourceLocation loc) {
    Operation op;
    op.location = loc;
    if (lexer_.peek().kind == dts::TokenKind::kIdent &&
        lexer_.peek().text == "property") {
      lexer_.next();
      op.kind = OpKind::kRemovesProperty;
      auto target = parse_target();
      if (!target) return;
      op.target = *target;
      dts::Token prop = lexer_.next();
      if (prop.kind != dts::TokenKind::kIdent) {
        error("expected property name in 'removes property'", prop.location);
        return;
      }
      op.property_name = prop.text;
    } else {
      op.kind = OpKind::kRemovesNode;
      auto target = parse_target();
      if (!target) return;
      op.target = *target;
    }
    if (lexer_.peek().kind == dts::TokenKind::kSemi) lexer_.next();
    module.operations.push_back(std::move(op));
  }

  // when_expr := and_expr ('||' and_expr)*
  // '||' / '&&' arrive as two single-character kArith tokens; after consuming
  // the first, the second is required.
  WhenExpr parse_when_or() {
    WhenExpr lhs = parse_when_and();
    while (match_arith("|")) {
      if (!match_arith("|")) {
        error("expected '||' in when-expression", lexer_.peek().location);
      }
      WhenExpr rhs = parse_when_and();
      lhs = WhenExpr::disj(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  WhenExpr parse_when_and() {
    WhenExpr lhs = parse_when_unary();
    while (match_arith("&")) {
      if (!match_arith("&")) {
        error("expected '&&' in when-expression", lexer_.peek().location);
      }
      WhenExpr rhs = parse_when_unary();
      lhs = WhenExpr::conj(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  WhenExpr parse_when_unary() {
    const dts::Token& t = lexer_.peek();
    if (t.kind == dts::TokenKind::kArith && t.text == "!") {
      lexer_.next();
      return WhenExpr::negate(parse_when_unary());
    }
    if (t.kind == dts::TokenKind::kLParen) {
      lexer_.next();
      WhenExpr inner = parse_when_or();
      dts::Token close = lexer_.next();
      if (close.kind != dts::TokenKind::kRParen) {
        error("expected ')' in when-expression", close.location);
      }
      return inner;
    }
    if (t.kind == dts::TokenKind::kIdent || t.kind == dts::TokenKind::kInt) {
      dts::Token name = lexer_.next();
      return WhenExpr::feature(name.text.str());
    }
    dts::Token bad = lexer_.next();
    error("expected feature name in when-expression", bad.location);
    return WhenExpr::always();
  }

  /// Consumes one arith token with the given text if present.
  bool match_arith(const char* text) {
    const dts::Token& t = lexer_.peek();
    if (t.kind == dts::TokenKind::kArith && t.text == text) {
      lexer_.next();
      return true;
    }
    return false;
  }

  dts::Lexer lexer_;
  support::DiagnosticEngine* diags_;
};

}  // namespace

std::vector<DeltaModule> parse_deltas(std::string_view source,
                                      std::string filename,
                                      support::DiagnosticEngine& diags) {
  DeltaParser parser(source, std::move(filename), diags);
  return parser.parse_all();
}

}  // namespace llhsc::delta

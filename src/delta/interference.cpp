// Order-sensitivity analysis over recorded delta footprints (§III-B's strict
// partial order, audited). Two deltas conflict when applying them in
// different orders can yield different trees or different failures:
//
//   1. both write the same (path, property) — last writer wins;
//   2. both create the same node — the second application errors, the first
//      one's content survives;
//   3. one removes a subtree the other touches — remove-first fails the
//      toucher, touch-first silently loses the change;
//   4. one targets a node the other creates — target-first fails to resolve.
//
// A direct `after` edge between the two fixes the order and silences the
// pair. Anything subtler (transitive ordering through a third delta) is
// deliberately NOT honoured: `after` edges to inactive deltas impose no
// constraint, so a chain through a delta that another configuration
// deactivates gives no stable order across the family — exactly the
// situation the diagnostic exists to surface.
#include <algorithm>

#include "delta/delta.hpp"

namespace llhsc::delta {

namespace {

/// True when `path` equals `root` or lies inside its subtree.
bool within(const std::string& path, const std::string& root) {
  if (path.size() < root.size() || path.compare(0, root.size(), root) != 0) {
    return false;
  }
  return path.size() == root.size() || root == "/" ||
         path[root.size()] == '/';
}

bool touches_subtree(const DeltaEffects& fx, const std::string& root) {
  auto hit = [&](const std::string& p) { return within(p, root); };
  return std::any_of(fx.targets.begin(), fx.targets.end(), hit) ||
         std::any_of(fx.creates.begin(), fx.creates.end(), hit) ||
         std::any_of(fx.removes.begin(), fx.removes.end(), hit) ||
         std::any_of(fx.writes.begin(), fx.writes.end(),
                     [&](const auto& w) { return within(w.first, root); });
}

bool has_direct_edge(const DeltaModule& a, const DeltaModule& b) {
  auto names = [](const DeltaModule& d, const std::string& other) {
    return std::find(d.after.begin(), d.after.end(), other) != d.after.end();
  };
  return names(a, b.name) || names(b, a.name);
}

/// First matching conflict between two footprints, or empty.
std::string conflict_detail(const DeltaEffects& fa, const DeltaEffects& fb) {
  for (const auto& wa : fa.writes) {
    for (const auto& wb : fb.writes) {
      if (wa == wb) {
        return "both write property '" + wa.second + "' of " + wa.first;
      }
    }
  }
  for (const std::string& ca : fa.creates) {
    for (const std::string& cb : fb.creates) {
      if (ca == cb) return "both create node " + ca;
    }
  }
  for (const std::string& r : fa.removes) {
    if (touches_subtree(fb, r)) {
      return "race on node " + r + " which '" + fa.delta + "' removes";
    }
  }
  for (const std::string& r : fb.removes) {
    if (touches_subtree(fa, r)) {
      return "race on node " + r + " which '" + fb.delta + "' removes";
    }
  }
  for (const std::string& c : fa.creates) {
    for (const std::string& t : fb.targets) {
      if (within(t, c)) {
        return "'" + fb.delta + "' targets node " + t + " created by '" +
               fa.delta + "'";
      }
    }
  }
  for (const std::string& c : fb.creates) {
    for (const std::string& t : fa.targets) {
      if (within(t, c)) {
        return "'" + fa.delta + "' targets node " + t + " created by '" +
               fb.delta + "'";
      }
    }
  }
  return {};
}

}  // namespace

std::vector<AmbiguousPair> find_unordered_conflicts(
    const std::vector<const DeltaModule*>& order,
    const std::vector<DeltaEffects>& effects) {
  std::vector<AmbiguousPair> out;
  const size_t n = std::min(order.size(), effects.size());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (has_direct_edge(*order[i], *order[j])) continue;
      std::string detail = conflict_detail(effects[i], effects[j]);
      if (detail.empty()) continue;
      out.push_back({order[i]->name, order[j]->name, std::move(detail)});
    }
  }
  return out;
}

}  // namespace llhsc::delta

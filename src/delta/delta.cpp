#include "delta/delta.hpp"

#include <algorithm>
#include <cassert>

namespace llhsc::delta {

// ---- WhenExpr ----

WhenExpr WhenExpr::always() { return WhenExpr{}; }

WhenExpr WhenExpr::feature(std::string name) {
  WhenExpr e;
  e.kind_ = Kind::kFeature;
  e.name_ = std::move(name);
  return e;
}

WhenExpr WhenExpr::negate(WhenExpr inner) {
  WhenExpr e;
  e.kind_ = Kind::kNot;
  e.children_.push_back(std::move(inner));
  return e;
}

WhenExpr WhenExpr::conj(WhenExpr a, WhenExpr b) {
  WhenExpr e;
  e.kind_ = Kind::kAnd;
  e.children_.push_back(std::move(a));
  e.children_.push_back(std::move(b));
  return e;
}

WhenExpr WhenExpr::disj(WhenExpr a, WhenExpr b) {
  WhenExpr e;
  e.kind_ = Kind::kOr;
  e.children_.push_back(std::move(a));
  e.children_.push_back(std::move(b));
  return e;
}

bool WhenExpr::evaluate(const std::set<std::string>& selected) const {
  switch (kind_) {
    case Kind::kTrue: return true;
    case Kind::kFeature: return selected.count(name_) > 0;
    case Kind::kNot: return !children_[0].evaluate(selected);
    case Kind::kAnd:
      return children_[0].evaluate(selected) && children_[1].evaluate(selected);
    case Kind::kOr:
      return children_[0].evaluate(selected) || children_[1].evaluate(selected);
  }
  return false;
}

void WhenExpr::collect_features(std::set<std::string>& out) const {
  if (kind_ == Kind::kFeature) out.insert(name_);
  for (const WhenExpr& c : children_) c.collect_features(out);
}

std::string WhenExpr::to_string() const {
  switch (kind_) {
    case Kind::kTrue: return "true";
    case Kind::kFeature: return name_;
    case Kind::kNot: return "!" + children_[0].to_string();
    case Kind::kAnd:
      return "(" + children_[0].to_string() + " && " +
             children_[1].to_string() + ")";
    case Kind::kOr:
      return "(" + children_[0].to_string() + " || " +
             children_[1].to_string() + ")";
  }
  return "?";
}

// ---- Operation ----

std::string_view to_string(OpKind k) {
  switch (k) {
    case OpKind::kAdds: return "adds";
    case OpKind::kModifies: return "modifies";
    case OpKind::kRemovesNode: return "removes";
    case OpKind::kRemovesProperty: return "removes-property";
  }
  return "unknown";
}

Operation::Operation(const Operation& other)
    : kind(other.kind),
      target(other.target),
      property_name(other.property_name),
      body(other.body ? other.body->clone() : nullptr),
      location(other.location) {}

Operation& Operation::operator=(const Operation& other) {
  if (this != &other) {
    kind = other.kind;
    target = other.target;
    property_name = other.property_name;
    body = other.body ? other.body->clone() : nullptr;
    location = other.location;
  }
  return *this;
}

// ---- ProductLine ----

ProductLine::ProductLine(std::unique_ptr<dts::Tree> core,
                         std::vector<DeltaModule> deltas)
    : core_(std::move(core)), deltas_(std::move(deltas)) {
  assert(core_ != nullptr);
}

const DeltaModule* ProductLine::find_delta(std::string_view name) const {
  for (const DeltaModule& d : deltas_) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

std::vector<const DeltaModule*> ProductLine::active_deltas(
    const std::set<std::string>& selected_features) const {
  std::vector<const DeltaModule*> out;
  for (const DeltaModule& d : deltas_) {
    if (d.when.evaluate(selected_features)) out.push_back(&d);
  }
  return out;
}

std::optional<std::vector<const DeltaModule*>> ProductLine::application_order(
    const std::set<std::string>& selected_features,
    support::DiagnosticEngine& diags) const {
  return linearize(active_deltas(selected_features), diags);
}

std::optional<std::vector<const DeltaModule*>> ProductLine::linearize(
    const std::vector<const DeltaModule*>& subset,
    support::DiagnosticEngine& diags) const {
  const std::vector<const DeltaModule*>& active = subset;

  // Kahn's algorithm with declaration-order tiebreak: the ready delta that
  // appears earliest in `active` (declaration order) goes next, giving a
  // deterministic linearisation of the strict partial order (§III-B).
  std::vector<size_t> indegree(active.size(), 0);
  std::vector<std::vector<size_t>> successors(active.size());
  auto index_of = [&](std::string_view name) -> std::optional<size_t> {
    for (size_t i = 0; i < active.size(); ++i) {
      if (active[i]->name == name) return i;
    }
    return std::nullopt;
  };
  for (size_t i = 0; i < active.size(); ++i) {
    for (const std::string& dep : active[i]->after) {
      if (find_delta(dep) == nullptr) {
        diags.error("delta-order",
                    "delta '" + active[i]->name + "' is declared after unknown "
                    "delta '" + dep + "'",
                    active[i]->location);
        return std::nullopt;
      }
      // `after` edges to inactive deltas impose no constraint (DOP
      // semantics: the order is over the *activated* subset).
      if (auto j = index_of(dep)) {
        successors[*j].push_back(i);
        ++indegree[i];
      }
    }
  }

  std::vector<const DeltaModule*> order;
  std::vector<bool> emitted(active.size(), false);
  for (size_t step = 0; step < active.size(); ++step) {
    size_t pick = active.size();
    for (size_t i = 0; i < active.size(); ++i) {
      if (!emitted[i] && indegree[i] == 0) {
        pick = i;
        break;
      }
    }
    if (pick == active.size()) {
      diags.error("delta-order",
                  "cycle in delta 'after' constraints among active deltas");
      return std::nullopt;
    }
    emitted[pick] = true;
    order.push_back(active[pick]);
    for (size_t s : successors[pick]) --indegree[s];
  }
  return order;
}

std::unique_ptr<dts::Tree> ProductLine::derive(
    const std::set<std::string>& selected_features,
    support::DiagnosticEngine& diags) const {
  auto order = application_order(selected_features, diags);
  if (!order) return nullptr;
  auto tree = core_->clone();
  std::vector<const DeltaModule*> applied;
  std::vector<DeltaEffects> effects;
  bool ok = true;
  for (const DeltaModule* d : *order) {
    applied.push_back(d);
    effects.emplace_back();
    if (!apply_delta(*tree, *d, diags, &effects.back())) {
      ok = false;
      break;
    }
  }
  // Order-sensitivity audit over the applied prefix: two unordered deltas
  // racing on the same path mean the declaration-order tiebreak, not the
  // author, picked this product's content. Warn deterministically (the lift
  // engine emits the same diagnostic for every co-activatable pair).
  for (const AmbiguousPair& p : find_unordered_conflicts(applied, effects)) {
    diags.warning("delta-order",
                  "deltas '" + p.a + "' and '" + p.b + "' " + p.detail +
                      " but neither is ordered 'after' the other; "
                      "declaration order decides the outcome");
  }
  return ok ? std::move(tree) : nullptr;
}

}  // namespace llhsc::delta

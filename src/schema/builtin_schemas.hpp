// Builtin binding schemas for the paper's running example (CustomSBC):
// memory (Listing 5), cpus/cpu (Listing 2), UART serial devices and the
// virtual Ethernet (veth) devices introduced by the product line (§III).
// These are the C++ equivalents of the dt-schema documents llhsc extracts
// its syntactic constraints from.
#pragma once

#include "schema/schema.hpp"

namespace llhsc::schema {

/// The memory node schema of Listing 5: device_type const "memory", reg
/// required with 1..1024 entries.
[[nodiscard]] NodeSchema memory_schema();

/// cpus container: #address-cells/#size-cells required, cpu@* children.
[[nodiscard]] NodeSchema cpus_schema();

/// Individual cpu node: compatible, device_type const "cpu", enable-method
/// enum, reg required.
[[nodiscard]] NodeSchema cpu_schema();

/// ns16550a-compatible UART: compatible + reg required.
[[nodiscard]] NodeSchema uart_schema();

/// Virtual Ethernet device (paper §III-A): compatible const "veth", reg and
/// id required.
[[nodiscard]] NodeSchema veth_schema();

/// The full set used by the running example.
[[nodiscard]] SchemaSet builtin_schemas();

/// The same set expressed in the YAML subset (exercised by tests to keep the
/// two representations in sync, and usable as on-disk seed files).
[[nodiscard]] const char* builtin_schemas_yaml();

}  // namespace llhsc::schema
